# Empty dependencies file for userspace_keys.
# This may be replaced when dependencies are built.
