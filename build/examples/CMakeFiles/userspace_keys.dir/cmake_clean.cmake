file(REMOVE_RECURSE
  "CMakeFiles/userspace_keys.dir/userspace_keys.cpp.o"
  "CMakeFiles/userspace_keys.dir/userspace_keys.cpp.o.d"
  "userspace_keys"
  "userspace_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userspace_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
