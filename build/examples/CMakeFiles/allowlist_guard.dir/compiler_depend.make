# Empty compiler generated dependencies file for allowlist_guard.
# This may be replaced when dependencies are built.
