file(REMOVE_RECURSE
  "CMakeFiles/allowlist_guard.dir/allowlist_guard.cpp.o"
  "CMakeFiles/allowlist_guard.dir/allowlist_guard.cpp.o.d"
  "allowlist_guard"
  "allowlist_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allowlist_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
