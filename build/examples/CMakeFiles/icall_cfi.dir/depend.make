# Empty dependencies file for icall_cfi.
# This may be replaced when dependencies are built.
