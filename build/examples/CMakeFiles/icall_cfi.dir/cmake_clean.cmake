file(REMOVE_RECURSE
  "CMakeFiles/icall_cfi.dir/icall_cfi.cpp.o"
  "CMakeFiles/icall_cfi.dir/icall_cfi.cpp.o.d"
  "icall_cfi"
  "icall_cfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icall_cfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
