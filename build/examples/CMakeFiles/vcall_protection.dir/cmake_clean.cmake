file(REMOVE_RECURSE
  "CMakeFiles/vcall_protection.dir/vcall_protection.cpp.o"
  "CMakeFiles/vcall_protection.dir/vcall_protection.cpp.o.d"
  "vcall_protection"
  "vcall_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcall_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
