# Empty dependencies file for vcall_protection.
# This may be replaced when dependencies are built.
