file(REMOVE_RECURSE
  "CMakeFiles/rasm.dir/rasm.cpp.o"
  "CMakeFiles/rasm.dir/rasm.cpp.o.d"
  "rasm"
  "rasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
