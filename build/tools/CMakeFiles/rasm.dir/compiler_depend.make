# Empty compiler generated dependencies file for rasm.
# This may be replaced when dependencies are built.
