file(REMOVE_RECURSE
  "CMakeFiles/rdis.dir/rdis.cpp.o"
  "CMakeFiles/rdis.dir/rdis.cpp.o.d"
  "rdis"
  "rdis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
