# Empty compiler generated dependencies file for rdis.
# This may be replaced when dependencies are built.
