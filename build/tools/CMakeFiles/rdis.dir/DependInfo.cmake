
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/rdis.cpp" "tools/CMakeFiles/rdis.dir/rdis.cpp.o" "gcc" "tools/CMakeFiles/rdis.dir/rdis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/roload_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/roload_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/roload_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/roload_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/roload_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/roload_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/roload_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/roload_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/asmtool/CMakeFiles/roload_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/roload_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/roload_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roload_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
