# Empty compiler generated dependencies file for rrun.
# This may be replaced when dependencies are built.
