file(REMOVE_RECURSE
  "CMakeFiles/rrun.dir/rrun.cpp.o"
  "CMakeFiles/rrun.dir/rrun.cpp.o.d"
  "rrun"
  "rrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
