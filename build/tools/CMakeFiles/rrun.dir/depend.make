# Empty dependencies file for rrun.
# This may be replaced when dependencies are built.
