# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_rasm "/root/repo/build/tools/rasm" "/root/repo/examples/hello.s" "-o" "/root/repo/build/hello.rimg" "--list")
set_tests_properties(tool_rasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rrun "/root/repo/build/tools/rrun" "/root/repo/build/hello.rimg" "--stats")
set_tests_properties(tool_rrun PROPERTIES  DEPENDS "tool_rasm" PASS_REGULAR_EXPRESSION "hello from roload vm" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rrun_source "/root/repo/build/tools/rrun" "/root/repo/examples/hello.s")
set_tests_properties(tool_rrun_source PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rdis "/root/repo/build/tools/rdis" "/root/repo/build/hello.rimg")
set_tests_properties(tool_rdis PROPERTIES  DEPENDS "tool_rasm" PASS_REGULAR_EXPRESSION "ld.ro t1, \\(t0\\), 77" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
