file(REMOVE_RECURSE
  "CMakeFiles/roload_mem.dir/page_table.cpp.o"
  "CMakeFiles/roload_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/roload_mem.dir/phys_memory.cpp.o"
  "CMakeFiles/roload_mem.dir/phys_memory.cpp.o.d"
  "libroload_mem.a"
  "libroload_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
