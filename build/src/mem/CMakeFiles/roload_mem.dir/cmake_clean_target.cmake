file(REMOVE_RECURSE
  "libroload_mem.a"
)
