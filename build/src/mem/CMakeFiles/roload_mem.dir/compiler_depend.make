# Empty compiler generated dependencies file for roload_mem.
# This may be replaced when dependencies are built.
