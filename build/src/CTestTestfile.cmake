# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("mem")
subdirs("tlb")
subdirs("cache")
subdirs("cpu")
subdirs("kernel")
subdirs("asmtool")
subdirs("ir")
subdirs("passes")
subdirs("backend")
subdirs("hw")
subdirs("workloads")
subdirs("sec")
subdirs("core")
