# Empty compiler generated dependencies file for roload_core.
# This may be replaced when dependencies are built.
