file(REMOVE_RECURSE
  "CMakeFiles/roload_core.dir/system.cpp.o"
  "CMakeFiles/roload_core.dir/system.cpp.o.d"
  "CMakeFiles/roload_core.dir/toolchain.cpp.o"
  "CMakeFiles/roload_core.dir/toolchain.cpp.o.d"
  "libroload_core.a"
  "libroload_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
