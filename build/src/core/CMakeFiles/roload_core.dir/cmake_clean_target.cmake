file(REMOVE_RECURSE
  "libroload_core.a"
)
