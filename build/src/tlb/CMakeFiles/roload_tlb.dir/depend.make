# Empty dependencies file for roload_tlb.
# This may be replaced when dependencies are built.
