file(REMOVE_RECURSE
  "CMakeFiles/roload_tlb.dir/tlb.cpp.o"
  "CMakeFiles/roload_tlb.dir/tlb.cpp.o.d"
  "libroload_tlb.a"
  "libroload_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
