file(REMOVE_RECURSE
  "libroload_tlb.a"
)
