file(REMOVE_RECURSE
  "CMakeFiles/roload_ir.dir/builder.cpp.o"
  "CMakeFiles/roload_ir.dir/builder.cpp.o.d"
  "CMakeFiles/roload_ir.dir/interp.cpp.o"
  "CMakeFiles/roload_ir.dir/interp.cpp.o.d"
  "CMakeFiles/roload_ir.dir/ir.cpp.o"
  "CMakeFiles/roload_ir.dir/ir.cpp.o.d"
  "libroload_ir.a"
  "libroload_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
