# Empty dependencies file for roload_ir.
# This may be replaced when dependencies are built.
