file(REMOVE_RECURSE
  "libroload_ir.a"
)
