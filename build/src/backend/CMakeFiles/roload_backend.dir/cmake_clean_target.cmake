file(REMOVE_RECURSE
  "libroload_backend.a"
)
