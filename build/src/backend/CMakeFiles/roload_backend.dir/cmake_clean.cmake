file(REMOVE_RECURSE
  "CMakeFiles/roload_backend.dir/codegen.cpp.o"
  "CMakeFiles/roload_backend.dir/codegen.cpp.o.d"
  "libroload_backend.a"
  "libroload_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
