# Empty dependencies file for roload_backend.
# This may be replaced when dependencies are built.
