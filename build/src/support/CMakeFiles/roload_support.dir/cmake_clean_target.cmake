file(REMOVE_RECURSE
  "libroload_support.a"
)
