# Empty dependencies file for roload_support.
# This may be replaced when dependencies are built.
