file(REMOVE_RECURSE
  "CMakeFiles/roload_support.dir/bits.cpp.o"
  "CMakeFiles/roload_support.dir/bits.cpp.o.d"
  "CMakeFiles/roload_support.dir/logging.cpp.o"
  "CMakeFiles/roload_support.dir/logging.cpp.o.d"
  "CMakeFiles/roload_support.dir/rng.cpp.o"
  "CMakeFiles/roload_support.dir/rng.cpp.o.d"
  "CMakeFiles/roload_support.dir/status.cpp.o"
  "CMakeFiles/roload_support.dir/status.cpp.o.d"
  "CMakeFiles/roload_support.dir/strings.cpp.o"
  "CMakeFiles/roload_support.dir/strings.cpp.o.d"
  "libroload_support.a"
  "libroload_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
