file(REMOVE_RECURSE
  "CMakeFiles/roload_passes.dir/optimize.cpp.o"
  "CMakeFiles/roload_passes.dir/optimize.cpp.o.d"
  "CMakeFiles/roload_passes.dir/passes.cpp.o"
  "CMakeFiles/roload_passes.dir/passes.cpp.o.d"
  "libroload_passes.a"
  "libroload_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
