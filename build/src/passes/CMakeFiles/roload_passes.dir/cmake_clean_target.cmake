file(REMOVE_RECURSE
  "libroload_passes.a"
)
