# Empty compiler generated dependencies file for roload_passes.
# This may be replaced when dependencies are built.
