
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/roload_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/roload_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/roload_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/roload_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/isa/CMakeFiles/roload_isa.dir/opcodes.cpp.o" "gcc" "src/isa/CMakeFiles/roload_isa.dir/opcodes.cpp.o.d"
  "/root/repo/src/isa/registers.cpp" "src/isa/CMakeFiles/roload_isa.dir/registers.cpp.o" "gcc" "src/isa/CMakeFiles/roload_isa.dir/registers.cpp.o.d"
  "/root/repo/src/isa/traps.cpp" "src/isa/CMakeFiles/roload_isa.dir/traps.cpp.o" "gcc" "src/isa/CMakeFiles/roload_isa.dir/traps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/roload_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
