file(REMOVE_RECURSE
  "CMakeFiles/roload_isa.dir/disasm.cpp.o"
  "CMakeFiles/roload_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/roload_isa.dir/encoding.cpp.o"
  "CMakeFiles/roload_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/roload_isa.dir/opcodes.cpp.o"
  "CMakeFiles/roload_isa.dir/opcodes.cpp.o.d"
  "CMakeFiles/roload_isa.dir/registers.cpp.o"
  "CMakeFiles/roload_isa.dir/registers.cpp.o.d"
  "CMakeFiles/roload_isa.dir/traps.cpp.o"
  "CMakeFiles/roload_isa.dir/traps.cpp.o.d"
  "libroload_isa.a"
  "libroload_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
