file(REMOVE_RECURSE
  "libroload_isa.a"
)
