# Empty compiler generated dependencies file for roload_isa.
# This may be replaced when dependencies are built.
