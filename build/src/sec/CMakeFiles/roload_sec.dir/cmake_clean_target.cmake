file(REMOVE_RECURSE
  "libroload_sec.a"
)
