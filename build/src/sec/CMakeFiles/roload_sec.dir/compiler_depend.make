# Empty compiler generated dependencies file for roload_sec.
# This may be replaced when dependencies are built.
