file(REMOVE_RECURSE
  "CMakeFiles/roload_sec.dir/attack.cpp.o"
  "CMakeFiles/roload_sec.dir/attack.cpp.o.d"
  "libroload_sec.a"
  "libroload_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
