# Empty dependencies file for roload_asm.
# This may be replaced when dependencies are built.
