file(REMOVE_RECURSE
  "CMakeFiles/roload_asm.dir/assembler.cpp.o"
  "CMakeFiles/roload_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/roload_asm.dir/image.cpp.o"
  "CMakeFiles/roload_asm.dir/image.cpp.o.d"
  "CMakeFiles/roload_asm.dir/image_io.cpp.o"
  "CMakeFiles/roload_asm.dir/image_io.cpp.o.d"
  "libroload_asm.a"
  "libroload_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
