file(REMOVE_RECURSE
  "libroload_asm.a"
)
