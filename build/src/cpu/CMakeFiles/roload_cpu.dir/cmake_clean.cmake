file(REMOVE_RECURSE
  "CMakeFiles/roload_cpu.dir/cpu.cpp.o"
  "CMakeFiles/roload_cpu.dir/cpu.cpp.o.d"
  "libroload_cpu.a"
  "libroload_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
