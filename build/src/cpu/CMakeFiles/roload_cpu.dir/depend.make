# Empty dependencies file for roload_cpu.
# This may be replaced when dependencies are built.
