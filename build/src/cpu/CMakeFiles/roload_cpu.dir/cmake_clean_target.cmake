file(REMOVE_RECURSE
  "libroload_cpu.a"
)
