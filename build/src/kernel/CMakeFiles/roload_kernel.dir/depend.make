# Empty dependencies file for roload_kernel.
# This may be replaced when dependencies are built.
