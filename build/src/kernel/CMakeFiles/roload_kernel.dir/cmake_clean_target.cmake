file(REMOVE_RECURSE
  "libroload_kernel.a"
)
