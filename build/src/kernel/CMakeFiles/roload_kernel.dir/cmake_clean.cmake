file(REMOVE_RECURSE
  "CMakeFiles/roload_kernel.dir/address_space.cpp.o"
  "CMakeFiles/roload_kernel.dir/address_space.cpp.o.d"
  "CMakeFiles/roload_kernel.dir/kernel.cpp.o"
  "CMakeFiles/roload_kernel.dir/kernel.cpp.o.d"
  "libroload_kernel.a"
  "libroload_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
