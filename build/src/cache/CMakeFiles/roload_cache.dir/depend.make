# Empty dependencies file for roload_cache.
# This may be replaced when dependencies are built.
