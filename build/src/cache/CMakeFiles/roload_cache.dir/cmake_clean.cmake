file(REMOVE_RECURSE
  "CMakeFiles/roload_cache.dir/cache.cpp.o"
  "CMakeFiles/roload_cache.dir/cache.cpp.o.d"
  "libroload_cache.a"
  "libroload_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
