file(REMOVE_RECURSE
  "libroload_cache.a"
)
