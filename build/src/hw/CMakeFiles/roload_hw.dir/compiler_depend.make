# Empty compiler generated dependencies file for roload_hw.
# This may be replaced when dependencies are built.
