file(REMOVE_RECURSE
  "libroload_hw.a"
)
