
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/mapper.cpp" "src/hw/CMakeFiles/roload_hw.dir/mapper.cpp.o" "gcc" "src/hw/CMakeFiles/roload_hw.dir/mapper.cpp.o.d"
  "/root/repo/src/hw/netlist.cpp" "src/hw/CMakeFiles/roload_hw.dir/netlist.cpp.o" "gcc" "src/hw/CMakeFiles/roload_hw.dir/netlist.cpp.o.d"
  "/root/repo/src/hw/tlb_datapath.cpp" "src/hw/CMakeFiles/roload_hw.dir/tlb_datapath.cpp.o" "gcc" "src/hw/CMakeFiles/roload_hw.dir/tlb_datapath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/roload_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
