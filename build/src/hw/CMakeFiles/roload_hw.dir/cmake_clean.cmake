file(REMOVE_RECURSE
  "CMakeFiles/roload_hw.dir/mapper.cpp.o"
  "CMakeFiles/roload_hw.dir/mapper.cpp.o.d"
  "CMakeFiles/roload_hw.dir/netlist.cpp.o"
  "CMakeFiles/roload_hw.dir/netlist.cpp.o.d"
  "CMakeFiles/roload_hw.dir/tlb_datapath.cpp.o"
  "CMakeFiles/roload_hw.dir/tlb_datapath.cpp.o.d"
  "libroload_hw.a"
  "libroload_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
