file(REMOVE_RECURSE
  "libroload_workloads.a"
)
