file(REMOVE_RECURSE
  "CMakeFiles/roload_workloads.dir/spec_like.cpp.o"
  "CMakeFiles/roload_workloads.dir/spec_like.cpp.o.d"
  "libroload_workloads.a"
  "libroload_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roload_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
