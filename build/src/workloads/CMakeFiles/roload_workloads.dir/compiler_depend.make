# Empty compiler generated dependencies file for roload_workloads.
# This may be replaced when dependencies are built.
