# Empty dependencies file for fig4_icall_runtime.
# This may be replaced when dependencies are built.
