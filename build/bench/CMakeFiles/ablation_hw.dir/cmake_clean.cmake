file(REMOVE_RECURSE
  "CMakeFiles/ablation_hw.dir/ablation_hw.cpp.o"
  "CMakeFiles/ablation_hw.dir/ablation_hw.cpp.o.d"
  "ablation_hw"
  "ablation_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
