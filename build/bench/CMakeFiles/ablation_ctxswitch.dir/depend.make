# Empty dependencies file for ablation_ctxswitch.
# This may be replaced when dependencies are built.
