# Empty compiler generated dependencies file for ablation_addi.
# This may be replaced when dependencies are built.
