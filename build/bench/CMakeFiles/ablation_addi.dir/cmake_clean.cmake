file(REMOVE_RECURSE
  "CMakeFiles/ablation_addi.dir/ablation_addi.cpp.o"
  "CMakeFiles/ablation_addi.dir/ablation_addi.cpp.o.d"
  "ablation_addi"
  "ablation_addi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
