# Empty compiler generated dependencies file for ablation_keys.
# This may be replaced when dependencies are built.
