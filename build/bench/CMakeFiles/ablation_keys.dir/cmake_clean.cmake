file(REMOVE_RECURSE
  "CMakeFiles/ablation_keys.dir/ablation_keys.cpp.o"
  "CMakeFiles/ablation_keys.dir/ablation_keys.cpp.o.d"
  "ablation_keys"
  "ablation_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
