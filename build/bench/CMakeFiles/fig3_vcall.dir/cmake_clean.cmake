file(REMOVE_RECURSE
  "CMakeFiles/fig3_vcall.dir/fig3_vcall.cpp.o"
  "CMakeFiles/fig3_vcall.dir/fig3_vcall.cpp.o.d"
  "fig3_vcall"
  "fig3_vcall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
