# Empty dependencies file for fig3_vcall.
# This may be replaced when dependencies are built.
