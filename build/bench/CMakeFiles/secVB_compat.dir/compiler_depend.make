# Empty compiler generated dependencies file for secVB_compat.
# This may be replaced when dependencies are built.
