file(REMOVE_RECURSE
  "CMakeFiles/secVB_compat.dir/secVB_compat.cpp.o"
  "CMakeFiles/secVB_compat.dir/secVB_compat.cpp.o.d"
  "secVB_compat"
  "secVB_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVB_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
