# Empty compiler generated dependencies file for security_matrix.
# This may be replaced when dependencies are built.
