file(REMOVE_RECURSE
  "CMakeFiles/security_matrix.dir/security_matrix.cpp.o"
  "CMakeFiles/security_matrix.dir/security_matrix.cpp.o.d"
  "security_matrix"
  "security_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
