
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_asm.cpp" "tests/CMakeFiles/roload_tests.dir/test_asm.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_asm.cpp.o.d"
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/roload_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/roload_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/roload_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/roload_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/roload_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/roload_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/roload_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/roload_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/roload_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/roload_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/roload_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/roload_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_multiprocess.cpp" "tests/CMakeFiles/roload_tests.dir/test_multiprocess.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_multiprocess.cpp.o.d"
  "/root/repo/tests/test_optimize.cpp" "tests/CMakeFiles/roload_tests.dir/test_optimize.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_optimize.cpp.o.d"
  "/root/repo/tests/test_passes.cpp" "tests/CMakeFiles/roload_tests.dir/test_passes.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_passes.cpp.o.d"
  "/root/repo/tests/test_sec.cpp" "tests/CMakeFiles/roload_tests.dir/test_sec.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_sec.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/roload_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/roload_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/roload_tests.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_tools.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/roload_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/roload_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/roload_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/roload_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sec/CMakeFiles/roload_sec.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/roload_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/roload_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/roload_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/roload_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/roload_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/roload_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/roload_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/roload_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/asmtool/CMakeFiles/roload_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/roload_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/roload_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/roload_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
