# Empty dependencies file for roload_tests.
# This may be replaced when dependencies are built.
