// Type-based forward-edge CFI demo (Section IV-B): a function pointer in
// writable memory is corrupted mid-run. The ICall hardening replaces
// function-pointer values with pointers into read-only, type-keyed global
// function-pointer tables (GFPTs, Listing 3) and loads the real target
// with ld.ro — so raw code addresses stop working, and only same-type
// allowlist entries remain reachable (the paper's residual surface).
//
// Build and run:  ./build/examples/icall_cfi
#include <cstdio>

#include "sec/attack.h"

using namespace roload;

int main() {
  std::printf("Attack: function-pointer slot overwritten with the raw "
              "address of attacker code\n");
  for (auto defense : {core::Defense::kNone, core::Defense::kClassicCfi,
                       core::Defense::kICall}) {
    auto result = sec::RunAttack(sec::AttackKind::kFnPtrCorruptToEvil,
                                 defense);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  defense=%-6s -> %-9s%s\n",
                core::DefenseName(defense).data(),
                sec::AttackOutcomeName(result->outcome).data(),
                result->roload_violation
                    ? "  (ld.ro key check faulted: the slot no longer "
                      "points into the type's GFPT)"
                    : "");
  }

  std::printf("\nAttack: pointee reuse — the slot is redirected to another "
              "LEGITIMATE same-type target\n");
  for (auto defense : {core::Defense::kClassicCfi, core::Defense::kICall}) {
    auto result = sec::RunAttack(sec::AttackKind::kFnPtrReuseSameType,
                                 defense);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  defense=%-6s -> %s\n", core::DefenseName(defense).data(),
                sec::AttackOutcomeName(result->outcome).data());
  }
  std::printf("\nBoth type-based schemes accept same-type reuse by design — "
              "Section V-D's remaining attack surface. ROLoad's advantage\n"
              "is getting the same policy at hardware speed: the check is "
              "a page-permission test, not inline software.\n");
  return 0;
}
