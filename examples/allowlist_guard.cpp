// Generic allowlist protection (Section IV-C): "all allowlist-based
// defenses can be enhanced by ROLoad". Here the allowlist is a table of
// format-string pointers — a classic sensitive operand: if an attacker can
// swap a format pointer for a crafted one, printf-style processing becomes
// an exploit primitive.
//
// The AllowlistProtectPass moves the table into a keyed read-only page and
// turns the table load into ld.ro. The attack (corrupting the index's
// *target* by aiming the computed pointer at a writable fake table) then
// faults instead of being consumed.
//
// Build and run:  ./build/examples/allowlist_guard
#include <cstdio>

#include "core/toolchain.h"
#include "ir/builder.h"
#include "passes/passes.h"

using namespace roload;

namespace {

constexpr int kFmtAllowlistId = 7;

// The victim: picks a format pointer from fmt_table[i] where the *index
// slot* lives in writable memory (attacker-reachable), then "uses" it.
ir::Module MakeProgram() {
  ir::Module module;
  module.name = "fmt_guard";

  ir::Global table;
  table.name = "fmt_table";
  table.read_only = true;  // already const in the source program
  table.quads.push_back(ir::GlobalInit{0, "fmt_a"});
  table.quads.push_back(ir::GlobalInit{0, "fmt_b"});
  module.globals.push_back(table);

  ir::Global fmt_a;
  fmt_a.name = "fmt_a";
  fmt_a.read_only = true;
  fmt_a.quads.push_back(ir::GlobalInit{0x3e3e3e, ""});  // ">>>" bytes
  module.globals.push_back(fmt_a);
  ir::Global fmt_b;
  fmt_b.name = "fmt_b";
  fmt_b.read_only = true;
  fmt_b.quads.push_back(ir::GlobalInit{0x212121, ""});
  module.globals.push_back(fmt_b);

  // Attacker-writable state: the pointer the program will dereference.
  ir::Global slot;
  slot.name = "fmt_slot";
  slot.quads.push_back(ir::GlobalInit{0, "fmt_table"});
  module.globals.push_back(slot);

  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int slot_addr = b.AddrOf("fmt_slot");
  const int table_ptr = b.Load(slot_addr);  // where the table "is"
  // The sensitive load: fetch the format pointer from the allowlist.
  const int fmt = b.Load(table_ptr, 8, 8, ir::Trait::kAllowlistLoad,
                         kFmtAllowlistId);
  const int first_bytes = b.Load(fmt);  // "use" the format
  b.Ret(b.BinImm(ir::BinOp::kAnd, first_bytes, 63));
  module.RecomputeAddressTaken();
  return module;
}

}  // namespace

int main() {
  passes::AllowlistOptions guard;
  guard.rules.push_back(passes::AllowlistRule{
      .global_name = "fmt_table",
      .key = 555,
      .trait = ir::Trait::kAllowlistLoad,
      .trait_id = kFmtAllowlistId,
  });

  for (bool hardened : {false, true}) {
    ir::Module module = MakeProgram();
    if (hardened) {
      Status status = passes::AllowlistProtectPass(&module, guard);
      if (!status.ok()) {
        std::printf("pass failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    auto build = core::Build(std::move(module), core::BuildOptions{});
    if (!build.ok()) {
      std::printf("build failed: %s\n", build.status().ToString().c_str());
      return 1;
    }

    core::System system;
    if (!system.Load(build->image).ok()) return 1;

    // Run to steady state... this victim is short; attack before start:
    // redirect fmt_slot at a writable fake table holding an attacker
    // "format" — the arbitrary-write primitive.
    const std::uint64_t slot = build->image.symbols.at("fmt_slot");
    const std::uint64_t fake = build->image.symbols.at("fmt_slot") + 16;
    // (reuse the writable .data page: plant a fake entry right after)
    system.cpu().DebugWriteVirt(fake + 8, 8, fake);  // fake[1] -> itself
    system.cpu().DebugWriteVirt(slot, 8, fake);
    const kernel::RunResult run = system.Run();

    std::printf("%-10s : ", hardened ? "ld.ro" : "plain ld");
    if (run.kind == kernel::ExitKind::kExited) {
      std::printf("completed, exit=%lld  (attacker-controlled format "
                  "consumed!)\n",
                  static_cast<long long>(run.exit_code));
    } else {
      std::printf("killed by signal %d%s — corrupted format rejected\n",
                  run.signal,
                  run.roload_violation ? " [ROLoad key-check fault]" : "");
    }
  }
  std::printf("\nOne rule in AllowlistProtectPass covers any immutable "
              "legitimate-value set: format strings, jump tables,\nconfig "
              "blocks, device-operation structures — the paper's Section "
              "IV-C generalization.\n");
  return 0;
}
