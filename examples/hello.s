# Sample guest program for the CLI tools:
#   ./build/tools/rasm examples/hello.s -o hello.rimg --list
#   ./build/tools/rrun hello.rimg --stats
#   ./build/tools/rdis hello.rimg
#
# Prints a greeting, then proves pointee integrity: the secret is read
# through ld.ro with the matching key and the program exits 0 on success.
.section .text
_start:
  # write(1, msg, 21)
  li a0, 1
  la a1, msg
  li a2, 21
  li a7, 64
  ecall

  # keyed allowlist read
  la t0, secret
  ld.ro t1, (t0), 77
  li t2, 1337
  sub a0, t1, t2
  snez a0, a0

  li a7, 93
  ecall

.section .rodata
msg:
  .asciz "hello from roload vm\n"

.section .rodata.key.77
secret:
  .quad 1337
