// VTable-hijacking demo (Section IV-A): the same victim binary is attacked
// with and without the VCall defense. Without it, the injected fake vtable
// redirects virtual dispatch into attacker code; with it, the ld.ro key
// check faults on the writable fake vtable and the kernel kills the
// process with SIGSEGV.
//
// Build and run:  ./build/examples/vcall_protection
#include <cstdio>

#include "sec/attack.h"

using namespace roload;

namespace {

void Narrate(sec::AttackKind kind, core::Defense defense) {
  auto result = sec::RunAttack(kind, defense);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  defense=%-6s -> %s", core::DefenseName(defense).data(),
              sec::AttackOutcomeName(result->outcome).data());
  switch (result->outcome) {
    case sec::AttackOutcome::kHijacked:
      std::printf("  (attacker function executed!)");
      break;
    case sec::AttackOutcome::kBlocked:
      if (result->roload_violation) {
        std::printf("  (ROLoad page fault -> SIGSEGV, cause distinguishable"
                    " by the kernel)");
      } else {
        std::printf("  (killed with signal %d / CFI abort)", result->signal);
      }
      break;
    case sec::AttackOutcome::kDiverted:
      std::printf("  (stayed inside the allowlist; computation altered)");
      break;
    case sec::AttackOutcome::kNoEffect:
      std::printf("  (no observable effect)");
      break;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Attack 1: vtable injection — vptr redirected to a writable "
              "fake vtable holding &evil\n");
  for (auto defense : {core::Defense::kNone, core::Defense::kVTint,
                       core::Defense::kVCall}) {
    Narrate(sec::AttackKind::kVtableInjection, defense);
  }

  std::printf("\nAttack 2: COOP-style vtable reuse — vptr redirected to a "
              "legitimate vtable of another class hierarchy\n");
  for (auto defense : {core::Defense::kNone, core::Defense::kVTint,
                       core::Defense::kVCall}) {
    Narrate(sec::AttackKind::kVtableReuseCrossHierarchy, defense);
  }

  std::printf("\nVCall blocks both: the fake vtable is writable (read-only "
              "check), and the foreign vtable lives in a page keyed for a\n"
              "different class hierarchy (key check). VTint, which only "
              "checks read-only-ness, stops the injection but not the "
              "reuse —\nthe security gap the paper's VCall closes at lower "
              "runtime cost.\n");
  return 0;
}
