// Userspace page-key API demo (Sections II-E-2 and IV-C): a hand-written
// assembly program uses the kernel's extended mmap/mprotect to build its
// own allowlist at runtime — the "other application scenarios" path where
// a program (not the compiler) manages its tamper-proof areas.
//
// The guest program:
//   1. mmap()s an anonymous RW page,
//   2. writes an allowlisted value into it,
//   3. mprotect()s the page to read-only with key 77,
//   4. reads the value back with `ld.ro ..., 77`  -> succeeds,
//   5. reads it with `ld.ro ..., 78` (wrong key)  -> ROLoad page fault,
//      which the roload-aware kernel reports as SIGSEGV.
//
// Build and run:  ./build/examples/userspace_keys
#include <cstdio>

#include "asmtool/assembler.h"
#include "core/system.h"
#include "support/strings.h"

using namespace roload;

namespace {

// prot encoding: low bits PROT_READ/WRITE, key in bits [25:16].
std::string GuestProgram(unsigned read_key) {
  return StrFormat(R"(
.section .text
_start:
  # a0 = mmap(0, 4096, PROT_READ|PROT_WRITE, ...)
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 0
  li a5, 0
  li a7, 222
  ecall
  mv s0, a0            # s0 = page address

  # publish the allowlisted value
  li t0, 4242
  sd t0, 0(s0)

  # mprotect(page, 4096, PROT_READ | key 77 << 16)
  mv a0, s0
  li a1, 4096
  li a2, %u
  li a7, 226
  ecall

  # keyed load: only legal if the instruction key matches the page key
  ld.ro a1, (s0), %u
  # exit(value == 4242 ? 0 : 1)
  li t1, 4242
  sub a0, a1, t1
  snez a0, a0
  li a7, 93
  ecall
)",
                   1u | (77u << 16), read_key);
}

}  // namespace

int main() {
  for (unsigned key : {77u, 78u}) {
    auto image = asmtool::Assemble(GuestProgram(key));
    if (!image.ok()) {
      std::printf("assembly failed: %s\n", image.status().ToString().c_str());
      return 1;
    }
    core::System system;  // full ROLoad system
    if (Status status = system.Load(*image); !status.ok()) {
      std::printf("load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const kernel::RunResult run = system.Run();
    std::printf("ld.ro with key %u on a page keyed 77: ", key);
    if (run.kind == kernel::ExitKind::kExited) {
      std::printf("completed, exit=%lld (value %s)\n",
                  static_cast<long long>(run.exit_code),
                  run.exit_code == 0 ? "intact" : "corrupt");
    } else {
      std::printf("killed by signal %d%s at pc=0x%llx (fault addr 0x%llx)\n",
                  run.signal,
                  run.roload_violation ? " [ROLoad key-check fault]" : "",
                  static_cast<unsigned long long>(run.fault_pc),
                  static_cast<unsigned long long>(run.fault_addr));
    }
  }
  std::printf("\nThe same mmap/mprotect surface the modified Linux kernel "
              "exposes (page keys ride the prot argument); any\nallowlist-"
              "based defense can manage its own tamper-proof areas this "
              "way without compiler involvement.\n");
  return 0;
}
