// Quickstart: the smallest end-to-end tour of the ROLoad stack.
//
// 1. Write a program against the mini compiler IR (the role of Clang in
//    the paper's toolchain), marking one load as sensitive.
// 2. Harden it with the ICall pass (ld.ro + keyed read-only allowlist).
// 3. Run it on the three system variants of Section V-B and watch what
//    happens: only the fully ROLoad-enabled system runs the hardened
//    binary; the unhardened build runs everywhere.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "core/toolchain.h"
#include "ir/builder.h"

using namespace roload;

namespace {

// A program that calls `double_it` through a function pointer stored in
// writable memory and exits with the result: exit code 84.
ir::Module MakeProgram() {
  ir::Module module;
  module.name = "quickstart";
  const int fn_type = module.InternFnType("i64(i64)");

  ir::Global slot;
  slot.name = "fn_slot";
  slot.quads.push_back(ir::GlobalInit{0, "double_it"});
  module.globals.push_back(slot);

  {
    ir::FunctionBuilder b(&module, "double_it", "i64(i64)", 1);
    b.Ret(b.BinImm(ir::BinOp::kMul, b.Param(0), 2));
  }
  {
    ir::FunctionBuilder b(&module, "main", "i64()", 0);
    const int slot_addr = b.AddrOf("fn_slot");
    // The sensitive load: a function pointer read from corruptible memory.
    const int fn = b.Load(slot_addr, 0, 8, ir::Trait::kFnPtrLoad, fn_type);
    const int result = b.ICall(fn, {b.Const(42)}, fn_type);
    b.Ret(result);
  }
  module.RecomputeAddressTaken();
  return module;
}

const char* VariantName(core::SystemVariant variant) {
  switch (variant) {
    case core::SystemVariant::kBaseline:
      return "baseline system          ";
    case core::SystemVariant::kProcessorModified:
      return "processor-modified system";
    case core::SystemVariant::kFullRoload:
      return "processor+kernel modified";
  }
  return "?";
}

}  // namespace

int main() {
  const ir::Module program = MakeProgram();

  std::printf("== Unhardened build (plain ld) ==\n");
  for (auto variant :
       {core::SystemVariant::kBaseline, core::SystemVariant::kProcessorModified,
        core::SystemVariant::kFullRoload}) {
    core::BuildOptions options;  // Defense::kNone
    auto metrics = core::CompileAndRun(program, options, variant);
    if (!metrics.ok()) {
      std::printf("error: %s\n", metrics.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s : exit=%lld (%s), %llu instructions, %llu cycles\n",
                VariantName(variant),
                static_cast<long long>(metrics->exit_code),
                metrics->completed ? "completed" : "killed",
                static_cast<unsigned long long>(metrics->instructions),
                static_cast<unsigned long long>(metrics->cycles));
  }

  std::printf("\n== ICall-hardened build (ld.ro through a keyed GFPT) ==\n");
  for (auto variant :
       {core::SystemVariant::kBaseline, core::SystemVariant::kProcessorModified,
        core::SystemVariant::kFullRoload}) {
    core::BuildOptions options;
    options.defense = core::Defense::kICall;
    auto metrics = core::CompileAndRun(program, options, variant);
    if (!metrics.ok()) {
      std::printf("error: %s\n", metrics.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s : exit=%lld (%s), %llu ld.ro executed\n",
                VariantName(variant),
                static_cast<long long>(metrics->exit_code),
                metrics->completed ? "completed" : "killed",
                static_cast<unsigned long long>(metrics->roload_loads));
  }
  std::printf("\nThe hardened binary needs both the ld.ro-capable core "
              "(decode) and the roload-aware kernel (page keys): on the\n"
              "baseline core the encoding is an illegal instruction, and "
              "on the unmodified kernel the allowlist pages were never\n"
              "tagged, so the key check faults — exactly the deployment "
              "matrix of Section V-B.\n");
  return 0;
}
