// rdis — disassemble the executable sections of a .rimg image.
//
//   rdis program.rimg [--section NAME] [--gadgets]
//
// Prints addresses, raw encodings and assembly, annotating symbols.
// Section headers carry the mapping (perms + page key) and ld.ro-family
// lines are annotated with `key=<K>`, so rverify diagnostics (which name
// sections, keys and pcs) cross-reference the listing directly.
// `--gadgets` additionally runs the ROP/JOP gadget scanner and marks
// every line where a gadget chain starts (`# gadget: ...`), including
// misaligned starts that do not appear as listed instructions.
#include <cstdio>
#include <map>
#include <string>

#include "asmtool/image_io.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/opcodes.h"
#include "verify/gadgets.h"

using namespace roload;

int main(int argc, char** argv) {
  std::string input;
  std::string only_section;
  bool gadgets = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--section" && i + 1 < argc) {
      only_section = argv[++i];
    } else if (arg == "--gadgets") {
      gadgets = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: rdis program.rimg [--section NAME] [--gadgets]\n");
      return 2;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: rdis program.rimg [--section NAME] [--gadgets]\n");
    return 2;
  }

  auto image = asmtool::LoadImage(input);
  if (!image.ok()) {
    std::fprintf(stderr, "rdis: %s\n", image.status().ToString().c_str());
    return 1;
  }

  // Reverse symbol map for annotation.
  std::map<std::uint64_t, std::string> by_addr;
  for (const auto& [name, value] : image->symbols) {
    by_addr.emplace(value, name);
  }

  // Gadget-start annotations, keyed by start address.
  std::map<std::uint64_t, std::string> gadget_at;
  if (gadgets) {
    const verify::GadgetCensus census = verify::ScanGadgets(*image);
    for (const verify::Gadget& g : census.gadgets) {
      char note[96];
      std::snprintf(note, sizeof(note), "# gadget: %s len=%u%s%s",
                    g.kind == verify::Gadget::Kind::kRet ? "ret" : "jalr",
                    g.length, g.misaligned ? " misaligned" : "",
                    g.compressed ? " compressed" : "");
      gadget_at[g.start] = note;
    }
    std::printf("gadget census: %llu gadgets (%llu ret, %llu jalr, "
                "%llu compressed, %llu misaligned)\n",
                static_cast<unsigned long long>(census.stats.gadgets),
                static_cast<unsigned long long>(census.stats.ret_terminated),
                static_cast<unsigned long long>(census.stats.jalr_terminated),
                static_cast<unsigned long long>(census.stats.compressed),
                static_cast<unsigned long long>(census.stats.misaligned));
  }

  for (const auto& section : image->sections) {
    if (!only_section.empty() && section.name != only_section) continue;
    char perms[4] = {section.perms.read ? 'r' : '-',
                     section.perms.write ? 'w' : '-',
                     section.perms.exec ? 'x' : '-', '\0'};
    if (!section.perms.exec) {
      // Data sections get a one-line header so keyed frames are visible.
      std::printf("section %s @ 0x%llx (%llu bytes) %s key=%u\n",
                  section.name.c_str(),
                  static_cast<unsigned long long>(section.vaddr),
                  static_cast<unsigned long long>(section.size), perms,
                  section.key);
      continue;
    }
    std::printf("section %s @ 0x%llx (%llu bytes) %s key=%u:\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.vaddr),
                static_cast<unsigned long long>(section.size), perms,
                section.key);
    std::uint64_t offset = 0;
    while (offset + 2 <= section.bytes.size()) {
      const std::uint64_t addr = section.vaddr + offset;
      if (auto it = by_addr.find(addr); it != by_addr.end()) {
        std::printf("%s:\n", it->second.c_str());
      }
      std::uint32_t raw = static_cast<std::uint32_t>(
          section.bytes[offset] | (section.bytes[offset + 1] << 8));
      const unsigned length =
          isa::ParcelLength(static_cast<std::uint16_t>(raw));
      if (length == 4 && offset + 4 <= section.bytes.size()) {
        raw |= static_cast<std::uint32_t>(section.bytes[offset + 2]) << 16;
        raw |= static_cast<std::uint32_t>(section.bytes[offset + 3]) << 24;
      }
      const auto inst = isa::Decode(raw);
      if (inst.has_value()) {
        // Symbolic key annotation on ROLoad-family lines (the raw key is
        // already the last operand; this names it for grep/cross-ref).
        std::string text = isa::Disassemble(*inst);
        if (isa::IsRoLoad(inst->op)) {
          char note[32];
          std::snprintf(note, sizeof(note), "   # key=%u", inst->key);
          text += note;
        }
        if (auto g = gadget_at.find(addr); g != gadget_at.end()) {
          text += "   " + g->second;
        }
        // A gadget chain can open mid-parcel (the misaligned class);
        // surface it as its own note line since no listed instruction
        // starts there.
        if (inst->length == 4) {
          if (auto g = gadget_at.find(addr + 2); g != gadget_at.end()) {
            std::printf("  %8llx:  (misaligned start) %s\n",
                        static_cast<unsigned long long>(addr + 2),
                        g->second.c_str());
          }
        }
        if (length == 4) {
          std::printf("  %8llx:  %08x   %s\n",
                      static_cast<unsigned long long>(addr), raw,
                      text.c_str());
        } else {
          std::printf("  %8llx:  %04x       %s\n",
                      static_cast<unsigned long long>(addr), raw & 0xFFFF,
                      text.c_str());
        }
        offset += inst->length;
      } else {
        std::printf("  %8llx:  %08x   <unknown>\n",
                    static_cast<unsigned long long>(addr), raw);
        offset += length;
      }
    }
  }
  return 0;
}
