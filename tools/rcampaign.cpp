// rcampaign — run a declarative workload × defense × variant grid on the
// simulated ROLoad machine, in parallel, with merged telemetry.
//
//   rcampaign [--grid SPEC] [--jobs N] [--json FILE] [--profile]
//             [--scale S] [--name NAME] [--emit-images DIR] [--quiet]
//
// --grid     semicolon-separated key=value grid (see src/campaign/grid.h),
//            e.g. "workloads=cpp;defenses=none,VCall,VTint;variants=full".
//            Default: the full CINT2006-like suite, unhardened, on the
//            full-ROLoad system.
// --jobs     worker threads (0 = one per hardware thread; the default).
//            Simulated results are bit-identical at any job count.
// --json     write the merged roload.campaign.v1 telemetry to FILE
// --profile  attach the cycle-attribution profiler to every run
// --scale    workload scale when the grid does not set one (default 0.5)
// --name     campaign name used in the telemetry (default "campaign")
// --emit-images DIR
//            build every run of the grid and save its linked image as
//            DIR/<run name>.rimg (slashes become '_'), skipping
//            simulation entirely — the feed for whole-image rverify /
//            gadget-census sweeps in CI
// --quiet    suppress the per-run table, print only the summary line
//
// Exit code: 0 when every run is clean, 1 when any run faulted,
// 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "asmtool/image_io.h"
#include "campaign/env.h"
#include "campaign/grid.h"
#include "campaign/runner.h"
#include "support/strings.h"
#include "trace/session.h"

using namespace roload;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rcampaign [--grid SPEC] [--jobs N] [--json FILE] "
               "[--profile] [--scale S] [--name NAME] "
               "[--emit-images DIR] [--quiet]\n"
               "grid keys: workloads, defenses, variants, scale, seed, "
               "max-instructions, harts, exec, profile\n");
  return 2;
}

// "<workload>/<config>/<variant>" -> a filesystem-safe image stem.
std::string SanitizeRunName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == ' ') c = '_';
  }
  return out;
}

// Builds every run of the expanded grid and writes DIR/<name>.rimg;
// no simulation. Returns 0 when every build + save succeeded.
int EmitImages(const campaign::CampaignSpec& spec, const std::string& dir,
               bool quiet) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "rcampaign: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::size_t written = 0;
  std::size_t failed = 0;
  for (const campaign::RunSpec& run : campaign::Expand(spec)) {
    const ir::Module module = workloads::Generate(run.workload);
    auto build = core::Build(module, run.build);
    if (!build.ok()) {
      std::fprintf(stderr, "rcampaign: %s: %s\n", run.name.c_str(),
                   build.status().ToString().c_str());
      ++failed;
      continue;
    }
    const std::string path =
        dir + "/" + SanitizeRunName(run.name) + ".rimg";
    if (Status status = asmtool::SaveImage(build->image, path);
        !status.ok()) {
      std::fprintf(stderr, "rcampaign: %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      ++failed;
      continue;
    }
    ++written;
    if (!quiet) std::printf("%-44s -> %s\n", run.name.c_str(), path.c_str());
  }
  std::printf("%zu images written to %s, %zu failed\n", written, dir.c_str(),
              failed);
  return failed == 0 ? 0 : 1;
}

bool FlagValue(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(flag) + "=";
  if (StartsWith(arg, prefix)) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == flag && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_text;
  std::string json_path;
  std::string name = "campaign";
  std::string jobs_text;
  std::string scale_text;
  std::string emit_dir;
  bool profile = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (FlagValue(argc, argv, &i, "--grid", &grid_text) ||
        FlagValue(argc, argv, &i, "--json", &json_path) ||
        FlagValue(argc, argv, &i, "--name", &name) ||
        FlagValue(argc, argv, &i, "--jobs", &jobs_text) ||
        FlagValue(argc, argv, &i, "--scale", &scale_text) ||
        FlagValue(argc, argv, &i, "--emit-images", &emit_dir)) {
      continue;
    }
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  unsigned jobs = campaign::JobsFromEnv(0);
  if (!jobs_text.empty()) {
    const auto parsed = campaign::ParseJobs(jobs_text);
    if (!parsed) {
      std::fprintf(stderr, "rcampaign: bad --jobs value: %s\n",
                   jobs_text.c_str());
      return Usage();
    }
    jobs = *parsed;
  }
  double scale = campaign::ScaleFromEnv(0.5);
  if (!scale_text.empty()) {
    const auto parsed = campaign::ParseScale(scale_text);
    if (!parsed) {
      std::fprintf(stderr, "rcampaign: bad --scale value: %s\n",
                   scale_text.c_str());
      return Usage();
    }
    scale = *parsed;
  }

  campaign::CampaignSpec spec;
  spec.name = name;
  if (Status status = campaign::ParseGrid(grid_text, scale, &spec);
      !status.ok()) {
    std::fprintf(stderr, "rcampaign: %s\n", status.ToString().c_str());
    return 2;
  }
  if (profile) spec.profile = true;

  if (!emit_dir.empty()) return EmitImages(spec, emit_dir, quiet);

  const campaign::CampaignResult result =
      campaign::Run(spec, {.jobs = jobs});

  if (!quiet) {
    std::printf("%-44s | %6s | %14s | %14s | %10s\n", "run", "ok",
                "cycles", "instructions", "mem KiB");
    for (int i = 0; i < 100; ++i) std::fputc('-', stdout);
    std::fputc('\n', stdout);
    for (const campaign::RunOutcome& outcome : result.outcomes()) {
      if (!outcome.ok()) {
        std::printf("%-44s | %6s | %s\n", outcome.name.c_str(), "FAULT",
                    outcome.FailureText().c_str());
        continue;
      }
      if (outcome.build_only) {
        std::printf("%-44s | %6s | %14s | %14s | %10s\n",
                    outcome.name.c_str(), "build", "-", "-", "-");
        continue;
      }
      std::printf("%-44s | %6s | %14llu | %14llu | %10llu\n",
                  outcome.name.c_str(), "ok",
                  static_cast<unsigned long long>(outcome.metrics.cycles),
                  static_cast<unsigned long long>(
                      outcome.metrics.instructions),
                  static_cast<unsigned long long>(
                      outcome.metrics.peak_mem_kib));
    }
  }
  std::printf("%zu runs, %zu faults, %u jobs\n", result.outcomes().size(),
              result.faults(), result.jobs());

  if (!json_path.empty()) {
    trace::TelemetrySession session(spec.name);
    result.FillSession(&session);
    if (Status status = session.WriteJson(json_path); !status.ok()) {
      std::fprintf(stderr, "rcampaign: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return result.all_ok() ? 0 : 1;
}
