// rrun — run a guest program (.rimg image or .s source) on the simulated
// ROLoad machine.
//
//   rrun program.rimg|program.s [--variant baseline|proc|full]
//        [--harts N] [--exec interp|fast|translated]
//        [--max-instructions N] [--trace] [--stats] [--verify]
//        [--stats-json FILE] [--profile FILE] [--trace-events FILE]
//        [--audit FILE]
//
// --harts         run on an N-hart SMP machine (default 1, the legacy
//                 single-hart system — bit-identical cycles/counters).
//                 Every hart boots at _start with a0 = hartid, a1 = N;
//                 the exit-code contract below is machine-level: a ROLoad
//                 kill on ANY hart exits 99, whichever hart it was
// --exec          host execute tier (default fast): "interp" is the
//                 reference interpreter, "fast" adds the host fast paths,
//                 "translated" adds the superblock translation tier on
//                 top. Tiers change only host speed — simulated cycles,
//                 counters and the exit code are bit-identical across all
//                 three (--stats reports the host-side MIPS difference)
//
// --verify        run the static pointee-integrity verifier (src/verify)
//                 on the image first, then cross-check the loader: every
//                 keyed section must be mapped read-only with its key in
//                 the kernel-built page tables. Refuses to run a violating
//                 image and exits with the smallest violated rule id
// --stats-json    machine-readable counters (the --stats numbers and more)
// --profile       counters + cycle-attribution profile JSON
// --trace-events  Chrome trace_event JSON (open in Perfetto / about:tracing),
//                 streamed to the file during the run so it stays complete
//                 past the in-memory ring's capacity
// --audit         security forensics: write the roload.audit.v1 JSON
//                 (ld.ro dispatch census + fault autopsies) to FILE; on a
//                 fatal fault the human-readable autopsy also prints to
//                 stderr
//
// Exit-code contract, in evaluation order:
//    2          bad usage
//   10..35      --verify refused the image (smallest violated rule id)
//    1          I/O or load failure
//  124          --max-instructions limit hit before the guest exited
//   99          guest killed by a fatal signal classified as a ROLoad
//               pointee-integrity violation (the attack-detected path;
//               distinguishable from 128+sig so harnesses can assert
//               "blocked by ROLoad" without parsing stderr). Caveat: a
//               guest calling exit(99) is indistinguishable by code alone
//               — the stderr "[ROLoad violation]" line disambiguates.
//  128+signal   guest killed by any other fatal signal (shell convention)
//  otherwise    the guest's own exit code (low 8 bits)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "asmtool/assembler.h"
#include "asmtool/image_io.h"
#include "audit/report.h"
#include "core/system.h"
#include "core/toolchain.h"
#include "isa/disasm.h"
#include "smp/machine.h"
#include "support/strings.h"
#include "trace/exporters.h"
#include "trace/stream_sink.h"
#include "verify/binary.h"
#include "verify/verify.h"

using namespace roload;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rrun program.rimg|program.s "
               "[--variant baseline|proc|full] [--harts N] "
               "[--exec interp|fast|translated] "
               "[--max-instructions N] "
               "[--trace] [--stats] [--verify] [--stats-json FILE] "
               "[--profile FILE] [--trace-events FILE] [--audit FILE]\n");
  return 2;
}

// Accepts "--flag value" and "--flag=value"; on match stores the value and
// advances *i past a separate value argument.
bool FlagValue(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(flag) + "=";
  if (StartsWith(arg, prefix)) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == flag && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  core::SystemVariant variant = core::SystemVariant::kFullRoload;
  cpu::ExecTier exec = cpu::ExecTier::kFast;
  unsigned harts = 1;
  std::uint64_t max_instructions = 1ull << 32;
  bool trace = false;
  bool stats = false;
  bool verify_image = false;
  std::string stats_json_path;
  std::string profile_path;
  std::string trace_events_path;
  std::string audit_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (FlagValue(argc, argv, &i, "--stats-json", &stats_json_path) ||
        FlagValue(argc, argv, &i, "--profile", &profile_path) ||
        FlagValue(argc, argv, &i, "--trace-events", &trace_events_path) ||
        FlagValue(argc, argv, &i, "--audit", &audit_path)) {
      continue;
    }
    if (arg == "--variant" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "baseline") {
        variant = core::SystemVariant::kBaseline;
      } else if (value == "proc") {
        variant = core::SystemVariant::kProcessorModified;
      } else if (value == "full") {
        variant = core::SystemVariant::kFullRoload;
      } else {
        return Usage();
      }
    } else if (arg == "--exec" && i + 1 < argc) {
      const auto parsed = cpu::ParseExecTier(argv[++i]);
      if (!parsed) return Usage();
      exec = *parsed;
    } else if (arg == "--harts" && i + 1 < argc) {
      const unsigned long parsed = std::strtoul(argv[++i], nullptr, 0);
      if (parsed == 0 || parsed > 64) return Usage();
      harts = static_cast<unsigned>(parsed);
    } else if (arg == "--max-instructions" && i + 1 < argc) {
      max_instructions = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--verify") {
      verify_image = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) return Usage();

  asmtool::LinkImage image;
  if (EndsWith(input, ".s") || EndsWith(input, ".asm")) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "rrun: cannot open %s\n", input.c_str());
      return 1;
    }
    const std::string source((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    auto assembled = asmtool::Assemble(source);
    if (!assembled.ok()) {
      std::fprintf(stderr, "rrun: %s\n",
                   assembled.status().ToString().c_str());
      return 1;
    }
    image = *std::move(assembled);
  } else {
    auto loaded = asmtool::LoadImage(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "rrun: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    image = *std::move(loaded);
  }

  if (verify_image) {
    verify::Report report;
    verify::VerifyImage(image, verify::BinaryPolicy{},
                        /*expectations=*/nullptr, &report);
    if (!report.ok()) {
      std::fprintf(stderr, "rrun: static verification failed:\n%s",
                   report.ToText().c_str());
      return report.ExitCode();
    }
  }

  smp::SmpConfig config;
  config.variant = variant;
  config.harts = harts;
  cpu::SetExecTier(&config.cpu, exec);
  config.trace.profile = !profile_path.empty();
  config.trace.audit = !audit_path.empty();
  if (!trace_events_path.empty()) {
    config.trace.categories = trace::kAllCategories;
  }
  // One hart is the legacy single-hart System, bit-for-bit; more harts
  // share the address space behind a shared L2.
  smp::Machine system(config);
  if (Status status = system.Load(image); !status.ok()) {
    std::fprintf(stderr, "rrun: %s\n", status.ToString().c_str());
    return 1;
  }
  if (verify_image) {
    // Static checks passed; now cross-check the *loader*: every keyed
    // section must actually be mapped read-only with its key in the page
    // tables the kernel just built (a roload-unaware kernel silently maps
    // keys as 0, which would disarm ld.ro).
    const verify::Report loader_report =
        core::VerifyLoadedImage(system.kernel(), image);
    if (!loader_report.ok()) {
      std::fprintf(stderr, "rrun: loader verification failed:\n%s",
                   loader_report.ToText().c_str());
      return loader_report.ExitCode();
    }
  }
  // Events stream to the file as they are emitted, so the export survives
  // runs longer than the in-memory ring (which keeps only the newest 64Ki
  // events).
  std::unique_ptr<trace::ChromeTraceFileSink> event_sink;
  if (!trace_events_path.empty()) {
    auto opened = trace::ChromeTraceFileSink::Open(trace_events_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "rrun: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    event_sink = std::move(opened).value();
    system.trace().AddSink(event_sink.get());
  }
  if (trace) {
    for (unsigned h = 0; h < harts; ++h) {
      system.cpu(h).set_trace_hook(
          [h](std::uint64_t pc, const isa::Instruction& inst) {
            std::fprintf(stderr, "[%u] %10llx:  %s\n", h,
                         static_cast<unsigned long long>(pc),
                         isa::Disassemble(inst).c_str());
          });
    }
  }

  const auto host_start = std::chrono::steady_clock::now();
  const kernel::RunResult result = system.Run(max_instructions);
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  if (!result.stdout_text.empty()) {
    std::fwrite(result.stdout_text.data(), 1, result.stdout_text.size(),
                stdout);
  }

  // Host-side speed: simulated instructions retired per host second.
  // Machine-level (sums across harts), so SMP runs report aggregate MIPS.
  const double simulated_mips =
      host_seconds > 0.0 ? static_cast<double>(result.instructions) /
                               host_seconds / 1e6
                         : 0.0;

  if (stats) {
    const auto& cpu = system.cpu().stats();
    std::fprintf(stderr,
                 "instructions %llu\ncycles       %llu\nIPC          %.3f\n"
                 "loads        %llu (ld.ro %llu)\nstores       %llu\n"
                 "branches     %llu (taken %llu)\n"
                 "i$ miss      %.4f%%\nd$ miss      %.4f%%\n"
                 "dtlb miss    %llu\npeak memory  %llu KiB\n",
                 static_cast<unsigned long long>(cpu.instructions),
                 static_cast<unsigned long long>(cpu.cycles),
                 cpu.cycles ? static_cast<double>(cpu.instructions) /
                                  static_cast<double>(cpu.cycles)
                            : 0.0,
                 static_cast<unsigned long long>(cpu.loads),
                 static_cast<unsigned long long>(cpu.roload_loads),
                 static_cast<unsigned long long>(cpu.stores),
                 static_cast<unsigned long long>(cpu.branches),
                 static_cast<unsigned long long>(cpu.taken_branches),
                 system.cpu().icache_stats().MissRate() * 100,
                 system.cpu().dcache_stats().MissRate() * 100,
                 static_cast<unsigned long long>(
                     system.cpu().dtlb_stats().misses),
                 static_cast<unsigned long long>(result.peak_mem_kib));
    // Host-side speed (not simulated state): how fast the host executed
    // the run, and under which tier.
    std::fprintf(stderr,
                 "exec tier    %.*s\nhost wall    %.3f s\n"
                 "sim MIPS     %.2f\n",
                 static_cast<int>(cpu::ExecTierName(exec).size()),
                 cpu::ExecTierName(exec).data(), host_seconds,
                 simulated_mips);
    // SMP runs append the per-hart split (the block above is hart 0) and
    // the machine totals the merged result reports.
    if (harts > 1) {
      for (unsigned h = 0; h < harts; ++h) {
        const auto& hart = system.cpu(h).stats();
        std::fprintf(stderr, "hart%u        %llu instructions, %llu cycles\n",
                     h, static_cast<unsigned long long>(hart.instructions),
                     static_cast<unsigned long long>(hart.cycles));
      }
      std::fprintf(stderr, "machine      %llu instructions, %llu cycles "
                   "(max over harts)\n",
                   static_cast<unsigned long long>(result.instructions),
                   static_cast<unsigned long long>(result.cycles));
    }
  }

  if (!stats_json_path.empty()) {
    trace::HostRunStats host;
    host.wall_seconds = host_seconds;
    host.simulated_mips = simulated_mips;
    host.exec_tier = std::string(cpu::ExecTierName(exec));
    if (Status status = trace::WriteFile(
            stats_json_path,
            trace::ExportCountersJson(system.trace().counters(), &host));
        !status.ok()) {
      std::fprintf(stderr, "rrun: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!profile_path.empty()) {
    if (Status status = trace::WriteFile(
            profile_path, trace::ExportProfileJson(system.trace()));
        !status.ok()) {
      std::fprintf(stderr, "rrun: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (event_sink != nullptr) {
    system.trace().RemoveSink(event_sink.get());
    if (Status status = event_sink->Close(); !status.ok()) {
      std::fprintf(stderr, "rrun: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!audit_path.empty()) {
    const audit::Auditor* auditor = system.audit();
    if (Status status = trace::WriteFile(audit_path,
                                         audit::ExportAuditJson(*auditor));
        !status.ok()) {
      std::fprintf(stderr, "rrun: %s\n", status.ToString().c_str());
      return 1;
    }
    // A fatal fault with forensics on also prints the autopsy where a
    // human will see it.
    if (!auditor->autopsies().empty()) {
      const std::string text = audit::ExportAuditText(*auditor);
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
  }

  switch (result.kind) {
    case kernel::ExitKind::kExited:
      return static_cast<int>(result.exit_code & 0xFF);
    case kernel::ExitKind::kKilled:
      std::fprintf(stderr, "rrun: killed by signal %d (%.*s)%s at pc=0x%llx"
                   " addr=0x%llx\n",
                   result.signal,
                   static_cast<int>(
                       isa::TrapCauseName(result.trap_cause).size()),
                   isa::TrapCauseName(result.trap_cause).data(),
                   result.roload_violation ? " [ROLoad violation]" : "",
                   static_cast<unsigned long long>(result.fault_pc),
                   static_cast<unsigned long long>(result.fault_addr));
      // ROLoad pointee-integrity kills get their own code (see the
      // contract in the header comment).
      return result.roload_violation ? 99 : 128 + result.signal;
    case kernel::ExitKind::kInstructionLimit:
      std::fprintf(stderr, "rrun: instruction limit reached\n");
      return 124;
  }
  return 1;
}
