// rverify — static pointee-integrity verifier for linked images.
//
//   rverify image.rimg|program.s [--policy none|vcall|vtint|icall|cfi]
//           [--jobs N] [--json FILE] [--gadgets FILE] [--quiet]
//
// Runs the binary layer of src/verify over the image: section/key
// consistency, writable-alias detection, the whole-image interprocedural
// dispatch proof (call summaries, rules 20-28 and 30-35). `--policy
// icall` additionally requires every indirect call target to be proven
// an ld.ro result on all paths (the full ICall guarantee); the other
// policy names are accepted for symmetry and run the universal rules
// only. `--jobs N` fans the per-function checking phase out over N
// worker threads (0 = one per hardware thread); any job count produces
// bit-identical diagnostics. `--gadgets FILE` additionally scans the
// image for ROP/JOP gadgets and writes the roload.gadgets.v1 census.
//
// Exit code: 0 when the image verifies, otherwise the smallest violated
// rule id (a stable contract the negative-path tests assert on);
// 1 for I/O or assembly errors, 2 for usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "asmtool/assembler.h"
#include "asmtool/image_io.h"
#include "support/strings.h"
#include "verify/binary.h"
#include "verify/gadgets.h"
#include "verify/verify.h"

using namespace roload;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rverify image.rimg|program.s "
               "[--policy none|vcall|vtint|icall|cfi] [--jobs N] "
               "[--json FILE] [--gadgets FILE] [--quiet]\n");
  return 2;
}

// Accepts "--flag value" and "--flag=value"; on match stores the value and
// advances *i past a separate value argument.
bool FlagValue(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(flag) + "=";
  if (StartsWith(arg, prefix)) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == flag && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string policy_name = "none";
  std::string json_path;
  std::string gadgets_path;
  std::string jobs_text;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (FlagValue(argc, argv, &i, "--policy", &policy_name) ||
        FlagValue(argc, argv, &i, "--json", &json_path) ||
        FlagValue(argc, argv, &i, "--gadgets", &gadgets_path) ||
        FlagValue(argc, argv, &i, "--jobs", &jobs_text)) {
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) return Usage();
  if (policy_name != "none" && policy_name != "vcall" &&
      policy_name != "vtint" && policy_name != "icall" &&
      policy_name != "cfi") {
    return Usage();
  }
  unsigned jobs = 1;
  if (!jobs_text.empty()) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(jobs_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      std::fprintf(stderr, "rverify: bad --jobs value: %s\n",
                   jobs_text.c_str());
      return 2;
    }
    jobs = static_cast<unsigned>(parsed);
  }

  asmtool::LinkImage image;
  if (EndsWith(input, ".s") || EndsWith(input, ".asm")) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "rverify: cannot open %s\n", input.c_str());
      return 1;
    }
    const std::string source((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    auto assembled = asmtool::Assemble(source);
    if (!assembled.ok()) {
      std::fprintf(stderr, "rverify: %s\n",
                   assembled.status().ToString().c_str());
      return 1;
    }
    image = *std::move(assembled);
  } else {
    auto loaded = asmtool::LoadImage(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "rverify: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    image = *std::move(loaded);
  }

  verify::BinaryPolicy policy;
  policy.name = policy_name;
  policy.require_protected_dispatch = policy_name == "icall";

  verify::Report report;
  verify::VerifyImageOptions options;
  options.jobs = jobs;
  verify::VerifyImage(image, policy, /*expectations=*/nullptr, &report,
                      options);

  if (!gadgets_path.empty()) {
    const verify::GadgetCensus census = verify::ScanGadgets(image);
    std::ofstream out(gadgets_path);
    if (!out) {
      std::fprintf(stderr, "rverify: cannot write %s\n",
                   gadgets_path.c_str());
      return 1;
    }
    out << census.ToJson(input) << "\n";
    if (!quiet) {
      std::printf(
          "rverify: %llu gadgets (%llu ret, %llu jalr, %llu compressed, "
          "%llu misaligned) -> %s\n",
          static_cast<unsigned long long>(census.stats.gadgets),
          static_cast<unsigned long long>(census.stats.ret_terminated),
          static_cast<unsigned long long>(census.stats.jalr_terminated),
          static_cast<unsigned long long>(census.stats.compressed),
          static_cast<unsigned long long>(census.stats.misaligned),
          gadgets_path.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "rverify: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.ToJson("rverify", input, policy.name);
  }
  if (!quiet) {
    std::fputs(report.ToText().c_str(), report.ok() ? stdout : stderr);
    if (report.ok()) {
      std::printf("rverify: %s OK (policy %s)\n", input.c_str(),
                  policy.name.c_str());
    }
  }
  return report.ExitCode();
}
