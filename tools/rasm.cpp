// rasm — the ROLoad assembler CLI: assembles a .s file (with ld.ro-family
// instructions and .rodata.key.<K> sections) into a loadable .rimg image.
//
//   rasm input.s [-o output.rimg] [--entry SYMBOL] [--list]
//
// --list prints the section layout and symbol table after assembly.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "asmtool/assembler.h"
#include "asmtool/image_io.h"

using namespace roload;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: rasm input.s [-o output.rimg] [--entry SYMBOL] "
               "[--list]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  asmtool::AssemblerOptions options;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--entry" && i + 1 < argc) {
      options.entry_symbol = argv[++i];
    } else if (arg == "--list") {
      list = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) return Usage();
  if (output.empty()) {
    output = input;
    const std::size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".rimg";
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "rasm: cannot open %s\n", input.c_str());
    return 1;
  }
  const std::string source((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());

  auto image = asmtool::Assemble(source, options);
  if (!image.ok()) {
    std::fprintf(stderr, "rasm: %s: %s\n", input.c_str(),
                 image.status().ToString().c_str());
    return 1;
  }

  if (Status status = asmtool::SaveImage(*image, output); !status.ok()) {
    std::fprintf(stderr, "rasm: %s\n", status.ToString().c_str());
    return 1;
  }

  if (list) {
    std::printf("entry: 0x%llx\n",
                static_cast<unsigned long long>(image->entry));
    std::printf("%-24s %10s %8s %5s %5s\n", "section", "vaddr", "size",
                "perms", "key");
    for (const auto& section : image->sections) {
      std::printf("%-24s 0x%08llx %8llu   %c%c%c %5u\n",
                  section.name.c_str(),
                  static_cast<unsigned long long>(section.vaddr),
                  static_cast<unsigned long long>(section.size),
                  section.perms.read ? 'r' : '-',
                  section.perms.write ? 'w' : '-',
                  section.perms.exec ? 'x' : '-', section.key);
    }
    std::printf("\n%zu symbols\n", image->symbols.size());
    for (const auto& [name, value] : image->symbols) {
      std::printf("  0x%08llx  %s\n", static_cast<unsigned long long>(value),
                  name.c_str());
    }
  }
  std::printf("rasm: wrote %s\n", output.c_str());
  return 0;
}
