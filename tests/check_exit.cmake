# Runs a command and checks its *exact* exit code -- ctest's
# PASS_REGULAR_EXPRESSION cannot do this, and the rverify CLI contract
# is "exit code == smallest violated rule id".
#
# Usage:
#   cmake -DCMD=<exe> "-DARGS=a;b;c" -DEXPECT=<code>
#         ["-DEXPECT_OUTPUT=regex;regex"] -P check_exit.cmake
#
# EXPECT_OUTPUT is an optional semicolon-separated list of regexes; each
# must match the combined stdout+stderr of the run. This lets exit-code
# tests also pin diagnostic text (e.g. "both RV0NN lines are printed").
if(NOT DEFINED CMD OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "check_exit.cmake needs -DCMD=... and -DEXPECT=...")
endif()
# A missing binary must fail loudly as *this* error, not whatever
# execute_process reports: a stale $<TARGET_FILE:...> or a typo'd path
# would otherwise masquerade as a contract violation.
if(NOT EXISTS "${CMD}")
  message(FATAL_ERROR "check_exit.cmake: no such binary: ${CMD}")
endif()
execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE actual
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
# RESULT_VARIABLE is a textual error ("Segmentation fault", "no such
# file or directory", ...) when the process died without an exit code.
if(NOT actual MATCHES "^[0-9]+$")
  message(FATAL_ERROR
    "${CMD} did not exit normally: ${actual}\nstdout:\n${out}\n"
    "stderr:\n${err}")
endif()
if(NOT actual EQUAL ${EXPECT})
  message(FATAL_ERROR
    "${CMD} exited ${actual}, expected ${EXPECT}\nstdout:\n${out}\n"
    "stderr:\n${err}")
endif()
if(DEFINED EXPECT_OUTPUT)
  foreach(pattern IN LISTS EXPECT_OUTPUT)
    if(NOT "${out}${err}" MATCHES "${pattern}")
      message(FATAL_ERROR
        "${CMD} output does not match '${pattern}'\nstdout:\n${out}\n"
        "stderr:\n${err}")
    endif()
  endforeach()
endif()
