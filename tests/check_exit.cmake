# Runs a command and checks its *exact* exit code -- ctest's
# PASS_REGULAR_EXPRESSION cannot do this, and the rverify CLI contract
# is "exit code == smallest violated rule id".
#
# Usage:
#   cmake -DCMD=<exe> "-DARGS=a;b;c" -DEXPECT=<code> -P check_exit.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "check_exit.cmake needs -DCMD=... and -DEXPECT=...")
endif()
execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE actual
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT actual EQUAL ${EXPECT})
  message(FATAL_ERROR
    "${CMD} exited ${actual}, expected ${EXPECT}\nstdout:\n${out}\n"
    "stderr:\n${err}")
endif()
