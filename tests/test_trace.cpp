// Telemetry subsystem tests: counter registry bridging and determinism,
// event ring-buffer semantics, exact cycle attribution, the exporters'
// golden output, and — the load-bearing guarantee — that enabling the
// full tracing stack never perturbs architectural state or cycle counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "core/toolchain.h"
#include "ir/builder.h"
#include "tests/guest_util.h"
#include "trace/exporters.h"
#include "trace/merge.h"
#include "trace/session.h"
#include "trace/stream_sink.h"

namespace roload {
namespace {

using trace::CycleBucket;
using trace::EventCategory;
using trace::EventType;
using trace::TraceEvent;

// ---------------------------------------------------------------------------
// Unit level: registry, ring buffer, profiler.

TEST(CounterRegistryTest, BridgedCellTracksLiveValue) {
  trace::CounterRegistry registry;
  std::uint64_t cell = 0;
  registry.Register("unit.bridged", &cell);
  EXPECT_EQ(registry.Value("unit.bridged"), 0u);
  cell = 41;
  ++cell;
  EXPECT_EQ(registry.Value("unit.bridged"), 42u);
}

TEST(CounterRegistryTest, OwnedCellAndUnknownLookup) {
  trace::CounterRegistry registry;
  std::uint64_t* owned = registry.RegisterOwned("unit.owned");
  *owned = 7;
  bool found = false;
  EXPECT_EQ(registry.Value("unit.owned", &found), 7u);
  EXPECT_TRUE(found);
  EXPECT_EQ(registry.Value("unit.no_such", &found), 0u);
  EXPECT_FALSE(found);
}

TEST(CounterRegistryTest, SnapshotSortsByName) {
  trace::CounterRegistry registry;
  *registry.RegisterOwned("z.last") = 1;
  *registry.RegisterOwned("a.first") = 2;
  *registry.RegisterOwned("m.middle") = 3;
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a.first");
  EXPECT_EQ(snapshot[1].first, "m.middle");
  EXPECT_EQ(snapshot[2].first, "z.last");
  EXPECT_EQ(snapshot[2].second, 1u);
}

TEST(EventBufferTest, WrapsOverwritingOldest) {
  trace::EventBuffer buffer(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceEvent event;
    event.cycle = i;
    buffer.Push(event);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  EXPECT_EQ(buffer.total_pushed(), 10u);
  // Chronological iteration yields the newest four, oldest first.
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer.at(i).cycle, 6u + i);
  }
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(CycleProfilerTest, ResidualProtocolSumsExactly) {
  trace::CycleProfiler profiler(/*pc_bucket_bits=*/12);
  profiler.BeginStep();
  profiler.Charge(CycleBucket::kDCacheMiss, 3);
  profiler.Charge(CycleBucket::kDTlbWalk, 2);
  profiler.EndStep(CycleBucket::kCompute, /*pc=*/0x10000, /*total_cycles=*/10);
  profiler.BeginStep();
  profiler.EndStep(CycleBucket::kSyscall, /*pc=*/0x10008, /*total_cycles=*/4);

  EXPECT_EQ(profiler.bucket(CycleBucket::kDCacheMiss), 3u);
  EXPECT_EQ(profiler.bucket(CycleBucket::kDTlbWalk), 2u);
  EXPECT_EQ(profiler.bucket(CycleBucket::kCompute), 5u);
  EXPECT_EQ(profiler.bucket(CycleBucket::kSyscall), 4u);
  EXPECT_EQ(profiler.total_cycles(), 14u);
  std::uint64_t sum = 0;
  for (unsigned b = 0; b < static_cast<unsigned>(CycleBucket::kNumBuckets);
       ++b) {
    sum += profiler.bucket(static_cast<CycleBucket>(b));
  }
  EXPECT_EQ(sum, profiler.total_cycles());
  // Both steps land in the same 4 KiB pc range.
  const auto ranges = profiler.PcRanges();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0x10000u);
  EXPECT_EQ(ranges[0].second, 14u);
}

// ---------------------------------------------------------------------------
// System level: a small guest exercising ld.ro, syscalls and the MMU.

constexpr const char* kGuestSource = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 9
  li t2, 1234
  sub a0, t1, t2
  snez a0, a0
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
)";

TEST(TraceSystemTest, CountersMatchLegacyStats) {
  const testing::GuestRun run = testing::RunGuest(kGuestSource);
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited);
  ASSERT_EQ(run.result.exit_code, 0);
  core::System& system = *run.system;
  const trace::CounterRegistry& counters = system.trace().counters();
  const cpu::CpuStats& cpu = system.cpu().stats();

  EXPECT_EQ(counters.Value("cpu.instret"), cpu.instructions);
  EXPECT_EQ(counters.Value("cpu.cycles"), cpu.cycles);
  EXPECT_EQ(counters.Value("cpu.roload_loads"), cpu.roload_loads);
  EXPECT_EQ(cpu.roload_loads, 1u);
  // Every retired ld.ro went through exactly one key check, and all passed.
  EXPECT_EQ(counters.Value("tlb.d.key_check"), cpu.roload_loads);
  EXPECT_EQ(counters.Value("tlb.d.key_check_hit"),
            counters.Value("tlb.d.key_check"));
  EXPECT_EQ(counters.Value("kernel.fault.roload"), 0u);
  EXPECT_GE(counters.Value("kernel.syscalls"), 1u);
}

TEST(TraceSystemTest, CounterSnapshotIsDeterministicAcrossRuns) {
  const testing::GuestRun first = testing::RunGuest(kGuestSource);
  const testing::GuestRun second = testing::RunGuest(kGuestSource);
  ASSERT_EQ(first.result.kind, kernel::ExitKind::kExited);
  ASSERT_EQ(second.result.kind, kernel::ExitKind::kExited);
  const auto a = first.system->trace().counters().Snapshot();
  const auto b = second.system->trace().counters().Snapshot();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 20u);  // the full registry, not a stub
}

// The bit-identical guarantee: running with every category traced and the
// profiler on must leave cycles, retired instructions, the exit code and
// all architectural state exactly as a run with telemetry disabled.
TEST(TraceSystemTest, FullTracingIsBitIdenticalToDisabled) {
  const testing::GuestRun plain = testing::RunGuest(kGuestSource);

  auto image = asmtool::Assemble(kGuestSource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  core::SystemConfig config;
  config.trace.categories = trace::kAllCategories;
  config.trace.profile = true;
  core::System traced(config);
  ASSERT_TRUE(traced.Load(*image).ok());
  const kernel::RunResult result = traced.Run(1 << 22);

  ASSERT_EQ(result.kind, plain.result.kind);
  EXPECT_EQ(result.exit_code, plain.result.exit_code);
  const cpu::CpuStats& a = plain.system->cpu().stats();
  const cpu::CpuStats& b = traced.cpu().stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(plain.system->cpu().pc(), traced.cpu().pc());
  for (unsigned r = 0; r < isa::kNumRegs; ++r) {
    EXPECT_EQ(plain.system->cpu().reg(r), traced.cpu().reg(r)) << "x" << r;
  }
  // And the traced run actually recorded something.
  EXPECT_GT(traced.trace().events().total_pushed(), 0u);
  EXPECT_GT(traced.trace().profiler().total_cycles(), 0u);
}

TEST(TraceSystemTest, ProfilerBucketsSumToCpuCycles) {
  auto image = asmtool::Assemble(kGuestSource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  core::SystemConfig config;
  config.trace.profile = true;
  core::System system(config);
  ASSERT_TRUE(system.Load(*image).ok());
  const kernel::RunResult result = system.Run(1 << 22);
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);

  const trace::CycleProfiler& profiler = system.trace().profiler();
  std::uint64_t sum = 0;
  for (unsigned b = 0; b < static_cast<unsigned>(CycleBucket::kNumBuckets);
       ++b) {
    sum += profiler.bucket(static_cast<CycleBucket>(b));
  }
  EXPECT_EQ(sum, system.cpu().stats().cycles);
  EXPECT_EQ(profiler.total_cycles(), system.cpu().stats().cycles);
  // The guest retires one ld.ro; its base cycles must be attributed to the
  // dedicated ROLoad bucket.
  EXPECT_GT(profiler.bucket(CycleBucket::kRoLoadLoad), 0u);
  EXPECT_GT(profiler.bucket(CycleBucket::kSyscall), 0u);
}

TEST(TraceSystemTest, EventStreamIsChronologicalAndTyped) {
  auto image = asmtool::Assemble(kGuestSource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  core::SystemConfig config;
  config.trace.categories = trace::kAllCategories;
  core::System system(config);
  ASSERT_TRUE(system.Load(*image).ok());
  const kernel::RunResult result = system.Run(1 << 22);
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);

  const trace::EventBuffer& events = system.trace().events();
  ASSERT_GT(events.size(), 0u);
  bool saw_retire = false, saw_syscall = false, saw_tlb_fill = false;
  std::uint64_t last_cycle = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events.at(i);
    EXPECT_GE(event.cycle, last_cycle);
    last_cycle = event.cycle;
    saw_retire |= event.type == EventType::kRetire;
    saw_syscall |= event.type == EventType::kSyscall;
    saw_tlb_fill |= event.type == EventType::kTlbFill;
  }
  EXPECT_TRUE(saw_retire);
  EXPECT_TRUE(saw_syscall);
  EXPECT_TRUE(saw_tlb_fill);
  // Retires match the architectural count (ring large enough not to drop).
  EXPECT_EQ(events.dropped(), 0u);
}

TEST(TraceSystemTest, RoLoadKeyMismatchEmitsFaultEvent) {
  constexpr const char* kBadKeySource = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 8
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
)";
  auto image = asmtool::Assemble(kBadKeySource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  core::SystemConfig config;
  config.trace.categories = trace::kAllCategories;
  core::System system(config);
  ASSERT_TRUE(system.Load(*image).ok());
  const kernel::RunResult result = system.Run(1 << 22);
  ASSERT_EQ(result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(result.roload_violation);

  bool saw_fault = false;
  const trace::EventBuffer& events = system.trace().events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    saw_fault |= events.at(i).type == EventType::kRoLoadFault;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_EQ(system.trace().counters().Value("kernel.fault.roload"), 1u);
}

// ---------------------------------------------------------------------------
// Toolchain level: a hardened workload reports identical counters on
// repeated builds+runs (what the bench JSON files rely on).

ir::Module MakeVcallModule() {
  ir::Module module;
  module.name = "trace_vcall";
  const int class_id = module.InternClass("Widget");

  ir::Global object;
  object.name = "widget";
  object.read_only = false;
  object.quads.push_back(ir::GlobalInit{0, "vtable_Widget"});
  module.globals.push_back(object);

  ir::Global vtable;
  vtable.name = "vtable_Widget";
  vtable.read_only = true;
  vtable.trait = ir::GlobalTrait::kVTable;
  vtable.trait_id = class_id;
  vtable.quads.push_back(ir::GlobalInit{0, "Widget_get"});
  module.globals.push_back(vtable);

  {
    ir::FunctionBuilder b(&module, "Widget_get", "i64(ptr)", 1);
    b.Ret(b.Const(5));
  }
  {
    ir::FunctionBuilder b(&module, "main", "i64()", 0);
    const int obj = b.AddrOf("widget");
    const int vptr = b.Load(obj, 0, 8, ir::Trait::kVPtrLoad, 0);
    const int method = b.Load(vptr, 0, 8, ir::Trait::kVTableEntryLoad, 0);
    const int r = b.ICall(method, {obj}, module.InternFnType("i64(ptr)"),
                          /*has_result=*/true, /*is_vcall=*/true);
    b.Ret(r);
  }
  module.RecomputeAddressTaken();
  return module;
}

TEST(TraceToolchainTest, HardenedRunCountersAreDeterministic) {
  core::BuildOptions options;
  options.defense = core::Defense::kVCall;
  const ir::Module module = MakeVcallModule();
  auto first = core::CompileAndRun(module, options,
                                   core::SystemVariant::kFullRoload);
  auto second = core::CompileAndRun(module, options,
                                    core::SystemVariant::kFullRoload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(first->counters.empty());
  EXPECT_EQ(first->counters, second->counters);
  // The hardened vcall executes ld.ro and its key checks show up under the
  // registry names the bench JSON exports.
  EXPECT_GT(first->Counter("cpu.roload_loads"), 0u);
  EXPECT_EQ(first->Counter("tlb.d.key_check"),
            first->Counter("cpu.roload_loads"));
  EXPECT_EQ(first->Counter("cpu.instret"), first->instructions);
}

// ---------------------------------------------------------------------------
// Exporters: golden output.

TEST(ExportersTest, CountersJsonGolden) {
  trace::CounterRegistry registry;
  *registry.RegisterOwned("b.second") = 1;
  *registry.RegisterOwned("a.first") = 42;
  const std::string expected =
      "{\n"
      "  \"schema\": \"roload.counters.v1\",\n"
      "  \"counters\": {\n"
      "    \"a.first\": 42,\n"
      "    \"b.second\": 1\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(trace::ExportCountersJson(registry), expected);
}

TEST(ExportersTest, ChromeTraceGolden) {
  trace::EventBuffer events(8);
  TraceEvent retire;
  retire.cycle = 5;
  retire.pc = 0x1000;
  retire.arg = 3;
  retire.type = EventType::kRetire;
  retire.category = EventCategory::kInstruction;
  retire.unit = trace::Unit::kCpu;
  events.Push(retire);
  TraceEvent fault;
  fault.cycle = 9;
  fault.pc = 0x1004;
  fault.addr = 0x2000;
  fault.arg = 7;
  fault.type = EventType::kRoLoadFault;
  fault.category = EventCategory::kRoLoad;
  fault.unit = trace::Unit::kDTlb;
  events.Push(fault);

  const std::string out = trace::ExportChromeTrace(events);
  // Perfetto-required envelope and metadata.
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                     "\"name\":\"process_name\""),
            std::string::npos);
  // The retire is a complete slice, the fault an instant, both timestamped
  // with their simulated cycle.
  EXPECT_NE(out.find("{\"name\":\"retire\",\"cat\":\"instruction\","
                     "\"ph\":\"X\",\"dur\":1,\"ts\":5,\"pid\":1,\"tid\":0,"
                     "\"args\":{\"pc\":\"0x1000\",\"addr\":\"0x0\","
                     "\"arg\":3}}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"name\":\"roload_fault\",\"cat\":\"roload\","
                     "\"ph\":\"i\",\"s\":\"t\",\"ts\":9,\"pid\":1,\"tid\":2,"
                     "\"args\":{\"pc\":\"0x1004\",\"addr\":\"0x2000\","
                     "\"arg\":7}}"),
            std::string::npos);
  // Valid JSON shape: balanced braces, closing envelope.
  EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

TEST(ExportersTest, ProfileJsonListsBucketsAndRanges) {
  trace::Hub hub({.categories = 0, .event_capacity = 8, .profile = true});
  hub.profiler().BeginStep();
  hub.profiler().Charge(CycleBucket::kICacheMiss, 4);
  hub.profiler().EndStep(CycleBucket::kCompute, 0x4000, 10);
  *hub.counters().RegisterOwned("x.count") = 3;

  const std::string out = trace::ExportProfileJson(hub);
  EXPECT_NE(out.find("\"schema\": \"roload.profile.v1\""), std::string::npos);
  EXPECT_NE(out.find("\"total_cycles\": 10"), std::string::npos);
  EXPECT_NE(out.find("\"icache_miss\": 4"), std::string::npos);
  EXPECT_NE(out.find("\"compute\": 6"), std::string::npos);
  EXPECT_NE(out.find("\"base\": \"0x4000\""), std::string::npos);
  EXPECT_NE(out.find("\"x.count\": 3"), std::string::npos);
}

TEST(ExportersTest, TextSummaryCoversCountersAndAttribution) {
  trace::Hub hub({.categories = trace::kAllCategories, .event_capacity = 4,
                  .profile = true});
  *hub.counters().RegisterOwned("y.thing") = 2;
  hub.profiler().BeginStep();
  hub.profiler().EndStep(CycleBucket::kCompute, 0, 8);
  hub.Emit(trace::Unit::kCpu, EventCategory::kInstruction, EventType::kRetire,
           0, 0, 0);
  const std::string out = trace::ExportTextSummary(hub);
  EXPECT_NE(out.find("y.thing"), std::string::npos);
  EXPECT_NE(out.find("== cycle attribution =="), std::string::npos);
  EXPECT_NE(out.find("compute"), std::string::npos);
  EXPECT_NE(out.find("== events =="), std::string::npos);
}

TEST(TelemetrySessionTest, BenchJsonGolden) {
  trace::TelemetrySession session("unit");
  session.Record("alpha", std::uint64_t{3});
  session.Record("beta", 1.5);
  session.Record("note", std::string_view("ok"));
  session.Record("alpha", std::uint64_t{4});  // overwrite keeps position
  const std::string expected =
      "{\n"
      "  \"schema\": \"roload.bench.v1\",\n"
      "  \"name\": \"unit\",\n"
      "  \"results\": {\n"
      "    \"alpha\": 4,\n"
      "    \"beta\": 1.5,\n"
      "    \"note\": \"ok\"\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(session.ToJson(), expected);
}

// ---------------------------------------------------------------------------
// Cross-run counter merging (the campaign aggregation primitive).

TEST(CounterMergerTest, AggregatesAcrossRuns) {
  trace::CounterMerger merger;
  merger.Add("run0", {{"a", 1}, {"b", 10}});
  merger.Add("run1", {{"a", 5}, {"b", 20}});
  merger.Add("run2", {{"a", 3}});  // b not reported
  EXPECT_EQ(merger.runs(), 3u);
  const auto merged = merger.Merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].first, "a");
  EXPECT_EQ(merged[0].second.sum, 9u);
  EXPECT_EQ(merged[0].second.min, 1u);
  EXPECT_EQ(merged[0].second.max, 5u);
  EXPECT_EQ(merged[0].second.runs, 3u);
  EXPECT_EQ(merged[1].first, "b");
  EXPECT_EQ(merged[1].second.sum, 30u);
  EXPECT_EQ(merged[1].second.runs, 2u);
}

TEST(CounterMergerTest, PerRunKeepsAddOrder) {
  trace::CounterMerger merger;
  merger.Add("z", {{"a", 7}});
  merger.Add("m", {{"a", 2}});
  const auto per_run = merger.PerRun("a");
  ASSERT_EQ(per_run.size(), 2u);
  EXPECT_EQ(per_run[0].first, "z");
  EXPECT_EQ(per_run[0].second, 7u);
  EXPECT_EQ(per_run[1].first, "m");
  EXPECT_EQ(merger.PerRun("no_such").size(), 0u);
}

TEST(CounterMergerTest, DisjointCounterSetsKeepPerNameRunCounts) {
  trace::CounterMerger merger;
  merger.Add("run0", {{"only.a", 3}});
  merger.Add("run1", {{"only.b", 5}});
  const auto merged = merger.Merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].first, "only.a");
  EXPECT_EQ(merged[0].second.sum, 3u);
  EXPECT_EQ(merged[0].second.min, 3u);
  EXPECT_EQ(merged[0].second.max, 3u);
  EXPECT_EQ(merged[0].second.runs, 1u);
  EXPECT_EQ(merged[1].first, "only.b");
  EXPECT_EQ(merged[1].second.runs, 1u);
  EXPECT_EQ(merger.PerRun("only.a").size(), 1u);
}

TEST(CounterMergerTest, EmptySnapshotsAndEmptyMerger) {
  trace::CounterMerger empty;
  EXPECT_EQ(empty.runs(), 0u);
  EXPECT_TRUE(empty.Merged().empty());
  EXPECT_TRUE(empty.PerRun("anything").empty());

  // A run with an empty snapshot still counts as a run; it just reports
  // no counters.
  trace::CounterMerger merger;
  merger.Add("empty_run", {});
  merger.Add("real_run", {{"x", 1}});
  EXPECT_EQ(merger.runs(), 2u);
  const auto merged = merger.Merged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].second.runs, 1u);
}

TEST(CounterMergerTest, AggregatesAreAddOrderIndependent) {
  const std::vector<std::pair<std::string, std::uint64_t>> s0 = {{"a", 1},
                                                                 {"b", 9}};
  const std::vector<std::pair<std::string, std::uint64_t>> s1 = {{"a", 4}};
  const std::vector<std::pair<std::string, std::uint64_t>> s2 = {{"b", 2},
                                                                 {"c", 7}};
  trace::CounterMerger forward;
  forward.Add("r0", s0);
  forward.Add("r1", s1);
  forward.Add("r2", s2);
  trace::CounterMerger backward;
  backward.Add("r2", s2);
  backward.Add("r1", s1);
  backward.Add("r0", s0);

  const auto a = forward.Merged();
  const auto b = backward.Merged();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second.sum, b[i].second.sum);
    EXPECT_EQ(a[i].second.min, b[i].second.min);
    EXPECT_EQ(a[i].second.max, b[i].second.max);
    EXPECT_EQ(a[i].second.runs, b[i].second.runs);
  }
}

TEST(TelemetrySessionTest, AttachedMergerEmitsMergedCounters) {
  trace::CounterMerger merger;
  merger.Add("r0", {{"unit.x", 2}});
  merger.Add("r1", {{"unit.x", 4}});
  trace::TelemetrySession session("unit");
  session.set_schema("roload.campaign.v1");
  session.set_merger(&merger);
  const std::string json = session.ToJson();
  EXPECT_NE(json.find("\"schema\": \"roload.campaign.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"merged_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.x\""), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"min\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming Chrome-trace sink.

TEST(StreamSinkTest, MatchesExportChromeTraceWhenRingRetainsAll) {
  const std::string path = "stream_sink_small.trace";
  trace::Hub hub({.categories = trace::kAllCategories, .event_capacity = 64});
  auto sink = trace::ChromeTraceFileSink::Open(path);
  ASSERT_TRUE(sink.ok());
  hub.AddSink(sink->get());
  for (std::uint64_t i = 0; i < 10; ++i) {
    hub.Emit(trace::Unit::kCpu, EventCategory::kInstruction,
             EventType::kRetire, 0x1000 + i * 4, 0, i);
  }
  hub.RemoveSink(sink->get());
  ASSERT_TRUE((*sink)->Close().ok());
  EXPECT_EQ((*sink)->events_written(), 10u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string streamed((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(streamed, trace::ExportChromeTrace(hub.events()));
  std::remove(path.c_str());
}

TEST(StreamSinkTest, RetainsEventsPastRingCapacity) {
  const std::string path = "stream_sink_overflow.trace";
  trace::Hub hub({.categories = trace::kAllCategories, .event_capacity = 8});
  auto sink = trace::ChromeTraceFileSink::Open(path, /*flush_bytes=*/64);
  ASSERT_TRUE(sink.ok());
  hub.AddSink(sink->get());
  constexpr std::uint64_t kEvents = 100;  // ring keeps only the last 8
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    hub.Emit(trace::Unit::kCpu, EventCategory::kInstruction,
             EventType::kRetire, 0x1000 + i * 4, 0, i);
  }
  hub.RemoveSink(sink->get());
  ASSERT_TRUE((*sink)->Close().ok());
  EXPECT_EQ((*sink)->events_written(), kEvents);
  EXPECT_EQ(hub.events().size(), 8u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string streamed((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  // The very first event (dropped from the ring long ago) is on disk, and
  // the document is well-formed (header + trailer).
  EXPECT_NE(streamed.find("\"pc\":\"0x1000\""), std::string::npos);
  EXPECT_NE(streamed.find(trace::ChromeTraceHeader()), std::string::npos);
  EXPECT_NE(streamed.find("\n]}\n"), std::string::npos);
  std::remove(path.c_str());
}

// Structural JSON validation for the always-valid-file guarantee: every
// brace/bracket outside string literals balances and the document is
// non-empty. (The repo has no JSON parser; for the Chrome-trace format,
// balance + the known trailer is the load-bearing property.)
bool JsonIsBalanced(const std::string& text) {
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !text.empty();
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// The on-disk file is a complete, parseable document at *every* flush
// boundary — from the moment Open returns, through mid-run flushes, to
// Close — never only after finalization.
TEST(StreamSinkTest, FileParsesAtEveryFlushBoundary) {
  const std::string path = "stream_sink_midrun.trace";
  trace::Hub hub({.categories = trace::kAllCategories, .event_capacity = 8});
  auto sink = trace::ChromeTraceFileSink::Open(path, /*flush_bytes=*/64);
  ASSERT_TRUE(sink.ok());

  // Boundary 0: freshly opened, no events yet.
  std::string snapshot = ReadWholeFile(path);
  EXPECT_TRUE(JsonIsBalanced(snapshot)) << snapshot;

  hub.AddSink(sink->get());
  for (std::uint64_t i = 0; i < 50; ++i) {
    hub.Emit(trace::Unit::kCpu, EventCategory::kInstruction,
             EventType::kRetire, 0x2000 + i * 4, 0, i);
    // Mid-run boundary: whatever has auto-flushed so far plus the trailer
    // must already parse (small flush_bytes forces frequent flushes).
    if (i % 16 == 0) {
      snapshot = ReadWholeFile(path);
      EXPECT_TRUE(JsonIsBalanced(snapshot)) << "after event " << i;
      EXPECT_NE(snapshot.find("\n]}\n"), std::string::npos);
    }
  }
  hub.RemoveSink(sink->get());
  ASSERT_TRUE((*sink)->Close().ok());
  // Final boundary: byte-identical to the batch exporter is covered by
  // MatchesExportChromeTraceWhenRingRetainsAll; here just re-check parse.
  EXPECT_TRUE(JsonIsBalanced(ReadWholeFile(path)));
  std::remove(path.c_str());
}

// Fatal-signal termination: events still sitting in the sink's buffer
// (flush threshold not reached) are forced to disk by the hub's
// fatal-signal broadcast, so a SIGSEGV-killed run leaves a parseable
// trace that contains its final events.
TEST(StreamSinkTest, FatalSignalFlushesBufferedEvents) {
  const std::string path = "stream_sink_fatal.trace";
  trace::Hub hub({.categories = trace::kAllCategories, .event_capacity = 8});
  // Flush threshold far above what the test emits: nothing hits disk on
  // its own.
  auto sink = trace::ChromeTraceFileSink::Open(path, /*flush_bytes=*/1 << 20);
  ASSERT_TRUE(sink.ok());
  hub.AddSink(sink->get());
  hub.Emit(trace::Unit::kCpu, EventCategory::kInstruction, EventType::kRetire,
           0xDEAD0, 0, 1);
  EXPECT_EQ(ReadWholeFile(path).find("\"pc\":\"0xdead0\""), std::string::npos);

  hub.NotifyFatalSignal();

  const std::string flushed = ReadWholeFile(path);
  EXPECT_NE(flushed.find("\"pc\":\"0xdead0\""), std::string::npos);
  EXPECT_TRUE(JsonIsBalanced(flushed)) << flushed;
  hub.RemoveSink(sink->get());
  ASSERT_TRUE((*sink)->Close().ok());
  std::remove(path.c_str());
}

// End-to-end: a guest killed by a ROLoad SIGSEGV, with the file sink
// attached through the System hub and never explicitly closed — the
// kernel's fatal-signal broadcast alone must leave a parseable file with
// the fault on disk.
TEST(StreamSinkTest, RoLoadSigsegvRunLeavesParseableTrace) {
  constexpr const char* kBadKeySource = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 8
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
)";
  const std::string path = "stream_sink_sigsegv.trace";
  auto image = asmtool::Assemble(kBadKeySource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  core::SystemConfig config;
  config.trace.categories = trace::kAllCategories;
  core::System system(config);
  ASSERT_TRUE(system.Load(*image).ok());
  auto sink = trace::ChromeTraceFileSink::Open(path, /*flush_bytes=*/1 << 20);
  ASSERT_TRUE(sink.ok());
  system.trace().AddSink(sink->get());

  const kernel::RunResult result = system.Run(1 << 22);
  ASSERT_EQ(result.kind, kernel::ExitKind::kKilled);
  ASSERT_TRUE(result.roload_violation);

  // Deliberately no Close(): the run died; only OnFatalSignal flushed.
  const std::string streamed = ReadWholeFile(path);
  EXPECT_TRUE(JsonIsBalanced(streamed)) << streamed;
  EXPECT_NE(streamed.find("roload_fault"), std::string::npos);
  system.trace().RemoveSink(sink->get());
  std::remove(path.c_str());
}

TEST(StreamSinkTest, CloseIsIdempotentAndLateEventsAreDiscarded) {
  const std::string path = "stream_sink_closed.trace";
  auto sink = trace::ChromeTraceFileSink::Open(path);
  ASSERT_TRUE(sink.ok());
  ASSERT_TRUE((*sink)->Close().ok());
  trace::TraceEvent event{};
  (*sink)->OnEvent(event);
  EXPECT_EQ((*sink)->events_written(), 0u);
  ASSERT_TRUE((*sink)->Close().ok());
  std::remove(path.c_str());
}

TEST(StreamSinkTest, OpenFailsOnUnwritablePath) {
  auto sink = trace::ChromeTraceFileSink::Open("/no/such/dir/x.trace");
  EXPECT_FALSE(sink.ok());
}

}  // namespace
}  // namespace roload
