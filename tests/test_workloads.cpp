// Workload-generator tests: determinism, structural expectations per
// benchmark class, suite composition, and cross-variant result stability.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/ir.h"
#include "workloads/spec_like.h"

namespace roload::workloads {
namespace {

TEST(SuiteTest, ElevenBenchmarksThreeCpp) {
  const auto suite = SpecCint2006Suite(1.0);
  EXPECT_EQ(suite.size(), 11u);  // SPEC CINT2006 minus 400.perlbench
  unsigned cpp = 0;
  for (const auto& spec : suite) {
    if (spec.is_cpp) ++cpp;
  }
  EXPECT_EQ(cpp, 3u);
  EXPECT_EQ(SpecCppSubset(1.0).size(), 3u);
}

TEST(SuiteTest, ScaleAdjustsIterationsOnly) {
  const auto full = SpecCint2006Suite(1.0);
  const auto small = SpecCint2006Suite(0.1);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_LT(small[i].iterations, full[i].iterations);
    EXPECT_EQ(small[i].name, full[i].name);
    EXPECT_EQ(small[i].data_kib, full[i].data_kib);
  }
  // Scale never drops below the minimum trip count.
  for (const auto& spec : SpecCint2006Suite(1e-9)) {
    EXPECT_GE(spec.iterations, 64u);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  const auto suite = SpecCint2006Suite(0.05);
  const ir::Module a = Generate(suite[1]);
  const ir::Module b = Generate(suite[1]);
  EXPECT_EQ(ir::Print(a), ir::Print(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto suite = SpecCint2006Suite(0.05);
  auto spec = suite[1];
  const ir::Module a = Generate(spec);
  spec.seed += 1;
  const ir::Module b = Generate(spec);
  EXPECT_NE(ir::Print(a), ir::Print(b));
}

TEST(GeneratorTest, AllSuiteModulesVerify) {
  for (const auto& spec : SpecCint2006Suite(0.02)) {
    const ir::Module module = Generate(spec);
    EXPECT_TRUE(ir::Verify(module).ok()) << spec.name;
    EXPECT_NE(module.FindFunction("main"), nullptr);
    EXPECT_NE(module.FindFunction("kernel_step"), nullptr);
  }
}

TEST(GeneratorTest, CppBenchmarksHaveDispatchStructure) {
  for (const auto& spec : SpecCppSubset(0.02)) {
    const ir::Module module = Generate(spec);
    unsigned vtables = 0;
    for (const auto& global : module.globals) {
      if (global.trait == ir::GlobalTrait::kVTable) ++vtables;
    }
    EXPECT_EQ(vtables, spec.hierarchies * spec.classes_per_hierarchy)
        << spec.name;
    // Virtual-dispatch loads must be present and discoverable.
    unsigned vtable_loads = 0, icalls = 0, vcall_sites = 0;
    for (const auto& fn : module.functions) {
      for (const auto& block : fn.blocks) {
        for (const auto& instr : block.instrs) {
          if (instr.kind == ir::InstrKind::kLoad &&
              instr.trait == ir::Trait::kVTableEntryLoad) {
            ++vtable_loads;
          }
          if (instr.kind == ir::InstrKind::kICall) {
            ++icalls;
            if (instr.is_vcall) ++vcall_sites;
          }
        }
      }
    }
    EXPECT_GT(vtable_loads, 0u) << spec.name;
    EXPECT_EQ(vtable_loads, vcall_sites) << spec.name;
    EXPECT_GT(icalls, vcall_sites) << spec.name
                                   << " (needs plain icalls too)";
  }
}

TEST(GeneratorTest, CStyleBenchmarksHaveNoVtables) {
  for (const auto& spec : SpecCint2006Suite(0.02)) {
    if (spec.is_cpp) continue;
    const ir::Module module = Generate(spec);
    for (const auto& global : module.globals) {
      EXPECT_NE(global.trait, ir::GlobalTrait::kVTable) << spec.name;
    }
  }
}

TEST(GeneratorTest, WorkingSetMatchesSpec) {
  auto suite = SpecCint2006Suite(0.02);
  const ir::Module module = Generate(suite[0]);
  bool found = false;
  for (const auto& global : module.globals) {
    if (global.name == "data") {
      EXPECT_EQ(global.zero_bytes, suite[0].data_kib * 1024);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Cross-variant stability: an unhardened benchmark computes the same
// result on all three system variants (Section V-B backward
// compatibility), and cycle counts are identical because the baseline
// core differs only in its decoder.
TEST(CompatTest, IdenticalResultsAndCyclesAcrossVariants) {
  auto suite = SpecCint2006Suite(0.02);
  const ir::Module module = Generate(suite[3]);
  core::BuildOptions options;
  core::RunMetrics reference{};
  bool first = true;
  for (auto variant :
       {core::SystemVariant::kBaseline, core::SystemVariant::kProcessorModified,
        core::SystemVariant::kFullRoload}) {
    auto metrics = core::CompileAndRun(module, options, variant);
    ASSERT_TRUE(metrics.ok());
    ASSERT_TRUE(metrics->completed);
    if (first) {
      reference = *metrics;
      first = false;
      continue;
    }
    EXPECT_EQ(metrics->exit_code, reference.exit_code);
    EXPECT_EQ(metrics->cycles, reference.cycles);
    EXPECT_EQ(metrics->instructions, reference.instructions);
    EXPECT_EQ(metrics->peak_mem_kib, reference.peak_mem_kib);
  }
}

TEST(MetricsTest, HardenedBuildsReportRoLoadActivity) {
  auto suite = SpecCppSubset(0.02);
  const ir::Module module = Generate(suite[0]);
  core::BuildOptions vcall;
  vcall.defense = core::Defense::kVCall;
  auto metrics =
      core::CompileAndRun(module, vcall, core::SystemVariant::kFullRoload);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->roload_loads, 0u);
  core::BuildOptions none;
  auto base =
      core::CompileAndRun(module, none, core::SystemVariant::kFullRoload);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->roload_loads, 0u);
}

TEST(OverheadTest, HelperMath) {
  EXPECT_DOUBLE_EQ(core::OverheadPercent(100, 103), 3.0);
  EXPECT_DOUBLE_EQ(core::OverheadPercent(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(core::OverheadPercent(0, 50), 0.0);
  EXPECT_LT(core::OverheadPercent(100, 99), 0.0);
}

}  // namespace
}  // namespace roload::workloads
