// Tests for the tool-facing surfaces: .rimg image serialization (round
// trip + corrupted-input rejection), the CPU trace hook, and the generic
// AllowlistProtectPass of Section IV-C.
#include <gtest/gtest.h>

#include "asmtool/assembler.h"
#include "asmtool/image_io.h"
#include "core/toolchain.h"
#include "ir/builder.h"
#include "passes/passes.h"
#include "tests/guest_util.h"

namespace roload {
namespace {

const char kProgram[] = R"(
.section .text
_start:
  la t0, allowlist
  ld.ro a0, (t0), 111
  andi a0, a0, 63
  li a7, 93
  ecall
.section .rodata.key.111
allowlist:
  .quad 42
.section .data
mut:
  .zero 64
)";

TEST(ImageIoTest, SerializeDeserializeRoundTrip) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  const std::string bytes = asmtool::SerializeImage(*image);
  auto loaded = asmtool::DeserializeImage(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entry, image->entry);
  ASSERT_EQ(loaded->sections.size(), image->sections.size());
  for (std::size_t i = 0; i < image->sections.size(); ++i) {
    const auto& a = image->sections[i];
    const auto& b = loaded->sections[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.vaddr, b.vaddr);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.perms, b.perms);
    EXPECT_EQ(a.key, b.key);
  }
  EXPECT_EQ(loaded->symbols, image->symbols);
}

TEST(ImageIoTest, DeserializedImageStillRuns) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  auto loaded =
      asmtool::DeserializeImage(asmtool::SerializeImage(*image));
  ASSERT_TRUE(loaded.ok());
  core::System system;
  ASSERT_TRUE(system.Load(*loaded).ok());
  const auto result = system.Run();
  EXPECT_EQ(result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(result.exit_code, 42);
}

TEST(ImageIoTest, RejectsGarbage) {
  EXPECT_FALSE(asmtool::DeserializeImage("").ok());
  EXPECT_FALSE(asmtool::DeserializeImage("ELF!").ok());
  EXPECT_FALSE(asmtool::DeserializeImage("RIMG").ok());  // truncated
}

TEST(ImageIoTest, RejectsTruncationAtEveryPrefix) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  const std::string bytes = asmtool::SerializeImage(*image);
  // Every strict prefix must be rejected, never crash.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 97)) {
    EXPECT_FALSE(asmtool::DeserializeImage(bytes.substr(0, cut)).ok())
        << "prefix length " << cut;
  }
}

TEST(ImageIoTest, RejectsVersionMismatch) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  std::string bytes = asmtool::SerializeImage(*image);
  bytes[4] = 99;  // version field
  EXPECT_FALSE(asmtool::DeserializeImage(bytes).ok());
}

TEST(ImageIoTest, FileRoundTrip) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  const std::string path = ::testing::TempDir() + "/roload_test.rimg";
  ASSERT_TRUE(asmtool::SaveImage(*image, path).ok());
  auto loaded = asmtool::LoadImage(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entry, image->entry);
  EXPECT_FALSE(asmtool::LoadImage(path + ".does-not-exist").ok());
}

// ---------------------------------------------------------------------------
TEST(TraceHookTest, SeesEveryRetiredInstruction) {
  auto image = asmtool::Assemble(kProgram);
  ASSERT_TRUE(image.ok());
  core::System system;
  ASSERT_TRUE(system.Load(*image).ok());
  std::vector<std::pair<std::uint64_t, isa::Opcode>> trace;
  system.cpu().set_trace_hook(
      [&trace](std::uint64_t pc, const isa::Instruction& inst) {
        trace.emplace_back(pc, inst.op);
      });
  const auto result = system.Run();
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);
  // la (2) + ld.ro + andi + li + ecall = 6 traced instructions.
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0].second, isa::Opcode::kLui);
  EXPECT_EQ(trace[2].second, isa::Opcode::kLdRo);
  EXPECT_EQ(trace[5].second, isa::Opcode::kEcall);
  EXPECT_EQ(trace[0].first, image->entry);
}

// ---------------------------------------------------------------------------
// AllowlistProtectPass (Section IV-C).
constexpr int kListId = 3;

ir::Module AllowlistModule() {
  ir::Module module;
  module.name = "allowlist";
  ir::Global list;
  list.name = "list";
  list.read_only = false;  // the pass must move it to RO
  list.quads.push_back(ir::GlobalInit{40, ""});
  module.globals.push_back(list);
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.AddrOf("list");
  const int value =
      b.Load(addr, 0, 8, ir::Trait::kAllowlistLoad, kListId);
  const int other = b.Load(addr);  // untraited load: must stay plain
  b.Ret(b.Bin(ir::BinOp::kAdd, value, other));
  return module;
}

TEST(AllowlistPassTest, MovesGlobalAndTagsMatchingLoads) {
  ir::Module module = AllowlistModule();
  passes::AllowlistOptions options;
  options.rules.push_back(passes::AllowlistRule{
      .global_name = "list", .key = 222,
      .trait = ir::Trait::kAllowlistLoad, .trait_id = kListId});
  ASSERT_TRUE(passes::AllowlistProtectPass(&module, options).ok());
  EXPECT_TRUE(module.FindGlobal("list")->read_only);
  EXPECT_EQ(module.FindGlobal("list")->key, 222u);
  int tagged = 0, plain = 0;
  for (const auto& block : module.functions[0].blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.kind != ir::InstrKind::kLoad) continue;
      if (instr.has_roload_md) {
        ++tagged;
        EXPECT_EQ(instr.roload_key, 222u);
      } else {
        ++plain;
      }
    }
  }
  EXPECT_EQ(tagged, 1);
  EXPECT_EQ(plain, 1);
}

TEST(AllowlistPassTest, HardenedProgramRunsAndStillComputes) {
  ir::Module module = AllowlistModule();
  passes::AllowlistOptions options;
  options.rules.push_back(passes::AllowlistRule{
      .global_name = "list", .key = 222,
      .trait = ir::Trait::kAllowlistLoad, .trait_id = kListId});
  ASSERT_TRUE(passes::AllowlistProtectPass(&module, options).ok());
  auto metrics = core::CompileAndRun(module, core::BuildOptions{},
                                     core::SystemVariant::kFullRoload);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(metrics->completed);
  EXPECT_EQ(metrics->exit_code, 80);
  EXPECT_EQ(metrics->roload_loads, 1u);
}

TEST(AllowlistPassTest, RejectsBadRules) {
  {
    ir::Module module = AllowlistModule();
    passes::AllowlistOptions options;
    options.rules.push_back(passes::AllowlistRule{
        .global_name = "list", .key = 0,
        .trait = ir::Trait::kAllowlistLoad, .trait_id = kListId});
    EXPECT_FALSE(passes::AllowlistProtectPass(&module, options).ok());
  }
  {
    ir::Module module = AllowlistModule();
    passes::AllowlistOptions options;
    options.rules.push_back(passes::AllowlistRule{
        .global_name = "ghost", .key = 5,
        .trait = ir::Trait::kAllowlistLoad, .trait_id = kListId});
    EXPECT_FALSE(passes::AllowlistProtectPass(&module, options).ok());
  }
  {
    // Trait filter matches nothing: refuse (likely a config mistake).
    ir::Module module = AllowlistModule();
    passes::AllowlistOptions options;
    options.rules.push_back(passes::AllowlistRule{
        .global_name = "list", .key = 5,
        .trait = ir::Trait::kAllowlistLoad, .trait_id = 999});
    EXPECT_FALSE(passes::AllowlistProtectPass(&module, options).ok());
  }
}

TEST(AllowlistPassTest, WildcardTraitIdMatchesAllIds) {
  ir::Module module = AllowlistModule();
  passes::AllowlistOptions options;
  options.rules.push_back(passes::AllowlistRule{
      .global_name = "list", .key = 9,
      .trait = ir::Trait::kAllowlistLoad, .trait_id = -1});
  ASSERT_TRUE(passes::AllowlistProtectPass(&module, options).ok());
}

}  // namespace
}  // namespace roload
