// Cache model tests: hit/miss accounting, LRU replacement, write-back
// behaviour, and geometry sweeps.
#include <gtest/gtest.h>

#include "cache/cache.h"

namespace roload::cache {
namespace {

TEST(CacheTest, FirstAccessMissesThenHits) {
  Cache cache(CacheConfig{});
  const unsigned miss = cache.Access(0x1000, false);
  const unsigned hit = cache.Access(0x1000, false);
  EXPECT_GT(miss, hit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheTest, SameLineSharesEntry) {
  Cache cache(CacheConfig{});
  cache.Access(0x1000, false);
  EXPECT_EQ(cache.Access(0x103F, false), cache.config().hit_cycles);
  EXPECT_EQ(cache.Access(0x1040, false),
            cache.config().hit_cycles + cache.config().miss_cycles);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // Ways+1 distinct tags in one set: the first one must be evicted.
  CacheConfig config;
  config.size_bytes = 8 * 1024;
  config.ways = 2;
  Cache cache(config);
  const unsigned sets = 8 * 1024 / 64 / 2;
  const std::uint64_t stride = static_cast<std::uint64_t>(sets) * 64;
  cache.Access(0, false);
  cache.Access(stride, false);
  cache.Access(0, false);           // touch way 0 -> way 1 (stride) is LRU
  cache.Access(2 * stride, false);  // evicts stride
  EXPECT_EQ(cache.Access(0, false), config.hit_cycles);
  EXPECT_GT(cache.Access(stride, false), config.hit_cycles);
}

TEST(CacheTest, DirtyEvictionCostsWriteback) {
  CacheConfig config;
  config.size_bytes = 4 * 1024;
  config.ways = 1;  // direct mapped: trivial conflicts
  Cache cache(config);
  cache.Access(0x0, true);  // dirty line
  const unsigned evict = cache.Access(0x1000, false);  // same set, clean
  EXPECT_EQ(evict,
            config.hit_cycles + config.miss_cycles + config.writeback_cycles);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  const unsigned evict2 = cache.Access(0x2000, false);  // evicts clean line
  EXPECT_EQ(evict2, config.hit_cycles + config.miss_cycles);
}

TEST(CacheTest, WriteMarksDirtyOnHitToo) {
  CacheConfig config;
  config.size_bytes = 4 * 1024;
  config.ways = 1;
  Cache cache(config);
  cache.Access(0x0, false);  // clean fill
  cache.Access(0x0, true);   // hit, now dirty
  cache.Access(0x1000, false);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, FlushDropsEverything) {
  Cache cache(CacheConfig{});
  cache.Access(0x1000, true);
  cache.Flush();
  EXPECT_GT(cache.Access(0x1000, false), cache.config().hit_cycles);
  EXPECT_EQ(cache.stats().flushes, 1u);
  // Flushed dirty lines are dropped, not written back, in this model.
}

TEST(CacheTest, MissRateOverSweep) {
  Cache cache(CacheConfig{});  // 32 KiB
  // Sequential sweep over 64 KiB twice: capacity misses on every line.
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      cache.Access(addr, false);
    }
  }
  EXPECT_DOUBLE_EQ(cache.stats().MissRate(), 1.0);
}

TEST(CacheTest, FitsWorkingSetAfterWarmup) {
  Cache cache(CacheConfig{});  // 32 KiB, 8-way
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
      cache.Access(addr, false);
    }
  }
  // First round misses (256 lines), the rest hit.
  EXPECT_EQ(cache.stats().misses, 256u);
  EXPECT_EQ(cache.stats().hits, 3u * 256u);
}

class GeometryTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(GeometryTest, ConstructsAndWorks) {
  const auto [size_kib, ways] = GetParam();
  CacheConfig config;
  config.size_bytes = size_kib * 1024ull;
  config.ways = ways;
  Cache cache(config);
  for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 64) {
    cache.Access(addr, addr % 128 == 0);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 128u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometryTest,
                         ::testing::Values(std::pair{4u, 1u},
                                           std::pair{8u, 2u},
                                           std::pair{16u, 4u},
                                           std::pair{32u, 8u},
                                           std::pair{64u, 16u}),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "KiB_" +
                                  std::to_string(info.param.second) + "way";
                         });

}  // namespace
}  // namespace roload::cache
