// Cache model tests: hit/miss accounting, LRU replacement, write-back
// behaviour, geometry sweeps, and the host-fast-path differential (the
// shift-based index math must be invisible to the timing model).
#include <gtest/gtest.h>

#include "cache/cache.h"
#include "support/rng.h"

namespace roload::cache {
namespace {

TEST(CacheTest, FirstAccessMissesThenHits) {
  Cache cache(CacheConfig{});
  const unsigned miss = cache.Access(0x1000, false);
  const unsigned hit = cache.Access(0x1000, false);
  EXPECT_GT(miss, hit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheTest, SameLineSharesEntry) {
  Cache cache(CacheConfig{});
  cache.Access(0x1000, false);
  EXPECT_EQ(cache.Access(0x103F, false), cache.config().hit_cycles);
  EXPECT_EQ(cache.Access(0x1040, false),
            cache.config().hit_cycles + cache.config().miss_cycles);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // Ways+1 distinct tags in one set: the first one must be evicted.
  CacheConfig config;
  config.size_bytes = 8 * 1024;
  config.ways = 2;
  Cache cache(config);
  const unsigned sets = 8 * 1024 / 64 / 2;
  const std::uint64_t stride = static_cast<std::uint64_t>(sets) * 64;
  cache.Access(0, false);
  cache.Access(stride, false);
  cache.Access(0, false);           // touch way 0 -> way 1 (stride) is LRU
  cache.Access(2 * stride, false);  // evicts stride
  EXPECT_EQ(cache.Access(0, false), config.hit_cycles);
  EXPECT_GT(cache.Access(stride, false), config.hit_cycles);
}

TEST(CacheTest, DirtyEvictionCostsWriteback) {
  CacheConfig config;
  config.size_bytes = 4 * 1024;
  config.ways = 1;  // direct mapped: trivial conflicts
  Cache cache(config);
  cache.Access(0x0, true);  // dirty line
  const unsigned evict = cache.Access(0x1000, false);  // same set, clean
  EXPECT_EQ(evict,
            config.hit_cycles + config.miss_cycles + config.writeback_cycles);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  const unsigned evict2 = cache.Access(0x2000, false);  // evicts clean line
  EXPECT_EQ(evict2, config.hit_cycles + config.miss_cycles);
}

TEST(CacheTest, WriteMarksDirtyOnHitToo) {
  CacheConfig config;
  config.size_bytes = 4 * 1024;
  config.ways = 1;
  Cache cache(config);
  cache.Access(0x0, false);  // clean fill
  cache.Access(0x0, true);   // hit, now dirty
  cache.Access(0x1000, false);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, FlushDropsEverything) {
  Cache cache(CacheConfig{});
  cache.Access(0x1000, true);
  cache.Flush();
  EXPECT_GT(cache.Access(0x1000, false), cache.config().hit_cycles);
  EXPECT_EQ(cache.stats().flushes, 1u);
  // Flushed dirty lines are dropped, not written back, in this model.
}

TEST(CacheTest, MissRateOverSweep) {
  Cache cache(CacheConfig{});  // 32 KiB
  // Sequential sweep over 64 KiB twice: capacity misses on every line.
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      cache.Access(addr, false);
    }
  }
  EXPECT_DOUBLE_EQ(cache.stats().MissRate(), 1.0);
}

TEST(CacheTest, FitsWorkingSetAfterWarmup) {
  Cache cache(CacheConfig{});  // 32 KiB, 8-way
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
      cache.Access(addr, false);
    }
  }
  // First round misses (256 lines), the rest hit.
  EXPECT_EQ(cache.stats().misses, 256u);
  EXPECT_EQ(cache.stats().hits, 3u * 256u);
}

class GeometryTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(GeometryTest, ConstructsAndWorks) {
  const auto [size_kib, ways] = GetParam();
  CacheConfig config;
  config.size_bytes = size_kib * 1024ull;
  config.ways = ways;
  Cache cache(config);
  for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 64) {
    cache.Access(addr, addr % 128 == 0);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 128u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometryTest,
                         ::testing::Values(std::pair{4u, 1u},
                                           std::pair{8u, 2u},
                                           std::pair{16u, 4u},
                                           std::pair{32u, 8u},
                                           std::pair{64u, 16u}),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "KiB_" +
                                  std::to_string(info.param.second) + "way";
                         });

// ---------------------------------------------------------------------------
// Host fast path differential: with host_fast_path on, index/tag math uses
// precomputed shifts and same-line hits take the inline shortcut. Every
// access of an arbitrary stream must cost the same cycles and move the
// same stats as the divide-based reference, access by access.

void RunFastPathDifferential(CacheConfig config, std::uint64_t seed) {
  CacheConfig reference = config;
  config.host_fast_path = true;
  reference.host_fast_path = false;
  Cache fast(config);
  Cache ref(reference);
  Rng rng(seed);
  const std::uint64_t line = config.line_bytes;
  for (int i = 0; i < 20000; ++i) {
    // Mix of same-line runs, set conflicts (size_bytes/ways stride maps to
    // one set) and wide sweeps, so hits, misses, clean and dirty evictions
    // all occur.
    std::uint64_t addr = 0;
    switch (rng.NextBelow(4)) {
      case 0:
        addr = 0x4000 + rng.NextBelow(2 * line);
        break;
      case 1:
        addr = rng.NextBelow(3 * config.ways) * (config.size_bytes / config.ways);
        break;
      case 2:
        addr = rng.NextBelow(4 * config.size_bytes);
        break;
      default:
        addr = rng.NextBelow(1 << 26);
        break;
    }
    const bool write = rng.NextPercent(30);
    ASSERT_EQ(fast.Access(addr, write), ref.Access(addr, write))
        << "access " << i << " addr 0x" << std::hex << addr;
    if (rng.NextPercent(1)) {
      fast.Flush();
      ref.Flush();
    }
  }
  EXPECT_EQ(fast.stats().hits, ref.stats().hits);
  EXPECT_EQ(fast.stats().misses, ref.stats().misses);
  EXPECT_EQ(fast.stats().writebacks, ref.stats().writebacks);
  EXPECT_EQ(fast.stats().flushes, ref.stats().flushes);
}

TEST(CacheFastPathTest, MatchesReferenceDefaultGeometry) {
  RunFastPathDifferential(CacheConfig{}, 1);
}

TEST(CacheFastPathTest, MatchesReferenceDirectMapped) {
  CacheConfig config;
  config.size_bytes = 4 * 1024;
  config.ways = 1;
  RunFastPathDifferential(config, 2);
}

TEST(CacheFastPathTest, MatchesReferenceSmallTwoWay) {
  CacheConfig config;
  config.size_bytes = 8 * 1024;
  config.ways = 2;
  config.line_bytes = 32;
  RunFastPathDifferential(config, 3);
}

}  // namespace
}  // namespace roload::cache
