// TLB tests: the heart of the ROLoad mechanism. Covers the permission
// matrix for every access type, the parallel read-only + key check,
// miss/refill/flush behaviour, eviction, and a property-based sweep of the
// RoLoadCheck boolean function.
#include <gtest/gtest.h>

#include "kernel/address_space.h"
#include "support/rng.h"
#include "tlb/tlb.h"

namespace roload::tlb {
namespace {

using kernel::AddressSpace;
using kernel::FrameAllocator;
using kernel::PageProt;

class TlbTest : public ::testing::Test {
 protected:
  TlbTest()
      : memory_(8 * 1024 * 1024), frames_(16, 1024),
        space_(&memory_, &frames_), tlb_(TlbConfig{}, &memory_) {}

  void Map(std::uint64_t vaddr, const PageProt& prot) {
    ASSERT_TRUE(space_.Map(vaddr, 1, prot).ok());
  }

  TlbResult Translate(std::uint64_t vaddr, AccessType access,
                      std::uint32_t key = 0) {
    return tlb_.Translate(space_.root_ppn(), vaddr, access, key);
  }

  mem::PhysMemory memory_;
  FrameAllocator frames_;
  AddressSpace space_;
  Tlb tlb_;
};

TEST_F(TlbTest, MissThenHit) {
  Map(0x10000, PageProt::Rw());
  auto first = Translate(0x10008, AccessType::kLoad);
  EXPECT_TRUE(first.ok);
  EXPECT_GT(first.cycles, 0u);  // walk cost
  auto second = Translate(0x10010, AccessType::kLoad);
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.cycles, 0u);  // TLB hit
  EXPECT_EQ(tlb_.stats().misses, 1u);
  EXPECT_EQ(tlb_.stats().hits, 1u);
}

TEST_F(TlbTest, TranslationOffsetPreserved) {
  Map(0x10000, PageProt::Rw());
  auto result = Translate(0x10ABC, AccessType::kLoad);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.phys_addr & 0xFFF, 0xABCu);
}

// The conventional permission matrix: access type x page protection.
struct PermCase {
  const char* name;
  PageProt prot;
  AccessType access;
  bool allowed;
  isa::TrapCause cause;
};

class PermissionMatrixTest : public ::testing::TestWithParam<PermCase> {};

TEST_P(PermissionMatrixTest, Enforced) {
  mem::PhysMemory memory(8 * 1024 * 1024);
  FrameAllocator frames(16, 1024);
  AddressSpace space(&memory, &frames);
  Tlb tlb(TlbConfig{}, &memory);
  ASSERT_TRUE(space.Map(0x10000, 1, GetParam().prot).ok());
  auto result =
      tlb.Translate(space.root_ppn(), 0x10000, GetParam().access, 111);
  EXPECT_EQ(result.ok, GetParam().allowed) << GetParam().name;
  if (!GetParam().allowed) {
    EXPECT_EQ(result.cause, GetParam().cause) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PermissionMatrixTest,
    ::testing::Values(
        PermCase{"load_from_rw", PageProt::Rw(), AccessType::kLoad, true,
                 isa::TrapCause::kLoadPageFault},
        PermCase{"store_to_rw", PageProt::Rw(), AccessType::kStore, true,
                 isa::TrapCause::kStorePageFault},
        PermCase{"fetch_from_rw", PageProt::Rw(), AccessType::kFetch, false,
                 isa::TrapCause::kInstructionPageFault},
        PermCase{"load_from_ro", PageProt::Ro(), AccessType::kLoad, true,
                 isa::TrapCause::kLoadPageFault},
        PermCase{"store_to_ro", PageProt::Ro(), AccessType::kStore, false,
                 isa::TrapCause::kStorePageFault},
        PermCase{"fetch_from_rx", PageProt::Rx(), AccessType::kFetch, true,
                 isa::TrapCause::kInstructionPageFault},
        PermCase{"store_to_rx", PageProt::Rx(), AccessType::kStore, false,
                 isa::TrapCause::kStorePageFault},
        PermCase{"roload_matching_key", PageProt::Ro(111),
                 AccessType::kRoLoad, true,
                 isa::TrapCause::kRoLoadPageFault},
        PermCase{"roload_wrong_key", PageProt::Ro(112), AccessType::kRoLoad,
                 false, isa::TrapCause::kRoLoadPageFault},
        PermCase{"roload_writable_page", PageProt::Rw(), AccessType::kRoLoad,
                 false, isa::TrapCause::kRoLoadPageFault},
        PermCase{"roload_untagged_ro", PageProt::Ro(0), AccessType::kRoLoad,
                 false, isa::TrapCause::kRoLoadPageFault}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_F(TlbTest, RoLoadUnmappedIsRoLoadFault) {
  auto result = Translate(0x900000, AccessType::kRoLoad, 5);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.cause, isa::TrapCause::kRoLoadPageFault);
}

TEST_F(TlbTest, RoLoadFaultsCountedSeparately) {
  Map(0x10000, PageProt::Ro(5));
  Map(0x11000, PageProt::Rw());
  EXPECT_FALSE(Translate(0x10000, AccessType::kRoLoad, 6).ok);
  EXPECT_EQ(tlb_.stats().roload_key_faults, 1u);
  EXPECT_FALSE(Translate(0x11000, AccessType::kRoLoad, 6).ok);
  EXPECT_EQ(tlb_.stats().roload_writable_faults, 1u);
}

TEST_F(TlbTest, PerKeyCountsSumToAggregates) {
  Map(0x10000, PageProt::Ro(5));
  Map(0x11000, PageProt::Ro(9));
  Map(0x12000, PageProt::Rw());

  EXPECT_TRUE(Translate(0x10000, AccessType::kRoLoad, 5).ok);
  EXPECT_TRUE(Translate(0x10000, AccessType::kRoLoad, 5).ok);
  EXPECT_FALSE(Translate(0x10000, AccessType::kRoLoad, 9).ok);  // wrong key
  EXPECT_TRUE(Translate(0x11000, AccessType::kRoLoad, 9).ok);
  EXPECT_FALSE(Translate(0x12000, AccessType::kRoLoad, 5).ok);  // writable
  // Unmapped kRoLoad: no PTE, so no key check ran and the per-key table
  // must not move.
  EXPECT_FALSE(Translate(0x900000, AccessType::kRoLoad, 5).ok);

  const TlbStats& stats = tlb_.stats();
  std::uint64_t pass_sum = 0;
  std::uint64_t total_sum = 0;
  for (const TlbKeyCheckCount& entry : stats.key_check_by_key) {
    pass_sum += entry.passes;
    total_sum += entry.passes + entry.fails;
  }
  // The per-key breakdown is an exact partition of the aggregates.
  EXPECT_EQ(pass_sum, stats.key_check_hits);
  EXPECT_EQ(total_sum, stats.key_checks);
  EXPECT_EQ(stats.key_checks, 5u);  // the unmapped access never checked

  ASSERT_EQ(stats.key_check_by_key.size(), 2u);  // keys 5 and 9 only
  for (const TlbKeyCheckCount& entry : stats.key_check_by_key) {
    if (entry.key == 5) {
      EXPECT_EQ(entry.passes, 2u);
      EXPECT_EQ(entry.fails, 1u);  // the writable-page attempt used key 5
    } else {
      ASSERT_EQ(entry.key, 9u);
      EXPECT_EQ(entry.passes, 1u);
      EXPECT_EQ(entry.fails, 1u);  // the wrong-key attempt used key 9
    }
  }
}

TEST_F(TlbTest, TranslateReportsFailKind) {
  Map(0x10000, PageProt::Ro(5));
  Map(0x11000, PageProt::Rw());
  EXPECT_EQ(Translate(0x10000, AccessType::kRoLoad, 5).roload_fail_kind,
            RoLoadFailKind::kNone);
  EXPECT_EQ(Translate(0x10000, AccessType::kRoLoad, 6).roload_fail_kind,
            RoLoadFailKind::kKeyMismatch);
  EXPECT_EQ(Translate(0x11000, AccessType::kRoLoad, 5).roload_fail_kind,
            RoLoadFailKind::kWritablePage);
  EXPECT_EQ(Translate(0x900000, AccessType::kRoLoad, 5).roload_fail_kind,
            RoLoadFailKind::kUnmapped);
}

TEST_F(TlbTest, PermissionCheckHappensOnHitsToo) {
  Map(0x10000, PageProt::Ro(9));
  EXPECT_TRUE(Translate(0x10000, AccessType::kRoLoad, 9).ok);   // refill
  EXPECT_TRUE(Translate(0x10000, AccessType::kRoLoad, 9).ok);   // hit
  EXPECT_FALSE(Translate(0x10000, AccessType::kRoLoad, 10).ok); // hit+fail
  EXPECT_FALSE(Translate(0x10000, AccessType::kStore, 0).ok);
}

TEST_F(TlbTest, FlushForcesRewalk) {
  Map(0x10000, PageProt::Rw());
  Translate(0x10000, AccessType::kLoad);
  tlb_.Flush();
  auto result = Translate(0x10000, AccessType::kLoad);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(tlb_.stats().misses, 2u);
  EXPECT_EQ(tlb_.stats().flushes, 1u);
}

TEST_F(TlbTest, StaleEntryAfterProtectWithoutFlush) {
  // The kernel MUST flush after PTE edits; without a flush the TLB keeps
  // honouring the old permissions (architected sfence.vma behaviour).
  Map(0x10000, PageProt::Rw());
  EXPECT_TRUE(Translate(0x10000, AccessType::kStore).ok);
  ASSERT_TRUE(space_.Protect(0x10000, 1, PageProt::Ro(3)).ok());
  EXPECT_TRUE(Translate(0x10000, AccessType::kStore).ok);  // stale
  tlb_.Flush();
  EXPECT_FALSE(Translate(0x10000, AccessType::kStore).ok);
  EXPECT_TRUE(Translate(0x10000, AccessType::kRoLoad, 3).ok);
}

TEST_F(TlbTest, EvictionBeyondCapacity) {
  // 40 pages through a 32-entry TLB: the working set wraps, so the second
  // sweep must miss again (LRU) while staying functionally correct.
  for (std::uint64_t i = 0; i < 40; ++i) {
    Map(0x100000 + i * mem::kPageSize, PageProt::Rw());
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        Translate(0x100000 + i * mem::kPageSize, AccessType::kLoad).ok);
  }
  const std::uint64_t misses_first = tlb_.stats().misses;
  EXPECT_EQ(misses_first, 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        Translate(0x100000 + i * mem::kPageSize, AccessType::kLoad).ok);
  }
  EXPECT_GT(tlb_.stats().misses, misses_first);
}

TEST(RoLoadCheckTest, TruthTableProperties) {
  // allowed <=> readable && !writable && key match.
  Rng rng(42);
  for (int trial = 0; trial < 5000; ++trial) {
    const bool readable = rng.NextPercent(50);
    const bool writable = rng.NextPercent(50);
    const std::uint32_t page_key =
        static_cast<std::uint32_t>(rng.NextBelow(1024));
    const std::uint32_t inst_key =
        rng.NextPercent(50) ? page_key
                            : static_cast<std::uint32_t>(rng.NextBelow(1024));
    const bool allowed = RoLoadCheck(readable, writable, page_key, inst_key);
    EXPECT_EQ(allowed, readable && !writable && page_key == inst_key);
  }
}

TEST(RoLoadCheckTest, NeverAllowsWritable) {
  for (std::uint32_t key = 0; key < 1024; key += 31) {
    EXPECT_FALSE(RoLoadCheck(true, true, key, key));
  }
}

// ---------------------------------------------------------------------------
// Host indexed-lookup differential: with host_indexed_lookup on, lookups
// go through the bucket chains and the per-access-type last-translation
// registers. Every translation of an arbitrary access stream must return
// the same result (ok, phys_addr, cycles, cause) and move the same stats
// as the reference fully-associative scan, access by access.

void RunIndexedLookupDifferential(TlbConfig config, std::uint64_t seed) {
  mem::PhysMemory memory(8 * 1024 * 1024);
  FrameAllocator frames(16, 1024);
  AddressSpace space(&memory, &frames);
  // A page population wider than the TLB with every protection flavour:
  // RW data, RX code, and RO pages under a handful of keys.
  constexpr std::uint64_t kBase = 0x100000;
  constexpr std::uint64_t kPages = 64;
  for (std::uint64_t i = 0; i < kPages; ++i) {
    PageProt prot;
    switch (i % 4) {
      case 0: prot = PageProt::Rw(); break;
      case 1: prot = PageProt::Rx(); break;
      default: prot = PageProt::Ro(static_cast<std::uint32_t>(i % 7)); break;
    }
    ASSERT_TRUE(space.Map(kBase + i * mem::kPageSize, 1, prot).ok());
  }

  TlbConfig reference = config;
  config.host_indexed_lookup = true;
  reference.host_indexed_lookup = false;
  Tlb fast(config, &memory);
  Tlb ref(reference, &memory);
  Rng rng(seed);
  constexpr AccessType kTypes[] = {AccessType::kFetch, AccessType::kLoad,
                                   AccessType::kStore, AccessType::kRoLoad};
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t page = rng.NextBelow(kPages);
    const std::uint64_t vaddr =
        kBase + page * mem::kPageSize + rng.NextBelow(mem::kPageSize);
    const AccessType access = kTypes[rng.NextBelow(4)];
    // Half the ld.ro probes carry the page's key, half a wrong one, so
    // both key-check outcomes (and their distinct stats) are exercised.
    const auto key = static_cast<std::uint32_t>(
        rng.NextPercent(50) ? page % 7 : rng.NextBelow(16));
    const TlbResult a = fast.Translate(space.root_ppn(), vaddr, access, key);
    const TlbResult b = ref.Translate(space.root_ppn(), vaddr, access, key);
    ASSERT_EQ(a.ok, b.ok) << "access " << i;
    ASSERT_EQ(a.phys_addr, b.phys_addr) << "access " << i;
    ASSERT_EQ(a.cycles, b.cycles) << "access " << i;
    if (!a.ok) ASSERT_EQ(a.cause, b.cause) << "access " << i;
    if (rng.NextPercent(1)) {
      fast.Flush();
      ref.Flush();
    }
  }
  EXPECT_EQ(fast.stats().hits, ref.stats().hits);
  EXPECT_EQ(fast.stats().misses, ref.stats().misses);
  EXPECT_EQ(fast.stats().flushes, ref.stats().flushes);
  EXPECT_EQ(fast.stats().permission_faults, ref.stats().permission_faults);
  EXPECT_EQ(fast.stats().roload_key_faults, ref.stats().roload_key_faults);
  EXPECT_EQ(fast.stats().roload_writable_faults,
            ref.stats().roload_writable_faults);
  EXPECT_EQ(fast.stats().key_checks, ref.stats().key_checks);
  EXPECT_EQ(fast.stats().key_check_hits, ref.stats().key_check_hits);
}

TEST(TlbIndexedLookupTest, MatchesReferenceDefaultConfig) {
  RunIndexedLookupDifferential(TlbConfig{}, 11);
}

TEST(TlbIndexedLookupTest, MatchesReferenceUnderEvictionChurn) {
  // 4 entries over 64 pages: constant global-LRU eviction and chain
  // unlinking, the paths most likely to diverge from the linear scan.
  TlbConfig config;
  config.entries = 4;
  RunIndexedLookupDifferential(config, 12);
}

TEST_F(TlbTest, FlushDropsLastTranslationShortcut) {
  // Regression: the per-access-type last-translation registers must not
  // outlive a flush, or a PTE key change after sfence.vma would be served
  // the stale key and the ld.ro check silently skipped.
  Map(0x10000, PageProt::Ro(7));
  ASSERT_TRUE(Translate(0x10000, AccessType::kRoLoad, 7).ok);  // warm hint
  ASSERT_TRUE(space_.Protect(0x10000, 1, PageProt::Ro(9)).ok());
  tlb_.Flush();
  const auto stale = Translate(0x10008, AccessType::kRoLoad, 7);
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.cause, isa::TrapCause::kRoLoadPageFault);
  EXPECT_EQ(tlb_.stats().roload_key_faults, 1u);
  EXPECT_TRUE(Translate(0x10010, AccessType::kRoLoad, 9).ok);
}

TEST(TlbConfigTest, SmallTlbStillCorrect) {
  mem::PhysMemory memory(8 * 1024 * 1024);
  FrameAllocator frames(16, 1024);
  AddressSpace space(&memory, &frames);
  TlbConfig config;
  config.entries = 2;
  Tlb tlb(config, &memory);
  ASSERT_TRUE(space.Map(0x10000, 4, PageProt::Ro(8)).ok());
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t page = 0; page < 4; ++page) {
      auto result =
          tlb.Translate(space.root_ppn(), 0x10000 + page * mem::kPageSize,
                        AccessType::kRoLoad, 8);
      EXPECT_TRUE(result.ok);
    }
  }
}

}  // namespace
}  // namespace roload::tlb
