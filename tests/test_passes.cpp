// Hardening-pass tests: structural assertions on what each pass does to
// the IR, plus a large parameterized sweep proving every (suite benchmark
// x defense) combination still verifies and computes the same result.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/builder.h"
#include "passes/passes.h"
#include "workloads/spec_like.h"

namespace roload::passes {
namespace {

using ir::Block;
using ir::Instr;
using ir::InstrKind;
using ir::Module;
using ir::Trait;

// A module with one vtable (class K), one vcall, one plain icall, and a
// callback table initializer.
Module TestModule() {
  Module module;
  module.name = "passes";
  const int class_k = module.InternClass("K");
  const int cb_type = module.InternFnType("i64(i64)");
  const int vm_type = module.InternFnType("i64(ptr)");

  ir::Global vtable;
  vtable.name = "vt_K";
  vtable.read_only = true;
  vtable.trait = ir::GlobalTrait::kVTable;
  vtable.trait_id = class_k;
  vtable.quads.push_back(ir::GlobalInit{0, "method"});
  module.globals.push_back(vtable);

  ir::Global object;
  object.name = "obj";
  object.quads.push_back(ir::GlobalInit{0, "vt_K"});
  module.globals.push_back(object);

  ir::Global table;
  table.name = "cb_table";
  table.quads.push_back(ir::GlobalInit{0, "callback"});
  module.globals.push_back(table);

  {
    ir::FunctionBuilder b(&module, "method", "i64(ptr)", 1);
    b.Ret(b.Const(7));
  }
  {
    ir::FunctionBuilder b(&module, "callback", "i64(i64)", 1);
    b.Ret(b.BinImm(ir::BinOp::kAdd, b.Param(0), 1));
  }
  {
    ir::FunctionBuilder b(&module, "main", "i64()", 0);
    const int obj = b.AddrOf("obj");
    const int vptr = b.Load(obj, 0, 8, Trait::kVPtrLoad, class_k);
    const int method = b.Load(vptr, 0, 8, Trait::kVTableEntryLoad, class_k);
    const int r1 = b.ICall(method, {obj}, vm_type, true, /*is_vcall=*/true);
    const int tbl = b.AddrOf("cb_table");
    const int fn = b.Load(tbl, 0, 8, Trait::kFnPtrLoad, cb_type);
    const int r2 = b.ICall(fn, {r1}, cb_type);
    b.Ret(r2);
  }
  module.RecomputeAddressTaken();
  return module;
}

// Counts instructions matching a predicate across the module.
template <typename Pred>
int CountInstrs(const Module& module, Pred pred) {
  int count = 0;
  for (const auto& fn : module.functions) {
    for (const Block& block : fn.blocks) {
      for (const Instr& instr : block.instrs) {
        if (pred(instr)) ++count;
      }
    }
  }
  return count;
}

TEST(VCallProtectTest, TagsVtableLoadsAndMovesVtables) {
  Module module = TestModule();
  ASSERT_TRUE(VCallProtectPass(&module).ok());
  const ir::Global* vtable = module.FindGlobal("vt_K");
  ASSERT_NE(vtable, nullptr);
  EXPECT_TRUE(vtable->read_only);
  EXPECT_GE(vtable->key, kVcallClassKeyBase);
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kLoad &&
                                 i.has_roload_md;
                        }),
            1);
  // The vptr load (from the writable object) must NOT be tagged.
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.trait == Trait::kVPtrLoad &&
                                 i.has_roload_md;
                        }),
            0);
}

TEST(VCallProtectTest, KeyGroupsBoundTheKeySpace) {
  for (unsigned groups : {1u, 2u, 8u}) {
    Module module = TestModule();
    VCallProtectOptions options;
    options.key_groups = groups;
    ASSERT_TRUE(VCallProtectPass(&module, options).ok());
    const ir::Global* vtable = module.FindGlobal("vt_K");
    EXPECT_LT(vtable->key, kVcallClassKeyBase + groups);
    EXPECT_GE(vtable->key, kVcallClassKeyBase);
  }
  Module module = TestModule();
  VCallProtectOptions zero;
  zero.key_groups = 0;
  EXPECT_FALSE(VCallProtectPass(&module, zero).ok());
}

TEST(ICallCfiTest, CreatesGfptAndRewritesReferences) {
  Module module = TestModule();
  ASSERT_TRUE(ICallCfiPass(&module).ok());
  // One GFPT entry per address-taken function (callback + method).
  const ir::Global* gfpt_cb = module.FindGlobal("gfpt_callback");
  ASSERT_NE(gfpt_cb, nullptr);
  EXPECT_TRUE(gfpt_cb->read_only);
  EXPECT_GE(gfpt_cb->key, kIcallTypeKeyBase);
  EXPECT_EQ(gfpt_cb->quads[0].symbol, "callback");
  // The callback-table initializer now points at the GFPT entry.
  const ir::Global* table = module.FindGlobal("cb_table");
  EXPECT_EQ(table->quads[0].symbol, "gfpt_callback");
  // The vtable initializer is untouched (vcalls use the unified key).
  EXPECT_EQ(module.FindGlobal("vt_K")->quads[0].symbol, "method");
  EXPECT_EQ(module.FindGlobal("vt_K")->key, kUnifiedVtableKey);
}

TEST(ICallCfiTest, InsertsRoLoadBeforePlainICallOnly) {
  Module module = TestModule();
  ASSERT_TRUE(ICallCfiPass(&module).ok());
  // Tagged loads: the vtable-entry load (unified key) + the GFPT load.
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kLoad &&
                                 i.has_roload_md;
                        }),
            2);
  // Exactly one GFPT load with a type key.
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kLoad &&
                                 i.has_roload_md &&
                                 i.roload_key >= kIcallTypeKeyBase;
                        }),
            1);
}

TEST(ICallCfiTest, DistinctTypesGetDistinctKeys) {
  Module module = TestModule();
  ASSERT_TRUE(ICallCfiPass(&module).ok());
  const ir::Global* gfpt_cb = module.FindGlobal("gfpt_callback");
  const ir::Global* gfpt_m = module.FindGlobal("gfpt_method");
  ASSERT_NE(gfpt_cb, nullptr);
  ASSERT_NE(gfpt_m, nullptr);
  EXPECT_NE(gfpt_cb->key, gfpt_m->key);
}

TEST(VTintTest, InsertsRangeChecksNoRoLoad) {
  Module module = TestModule();
  const int blocks_before =
      static_cast<int>(module.FindFunction("main")->blocks.size());
  ASSERT_TRUE(VTintPass(&module).ok());
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) { return i.has_roload_md; }),
            0);
  // The check references the linker bounds symbols.
  EXPECT_GE(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kAddrOf &&
                                 (i.symbol == "__rodata_start" ||
                                  i.symbol == "__rodata_end");
                        }),
            2);
  EXPECT_GT(static_cast<int>(module.FindFunction("main")->blocks.size()),
            blocks_before);
  // The abort path exists.
  EXPECT_GE(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kCall &&
                                 i.symbol == "__rt_abort";
                        }),
            1);
}

TEST(ClassicCfiTest, InsertsIdsAndChecks) {
  Module module = TestModule();
  ASSERT_TRUE(ClassicCfiPass(&module).ok());
  // Every function gets an entry ID word.
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kCfiLabel;
                        }),
            static_cast<int>(module.functions.size()));
  // Both icall sites (vcall + plain) get a 4-byte ID load check.
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) {
                          return i.kind == InstrKind::kLoad && i.width == 4;
                        }),
            2);
  EXPECT_EQ(CountInstrs(module,
                        [](const Instr& i) { return i.has_roload_md; }),
            0);
}

TEST(ClassicCfiTest, IdWordIsArchitecturalNop) {
  // The ID word is the encoding of "lui zero, id": opcode 0x37, rd 0.
  const std::int64_t word = CfiIdWord(0x123);
  EXPECT_EQ(word & 0x7F, 0x37);
  EXPECT_EQ((word >> 7) & 0x1F, 0);
  EXPECT_EQ((word >> 12) & 0xFFFFF, 0x123);
}

TEST(ClassicCfiTest, DistinctTypesDistinctIds) {
  EXPECT_NE(CfiIdWord(0x100), CfiIdWord(0x101));
}

// ---------------------------------------------------------------------------
// The big sweep: every suite benchmark under every defense verifies,
// builds, runs, and computes the same checksum as the unhardened build.
struct SweepCase {
  std::size_t bench_index;
  core::Defense defense;
};

class DefenseSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DefenseSweepTest, HardenedBenchmarkMatchesBaselineResult) {
  auto suite = workloads::SpecCint2006Suite(0.02);  // tiny but complete
  const auto& spec = suite[GetParam().bench_index];
  const ir::Module module = workloads::Generate(spec);

  core::BuildOptions base_options;
  auto base = core::CompileAndRun(module, base_options,
                                  core::SystemVariant::kFullRoload);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(base->completed);

  core::BuildOptions options;
  options.defense = GetParam().defense;
  auto hardened = core::CompileAndRun(module, options,
                                      core::SystemVariant::kFullRoload);
  ASSERT_TRUE(hardened.ok()) << hardened.status().ToString();
  EXPECT_TRUE(hardened->completed);
  EXPECT_EQ(hardened->exit_code, base->exit_code) << spec.name;
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (std::size_t i = 0; i < 11; ++i) {
    for (core::Defense defense :
         {core::Defense::kVCall, core::Defense::kVTint, core::Defense::kICall,
          core::Defense::kClassicCfi}) {
      cases.push_back(SweepCase{i, defense});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SuiteByDefense, DefenseSweepTest, ::testing::ValuesIn(AllSweepCases()),
    [](const auto& info) {
      auto suite = workloads::SpecCint2006Suite(0.02);
      std::string name = suite[info.param.bench_index].name + "_" +
                         std::string(core::DefenseName(info.param.defense));
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

}  // namespace
}  // namespace roload::passes
