// End-to-end pipeline tests: IR -> hardening pass -> codegen -> assemble ->
// load -> simulate, checking functional results and defense behaviour.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/builder.h"

namespace roload {
namespace {

using core::BuildOptions;
using core::CompileAndRun;
using core::Defense;
using core::SystemVariant;

// A program with a virtual call and an indirect call:
//   class Base { virtual long get() }; Derived::get returns 41
//   long add_one(long) // address-taken, called indirectly
//   main: obj.get() + add_one(1) == 42 -> exit code 42
ir::Module MakeVcallIcallModule() {
  ir::Module module;
  module.name = "e2e";
  const int class_id = module.InternClass("Derived");

  // Object storage: one quad (the vptr), patched at startup.
  ir::Global object;
  object.name = "the_object";
  object.read_only = false;
  object.quads.push_back(ir::GlobalInit{0, "vtable_Derived"});
  module.globals.push_back(object);

  ir::Global vtable;
  vtable.name = "vtable_Derived";
  vtable.read_only = true;
  vtable.trait = ir::GlobalTrait::kVTable;
  vtable.trait_id = class_id;
  vtable.quads.push_back(ir::GlobalInit{0, "Derived_get"});
  module.globals.push_back(vtable);

  // A writable slot holding a function pointer.
  ir::Global fptr_slot;
  fptr_slot.name = "fptr_slot";
  fptr_slot.read_only = false;
  fptr_slot.quads.push_back(ir::GlobalInit{0, ""});
  module.globals.push_back(fptr_slot);

  {
    ir::FunctionBuilder b(&module, "Derived_get", "i64(ptr)", 1);
    b.Ret(b.Const(40));
  }
  {
    ir::FunctionBuilder b(&module, "add_one", "i64(i64)", 1);
    b.Ret(b.BinImm(ir::BinOp::kAdd, b.Param(0), 1));
  }
  {
    ir::FunctionBuilder b(&module, "main", "i64()", 0);
    // fptr_slot = &add_one
    const int fp = b.AddrOf("add_one");
    const int slot = b.AddrOf("fptr_slot");
    b.Store(slot, fp);
    // Virtual call: vptr = load obj; fn = load [vptr+0]; r1 = fn(obj)
    const int obj = b.AddrOf("the_object");
    const int vptr =
        b.Load(obj, 0, 8, ir::Trait::kVPtrLoad, /*trait_id=*/0);
    const int method =
        b.Load(vptr, 0, 8, ir::Trait::kVTableEntryLoad, /*trait_id=*/0);
    const int r1 = b.ICall(method, {obj}, module.InternFnType("i64(ptr)"),
                           /*has_result=*/true, /*is_vcall=*/true);
    // Indirect call: fn2 = load fptr_slot; r2 = fn2(1)
    const int one = b.Const(1);
    const int fn2 = b.Load(slot, 0, 8, ir::Trait::kFnPtrLoad,
                           module.InternFnType("i64(i64)"));
    const int r2 = b.ICall(fn2, {one}, module.InternFnType("i64(i64)"));
    b.Ret(b.Bin(ir::BinOp::kAdd, r1, r2));
  }
  module.RecomputeAddressTaken();
  return module;
}

class EndToEndTest : public ::testing::TestWithParam<Defense> {};

TEST_P(EndToEndTest, HardenedProgramStillComputes42) {
  BuildOptions options;
  options.defense = GetParam();
  auto metrics = CompileAndRun(MakeVcallIcallModule(), options,
                               SystemVariant::kFullRoload);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(metrics->completed);
  EXPECT_EQ(metrics->exit_code, 42);
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, EndToEndTest,
                         ::testing::Values(Defense::kNone, Defense::kVCall,
                                           Defense::kVTint, Defense::kICall,
                                           Defense::kClassicCfi),
                         [](const auto& info) {
                           return std::string(
                               core::DefenseName(info.param));
                         });

TEST(EndToEndTest, RoLoadDefensesEmitRoLoadInstructions) {
  for (Defense defense : {Defense::kVCall, Defense::kICall}) {
    BuildOptions options;
    options.defense = defense;
    auto metrics = CompileAndRun(MakeVcallIcallModule(), options,
                                 SystemVariant::kFullRoload);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_GT(metrics->roload_loads, 0u)
        << core::DefenseName(defense);
  }
}

TEST(EndToEndTest, BaselineDefenseExecutesNoRoLoad) {
  BuildOptions options;
  options.defense = Defense::kVTint;
  auto metrics = CompileAndRun(MakeVcallIcallModule(), options,
                               SystemVariant::kFullRoload);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->roload_loads, 0u);
}

TEST(EndToEndTest, HardenedBinaryFaultsOnBaselineProcessor) {
  // A VCall-hardened binary contains ld.ro, which the unmodified core
  // decodes as an illegal instruction.
  BuildOptions options;
  options.defense = Defense::kVCall;
  auto metrics = CompileAndRun(MakeVcallIcallModule(), options,
                               SystemVariant::kBaseline);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_FALSE(metrics->completed);
}

TEST(EndToEndTest, HardenedBinaryFaultsOnUnmodifiedKernel) {
  // The processor-modified system decodes ld.ro, but the unmodified kernel
  // never tagged the allowlist pages, so the key check fails.
  BuildOptions options;
  options.defense = Defense::kVCall;
  auto metrics = CompileAndRun(MakeVcallIcallModule(), options,
                               SystemVariant::kProcessorModified);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_FALSE(metrics->completed);
}

TEST(EndToEndTest, UnhardenedBinaryRunsOnAllVariants) {
  for (SystemVariant variant :
       {SystemVariant::kBaseline, SystemVariant::kProcessorModified,
        SystemVariant::kFullRoload}) {
    BuildOptions options;
    auto metrics = CompileAndRun(MakeVcallIcallModule(), options, variant);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_TRUE(metrics->completed);
    EXPECT_EQ(metrics->exit_code, 42);
  }
}

}  // namespace
}  // namespace roload
