// Kernel tests: address-space construction, the mmap/mprotect-with-key
// syscall surface, brk, write capture, loader behaviour (keyed sections,
// permission tightening), and the fault discrimination paths.
#include <gtest/gtest.h>

#include "kernel/address_space.h"
#include "tests/guest_util.h"

namespace roload::kernel {
namespace {

using roload::testing::ExpectExit;
using roload::testing::RunGuest;

// ---------------------------------------------------------------------------
// AddressSpace unit tests (no CPU involved).
class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest()
      : memory_(16 * 1024 * 1024), frames_(16, 2048),
        space_(&memory_, &frames_) {}

  mem::PhysMemory memory_;
  FrameAllocator frames_;
  AddressSpace space_;
};

TEST_F(AddressSpaceTest, MapCreatesReadablePte) {
  ASSERT_TRUE(space_.Map(0x10000, 2, PageProt::Rw()).ok());
  auto pte = space_.GetPte(0x10000);
  ASSERT_TRUE(pte.ok());
  EXPECT_TRUE(pte->readable());
  EXPECT_TRUE(pte->writable());
  EXPECT_TRUE(pte->user());
  EXPECT_EQ(pte->key(), 0u);
  EXPECT_TRUE(space_.GetPte(0x11000).ok());
  EXPECT_FALSE(space_.GetPte(0x12000).ok());
}

TEST_F(AddressSpaceTest, MapWithKey) {
  ASSERT_TRUE(space_.Map(0x20000, 1, PageProt::Ro(345)).ok());
  auto pte = space_.GetPte(0x20000);
  ASSERT_TRUE(pte.ok());
  EXPECT_EQ(pte->key(), 345u);
  EXPECT_FALSE(pte->writable());
}

TEST_F(AddressSpaceTest, DoubleMapFails) {
  ASSERT_TRUE(space_.Map(0x10000, 1, PageProt::Rw()).ok());
  EXPECT_EQ(space_.Map(0x10000, 1, PageProt::Rw()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(AddressSpaceTest, UnalignedAndBadKeyRejected) {
  EXPECT_FALSE(space_.Map(0x10001, 1, PageProt::Rw()).ok());
  PageProt bad = PageProt::Ro(0);
  bad.key = 1024;  // exceeds the 10-bit field
  EXPECT_FALSE(space_.Map(0x10000, 1, bad).ok());
}

TEST_F(AddressSpaceTest, ProtectChangesPermsAndKey) {
  ASSERT_TRUE(space_.Map(0x10000, 1, PageProt::Rw()).ok());
  ASSERT_TRUE(space_.Protect(0x10000, 1, PageProt::Ro(42)).ok());
  auto pte = space_.GetPte(0x10000);
  ASSERT_TRUE(pte.ok());
  EXPECT_FALSE(pte->writable());
  EXPECT_EQ(pte->key(), 42u);
  EXPECT_FALSE(space_.Protect(0x99000, 1, PageProt::Rw()).ok());
}

TEST_F(AddressSpaceTest, CopyAcrossPageBoundary) {
  ASSERT_TRUE(space_.Map(0x10000, 2, PageProt::Rw()).ok());
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(space_.CopyIn(0x10F80, payload.data(), payload.size()).ok());
  std::vector<std::uint8_t> readback(300);
  ASSERT_TRUE(space_.CopyOut(0x10F80, readback.data(), readback.size()).ok());
  EXPECT_EQ(payload, readback);
}

TEST_F(AddressSpaceTest, MappedPagesCounted) {
  const std::uint64_t before = space_.mapped_pages();
  ASSERT_TRUE(space_.Map(0x10000, 5, PageProt::Rw()).ok());
  EXPECT_EQ(space_.mapped_pages(), before + 5);
}

TEST(FrameAllocatorTest, ExhaustionAndReuse) {
  FrameAllocator frames(16, 2);
  auto a = frames.Allocate();
  auto b = frames.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(frames.Allocate().ok());
  frames.Free(*a);
  auto c = frames.Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

// ---------------------------------------------------------------------------
// Syscall-level tests through guest programs.
TEST(SyscallTest, WriteCapturesStdout) {
  const auto run = RunGuest(R"(
.section .text
_start:
  li a0, 1
  la a1, msg
  li a2, 5
  li a7, 64
  ecall
  mv s0, a0     # bytes written
  li a0, 0
  mv a0, s0
  li a7, 93
  ecall
.section .rodata
msg: .asciz "hello"
)");
  ASSERT_EQ(run.result.kind, ExitKind::kExited);
  EXPECT_EQ(run.result.exit_code, 5);
  EXPECT_EQ(run.result.stdout_text, "hello");
}

TEST(SyscallTest, WriteBadFdFails) {
  const auto run = RunGuest(R"(
.section .text
_start:
  li a0, 7
  la a1, msg
  li a2, 5
  li a7, 64
  ecall
  li a7, 93
  ecall
.section .rodata
msg: .asciz "hello"
)");
  ASSERT_EQ(run.result.kind, ExitKind::kExited);
  EXPECT_EQ(run.result.exit_code, -9);  // EBADF
  EXPECT_TRUE(run.result.stdout_text.empty());
}

TEST(SyscallTest, BrkGrowsHeap) {
  ExpectExit(R"(
.section .text
_start:
  li a0, 0
  li a7, 214
  ecall             # a0 = current brk
  mv s0, a0
  addi a0, s0, 0x100
  li a7, 214
  ecall             # grow
  sd zero, 0(s0)    # heap page now writable
  ld a0, 0(s0)
  li a7, 93
  ecall
)",
             0);
}

TEST(SyscallTest, MmapAnonymousRw) {
  ExpectExit(R"(
.section .text
_start:
  li a0, 0
  li a1, 8192
  li a2, 3          # PROT_READ|PROT_WRITE
  li a7, 222
  ecall
  li t0, 123
  sd t0, 0(a0)
  li t1, 4096
  add t2, a0, t1
  sd t0, 0(t2)      # second page too
  ld a1, 0(t2)
  sub a0, a1, t0
  li a7, 93
  ecall
)",
             0);
}

TEST(SyscallTest, OffsetOutOfRangeIsAssemblerError) {
  auto image = asmtool::Assemble(
      ".text\n_start:\n  sd t0, 4096(a0)\n");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("12-bit"), std::string::npos);
}

TEST(SyscallTest, MmapZeroLengthFails) {
  ExpectExit(R"(
.section .text
_start:
  li a0, 0
  li a1, 0
  li a2, 3
  li a7, 222
  ecall
  li a7, 93
  ecall
)",
             -22);  // EINVAL
}

TEST(SyscallTest, MprotectRevokesWrite) {
  const auto run = RunGuest(R"(
.section .text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a7, 222
  ecall
  mv s0, a0
  li a0, 0
  mv a0, s0
  li a1, 4096
  li a2, 1          # PROT_READ only
  li a7, 226
  ecall
  sd zero, 0(s0)    # must fault now
  li a7, 93
  ecall
)");
  EXPECT_EQ(run.result.kind, ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kStorePageFault);
}

TEST(SyscallTest, UnknownSyscallReturnsEnosys) {
  ExpectExit(".section .text\n_start:\n  li a7, 9999\n  ecall\n"
             "  li a7, 93\n  ecall\n",
             -38);
}

// ---------------------------------------------------------------------------
// Loader behaviour.
TEST(LoaderTest, KeyedSectionsGetKeysOnlyOnRoloadAwareKernel) {
  const std::string program = R"(
.section .text
_start:
  la t0, list
  ld.ro a0, (t0), 9
  li a7, 93
  ecall
.section .rodata.key.9
list: .quad 5
)";
  const auto aware = RunGuest(program, core::SystemVariant::kFullRoload);
  EXPECT_EQ(aware.result.kind, ExitKind::kExited);
  EXPECT_EQ(aware.result.exit_code, 5);
  const auto unaware =
      RunGuest(program, core::SystemVariant::kProcessorModified);
  EXPECT_EQ(unaware.result.kind, ExitKind::kKilled);
}

TEST(LoaderTest, RodataIsNotWritableEvenThoughLoaderWroteIt) {
  const auto run = RunGuest(R"(
.section .text
_start:
  la t0, ro
  sd zero, 0(t0)
  li a7, 93
  ecall
.section .rodata
ro: .quad 1
)");
  EXPECT_EQ(run.result.kind, ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kStorePageFault);
}

TEST(LoaderTest, BssIsZeroInitialized) {
  ExpectExit(R"(
.section .text
_start:
  la t0, buf
  ld a0, 0(t0)
  ld a1, 2040(t0)
  add a0, a0, a1
  li a7, 93
  ecall
.section .bss
buf: .zero 2048
)",
             0);
}

TEST(LoaderTest, StackIsUsable) {
  ExpectExit(R"(
.section .text
_start:
  addi sp, sp, -32
  li t0, 77
  sd t0, 0(sp)
  sd t0, 24(sp)
  ld a0, 0(sp)
  addi sp, sp, 32
  addi a0, a0, -77
  li a7, 93
  ecall
)",
             0);
}

TEST(LoaderTest, InstructionLimitStopsRunaway) {
  const auto run = RunGuest(
      ".section .text\n_start:\nspin:\n  j spin\n",
      core::SystemVariant::kFullRoload, /*max_instructions=*/10000);
  EXPECT_EQ(run.result.kind, ExitKind::kInstructionLimit);
  EXPECT_GE(run.result.instructions, 10000u);
}

TEST(LoaderTest, PeakMemoryTracksMappings) {
  const auto small = RunGuest(
      ".text\n_start:\n  li a7, 93\n  ecall\n.data\nx: .zero 4096\n");
  const auto large = RunGuest(
      ".text\n_start:\n  li a7, 93\n  ecall\n.data\nx: .zero 409600\n");
  ASSERT_EQ(small.result.kind, ExitKind::kExited);
  ASSERT_EQ(large.result.kind, ExitKind::kExited);
  EXPECT_GT(large.result.peak_mem_kib, small.result.peak_mem_kib + 300);
}

// Fault discrimination: only the roload-aware kernel attributes ROLoad
// faults (the paper's modified arch/riscv/mm/fault.c).
TEST(FaultTest, DiscriminationMatrix) {
  const std::string bad_key = R"(
.section .text
_start:
  la t0, list
  ld.ro a0, (t0), 8
  li a7, 93
  ecall
.section .rodata.key.9
list: .quad 5
)";
  const auto aware = RunGuest(bad_key, core::SystemVariant::kFullRoload);
  EXPECT_EQ(aware.result.kind, ExitKind::kKilled);
  EXPECT_TRUE(aware.result.roload_violation);
  EXPECT_EQ(aware.result.signal, kSigsegv);

  // A benign (non-ROLoad) segfault must NOT be flagged as a violation.
  const auto benign = RunGuest(
      ".text\n_start:\n  li t0, 0x7000000\n  ld a0, 0(t0)\n");
  EXPECT_EQ(benign.result.kind, ExitKind::kKilled);
  EXPECT_FALSE(benign.result.roload_violation);
  EXPECT_EQ(benign.result.signal, kSigsegv);
}

TEST(MmapKeyTest, GuestBuildsItsOwnAllowlist) {
  // The full userspace flow: mmap RW, publish, mprotect(RO+key), ld.ro.
  ExpectExit(R"(
.section .text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a7, 222
  ecall
  mv s0, a0
  li t0, 55
  sd t0, 8(s0)
  mv a0, s0
  li a1, 4096
  li a2, 0x150001   # PROT_READ | key 21 << 16
  li a7, 226
  ecall
  addi s1, s0, 8
  ld.ro a0, (s1), 21
  addi a0, a0, -55
  li a7, 93
  ecall
)",
             0);
}

}  // namespace
}  // namespace roload::kernel
