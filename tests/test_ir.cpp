// IR tests: the builder, interning, the verifier's rejection of each
// malformed construct, address-taken analysis, and printer stability.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/ir.h"

namespace roload::ir {
namespace {

Module SimpleModule() {
  Module module;
  module.name = "t";
  FunctionBuilder b(&module, "main", "i64()", 0);
  b.Ret(b.Const(0));
  return module;
}

TEST(ModuleTest, InterningIsStable) {
  Module module;
  const int t0 = module.InternFnType("i64()");
  const int t1 = module.InternFnType("i64(i64)");
  EXPECT_EQ(module.InternFnType("i64()"), t0);
  EXPECT_EQ(module.InternFnType("i64(i64)"), t1);
  EXPECT_NE(t0, t1);
  const int c0 = module.InternClass("A");
  EXPECT_EQ(module.InternClass("A"), c0);
  EXPECT_NE(module.InternClass("B"), c0);
}

TEST(ModuleTest, FindFunctionAndGlobal) {
  Module module = SimpleModule();
  Global g;
  g.name = "data";
  module.globals.push_back(g);
  EXPECT_NE(module.FindFunction("main"), nullptr);
  EXPECT_EQ(module.FindFunction("nope"), nullptr);
  EXPECT_NE(module.FindGlobal("data"), nullptr);
  EXPECT_EQ(module.FindGlobal("nope"), nullptr);
}

TEST(ModuleTest, RecomputeAddressTaken) {
  Module module;
  {
    FunctionBuilder b(&module, "taken_by_code", "i64()", 0);
    b.Ret(b.Const(1));
  }
  {
    FunctionBuilder b(&module, "taken_by_global", "i64()", 0);
    b.Ret(b.Const(2));
  }
  {
    FunctionBuilder b(&module, "not_taken", "i64()", 0);
    b.Ret(b.Const(3));
  }
  {
    FunctionBuilder b(&module, "main", "i64()", 0);
    const int addr = b.AddrOf("taken_by_code");
    b.Ret(addr);
  }
  Global table;
  table.name = "table";
  table.quads.push_back(GlobalInit{0, "taken_by_global"});
  module.globals.push_back(table);

  module.RecomputeAddressTaken();
  EXPECT_TRUE(module.FindFunction("taken_by_code")->address_taken);
  EXPECT_TRUE(module.FindFunction("taken_by_global")->address_taken);
  EXPECT_FALSE(module.FindFunction("not_taken")->address_taken);
}

TEST(BuilderTest, BlocksAndRegs) {
  Module module;
  FunctionBuilder b(&module, "f", "i64(i64,i64)", 2);
  EXPECT_EQ(b.Param(0), 0);
  EXPECT_EQ(b.Param(1), 1);
  const int v = b.Bin(BinOp::kAdd, b.Param(0), b.Param(1));
  EXPECT_EQ(v, 2);
  b.CondBr(v, "yes", "no");
  b.SetBlock("yes");
  b.Ret(v);
  b.SetBlock("no");
  b.Ret(b.Const(0));
  EXPECT_EQ(b.function()->blocks.size(), 3u);
  EXPECT_TRUE(Verify(module).ok());
}

TEST(VerifierTest, AcceptsWellFormed) {
  EXPECT_TRUE(Verify(SimpleModule()).ok());
}

TEST(VerifierTest, RejectsDuplicateFunctionNames) {
  Module module = SimpleModule();
  FunctionBuilder b(&module, "main", "i64()", 0);
  b.Ret(b.Const(1));
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsEmptyFunction) {
  Module module;
  Function fn;
  fn.name = "f";
  module.fn_type_names.push_back("i64()");
  module.functions.push_back(fn);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module module;
  module.fn_type_names.push_back("i64()");
  Function fn;
  fn.name = "f";
  fn.num_vregs = 1;
  Block block;
  block.label = "entry";
  Instr c;
  c.kind = InstrKind::kConst;
  c.dst = 0;
  block.instrs.push_back(c);  // no terminator
  fn.blocks.push_back(block);
  module.functions.push_back(fn);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsTerminatorMidBlock) {
  Module module;
  module.fn_type_names.push_back("i64()");
  Function fn;
  fn.name = "f";
  fn.num_vregs = 1;
  Block block;
  block.label = "entry";
  Instr ret;
  ret.kind = InstrKind::kRet;
  block.instrs.push_back(ret);
  Instr c;
  c.kind = InstrKind::kConst;
  c.dst = 0;
  block.instrs.push_back(c);
  fn.blocks.push_back(block);
  module.functions.push_back(fn);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsOutOfRangeVreg) {
  Module module = SimpleModule();
  module.functions[0].blocks[0].instrs[0].dst = 99;
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsUnknownBranchTarget) {
  Module module;
  FunctionBuilder b(&module, "f", "i64()", 0);
  b.Br("nowhere");
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsUnknownCallee) {
  Module module;
  FunctionBuilder b(&module, "f", "i64()", 0);
  const int r = b.Call("ghost", {});
  b.Ret(r);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, AcceptsRuntimeIntrinsics) {
  Module module;
  FunctionBuilder b(&module, "f", "i64()", 0);
  b.Call("__rt_abort", {}, /*has_result=*/false);
  b.Ret(b.Const(0));
  EXPECT_TRUE(Verify(module).ok());
}

TEST(VerifierTest, RejectsBadLoadWidth) {
  Module module;
  FunctionBuilder b(&module, "f", "i64()", 0);
  const int addr = b.AddrOf("f");
  const int v = b.Load(addr, 0, 3);  // width 3 is illegal
  b.Ret(v);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsRoLoadMdWithKeyZero) {
  Module module;
  FunctionBuilder b(&module, "f", "i64()", 0);
  const int addr = b.AddrOf("f");
  const int v = b.Load(addr);
  b.Ret(v);
  // Manually corrupt: metadata with the reserved key 0.
  for (Block& block : module.functions[0].blocks) {
    for (Instr& instr : block.instrs) {
      if (instr.kind == InstrKind::kLoad) {
        instr.has_roload_md = true;
        instr.roload_key = 0;
      }
    }
  }
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsTooManyArgs) {
  Module module;
  FunctionBuilder b(&module, "callee", "i64()", 0);
  b.Ret(b.Const(0));
  FunctionBuilder m(&module, "f", "i64()", 0);
  std::vector<int> args;
  for (int i = 0; i < 9; ++i) args.push_back(m.Const(i));
  const int r = m.Call("callee", args);
  m.Ret(r);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(VerifierTest, RejectsCfiLabelOver20Bits) {
  Module module = SimpleModule();
  Instr label;
  label.kind = InstrKind::kCfiLabel;
  label.imm = 0x100000;
  auto& entry = module.functions[0].blocks[0].instrs;
  entry.insert(entry.begin(), label);
  EXPECT_FALSE(Verify(module).ok());
}

TEST(PrinterTest, StableAndInformative) {
  Module module;
  Global vtable;
  vtable.name = "vt";
  vtable.read_only = true;
  vtable.key = 101;
  vtable.trait = GlobalTrait::kVTable;
  vtable.trait_id = module.InternClass("K");
  vtable.quads.push_back(GlobalInit{0, "m"});
  module.globals.push_back(vtable);
  {
    FunctionBuilder b(&module, "m", "i64(ptr)", 1);
    b.Ret(b.Param(0));
  }
  {
    FunctionBuilder b(&module, "main", "i64()", 0);
    const int addr = b.AddrOf("vt");
    const int v = b.Load(addr, 8, 8);
    b.Ret(v);
  }
  // Tag the load with metadata and print.
  for (Block& block : module.FindFunction("main")->blocks) {
    for (Instr& instr : block.instrs) {
      if (instr.kind == InstrKind::kLoad) {
        instr.has_roload_md = true;
        instr.roload_key = 101;
      }
    }
  }
  const std::string printed = Print(module);
  EXPECT_NE(printed.find("vtable(K)"), std::string::npos);
  EXPECT_NE(printed.find("key=101"), std::string::npos);
  EXPECT_NE(printed.find("!roload-md key=101"), std::string::npos);
  EXPECT_EQ(printed, Print(module)) << "printer must be deterministic";
}

}  // namespace
}  // namespace roload::ir
