// Unit tests for the support library: bit utilities, string helpers,
// deterministic RNG, and the status/error types.
#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"

namespace roload {
namespace {

TEST(BitsTest, ExtractBitsBasics) {
  EXPECT_EQ(ExtractBits(0xFF00, 15, 8), 0xFFu);
  EXPECT_EQ(ExtractBits(0xFF00, 7, 0), 0x00u);
  EXPECT_EQ(ExtractBits(0x1234'5678'9ABC'DEF0ull, 63, 60), 0x1u);
  EXPECT_EQ(ExtractBits(~0ull, 63, 0), ~0ull);
}

TEST(BitsTest, InsertBitsRoundTrip) {
  for (unsigned lo : {0u, 10u, 54u}) {
    const unsigned hi = lo + 9;
    for (std::uint64_t field : {0ull, 1ull, 0x3FFull, 0x155ull}) {
      const std::uint64_t word = InsertBits(0xAAAA'AAAA'AAAA'AAAAull, hi, lo,
                                            field);
      EXPECT_EQ(ExtractBits(word, hi, lo), field);
    }
  }
}

TEST(BitsTest, InsertBitsPreservesOtherBits) {
  const std::uint64_t base = 0x1234'5678'9ABC'DEF0ull;
  const std::uint64_t word = InsertBits(base, 23, 16, 0xFF);
  EXPECT_EQ(word & ~(0xFFull << 16), base & ~(0xFFull << 16));
}

TEST(BitsTest, SignExtend) {
  EXPECT_EQ(SignExtend(0xFFF, 12), -1);
  EXPECT_EQ(SignExtend(0x7FF, 12), 2047);
  EXPECT_EQ(SignExtend(0x800, 12), -2048);
  EXPECT_EQ(SignExtend(0, 12), 0);
  EXPECT_EQ(SignExtend(0x80, 8), -128);
}

TEST(BitsTest, FitsSigned) {
  EXPECT_TRUE(FitsSigned(2047, 12));
  EXPECT_FALSE(FitsSigned(2048, 12));
  EXPECT_TRUE(FitsSigned(-2048, 12));
  EXPECT_FALSE(FitsSigned(-2049, 12));
  EXPECT_TRUE(FitsSigned(0, 1));
}

TEST(BitsTest, FitsUnsigned) {
  EXPECT_TRUE(FitsUnsigned(1023, 10));
  EXPECT_FALSE(FitsUnsigned(1024, 10));
  EXPECT_TRUE(FitsUnsigned(~0ull, 64));
}

TEST(BitsTest, PowersAndAlignment) {
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(Log2(4096), 12u);
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  auto kept = SplitString("a,b,,c", ',', /*keep_empty=*/true);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[2], "");
}

TEST(StringsTest, ParseIntForms) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-42").value(), -42);
  EXPECT_EQ(ParseInt("0x10").value(), 16);
  EXPECT_EQ(ParseInt("0b101").value(), 5);
  EXPECT_EQ(ParseInt(" 7 ").value(), 7);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
  EXPECT_FALSE(ParseInt("0x").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("0b2").has_value());
}

TEST(StringsTest, PrefixSuffixAndFormat) {
  EXPECT_TRUE(StartsWith(".rodata.key.7", ".rodata.key."));
  EXPECT_FALSE(StartsWith(".rodata", ".rodata.key."));
  EXPECT_TRUE(EndsWith("a.cpp", ".cpp"));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const std::int64_t value = rng.NextInRange(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
    EXPECT_GE(rng.NextDouble(), 0.0);
    EXPECT_LT(rng.NextDouble(), 1.0);
  }
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng rng(9);
  const std::vector<unsigned> weights = {3, 0, 5, 0, 1};
  for (int i = 0; i < 500; ++i) {
    const std::size_t pick = rng.NextWeighted(weights);
    EXPECT_NE(pick, 1u);
    EXPECT_NE(pick, 3u);
    EXPECT_LT(pick, weights.size());
  }
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status status = Status::InvalidArgument("bad");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error(Status::NotFound("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace roload
