// Test helper: assemble a guest program and run it on a simulated system.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "asmtool/assembler.h"
#include "core/system.h"

namespace roload::testing {

struct GuestRun {
  kernel::RunResult result;
  // The system outlives the run so tests can inspect CPU state.
  std::shared_ptr<core::System> system;
};

// Assembles and runs `source` on a system built from `config`. Fails the
// current test on assembly/load errors.
inline GuestRun RunGuest(const std::string& source,
                         const core::SystemConfig& config,
                         std::uint64_t max_instructions = 1 << 22) {
  GuestRun run;
  auto image = asmtool::Assemble(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  if (!image.ok()) return run;
  run.system = std::make_shared<core::System>(config);
  Status status = run.system->Load(*image);
  EXPECT_TRUE(status.ok()) << status.ToString();
  if (!status.ok()) return run;
  run.result = run.system->Run(max_instructions);
  return run;
}

// Assembles and runs `source` on a default system of the given variant.
inline GuestRun RunGuest(
    const std::string& source,
    core::SystemVariant variant = core::SystemVariant::kFullRoload,
    std::uint64_t max_instructions = 1 << 22) {
  core::SystemConfig config;
  config.variant = variant;
  return RunGuest(source, config, max_instructions);
}

// Shorthand: run and expect a clean exit with `expected_code`.
inline void ExpectExit(const std::string& source, std::int64_t expected_code,
                       core::SystemVariant variant =
                           core::SystemVariant::kFullRoload) {
  const GuestRun run = RunGuest(source, variant);
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited)
      << "killed by signal " << run.result.signal << " ("
      << isa::TrapCauseName(run.result.trap_cause) << ") at pc 0x"
      << std::hex << run.result.fault_pc;
  EXPECT_EQ(run.result.exit_code, expected_code);
}

}  // namespace roload::testing
