// Property/fuzz tests across tool boundaries:
//  * disassemble(encode(i)) reassembles to the identical encoding for
//    randomized instructions over every opcode (asm <-> disasm closure),
//  * random instruction streams survive the full assemble -> serialize ->
//    deserialize -> decode loop,
//  * the assembler never crashes on mutated source text.
#include <gtest/gtest.h>

#include "asmtool/assembler.h"
#include "asmtool/image_io.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "support/rng.h"
#include "support/strings.h"

namespace roload {
namespace {

using isa::Instruction;
using isa::Opcode;

// Opcodes whose disassembly is directly assemblable (branches/jumps print
// raw numeric offsets which the assembler expects as labels, so they are
// exercised separately).
const Opcode kStreamableOpcodes[] = {
    Opcode::kAddi, Opcode::kSlti,  Opcode::kSltiu, Opcode::kXori,
    Opcode::kOri,  Opcode::kAndi,  Opcode::kSlli,  Opcode::kSrli,
    Opcode::kSrai, Opcode::kAddiw, Opcode::kAdd,   Opcode::kSub,
    Opcode::kSll,  Opcode::kSlt,   Opcode::kSltu,  Opcode::kXor,
    Opcode::kSrl,  Opcode::kSra,   Opcode::kOr,    Opcode::kAnd,
    Opcode::kAddw, Opcode::kSubw,  Opcode::kMul,   Opcode::kMulw,
    Opcode::kDiv,  Opcode::kDivu,  Opcode::kRem,   Opcode::kRemu,
    Opcode::kLb,   Opcode::kLh,    Opcode::kLw,    Opcode::kLd,
    Opcode::kLbu,  Opcode::kLhu,   Opcode::kLwu,   Opcode::kSb,
    Opcode::kSh,   Opcode::kSw,    Opcode::kSd,    Opcode::kLbRo,
    Opcode::kLhRo, Opcode::kLwRo,  Opcode::kLdRo,
};

Instruction RandomStreamable(Rng& rng) {
  Instruction inst;
  inst.op = kStreamableOpcodes[rng.NextBelow(std::size(kStreamableOpcodes))];
  inst.rd = static_cast<std::uint8_t>(rng.NextBelow(32));
  inst.rs1 = static_cast<std::uint8_t>(rng.NextBelow(32));
  inst.rs2 = static_cast<std::uint8_t>(rng.NextBelow(32));
  switch (isa::OpcodeFormat(inst.op)) {
    case isa::Format::kI:
    case isa::Format::kILoad:
    case isa::Format::kS:
      inst.imm = rng.NextInRange(-2048, 2047);
      break;
    case isa::Format::kIShift:
      inst.imm = rng.NextInRange(0, 63);
      break;
    case isa::Format::kRoLoad:
      inst.key = static_cast<std::uint32_t>(rng.NextBelow(1024));
      break;
    default:
      break;
  }
  return inst;
}

TEST(FuzzTest, DisassembleReassembleIsIdentityOverRandomStreams) {
  Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    std::vector<Instruction> stream;
    std::string source = ".section .text\n_start:\n";
    for (int i = 0; i < 40; ++i) {
      const Instruction inst = RandomStreamable(rng);
      stream.push_back(inst);
      source += "  " + isa::Disassemble(inst) + "\n";
    }
    auto image = asmtool::Assemble(source);
    ASSERT_TRUE(image.ok()) << image.status().ToString() << "\n" << source;
    const auto* text = image->FindSection(".text");
    ASSERT_NE(text, nullptr);
    std::uint64_t offset = 0;
    for (const Instruction& expected : stream) {
      std::uint32_t word = 0;
      for (unsigned b = 0; b < 4; ++b) {
        word |= static_cast<std::uint32_t>(text->bytes[offset + b]) << (8 * b);
      }
      EXPECT_EQ(word, isa::Encode(expected))
          << "round " << round << " @" << offset << ": "
          << isa::Disassemble(expected);
      offset += 4;
    }
  }
}

TEST(FuzzTest, SerializeLoopPreservesRandomImages) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    std::string source = ".section .text\n_start:\n";
    for (int i = 0; i < 20; ++i) {
      source += "  " + isa::Disassemble(RandomStreamable(rng)) + "\n";
    }
    source += StrFormat(".section .rodata.key.%llu\nlist%d:\n  .quad %lld\n",
                        static_cast<unsigned long long>(rng.NextBelow(1023) + 1),
                        round, static_cast<long long>(rng.NextU64() >> 1));
    auto image = asmtool::Assemble(source);
    ASSERT_TRUE(image.ok());
    auto loop =
        asmtool::DeserializeImage(asmtool::SerializeImage(*image));
    ASSERT_TRUE(loop.ok());
    EXPECT_EQ(asmtool::SerializeImage(*loop),
              asmtool::SerializeImage(*image));
  }
}

TEST(FuzzTest, AssemblerNeverCrashesOnMutatedSource) {
  const std::string seed_source = R"(
.section .text
_start:
  la t0, allowlist
  ld.ro a0, (t0), 111
  beq a0, a1, _start
  li a7, 93
  ecall
.section .rodata.key.111
allowlist:
  .quad 42
)";
  Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = seed_source;
    // 1-4 random byte mutations: flips, deletions, insertions.
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextInRange(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.NextInRange(32, 126)));
          break;
      }
    }
    // Must return, never crash; result may be ok or an error.
    auto image = asmtool::Assemble(mutated);
    if (image.ok()) {
      EXPECT_GE(image->sections.size(), 1u);
    } else {
      EXPECT_FALSE(image.status().message().empty());
    }
  }
}

TEST(FuzzTest, DecoderNeverCrashesOnRandomWords) {
  Rng rng(31337);
  unsigned decoded = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.NextU64());
    auto inst = isa::Decode(word);
    if (inst.has_value()) {
      ++decoded;
      // Whatever decodes must re-encode to a decodable word (encodings we
      // accept are canonical for the fields we keep).
      const std::uint32_t reencoded = isa::Encode(*inst);
      EXPECT_TRUE(isa::Decode(reencoded).has_value());
    }
  }
  EXPECT_GT(decoded, 0u);
}

TEST(FuzzTest, ImageDeserializerNeverCrashesOnMutations) {
  auto image = asmtool::Assemble(
      ".section .text\n_start:\n  nop\n.data\nx: .quad 1\n");
  ASSERT_TRUE(image.ok());
  const std::string bytes = asmtool::SerializeImage(*image);
  Rng rng(5);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = bytes;
    const std::size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextU64());
    auto result = asmtool::DeserializeImage(mutated);  // ok or error, no UB
    (void)result;
  }
}

}  // namespace
}  // namespace roload
