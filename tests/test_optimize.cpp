// Optimization-pass tests: folding/DCE behaviour plus the differential
// proof that optimized modules compute exactly what unoptimized ones do,
// on both the interpreter and the simulated hardware.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "passes/optimize.h"
#include "workloads/spec_like.h"

namespace roload::passes {
namespace {

TEST(ConstantFoldTest, FoldsChains) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int a = b.Const(6);
  const int c = b.BinImm(ir::BinOp::kMul, a, 7);       // 42
  const int d = b.BinImm(ir::BinOp::kXor, c, 0xFF);    // 213
  const int e = b.Bin(ir::BinOp::kSub, d, a);          // 207
  b.Ret(e);
  OptimizeStats stats;
  ASSERT_TRUE(ConstantFoldPass(&module, &stats).ok());
  EXPECT_EQ(stats.folded, 3u);
  // Everything is now a constant; the return feeds from a kConst.
  auto result = ir::Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 207);
}

TEST(ConstantFoldTest, RiscvDivisionRulesRespected) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int x = b.Const(42);
  const int zero = b.Const(0);
  const int q = b.Bin(ir::BinOp::kDiv, x, zero);
  const int sum = b.BinImm(ir::BinOp::kAdd, q, 1);  // -1 + 1 = 0
  b.Ret(sum);
  ASSERT_TRUE(ConstantFoldPass(&module).ok());
  auto result = ir::Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 0);
}

TEST(ConstantFoldTest, DoesNotCrossBlocks) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int a = b.Const(5);
  b.Br("next");
  b.SetBlock("next");
  const int c = b.BinImm(ir::BinOp::kAdd, a, 1);  // a defined upstream
  b.Ret(c);
  OptimizeStats stats;
  ASSERT_TRUE(ConstantFoldPass(&module, &stats).ok());
  EXPECT_EQ(stats.folded, 0u) << "cross-block folding needs dominance info";
}

TEST(DceTest, RemovesUnreadPureInstructions) {
  ir::Module module;
  ir::Global data;
  data.name = "g";
  data.zero_bytes = 8;
  module.globals.push_back(data);
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  b.Const(1);                        // dead
  const int addr = b.AddrOf("g");    // live (store)
  b.BinImm(ir::BinOp::kAdd, addr, 0);  // dead
  const int v = b.Const(9);
  b.Store(addr, v);
  const int out = b.Load(addr);
  b.Load(addr, 0);  // dead *load*: must be KEPT (can fault)
  b.Ret(out);
  OptimizeStats stats;
  ASSERT_TRUE(DeadCodeEliminationPass(&module, &stats).ok());
  EXPECT_EQ(stats.removed, 2u);
  auto result = ir::Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 9);
}

TEST(DceTest, CascadesThroughDeadChains) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int a = b.Const(1);
  const int c = b.BinImm(ir::BinOp::kAdd, a, 1);
  b.BinImm(ir::BinOp::kAdd, c, 1);  // dead -> frees c -> frees a
  b.Ret(b.Const(0));
  OptimizeStats stats;
  ASSERT_TRUE(DeadCodeEliminationPass(&module, &stats).ok());
  EXPECT_EQ(stats.removed, 3u);
}

// The big one: optimizing a whole workload must not change its result —
// checked against BOTH executors, with hardening applied after
// optimization (the realistic pipeline order).
TEST(OptimizePipelineTest, WorkloadsUnchangedUnderOptimization) {
  auto suite = workloads::SpecCint2006Suite(0.02);
  for (std::size_t index : {std::size_t{1}, std::size_t{8}}) {
    const auto& spec = suite[index];
    const ir::Module original = workloads::Generate(spec);

    ir::Module optimized = original;
    OptimizeStats stats;
    ASSERT_TRUE(OptimizePipeline(&optimized, &stats).ok());
    // The generators emit tight code (every value threads into the
    // checksum), so fold/DCE may find nothing — the property under test
    // is purely semantic preservation.

    auto interp_orig = ir::Interpret(original);
    auto interp_opt = ir::Interpret(optimized);
    ASSERT_TRUE(interp_orig.ok());
    ASSERT_TRUE(interp_opt.ok());
    EXPECT_EQ(interp_orig->return_value, interp_opt->return_value);

    for (core::Defense defense :
         {core::Defense::kNone, core::Defense::kICall}) {
      core::BuildOptions options;
      options.defense = defense;
      auto base = core::CompileAndRun(original, options,
                                      core::SystemVariant::kFullRoload);
      auto opt = core::CompileAndRun(optimized, options,
                                     core::SystemVariant::kFullRoload);
      ASSERT_TRUE(base.ok());
      ASSERT_TRUE(opt.ok());
      EXPECT_EQ(base->exit_code, opt->exit_code) << spec.name;
      // Optimization should not *grow* the program.
      EXPECT_LE(opt->instructions, base->instructions) << spec.name;
    }
  }
}

TEST(OptimizePipelineTest, PreservesRoLoadMetadata) {
  auto suite = workloads::SpecCppSubset(0.02);
  ir::Module module = workloads::Generate(suite[0]);
  ASSERT_TRUE(ICallCfiPass(&module).ok());
  unsigned md_before = 0;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.has_roload_md) ++md_before;
      }
    }
  }
  ASSERT_TRUE(OptimizePipeline(&module).ok());
  unsigned md_after = 0;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.has_roload_md) ++md_after;
      }
    }
  }
  EXPECT_EQ(md_before, md_after)
      << "DCE must never drop security-relevant loads";
}

}  // namespace
}  // namespace roload::passes
