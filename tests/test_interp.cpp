// Interpreter unit tests + the differential oracle: for every suite
// benchmark and every defense, the IR interpreter and the full compiled
// pipeline (codegen -> assembler -> loader -> simulated CPU) must agree on
// the program result. One equality covering the entire backend.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "passes/passes.h"
#include "workloads/spec_like.h"

namespace roload::ir {
namespace {

TEST(InterpTest, ArithmeticAndControlFlow) {
  Module module;
  FunctionBuilder b(&module, "main", "i64()", 0);
  // sum of 1..10 via loop through memory (scratch global).
  Global scratch;
  scratch.name = "scratch";
  scratch.zero_bytes = 16;
  module.globals.push_back(scratch);
  {
    const int s = b.AddrOf("scratch");
    b.Store(s, b.Const(1), 0);
    b.Store(s, b.Const(0), 8);
    b.Br("head");
  }
  b.SetBlock("head");
  {
    const int s = b.AddrOf("scratch");
    const int i = b.Load(s, 0);
    const int cond = b.BinImm(BinOp::kSltu, i, 11);
    b.CondBr(cond, "body", "done");
  }
  b.SetBlock("body");
  {
    const int s = b.AddrOf("scratch");
    const int i = b.Load(s, 0);
    const int acc = b.Load(s, 8);
    b.Store(s, b.Bin(BinOp::kAdd, acc, i), 8);
    b.Store(s, b.BinImm(BinOp::kAdd, i, 1), 0);
    b.Br("head");
  }
  b.SetBlock("done");
  {
    const int s = b.AddrOf("scratch");
    b.Ret(b.Load(s, 8));
  }
  auto result = Interpret(module);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 55);
}

TEST(InterpTest, DivisionEdgeCasesMatchRiscV) {
  Module module;
  FunctionBuilder b(&module, "main", "i64()", 0);
  const int x = b.Const(42);
  const int zero = b.Const(0);
  const int q = b.Bin(BinOp::kDiv, x, zero);   // -1
  const int r = b.Bin(BinOp::kRem, x, zero);   // 42
  const int sum = b.Bin(BinOp::kAdd, q, r);    // 41
  b.Ret(sum);
  auto result = Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 41);
}

TEST(InterpTest, NarrowLoadSignExtension) {
  Module module;
  Global bytes;
  bytes.name = "bytes";
  bytes.quads.push_back(GlobalInit{0xFF, ""});  // low byte 0xFF
  module.globals.push_back(bytes);
  FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.AddrOf("bytes");
  const int sext = b.Load(addr, 0, 1, Trait::kNone, 0);  // -1
  const int sum = b.BinImm(BinOp::kAdd, sext, 2);        // 1
  b.Ret(sum);
  auto result = Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 1);
}

TEST(InterpTest, IndirectCallsThroughTables) {
  Module module;
  Global table;
  table.name = "table";
  table.quads.push_back(GlobalInit{0, "f1"});
  table.quads.push_back(GlobalInit{0, "f2"});
  module.globals.push_back(table);
  const int type = module.InternFnType("i64(i64)");
  {
    FunctionBuilder b(&module, "f1", "i64(i64)", 1);
    b.Ret(b.BinImm(BinOp::kAdd, b.Param(0), 10));
  }
  {
    FunctionBuilder b(&module, "f2", "i64(i64)", 1);
    b.Ret(b.BinImm(BinOp::kMul, b.Param(0), 3));
  }
  FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.AddrOf("table");
  const int fn1 = b.Load(addr, 0, 8, Trait::kFnPtrLoad, type);
  const int fn2 = b.Load(addr, 8, 8, Trait::kFnPtrLoad, type);
  const int a = b.ICall(fn1, {b.Const(5)}, type);   // 15
  const int c = b.ICall(fn2, {a}, type);            // 45
  b.Ret(c);
  module.RecomputeAddressTaken();
  auto result = Interpret(module);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 45);
}

TEST(InterpTest, AbortIntrinsicStopsExecution) {
  Module module;
  FunctionBuilder b(&module, "main", "i64()", 0);
  b.Call("__rt_abort", {}, /*has_result=*/false);
  b.Ret(b.Const(7));
  auto result = Interpret(module);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->aborted);
  EXPECT_EQ(result->return_value, 134);
}

TEST(InterpTest, RejectsRunaway) {
  Module module;
  FunctionBuilder b(&module, "main", "i64()", 0);
  b.Br("entry");  // infinite loop
  InterpOptions options;
  options.max_steps = 1000;
  EXPECT_FALSE(Interpret(module, options).ok());
}

TEST(InterpTest, RejectsWildMemory) {
  Module module;
  FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.Const(0x10);  // far below the arena
  const int v = b.Load(addr);
  b.Ret(v);
  EXPECT_FALSE(Interpret(module).ok());
}

// ---------------------------------------------------------------------------
// The differential oracle.
struct DiffCase {
  std::size_t bench_index;
  core::Defense defense;
};

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, InterpreterAgreesWithSimulatedHardware) {
  auto suite = workloads::SpecCint2006Suite(0.02);
  const auto& spec = suite[GetParam().bench_index];
  ir::Module module = workloads::Generate(spec);

  // Apply the defense so the *transformed* module is what both executors
  // see (the passes must be semantics-preserving).
  core::BuildOptions options;
  options.defense = GetParam().defense;
  switch (options.defense) {
    case core::Defense::kVCall:
      ASSERT_TRUE(passes::VCallProtectPass(&module).ok());
      break;
    case core::Defense::kICall:
      ASSERT_TRUE(passes::ICallCfiPass(&module).ok());
      break;
    case core::Defense::kVTint:
      ASSERT_TRUE(passes::VTintPass(&module).ok());
      break;
    case core::Defense::kClassicCfi:
      ASSERT_TRUE(passes::ClassicCfiPass(&module).ok());
      break;
    case core::Defense::kNone:
      break;
  }

  auto interpreted = Interpret(module);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();

  core::BuildOptions no_further;  // module is already hardened
  auto compiled = core::CompileAndRun(module, no_further,
                                      core::SystemVariant::kFullRoload);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(compiled->completed);
  EXPECT_EQ(compiled->exit_code, interpreted->return_value)
      << spec.name << " under " << core::DefenseName(GetParam().defense);
}

std::vector<DiffCase> DiffCases() {
  std::vector<DiffCase> cases;
  for (std::size_t i = 0; i < 11; ++i) {
    for (core::Defense defense :
         {core::Defense::kNone, core::Defense::kVCall,
          core::Defense::kICall, core::Defense::kClassicCfi}) {
      cases.push_back(DiffCase{i, defense});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DifferentialTest, ::testing::ValuesIn(DiffCases()),
    [](const auto& info) {
      auto suite = workloads::SpecCint2006Suite(0.02);
      std::string name = suite[info.param.bench_index].name + "_" +
                         std::string(core::DefenseName(info.param.defense));
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

}  // namespace
}  // namespace roload::ir
