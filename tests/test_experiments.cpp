// Reproduction-guard integration tests: the paper's headline relationships
// must hold on a reduced-scale run of the real experiment pipelines. If a
// change to the simulator, passes, or workloads breaks a *shape* the paper
// reports, these tests catch it before the bench binaries do.
#include <gtest/gtest.h>

#include "backend/codegen.h"
#include "core/toolchain.h"
#include "hw/tlb_datapath.h"
#include "tests/guest_util.h"
#include "workloads/spec_like.h"

namespace roload {
namespace {

constexpr double kScale = 0.1;

struct SuiteRun {
  double vcall_time = 0, vtint_time = 0;     // C++ subset averages
  double vcall_mem = 0, vtint_mem = 0;
  double icall_time = 0, cfi_time = 0;       // full-suite averages
  double icall_mem = 0, cfi_mem = 0;
};

// One shared evaluation run for the whole fixture (expensive).
const SuiteRun& RunSuiteOnce() {
  static const SuiteRun run = [] {
    SuiteRun out;
    int cpp_count = 0, all_count = 0;
    for (const auto& spec : workloads::SpecCint2006Suite(kScale)) {
      const ir::Module module = workloads::Generate(spec);
      auto measure = [&module](core::Defense defense) {
        core::BuildOptions options;
        options.defense = defense;
        auto metrics = core::CompileAndRun(
            module, options, core::SystemVariant::kFullRoload);
        ROLOAD_CHECK(metrics.ok() && metrics->completed);
        return *metrics;
      };
      const auto base = measure(core::Defense::kNone);
      const auto icall = measure(core::Defense::kICall);
      const auto cfi = measure(core::Defense::kClassicCfi);
      auto pct = [](std::uint64_t base_v, std::uint64_t v) {
        return core::OverheadPercent(static_cast<double>(base_v),
                                     static_cast<double>(v));
      };
      out.icall_time += pct(base.cycles, icall.cycles);
      out.cfi_time += pct(base.cycles, cfi.cycles);
      out.icall_mem += pct(base.peak_mem_kib, icall.peak_mem_kib);
      out.cfi_mem += pct(base.peak_mem_kib, cfi.peak_mem_kib);
      ++all_count;
      if (spec.is_cpp) {
        const auto vcall = measure(core::Defense::kVCall);
        const auto vtint = measure(core::Defense::kVTint);
        out.vcall_time += pct(base.cycles, vcall.cycles);
        out.vtint_time += pct(base.cycles, vtint.cycles);
        out.vcall_mem += pct(base.peak_mem_kib, vcall.peak_mem_kib);
        out.vtint_mem += pct(base.peak_mem_kib, vtint.peak_mem_kib);
        ++cpp_count;
      }
    }
    out.vcall_time /= cpp_count;
    out.vtint_time /= cpp_count;
    out.vcall_mem /= cpp_count;
    out.vtint_mem /= cpp_count;
    out.icall_time /= all_count;
    out.cfi_time /= all_count;
    out.icall_mem /= all_count;
    out.cfi_mem /= all_count;
    return out;
  }();
  return run;
}

TEST(PaperShapeTest, Fig3VCallIsNegligibleAndBeatsVTint) {
  const SuiteRun& run = RunSuiteOnce();
  EXPECT_LT(run.vcall_time, 0.5) << "paper: 0.303%";
  EXPECT_GT(run.vtint_time, 1.0) << "paper: 2.750%";
  EXPECT_LT(run.vcall_time, run.vtint_time / 4);
}

TEST(PaperShapeTest, Fig3MemoryOrderingVTintAboveVCall) {
  const SuiteRun& run = RunSuiteOnce();
  EXPECT_LT(run.vcall_mem, 1.0);
  EXPECT_LT(run.vtint_mem, 1.0);
  EXPECT_LT(run.vcall_mem, run.vtint_mem)
      << "VTint's code growth must exceed VCall's keyed pages";
}

TEST(PaperShapeTest, Fig4ICallFarCheaperThanClassicCfi) {
  const SuiteRun& run = RunSuiteOnce();
  EXPECT_LT(run.icall_time, 2.0) << "paper: ~0%";
  EXPECT_GT(run.cfi_time, 3.0) << "paper: 9.073%";
  EXPECT_LT(run.icall_time, run.cfi_time / 4);
}

TEST(PaperShapeTest, Fig5MemoryOrderingICallAboveCfi) {
  const SuiteRun& run = RunSuiteOnce();
  EXPECT_LT(run.icall_mem, 1.0);
  EXPECT_LT(run.cfi_mem, 1.0);
  EXPECT_GT(run.icall_mem, run.cfi_mem)
      << "GFPT keyed pages must exceed CFI's code growth";
}

TEST(PaperShapeTest, SectionVBExactlyZeroOverhead) {
  auto suite = workloads::SpecCint2006Suite(0.03);
  const ir::Module module = workloads::Generate(suite[0]);
  core::BuildOptions options;
  auto base = core::CompileAndRun(module, options,
                                  core::SystemVariant::kBaseline);
  auto full = core::CompileAndRun(module, options,
                                  core::SystemVariant::kFullRoload);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(base->cycles, full->cycles);
  EXPECT_EQ(base->peak_mem_kib, full->peak_mem_kib);
}

TEST(PaperShapeTest, TableIIIWithinPaperBound) {
  const hw::TableIII table = hw::ComputeTableIII();
  const double worst =
      std::max({table.core_lut_increase_percent,
                table.core_ff_increase_percent,
                table.system_lut_increase_percent,
                table.system_ff_increase_percent});
  EXPECT_LT(worst, 3.32) << "the paper's headline bound";
  EXPECT_GT(worst, 0.5) << "cost must be real, not zero";
}

// ---------------------------------------------------------------------------
// End-to-end compressed-encoding build: a whole C++ benchmark hardened
// with c.ld.ro (5-bit keys) still computes the baseline checksum, with a
// smaller code section than the wide build.
TEST(CompressedEndToEnd, BenchmarkRunsAndShrinksCode) {
  auto suite = workloads::SpecCppSubset(0.03);
  const ir::Module module = workloads::Generate(suite[0]);

  core::BuildOptions base_options;
  auto base = core::CompileAndRun(module, base_options,
                                  core::SystemVariant::kFullRoload);
  ASSERT_TRUE(base.ok());

  core::BuildOptions wide;
  wide.defense = core::Defense::kVCall;
  wide.vcall.key_groups = 16;  // keys fit the 5-bit compressed field
  auto wide_build = core::Build(module, wide);
  ASSERT_TRUE(wide_build.ok());

  core::BuildOptions compressed = wide;
  compressed.codegen.use_compressed_roload = true;
  auto compressed_build = core::Build(module, compressed);
  ASSERT_TRUE(compressed_build.ok());
  EXPECT_LE(compressed_build->code_bytes, wide_build->code_bytes);

  auto metrics = core::CompileAndRun(module, compressed,
                                     core::SystemVariant::kFullRoload);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(metrics->completed);
  EXPECT_EQ(metrics->exit_code, base->exit_code);
  EXPECT_GT(metrics->roload_loads, 0u);
}

// Compressed parcels make 4-byte instructions straddle page boundaries;
// the fetch path must translate both halves.
TEST(CompressedEndToEnd, FetchAcrossPageBoundary) {
  // Pad .text so a 4-byte instruction starts 2 bytes before a page end.
  std::string source = ".section .text\n_start:\n";
  // 2045 c.ld.ro? Simpler: 1023 4-byte nops + one c.ld.ro leaves pc at
  // 4094; the following 4-byte li straddles the boundary.
  for (int i = 0; i < 1023; ++i) source += "  nop\n";
  source += "  c.ld.ro a0, (s1), 7\n";  // 2 bytes @4092... adjust below
  source += "  li a0, 51\n  li a7, 93\n  ecall\n";
  source += ".section .rodata.key.7\nlist: .quad 1\n";
  // Prepare s1 before reaching the c.ld.ro: patch the start.
  source.replace(source.find("_start:\n") + 8, 0, "  la s1, list\n");
  // The la adds 8 bytes; drop two nops to restore the straddle.
  source.replace(source.find("  nop\n"), 12, "");
  const auto run = testing::RunGuest(source);
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited)
      << isa::TrapCauseName(run.result.trap_cause);
  EXPECT_EQ(run.result.exit_code, 51);
}

}  // namespace
}  // namespace roload
