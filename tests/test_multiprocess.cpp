// Multi-process scheduling tests: address-space isolation under keys, the
// no-flush ASID-tagged TLB on context switch, and the Related-Work claim
// that ROLoad adds no per-process architectural state.
#include <gtest/gtest.h>

#include "support/strings.h"
#include "tests/guest_util.h"

namespace roload::kernel {
namespace {

// A process that loops `iters` times accumulating, writes its tag via
// ld.ro from its own keyed allowlist every iteration, and exits with
// (tag + iters) & 63.
std::string KeyedWorker(unsigned tag, unsigned key, unsigned iters) {
  return StrFormat(R"(
.section .text
_start:
  li s0, %u          # remaining iterations
  li s2, 0           # accumulator
loop:
  la t0, my_tag
  ld.ro t1, (t0), %u
  add s2, s2, t1
  addi s0, s0, -1
  bnez s0, loop
  andi a0, s2, 63
  li a7, 93
  ecall
.section .rodata.key.%u
my_tag:
  .quad %u
)",
                   iters, key, key, tag);
}

class MultiProcessTest : public ::testing::Test {
 protected:
  MultiProcessTest() : system_(core::SystemConfig{}) {}

  int MustLoad(const std::string& source) {
    auto image = asmtool::Assemble(source);
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    auto pid = system_.kernel().LoadProcess(*image);
    EXPECT_TRUE(pid.ok()) << pid.status().ToString();
    return pid.ok() ? *pid : -1;
  }

  core::System system_;
};

TEST_F(MultiProcessTest, TwoProcessesInterleaveAndBothFinish) {
  MustLoad(KeyedWorker(/*tag=*/1, /*key=*/101, /*iters=*/500));
  MustLoad(KeyedWorker(/*tag=*/2, /*key=*/102, /*iters=*/500));
  auto results = system_.kernel().RunAll(/*slice=*/100,
                                         /*total_limit=*/1 << 22);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].kind, ExitKind::kExited);
  EXPECT_EQ(results[1].kind, ExitKind::kExited);
  EXPECT_EQ(results[0].exit_code, (1 * 500) & 63);
  EXPECT_EQ(results[1].exit_code, (2 * 500) & 63);
  // Slices of 100 instructions over ~3000-instruction processes: many
  // genuine context switches happened.
  EXPECT_GT(system_.kernel().context_switches(), 10u);
}

TEST_F(MultiProcessTest, KeysAreScopedPerAddressSpace) {
  // Both processes use THE SAME key for DIFFERENT data: keys are a
  // property of each process's page tables, so there is no cross-process
  // interference (no global key registry to virtualize — a deployment
  // property the paper's design implies).
  MustLoad(KeyedWorker(/*tag=*/5, /*key=*/200, /*iters=*/300));
  MustLoad(KeyedWorker(/*tag=*/9, /*key=*/200, /*iters=*/300));
  auto results = system_.kernel().RunAll(/*slice=*/64,
                                         /*total_limit=*/1 << 22);
  EXPECT_EQ(results[0].exit_code, (5 * 300) & 63);
  EXPECT_EQ(results[1].exit_code, (9 * 300) & 63);
}

TEST_F(MultiProcessTest, TlbIsolationWithoutShootdown) {
  // The two processes map the same virtual address to different frames;
  // the TLB tags entries by translation root, so both stay resident and
  // correct across switches (the scheduler never calls FlushTlbs).
  MustLoad(KeyedWorker(1, 101, 400));
  MustLoad(KeyedWorker(2, 102, 400));
  system_.kernel().RunAll(/*slice=*/50, /*total_limit=*/1 << 22);
  const auto& stats = system_.cpu().dtlb_stats();
  // Two processes x (1 rodata page + stack page) stay cached: misses stay
  // near the cold-start count instead of scaling with switch count.
  EXPECT_LT(stats.misses, 64u);
  EXPECT_GT(system_.kernel().context_switches(), 10u);
  EXPECT_EQ(stats.flushes, 0u);
}

TEST_F(MultiProcessTest, FaultInOneProcessDoesNotKillOthers) {
  MustLoad(KeyedWorker(1, 101, 300));
  // Second process ld.ro's with the wrong key -> dies with SIGSEGV.
  MustLoad(KeyedWorker(2, 102, 300) + "\n");
  // Corrupt: rebuild the second with a mismatched instruction key.
  core::System fresh;
  auto good = asmtool::Assemble(KeyedWorker(1, 101, 300));
  auto bad = asmtool::Assemble(StrFormat(R"(
.section .text
_start:
  la t0, my_tag
  ld.ro a0, (t0), 999
  li a7, 93
  ecall
.section .rodata.key.111
my_tag: .quad 7
)"));
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(fresh.kernel().LoadProcess(*good).ok());
  ASSERT_TRUE(fresh.kernel().LoadProcess(*bad).ok());
  auto results = fresh.kernel().RunAll(/*slice=*/64,
                                       /*total_limit=*/1 << 22);
  EXPECT_EQ(results[0].kind, ExitKind::kExited);
  EXPECT_EQ(results[0].exit_code, 300 & 63);
  EXPECT_EQ(results[1].kind, ExitKind::kKilled);
  EXPECT_TRUE(results[1].roload_violation);
}

TEST_F(MultiProcessTest, StdoutIsPerProcess) {
  auto writer = [](const char* text) {
    return StrFormat(R"(
.section .text
_start:
  li a0, 1
  la a1, msg
  li a2, 3
  li a7, 64
  ecall
  li a0, 0
  li a7, 93
  ecall
.section .rodata
msg: .asciz "%s"
)",
                     text);
  };
  core::System fresh;
  auto a = asmtool::Assemble(writer("AAA"));
  auto b = asmtool::Assemble(writer("BBB"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fresh.kernel().LoadProcess(*a).ok());
  ASSERT_TRUE(fresh.kernel().LoadProcess(*b).ok());
  auto results = fresh.kernel().RunAll(4, 1 << 20);
  EXPECT_EQ(results[0].stdout_text, "AAA");
  EXPECT_EQ(results[1].stdout_text, "BBB");
}

TEST_F(MultiProcessTest, SingleProcessApiStillWorks) {
  // The legacy Load/Run pair must behave exactly as before on top of the
  // multi-process internals.
  auto image = asmtool::Assemble(KeyedWorker(3, 300, 100));
  ASSERT_TRUE(image.ok());
  core::System fresh;
  ASSERT_TRUE(fresh.Load(*image).ok());
  const auto result = fresh.Run();
  EXPECT_EQ(result.kind, ExitKind::kExited);
  EXPECT_EQ(result.exit_code, (3 * 100) & 63);
}

}  // namespace
}  // namespace roload::kernel
