// Security-forensics tests (src/audit): the ld.ro dispatch census, fault
// autopsies for each failure class, the exporters, the attack-harness
// forensic verdicts, and — mirroring the telemetry guarantee — that
// enabling auditing never perturbs the simulation.
#include <gtest/gtest.h>

#include <string>

#include "audit/audit.h"
#include "audit/report.h"
#include "core/system.h"
#include "sec/attack.h"
#include "tests/guest_util.h"

namespace roload {
namespace {

core::SystemConfig AuditConfig() {
  core::SystemConfig config;
  config.trace.audit = true;
  return config;
}

// Two keyed-load sites: one in a loop (key 9, four executions), one
// straight-line (key 5).
constexpr const char* kCensusSource = R"(
.section .text
_start:
  li s0, 4
  la t0, secret
loop:
  ld.ro t1, (t0), 9
  addi s0, s0, -1
  bnez s0, loop
  la t2, table
  ld.ro t3, (t2), 5
  li a0, 0
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
.section .rodata.key.5
table:
  .quad 99
)";

// The faulting ld.ro names key 5, but `secret` lives in the key-9
// section — and the image *does* have a key-5 section the access should
// have resolved into.
constexpr const char* kKeyMismatchSource = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
.section .rodata.key.5
legit:
  .quad 4321
)";

// The faulting ld.ro targets a writable .data page.
constexpr const char* kWritablePageSource = R"(
.section .text
_start:
  la t0, mutable
  ld.ro t1, (t0), 9
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
.section .data
mutable:
  .quad 5678
)";

// ---------------------------------------------------------------------------
// Dispatch census.

TEST(AuditCensusTest, CountsSitesKeysAndOutcomes) {
  const testing::GuestRun run = testing::RunGuest(kCensusSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited);
  ASSERT_EQ(run.result.exit_code, 0);
  const audit::Auditor* auditor = run.system->audit();
  ASSERT_NE(auditor, nullptr);

  const audit::DispatchCensus& census = auditor->census();
  ASSERT_EQ(census.sites().size(), 2u);
  EXPECT_EQ(census.total_passes(), 5u);
  EXPECT_EQ(census.total_fails(), 0u);

  const auto per_key = census.PerKey();
  ASSERT_EQ(per_key.size(), 2u);
  ASSERT_TRUE(per_key.count(9));
  ASSERT_TRUE(per_key.count(5));
  EXPECT_EQ(per_key.at(9).sites, 1u);
  EXPECT_EQ(per_key.at(9).passes, 4u);
  EXPECT_EQ(per_key.at(5).sites, 1u);
  EXPECT_EQ(per_key.at(5).passes, 1u);

  for (const auto& [pc, site] : census.sites()) {
    EXPECT_EQ(site.pc, pc);
    EXPECT_EQ(site.fails, 0u);
    EXPECT_EQ(site.last_outcome, audit::CheckOutcome::kPass);
    EXPECT_EQ(site.pages.size(), 1u);  // each site reads one page
    EXPECT_FALSE(site.pages_saturated);
  }

  // The census is also a counter source in the system registry.
  const trace::CounterRegistry& counters = run.system->trace().counters();
  EXPECT_EQ(counters.Value("audit.census.sites"), 2u);
  EXPECT_EQ(counters.Value("audit.census.pass"), 5u);
  EXPECT_EQ(counters.Value("audit.census.fail"), 0u);
  EXPECT_EQ(counters.Value("audit.autopsies"), 0u);
}

TEST(AuditCensusTest, FailingSiteRecordsOutcome) {
  const testing::GuestRun run = testing::RunGuest(kKeyMismatchSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  const audit::Auditor* auditor = run.system->audit();
  ASSERT_NE(auditor, nullptr);

  const audit::DispatchCensus& census = auditor->census();
  ASSERT_EQ(census.sites().size(), 1u);
  const audit::SiteRecord& site = census.sites().begin()->second;
  EXPECT_EQ(site.key, 5u);
  EXPECT_EQ(site.passes, 0u);
  EXPECT_EQ(site.fails, 1u);
  EXPECT_EQ(site.last_outcome, audit::CheckOutcome::kKeyMismatch);
  EXPECT_EQ(census.total_fails(), 1u);
}

// ---------------------------------------------------------------------------
// Fault autopsies.

TEST(AuditAutopsyTest, KeyMismatchCapturesBothKeys) {
  const testing::GuestRun run = testing::RunGuest(kKeyMismatchSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  ASSERT_TRUE(run.result.roload_violation);
  const audit::Auditor* auditor = run.system->audit();
  ASSERT_NE(auditor, nullptr);
  ASSERT_EQ(auditor->autopsies().size(), 1u);

  const audit::Autopsy& autopsy = auditor->autopsies().front();
  EXPECT_EQ(autopsy.classification, "key-mismatch");
  EXPECT_EQ(autopsy.cause, isa::TrapCause::kRoLoadPageFault);
  EXPECT_EQ(autopsy.signal, kernel::kSigsegv);
  EXPECT_TRUE(autopsy.roload_violation);
  EXPECT_EQ(autopsy.fault_pc, run.result.fault_pc);
  EXPECT_EQ(autopsy.fault_va, run.result.fault_addr);

  // The two halves of the failed check, recovered independently: the
  // instruction's static key and the PTE key of the page it hit.
  EXPECT_TRUE(autopsy.inst_decoded);
  EXPECT_TRUE(autopsy.inst_is_roload);
  EXPECT_EQ(autopsy.inst_key, 5u);
  EXPECT_EQ(autopsy.pte_key, 9u);
  EXPECT_NE(autopsy.inst_key, autopsy.pte_key);
  EXPECT_TRUE(autopsy.page_mapped);
  EXPECT_TRUE(autopsy.page_readable);
  EXPECT_FALSE(autopsy.page_writable);

  // Image attribution: where the access landed vs. where key 5 says it
  // should have resolved.
  EXPECT_EQ(autopsy.va_section, ".rodata.key.9");
  EXPECT_EQ(autopsy.expected_section, ".rodata.key.5");
  EXPECT_EQ(autopsy.va_symbol, "secret");
  EXPECT_NE(autopsy.fault_symbol.find("_start"), std::string::npos);

  ASSERT_FALSE(autopsy.backtrace.empty());
  EXPECT_EQ(autopsy.backtrace.front(), autopsy.fault_pc);
  // Register snapshot: t0 (x5) still holds the target address.
  EXPECT_EQ(autopsy.regs[5], autopsy.fault_va);

  EXPECT_EQ(run.system->trace().counters().Value("audit.autopsies"), 1u);
}

TEST(AuditAutopsyTest, WritablePageClassified) {
  const testing::GuestRun run = testing::RunGuest(kWritablePageSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  const audit::Auditor* auditor = run.system->audit();
  ASSERT_NE(auditor, nullptr);
  ASSERT_EQ(auditor->autopsies().size(), 1u);

  const audit::Autopsy& autopsy = auditor->autopsies().front();
  EXPECT_EQ(autopsy.classification, "writable-page");
  EXPECT_TRUE(autopsy.page_mapped);
  EXPECT_TRUE(autopsy.page_writable);
  EXPECT_EQ(autopsy.inst_key, 9u);
  EXPECT_EQ(autopsy.va_section, ".data");
  EXPECT_EQ(autopsy.expected_section, ".rodata.key.9");
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(AuditExportTest, JsonCarriesSchemaCensusAndAutopsy) {
  const testing::GuestRun run = testing::RunGuest(kKeyMismatchSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  const std::string json = audit::ExportAuditJson(*run.system->audit());
  EXPECT_NE(json.find("\"schema\": \"roload.audit.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"classification\": \"key-mismatch\""),
            std::string::npos);
  EXPECT_NE(json.find("\"expected_section\": \".rodata.key.5\""),
            std::string::npos);
  EXPECT_NE(json.find("\"per_key\""), std::string::npos);
  EXPECT_NE(json.find("\"backtrace\""), std::string::npos);
}

TEST(AuditExportTest, TextReportNamesTheEvidence) {
  const testing::GuestRun run = testing::RunGuest(kKeyMismatchSource,
                                                 AuditConfig());
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  const std::string text = audit::ExportAuditText(*run.system->audit());
  EXPECT_NE(text.find("ROLoad fault autopsy"), std::string::npos);
  EXPECT_NE(text.find("key-mismatch"), std::string::npos);
  EXPECT_NE(text.find("dispatch census"), std::string::npos);
  EXPECT_NE(text.find("(key 5)"), std::string::npos);
}

TEST(AuditExportTest, ExportIsDeterministicAcrossRuns) {
  const testing::GuestRun a = testing::RunGuest(kCensusSource, AuditConfig());
  const testing::GuestRun b = testing::RunGuest(kCensusSource, AuditConfig());
  EXPECT_EQ(audit::ExportAuditJson(*a.system->audit()),
            audit::ExportAuditJson(*b.system->audit()));
}

// ---------------------------------------------------------------------------
// The observation-only guarantee: auditing changes nothing the guest can
// observe — same exit, same instruction/cycle counts, same registers.

TEST(AuditDifferentialTest, AuditingIsBitIdenticalToDisabled) {
  for (const char* source : {kCensusSource, kKeyMismatchSource}) {
    const testing::GuestRun plain = testing::RunGuest(source);
    const testing::GuestRun audited = testing::RunGuest(source,
                                                        AuditConfig());
    EXPECT_EQ(audited.result.kind, plain.result.kind);
    EXPECT_EQ(audited.result.exit_code, plain.result.exit_code);
    EXPECT_EQ(audited.result.signal, plain.result.signal);
    EXPECT_EQ(audited.result.instructions, plain.result.instructions);
    EXPECT_EQ(audited.result.cycles, plain.result.cycles);
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
      EXPECT_EQ(audited.system->cpu().reg(r), plain.system->cpu().reg(r))
          << "x" << r;
    }
    EXPECT_EQ(audited.system->cpu().pc(), plain.system->cpu().pc());
  }
}

// ---------------------------------------------------------------------------
// Attack-harness forensics: every ROLoad-blocked attack must come with an
// autopsy whose keys disagree in exactly the way the sabotage predicts.

TEST(AuditAttackTest, VtableInjectionAutopsyShowsWritablePage) {
  auto run = sec::RunAttack(sec::AttackKind::kVtableInjection,
                            core::Defense::kVCall);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outcome, sec::AttackOutcome::kBlocked);
  ASSERT_TRUE(run->has_autopsy);
  EXPECT_TRUE(run->roload_violation);
  // The fake vtable lives in the attacker's writable buffer: key 0,
  // writable — both halves of the check refuse it.
  EXPECT_NE(run->inst_key, run->pte_key);
  EXPECT_EQ(run->pte_key, 0u);
  EXPECT_TRUE(run->page_writable);
  EXPECT_EQ(run->classification.rfind("caught:writable-page", 0), 0u)
      << run->classification;
}

TEST(AuditAttackTest, FnPtrHijackAutopsyShowsKeyEvidence) {
  auto run = sec::RunAttack(sec::AttackKind::kFnPtrCorruptToEvil,
                            core::Defense::kICall);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outcome, sec::AttackOutcome::kBlocked);
  ASSERT_TRUE(run->has_autopsy);
  // The hijacked dispatch tried to ld.ro through the raw code address of
  // `evil` — which lives outside every keyed allowlist section, so the
  // autopsy's keys disagree exactly as the sabotage predicts. (Which
  // hardware check trips first depends on the address: a non-8-aligned
  // code address faults on alignment before the key comparison; either
  // way the dispatch is dead and the evidence is captured.)
  EXPECT_NE(run->inst_key, run->pte_key);
  EXPECT_NE(run->inst_key, 0u);
  EXPECT_EQ(run->pte_key, 0u);
  EXPECT_EQ(run->classification.rfind("caught:", 0), 0u)
      << run->classification;
}

TEST(AuditAttackTest, CfiAbortBlocksWithoutAutopsy) {
  auto run = sec::RunAttack(sec::AttackKind::kFnPtrCorruptToEvil,
                            core::Defense::kClassicCfi);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outcome, sec::AttackOutcome::kBlocked);
  // Software CFI aborts via exit(134): no fault, no autopsy.
  EXPECT_FALSE(run->has_autopsy);
  EXPECT_EQ(run->classification, "caught:cfi-abort");
}

TEST(AuditAttackTest, UndefendedHijackIsClassifiedMissed) {
  auto run = sec::RunAttack(sec::AttackKind::kFnPtrCorruptToEvil,
                            core::Defense::kNone);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->outcome, sec::AttackOutcome::kHijacked);
  EXPECT_EQ(run->classification, "missed:hijacked");
  EXPECT_FALSE(run->counters.empty());
}

}  // namespace
}  // namespace roload
