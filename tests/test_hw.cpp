// Hardware-model tests: netlist evaluation semantics, functional
// equivalence between the gate-level ROLoad check and the simulator's
// boolean function (exhaustive for narrow keys, randomized for 10-bit),
// the decode-delta netlist against the real instruction encoder, mapper
// invariants, and the Table III reproduction bounds.
#include <gtest/gtest.h>

#include "hw/mapper.h"
#include "hw/netlist.h"
#include "hw/tlb_datapath.h"
#include "isa/encoding.h"
#include "support/rng.h"
#include "tlb/tlb.h"

namespace roload::hw {
namespace {

TEST(NetlistTest, GateTruthTables) {
  Netlist nl;
  const Signal a = nl.AddInput("a");
  const Signal b = nl.AddInput("b");
  nl.AddOutput("and", nl.And(a, b));
  nl.AddOutput("or", nl.Or(a, b));
  nl.AddOutput("xor", nl.Xor(a, b));
  nl.AddOutput("xnor", nl.Xnor(a, b));
  nl.AddOutput("nota", nl.Not(a));
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      const auto out = nl.Evaluate({va, vb});
      EXPECT_EQ(out[0], va && vb);
      EXPECT_EQ(out[1], va || vb);
      EXPECT_EQ(out[2], va != vb);
      EXPECT_EQ(out[3], va == vb);
      EXPECT_EQ(out[4], !va);
    }
  }
}

TEST(NetlistTest, MuxSemantics) {
  Netlist nl;
  const Signal sel = nl.AddInput("sel");
  const Signal a = nl.AddInput("a");
  const Signal b = nl.AddInput("b");
  nl.AddOutput("mux", nl.Mux(sel, a, b));
  EXPECT_FALSE(nl.Evaluate({false, false, true})[0]);  // sel=0 -> a
  EXPECT_TRUE(nl.Evaluate({true, false, true})[0]);    // sel=1 -> b
}

TEST(NetlistTest, ReductionsAndEquality) {
  Netlist nl;
  auto bus_a = InputBus(&nl, "a", 5);
  auto bus_b = InputBus(&nl, "b", 5);
  nl.AddOutput("and", nl.AndReduce(bus_a));
  nl.AddOutput("or", nl.OrReduce(bus_a));
  nl.AddOutput("eq", nl.Equal(bus_a, bus_b));
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> inputs(10);
    bool all = true, any = false, eq = true;
    for (int i = 0; i < 5; ++i) {
      inputs[i] = rng.NextPercent(50);
      inputs[5 + i] = rng.NextPercent(50);
      all = all && inputs[i];
      any = any || inputs[i];
      eq = eq && (inputs[i] == inputs[5 + i]);
    }
    const auto out = nl.Evaluate(inputs);
    EXPECT_EQ(out[0], all);
    EXPECT_EQ(out[1], any);
    EXPECT_EQ(out[2], eq);
  }
}

TEST(NetlistTest, FlipFlopStateAndNextState) {
  // A toggle flip-flop: d = !q.
  Netlist nl;
  const Signal q = nl.AddFlipFlop("q");
  nl.BindFlipFlop(q, nl.Not(q));
  nl.AddOutput("q", q);
  std::vector<bool> state = {false};
  EXPECT_FALSE(nl.Evaluate({}, state)[0]);
  state = nl.NextState({}, state);
  EXPECT_TRUE(state[0]);
  state = nl.NextState({}, state);
  EXPECT_FALSE(state[0]);
}

// ---------------------------------------------------------------------------
// Functional equivalence: gate-level ROLoad check vs the simulator.
TEST(EquivalenceTest, RoLoadCheckExhaustive4Bit) {
  const Netlist nl = BuildRoLoadCheckNetlist(4);
  for (unsigned flags = 0; flags < 8; ++flags) {
    for (unsigned page_key = 0; page_key < 16; ++page_key) {
      for (unsigned inst_key = 0; inst_key < 16; ++inst_key) {
        const bool readable = flags & 1;
        const bool writable = flags & 2;
        const bool user = flags & 4;
        std::vector<bool> inputs = {readable, writable, user};
        for (int b = 0; b < 4; ++b) inputs.push_back((page_key >> b) & 1);
        for (int b = 0; b < 4; ++b) inputs.push_back((inst_key >> b) & 1);
        const bool gate_allow = nl.Evaluate(inputs)[0];
        const bool model_allow =
            user && tlb::RoLoadCheck(readable, writable, page_key, inst_key);
        EXPECT_EQ(gate_allow, model_allow)
            << "r=" << readable << " w=" << writable << " u=" << user
            << " pk=" << page_key << " ik=" << inst_key;
      }
    }
  }
}

TEST(EquivalenceTest, RoLoadCheckRandom10Bit) {
  const Netlist nl = BuildRoLoadCheckNetlist(10);
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    const bool readable = rng.NextPercent(50);
    const bool writable = rng.NextPercent(50);
    const bool user = rng.NextPercent(80);
    const auto page_key = static_cast<std::uint32_t>(rng.NextBelow(1024));
    const auto inst_key = rng.NextPercent(40)
                              ? page_key
                              : static_cast<std::uint32_t>(rng.NextBelow(1024));
    std::vector<bool> inputs = {readable, writable, user};
    for (int b = 0; b < 10; ++b) inputs.push_back((page_key >> b) & 1);
    for (int b = 0; b < 10; ++b) inputs.push_back((inst_key >> b) & 1);
    EXPECT_EQ(nl.Evaluate(inputs)[0],
              user && tlb::RoLoadCheck(readable, writable, page_key,
                                       inst_key));
  }
}

TEST(EquivalenceTest, DecodeDeltaRecognizesRealEncodings) {
  const Netlist nl = BuildRoLoadDecodeDelta();
  auto feed = [&nl](std::uint32_t word) -> bool {
    std::vector<bool> inputs;
    for (int b = 0; b < 32; ++b) inputs.push_back((word >> b) & 1);
    for (int b = 0; b < 10; ++b) inputs.push_back(false);  // pte_key bus
    // Explicit bool return: vector<bool>::operator[] on the temporary
    // yields a proxy that must not outlive the expression.
    return nl.Evaluate(inputs)[0];  // is_roload output
  };
  // Real ld.ro-family encodings must be recognized.
  for (isa::Opcode op : {isa::Opcode::kLbRo, isa::Opcode::kLhRo,
                         isa::Opcode::kLwRo, isa::Opcode::kLdRo}) {
    isa::Instruction inst;
    inst.op = op;
    inst.rd = 10;
    inst.rs1 = 11;
    inst.key = 513;
    EXPECT_TRUE(feed(isa::Encode(inst))) << isa::OpcodeName(op);
  }
  // c.ld.ro too.
  isa::Instruction compressed;
  compressed.op = isa::Opcode::kCLdRo;
  compressed.rd = 9;
  compressed.rs1 = 10;
  compressed.key = 21;
  compressed.length = 2;
  EXPECT_TRUE(feed(isa::Encode(compressed)));
  // Ordinary instructions must not trip the decoder.
  isa::Instruction add;
  add.op = isa::Opcode::kAdd;
  add.rd = 1;
  add.rs1 = 2;
  add.rs2 = 3;
  EXPECT_FALSE(feed(isa::Encode(add)));
  isa::Instruction ld;
  ld.op = isa::Opcode::kLd;
  ld.rd = 1;
  ld.rs1 = 2;
  ld.imm = 8;
  EXPECT_FALSE(feed(isa::Encode(ld)));
}

// ---------------------------------------------------------------------------
// Mapper invariants.
TEST(MapperTest, LutCountPositiveAndBounded) {
  TlbDatapathConfig config;
  const MapResult result = MapNetlist(BuildTlbDatapath(config));
  EXPECT_GT(result.luts, 100u);
  EXPECT_LT(result.luts, 20000u);
  EXPECT_GT(result.flip_flops, 1000u);  // 32 entries x (27+28+8+1) bits
}

TEST(MapperTest, RoLoadVariantCostsMoreOfEverything) {
  TlbDatapathConfig base;
  TlbDatapathConfig ro;
  ro.with_roload = true;
  const MapResult base_map = MapNetlist(BuildTlbDatapath(base));
  const MapResult ro_map = MapNetlist(BuildTlbDatapath(ro));
  EXPECT_GT(ro_map.luts, base_map.luts);
  // Key storage: exactly 32 x 10 extra flip-flops in the datapath.
  EXPECT_EQ(ro_map.flip_flops, base_map.flip_flops + 320);
}

TEST(MapperTest, KeyWidthScalesFfsLinearly) {
  TlbDatapathConfig narrow;
  narrow.with_roload = true;
  narrow.key_bits = 4;
  TlbDatapathConfig wide;
  wide.with_roload = true;
  wide.key_bits = 8;
  const MapResult narrow_map = MapNetlist(BuildTlbDatapath(narrow));
  const MapResult wide_map = MapNetlist(BuildTlbDatapath(wide));
  EXPECT_EQ(wide_map.flip_flops - narrow_map.flip_flops, 32u * 4u);
}

TEST(MapperTest, SerialCheckIsDeeperLocally) {
  MapperConfig local;
  local.core_floor_levels = 0;
  TlbDatapathConfig parallel;
  parallel.with_roload = true;
  TlbDatapathConfig serial = parallel;
  serial.serial_check = true;
  const MapResult p = MapNetlist(BuildTlbDatapath(parallel), local);
  const MapResult s = MapNetlist(BuildTlbDatapath(serial), local);
  EXPECT_GT(s.depth_levels, p.depth_levels);
  EXPECT_LT(s.fmax_mhz, p.fmax_mhz);
}

TEST(MapperTest, LutInputBoundRespected) {
  // A wide AND reduce must split into multiple LUTs for k=6.
  Netlist nl;
  auto bus = InputBus(&nl, "x", 36);
  nl.AddOutput("and", nl.AndReduce(bus));
  MapperConfig config;
  const MapResult result = MapNetlist(nl, config);
  EXPECT_GE(result.luts, 7u);  // 36 inputs / 6 per LUT
}

// ---------------------------------------------------------------------------
// Table III reproduction invariants.
TEST(TableIIITest, MatchesPaperShape) {
  const TableIII table = ComputeTableIII();
  // Calibrated baselines are the paper's exact numbers.
  EXPECT_EQ(table.without_ldro.core_luts, kPaperCoreLuts);
  EXPECT_EQ(table.without_ldro.core_ffs, kPaperCoreFfs);
  EXPECT_EQ(table.without_ldro.system_luts, kPaperSystemLuts);
  EXPECT_EQ(table.without_ldro.system_ffs, kPaperSystemFfs);
  // The paper's headline bound: every increase below 3.32%.
  EXPECT_LT(table.core_lut_increase_percent, 3.32);
  EXPECT_LT(table.core_ff_increase_percent, 3.32);
  EXPECT_LT(table.system_lut_increase_percent, 3.32);
  EXPECT_LT(table.system_ff_increase_percent, 3.32);
  // All strictly positive (the hardware is not free).
  EXPECT_GT(table.core_lut_increase_percent, 0.0);
  EXPECT_GT(table.core_ff_increase_percent, 0.0);
  // FF cost dominates LUT cost in relative terms (key storage), as in the
  // paper (3.32% FF vs 1.44% LUT).
  EXPECT_GT(table.core_ff_increase_percent,
            table.core_lut_increase_percent);
  // System-level percentages are diluted relative to core-level.
  EXPECT_LT(table.system_lut_increase_percent,
            table.core_lut_increase_percent);
  EXPECT_LT(table.system_ff_increase_percent,
            table.core_ff_increase_percent);
  // Fmax essentially unchanged (paper: 126.89 -> 126.57).
  EXPECT_NEAR(table.without_ldro.fmax_mhz, 126.89, 0.5);
  EXPECT_LT(table.with_ldro.fmax_mhz, table.without_ldro.fmax_mhz);
  EXPECT_GT(table.with_ldro.fmax_mhz, 125.0);  // still meets F_target
  EXPECT_GT(table.with_ldro.worst_slack_ns, 0.0);
}

}  // namespace
}  // namespace roload::hw
