// Backend tests: lowering correctness at the assembly-text level — the
// ROLoad machine pass (ld + roload-md -> ld.ro, addi insertion), the
// icall fusion peephole, frame construction, runtime stubs, and the
// compressed-encoding option.
#include <gtest/gtest.h>

#include "backend/codegen.h"
#include "ir/builder.h"

namespace roload::backend {
namespace {

// A function whose only interesting content is one load with metadata.
ir::Module LoadModule(std::int64_t offset, bool with_md,
                      std::uint32_t key = 111) {
  ir::Module module;
  module.name = "t";
  ir::Global g;
  g.name = "g";
  g.read_only = true;
  g.key = with_md ? key : 0;
  g.quads.push_back(ir::GlobalInit{5, ""});
  module.globals.push_back(g);
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.AddrOf("g");
  const int v = b.Load(addr, offset);
  b.Ret(v);
  if (with_md) {
    for (auto& block : module.functions[0].blocks) {
      for (auto& instr : block.instrs) {
        if (instr.kind == ir::InstrKind::kLoad) {
          instr.has_roload_md = true;
          instr.roload_key = key;
        }
      }
    }
  }
  return module;
}

TEST(CodegenTest, PlainLoadKeepsOffsetInline) {
  auto result = Generate(LoadModule(16, /*with_md=*/false));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->assembly.find("ld t1, 16(t0)"), std::string::npos);
  EXPECT_EQ(result->assembly.find("ld.ro"), std::string::npos);
  EXPECT_EQ(result->roload_instructions, 0u);
}

TEST(CodegenTest, MdLoadBecomesLdRo) {
  auto result = Generate(LoadModule(0, /*with_md=*/true));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find("ld.ro t1, (t0), 111"), std::string::npos);
  EXPECT_EQ(result->roload_instructions, 1u);
  EXPECT_EQ(result->extra_addi_for_roload, 0u);
}

TEST(CodegenTest, MdLoadWithOffsetInsertsAddi) {
  auto result = Generate(LoadModule(24, /*with_md=*/true));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find("addi t0, t0, 24"), std::string::npos);
  EXPECT_NE(result->assembly.find("ld.ro t1, (t0), 111"), std::string::npos);
  EXPECT_EQ(result->extra_addi_for_roload, 1u);
}

TEST(CodegenTest, KeyedGlobalLandsInKeyedSection) {
  auto result = Generate(LoadModule(0, /*with_md=*/true, 345));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find(".section .rodata.key.345"),
            std::string::npos);
}

TEST(CodegenTest, RuntimeStubsEmitted) {
  auto result = Generate(LoadModule(0, false));
  ASSERT_TRUE(result.ok());
  for (const char* stub : {"_start:", "__rt_exit:", "__rt_abort:",
                           "__rt_write:", "__rt_mmap:", "__rt_mprotect:"}) {
    EXPECT_NE(result->assembly.find(stub), std::string::npos) << stub;
  }
}

// Fusion: a roload-md load consumed only by the following icall collapses
// into the two-instruction sequence of Listing 3.
ir::Module IcallModule(bool reuse_loaded_value) {
  ir::Module module;
  module.name = "t";
  const int cb = module.InternFnType("i64(i64)");
  ir::Global slot;
  slot.name = "slot";
  slot.quads.push_back(ir::GlobalInit{0, "callee"});
  module.globals.push_back(slot);
  {
    ir::FunctionBuilder b(&module, "callee", "i64(i64)", 1);
    b.Ret(b.Param(0));
  }
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int addr = b.AddrOf("slot");
  const int target = b.Load(addr, 0, 8, ir::Trait::kFnPtrLoad, cb);
  const int arg = b.Const(1);
  const int r = b.ICall(target, {arg}, cb);
  const int out = reuse_loaded_value ? b.Bin(ir::BinOp::kAdd, r, target) : r;
  b.Ret(out);
  // Tag the fn-ptr load like the ICall pass would.
  for (auto& block : module.FindFunction("main")->blocks) {
    for (auto& instr : block.instrs) {
      if (instr.kind == ir::InstrKind::kLoad) {
        instr.has_roload_md = true;
        instr.roload_key = 300;
      }
    }
  }
  module.RecomputeAddressTaken();
  return module;
}

TEST(CodegenTest, FusionAvoidsSpillForSoleConsumer) {
  // Move the load adjacent to the icall: build a module where they are
  // adjacent (no const in between).
  ir::Module module;
  const int cb = module.InternFnType("i64(i64)");
  ir::Global slot;
  slot.name = "slot";
  slot.quads.push_back(ir::GlobalInit{0, "callee"});
  module.globals.push_back(slot);
  {
    ir::FunctionBuilder b(&module, "callee", "i64(i64)", 1);
    b.Ret(b.Param(0));
  }
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int arg = b.Const(1);
  const int addr = b.AddrOf("slot");
  const int target = b.Load(addr, 0, 8, ir::Trait::kFnPtrLoad, cb);
  const int r = b.ICall(target, {arg}, cb);
  b.Ret(r);
  for (auto& block : module.FindFunction("main")->blocks) {
    for (auto& instr : block.instrs) {
      if (instr.kind == ir::InstrKind::kLoad) {
        instr.has_roload_md = true;
        instr.roload_key = 300;
      }
    }
  }
  module.RecomputeAddressTaken();
  auto result = Generate(module);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find("ld.ro t2, (t2), 300"), std::string::npos)
      << result->assembly;
}

TEST(CodegenTest, NoFusionWhenValueReusedElsewhere) {
  auto result = Generate(IcallModule(/*reuse_loaded_value=*/true));
  ASSERT_TRUE(result.ok());
  // Falls back to the generic spill path: ld.ro lands in t1.
  EXPECT_NE(result->assembly.find("ld.ro t1, (t0), 300"), std::string::npos)
      << result->assembly;
}

TEST(CodegenTest, CompressedRoLoadOption) {
  CodegenOptions options;
  options.use_compressed_roload = true;
  auto result = Generate(LoadModule(0, /*with_md=*/true, /*key=*/7),
                         options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find("c.ld.ro a5, (s1), 7"), std::string::npos);
  // Keys above 31 cannot use the compressed form.
  auto wide = Generate(LoadModule(0, true, 300), options);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->assembly.find("c.ld.ro"), std::string::npos);
  EXPECT_NE(wide->assembly.find("ld.ro"), std::string::npos);
}

TEST(CodegenTest, CfiLabelEmittedBeforePrologue) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  b.Ret(b.Const(0));
  ir::Instr label;
  label.kind = ir::InstrKind::kCfiLabel;
  label.imm = 0x105;
  auto& entry = module.functions[0].blocks[0].instrs;
  entry.insert(entry.begin(), label);
  auto result = Generate(module);
  ASSERT_TRUE(result.ok());
  const std::size_t label_pos = result->assembly.find("lui zero, 0x105");
  const std::size_t prologue_pos = result->assembly.find("addi sp, sp, -");
  ASSERT_NE(label_pos, std::string::npos);
  ASSERT_NE(prologue_pos, std::string::npos);
  EXPECT_LT(label_pos, prologue_pos);
  EXPECT_EQ(result->cfi_id_words, 1u);
}

TEST(CodegenTest, RejectsUnverifiableModule) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  b.Br("nowhere");
  EXPECT_FALSE(Generate(module).ok());
}

TEST(CodegenTest, FrameTooLargeIsError) {
  ir::Module module;
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  int v = b.Const(0);
  for (int i = 0; i < 300; ++i) v = b.BinImm(ir::BinOp::kAdd, v, 1);
  b.Ret(v);
  auto result = Generate(module);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("frame"), std::string::npos);
}

TEST(CodegenTest, CallArgumentsLoadIntoArgRegisters) {
  ir::Module module;
  {
    ir::FunctionBuilder b(&module, "f", "i64(i64,i64,i64)", 3);
    b.Ret(b.Param(2));
  }
  ir::FunctionBuilder b(&module, "main", "i64()", 0);
  const int a = b.Const(1);
  const int c = b.Const(2);
  const int d = b.Const(3);
  const int r = b.Call("f", {a, c, d});
  b.Ret(r);
  auto result = Generate(module);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assembly.find("ld a0, "), std::string::npos);
  EXPECT_NE(result->assembly.find("ld a1, "), std::string::npos);
  EXPECT_NE(result->assembly.find("ld a2, "), std::string::npos);
  EXPECT_NE(result->assembly.find("call f"), std::string::npos);
}

}  // namespace
}  // namespace roload::backend
