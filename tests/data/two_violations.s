# Two distinct violations in one image: the first ld.ro names a mapped
# key but resolves to the wrong keyed frame (rule 23); the second names
# a key no section carries (rule 22). rverify must exit 22 (the
# smallest rule id) while printing BOTH RV022 and RV023 lines — the
# multi-violation reporting contract.
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  la t2, secret
  ld.ro t3, (t2), 999
  li a7, 93
  ecall
.section .rodata.key.5
other:
  .quad 1
.section .rodata.key.6
secret:
  .quad 2
