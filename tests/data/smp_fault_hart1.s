# SMP exit-code-contract fixture: hart 0 exits cleanly (code 0) while
# hart 1 trips a runtime ROLoad key mismatch (its ld.ro names key 5, but
# `secret` lives on the key-9 page). The kill on hart 1 halts the whole
# machine and wins the result merge, so `rrun --harts 2` must exit 99 —
# the contract holds whichever hart the violation lands on.
.section .text
_start:
  bnez a0, hart1
  li a0, 0
  li a7, 93
  ecall
hart1:
  la t0, secret
  ld.ro t1, (t0), 5
  li a0, 0
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
.section .rodata.key.5
legit:
  .quad 4321
