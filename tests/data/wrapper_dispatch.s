# Wrapper-dispatch fixture: the ld.ro lives in `get_handler`, the jalr
# in `_start`. Intraprocedurally the call clobbers a0 and the dispatch
# is unprovable; the interprocedural verifier's summary for
# `get_handler` (returns a0 = RoLoaded(key 9), frame-safe) proves it.
# `rverify --policy icall` must exit 0 with 1/1 dispatches proven.
.section .text
_start:
  addi sp, sp, -16
  call get_handler
  mv t2, a0
  jalr ra, 0(t2)
  addi sp, sp, 16
  li a0, 0
  li a7, 93
  ecall
get_handler:
  la t0, table
  ld.ro a0, (t0), 9
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
