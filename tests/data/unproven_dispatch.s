# rverify negative fixture: the dispatch target is a plain constant,
# never loaded through ld.ro. Under the default policy the universal
# rules all pass (exit 0); under --policy icall the dispatch proof
# fails -- rule 24 (bin-unproven-dispatch).
.section .text
_start:
  la t2, fn
  jalr ra, 0(t2)
  li a0, 0
  li a7, 93
  ecall

fn:
  ret
