# rverify negative fixture: the ld.ro names key 999 but no read-only
# section is mapped with that key -- rule 22 (bin-key-unmapped).
# The base address is laundered through a plain load so it is not
# statically resolvable (keeping rule 23 quiet: this fixture must exit
# with exactly 22).
.section .text
_start:
  la t0, cell
  ld t0, 0(t0)
  ld.ro t1, (t0), 999
  li a7, 93
  ecall

.section .rodata
cell:
  .quad 0

.section .rodata.key.7
allow:
  .quad 1
