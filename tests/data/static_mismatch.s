# rverify negative fixture: both keyed frames exist (so rule 22 stays
# quiet) but the statically-resolvable ld.ro target `secret` lives in
# the key-6 frame while the instruction names key 5 -- rule 23
# (bin-static-target-mismatch). Must exit with exactly 23.
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  li a7, 93
  ecall

.section .rodata.key.5
other:
  .quad 1

.section .rodata.key.6
secret:
  .quad 2
