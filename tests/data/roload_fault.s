# Trips a runtime ROLoad pointee-integrity violation: the ld.ro names
# key 5, but `secret` lives on the key-9 page (the image also carries a
# legitimate key-5 section, so the fault is a pure runtime key mismatch).
# Used by the rrun exit-code-contract tests: a roload-aware kernel kills
# the guest with the ROLoad-classified SIGSEGV (rrun exit 99); a
# roload-unaware kernel sees a plain SIGSEGV (rrun exit 139).
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  li a0, 0
  li a7, 93
  ecall
.section .rodata.key.9
secret:
  .quad 1234
.section .rodata.key.5
legit:
  .quad 4321
