// src/smp tests: the single-hart bit-identity contract (an SMP machine
// with harts == 1 IS the legacy System, cycle-for-cycle and counter-for-
// counter), the TLB-shootdown race (a cross-hart re-key must never leave
// a stale keyed translation live), RPC-server scaling, determinism of the
// timing-interleaved scheduler, and SMP audit attribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "asmtool/assembler.h"
#include "core/toolchain.h"
#include "sec/attack.h"
#include "smp/machine.h"
#include "workloads/spec_like.h"

namespace roload::smp {
namespace {

core::BuildResult BuildWorkload(const workloads::WorkloadSpec& spec,
                                core::Defense defense) {
  core::BuildOptions options;
  options.defense = defense;
  auto build = core::Build(workloads::Generate(spec), options);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(*build);
}

// --- Bit identity: harts == 1 is exactly the legacy System. ------------

class SmpBitIdentityTest : public ::testing::TestWithParam<core::Defense> {};

TEST_P(SmpBitIdentityTest, SpecLikeWorkloadMatchesLegacyRunExactly) {
  const auto build =
      BuildWorkload(workloads::SpecCppSubset(0.05)[0], GetParam());
  const auto legacy =
      core::RunBuild(build, core::SystemVariant::kFullRoload);
  const auto smp =
      RunBuildSmp(build, core::SystemVariant::kFullRoload, /*harts=*/1);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_TRUE(smp.ok()) << smp.status().ToString();
  EXPECT_TRUE(smp->completed);
  EXPECT_EQ(legacy->cycles, smp->cycles);
  EXPECT_EQ(legacy->instructions, smp->instructions);
  EXPECT_EQ(legacy->exit_code, smp->exit_code);
  EXPECT_EQ(legacy->roload_loads, smp->roload_loads);
  EXPECT_EQ(legacy->peak_mem_kib, smp->peak_mem_kib);
  // Every counter, by name and value — the strongest form of the claim.
  EXPECT_EQ(legacy->counters, smp->counters);
}

TEST_P(SmpBitIdentityTest, RpcServerWorkloadMatchesLegacyRunExactly) {
  // The RPC main receives (0, 0) from the legacy loader and degrades to
  // serving every request on hart 0; that run must be bit-identical too.
  const auto build =
      BuildWorkload(workloads::RpcServerWorkload(200), GetParam());
  const auto legacy =
      core::RunBuild(build, core::SystemVariant::kFullRoload);
  const auto smp =
      RunBuildSmp(build, core::SystemVariant::kFullRoload, /*harts=*/1);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_TRUE(smp.ok()) << smp.status().ToString();
  EXPECT_TRUE(smp->completed);
  EXPECT_EQ(legacy->cycles, smp->cycles);
  EXPECT_EQ(legacy->instructions, smp->instructions);
  EXPECT_EQ(legacy->exit_code, smp->exit_code);
  EXPECT_EQ(legacy->counters, smp->counters);
}

INSTANTIATE_TEST_SUITE_P(Defenses, SmpBitIdentityTest,
                         ::testing::Values(core::Defense::kNone,
                                           core::Defense::kVCall,
                                           core::Defense::kICall),
                         [](const auto& info) {
                           return std::string(
                               core::DefenseName(info.param));
                         });

// --- RPC-server scaling and scheduler determinism. ---------------------

TEST(SmpRpcScalingTest, MoreHartsReduceWallClockCycles) {
  const auto build =
      BuildWorkload(workloads::RpcServerWorkload(400), core::Defense::kVCall);
  const auto one = RunBuildSmp(build, core::SystemVariant::kFullRoload, 1);
  const auto two = RunBuildSmp(build, core::SystemVariant::kFullRoload, 2);
  const auto four = RunBuildSmp(build, core::SystemVariant::kFullRoload, 4);
  ASSERT_TRUE(one.ok() && two.ok() && four.ok());
  EXPECT_TRUE(one->completed);
  EXPECT_TRUE(two->completed);
  EXPECT_TRUE(four->completed);
  // Requests are strided across harts: wall-clock (max cycles over harts)
  // must drop going 1 -> 2, and 4 harts must not be slower than 2.
  EXPECT_LT(two->cycles, one->cycles);
  EXPECT_LE(four->cycles, two->cycles);
  // The merged counters keep the historical names as fleet-wide sums.
  EXPECT_EQ(two->Counter("smp.harts"), 2u);
  EXPECT_GT(two->Counter("cpu.roload_loads"), 0u);
  EXPECT_GT(two->Counter("hart1.cpu.instret"), 0u);
  EXPECT_GT(two->Counter("cache.l2.hit") + two->Counter("cache.l2.miss"),
            0u);
}

TEST(SmpRpcScalingTest, InterleavingIsDeterministic) {
  const auto build =
      BuildWorkload(workloads::RpcServerWorkload(300), core::Defense::kVCall);
  const auto a = RunBuildSmp(build, core::SystemVariant::kFullRoload, 2);
  const auto b = RunBuildSmp(build, core::SystemVariant::kFullRoload, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->cycles, b->cycles);
  EXPECT_EQ(a->instructions, b->instructions);
  EXPECT_EQ(a->exit_code, b->exit_code);
  EXPECT_EQ(a->counters, b->counters);
}

// --- The TLB-shootdown race. -------------------------------------------
//
// Hart 1 warms its dTLB with a key-5 read-only translation; hart 0 then
// re-keys the page to 7 via mprotect and signals. The next ld.ro on hart
// 1 goes through whatever translation its dTLB still holds: with the
// shootdown protocol the entry was remotely flushed, the re-walk sees key
// 7 and the machine kills the guest with a ROLoad violation on hart 1;
// with local-only sfence.vma semantics the stale key-5 entry still
// matches and the attack window stays open (the guest exits 42).
constexpr char kShootdownRaceGuest[] = R"(
.section .text
_start:
  bnez a0, hart1

hart0:
  la t0, sync
hart0_spin:
  ld t1, 0(t0)
  beqz t1, hart0_spin
  la a0, page
  li a1, 4096
  li a2, 0x70001        # PROT_READ | key 7 << 16
  li a7, 226
  ecall
  la t0, sync
  li t1, 1
  sd t1, 8(t0)
  li a0, 0
  li a7, 93
  ecall

hart1:
  la t0, page
  ld.ro t2, (t0), 5
  la t1, sync
  li t3, 1
  sd t3, 0(t1)
hart1_spin:
  ld t3, 8(t1)
  beqz t3, hart1_spin
  ld.ro t2, (t0), 5
  li a0, 42
  li a7, 93
  ecall

.section .data
sync:
  .quad 0
  .quad 0

.section .rodata.key.5
page:
  .quad 77
)";

kernel::RunResult RunRace(Machine* machine) {
  auto image = asmtool::Assemble(kShootdownRaceGuest);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  Status status = machine->Load(*image);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return machine->Run(1 << 22);
}

TEST(TlbShootdownTest, CrossHartRekeyFaultsTheNextKeyedLoad) {
  SmpConfig config;
  config.harts = 2;
  config.quantum = 100;  // tight interleave: the race window is real
  Machine machine(config);
  const kernel::RunResult result = RunRace(&machine);
  ASSERT_EQ(result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(result.roload_violation);
  EXPECT_EQ(result.hart, 1u);
  // The mprotect on hart 0 sent a remote flush that hart 1 received.
  EXPECT_GE(machine.kernel().stats().tlb_shootdowns, 1u);
  EXPECT_GE(machine.kernel().hart_state(1).shootdowns_received, 1u);
  EXPECT_EQ(machine.kernel().hart_state(0).shootdowns_received, 0u);
}

TEST(TlbShootdownTest, LocalOnlyFlushLeavesTheStaleTranslationLive) {
  SmpConfig config;
  config.harts = 2;
  config.quantum = 100;
  config.tlb_shootdown = false;  // the unsound kernel
  Machine machine(config);
  const kernel::RunResult result = RunRace(&machine);
  // The stale key-5 entry still matches on hart 1: the keyed load
  // succeeds against a page that is no longer key 5 — exactly the hole
  // the shootdown protocol closes.
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(result.exit_code, 42);
  EXPECT_FALSE(result.roload_violation);
  EXPECT_EQ(machine.kernel().stats().tlb_shootdowns, 0u);
}

// --- SMP audit attribution. --------------------------------------------

TEST(SmpAuditTest, AutopsyRecordsTheFaultingHart) {
  SmpConfig config;
  config.harts = 2;
  config.quantum = 100;
  config.trace.audit = true;
  Machine machine(config);
  const kernel::RunResult result = RunRace(&machine);
  ASSERT_EQ(result.kind, kernel::ExitKind::kKilled);
  ASSERT_NE(machine.audit(), nullptr);
  ASSERT_EQ(machine.audit()->autopsies().size(), 1u);
  const audit::Autopsy& autopsy = machine.audit()->autopsies()[0];
  EXPECT_EQ(autopsy.hart, 1u);
  EXPECT_TRUE(autopsy.roload_violation);
  EXPECT_EQ(autopsy.classification, "key-mismatch");
  EXPECT_TRUE(autopsy.inst_is_roload);
  EXPECT_EQ(autopsy.inst_key, 5u);
  EXPECT_EQ(autopsy.pte_key, 7u);
}

TEST(SmpAuditTest, CensusKeysSitesByHartAndPc) {
  const auto build =
      BuildWorkload(workloads::RpcServerWorkload(300), core::Defense::kVCall);
  SmpConfig config;
  config.harts = 2;
  config.trace.audit = true;
  Machine machine(config);
  ASSERT_TRUE(machine.Load(build.image).ok());
  const kernel::RunResult result = machine.Run(1ull << 30);
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);
  const audit::DispatchCensus& census = machine.audit()->census();
  // Both harts dispatched through keyed loads; the same pc executed from
  // both harts is two census rows.
  bool saw_hart0 = false, saw_hart1 = false;
  for (const auto& [key, site] : census.sites()) {
    EXPECT_EQ(key, audit::DispatchCensus::SiteKey(site.hart, site.pc));
    saw_hart0 |= site.hart == 0;
    saw_hart1 |= site.hart == 1;
  }
  EXPECT_TRUE(saw_hart0);
  EXPECT_TRUE(saw_hart1);
  // The per-key rollup reports the cross-hart spread.
  bool some_key_on_both_harts = false;
  for (const auto& [key, totals] : census.PerKey()) {
    EXPECT_GE(totals.harts, 1u);
    some_key_on_both_harts |= totals.harts >= 2;
  }
  EXPECT_TRUE(some_key_on_both_harts);
}

// --- Attacks under load. -----------------------------------------------

TEST(SmpAttackTest, VtableInjectionUnderLoadIsCaughtOnADispatchingHart) {
  // The victim serves on all four harts; the corruption lands while every
  // hart is mid-dispatch. VCall still blocks it, and the result names the
  // hart whose keyed vtable load caught it.
  auto result = sec::RunAttackSmp(sec::AttackKind::kVtableInjection,
                                  core::Defense::kVCall, /*harts=*/4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, sec::AttackOutcome::kBlocked);
  EXPECT_TRUE(result->roload_violation);
  EXPECT_TRUE(result->has_autopsy);
  EXPECT_EQ(result->harts, 4u);
  EXPECT_LT(result->hart, 4u);
}

TEST(SmpAttackTest, UndefendedHijackStillWorksUnderLoad) {
  auto result = sec::RunAttackSmp(sec::AttackKind::kFnPtrCorruptToEvil,
                                  core::Defense::kNone, /*harts=*/2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, sec::AttackOutcome::kHijacked);
  EXPECT_EQ(result->harts, 2u);
}

TEST(SmpAttackTest, InjectingFromHart3MatchesHart0Injection) {
  // The arbitrary write lands on shared memory whichever hart's debug port
  // carries it, so the verdict, the catching hart, the autopsy and the
  // whole counter snapshot must be independent of the injecting hart.
  for (const auto& [kind, defense] :
       {std::pair{sec::AttackKind::kVtableInjection, core::Defense::kVCall},
        {sec::AttackKind::kFnPtrCorruptToEvil, core::Defense::kICall},
        {sec::AttackKind::kFnPtrReuseSameType, core::Defense::kICall}}) {
    const auto h0 = sec::RunAttackSmp(kind, defense, /*harts=*/4,
                                      core::SystemVariant::kFullRoload,
                                      /*inject_hart=*/0);
    const auto h3 = sec::RunAttackSmp(kind, defense, /*harts=*/4,
                                      core::SystemVariant::kFullRoload,
                                      /*inject_hart=*/3);
    ASSERT_TRUE(h0.ok()) << h0.status().ToString();
    ASSERT_TRUE(h3.ok()) << h3.status().ToString();
    EXPECT_EQ(h3->inject_hart, 3u);
    EXPECT_EQ(h0->inject_hart, 0u);
    EXPECT_EQ(h0->outcome, h3->outcome);
    EXPECT_EQ(h0->hart, h3->hart);
    EXPECT_EQ(h0->classification, h3->classification);
    EXPECT_EQ(h0->exit_code, h3->exit_code);
    EXPECT_EQ(h0->has_autopsy, h3->has_autopsy);
    EXPECT_EQ(h0->fault_pc, h3->fault_pc);
    EXPECT_EQ(h0->fault_va, h3->fault_va);
    EXPECT_EQ(h0->inst_key, h3->inst_key);
    EXPECT_EQ(h0->pte_key, h3->pte_key);
    EXPECT_EQ(h0->counters, h3->counters);
  }
}

TEST(SmpAttackTest, InjectHartOutOfRangeIsRejected) {
  const auto result = sec::RunAttackSmp(sec::AttackKind::kVtableInjection,
                                        core::Defense::kVCall, /*harts=*/2,
                                        core::SystemVariant::kFullRoload,
                                        /*inject_hart=*/2);
  EXPECT_FALSE(result.ok());
}

TEST(SmpAttackTest, SingleHartOverloadMatchesLegacyRunAttack) {
  const auto legacy = sec::RunAttack(sec::AttackKind::kVtableInjection,
                                     core::Defense::kVCall);
  const auto smp = sec::RunAttackSmp(sec::AttackKind::kVtableInjection,
                                     core::Defense::kVCall, /*harts=*/1);
  ASSERT_TRUE(legacy.ok() && smp.ok());
  EXPECT_EQ(legacy->outcome, smp->outcome);
  EXPECT_EQ(legacy->classification, smp->classification);
  EXPECT_EQ(legacy->fault_pc, smp->fault_pc);
  EXPECT_EQ(legacy->counters, smp->counters);
}

}  // namespace
}  // namespace roload::smp
