// Assembler tests: syntax coverage, pseudo-instruction expansion, section
// attributes (including .rodata.key.<K>), layout/symbol resolution, the
// auto-defined __rodata bounds, and error reporting with line numbers.
#include <gtest/gtest.h>

#include "asmtool/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/registers.h"
#include "mem/phys_memory.h"

namespace roload::asmtool {
namespace {

LinkImage MustAssemble(const std::string& source) {
  auto image = Assemble(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return image.ok() ? *image : LinkImage{};
}

// Decodes the instruction at byte offset `offset` of the .text section.
isa::Instruction DecodeAt(const LinkImage& image, std::uint64_t offset) {
  const Section* text = image.FindSection(".text");
  EXPECT_NE(text, nullptr);
  std::uint32_t word = 0;
  for (unsigned b = 0; b < 4 && offset + b < text->bytes.size(); ++b) {
    word |= static_cast<std::uint32_t>(text->bytes[offset + b]) << (8 * b);
  }
  auto inst = isa::Decode(word);
  EXPECT_TRUE(inst.has_value());
  return inst.value_or(isa::Instruction{});
}

TEST(AssemblerTest, BasicInstructionsEncode) {
  const LinkImage image = MustAssemble(
      ".section .text\n_start:\n  addi a0, a1, -4\n  ld a2, 8(sp)\n"
      "  sd a2, 16(sp)\n");
  const isa::Instruction addi = DecodeAt(image, 0);
  EXPECT_EQ(addi.op, isa::Opcode::kAddi);
  EXPECT_EQ(addi.rd, 10);
  EXPECT_EQ(addi.rs1, 11);
  EXPECT_EQ(addi.imm, -4);
  const isa::Instruction ld = DecodeAt(image, 4);
  EXPECT_EQ(ld.op, isa::Opcode::kLd);
  EXPECT_EQ(ld.imm, 8);
  const isa::Instruction sd = DecodeAt(image, 8);
  EXPECT_EQ(sd.op, isa::Opcode::kSd);
  EXPECT_EQ(sd.imm, 16);
}

TEST(AssemblerTest, RoLoadSyntax) {
  const LinkImage image = MustAssemble(
      ".section .text\n_start:\n  ld.ro a0, (a1), 111\n"
      "  lw.ro a2, (a3), 1023\n");
  const isa::Instruction ldro = DecodeAt(image, 0);
  EXPECT_EQ(ldro.op, isa::Opcode::kLdRo);
  EXPECT_EQ(ldro.rd, 10);
  EXPECT_EQ(ldro.rs1, 11);
  EXPECT_EQ(ldro.key, 111u);
  const isa::Instruction lwro = DecodeAt(image, 4);
  EXPECT_EQ(lwro.op, isa::Opcode::kLwRo);
  EXPECT_EQ(lwro.key, 1023u);
}

TEST(AssemblerTest, RoLoadRejectsOffset) {
  auto image = Assemble(".section .text\n_start:\n  ld.ro a0, 8(a1), 1\n");
  EXPECT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("no address offset"),
            std::string::npos);
}

TEST(AssemblerTest, RoLoadRejectsOutOfRangeKey) {
  EXPECT_FALSE(Assemble(".text\n_start:\n  ld.ro a0, (a1), 1024\n").ok());
  EXPECT_FALSE(Assemble(".text\n_start:\n  c.ld.ro a0, (a1), 32\n").ok());
}

TEST(AssemblerTest, CompressedRoLoadIsTwoBytes) {
  const LinkImage image = MustAssemble(
      ".section .text\n_start:\n  c.ld.ro a0, (a1), 7\n  addi a0, a0, 0\n");
  const Section* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  // First parcel compressed (2 bytes), second at offset 2.
  EXPECT_EQ(isa::ParcelLength(static_cast<std::uint16_t>(
                text->bytes[0] | (text->bytes[1] << 8))),
            2u);
  EXPECT_EQ(DecodeAt(image, 2).op, isa::Opcode::kAddi);
}

TEST(AssemblerTest, CompressedRoLoadRejectsNonRvcRegisters) {
  EXPECT_FALSE(Assemble(".text\n_start:\n  c.ld.ro t0, (a1), 7\n").ok());
}

TEST(AssemblerTest, SectionAttributesFollowNames) {
  const LinkImage image = MustAssemble(R"(
.section .text
_start:
  nop
.section .rodata
r1: .quad 1
.section .rodata.key.77
r2: .quad 2
.section .data
d1: .quad 3
)");
  const Section* text = image.FindSection(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->perms.exec);
  EXPECT_FALSE(text->perms.write);
  const Section* rodata = image.FindSection(".rodata");
  ASSERT_NE(rodata, nullptr);
  EXPECT_FALSE(rodata->perms.write);
  EXPECT_EQ(rodata->key, 0u);
  const Section* keyed = image.FindSection(".rodata.key.77");
  ASSERT_NE(keyed, nullptr);
  EXPECT_FALSE(keyed->perms.write);
  EXPECT_EQ(keyed->key, 77u);
  const Section* data = image.FindSection(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->perms.write);
}

TEST(AssemblerTest, SectionsArePageAlignedAndDisjoint) {
  const LinkImage image = MustAssemble(
      ".text\n_start:\n  nop\n.data\nx: .quad 1\n.rodata\ny: .quad 2\n");
  for (const Section& section : image.sections) {
    EXPECT_EQ(section.vaddr % mem::kPageSize, 0u) << section.name;
  }
  for (std::size_t i = 0; i + 1 < image.sections.size(); ++i) {
    EXPECT_GE(image.sections[i + 1].vaddr,
              image.sections[i].vaddr + image.sections[i].size);
  }
}

TEST(AssemblerTest, LaAndBranchRelocations) {
  const LinkImage image = MustAssemble(R"(
.section .text
_start:
  la a0, value
  beq a0, a0, next
next:
  jal ra, next
.section .data
value: .quad 9
)");
  const auto value_addr = image.symbols.at("value");
  const isa::Instruction lui = DecodeAt(image, 0);
  const isa::Instruction addi = DecodeAt(image, 4);
  EXPECT_EQ(lui.op, isa::Opcode::kLui);
  EXPECT_EQ(addi.op, isa::Opcode::kAddi);
  const std::uint64_t materialized =
      static_cast<std::uint64_t>((lui.imm << 12) + addi.imm);
  EXPECT_EQ(materialized, value_addr);
  const isa::Instruction beq = DecodeAt(image, 8);
  EXPECT_EQ(beq.imm, 4);  // next is the following instruction
  const isa::Instruction jal = DecodeAt(image, 12);
  EXPECT_EQ(jal.imm, 0);  // jumps to itself
}

TEST(AssemblerTest, LiExpansions) {
  const LinkImage small = MustAssemble(".text\n_start:\n  li a0, 100\n  nop\n");
  EXPECT_EQ(DecodeAt(small, 0).op, isa::Opcode::kAddi);
  const LinkImage large =
      MustAssemble(".text\n_start:\n  li a0, 0x12345678\n");
  EXPECT_EQ(DecodeAt(large, 0).op, isa::Opcode::kLui);
  EXPECT_EQ(DecodeAt(large, 4).op, isa::Opcode::kAddiw);
  EXPECT_FALSE(Assemble(".text\n_start:\n  li a0, 0x123456789\n").ok());
}

TEST(AssemblerTest, PseudoInstructions) {
  const LinkImage image = MustAssemble(R"(
.text
_start:
  mv a0, a1
  not a2, a3
  neg a4, a5
  seqz a6, a7
  snez t0, t1
  j _start
  ret
  nop
)");
  EXPECT_EQ(DecodeAt(image, 0).op, isa::Opcode::kAddi);
  EXPECT_EQ(DecodeAt(image, 4).op, isa::Opcode::kXori);
  EXPECT_EQ(DecodeAt(image, 4).imm, -1);
  EXPECT_EQ(DecodeAt(image, 8).op, isa::Opcode::kSub);
  EXPECT_EQ(DecodeAt(image, 12).op, isa::Opcode::kSltiu);
  EXPECT_EQ(DecodeAt(image, 16).op, isa::Opcode::kSltu);
  EXPECT_EQ(DecodeAt(image, 20).op, isa::Opcode::kJal);
  EXPECT_EQ(DecodeAt(image, 20).rd, 0);
  const isa::Instruction ret = DecodeAt(image, 24);
  EXPECT_EQ(ret.op, isa::Opcode::kJalr);
  EXPECT_EQ(ret.rs1, isa::kRa);
}

TEST(AssemblerTest, DataDirectives) {
  const LinkImage image = MustAssemble(R"(
.data
bytes: .byte 1, 2, 3
.align 3
quads: .quad 0x1122334455667788, sym
half: .half 0x1234
word: .word -1
z: .zero 5
s: .asciz "hi"
.text
sym:
_start:
  nop
)");
  const Section* data = image.FindSection(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->bytes[0], 1);
  EXPECT_EQ(data->bytes[2], 3);
  const std::uint64_t quads_off = image.symbols.at("quads") - data->vaddr;
  EXPECT_EQ(quads_off % 8, 0u);
  EXPECT_EQ(data->bytes[quads_off], 0x88);
  EXPECT_EQ(data->bytes[quads_off + 7], 0x11);
  // Second quad holds sym's address.
  std::uint64_t sym_value = 0;
  for (int b = 7; b >= 0; --b) {
    sym_value = (sym_value << 8) | data->bytes[quads_off + 8 + b];
  }
  EXPECT_EQ(sym_value, image.symbols.at("sym"));
  const std::uint64_t s_off = image.symbols.at("s") - data->vaddr;
  EXPECT_EQ(data->bytes[s_off], 'h');
  EXPECT_EQ(data->bytes[s_off + 2], 0);  // NUL terminator
}

TEST(AssemblerTest, EntrySymbolSelection) {
  const LinkImage image =
      MustAssemble(".text\nfoo:\n  nop\n_start:\n  nop\n");
  EXPECT_EQ(image.entry, image.symbols.at("_start"));
  AssemblerOptions options;
  options.entry_symbol = "foo";
  auto custom = Assemble(".text\nfoo:\n  nop\n", options);
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->entry, custom->symbols.at("foo"));
}

TEST(AssemblerTest, RodataBoundsSymbols) {
  const LinkImage image = MustAssemble(R"(
.text
_start:
  nop
.rodata
a: .quad 1
.section .rodata.key.5
b: .quad 2
)");
  const std::uint64_t start = image.symbols.at("__rodata_start");
  const std::uint64_t end = image.symbols.at("__rodata_end");
  EXPECT_LT(start, end);
  EXPECT_LE(start, image.symbols.at("a"));
  EXPECT_GT(end, image.symbols.at("b"));
  // All keyed/plain rodata falls inside; text does not.
  EXPECT_TRUE(image.symbols.at("_start") < start ||
              image.symbols.at("_start") >= end);
}

TEST(AssemblerErrorTest, ReportsLineNumbers) {
  auto bad = Assemble("  nop\n  bogus a0, a1\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerErrorTest, CommonMistakes) {
  EXPECT_FALSE(Assemble(".text\nx:\nx:\n  nop\n").ok());   // duplicate label
  EXPECT_FALSE(Assemble(".text\n_start:\n  addi a0, a1\n").ok());
  EXPECT_FALSE(Assemble(".text\n_start:\n  addi q0, a1, 0\n").ok());
  EXPECT_FALSE(Assemble(".text\n_start:\n  j nowhere\n").ok());
  EXPECT_FALSE(Assemble(".text\n_start:\n  .bogusdirective 1\n").ok());
  EXPECT_FALSE(Assemble(".data\nx: .quad undefined_sym\n").ok());
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const LinkImage image = MustAssemble(
      "# leading comment\n\n.text\n_start:  # trailing\n  nop # mid\n");
  EXPECT_EQ(DecodeAt(image, 0).op, isa::Opcode::kAddi);
}

TEST(ImageTest, MappedAndCodeBytes) {
  const LinkImage image = MustAssemble(
      ".text\n_start:\n  nop\n.data\nx: .zero 5000\n");
  // text rounds to 1 page; data (5000B) rounds to 2 pages.
  EXPECT_EQ(image.MappedBytes(), 3 * mem::kPageSize);
  EXPECT_EQ(image.CodeBytes(), 4u);
}

TEST(ImageTest, AttrsForSectionNamePolicy) {
  EXPECT_TRUE(AttrsForSectionName(".text.hot").perms.exec);
  EXPECT_EQ(AttrsForSectionName(".rodata.key.123").key, 123u);
  EXPECT_FALSE(AttrsForSectionName(".rodata.key.123").perms.write);
  EXPECT_EQ(AttrsForSectionName(".rodata").key, 0u);
  EXPECT_TRUE(AttrsForSectionName(".bss").perms.write);
  EXPECT_TRUE(AttrsForSectionName("unknown").perms.write);
}

}  // namespace
}  // namespace roload::asmtool

namespace roload::asmtool {
namespace {

TEST(AssemblerTest, AscizEscapeSequences) {
  auto image = Assemble(".data\ns: .asciz \"a\\n\\t\\\\b\"\n.text\n_start:\n  nop\n");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const Section* data = image->FindSection(".data");
  ASSERT_NE(data, nullptr);
  const std::string expected = "a\n\t\\b";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(data->bytes[i], static_cast<std::uint8_t>(expected[i])) << i;
  }
  EXPECT_EQ(data->bytes[expected.size()], 0);  // NUL
  EXPECT_FALSE(Assemble(".data\ns: .asciz \"bad\\q\"\n").ok());
}

}  // namespace
}  // namespace roload::asmtool
