// ISA tests: encode/decode round trips for every opcode (property-style
// over randomized operands), field packing of the ROLoad encodings, parcel
// length rules, and illegal-encoding rejection.
#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/registers.h"
#include "support/bits.h"
#include "support/rng.h"

namespace roload::isa {
namespace {

// All 32-bit-format opcodes (everything except the compressed c.ld.ro).
const Opcode kWideOpcodes[] = {
    Opcode::kAddi,  Opcode::kSlti,  Opcode::kSltiu, Opcode::kXori,
    Opcode::kOri,   Opcode::kAndi,  Opcode::kSlli,  Opcode::kSrli,
    Opcode::kSrai,  Opcode::kAddiw, Opcode::kSlliw, Opcode::kSrliw,
    Opcode::kSraiw, Opcode::kAdd,   Opcode::kSub,   Opcode::kSll,
    Opcode::kSlt,   Opcode::kSltu,  Opcode::kXor,   Opcode::kSrl,
    Opcode::kSra,   Opcode::kOr,    Opcode::kAnd,   Opcode::kAddw,
    Opcode::kSubw,  Opcode::kSllw,  Opcode::kSrlw,  Opcode::kSraw,
    Opcode::kMul,   Opcode::kMulw,  Opcode::kDiv,   Opcode::kDivu,
    Opcode::kRem,   Opcode::kRemu,  Opcode::kDivw,  Opcode::kRemw,
    Opcode::kLui,   Opcode::kAuipc, Opcode::kLb,    Opcode::kLh,
    Opcode::kLw,    Opcode::kLd,    Opcode::kLbu,   Opcode::kLhu,
    Opcode::kLwu,   Opcode::kSb,    Opcode::kSh,    Opcode::kSw,
    Opcode::kSd,    Opcode::kBeq,   Opcode::kBne,   Opcode::kBlt,
    Opcode::kBge,   Opcode::kBltu,  Opcode::kBgeu,  Opcode::kJal,
    Opcode::kJalr,  Opcode::kEcall, Opcode::kEbreak, Opcode::kFence,
    Opcode::kLbRo,  Opcode::kLhRo,  Opcode::kLwRo,  Opcode::kLdRo,
};

Instruction RandomInstruction(Opcode op, Rng& rng) {
  Instruction inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rng.NextBelow(32));
  inst.rs1 = static_cast<std::uint8_t>(rng.NextBelow(32));
  inst.rs2 = static_cast<std::uint8_t>(rng.NextBelow(32));
  switch (OpcodeFormat(op)) {
    case Format::kI:
    case Format::kILoad:
    case Format::kS:
      inst.imm = rng.NextInRange(-2048, 2047);
      break;
    case Format::kIShift:
      inst.imm = rng.NextInRange(
          0, op == Opcode::kSlliw || op == Opcode::kSrliw ||
                     op == Opcode::kSraiw
                 ? 31
                 : 63);
      break;
    case Format::kB:
      inst.imm = rng.NextInRange(-2048, 2047) * 2;
      break;
    case Format::kU:
      inst.imm = roload::SignExtend(static_cast<std::uint64_t>(rng.NextBelow(1 << 20)),
                            20);
      break;
    case Format::kJ:
      inst.imm = rng.NextInRange(-(1 << 19), (1 << 19) - 1) * 2;
      break;
    case Format::kSystem:
      inst.rd = inst.rs1 = inst.rs2 = 0;
      break;
    case Format::kRoLoad:
      inst.imm = 0;
      inst.key = static_cast<std::uint32_t>(rng.NextBelow(kNumPageKeys));
      break;
    case Format::kCRoLoad:
      break;
    case Format::kR:
      break;
  }
  return inst;
}

class RoundTripTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(RoundTripTest, EncodeDecodeIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const Instruction inst = RandomInstruction(GetParam(), rng);
    const std::uint32_t word = Encode(inst);
    const auto decoded = Decode(word);
    ASSERT_TRUE(decoded.has_value())
        << OpcodeName(GetParam()) << " word=0x" << std::hex << word;
    EXPECT_EQ(decoded->op, inst.op);
    // B and S formats have no rd field (its bits carry immediate parts).
    const Format format = OpcodeFormat(inst.op);
    if (format != Format::kSystem && format != Format::kB &&
        format != Format::kS) {
      EXPECT_EQ(decoded->rd, inst.rd) << OpcodeName(GetParam());
    }
    switch (OpcodeFormat(inst.op)) {
      case Format::kR:
        EXPECT_EQ(decoded->rs1, inst.rs1);
        EXPECT_EQ(decoded->rs2, inst.rs2);
        break;
      case Format::kI:
      case Format::kILoad:
      case Format::kIShift:
        EXPECT_EQ(decoded->rs1, inst.rs1);
        EXPECT_EQ(decoded->imm, inst.imm) << OpcodeName(GetParam());
        break;
      case Format::kS:
      case Format::kB:
        EXPECT_EQ(decoded->rs1, inst.rs1);
        EXPECT_EQ(decoded->rs2, inst.rs2);
        EXPECT_EQ(decoded->imm, inst.imm);
        break;
      case Format::kU:
      case Format::kJ:
        EXPECT_EQ(decoded->imm, inst.imm);
        break;
      case Format::kRoLoad:
        EXPECT_EQ(decoded->rs1, inst.rs1);
        EXPECT_EQ(decoded->key, inst.key);
        EXPECT_EQ(decoded->imm, 0);
        break;
      case Format::kSystem:
      case Format::kCRoLoad:
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWideOpcodes, RoundTripTest,
                         ::testing::ValuesIn(kWideOpcodes),
                         [](const auto& info) {
                           std::string name(OpcodeName(info.param));
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(CompressedRoLoadTest, RoundTripAllKeysAndRegs) {
  for (std::uint8_t rd = 8; rd < 16; ++rd) {
    for (std::uint8_t rs1 = 8; rs1 < 16; ++rs1) {
      for (std::uint32_t key = 0; key < kNumCompressedKeys; ++key) {
        Instruction inst;
        inst.op = Opcode::kCLdRo;
        inst.rd = rd;
        inst.rs1 = rs1;
        inst.key = key;
        inst.length = 2;
        const std::uint32_t word = Encode(inst);
        EXPECT_LT(word, 0x10000u) << "c.ld.ro must be a 16-bit parcel";
        EXPECT_EQ(ParcelLength(static_cast<std::uint16_t>(word)), 2u);
        const auto decoded = Decode(word);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->op, Opcode::kCLdRo);
        EXPECT_EQ(decoded->rd, rd);
        EXPECT_EQ(decoded->rs1, rs1);
        EXPECT_EQ(decoded->key, key);
        EXPECT_EQ(decoded->length, 2u);
      }
    }
  }
}

TEST(ParcelLengthTest, Rules) {
  EXPECT_EQ(ParcelLength(0x0003), 4u);  // bits[1:0]=11 -> 32-bit
  EXPECT_EQ(ParcelLength(0x0000), 2u);
  EXPECT_EQ(ParcelLength(0x0001), 2u);
  EXPECT_EQ(ParcelLength(0xFFFF), 4u);
}

TEST(DecodeTest, RejectsUnknownMajorOpcode) {
  // Major opcode 1010111 (vector space, unimplemented).
  EXPECT_FALSE(Decode(0b1010111).has_value());
}

TEST(DecodeTest, RejectsUnknownCompressed) {
  // Quadrant 0, funct3 000 (c.addi4spn) is unimplemented in this core.
  EXPECT_FALSE(Decode(0x0000).has_value());
}

TEST(DecodeTest, RoLoadReservedFunct3Rejected) {
  // custom-0 with funct3 = 0b111 is not an ld.ro-family instruction.
  const std::uint32_t word = kRoLoadMajorOpcode | (0b111u << 12);
  EXPECT_FALSE(Decode(word).has_value());
}

TEST(DecodeTest, RoLoadKeyFieldPosition) {
  // Key must ride the I-type immediate field (bits 31:20, low 10 used).
  Instruction inst;
  inst.op = Opcode::kLdRo;
  inst.rd = 5;
  inst.rs1 = 6;
  inst.key = 0x2A5;
  const std::uint32_t word = Encode(inst);
  EXPECT_EQ((word >> 20) & 0x3FF, 0x2A5u);
  EXPECT_EQ(word & 0x7F, kRoLoadMajorOpcode);
}

TEST(RegistersTest, NamesRoundTrip) {
  for (unsigned reg = 0; reg < kNumRegs; ++reg) {
    auto parsed = ParseRegName(RegName(reg));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, reg);
  }
}

TEST(RegistersTest, ArchitecturalNamesAndAliases) {
  EXPECT_EQ(ParseRegName("x0").value(), 0u);
  EXPECT_EQ(ParseRegName("x31").value(), 31u);
  EXPECT_EQ(ParseRegName("fp").value(), static_cast<unsigned>(kS0));
  EXPECT_FALSE(ParseRegName("x32").has_value());
  EXPECT_FALSE(ParseRegName("q1").has_value());
}

TEST(DisasmTest, RepresentativeForms) {
  Instruction addi{.op = Opcode::kAddi, .rd = 10, .rs1 = 11, .imm = -4};
  EXPECT_EQ(Disassemble(addi), "addi a0, a1, -4");
  Instruction load{.op = Opcode::kLd, .rd = 10, .rs1 = 2, .imm = 8};
  EXPECT_EQ(Disassemble(load), "ld a0, 8(sp)");
  Instruction store{.op = Opcode::kSd, .rs1 = 2, .rs2 = 10, .imm = 16};
  EXPECT_EQ(Disassemble(store), "sd a0, 16(sp)");
  Instruction ro{.op = Opcode::kLdRo, .rd = 10, .rs1 = 10, .key = 111};
  EXPECT_EQ(Disassemble(ro), "ld.ro a0, (a0), 111");
  Instruction cro{.op = Opcode::kCLdRo, .rd = 15, .rs1 = 9, .key = 7};
  EXPECT_EQ(Disassemble(cro), "c.ld.ro a5, (s1), 7");
}

TEST(OpcodesTest, Classifiers) {
  EXPECT_TRUE(IsLoad(Opcode::kLd));
  EXPECT_TRUE(IsLoad(Opcode::kLdRo));
  EXPECT_TRUE(IsRoLoad(Opcode::kCLdRo));
  EXPECT_FALSE(IsRoLoad(Opcode::kLd));
  EXPECT_TRUE(IsStore(Opcode::kSw));
  EXPECT_FALSE(IsStore(Opcode::kLw));
  EXPECT_TRUE(IsBranch(Opcode::kBgeu));
  EXPECT_FALSE(IsBranch(Opcode::kJal));
  EXPECT_EQ(MemAccessBytes(Opcode::kLbRo), 1u);
  EXPECT_EQ(MemAccessBytes(Opcode::kLdRo), 8u);
  EXPECT_TRUE(LoadIsUnsigned(Opcode::kLwu));
  EXPECT_FALSE(LoadIsUnsigned(Opcode::kLw));
}

TEST(OpcodesTest, NameRoundTrip) {
  for (Opcode op : kWideOpcodes) {
    auto parsed = ParseOpcodeName(OpcodeName(op));
    ASSERT_TRUE(parsed.has_value()) << OpcodeName(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_EQ(ParseOpcodeName("c.ld.ro").value(), Opcode::kCLdRo);
  EXPECT_FALSE(ParseOpcodeName("bogus").has_value());
}

}  // namespace
}  // namespace roload::isa
