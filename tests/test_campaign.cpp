// Campaign runner tests: grid expansion order and naming, strict
// environment / grid parsing, the parallel executor's determinism
// contract (--jobs N bit-identical to --jobs 1), failure isolation, and
// the merged roload.campaign.v1 telemetry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "campaign/env.h"
#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "support/rng.h"
#include "trace/session.h"

namespace roload {
namespace {

campaign::CampaignSpec TinyCppGrid(double scale = 0.05) {
  campaign::CampaignSpec spec;
  spec.name = "test";
  spec.workloads = workloads::SpecCppSubset(scale);
  spec.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kVCall)};
  return spec;
}

// ---------------------------------------------------------------------------
// Spec expansion.

TEST(CampaignSpecTest, ExpandIsWorkloadMajorAndNamed) {
  campaign::CampaignSpec spec = TinyCppGrid();
  spec.variants = {core::SystemVariant::kBaseline,
                   core::SystemVariant::kFullRoload};
  const auto runs = campaign::Expand(spec);
  ASSERT_EQ(runs.size(), spec.workloads.size() * 2 * 2);
  // Workload-major, then config, then variant — the old serial loop order.
  EXPECT_EQ(runs[0].name, spec.workloads[0].name + "/none/baseline");
  EXPECT_EQ(runs[1].name, spec.workloads[0].name + "/none/full");
  EXPECT_EQ(runs[2].name, spec.workloads[0].name + "/VCall/baseline");
  EXPECT_EQ(runs[3].name, spec.workloads[0].name + "/VCall/full");
  EXPECT_EQ(runs[4].name, spec.workloads[1].name + "/none/baseline");
  // Names are unique.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      EXPECT_NE(runs[i].name, runs[j].name);
    }
  }
}

TEST(CampaignSpecTest, ExpandIsDeterministic) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const auto a = campaign::Expand(spec);
  const auto b = campaign::Expand(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].workload.seed, b[i].workload.seed);
  }
}

TEST(CampaignSpecTest, ZeroSeedKeepsWorkloadSeeds) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const auto runs = campaign::Expand(spec);
  // seed == 0 (the default) must leave every workload's own seed intact —
  // this is what keeps the committed figure tables bit-identical.
  for (const auto& run : runs) {
    bool found = false;
    for (const auto& wl : spec.workloads) {
      if (wl.name == run.workload.name) {
        EXPECT_EQ(run.workload.seed, wl.seed);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(CampaignSpecTest, NonzeroSeedDerivesDistinctPerRunSeeds) {
  campaign::CampaignSpec spec = TinyCppGrid();
  spec.seed = 1234;
  const auto runs = campaign::Expand(spec);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].workload.seed, DeriveSeed(1234, i));
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      EXPECT_NE(runs[i].workload.seed, runs[j].workload.seed);
    }
  }
}

TEST(CampaignSpecTest, VariantAndDefenseNamesRoundTrip) {
  for (core::SystemVariant variant :
       {core::SystemVariant::kBaseline, core::SystemVariant::kProcessorModified,
        core::SystemVariant::kFullRoload}) {
    core::SystemVariant parsed;
    ASSERT_TRUE(campaign::ParseVariant(campaign::VariantName(variant),
                                       &parsed));
    EXPECT_EQ(parsed, variant);
  }
  core::SystemVariant variant;
  EXPECT_FALSE(campaign::ParseVariant("turbo", &variant));
  for (core::Defense defense :
       {core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
        core::Defense::kICall, core::Defense::kClassicCfi}) {
    core::Defense parsed;
    ASSERT_TRUE(campaign::ParseDefense(core::DefenseName(defense), &parsed));
    EXPECT_EQ(parsed, defense);
  }
  core::Defense defense;
  EXPECT_FALSE(campaign::ParseDefense("vcall", &defense));  // case-sensitive
}

// ---------------------------------------------------------------------------
// Strict env parsing (the std::atof regression).

TEST(CampaignEnvTest, ParseScaleAcceptsPositiveFinite) {
  EXPECT_EQ(campaign::ParseScale("0.5"), 0.5);
  EXPECT_EQ(campaign::ParseScale("2"), 2.0);
  EXPECT_EQ(campaign::ParseScale("1e-3"), 1e-3);
}

TEST(CampaignEnvTest, ParseScaleRejectsGarbage) {
  EXPECT_FALSE(campaign::ParseScale("fast").has_value());  // the old bug
  EXPECT_FALSE(campaign::ParseScale("0.5x").has_value());
  EXPECT_FALSE(campaign::ParseScale("").has_value());
  EXPECT_FALSE(campaign::ParseScale("0").has_value());
  EXPECT_FALSE(campaign::ParseScale("-1").has_value());
  EXPECT_FALSE(campaign::ParseScale("inf").has_value());
  EXPECT_FALSE(campaign::ParseScale("nan").has_value());
}

TEST(CampaignEnvTest, ParseSwitch) {
  EXPECT_EQ(campaign::ParseSwitch("1"), true);
  EXPECT_EQ(campaign::ParseSwitch("true"), true);
  EXPECT_EQ(campaign::ParseSwitch("on"), true);
  EXPECT_EQ(campaign::ParseSwitch("yes"), true);
  EXPECT_EQ(campaign::ParseSwitch("0"), false);
  EXPECT_EQ(campaign::ParseSwitch("false"), false);
  EXPECT_EQ(campaign::ParseSwitch("off"), false);
  EXPECT_EQ(campaign::ParseSwitch("no"), false);
  EXPECT_EQ(campaign::ParseSwitch(""), false);
  EXPECT_FALSE(campaign::ParseSwitch("maybe").has_value());
  EXPECT_FALSE(campaign::ParseSwitch("2").has_value());
}

TEST(CampaignEnvTest, ParseJobs) {
  EXPECT_EQ(campaign::ParseJobs("0"), 0u);   // auto
  EXPECT_EQ(campaign::ParseJobs("4"), 4u);
  EXPECT_FALSE(campaign::ParseJobs("four").has_value());
  EXPECT_FALSE(campaign::ParseJobs("4x").has_value());
  EXPECT_FALSE(campaign::ParseJobs("").has_value());
  EXPECT_FALSE(campaign::ParseJobs("9999").has_value());  // > 1024
}

TEST(CampaignEnvTest, ScaleFromEnvFallsBackOnGarbage) {
  ::setenv("ROLOAD_BENCH_SCALE", "fast", 1);
  EXPECT_EQ(campaign::ScaleFromEnv(0.7), 0.7);  // warned, kept the default
  ::setenv("ROLOAD_BENCH_SCALE", "0.25", 1);
  EXPECT_EQ(campaign::ScaleFromEnv(0.7), 0.25);
  ::unsetenv("ROLOAD_BENCH_SCALE");
  EXPECT_EQ(campaign::ScaleFromEnv(0.7), 0.7);
}

TEST(CampaignEnvTest, JobsFromEnvFallsBackOnGarbage) {
  ::setenv("ROLOAD_BENCH_JOBS", "many", 1);
  EXPECT_EQ(campaign::JobsFromEnv(3), 3u);
  ::setenv("ROLOAD_BENCH_JOBS", "2", 1);
  EXPECT_EQ(campaign::JobsFromEnv(3), 2u);
  ::unsetenv("ROLOAD_BENCH_JOBS");
  EXPECT_EQ(campaign::JobsFromEnv(3), 3u);
}

// ---------------------------------------------------------------------------
// Grid parsing.

TEST(CampaignGridTest, ParsesFullGrid) {
  campaign::CampaignSpec spec;
  ASSERT_TRUE(campaign::ParseGrid(
                  "workloads=cpp;defenses=none,VCall,VTint;"
                  "variants=baseline,full;scale=0.1;seed=9;profile=1",
                  0.5, &spec)
                  .ok());
  EXPECT_EQ(spec.workloads.size(), 3u);  // the C++ subset
  ASSERT_EQ(spec.configs.size(), 3u);
  EXPECT_EQ(spec.configs[0].label, "none");
  EXPECT_EQ(spec.configs[1].label, "VCall");
  ASSERT_EQ(spec.variants.size(), 2u);
  EXPECT_EQ(spec.variants[0], core::SystemVariant::kBaseline);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_TRUE(spec.profile);
}

TEST(CampaignGridTest, EmptyGridIsFullSuiteUnhardened) {
  campaign::CampaignSpec spec;
  ASSERT_TRUE(campaign::ParseGrid("", 0.5, &spec).ok());
  EXPECT_EQ(spec.workloads.size(),
            workloads::SpecCint2006Suite(0.5).size());
  ASSERT_EQ(spec.configs.size(), 1u);
  EXPECT_EQ(spec.configs[0].label, "none");
}

TEST(CampaignGridTest, RejectsUnknownTokens) {
  campaign::CampaignSpec spec;
  EXPECT_FALSE(campaign::ParseGrid("bogus=1", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("defenses=Turbo", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("workloads=nope_like", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("variants=quantum", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("scale=fast", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("seed=x", 0.5, &spec).ok());
  EXPECT_FALSE(campaign::ParseGrid("notkeyvalue", 0.5, &spec).ok());
}

// ---------------------------------------------------------------------------
// Executor: determinism, ordering, failure isolation.

TEST(CampaignRunnerTest, ResolveJobs) {
  EXPECT_EQ(campaign::ResolveJobs(4, 100), 4u);
  EXPECT_EQ(campaign::ResolveJobs(8, 3), 3u);   // clamp to work items
  EXPECT_EQ(campaign::ResolveJobs(1, 100), 1u);
  EXPECT_GE(campaign::ResolveJobs(0, 100), 1u);  // auto picks something
}

TEST(CampaignRunnerTest, ParallelMapPreservesIndexOrder) {
  const auto out = campaign::ParallelMap<int>(
      64, 4, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(CampaignRunnerTest, ParallelIsBitIdenticalToSerial) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const campaign::CampaignResult serial = campaign::Run(spec, {.jobs = 1});
  const campaign::CampaignResult parallel = campaign::Run(spec, {.jobs = 4});
  ASSERT_EQ(serial.outcomes().size(), parallel.outcomes().size());
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const auto& a = serial.outcomes()[i];
    const auto& b = parallel.outcomes()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.metrics.exit_code, b.metrics.exit_code);
    EXPECT_EQ(a.metrics.peak_mem_kib, b.metrics.peak_mem_kib);
    EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  }
}

TEST(CampaignSpecTest, HartsAxisSuffixesOnlySmpCells) {
  campaign::CampaignSpec spec;
  spec.workloads = {workloads::RpcServerWorkload(128)};
  spec.configs = {campaign::ForDefense(core::Defense::kVCall)};
  spec.harts = {1, 2, 4};
  const auto runs = campaign::Expand(spec);
  ASSERT_EQ(runs.size(), 3u);
  // The single-hart cell keeps the historical name; SMP cells get "/h<N>".
  EXPECT_EQ(runs[0].name, "rpc_server/VCall/full");
  EXPECT_EQ(runs[0].harts, 1u);
  EXPECT_EQ(runs[1].name, "rpc_server/VCall/full/h2");
  EXPECT_EQ(runs[1].harts, 2u);
  EXPECT_EQ(runs[2].name, "rpc_server/VCall/full/h4");
  EXPECT_EQ(runs[2].harts, 4u);
}

TEST(CampaignRunnerTest, SmpGridIsBitIdenticalAcrossJobCounts) {
  // The jobs-1-vs-N differential over a grid with SMP cells: host
  // parallelism must not perturb the simulated interleaving.
  campaign::CampaignSpec spec;
  spec.workloads = {workloads::RpcServerWorkload(200)};
  spec.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kVCall)};
  spec.harts = {1, 2, 4};
  const campaign::CampaignResult serial = campaign::Run(spec, {.jobs = 1});
  const campaign::CampaignResult parallel = campaign::Run(spec, {.jobs = 4});
  ASSERT_EQ(serial.outcomes().size(), 6u);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const auto& a = serial.outcomes()[i];
    const auto& b = parallel.outcomes()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.metrics.exit_code, b.metrics.exit_code);
    EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  }
  // And the SMP cells really scaled: 2 harts beat 1 on wall-clock.
  const auto* one = serial.Find("rpc_server/VCall/full");
  const auto* two = serial.Find("rpc_server/VCall/full/h2");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  EXPECT_LT(two->metrics.cycles, one->metrics.cycles);
}

TEST(CampaignRunnerTest, TranslatedGridIsBitIdenticalAcrossJobCounts) {
  // The jobs-1-vs-N differential over a grid whose cells span all three
  // execute tiers: host parallelism must not perturb any tier, and within
  // one serial run the tiers must agree with each other cell-for-cell.
  campaign::CampaignSpec spec;
  spec.name = "translated";
  spec.workloads = {workloads::SpecCppSubset(0.05)[0]};
  spec.configs = {campaign::ForDefense(core::Defense::kVCall),
                  campaign::ForDefense(core::Defense::kICall)};
  spec.execs = {cpu::ExecTier::kInterp, cpu::ExecTier::kFast,
                cpu::ExecTier::kTranslated};
  const campaign::CampaignResult serial = campaign::Run(spec, {.jobs = 1});
  const campaign::CampaignResult parallel = campaign::Run(spec, {.jobs = 4});
  ASSERT_EQ(serial.outcomes().size(), 6u);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const auto& a = serial.outcomes()[i];
    const auto& b = parallel.outcomes()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.metrics.exit_code, b.metrics.exit_code);
    EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  }
  // Cross-tier identity inside the serial run: cells are expanded with
  // the exec axis innermost, so tiers of one (workload, defense) cell are
  // adjacent triples.
  for (std::size_t cell = 0; cell < serial.outcomes().size(); cell += 3) {
    const auto& interp = serial.outcomes()[cell];
    for (std::size_t tier = 1; tier < 3; ++tier) {
      const auto& other = serial.outcomes()[cell + tier];
      EXPECT_EQ(interp.metrics.cycles, other.metrics.cycles) << other.name;
      EXPECT_EQ(interp.metrics.counters, other.metrics.counters)
          << other.name;
    }
  }
}

TEST(CampaignGridTest, ParsesHartsAxisAndRpcWorkload) {
  campaign::CampaignSpec spec;
  ASSERT_TRUE(campaign::ParseGrid(
                  "workloads=rpc_server;defenses=VCall;harts=1,2,4", 1.0,
                  &spec)
                  .ok());
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].name, "rpc_server");
  EXPECT_EQ(spec.workloads[0].kind, workloads::WorkloadKind::kRpcServer);
  ASSERT_EQ(spec.harts.size(), 3u);
  EXPECT_EQ(spec.harts[2], 4u);
  campaign::CampaignSpec bad;
  EXPECT_FALSE(campaign::ParseGrid("harts=0", 1.0, &bad).ok());
  EXPECT_FALSE(campaign::ParseGrid("harts=x", 1.0, &bad).ok());
}

TEST(CampaignRunnerTest, FaultingRunDoesNotAbortTheGrid) {
  campaign::CampaignSpec spec = TinyCppGrid();
  spec.max_instructions = 1000;  // nothing real finishes in 1000 instructions
  const campaign::CampaignResult result = campaign::Run(spec, {.jobs = 2});
  ASSERT_EQ(result.outcomes().size(),
            spec.workloads.size() * spec.configs.size());
  EXPECT_EQ(result.faults(), result.outcomes().size());
  EXPECT_FALSE(result.all_ok());
  for (const auto& outcome : result.outcomes()) {
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.FailureText().empty());
  }
}

TEST(CampaignRunnerTest, BuildOnlyRunsCarryBuildStats) {
  campaign::CampaignSpec spec;
  spec.workloads = workloads::SpecCppSubset(0.05);
  campaign::RunConfig config = campaign::ForDefense(core::Defense::kVCall);
  config.build_only = true;
  spec.configs = {config};
  const campaign::CampaignResult result = campaign::Run(spec, {.jobs = 2});
  ASSERT_TRUE(result.all_ok());
  for (const auto& outcome : result.outcomes()) {
    EXPECT_TRUE(outcome.build_only);
    EXPECT_GT(outcome.build.image_bytes, 0u);
    EXPECT_GT(outcome.build.code_bytes, 0u);
    EXPECT_GT(outcome.build.roload_instructions, 0u);
    EXPECT_EQ(outcome.metrics.cycles, 0u);  // never executed
  }
}

TEST(CampaignRunnerTest, FindByAxes) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const campaign::CampaignResult result = campaign::Run(spec, {.jobs = 2});
  const auto* outcome =
      result.Find(spec.workloads[1].name, "VCall",
                  core::SystemVariant::kFullRoload);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->name, spec.workloads[1].name + "/VCall/full");
  EXPECT_EQ(result.Find("no_such", "none"), nullptr);
  EXPECT_EQ(result.Find(spec.workloads[0].name, "ICall"), nullptr);
}

// ---------------------------------------------------------------------------
// Campaign telemetry.

TEST(CampaignTelemetryTest, FillSessionEmitsCampaignSchema) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const campaign::CampaignResult result = campaign::Run(spec, {.jobs = 2});
  ASSERT_TRUE(result.all_ok());

  trace::TelemetrySession session("test_campaign");
  result.FillSession(&session);
  const std::string json = session.ToJson();
  EXPECT_NE(json.find("\"schema\": \"roload.campaign.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"merged_counters\""), std::string::npos);
  EXPECT_NE(json.find("campaign.runs"), std::string::npos);
  EXPECT_NE(json.find("campaign.faults"), std::string::npos);
  // Per-run rows for every run of the grid.
  for (const auto& outcome : result.outcomes()) {
    EXPECT_NE(json.find("run." + outcome.name + ".cycles"),
              std::string::npos);
  }
  // The merger aggregated every clean run.
  EXPECT_EQ(result.merger().runs(), result.outcomes().size());
}

TEST(CampaignTelemetryTest, MergerMatchesPerRunCounters) {
  const campaign::CampaignSpec spec = TinyCppGrid();
  const campaign::CampaignResult result = campaign::Run(spec, {.jobs = 1});
  ASSERT_TRUE(result.all_ok());
  // Spot-check: the merged cpu.instret sum equals the per-run sum.
  std::uint64_t expected = 0;
  for (const auto& outcome : result.outcomes()) {
    expected += outcome.metrics.Counter("cpu.instret");
  }
  ASSERT_GT(expected, 0u);
  for (const auto& [name, agg] : result.merger().Merged()) {
    if (name == "cpu.instret") {
      EXPECT_EQ(agg.sum, expected);
      EXPECT_EQ(agg.runs, result.outcomes().size());
      EXPECT_LE(agg.min, agg.max);
    }
  }
  const auto per_run = result.merger().PerRun("cpu.instret");
  ASSERT_EQ(per_run.size(), result.outcomes().size());
  EXPECT_EQ(per_run[0].first, result.outcomes()[0].name);
}

}  // namespace
}  // namespace roload
