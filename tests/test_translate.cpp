// Translation-tier tests (src/cpu/translate.h): the differential contract
// — translated execution is bit-identical to the reference interpreter in
// cycles, instructions, exit code and every registered counter — plus the
// deopt edges that make it so: the TLB-shootdown race, self-modifying
// code through the code-version guard, hot ld.ro key faults taken from
// inside a translated block, and the roload_fault.s kill contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "asmtool/assembler.h"
#include "core/system.h"
#include "core/toolchain.h"
#include "smp/machine.h"
#include "tests/guest_util.h"
#include "workloads/spec_like.h"

namespace roload::cpu {
namespace {

core::BuildResult BuildWorkload(const workloads::WorkloadSpec& spec,
                                core::Defense defense) {
  core::BuildOptions options;
  options.defense = defense;
  auto build = core::Build(workloads::Generate(spec), options);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(*build);
}

void ExpectIdenticalMetrics(const core::RunMetrics& reference,
                            const core::RunMetrics& translated,
                            const std::string& label) {
  EXPECT_EQ(reference.cycles, translated.cycles) << label;
  EXPECT_EQ(reference.instructions, translated.instructions) << label;
  EXPECT_EQ(reference.exit_code, translated.exit_code) << label;
  EXPECT_EQ(reference.completed, translated.completed) << label;
  // Every counter, by name and value — the strongest form of the claim.
  EXPECT_EQ(reference.counters, translated.counters) << label;
}

// --- The differential suite: workloads × defenses × harts. -------------

class TranslateDifferentialTest
    : public ::testing::TestWithParam<core::Defense> {};

TEST_P(TranslateDifferentialTest, MatchesReferenceInterpreterExactly) {
  const workloads::WorkloadSpec specs[] = {
      workloads::SpecCint2006Suite(0.04)[0],
      workloads::SpecCppSubset(0.04)[0],
  };
  for (const auto& spec : specs) {
    const auto build = BuildWorkload(spec, GetParam());
    const auto reference =
        core::RunBuild(build, core::SystemVariant::kFullRoload, 1ull << 34,
                       {}, cpu::ExecTier::kInterp);
    const auto translated =
        core::RunBuild(build, core::SystemVariant::kFullRoload, 1ull << 34,
                       {}, cpu::ExecTier::kTranslated);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_TRUE(translated.ok()) << translated.status().ToString();
    ExpectIdenticalMetrics(*reference, *translated, spec.name);
  }
}

TEST_P(TranslateDifferentialTest, MatchesReferenceAcrossHartCounts) {
  const auto build =
      BuildWorkload(workloads::RpcServerWorkload(200), GetParam());
  for (unsigned harts : {1u, 2u, 4u}) {
    const auto reference =
        smp::RunBuildSmp(build, core::SystemVariant::kFullRoload, harts,
                         1ull << 34, {}, cpu::ExecTier::kInterp);
    const auto translated =
        smp::RunBuildSmp(build, core::SystemVariant::kFullRoload, harts,
                         1ull << 34, {}, cpu::ExecTier::kTranslated);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_TRUE(translated.ok()) << translated.status().ToString();
    ExpectIdenticalMetrics(*reference, *translated,
                           "rpc_server/h" + std::to_string(harts));
  }
}

TEST_P(TranslateDifferentialTest, MatchesReferenceWithAuditTraceOn) {
  // With the audit layer attached, every executed ld.ro site emits a
  // roload_check event; the translated tier must produce the identical
  // stream (it routes traced ld.ro through the generic interpreter path).
  const auto build =
      BuildWorkload(workloads::SpecCppSubset(0.04)[0], GetParam());
  trace::TraceConfig trace;
  trace.audit = true;
  const auto reference =
      core::RunBuild(build, core::SystemVariant::kFullRoload, 1ull << 34,
                     trace, cpu::ExecTier::kInterp);
  const auto translated =
      core::RunBuild(build, core::SystemVariant::kFullRoload, 1ull << 34,
                     trace, cpu::ExecTier::kTranslated);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  ExpectIdenticalMetrics(*reference, *translated, "audited");
}

INSTANTIATE_TEST_SUITE_P(Defenses, TranslateDifferentialTest,
                         ::testing::Values(core::Defense::kNone,
                                           core::Defense::kVCall,
                                           core::Defense::kICall),
                         [](const auto& info) {
                           return std::string(
                               core::DefenseName(info.param));
                         });

// --- The tier really engages (the differential is not vacuous). --------

TEST(TranslateTest, TranslatorBuildsChainsAndReplaysOnHotCode) {
  const auto build =
      BuildWorkload(workloads::SpecCppSubset(0.04)[0], core::Defense::kVCall);
  core::SystemConfig config;
  config.variant = core::SystemVariant::kFullRoload;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kTranslated);
  core::System system(config);
  ASSERT_TRUE(system.Load(build.image).ok());
  const kernel::RunResult result = system.Run();
  ASSERT_EQ(result.kind, kernel::ExitKind::kExited);
  const cpu::TranslatorStats& stats = system.cpu().translator_stats();
  EXPECT_GT(stats.blocks_built, 0u);
  EXPECT_GT(stats.block_entries, 0u);
  EXPECT_GT(stats.chained_entries, 0u);
  EXPECT_GT(stats.ops_replayed, 0u);
  // Most retired instructions came from blocks, not the interpreter —
  // the speedup claim rests on this.
  EXPECT_GT(stats.ops_replayed, system.cpu().stats().instructions / 2);
}

TEST(TranslateTest, FlagOffNeverTranslates) {
  const auto build =
      BuildWorkload(workloads::SpecCppSubset(0.04)[0], core::Defense::kNone);
  core::SystemConfig config;
  config.variant = core::SystemVariant::kFullRoload;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kFast);
  core::System system(config);
  ASSERT_TRUE(system.Load(build.image).ok());
  (void)system.Run();
  EXPECT_FALSE(system.cpu().translation_enabled());
  EXPECT_EQ(system.cpu().translator_stats().blocks_built, 0u);
}

// --- Deopt edge: the TLB-shootdown race. -------------------------------
//
// The same guest as the test_smp shootdown race: hart 1 warms a key-5
// translation (and, here, translated blocks), hart 0 re-keys the page via
// mprotect and signals. The remote flush must invalidate hart 1's blocks
// along with its TLB, so the next ld.ro re-walks, sees key 7 and kills
// the guest — at the same cycle as the untranslated machine.
constexpr char kShootdownRaceGuest[] = R"(
.section .text
_start:
  bnez a0, hart1

hart0:
  la t0, sync
hart0_spin:
  ld t1, 0(t0)
  beqz t1, hart0_spin
  la a0, page
  li a1, 4096
  li a2, 0x70001        # PROT_READ | key 7 << 16
  li a7, 226
  ecall
  la t0, sync
  li t1, 1
  sd t1, 8(t0)
  li a0, 0
  li a7, 93
  ecall

hart1:
  la t0, page
  ld.ro t2, (t0), 5
  la t1, sync
  li t3, 1
  sd t3, 0(t1)
hart1_spin:
  ld t3, 8(t1)
  beqz t3, hart1_spin
  ld.ro t2, (t0), 5
  li a0, 42
  li a7, 93
  ecall

.section .data
sync:
  .quad 0
  .quad 0

.section .rodata.key.5
page:
  .quad 77
)";

kernel::RunResult RunRace(smp::Machine* machine) {
  auto image = asmtool::Assemble(kShootdownRaceGuest);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  Status status = machine->Load(*image);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return machine->Run(1 << 22);
}

TEST(TranslateTest, ShootdownRaceStillFaultsUnderTranslation) {
  smp::SmpConfig config;
  config.harts = 2;
  config.quantum = 100;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kTranslated);
  config.cpu.translate_threshold = 1;  // spin loops translate immediately
  smp::Machine machine(config);
  const kernel::RunResult translated = RunRace(&machine);
  ASSERT_EQ(translated.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(translated.roload_violation);
  EXPECT_EQ(translated.hart, 1u);
  EXPECT_GE(machine.kernel().hart_state(1).shootdowns_received, 1u);

  // And cycle-for-cycle equal to the untranslated machine.
  smp::SmpConfig reference_config;
  reference_config.harts = 2;
  reference_config.quantum = 100;
  cpu::SetExecTier(&reference_config.cpu, cpu::ExecTier::kInterp);
  smp::Machine reference(reference_config);
  const kernel::RunResult interp = RunRace(&reference);
  ASSERT_EQ(interp.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(interp.hart, translated.hart);
  EXPECT_EQ(interp.fault_pc, translated.fault_pc);
  for (unsigned hart = 0; hart < 2; ++hart) {
    EXPECT_EQ(reference.cpu(hart).stats().cycles,
              machine.cpu(hart).stats().cycles);
    EXPECT_EQ(reference.cpu(hart).stats().instructions,
              machine.cpu(hart).stats().instructions);
  }
}

// --- Deopt edge: self-modifying code. ----------------------------------
//
// A hot callee is patched mid-run: the guest makes its own code page
// writable, copies the donor routine's bytes over the target routine, and
// keeps calling it. The store barrier (CodeVersionTable::OnWrite) must
// fail the version guard of the stale block so post-patch calls execute
// the new bytes. target/donor live in their own executable sections with
// identical layout, so the 8-byte copy is valid whatever the encoding.
constexpr char kSelfModifyingGuest[] = R"(
.section .text
_start:
  li s0, 0              # iteration
  li s1, 0              # accumulator
loop:
  call target
  add s1, s1, a0
  addi s0, s0, 1
  li t0, 3
  bne s0, t0, no_patch
  la a0, target
  li a1, 4096
  li a2, 0x7            # PROT_READ|WRITE|EXEC: open the code page
  li a7, 226
  ecall
  la t1, donor
  ld t2, 0(t1)
  la t3, target
  sd t2, 0(t3)          # target now returns 9
no_patch:
  li t0, 6
  bne s0, t0, loop
  mv a0, s1
  li a7, 93
  ecall

.section .text.target
target:
  li a0, 5
  ret
  .quad 0

.section .text.donor
donor:
  li a0, 9
  ret
  .quad 0
)";

TEST(TranslateTest, SelfModifiedCodeDeoptsAndMatchesReference) {
  // 3 pre-patch calls return 5, 3 post-patch calls return 9.
  constexpr std::int64_t kExpected = 3 * 5 + 3 * 9;

  core::SystemConfig reference_config;
  cpu::SetExecTier(&reference_config.cpu, cpu::ExecTier::kInterp);
  const testing::GuestRun reference =
      testing::RunGuest(kSelfModifyingGuest, reference_config);
  ASSERT_EQ(reference.result.kind, kernel::ExitKind::kExited);
  ASSERT_EQ(reference.result.exit_code, kExpected);

  core::SystemConfig config;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kTranslated);
  config.cpu.translate_threshold = 1;  // translate the short loop at once
  const testing::GuestRun translated =
      testing::RunGuest(kSelfModifyingGuest, config);
  ASSERT_EQ(translated.result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(translated.result.exit_code, kExpected);
  EXPECT_EQ(reference.system->cpu().stats().cycles,
            translated.system->cpu().stats().cycles);
  EXPECT_EQ(reference.system->cpu().stats().instructions,
            translated.system->cpu().stats().instructions);
  // The patched routine's block really was built and then thrown away.
  const cpu::TranslatorStats& stats =
      translated.system->cpu().translator_stats();
  EXPECT_GT(stats.blocks_built, 0u);
  EXPECT_GT(stats.blocks_retired + stats.invalidations, 0u);
}

// --- Deopt edge: hot ld.ro key fault inside a translated block. --------
//
// The loop's keyed load succeeds 50 times (long past any threshold), then
// the page is re-keyed; the next iteration's ld.ro — at the already-
// translated site — must take the key-mismatch fault and kill the guest
// exactly like the interpreter.
constexpr char kHotRoLoadFaultGuest[] = R"(
.section .text
_start:
  li s0, 0
loop:
  la t0, secret
  ld.ro t1, (t0), 5
  addi s0, s0, 1
  li t2, 50
  beq s0, t2, rekey
  j check
rekey:
  la a0, secret
  li a1, 4096
  li a2, 0x90001        # PROT_READ | key 9 << 16
  li a7, 226
  ecall
check:
  li t2, 60
  bne s0, t2, loop
  li a0, 0
  li a7, 93
  ecall

.section .rodata.key.5
secret:
  .quad 7
)";

TEST(TranslateTest, HotRoLoadKeyFaultKillsIdenticallyToReference) {
  core::SystemConfig reference_config;
  cpu::SetExecTier(&reference_config.cpu, cpu::ExecTier::kInterp);
  const testing::GuestRun reference =
      testing::RunGuest(kHotRoLoadFaultGuest, reference_config);
  ASSERT_EQ(reference.result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(reference.result.roload_violation);

  core::SystemConfig config;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kTranslated);
  const testing::GuestRun translated =
      testing::RunGuest(kHotRoLoadFaultGuest, config);
  ASSERT_EQ(translated.result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(translated.result.roload_violation);
  EXPECT_EQ(reference.result.fault_pc, translated.result.fault_pc);
  EXPECT_EQ(reference.system->cpu().stats().cycles,
            translated.system->cpu().stats().cycles);
  EXPECT_EQ(reference.system->cpu().stats().instructions,
            translated.system->cpu().stats().instructions);
  EXPECT_GT(translated.system->cpu().translator_stats().blocks_built, 0u);
}

// --- The roload_fault.s kill contract under translation. ---------------

TEST(TranslateTest, RoLoadFaultFixtureKillsUnderEagerTranslation) {
  std::ifstream file(std::string(ROLOAD_TESTS_DATA_DIR) +
                     "/roload_fault.s");
  ASSERT_TRUE(file.is_open());
  std::stringstream source;
  source << file.rdbuf();

  core::SystemConfig config;
  cpu::SetExecTier(&config.cpu, cpu::ExecTier::kTranslated);
  // Eager translation puts the one-shot faulting ld.ro inside a block, so
  // the kill goes through the block executor's inline ld.ro fault path
  // (the rrun exit-99 cmake test covers the default-threshold path).
  config.cpu.translate_threshold = 1;
  const testing::GuestRun translated = testing::RunGuest(source.str(),
                                                         config);
  ASSERT_EQ(translated.result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(translated.result.roload_violation);

  core::SystemConfig reference_config;
  cpu::SetExecTier(&reference_config.cpu, cpu::ExecTier::kInterp);
  const testing::GuestRun reference = testing::RunGuest(source.str(),
                                                        reference_config);
  ASSERT_EQ(reference.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(reference.result.fault_pc, translated.result.fault_pc);
  EXPECT_EQ(reference.system->cpu().stats().cycles,
            translated.system->cpu().stats().cycles);
}

}  // namespace
}  // namespace roload::cpu
