// Security-harness tests: the full attack/defense outcome matrix of
// Section V-C2 as executable assertions, plus the Section V-D residual
// surface and the fault-attribution details.
#include <gtest/gtest.h>

#include "sec/attack.h"

namespace roload::sec {
namespace {

struct MatrixCase {
  AttackKind attack;
  core::Defense defense;
  AttackOutcome expected;
};

class SecurityMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SecurityMatrixTest, OutcomeMatchesPaperClaim) {
  auto result = RunAttack(GetParam().attack, GetParam().defense);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, GetParam().expected)
      << AttackKindName(GetParam().attack) << " vs "
      << core::DefenseName(GetParam().defense);
}

INSTANTIATE_TEST_SUITE_P(
    PaperClaims, SecurityMatrixTest,
    ::testing::Values(
        // Undefended: both hijack primitives work.
        MatrixCase{AttackKind::kVtableInjection, core::Defense::kNone,
                   AttackOutcome::kHijacked},
        MatrixCase{AttackKind::kFnPtrCorruptToEvil, core::Defense::kNone,
                   AttackOutcome::kHijacked},
        // VCall (Section IV-A): blocks injection AND cross-hierarchy reuse.
        MatrixCase{AttackKind::kVtableInjection, core::Defense::kVCall,
                   AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kVtableReuseCrossHierarchy,
                   core::Defense::kVCall, AttackOutcome::kBlocked},
        // VTint blocks injection but not reuse (VCall strictly stronger).
        MatrixCase{AttackKind::kVtableInjection, core::Defense::kVTint,
                   AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kVtableReuseCrossHierarchy,
                   core::Defense::kVTint, AttackOutcome::kDiverted},
        // VCall/VTint do not cover plain function pointers.
        MatrixCase{AttackKind::kFnPtrCorruptToEvil, core::Defense::kVCall,
                   AttackOutcome::kHijacked},
        MatrixCase{AttackKind::kFnPtrCorruptToEvil, core::Defense::kVTint,
                   AttackOutcome::kHijacked},
        // ICall (Section IV-B): blocks raw-address hijack; unified vtable
        // key admits cross-hierarchy vtable reuse; same-type GFPT reuse is
        // the designed residual surface (Section V-D).
        MatrixCase{AttackKind::kVtableInjection, core::Defense::kICall,
                   AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kFnPtrCorruptToEvil, core::Defense::kICall,
                   AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kVtableReuseCrossHierarchy,
                   core::Defense::kICall, AttackOutcome::kDiverted},
        MatrixCase{AttackKind::kFnPtrReuseSameType, core::Defense::kICall,
                   AttackOutcome::kDiverted},
        // Classic label CFI: blocks wrong-type targets, allows same-type.
        MatrixCase{AttackKind::kVtableInjection, core::Defense::kClassicCfi,
                   AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kFnPtrCorruptToEvil,
                   core::Defense::kClassicCfi, AttackOutcome::kBlocked},
        MatrixCase{AttackKind::kFnPtrReuseSameType,
                   core::Defense::kClassicCfi, AttackOutcome::kDiverted}),
    [](const auto& info) {
      std::string name =
          std::string(AttackKindName(info.param.attack)) + "_vs_" +
          std::string(core::DefenseName(info.param.defense));
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

TEST(AttackDetailTest, RoLoadBlocksAreAttributedByTheKernel) {
  auto result =
      RunAttack(AttackKind::kVtableInjection, core::Defense::kVCall);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, AttackOutcome::kBlocked);
  EXPECT_TRUE(result->roload_violation)
      << "the roload-aware kernel must classify the fault";
  EXPECT_EQ(result->signal, 11);
}

TEST(AttackDetailTest, CfiBlocksAreAbortsNotFaults) {
  auto result = RunAttack(AttackKind::kFnPtrCorruptToEvil,
                          core::Defense::kClassicCfi);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, AttackOutcome::kBlocked);
  EXPECT_FALSE(result->roload_violation);
}

TEST(AttackDetailTest, VictimRunsCleanlyUnderEveryDefense) {
  // Sanity for the harness itself: without an attack the victim exits
  // normally under all defenses (checked internally by RunAttack, which
  // errors out otherwise — exercise one defense per family here).
  for (core::Defense defense :
       {core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
        core::Defense::kICall, core::Defense::kClassicCfi}) {
    auto result = RunAttack(AttackKind::kFnPtrReuseSameType, defense);
    EXPECT_TRUE(result.ok()) << core::DefenseName(defense) << ": "
                             << result.status().ToString();
  }
}

TEST(VictimModuleTest, HasTheExpectedAttackSurface) {
  ir::Module module = MakeVictimModule();
  EXPECT_TRUE(ir::Verify(module).ok());
  // Two hierarchies (reuse target), the evil function, the reuse pair.
  EXPECT_NE(module.FindGlobal("vt_A0"), nullptr);
  EXPECT_NE(module.FindGlobal("vt_B0"), nullptr);
  EXPECT_NE(module.FindFunction("evil"), nullptr);
  EXPECT_NE(module.FindFunction("cb_first"), nullptr);
  EXPECT_NE(module.FindFunction("cb_second"), nullptr);
  // cb_first/cb_second share a type; evil has its own.
  const auto* first = module.FindFunction("cb_first");
  const auto* second = module.FindFunction("cb_second");
  const auto* evil = module.FindFunction("evil");
  EXPECT_EQ(first->type_id, second->type_id);
  EXPECT_NE(evil->type_id, first->type_id);
}

}  // namespace
}  // namespace roload::sec
