# Checks that a file exists and contains a substring — the artifact-side
# half of CLI contracts (check_exit.cmake checks the process side).
#
# Usage:
#   cmake -DFILE=<path> "-DEXPECT_CONTENT=<substring>" -P check_file_contains.cmake
if(NOT DEFINED FILE OR NOT DEFINED EXPECT_CONTENT)
  message(FATAL_ERROR
    "check_file_contains.cmake needs -DFILE=... and -DEXPECT_CONTENT=...")
endif()
if(NOT EXISTS "${FILE}")
  message(FATAL_ERROR "${FILE} does not exist")
endif()
file(READ "${FILE}" contents)
string(FIND "${contents}" "${EXPECT_CONTENT}" found)
if(found EQUAL -1)
  message(FATAL_ERROR
    "${FILE} does not contain \"${EXPECT_CONTENT}\"; first 500 bytes:\n"
    "${contents}")
endif()
