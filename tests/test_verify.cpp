// Static pointee-integrity verifier tests (src/verify).
//
// Three angles, mirroring the verifier's own trust argument:
//  * clean runs — every benchmark × defense × codegen variant verifies;
//  * mutation runs — each deliberately-broken build artifact (the exact
//    bug classes the verifier removes from the TCB: dropped ld->ld.ro
//    rewrite, wrong key, writable allowlist, dropped addi fixup, moved
//    symbol, stripped CFI ID word) is rejected with the right rule id;
//  * lattice unit tests on hand-written assembly — the dispatch proof
//    accepts ld.ro provenance through mv/spill chains and rejects any
//    path that bypasses ld.ro.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "asmtool/assembler.h"
#include "core/toolchain.h"
#include "ir/builder.h"
#include "ir/ir.h"
#include "sec/attack.h"
#include "support/json.h"
#include "verify/binary.h"
#include "verify/gadgets.h"
#include "verify/ir_lint.h"
#include "verify/verify.h"
#include "workloads/spec_like.h"

namespace roload::verify {
namespace {

core::BuildResult MustBuild(const ir::Module& module, core::Defense defense,
                            bool compressed = false) {
  core::BuildOptions options;
  options.defense = defense;
  options.codegen.use_compressed_roload = compressed;
  auto build = core::Build(module, options);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return *std::move(build);
}

// Re-verifies `build` after substituting a mutated image, keeping the
// original hardened-IR expectations — exactly what Toolchain::Verify
// would see had the backend/assembler mis-emitted.
Report VerifyMutated(const core::BuildResult& build,
                     const asmtool::LinkImage& image) {
  Report report;
  const Expectations exp = ComputeExpectations(build.hardened);
  BinaryPolicy policy;
  policy.require_protected_dispatch =
      build.options.defense == core::Defense::kICall;
  VerifyImage(image, policy, &exp, &report);
  return report;
}

Report VerifyMutatedAssembly(const core::BuildResult& build,
                             const std::string& assembly) {
  auto image = asmtool::Assemble(assembly);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return VerifyMutated(build, *image);
}

// Removes the first line satisfying pred(line, next_line); returns true
// when a line was removed.
template <typename Pred>
bool RemoveLine(std::string* text, Pred pred) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text->size()) {
    const std::size_t eol = text->find('\n', start);
    if (eol == std::string::npos) {
      lines.push_back(text->substr(start));
      break;
    }
    lines.push_back(text->substr(start, eol - start));
    start = eol + 1;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& next = i + 1 < lines.size() ? lines[i + 1] : "";
    if (pred(lines[i], next)) {
      lines.erase(lines.begin() + i);
      std::string out;
      for (std::size_t j = 0; j < lines.size(); ++j) {
        out += lines[j];
        if (j + 1 < lines.size()) out += '\n';
      }
      *text = out;
      return true;
    }
  }
  return false;
}

bool ReplaceFirst(std::string* text, const std::string& from,
                  const std::string& to) {
  const std::size_t pos = text->find(from);
  if (pos == std::string::npos) return false;
  text->replace(pos, from.size(), to);
  return true;
}

int SmallestRuleId(const Report& report) { return report.ExitCode(); }

// ---------------------------------------------------------------------------
// Clean runs: the full benchmark matrix.

struct CleanCase {
  core::Defense defense;
  bool compressed;
};

class CleanSuiteTest : public ::testing::TestWithParam<CleanCase> {};

TEST_P(CleanSuiteTest, AllBenchmarksVerify) {
  // Module structure is independent of the run-length scale; a tiny
  // scale keeps the 11 builds fast.
  for (const auto& spec : workloads::SpecCint2006Suite(0.001)) {
    const ir::Module module = workloads::Generate(spec);
    const core::BuildResult build =
        MustBuild(module, GetParam().defense, GetParam().compressed);
    const Report report = core::Verify(build);
    EXPECT_TRUE(report.ok())
        << spec.name << " under "
        << core::DefenseName(GetParam().defense)
        << (GetParam().compressed ? " (compressed)" : "") << ":\n"
        << report.ToText();
    // The full ICall policy must actually *prove* every dispatch, not
    // just fail to find violations.
    if (GetParam().defense == core::Defense::kICall) {
      EXPECT_EQ(report.stats().dispatches,
                report.stats().proven_dispatches)
          << spec.name;
      if (spec.icall_weight + spec.vcall_weight > 0) {
        EXPECT_GT(report.stats().dispatches, 0u) << spec.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDefenses, CleanSuiteTest,
    ::testing::Values(CleanCase{core::Defense::kNone, false},
                      CleanCase{core::Defense::kVCall, false},
                      CleanCase{core::Defense::kVTint, false},
                      CleanCase{core::Defense::kICall, false},
                      CleanCase{core::Defense::kClassicCfi, false},
                      CleanCase{core::Defense::kNone, true},
                      CleanCase{core::Defense::kVCall, true},
                      CleanCase{core::Defense::kVTint, true},
                      CleanCase{core::Defense::kICall, true},
                      CleanCase{core::Defense::kClassicCfi, true}),
    [](const auto& info) {
      return std::string(core::DefenseName(info.param.defense)) +
             (info.param.compressed ? "_compressed" : "");
    });

TEST(CleanVerifyTest, VictimModuleVerifiesUnderEveryDefense) {
  const ir::Module victim = sec::MakeVictimModule();
  for (core::Defense defense :
       {core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
        core::Defense::kICall, core::Defense::kClassicCfi}) {
    const Report report = core::Verify(MustBuild(victim, defense));
    EXPECT_TRUE(report.ok())
        << core::DefenseName(defense) << ":\n" << report.ToText();
  }
}

TEST(CleanVerifyTest, BuildOptionVerifyGatesTheBuild) {
  core::BuildOptions options;
  options.defense = core::Defense::kICall;
  options.verify = true;
  auto build = core::Build(sec::MakeVictimModule(), options);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
}

TEST(CleanVerifyTest, ExpectationsMatchCodegenCounters) {
  for (core::Defense defense :
       {core::Defense::kVCall, core::Defense::kICall}) {
    const auto spec = workloads::SpecCint2006Suite(0.001);
    const ir::Module module = workloads::Generate(spec[0]);
    const core::BuildResult build = MustBuild(module, defense);
    const Expectations exp = ComputeExpectations(build.hardened);
    EXPECT_EQ(exp.roload_loads, build.codegen.roload_instructions)
        << core::DefenseName(defense);
    EXPECT_EQ(exp.addi_fixups, build.codegen.extra_addi_for_roload)
        << core::DefenseName(defense);
  }
}

// ---------------------------------------------------------------------------
// Mutation runs: each bug class the verifier removes from the TCB.

ir::Module CppWorkload() {
  for (const auto& spec : workloads::SpecCint2006Suite(0.001)) {
    if (spec.is_cpp) return workloads::Generate(spec);
  }
  ADD_FAILURE() << "suite has no C++ workload";
  return {};
}

TEST(MutationTest, SkippedRoloadRewriteIsUnprovenDispatch) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kICall);
  std::string assembly = build.codegen.assembly;
  // Undo one fused ld.ro dispatch load, as if the backend forgot the
  // ld -> ld.ro rewrite. The dispatch is then unproven (rule 24), which
  // outranks the ld.ro count mismatch (25).
  ASSERT_TRUE(ReplaceFirst(&assembly, "ld.ro t2, (t2),", "ld t2, 0(t2) #"));
  const Report report = VerifyMutatedAssembly(build, assembly);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinUnprovenDispatch));
}

TEST(MutationTest, WrongKeyIsCaught) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kVCall);
  std::string assembly = build.codegen.assembly;
  // Rewrite one vtable-entry load to an unallocated key: no read-only
  // frame carries it, so every execution would fault (rule 22).
  const std::size_t pos = assembly.find("ld.ro t1, (t0), ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = assembly.find('\n', pos);
  assembly.replace(pos, eol - pos, "ld.ro t1, (t0), 1023");
  const Report report = VerifyMutatedAssembly(build, assembly);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinKeyUnmapped));
}

TEST(MutationTest, WritableAllowlistSectionIsCaught) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kVCall);
  asmtool::LinkImage image = build.image;
  bool flipped = false;
  for (auto& section : image.sections) {
    if (section.key != 0) {
      section.perms.write = true;  // a loader/mprotect bug
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  const Report report = VerifyMutated(build, image);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinWritableKeyAlias));
}

TEST(MutationTest, DroppedAddiFixupIsCaught) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kVCall);
  ASSERT_GT(build.codegen.extra_addi_for_roload, 0u);
  std::string assembly = build.codegen.assembly;
  // Drop the addi that folds a vtable-slot offset into an ld.ro base:
  // the load would read vtable slot 0 instead of the intended method.
  const bool removed =
      RemoveLine(&assembly, [](const std::string& line,
                               const std::string& next) {
        return line.find("addi t0, t0, ") != std::string::npos &&
               next.find(".ro t1") != std::string::npos;
      });
  ASSERT_TRUE(removed);
  const Report report = VerifyMutatedAssembly(build, assembly);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinMissingFixup));
}

TEST(MutationTest, MisplacedKeyedSymbolIsCaught) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kICall);
  asmtool::LinkImage image = build.image;
  // Relocate one GFPT symbol into a *different* keyed section (as a
  // buggy linker might): its own ld.ro key no longer guards it.
  const Expectations exp = ComputeExpectations(build.hardened);
  ASSERT_FALSE(exp.keyed_symbols.empty());
  bool moved = false;
  for (const auto& [name, key] : exp.keyed_symbols) {
    for (const auto& section : image.sections) {
      if (section.key != 0 && section.key != key) {
        image.symbols[name] = section.vaddr;
        moved = true;
        break;
      }
    }
    if (moved) break;
  }
  ASSERT_TRUE(moved);
  const Report report = VerifyMutated(build, image);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinSymbolMisplaced));
}

TEST(MutationTest, StrippedCfiIdWordIsCaught) {
  const core::BuildResult build =
      MustBuild(CppWorkload(), core::Defense::kClassicCfi);
  std::string assembly = build.codegen.assembly;
  const bool removed = RemoveLine(
      &assembly, [](const std::string& line, const std::string&) {
        return line.find("lui zero, ") != std::string::npos;
      });
  ASSERT_TRUE(removed);
  const Report report = VerifyMutatedAssembly(build, assembly);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinMissingCfiId));
}

TEST(MutationTest, MutationsYieldDistinctRuleIds) {
  // The CLI contract: each mutation class has its own exit code.
  const std::vector<Rule> rules = {
      Rule::kBinUnprovenDispatch, Rule::kBinKeyUnmapped,
      Rule::kBinWritableKeyAlias, Rule::kBinMissingFixup,
      Rule::kBinSymbolMisplaced,  Rule::kBinMissingCfiId};
  std::vector<int> ids;
  for (Rule rule : rules) ids.push_back(RuleId(rule));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  for (int id : ids) EXPECT_GT(id, 0);
}

// ---------------------------------------------------------------------------
// IR lint negatives (rules 10-15).

void TagLastLoad(ir::FunctionBuilder* b, std::uint32_t key,
                 ir::Trait trait = ir::Trait::kNone, int trait_id = 0) {
  for (auto& block : b->function()->blocks) {
    for (auto it = block.instrs.rbegin(); it != block.instrs.rend(); ++it) {
      if (it->kind == ir::InstrKind::kLoad) {
        it->has_roload_md = true;
        it->roload_key = key;
        it->trait = trait;
        it->trait_id = trait_id;
        return;
      }
    }
  }
  FAIL() << "no load to tag";
}

ir::Global RoGlobal(const std::string& name, std::uint32_t key,
                    ir::GlobalTrait trait = ir::GlobalTrait::kNone,
                    int trait_id = 0) {
  ir::Global g;
  g.name = name;
  g.read_only = true;
  g.key = key;
  g.trait = trait;
  g.trait_id = trait_id;
  g.quads.push_back(ir::GlobalInit{7, ""});
  return g;
}

Report Lint(const ir::Module& module) {
  Report report;
  LintModule(module, &report);
  return report;
}

TEST(IrLintTest, InvalidKeyOnMdLoad) {
  ir::Module m;
  m.name = "m";
  m.globals.push_back(RoGlobal("al", 5));
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Load(b.AddrOf("al")));
  TagLastLoad(&b, 0);  // md with key 0: the reserved untagged key
  const Report report = Lint(m);
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kIrKeyInvalid));

  TagLastLoad(&b, 4096);  // beyond the 10-bit PTE field
  EXPECT_EQ(SmallestRuleId(Lint(m)), RuleId(Rule::kIrKeyInvalid));
}

TEST(IrLintTest, KeyedGlobalMustBeReadOnly) {
  ir::Module m;
  m.name = "m";
  ir::Global g = RoGlobal("al", 5);
  g.read_only = false;
  m.globals.push_back(g);
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Const(0));
  EXPECT_EQ(SmallestRuleId(Lint(m)),
            RuleId(Rule::kIrKeyedGlobalWritable));
}

TEST(IrLintTest, LoadKeyWithoutMatchingGlobal) {
  ir::Module m;
  m.name = "m";
  m.globals.push_back(RoGlobal("al", 5));
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Load(b.AddrOf("al")));
  TagLastLoad(&b, 7);  // valid key, but nothing is mapped with it
  EXPECT_EQ(SmallestRuleId(Lint(m)),
            RuleId(Rule::kIrLoadKeyMismatch));
}

TEST(IrLintTest, VtableEntryLoadKeyDisagreesWithVtable) {
  ir::Module m;
  m.name = "m";
  m.globals.push_back(RoGlobal("vt_a", 5, ir::GlobalTrait::kVTable, 3));
  m.globals.push_back(RoGlobal("other", 9));
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Load(b.AddrOf("vt_a")));
  // Keyed like `other` (so the key is mapped) but reaching class 3's
  // vtable, which is keyed 5.
  TagLastLoad(&b, 9, ir::Trait::kVTableEntryLoad, 3);
  EXPECT_EQ(SmallestRuleId(Lint(m)),
            RuleId(Rule::kIrLoadKeyMismatch));
}

TEST(IrLintTest, UnkeyedGfptIsFlagged) {
  ir::Module m;
  m.name = "m";
  ir::Global g;
  g.name = "gfpt_f";
  g.read_only = true;
  g.trait = ir::GlobalTrait::kGfpt;
  g.trait_id = 2;
  g.quads.push_back(ir::GlobalInit{0, ""});
  m.globals.push_back(g);
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Const(0));
  EXPECT_EQ(SmallestRuleId(Lint(m)),
            RuleId(Rule::kIrSensitiveGlobalUnkeyed));
}

TEST(IrLintTest, IncompatibleFunctionTypesSharingAKey) {
  ir::Module m;
  m.name = "m";
  m.globals.push_back(RoGlobal("gfpt_f", 5, ir::GlobalTrait::kGfpt, 1));
  m.globals.push_back(RoGlobal("gfpt_g", 5, ir::GlobalTrait::kGfpt, 2));
  ir::FunctionBuilder b(&m, "main", "i64()", 0);
  b.Ret(b.Const(0));
  EXPECT_EQ(SmallestRuleId(Lint(m)),
            RuleId(Rule::kIrTypeKeyCollision));
}

TEST(IrLintTest, StructurallyBrokenModule) {
  ir::Module m;
  m.name = "bad";
  ir::Function f;
  f.name = "main";
  f.type_id = m.InternFnType("i64()");
  ir::Block block;
  block.label = "entry";
  ir::Instr ret;
  ret.kind = ir::InstrKind::kRet;
  ret.src1 = 7;  // out of range: the function has no vregs
  block.instrs.push_back(ret);
  f.blocks.push_back(block);
  m.functions.push_back(f);
  EXPECT_EQ(SmallestRuleId(Lint(m)), RuleId(Rule::kIrStructural));
}

TEST(IrLintTest, HardenedSuiteLintsClean) {
  for (const auto& spec : workloads::SpecCint2006Suite(0.001)) {
    for (core::Defense defense :
         {core::Defense::kVCall, core::Defense::kICall}) {
      const core::BuildResult build =
          MustBuild(workloads::Generate(spec), defense);
      const Report report = Lint(build.hardened);
      EXPECT_TRUE(report.ok())
          << spec.name << "/" << core::DefenseName(defense) << ":\n"
          << report.ToText();
    }
  }
}

// ---------------------------------------------------------------------------
// Abstract-interpretation unit tests on hand-written assembly.

asmtool::LinkImage MustAssemble(const char* source) {
  auto image = asmtool::Assemble(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return *std::move(image);
}

Report VerifyAsm(const char* source, bool require_dispatch_proof) {
  Report report;
  BinaryPolicy policy;
  policy.name = require_dispatch_proof ? "icall" : "none";
  policy.require_protected_dispatch = require_dispatch_proof;
  VerifyImage(MustAssemble(source), policy, nullptr, &report);
  return report;
}

TEST(BinaryVerifyTest, ProvenanceFlowsThroughSpillAndReload) {
  // The backend's non-fused shape: ld.ro result spilled to a stack slot
  // and reloaded into the dispatch register.
  const char* source = R"(
.section .text
_start:
  addi sp, sp, -32
  la t0, table
  ld.ro t1, (t0), 9
  sd t1, 8(sp)
  ld t2, 8(sp)
  jalr ra, 0(t2)
  addi sp, sp, 32
  li a0, 0
  li a7, 93
  ecall
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, /*require_dispatch_proof=*/true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().dispatches, 1u);
  EXPECT_EQ(report.stats().proven_dispatches, 1u);
}

TEST(BinaryVerifyTest, ProvenanceFlowsThroughCompressedRoloadAndMv) {
  // The compressed-roload staging shape: c.ld.ro through the popular
  // registers, then mv into the dispatch register.
  const char* source = R"(
.section .text
_start:
  la s1, table
  c.ld.ro a5, (s1), 9
  mv t2, a5
  jalr ra, 0(t2)
  li a0, 0
  li a7, 93
  ecall
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, /*require_dispatch_proof=*/true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().proven_dispatches, 1u);
}

TEST(BinaryVerifyTest, OneUnprotectedPathDefeatsTheProof) {
  // Diamond: ld.ro on one arm, plain ld on the other. The join must be
  // Unknown — "on all paths" is the whole point.
  const char* source = R"(
.section .text
_start:
  la t0, table
  beq a0, zero, .L_safe
  ld t1, 0(t0)
  j .L_join
.L_safe:
  ld.ro t1, (t0), 9
.L_join:
  mv t2, t1
  jalr ra, 0(t2)
  li a7, 93
  ecall
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  EXPECT_TRUE(VerifyAsm(source, false).ok());
  const Report report = VerifyAsm(source, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinUnprovenDispatch));
  EXPECT_EQ(report.stats().proven_dispatches, 0u);
}

TEST(BinaryVerifyTest, BothPathsProtectedProves) {
  const char* source = R"(
.section .text
_start:
  la t0, table
  beq a0, zero, .L_a
  ld.ro t1, (t0), 9
  j .L_join
.L_a:
  ld.ro t1, (t0), 9
.L_join:
  mv t2, t1
  jalr ra, 0(t2)
  li a7, 93
  ecall
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().proven_dispatches, 1u);
}

TEST(BinaryVerifyTest, StaticTargetOutsideKeyedSection) {
  // `secret` lives in the key-6 frame but the load names key 5 (which
  // exists, so rule 22 stays quiet — only the resolved-target rule 23
  // can see this bug).
  const char* source = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  li a7, 93
  ecall
.section .rodata.key.5
other:
  .quad 1
.section .rodata.key.6
secret:
  .quad 2
)";
  const Report report = VerifyAsm(source, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinStaticTargetMismatch));
}

TEST(BinaryVerifyTest, CallSummaryPreservesDispatchProof) {
  // A call between the ld.ro and the dispatch used to invalidate the
  // spilled proof conservatively. The summary for `helper` proves it
  // never stores outside its own frame, so the slot — and the dispatch
  // proof — survive the call.
  const char* source = R"(
.section .text
_start:
  addi sp, sp, -32
  la t0, table
  ld.ro t1, (t0), 9
  sd t1, 8(sp)
  call helper
  ld t2, 8(sp)
  jalr ra, 0(t2)
  li a7, 93
  ecall
helper:
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().proven_dispatches, 1u);
}

TEST(BinaryVerifyTest, FrameUnsafeCalleeDropsDispatchProof) {
  // Same shape, but the helper stores through a non-sp pointer. Its
  // summary is not frame-safe, the caller's spilled slots are dropped
  // across the call, and the dispatch is unproven again.
  const char* source = R"(
.section .text
_start:
  addi sp, sp, -32
  la t0, table
  ld.ro t1, (t0), 9
  sd t1, 8(sp)
  call helper
  ld t2, 8(sp)
  jalr ra, 0(t2)
  li a7, 93
  ecall
helper:
  la t3, buf
  sd zero, 0(t3)
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
.section .data
buf:
  .quad 0
)";
  const Report report = VerifyAsm(source, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinUnprovenDispatch));
}

TEST(BinaryVerifyTest, JsonReportCarriesSchemaAndRuleIds) {
  const char* source = R"(
.section .text
_start:
  la t2, fn
  jalr ra, 0(t2)
  li a7, 93
  ecall
fn:
  ret
)";
  const Report report = VerifyAsm(source, true);
  ASSERT_FALSE(report.ok());
  const std::string json = report.ToJson("rverify", "test.rimg", "icall");
  EXPECT_NE(json.find("\"schema\""), std::string::npos);
  EXPECT_NE(json.find("roload.verify.v1"), std::string::npos);
  EXPECT_NE(json.find("\"rule_id\""), std::string::npos);
  EXPECT_NE(json.find("bin-unproven-dispatch"), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\""), std::string::npos);
  EXPECT_NE(json.find("\"pc\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interprocedural summaries (rules 30-35): call summaries let dispatch
// proofs flow across function boundaries, and the summary rules police
// the assumptions those summaries rest on.

TEST(InterprocVerifyTest, WrapperDispatchProvedAcrossCall) {
  // The canonical wrapper shape: the ld.ro lives in the callee, the
  // jalr in the caller. Intraprocedurally a0 is clobbered by the call;
  // the summary records ret a0 = RoLoaded(9) and the dispatch is proven.
  const char* source = R"(
.section .text
_start:
  addi sp, sp, -16
  call get_handler
  mv t2, a0
  jalr ra, 0(t2)
  addi sp, sp, 16
  li a0, 0
  li a7, 93
  ecall
get_handler:
  la t0, table
  ld.ro a0, (t0), 9
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().dispatches, 1u);
  EXPECT_EQ(report.stats().proven_dispatches, 1u);
}

TEST(InterprocVerifyTest, CalleeSavedClobberIsRule30) {
  // `helper` provably leaves s1 holding a constant at its return — the
  // summary the callers rely on (callee-saved preservation) is broken.
  const char* source = R"(
.section .text
_start:
  li a0, 0
  li a7, 93
  ecall
helper:
  li s1, 5
  ret
)";
  const Report report = VerifyAsm(source, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinCalleeSavedClobbered));
}

TEST(InterprocVerifyTest, RoLoadedEscapeIsRule31) {
  // Storing an ld.ro result through a non-stack pointer leaks a keyed
  // pointee into mutable memory the verifier cannot track.
  const char* source = R"(
.section .text
_start:
  la t0, table
  ld.ro t1, (t0), 9
  la t3, buf
  sd t1, 0(t3)
  li a7, 93
  ecall
.section .rodata.key.9
table:
  .quad 7
.section .data
buf:
  .quad 0
)";
  const Report report = VerifyAsm(source, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinRoloadEscape));
}

TEST(InterprocVerifyTest, DispatchOnArgumentProvenThroughCaller) {
  // `disp` dispatches on its first argument. The only caller passes an
  // ld.ro result, so the caller-side obligation discharges cleanly.
  const char* source = R"(
.section .text
_start:
  la t0, table
  ld.ro a0, (t0), 9
  call disp
  li a0, 0
  li a7, 93
  ecall
disp:
  jalr ra, 0(a0)
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, true);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.stats().dispatches, report.stats().proven_dispatches);
}

TEST(InterprocVerifyTest, UnprovenCalleeArgIsRule32) {
  // Same dispatcher, but the caller passes a raw constant where the
  // obligation demands an ld.ro result.
  const char* source = R"(
.section .text
_start:
  li a0, 7
  call disp
  li a0, 0
  li a7, 93
  ecall
disp:
  jalr ra, 0(a0)
  ret
fn:
  ret
.section .rodata.key.9
table:
  .quad fn
)";
  const Report report = VerifyAsm(source, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinUnprovenCalleeArg));
}

TEST(InterprocVerifyTest, AddressTakenArgDispatcherIsRule33) {
  // `disp` dispatches on a0 but is itself reachable from a keyed
  // dispatch table — an indirect caller could pass anything, so the
  // obligation can never be discharged.
  const char* source = R"(
.section .text
_start:
  la t0, table
  ld.ro t1, (t0), 9
  mv t2, t1
  jalr ra, 0(t2)
  li a0, 0
  li a7, 93
  ecall
disp:
  jalr ra, 0(a0)
  ret
.section .rodata.key.9
table:
  .quad disp
)";
  const Report report = VerifyAsm(source, true);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report),
            RuleId(Rule::kBinObligationUndischargeable));
}

TEST(InterprocVerifyTest, OverwrittenReturnAddressIsRule34) {
  // `hijack` returns through a constant rather than its caller's ra —
  // a statically visible backward-edge redirect.
  const char* source = R"(
.section .text
_start:
  li a0, 0
  li a7, 93
  ecall
hijack:
  la ra, fn
  ret
fn:
  ret
)";
  const Report report = VerifyAsm(source, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinRetAddrUnproven));
}

TEST(InterprocVerifyTest, SpImbalanceIsRule35) {
  const char* source = R"(
.section .text
_start:
  li a0, 0
  li a7, 93
  ecall
leaky:
  addi sp, sp, -16
  ret
)";
  const Report report = VerifyAsm(source, false);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinSpImbalance));
}

TEST(InterprocVerifyTest, NewRuleIdsAreStable) {
  EXPECT_EQ(RuleId(Rule::kBinCalleeSavedClobbered), 30);
  EXPECT_EQ(RuleId(Rule::kBinRoloadEscape), 31);
  EXPECT_EQ(RuleId(Rule::kBinUnprovenCalleeArg), 32);
  EXPECT_EQ(RuleId(Rule::kBinObligationUndischargeable), 33);
  EXPECT_EQ(RuleId(Rule::kBinRetAddrUnproven), 34);
  EXPECT_EQ(RuleId(Rule::kBinSpImbalance), 35);
}

// ---------------------------------------------------------------------------
// Multi-violation reporting and parallel determinism.

constexpr const char* kTwoViolationSource = R"(
.section .text
_start:
  la t0, secret
  ld.ro t1, (t0), 5
  la t2, secret
  ld.ro t3, (t2), 999
  li a7, 93
  ecall
.section .rodata.key.5
other:
  .quad 1
.section .rodata.key.6
secret:
  .quad 2
)";

TEST(BinaryVerifyTest, EveryViolationIsPrintedNotJustTheSmallest) {
  // The exit code is the smallest rule id, but the text report must
  // carry one RV0NN line per violation.
  const Report report = VerifyAsm(kTwoViolationSource, false);
  ASSERT_GE(report.violations().size(), 2u);
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kBinKeyUnmapped));
  const std::string text = report.ToText();
  EXPECT_NE(text.find("RV022"), std::string::npos);
  EXPECT_NE(text.find("RV023"), std::string::npos);
}

TEST(BinaryVerifyTest, ParallelVerificationIsBitIdentical) {
  const auto run = [](const asmtool::LinkImage& image, unsigned jobs,
                      bool icall) {
    Report report;
    BinaryPolicy policy;
    policy.name = icall ? "icall" : "none";
    policy.require_protected_dispatch = icall;
    VerifyImageOptions options;
    options.jobs = jobs;
    VerifyImage(image, policy, nullptr, &report, options);
    return report;
  };
  // A clean full build (many functions, proofs across calls)...
  const ir::Module module =
      workloads::Generate(workloads::SpecCint2006Suite(0.001).front());
  const core::BuildResult build = MustBuild(module, core::Defense::kICall);
  const Report serial = run(build.image, 1, true);
  const Report wide = run(build.image, 8, true);
  EXPECT_TRUE(serial.ok()) << serial.ToText();
  EXPECT_EQ(serial.ToText(), wide.ToText());
  EXPECT_EQ(serial.ToJson("t", "img", "icall"),
            wide.ToJson("t", "img", "icall"));
  // ...and a violating image: diagnostics keep their order under fan-out.
  const asmtool::LinkImage bad = MustAssemble(kTwoViolationSource);
  EXPECT_EQ(run(bad, 1, false).ToText(), run(bad, 7, false).ToText());
}

TEST(CleanVerifyTest, RpcServerImageVerifiesUnderICall) {
  // The SMP workload's image is single-image verifiable: its dispatch
  // table loads are ld.ro like any other keyed dispatch.
  const ir::Module module =
      workloads::Generate(workloads::RpcServerWorkload(40));
  for (const core::Defense defense :
       {core::Defense::kNone, core::Defense::kICall}) {
    const core::BuildResult build = MustBuild(module, defense, true);
    const Report report = core::Verify(build);
    EXPECT_TRUE(report.ok()) << report.ToText();
    if (defense == core::Defense::kICall) {
      EXPECT_GT(report.stats().dispatches, 0u);
      EXPECT_EQ(report.stats().dispatches,
                report.stats().proven_dispatches);
    }
  }
}

// ---------------------------------------------------------------------------
// Gadget census.

TEST(GadgetScanTest, FindsRetGadgetInHandAssembly) {
  const asmtool::LinkImage image = MustAssemble(R"(
.section .text
_start:
  li a0, 0
  li a7, 93
  ecall
helper:
  add a0, a0, a1
  ret
)");
  const GadgetCensus census = ScanGadgets(image);
  EXPECT_GT(census.stats.gadgets, 0u);
  EXPECT_GT(census.stats.ret_terminated, 0u);
  bool helper_ret = false;
  for (const Gadget& g : census.gadgets) {
    if (g.function == "helper" && g.kind == Gadget::Kind::kRet) {
      helper_ret = true;
    }
  }
  EXPECT_TRUE(helper_ret);
}

TEST(GadgetScanTest, JsonCensusCarriesSchema) {
  const asmtool::LinkImage image = MustAssemble(R"(
.section .text
_start:
  li a7, 93
  ecall
)");
  const std::string json = ScanGadgets(image).ToJson("tiny.rimg");
  EXPECT_NE(json.find("roload.gadgets.v1"), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"exec_bytes\""), std::string::npos);
}

TEST(GadgetScanTest, CompressedBuildHasCompressedGadgets) {
  // Under ICall+compressed a vtable dispatch is `c.ld.ro; ...; jalr` —
  // the chain through the 16-bit parcel is a compressed gadget, the
  // class the RISC-V ROP literature calls out. Only the unified vtable
  // key fits the compressed encoding's key field, so pick a C++-like
  // benchmark (virtual dispatch), not a C-like one.
  const workloads::WorkloadSpec* spec = nullptr;
  const auto suite = workloads::SpecCint2006Suite(0.001);
  for (const auto& s : suite) {
    if (s.name == "471.omnetpp_like") spec = &s;
  }
  ASSERT_NE(spec, nullptr);
  const ir::Module module = workloads::Generate(*spec);
  const core::BuildResult build =
      MustBuild(module, core::Defense::kICall, /*compressed=*/true);
  const GadgetCensus census = ScanGadgets(build.image);
  EXPECT_GT(census.stats.gadgets, 0u);
  EXPECT_GT(census.stats.ret_terminated, 0u);
  EXPECT_GT(census.stats.compressed, 0u);
}

TEST(GadgetScanTest, CommittedCleanSuiteCensusIsCurrent) {
  // Aggregated gadget stats over the compressed ICall suite, pinned as
  // a committed artifact so attack-surface drift shows up in review.
  // Regenerate with:
  //   ROLOAD_REGEN_GADGETS=1 ./roload_tests \
  //     --gtest_filter='*CommittedCleanSuiteCensusIsCurrent*'
  const auto emit_stats = [](JsonWriter* json, const GadgetStats& s) {
    json->BeginObject();
    json->KV("gadgets", s.gadgets);
    json->KV("ret_terminated", s.ret_terminated);
    json->KV("jalr_terminated", s.jalr_terminated);
    json->KV("misaligned", s.misaligned);
    json->KV("compressed", s.compressed);
    json->KV("in_keyed_ro", s.in_keyed_ro);
    json->KV("in_keyed_target", s.in_keyed_target);
    json->KV("exec_bytes", s.exec_bytes);
    json->EndObject();
  };
  GadgetStats totals;
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "roload.gadgets.v1");
  json.KV("suite", "cint2006-like icall compressed scale 0.001");
  json.KV("max_insts", static_cast<std::uint64_t>(8));
  json.Key("images");
  json.BeginArray();
  for (const auto& spec : workloads::SpecCint2006Suite(0.001)) {
    const core::BuildResult build =
        MustBuild(workloads::Generate(spec), core::Defense::kICall,
                  /*compressed=*/true);
    const GadgetCensus census = ScanGadgets(build.image);
    json.BeginObject();
    json.KV("name", spec.name);
    json.Key("stats");
    emit_stats(&json, census.stats);
    json.EndObject();
    totals.gadgets += census.stats.gadgets;
    totals.ret_terminated += census.stats.ret_terminated;
    totals.jalr_terminated += census.stats.jalr_terminated;
    totals.misaligned += census.stats.misaligned;
    totals.compressed += census.stats.compressed;
    totals.in_keyed_ro += census.stats.in_keyed_ro;
    totals.in_keyed_target += census.stats.in_keyed_target;
    totals.exec_bytes += census.stats.exec_bytes;
  }
  json.EndArray();
  json.Key("totals");
  emit_stats(&json, totals);
  json.EndObject();
  const std::string current = json.str() + "\n";

  // The acceptance bar: the clean suite exposes at least one
  // compressed-instruction gadget.
  EXPECT_GT(totals.compressed, 0u);

  const std::string path =
      std::string(ROLOAD_TESTS_DATA_DIR) + "/GADGETS_clean_suite.json";
  if (std::getenv("ROLOAD_REGEN_GADGETS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << current;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed census: " << path;
  const std::string committed((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
  EXPECT_EQ(committed, current)
      << "gadget census drifted; regenerate with ROLOAD_REGEN_GADGETS=1";
}

// ---------------------------------------------------------------------------
// Loader cross-check (rule 29): the kernel-built page tables must map
// every keyed section read-only with the image's key.

constexpr const char* kKeyedGuest = R"(
.section .text
_start:
  la t0, table
  ld.ro t1, (t0), 77
  mv a0, t1
  li a7, 93
  ecall
.section .rodata.key.77
table: .quad 0
)";

TEST(LoaderVerifyTest, RoloadAwareKernelPassesCrossCheck) {
  const asmtool::LinkImage image = MustAssemble(kKeyedGuest);
  core::System system({.variant = core::SystemVariant::kFullRoload});
  ASSERT_TRUE(system.Load(image).ok());
  const Report report = core::VerifyLoadedImage(system, image);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_GE(report.stats().keyed_sections, 1u);
}

TEST(LoaderVerifyTest, RoloadUnawareKernelIsFlagged) {
  // The processor-modified variant runs an unmodified kernel that knows
  // nothing about section keys and maps everything with key 0 — exactly
  // the deployment mistake rule 29 exists to catch.
  const asmtool::LinkImage image = MustAssemble(kKeyedGuest);
  core::System system({.variant = core::SystemVariant::kProcessorModified});
  ASSERT_TRUE(system.Load(image).ok());
  const Report report = core::VerifyLoadedImage(system, image);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kLoaderKeyMismatch));
  EXPECT_NE(report.ToText().find("roload-unaware loader?"),
            std::string::npos);
}

TEST(LoaderVerifyTest, RemappedWritableAllowlistIsFlagged) {
  // Sabotage after a clean load: mprotect the allowlist page writable
  // (key dropped to 0). Both defects must be reported.
  const asmtool::LinkImage image = MustAssemble(kKeyedGuest);
  core::System system({.variant = core::SystemVariant::kFullRoload});
  ASSERT_TRUE(system.Load(image).ok());
  std::uint64_t table_vaddr = 0;
  for (const auto& section : image.sections) {
    if (section.key == 77) table_vaddr = section.vaddr;
  }
  ASSERT_NE(table_vaddr, 0u);
  ASSERT_TRUE(system.kernel()
                  .address_space()
                  ->Protect(table_vaddr, 1, kernel::PageProt::Rw())
                  .ok());
  const Report report = core::VerifyLoadedImage(system, image);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kLoaderKeyMismatch));
  EXPECT_NE(report.ToText().find("mapped writable"), std::string::npos);
}

TEST(LoaderVerifyTest, RequiresALoadedProcess) {
  const asmtool::LinkImage image = MustAssemble(kKeyedGuest);
  core::System system({.variant = core::SystemVariant::kFullRoload});
  const Report report = core::VerifyLoadedImage(system, image);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(SmallestRuleId(report), RuleId(Rule::kLoaderKeyMismatch));
}

}  // namespace
}  // namespace roload::verify
