// CPU execution tests: ALU semantics validated against host-computed
// golden values (parameterized property sweeps), load/store widths and
// sign extension, control flow, M-extension edge cases, trap behaviour,
// and the ld.ro execution paths on all system variants.
#include <gtest/gtest.h>

#include "support/rng.h"
#include "support/strings.h"
#include "tests/guest_util.h"

namespace roload {
namespace {

using testing::ExpectExit;
using testing::RunGuest;

std::string ExitWith(const std::string& body) {
  return ".section .text\n_start:\n" + body + "\n  li a7, 93\n  ecall\n";
}

// ---------------------------------------------------------------------------
// ALU property sweep: each op computed by the guest and compared against a
// host-side golden model. Result is reduced mod 64 via two probes (low and
// high bits) so full-width values are checked.
struct AluCase {
  const char* mnemonic;
  std::int64_t (*golden)(std::int64_t, std::int64_t);
};

const AluCase kAluCases[] = {
    {"add", [](std::int64_t a, std::int64_t b) { return a + b; }},
    {"sub", [](std::int64_t a, std::int64_t b) { return a - b; }},
    {"and", [](std::int64_t a, std::int64_t b) { return a & b; }},
    {"or", [](std::int64_t a, std::int64_t b) { return a | b; }},
    {"xor", [](std::int64_t a, std::int64_t b) { return a ^ b; }},
    {"mul", [](std::int64_t a, std::int64_t b) { return a * b; }},
    {"slt",
     [](std::int64_t a, std::int64_t b) { return std::int64_t{a < b}; }},
    {"sltu",
     [](std::int64_t a, std::int64_t b) {
       return std::int64_t{static_cast<std::uint64_t>(a) <
                           static_cast<std::uint64_t>(b)};
     }},
    {"sll",
     [](std::int64_t a, std::int64_t b) { return a << (b & 63); }},
    {"srl",
     [](std::int64_t a, std::int64_t b) {
       return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                        (b & 63));
     }},
    {"sra", [](std::int64_t a, std::int64_t b) { return a >> (b & 63); }},
    {"addw",
     [](std::int64_t a, std::int64_t b) {
       return static_cast<std::int64_t>(static_cast<std::int32_t>(a + b));
     }},
    {"subw",
     [](std::int64_t a, std::int64_t b) {
       return static_cast<std::int64_t>(static_cast<std::int32_t>(a - b));
     }},
    {"mulw",
     [](std::int64_t a, std::int64_t b) {
       return static_cast<std::int64_t>(static_cast<std::int32_t>(a * b));
     }},
};

class AluGoldenTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluGoldenTest, MatchesHostSemantics) {
  const AluCase& test_case = GetParam();
  Rng rng(std::string_view(test_case.mnemonic).size() * 977 + 5);
  for (int trial = 0; trial < 8; ++trial) {
    // Operands that fit the li pseudo-expansion (32-bit signed).
    const auto a = static_cast<std::int64_t>(
        static_cast<std::int32_t>(rng.NextU64()));
    const auto b = static_cast<std::int64_t>(
        static_cast<std::int32_t>(rng.NextU64()));
    const std::int64_t golden = test_case.golden(a, b);
    // probe = (golden ^ (golden >> 32)) & 63 exercises both halves.
    const std::int64_t probe = (golden ^ (golden >> 32)) & 63;
    const std::string body = StrFormat(
        "  li t0, %lld\n"
        "  li t1, %lld\n"
        "  %s t2, t0, t1\n"
        "  srai t3, t2, 32\n"
        "  xor a0, t2, t3\n"
        "  andi a0, a0, 63\n",
        static_cast<long long>(a), static_cast<long long>(b),
        test_case.mnemonic);
    ExpectExit(ExitWith(body), probe);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AluGoldenTest, ::testing::ValuesIn(kAluCases),
                         [](const auto& info) {
                           return std::string(info.param.mnemonic);
                         });

// ---------------------------------------------------------------------------
// Division edge cases (RISC-V defines them, no traps).
TEST(CpuDivTest, DivideByZero) {
  ExpectExit(ExitWith("  li t0, 42\n  li t1, 0\n  div t2, t0, t1\n"
                      "  andi a0, t2, 63\n"),
             63);  // -1 & 63
  ExpectExit(ExitWith("  li t0, 42\n  li t1, 0\n  rem t2, t0, t1\n"
                      "  andi a0, t2, 63\n"),
             42);
  ExpectExit(ExitWith("  li t0, 42\n  li t1, 0\n  divu t2, t0, t1\n"
                      "  andi a0, t2, 63\n"),
             63);
  ExpectExit(ExitWith("  li t0, 42\n  li t1, 0\n  remu t2, t0, t1\n"
                      "  andi a0, t2, 63\n"),
             42);
}

TEST(CpuDivTest, SignedOverflow) {
  // INT64_MIN / -1 = INT64_MIN; INT64_MIN % -1 = 0. Build INT64_MIN as
  // 1 << 63.
  ExpectExit(ExitWith("  li t0, 1\n  slli t0, t0, 63\n  li t1, -1\n"
                      "  div t2, t0, t1\n  srli a0, t2, 58\n"),
             32);  // top bits of INT64_MIN
  ExpectExit(ExitWith("  li t0, 1\n  slli t0, t0, 63\n  li t1, -1\n"
                      "  rem t2, t0, t1\n  andi a0, t2, 63\n"),
             0);
}

// ---------------------------------------------------------------------------
// Loads/stores: width and sign extension through .data.
TEST(CpuMemTest, WidthAndSignExtension) {
  const std::string program = R"(
.section .text
_start:
  la t0, bytes
  lb a0, 0(t0)       # 0xFF -> -1
  lbu a1, 0(t0)      # 0xFF -> 255
  lh a2, 0(t0)       # 0x80FF sign-extended
  lhu a3, 0(t0)      # 0x80FF
  add a0, a0, a1     # -1 + 255 = 254
  add a2, a2, a3     # -32513 + 33023 = 510
  add a0, a0, a2     # 764
  andi a0, a0, 63
  li a7, 93
  ecall
.section .data
bytes:
  .byte 0xFF, 0x80, 0, 0
)";
  testing::ExpectExit(program, 764 & 63);
}

TEST(CpuMemTest, StoreLoadRoundTripAllWidths) {
  const std::string program = R"(
.section .text
_start:
  la t0, buf
  li t1, 0x12345678
  sb t1, 0(t0)
  sh t1, 2(t0)
  sw t1, 4(t0)
  sd t1, 8(t0)
  lbu a0, 0(t0)      # 0x78
  lhu a1, 2(t0)      # 0x5678
  lwu a2, 4(t0)      # 0x12345678
  ld  a3, 8(t0)
  sub a1, a1, a0     # 0x5600
  sub a2, a2, a3     # 0
  add a0, a1, a2
  srli a0, a0, 8     # 0x56
  andi a0, a0, 63
  li a7, 93
  ecall
.section .data
buf:
  .zero 16
)";
  testing::ExpectExit(program, 0x56 & 63);
}

TEST(CpuMemTest, MisalignedLoadTraps) {
  const auto run = RunGuest(ExitWith("  la t0, _start\n  addi t0, t0, 1\n"
                                     "  ld a0, 0(t0)\n"));
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kLoadAddressMisaligned);
}

TEST(CpuMemTest, StoreToCodeTraps) {
  const auto run =
      RunGuest(ExitWith("  la t0, _start\n  li t1, 0\n  sd t1, 0(t0)\n"));
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kStorePageFault);
  EXPECT_EQ(run.result.signal, kernel::kSigsegv);
}

TEST(CpuMemTest, LoadFromUnmappedTraps) {
  const auto run = RunGuest(ExitWith("  li t0, 0x7000000\n  ld a0, 0(t0)\n"));
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kLoadPageFault);
}

// ---------------------------------------------------------------------------
// Control flow.
TEST(CpuControlTest, BranchMatrix) {
  struct Case {
    const char* op;
    std::int64_t a, b;
    bool taken;
  };
  const Case cases[] = {
      {"beq", 5, 5, true},    {"beq", 5, 6, false},
      {"bne", 5, 6, true},    {"bne", 5, 5, false},
      {"blt", -1, 0, true},   {"blt", 0, -1, false},
      {"bge", 0, -1, true},   {"bge", -1, 0, false},
      {"bltu", 0, -1, true},  {"bltu", -1, 0, false},  // unsigned wrap
      {"bgeu", -1, 0, true},  {"bgeu", 0, -1, false},
  };
  for (const Case& test_case : cases) {
    const std::string body = StrFormat(
        "  li t0, %lld\n  li t1, %lld\n  %s t0, t1, taken\n"
        "  li a0, 0\n  j out\ntaken:\n  li a0, 1\nout:\n",
        static_cast<long long>(test_case.a),
        static_cast<long long>(test_case.b), test_case.op);
    ExpectExit(ExitWith(body), test_case.taken ? 1 : 0);
  }
}

TEST(CpuControlTest, CallAndReturn) {
  const std::string program = R"(
.section .text
_start:
  li a0, 20
  call double_it
  call double_it
  li a7, 93
  ecall
double_it:
  add a0, a0, a0
  ret
)";
  testing::ExpectExit(program, 80);
}

TEST(CpuControlTest, IndirectJumpClearsLowBit) {
  // jalr must clear bit 0 of the target (RISC-V semantics).
  const std::string program = R"(
.section .text
_start:
  la t0, target
  addi t0, t0, 1
  jalr ra, 0(t0)
target:
  li a0, 9
  li a7, 93
  ecall
)";
  testing::ExpectExit(program, 9);
}

TEST(CpuControlTest, LoopCycleAccounting) {
  // 1000-iteration countdown; verify instruction count is proportional.
  const auto run = RunGuest(ExitWith(
      "  li t0, 1000\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\n"
      "  li a0, 7\n"));
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited);
  EXPECT_GT(run.result.instructions, 2000u);
  EXPECT_LT(run.result.instructions, 2100u);
  EXPECT_GE(run.result.cycles, run.result.instructions);
}

// ---------------------------------------------------------------------------
// ROLoad execution semantics.
std::string RoLoadProgram(unsigned key) {
  return StrFormat(R"(
.section .text
_start:
  la t0, allowlist
  ld.ro a0, (t0), %u
  andi a0, a0, 63
  li a7, 93
  ecall
.section .rodata.key.111
allowlist:
  .quad 42
)",
                   key);
}

TEST(RoLoadExecTest, MatchingKeyLoads) {
  testing::ExpectExit(RoLoadProgram(111), 42);
}

TEST(RoLoadExecTest, WrongKeyRaisesRoLoadFault) {
  const auto run = RunGuest(RoLoadProgram(112));
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kRoLoadPageFault);
  EXPECT_TRUE(run.result.roload_violation);
  EXPECT_EQ(run.result.signal, kernel::kSigsegv);
}

TEST(RoLoadExecTest, WritableTargetRaisesRoLoadFault) {
  const std::string program = R"(
.section .text
_start:
  la t0, writable
  ld.ro a0, (t0), 111
  li a7, 93
  ecall
.section .data
writable:
  .quad 42
)";
  const auto run = RunGuest(program);
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kRoLoadPageFault);
}

TEST(RoLoadExecTest, IllegalOnBaselineProcessor) {
  const auto run =
      RunGuest(RoLoadProgram(111), core::SystemVariant::kBaseline);
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kIllegalInstruction);
  EXPECT_EQ(run.result.signal, kernel::kSigill);
}

TEST(RoLoadExecTest, KeyFaultOnUnmodifiedKernel) {
  // Processor decodes ld.ro but the kernel never tagged the pages.
  const auto run =
      RunGuest(RoLoadProgram(111), core::SystemVariant::kProcessorModified);
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kRoLoadPageFault);
  // The unmodified kernel cannot attribute the fault to ROLoad.
  EXPECT_FALSE(run.result.roload_violation);
}

TEST(RoLoadExecTest, CompressedLdRoWorks) {
  const std::string program = R"(
.section .text
_start:
  la s1, allowlist
  c.ld.ro a5, (s1), 7
  andi a0, a5, 63
  li a7, 93
  ecall
.section .rodata.key.7
allowlist:
  .quad 41
)";
  testing::ExpectExit(program, 41);
}

TEST(RoLoadExecTest, NarrowRoLoadWidths) {
  const std::string program = R"(
.section .text
_start:
  la t0, allowlist
  lw.ro a0, (t0), 9
  la t0, bytes
  lb.ro a1, (t0), 9
  add a0, a0, a1
  andi a0, a0, 63
  li a7, 93
  ecall
.section .rodata.key.9
allowlist:
  .word 30
  .word 0
bytes:
  .byte 12
)";
  testing::ExpectExit(program, 42);
}

TEST(RoLoadExecTest, RoLoadCountsInStats) {
  const auto run = RunGuest(RoLoadProgram(111));
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(run.system->cpu().stats().roload_loads, 1u);
}

TEST(CpuTrapTest, EbreakRaisesBreakpoint) {
  const auto run = RunGuest(ExitWith("  ebreak\n"));
  EXPECT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kBreakpoint);
}

TEST(CpuTrapTest, FaultPcIsReported) {
  const auto run = RunGuest(ExitWith("  li t0, 0x7000000\n  ld a0, 0(t0)\n"));
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_EQ(run.result.fault_addr, 0x7000000u);
  EXPECT_GE(run.result.fault_pc, 0x10000u);
}

// ---------------------------------------------------------------------------
// Host fast path differentials: the decode cache, indexed TLB lookup,
// cache index math and unchecked memory accessors are host-only — a guest
// run with all of them off (the reference simulator) must be bit-identical
// in every architectural and micro-architectural observable.

core::SystemConfig ReferenceConfig() {
  core::SystemConfig config;
  cpu::SetHostFastPaths(&config.cpu, false);
  return config;
}

// Loops over loads, stores, branches and a hot ld.ro against a page the
// guest itself mmaps, publishes and rekeys — every fast path (decode
// cache, both TLBs, both caches, the kernel flush paths) gets traffic.
constexpr char kMixedWorkload[] = R"(
.section .text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a7, 222
  ecall
  mv s0, a0
  li t0, 1234
  sd t0, 0(s0)
  mv a0, s0
  li a1, 4096
  li a2, 0x150001   # PROT_READ | key 21 << 16
  li a7, 226
  ecall
  li s1, 0
  li s2, 500
loop:
  ld.ro t0, (s0), 21
  add s1, s1, t0
  la t1, table
  ld t2, 0(t1)
  add s1, s1, t2
  la t3, scratch
  sd s1, 0(t3)
  addi s2, s2, -1
  bnez s2, loop
  andi a0, s1, 255
  li a7, 93
  ecall
.section .data
scratch: .zero 8
.section .rodata.key.3
table: .quad 7
)";

TEST(HostFastPathTest, GuestRunBitIdenticalWithFastPathsOff) {
  const auto fast = RunGuest(kMixedWorkload, core::SystemConfig{});
  const auto ref = RunGuest(kMixedWorkload, ReferenceConfig());
  ASSERT_EQ(fast.result.kind, kernel::ExitKind::kExited);
  ASSERT_EQ(ref.result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(fast.result.exit_code, ref.result.exit_code);
  EXPECT_EQ(fast.result.cycles, ref.result.cycles);
  EXPECT_EQ(fast.result.instructions, ref.result.instructions);
  EXPECT_EQ(fast.result.peak_mem_kib, ref.result.peak_mem_kib);
  const auto& fs = fast.system->cpu().stats();
  const auto& rs = ref.system->cpu().stats();
  EXPECT_EQ(fs.loads, rs.loads);
  EXPECT_EQ(fs.stores, rs.stores);
  EXPECT_EQ(fs.roload_loads, rs.roload_loads);
  EXPECT_EQ(fs.branches, rs.branches);
  EXPECT_EQ(fs.taken_branches, rs.taken_branches);
  EXPECT_EQ(fs.indirect_jumps, rs.indirect_jumps);
  EXPECT_EQ(fast.system->cpu().itlb_stats().hits,
            ref.system->cpu().itlb_stats().hits);
  EXPECT_EQ(fast.system->cpu().itlb_stats().misses,
            ref.system->cpu().itlb_stats().misses);
  EXPECT_EQ(fast.system->cpu().dtlb_stats().hits,
            ref.system->cpu().dtlb_stats().hits);
  EXPECT_EQ(fast.system->cpu().dtlb_stats().misses,
            ref.system->cpu().dtlb_stats().misses);
  EXPECT_EQ(fast.system->cpu().dtlb_stats().key_checks,
            ref.system->cpu().dtlb_stats().key_checks);
  EXPECT_EQ(fast.system->cpu().icache_stats().hits,
            ref.system->cpu().icache_stats().hits);
  EXPECT_EQ(fast.system->cpu().icache_stats().misses,
            ref.system->cpu().icache_stats().misses);
  EXPECT_EQ(fast.system->cpu().dcache_stats().hits,
            ref.system->cpu().dcache_stats().hits);
  EXPECT_EQ(fast.system->cpu().dcache_stats().misses,
            ref.system->cpu().dcache_stats().misses);
  EXPECT_EQ(fast.system->cpu().dcache_stats().writebacks,
            ref.system->cpu().dcache_stats().writebacks);
  // The full telemetry registry in one shot — any counter drift fails.
  EXPECT_EQ(fast.system->trace().counters().Snapshot(),
            ref.system->trace().counters().Snapshot());
}

TEST(HostFastPathTest, FaultBitIdenticalWithFastPathsOff) {
  // A key-mismatch ld.ro: the fault cause, address, pc and cycle count
  // must not depend on which lookup path detected it.
  const std::string source = R"(
.section .text
_start:
  la t0, list
  ld.ro a0, (t0), 8
  li a7, 93
  ecall
.section .rodata.key.9
list: .quad 5
)";
  const auto fast = RunGuest(source, core::SystemConfig{});
  const auto ref = RunGuest(source, ReferenceConfig());
  ASSERT_EQ(fast.result.kind, kernel::ExitKind::kKilled);
  ASSERT_EQ(ref.result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(fast.result.roload_violation);
  EXPECT_EQ(fast.result.trap_cause, ref.result.trap_cause);
  EXPECT_EQ(fast.result.fault_addr, ref.result.fault_addr);
  EXPECT_EQ(fast.result.fault_pc, ref.result.fault_pc);
  EXPECT_EQ(fast.result.cycles, ref.result.cycles);
}

TEST(HostFastPathTest, KeyRotationAfterMprotectIsObserved) {
  // Regression: a hot ld.ro warms the D-TLB last-translation register;
  // the mprotect rekey (sfence.vma path) must drop it so the next ld.ro
  // with the now-stale key faults instead of being served the old PTE.
  const std::string source = R"(
.section .text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a7, 222
  ecall
  mv s0, a0
  li t0, 55
  sd t0, 0(s0)
  mv a0, s0
  li a1, 4096
  li a2, 0x150001   # PROT_READ | key 21 << 16
  li a7, 226
  ecall
  ld.ro t1, (s0), 21
  mv a0, s0
  li a1, 4096
  li a2, 0x90001    # PROT_READ | key 9 << 16
  li a7, 226
  ecall
  ld.ro t2, (s0), 21
  li a0, 0
  li a7, 93
  ecall
)";
  const auto run = RunGuest(source, core::SystemConfig{});
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kKilled);
  EXPECT_TRUE(run.result.roload_violation);
  EXPECT_EQ(run.result.trap_cause, isa::TrapCause::kRoLoadPageFault);
}

TEST(HostFastPathTest, SelfModifyingCodeIsDecodedFresh) {
  // Regression for the decode cache's raw-bit validation: the guest
  // copies routine f1 into an RWX page, calls it, overwrites the same
  // bytes with f2 and calls again. A decode cache that trusted pc alone
  // would replay f1's decode and exit 14 instead of 16.
  const std::string source = R"(
.section .text
_start:
  li a0, 0
  li a1, 4096
  li a2, 7          # PROT_READ | PROT_WRITE | PROT_EXEC
  li a7, 222
  ecall
  mv s0, a0
  la t0, f1
  ld t1, 0(t0)
  sd t1, 0(s0)
  ld t1, 8(t0)
  sd t1, 8(s0)
  jalr ra, 0(s0)
  mv s1, a0
  la t0, f2
  ld t1, 0(t0)
  sd t1, 0(s0)
  ld t1, 8(t0)
  sd t1, 8(s0)
  jalr ra, 0(s0)
  add a0, a0, s1
  li a7, 93
  ecall
.align 3
f1:
  li a0, 7
  ret
  nop
  nop
.align 3
f2:
  li a0, 9
  ret
  nop
  nop
)";
  const auto fast = RunGuest(source, core::SystemConfig{});
  const auto ref = RunGuest(source, ReferenceConfig());
  ASSERT_EQ(fast.result.kind, kernel::ExitKind::kExited)
      << isa::TrapCauseName(fast.result.trap_cause);
  EXPECT_EQ(fast.result.exit_code, 16);
  ASSERT_EQ(ref.result.kind, kernel::ExitKind::kExited);
  EXPECT_EQ(ref.result.exit_code, 16);
  EXPECT_EQ(fast.result.cycles, ref.result.cycles);
}

TEST(CpuStatsTest, CountersTrackInstructionMix) {
  const auto run = RunGuest(ExitWith(
      "  la t0, _start\n  ld t1, 0(t0)\n  la t2, buf\n  sd t1, 0(t2)\n"
      "  li a0, 0\n.section .data\nbuf: .zero 8\n.section .text\n"));
  ASSERT_EQ(run.result.kind, kernel::ExitKind::kExited);
  const auto& stats = run.system->cpu().stats();
  EXPECT_GE(stats.loads, 1u);
  EXPECT_GE(stats.stores, 1u);
  EXPECT_EQ(stats.roload_loads, 0u);
}

}  // namespace
}  // namespace roload
