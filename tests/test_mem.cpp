// Memory substrate tests: physical memory accessors, PTE field packing
// (including the ROLoad key in bits [63:54]), and the Sv39 page walker.
#include <gtest/gtest.h>

#include "mem/page_table.h"
#include "mem/phys_memory.h"

namespace roload::mem {
namespace {

TEST(PhysMemoryTest, LittleEndianMultiWidth) {
  PhysMemory memory(4096);
  memory.Write(0, 8, 0x1122334455667788ull);
  EXPECT_EQ(memory.Read(0, 1), 0x88u);
  EXPECT_EQ(memory.Read(0, 2), 0x7788u);
  EXPECT_EQ(memory.Read(0, 4), 0x55667788u);
  EXPECT_EQ(memory.Read(4, 4), 0x11223344u);
  EXPECT_EQ(memory.Read(0, 8), 0x1122334455667788ull);
}

TEST(PhysMemoryTest, ContainsBoundaries) {
  PhysMemory memory(4096);
  EXPECT_TRUE(memory.Contains(4088, 8));
  EXPECT_FALSE(memory.Contains(4089, 8));
  EXPECT_TRUE(memory.Contains(4095, 1));
  EXPECT_FALSE(memory.Contains(4096, 1));
}

TEST(PhysMemoryTest, BlockOpsAndFill) {
  PhysMemory memory(8192);
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  memory.WriteBlock(100, data, sizeof(data));
  EXPECT_EQ(memory.Read(100, 1), 1u);
  EXPECT_EQ(memory.Read(104, 1), 5u);
  memory.Fill(100, 5, 0xAB);
  EXPECT_EQ(memory.Read(102, 1), 0xABu);
}

class PteKeyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PteKeyTest, KeyFieldRoundTripsWithoutDisturbingOthers) {
  const std::uint32_t key = GetParam();
  const Pte pte = Pte::MakeLeaf(0x12345, kPteRead | kPteUser, key);
  EXPECT_EQ(pte.key(), key);
  EXPECT_EQ(pte.ppn(), 0x12345u);
  EXPECT_TRUE(pte.valid());
  EXPECT_TRUE(pte.readable());
  EXPECT_FALSE(pte.writable());
  EXPECT_TRUE(pte.user());
  // Key occupies exactly bits [63:54].
  EXPECT_EQ(pte.raw() >> 54, key);
}

INSTANTIATE_TEST_SUITE_P(KeySweep, PteKeyTest,
                         ::testing::Values(0u, 1u, 2u, 77u, 111u, 511u,
                                           512u, 1000u, 1023u));

TEST(PteTest, SetKeyMutates) {
  Pte pte = Pte::MakeLeaf(1, kPteRead, 5);
  pte.set_key(999);
  EXPECT_EQ(pte.key(), 999u);
  EXPECT_EQ(pte.ppn(), 1u);
}

TEST(PteTest, LeafVsNonLeaf) {
  EXPECT_TRUE(Pte::MakeLeaf(1, kPteRead, 0).leaf());
  EXPECT_FALSE(Pte::MakeNonLeaf(1).leaf());
  EXPECT_TRUE(Pte::MakeNonLeaf(1).valid());
}

TEST(PteTest, SetFlagsKeepsKeyAndPpn) {
  Pte pte = Pte::MakeLeaf(0x777, kPteRead | kPteWrite, 321);
  pte.set_flags(kPteValid | kPteRead);
  EXPECT_FALSE(pte.writable());
  EXPECT_EQ(pte.key(), 321u);
  EXPECT_EQ(pte.ppn(), 0x777u);
}

TEST(CanonicalTest, Sv39Rules) {
  EXPECT_TRUE(IsCanonicalSv39(0));
  EXPECT_TRUE(IsCanonicalSv39(0x3F'FFFF'FFFFull));        // top of low half
  EXPECT_FALSE(IsCanonicalSv39(0x40'0000'0000ull));       // non-canonical
  EXPECT_TRUE(IsCanonicalSv39(0xFFFF'FFC0'0000'0000ull)); // high half
}

// Builds a 3-level table by hand: root -> mid -> leaf mapping 0x10000.
class PageWalkerTest : public ::testing::Test {
 protected:
  PageWalkerTest() : memory_(1 << 20), walker_(&memory_) {}

  void MapManual(std::uint64_t vaddr, std::uint64_t leaf_ppn,
                 std::uint64_t flags, std::uint32_t key) {
    const std::uint64_t vpn2 = (vaddr >> 30) & 0x1FF;
    const std::uint64_t vpn1 = (vaddr >> 21) & 0x1FF;
    const std::uint64_t vpn0 = (vaddr >> 12) & 0x1FF;
    memory_.Write(kRootPpn * kPageSize + vpn2 * 8, 8,
                  Pte::MakeNonLeaf(kMidPpn).raw());
    memory_.Write(kMidPpn * kPageSize + vpn1 * 8, 8,
                  Pte::MakeNonLeaf(kLeafTablePpn).raw());
    memory_.Write(kLeafTablePpn * kPageSize + vpn0 * 8, 8,
                  Pte::MakeLeaf(leaf_ppn, flags, key).raw());
  }

  static constexpr std::uint64_t kRootPpn = 1;
  static constexpr std::uint64_t kMidPpn = 2;
  static constexpr std::uint64_t kLeafTablePpn = 3;
  PhysMemory memory_;
  PageWalker walker_;
};

TEST_F(PageWalkerTest, ThreeLevelTranslation) {
  MapManual(0x10000, 0x40, kPteRead | kPteUser, 42);
  auto result = walker_.Walk(kRootPpn, 0x10ABC);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->phys_addr, 0x40ull * kPageSize + 0xABC);
  EXPECT_EQ(result->pte.key(), 42u);
  EXPECT_EQ(result->level, 0u);
  EXPECT_EQ(walker_.last_walk_accesses(), 3u);
}

TEST_F(PageWalkerTest, UnmappedReturnsNullopt) {
  MapManual(0x10000, 0x40, kPteRead, 0);
  EXPECT_FALSE(walker_.Walk(kRootPpn, 0x20000).has_value());
}

TEST_F(PageWalkerTest, NonCanonicalRejected) {
  MapManual(0x10000, 0x40, kPteRead, 0);
  EXPECT_FALSE(walker_.Walk(kRootPpn, 0x40'0000'0000ull).has_value());
}

TEST_F(PageWalkerTest, MegapageTranslation) {
  // Leaf at level 1 (2 MiB superpage): PPN low 9 bits must be zero.
  const std::uint64_t vaddr = 0x40000000ull;  // vpn2=1, vpn1=0
  memory_.Write(kRootPpn * kPageSize + 1 * 8, 8,
                Pte::MakeNonLeaf(kMidPpn).raw());
  memory_.Write(kMidPpn * kPageSize + 0 * 8, 8,
                Pte::MakeLeaf(0x200, kPteRead | kPteUser, 7).raw());
  auto result = walker_.Walk(kRootPpn, vaddr + 0x12345);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->level, 1u);
  EXPECT_EQ(result->phys_addr, 0x200ull * kPageSize + 0x12345);
  EXPECT_EQ(walker_.last_walk_accesses(), 2u);
}

TEST_F(PageWalkerTest, MisalignedSuperpageRejected) {
  memory_.Write(kRootPpn * kPageSize + 1 * 8, 8,
                Pte::MakeNonLeaf(kMidPpn).raw());
  // Superpage PPN with nonzero low bits is malformed.
  memory_.Write(kMidPpn * kPageSize + 0 * 8, 8,
                Pte::MakeLeaf(0x201, kPteRead, 0).raw());
  EXPECT_FALSE(walker_.Walk(kRootPpn, 0x40000000ull).has_value());
}

TEST_F(PageWalkerTest, InvalidIntermediateRejected) {
  // Root entry invalid.
  EXPECT_FALSE(walker_.Walk(kRootPpn, 0x10000).has_value());
}

}  // namespace
}  // namespace roload::mem
