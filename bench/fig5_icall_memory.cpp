// Figure 5: relative memory overheads of ICall and its competitor CFI on
// the full SPEC CINT2006 suite.
//
// Paper result: ICall 0.0859% vs CFI 0.0500% on average — ICall stores
// extra function pointers (the GFPTs) in pages with different keys, so it
// carries the slightly higher memory overhead; CFI only grows the code
// section. Expected shape: both far below 1%, with ICall above CFI.
#include <cstdio>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();

  campaign::CampaignSpec grid;
  grid.name = "fig5_icall_memory";
  grid.workloads = workloads::SpecCint2006Suite(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kICall),
                  campaign::ForDefense(core::Defense::kClassicCfi)};
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Figure 5: ICall vs CFI memory overheads (scale=%.2f)\n\n",
              scale);
  std::printf("%-24s | %12s | %9s %9s\n", "benchmark", "base KiB",
              "ICall m%", "CFI m%");
  bench::PrintRule(64);

  trace::TelemetrySession session("fig5_icall_memory");
  result.FillSession(&session);
  session.Record("scale", scale);
  double mem_icall = 0, mem_cfi = 0;
  int count = 0;
  for (const auto& spec : grid.workloads) {
    const auto& base = bench::MustMetrics(result, spec.name, "none");
    const auto& icall = bench::MustMetrics(result, spec.name, "ICall");
    const auto& cfi = bench::MustMetrics(result, spec.name, "CFI");
    const double m_ic =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(icall.peak_mem_kib));
    const double m_cfi =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(cfi.peak_mem_kib));
    std::printf("%-24s | %12llu | %9.4f %9.4f\n", spec.name.c_str(),
                static_cast<unsigned long long>(base.peak_mem_kib), m_ic,
                m_cfi);
    session.Record(spec.name + ".base_kib", base.peak_mem_kib);
    session.Record(spec.name + ".icall_mem_pct", m_ic);
    session.Record(spec.name + ".cfi_mem_pct", m_cfi);
    session.Record(spec.name + ".icall_image_bytes", icall.image_bytes);
    mem_icall += m_ic;
    mem_cfi += m_cfi;
    ++count;
  }
  bench::PrintRule(64);
  std::printf("%-24s | %12s | %9.4f %9.4f\n", "average", "",
              mem_icall / count, mem_cfi / count);
  std::printf("%-24s | %12s | %9.4f %9.4f\n", "paper (DAC'21)", "", 0.0859,
              0.0500);
  session.Record("average.icall_mem_pct", mem_icall / count);
  session.Record("average.cfi_mem_pct", mem_cfi / count);
  session.Record("paper.icall_mem_pct", 0.0859);
  session.Record("paper.cfi_mem_pct", 0.0500);
  bench::WriteBenchJson(session);
  return 0;
}
