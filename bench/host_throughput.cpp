// Host throughput: simulated-MIPS of the simulator itself, with the
// host-only fast paths (decode cache, indexed TLB lookup, cache index
// math) off vs on. "Off" is the reference implementation — the seed
// simulator before the fast paths landed — so the `baseline` column is a
// recorded pre-change baseline, not an estimate.
//
// The fast paths claim to be invisible to the simulation: every run pair
// is checked for bit-identical cycles, instructions, exit code and the
// full telemetry counter snapshot, and the bench exits nonzero on any
// mismatch. Workloads are the Figure 3 C++ subset (base + VCall) and the
// Figure 4 CINT2006 suite (ICall), i.e. the exact guest programs whose
// tables the fast paths must not perturb.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace roload;

namespace {

struct TimedRun {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::int64_t exit_code = 0;
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  double Mips() const {
    return seconds > 0 ? static_cast<double>(instructions) / 1e6 / seconds
                       : 0.0;
  }
};

// Runs a prebuilt image on a fresh system, wall-clock timing Run() only
// (not the build). Best-of-`reps` to shave scheduler noise; the simulated
// results of every rep are identical by construction (fresh system each
// time), so only the time varies.
TimedRun RunImage(const asmtool::LinkImage& image, bool fast_paths,
                  int reps) {
  TimedRun best;
  for (int rep = 0; rep < reps; ++rep) {
    core::SystemConfig config;
    cpu::SetHostFastPaths(&config.cpu, fast_paths);
    core::System system(config);
    if (Status status = system.Load(image); !status.ok()) {
      std::fprintf(stderr, "host_throughput: load failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const kernel::RunResult run = system.Run();
    const auto t1 = std::chrono::steady_clock::now();
    if (run.kind != kernel::ExitKind::kExited) {
      std::fprintf(stderr, "host_throughput: run did not complete\n");
      std::exit(1);
    }
    TimedRun result;
    result.cycles = run.cycles;
    result.instructions = run.instructions;
    result.exit_code = run.exit_code;
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.counters = system.trace().counters().Snapshot();
    if (rep == 0 || result.seconds < best.seconds) best = result;
  }
  return best;
}

// Any divergence between the reference and fast-path runs means a fast
// path leaked into the simulation — fail loudly, the figure tables can no
// longer be trusted.
bool CheckIdentical(const std::string& label, const TimedRun& ref,
                    const TimedRun& fast) {
  bool ok = true;
  if (ref.cycles != fast.cycles || ref.instructions != fast.instructions ||
      ref.exit_code != fast.exit_code) {
    std::fprintf(stderr,
                 "MISMATCH %s: cycles %llu/%llu instret %llu/%llu "
                 "exit %lld/%lld\n",
                 label.c_str(), static_cast<unsigned long long>(ref.cycles),
                 static_cast<unsigned long long>(fast.cycles),
                 static_cast<unsigned long long>(ref.instructions),
                 static_cast<unsigned long long>(fast.instructions),
                 static_cast<long long>(ref.exit_code),
                 static_cast<long long>(fast.exit_code));
    ok = false;
  }
  if (ref.counters != fast.counters) {
    std::fprintf(stderr, "MISMATCH %s: counter snapshots differ\n",
                 label.c_str());
    for (std::size_t i = 0;
         i < ref.counters.size() && i < fast.counters.size(); ++i) {
      if (ref.counters[i] != fast.counters[i]) {
        std::fprintf(stderr, "  %s=%llu vs %s=%llu\n",
                     ref.counters[i].first.c_str(),
                     static_cast<unsigned long long>(ref.counters[i].second),
                     fast.counters[i].first.c_str(),
                     static_cast<unsigned long long>(fast.counters[i].second));
      }
    }
    ok = false;
  }
  return ok;
}

struct SuiteTotals {
  double ref_seconds = 0.0;
  double fast_seconds = 0.0;
  std::uint64_t instructions = 0;

  double RefMips() const {
    return static_cast<double>(instructions) / 1e6 / ref_seconds;
  }
  double FastMips() const {
    return static_cast<double>(instructions) / 1e6 / fast_seconds;
  }
  double Speedup() const { return ref_seconds / fast_seconds; }
};

// One workload × one defense: build once, time both modes, verify, print
// one table row and record the numbers.
bool MeasureOne(trace::TelemetrySession* session, SuiteTotals* totals,
                const workloads::WorkloadSpec& spec, core::Defense defense,
                int reps) {
  const ir::Module module = workloads::Generate(spec);
  core::BuildOptions options;
  options.defense = defense;
  auto build = core::Build(module, options);
  if (!build.ok()) {
    std::fprintf(stderr, "host_throughput: build failed: %s\n",
                 build.status().ToString().c_str());
    std::exit(1);
  }
  const std::string label =
      spec.name + "." + std::string(core::DefenseName(defense));
  const TimedRun ref = RunImage(build->image, /*fast_paths=*/false, reps);
  const TimedRun fast = RunImage(build->image, /*fast_paths=*/true, reps);
  const bool identical = CheckIdentical(label, ref, fast);
  const double speedup =
      fast.seconds > 0 ? ref.seconds / fast.seconds : 0.0;
  std::printf("%-32s | %10.2f %10.2f | %7.2fx %s\n", label.c_str(),
              ref.Mips(), fast.Mips(), speedup, identical ? "" : "MISMATCH");
  session->Record(label + ".baseline_mips", ref.Mips());
  session->Record(label + ".optimized_mips", fast.Mips());
  session->Record(label + ".speedup", speedup);
  totals->ref_seconds += ref.seconds;
  totals->fast_seconds += fast.seconds;
  totals->instructions += ref.instructions;
  return identical;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const int reps = 2;  // best-of-2 per mode
  std::printf("Host throughput: simulated MIPS, reference vs fast paths "
              "(scale=%.2f)\n\n", scale);
  std::printf("%-32s | %10s %10s | %8s\n", "workload.defense",
              "base MIPS", "fast MIPS", "speedup");
  bench::PrintRule(70);

  trace::TelemetrySession session("host_throughput");
  session.Record("scale", scale);
  bool all_identical = true;

  // Figure 3 workloads: the C++ subset, unhardened and under VCall.
  SuiteTotals fig3;
  for (const auto& spec : workloads::SpecCppSubset(scale)) {
    all_identical &=
        MeasureOne(&session, &fig3, spec, core::Defense::kNone, reps);
    all_identical &=
        MeasureOne(&session, &fig3, spec, core::Defense::kVCall, reps);
  }
  // Figure 4 workloads: the full CINT2006 suite under ICall.
  SuiteTotals fig4;
  for (const auto& spec : workloads::SpecCint2006Suite(scale)) {
    all_identical &=
        MeasureOne(&session, &fig4, spec, core::Defense::kICall, reps);
  }

  bench::PrintRule(70);
  std::printf("%-32s | %10.2f %10.2f | %7.2fx\n", "fig3 aggregate",
              fig3.RefMips(), fig3.FastMips(), fig3.Speedup());
  std::printf("%-32s | %10.2f %10.2f | %7.2fx\n", "fig4 aggregate",
              fig4.RefMips(), fig4.FastMips(), fig4.Speedup());
  std::printf("\nbit-identical simulation across modes: %s\n",
              all_identical ? "yes" : "NO");

  session.Record("fig3.baseline_mips", fig3.RefMips());
  session.Record("fig3.optimized_mips", fig3.FastMips());
  session.Record("fig3.speedup", fig3.Speedup());
  session.Record("fig4.baseline_mips", fig4.RefMips());
  session.Record("fig4.optimized_mips", fig4.FastMips());
  session.Record("fig4.speedup", fig4.Speedup());
  session.Record("bit_identical", std::uint64_t{all_identical ? 1u : 0u});
  session.Record("required.fig3_speedup", 1.5);
  bench::WriteBenchJson(session);
  return all_identical ? 0 : 1;
}
