// Host throughput: simulated-MIPS of the simulator itself across the
// three execute tiers — the reference interpreter (every host fast path
// off: the seed simulator, so the `interp` column is a recorded
// pre-change baseline, not an estimate), the PR 2 host fast paths
// (decode cache, indexed TLB lookup, cache index math), and the
// superblock translation tier (pre-decoded blocks entered through
// guards, chained block-to-block; see docs/PERF.md).
//
// The tiers claim to be invisible to the simulation: every tier pair is
// checked for bit-identical cycles, instructions, exit code and the full
// telemetry counter snapshot, and the bench exits nonzero on any
// mismatch. Workloads are the Figure 3 C++ subset (base + VCall) and the
// Figure 4 CINT2006 suite (ICall), i.e. the exact guest programs whose
// tables the tiers must not perturb.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace roload;

namespace {

struct TimedRun {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::int64_t exit_code = 0;
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  double Mips() const {
    return seconds > 0 ? static_cast<double>(instructions) / 1e6 / seconds
                       : 0.0;
  }
};

// Runs a prebuilt image on a fresh system, wall-clock timing Run() only
// (not the build). Best-of-`reps` to shave scheduler noise; the simulated
// results of every rep are identical by construction (fresh system each
// time), so only the time varies.
TimedRun RunImage(const asmtool::LinkImage& image, cpu::ExecTier tier,
                  int reps) {
  TimedRun best;
  for (int rep = 0; rep < reps; ++rep) {
    core::SystemConfig config;
    cpu::SetExecTier(&config.cpu, tier);
    core::System system(config);
    if (Status status = system.Load(image); !status.ok()) {
      std::fprintf(stderr, "host_throughput: load failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const kernel::RunResult run = system.Run();
    const auto t1 = std::chrono::steady_clock::now();
    if (run.kind != kernel::ExitKind::kExited) {
      std::fprintf(stderr, "host_throughput: run did not complete\n");
      std::exit(1);
    }
    TimedRun result;
    result.cycles = run.cycles;
    result.instructions = run.instructions;
    result.exit_code = run.exit_code;
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.counters = system.trace().counters().Snapshot();
    if (rep == 0 || result.seconds < best.seconds) best = result;
  }
  return best;
}

// Any divergence between the reference and an accelerated tier means a
// host optimization leaked into the simulation — fail loudly, the figure
// tables can no longer be trusted.
bool CheckIdentical(const std::string& label, const TimedRun& ref,
                    const TimedRun& fast) {
  bool ok = true;
  if (ref.cycles != fast.cycles || ref.instructions != fast.instructions ||
      ref.exit_code != fast.exit_code) {
    std::fprintf(stderr,
                 "MISMATCH %s: cycles %llu/%llu instret %llu/%llu "
                 "exit %lld/%lld\n",
                 label.c_str(), static_cast<unsigned long long>(ref.cycles),
                 static_cast<unsigned long long>(fast.cycles),
                 static_cast<unsigned long long>(ref.instructions),
                 static_cast<unsigned long long>(fast.instructions),
                 static_cast<long long>(ref.exit_code),
                 static_cast<long long>(fast.exit_code));
    ok = false;
  }
  if (ref.counters != fast.counters) {
    std::fprintf(stderr, "MISMATCH %s: counter snapshots differ\n",
                 label.c_str());
    for (std::size_t i = 0;
         i < ref.counters.size() && i < fast.counters.size(); ++i) {
      if (ref.counters[i] != fast.counters[i]) {
        std::fprintf(stderr, "  %s=%llu vs %s=%llu\n",
                     ref.counters[i].first.c_str(),
                     static_cast<unsigned long long>(ref.counters[i].second),
                     fast.counters[i].first.c_str(),
                     static_cast<unsigned long long>(fast.counters[i].second));
      }
    }
    ok = false;
  }
  return ok;
}

struct SuiteTotals {
  double interp_seconds = 0.0;
  double fast_seconds = 0.0;
  double translated_seconds = 0.0;
  std::uint64_t instructions = 0;

  double InterpMips() const {
    return static_cast<double>(instructions) / 1e6 / interp_seconds;
  }
  double FastMips() const {
    return static_cast<double>(instructions) / 1e6 / fast_seconds;
  }
  double TranslatedMips() const {
    return static_cast<double>(instructions) / 1e6 / translated_seconds;
  }
  double FastSpeedup() const { return interp_seconds / fast_seconds; }
  double TranslatedSpeedup() const {
    return interp_seconds / translated_seconds;
  }
};

// One workload × one defense: build once, time all three tiers, verify
// fast and translated against the reference, print one table row and
// record the numbers.
bool MeasureOne(trace::TelemetrySession* session, SuiteTotals* totals,
                const workloads::WorkloadSpec& spec, core::Defense defense,
                int reps) {
  const ir::Module module = workloads::Generate(spec);
  core::BuildOptions options;
  options.defense = defense;
  auto build = core::Build(module, options);
  if (!build.ok()) {
    std::fprintf(stderr, "host_throughput: build failed: %s\n",
                 build.status().ToString().c_str());
    std::exit(1);
  }
  const std::string label =
      spec.name + "." + std::string(core::DefenseName(defense));
  const TimedRun ref = RunImage(build->image, cpu::ExecTier::kInterp, reps);
  const TimedRun fast = RunImage(build->image, cpu::ExecTier::kFast, reps);
  const TimedRun xlat =
      RunImage(build->image, cpu::ExecTier::kTranslated, reps);
  const bool identical = CheckIdentical(label + ".fast", ref, fast) &
                         CheckIdentical(label + ".translated", ref, xlat);
  const double fast_speedup =
      fast.seconds > 0 ? ref.seconds / fast.seconds : 0.0;
  const double xlat_speedup =
      xlat.seconds > 0 ? ref.seconds / xlat.seconds : 0.0;
  std::printf("%-28s | %8.2f %8.2f %8.2f | %6.2fx %6.2fx %s\n",
              label.c_str(), ref.Mips(), fast.Mips(), xlat.Mips(),
              fast_speedup, xlat_speedup, identical ? "" : "MISMATCH");
  session->Record(label + ".baseline_mips", ref.Mips());
  session->Record(label + ".optimized_mips", fast.Mips());
  session->Record(label + ".translated_mips", xlat.Mips());
  session->Record(label + ".speedup", fast_speedup);
  session->Record(label + ".translated_speedup", xlat_speedup);
  totals->interp_seconds += ref.seconds;
  totals->fast_seconds += fast.seconds;
  totals->translated_seconds += xlat.seconds;
  totals->instructions += ref.instructions;
  return identical;
}

void PrintAggregate(const char* name, const SuiteTotals& totals) {
  std::printf("%-28s | %8.2f %8.2f %8.2f | %6.2fx %6.2fx\n", name,
              totals.InterpMips(), totals.FastMips(),
              totals.TranslatedMips(), totals.FastSpeedup(),
              totals.TranslatedSpeedup());
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const int reps = 2;  // best-of-2 per tier
  std::printf("Host throughput: simulated MIPS by execute tier "
              "(scale=%.2f)\n\n", scale);
  std::printf("%-28s | %8s %8s %8s | %6s %6s\n", "workload.defense",
              "interp", "fast", "xlat", "fast", "xlat");
  bench::PrintRule(76);

  trace::TelemetrySession session("host_throughput");
  session.Record("scale", scale);
  bool all_identical = true;

  // Figure 3 workloads: the C++ subset, unhardened and under VCall.
  SuiteTotals fig3;
  for (const auto& spec : workloads::SpecCppSubset(scale)) {
    all_identical &=
        MeasureOne(&session, &fig3, spec, core::Defense::kNone, reps);
    all_identical &=
        MeasureOne(&session, &fig3, spec, core::Defense::kVCall, reps);
  }
  // Figure 4 workloads: the full CINT2006 suite under ICall.
  SuiteTotals fig4;
  for (const auto& spec : workloads::SpecCint2006Suite(scale)) {
    all_identical &=
        MeasureOne(&session, &fig4, spec, core::Defense::kICall, reps);
  }

  bench::PrintRule(76);
  PrintAggregate("fig3 aggregate", fig3);
  PrintAggregate("fig4 aggregate", fig4);
  std::printf("\nbit-identical simulation across tiers: %s\n",
              all_identical ? "yes" : "NO");

  session.Record("fig3.baseline_mips", fig3.InterpMips());
  session.Record("fig3.optimized_mips", fig3.FastMips());
  session.Record("fig3.translated_mips", fig3.TranslatedMips());
  session.Record("fig3.speedup", fig3.FastSpeedup());
  session.Record("fig3.translated_speedup", fig3.TranslatedSpeedup());
  session.Record("fig4.baseline_mips", fig4.InterpMips());
  session.Record("fig4.optimized_mips", fig4.FastMips());
  session.Record("fig4.translated_mips", fig4.TranslatedMips());
  session.Record("fig4.speedup", fig4.FastSpeedup());
  session.Record("fig4.translated_speedup", fig4.TranslatedSpeedup());
  session.Record("bit_identical", std::uint64_t{all_identical ? 1u : 0u});
  session.Record("required.fig3_speedup", 1.5);
  session.Record("required.fig3_translated_speedup", 10.0);
  bench::WriteBenchJson(session);
  return all_identical ? 0 : 1;
}
