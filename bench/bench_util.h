// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/toolchain.h"
#include "trace/session.h"
#include "workloads/spec_like.h"

namespace roload::bench {

// Workload scale: multiplies hot-loop iteration counts. Override with the
// ROLOAD_BENCH_SCALE environment variable (1.0 ~ a few million simulated
// instructions per benchmark; the paper's runs are ~6 days of FPGA time,
// ours are seconds of simulation — all reported numbers are relative).
inline double BenchScale(double default_scale = 0.5) {
  const char* env = std::getenv("ROLOAD_BENCH_SCALE");
  if (env != nullptr) {
    const double value = std::atof(env);
    if (value > 0) return value;
  }
  return default_scale;
}

// Runs one workload under one defense on one system variant; aborts the
// process on toolchain errors (benches have no meaningful recovery).
inline core::RunMetrics MustRun(const ir::Module& module,
                                core::Defense defense,
                                core::SystemVariant variant) {
  core::BuildOptions options;
  options.defense = defense;
  auto metrics = core::CompileAndRun(module, options, variant);
  if (!metrics.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  if (!metrics->completed) {
    std::fprintf(stderr, "bench run did not complete (defense %s)\n",
                 core::DefenseName(defense).data());
    std::exit(1);
  }
  return *metrics;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

// Writes the session as BENCH_<name>.json in the working directory — the
// machine-readable sibling of the table printed on stdout, consumed by
// the perf-trajectory tooling. Failure to write is reported but does not
// fail the bench (the text output already happened).
inline void WriteBenchJson(const trace::TelemetrySession& session) {
  const std::string path = "BENCH_" + session.name() + ".json";
  if (Status status = session.WriteJson(path); !status.ok()) {
    std::fprintf(stderr, "bench: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace roload::bench
