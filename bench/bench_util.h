// Shared helpers for the table/figure reproduction binaries. The grid
// loops that used to live here moved into src/campaign; what remains is
// environment plumbing, table cosmetics, and the BENCH_<name>.json
// writer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/env.h"
#include "campaign/runner.h"
#include "core/toolchain.h"
#include "trace/session.h"
#include "workloads/spec_like.h"

namespace roload::bench {

// Workload scale: multiplies hot-loop iteration counts. Override with the
// ROLOAD_BENCH_SCALE environment variable (1.0 ~ a few million simulated
// instructions per benchmark; the paper's runs are ~6 days of FPGA time,
// ours are seconds of simulation — all reported numbers are relative).
// Parsing is strict: a garbage value warns and keeps the default.
inline double BenchScale(double default_scale = 0.5) {
  return campaign::ScaleFromEnv(default_scale);
}

// When set (ROLOAD_BENCH_PROFILE=1), the figure benches run with the
// cycle-attribution profiler attached and print/record the overhead
// decomposition (TLB walks vs cache misses vs the ld.ro path) next to the
// totals. Profiling is observational: the measured cycles are identical.
inline bool BenchProfileEnabled() { return campaign::ProfileFromEnv(); }

// Campaign worker count (ROLOAD_BENCH_JOBS, default: one per hardware
// thread). Simulated results are bit-identical at any job count; this
// only trades host wall-clock.
inline unsigned BenchJobs() { return campaign::JobsFromEnv(0); }

// Prints every faulting run of a campaign; returns true when any faulted
// (benches exit nonzero — they have no meaningful recovery).
inline bool ReportFaults(const campaign::CampaignResult& result) {
  bool any = false;
  for (const campaign::RunOutcome& outcome : result.outcomes()) {
    if (outcome.ok()) continue;
    std::fprintf(stderr, "bench run %s failed: %s\n", outcome.name.c_str(),
                 outcome.FailureText().c_str());
    any = true;
  }
  return any;
}

// The metrics of one clean campaign run; aborts the process when the run
// is missing or faulted (callers gate on ReportFaults first, so this only
// trips on a label typo).
inline const core::RunMetrics& MustMetrics(
    const campaign::CampaignResult& result, std::string_view workload,
    std::string_view config,
    core::SystemVariant variant = core::SystemVariant::kFullRoload) {
  const campaign::RunOutcome* outcome =
      result.Find(workload, config, variant);
  if (outcome == nullptr || !outcome->ok()) {
    std::fprintf(stderr, "bench: no clean run %.*s/%.*s/%.*s\n",
                 static_cast<int>(workload.size()), workload.data(),
                 static_cast<int>(config.size()), config.data(),
                 static_cast<int>(campaign::VariantName(variant).size()),
                 campaign::VariantName(variant).data());
    std::exit(1);
  }
  return outcome->metrics;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

// Looks up one cycle-attribution bucket of a profiled run (0 when the run
// was not profiled — buckets are recorded in full whenever they are).
inline std::uint64_t ProfileBucket(const core::RunMetrics& metrics,
                                   std::string_view bucket) {
  for (const auto& [name, cycles] : metrics.profile) {
    if (name == bucket) return cycles;
  }
  return 0;
}

// Prints and records the Fig 3/4 overhead decomposition for one hardened
// run vs its base: how much of the extra time is the ld.ro path itself vs
// second-order TLB-walk / cache-miss changes. Keys land in the session as
// `<prefix>.delta.<bucket>` (signed percent of base cycles).
inline void RecordProfileDelta(trace::TelemetrySession* session,
                               const std::string& prefix,
                               const core::RunMetrics& base,
                               const core::RunMetrics& hardened) {
  static constexpr std::string_view kBuckets[] = {
      "compute", "roload_load", "icache_miss", "dcache_miss",
      "itlb_walk", "dtlb_walk", "trap", "syscall"};
  const double base_cycles = static_cast<double>(base.cycles);
  if (base_cycles == 0) return;
  std::printf("    %-22s", (prefix + " Δcycles%:").c_str());
  for (std::string_view bucket : kBuckets) {
    const double delta_pct =
        (static_cast<double>(ProfileBucket(hardened, bucket)) -
         static_cast<double>(ProfileBucket(base, bucket))) /
        base_cycles * 100.0;
    session->Record(prefix + ".delta." + std::string(bucket), delta_pct);
    if (delta_pct != 0.0) {
      std::printf(" %.*s %+0.3f", static_cast<int>(bucket.size()),
                  bucket.data(), delta_pct);
    }
  }
  std::printf("\n");
}

// Writes the session as BENCH_<name>.json in the working directory — the
// machine-readable sibling of the table printed on stdout, consumed by
// the perf-trajectory tooling. Failure to write is reported but does not
// fail the bench (the text output already happened).
inline void WriteBenchJson(const trace::TelemetrySession& session) {
  const std::string path = "BENCH_" + session.name() + ".json";
  if (Status status = session.WriteJson(path); !status.ok()) {
    std::fprintf(stderr, "bench: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace roload::bench
