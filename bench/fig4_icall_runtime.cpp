// Figure 4: relative runtime overheads of ICall (ROLoad type-based
// forward-edge CFI) and its ported software competitor (label-based CFI)
// on the full SPEC CINT2006 suite.
//
// Paper result: ICall averages almost zero; CFI averages 9.073%. Expected
// shape: ICall under ~1% everywhere; CFI an order of magnitude above it,
// highest on the indirect-call-heavy benchmarks.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();
  const bool profile = bench::BenchProfileEnabled();

  campaign::CampaignSpec grid;
  grid.name = "fig4_icall_runtime";
  grid.workloads = workloads::SpecCint2006Suite(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kICall),
                  campaign::ForDefense(core::Defense::kClassicCfi)};
  grid.profile = profile;
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Figure 4: ICall vs CFI runtime overheads (scale=%.2f%s)\n\n",
              scale, profile ? ", profiled" : "");
  std::printf("%-24s | %12s | %8s %8s\n", "benchmark", "base cycles",
              "ICall%", "CFI%");
  bench::PrintRule(64);

  trace::TelemetrySession session("fig4_icall_runtime");
  result.FillSession(&session);
  session.Record("scale", scale);
  double time_icall = 0, time_cfi = 0;
  int count = 0;
  for (const auto& spec : grid.workloads) {
    const auto& base = bench::MustMetrics(result, spec.name, "none");
    const auto& icall = bench::MustMetrics(result, spec.name, "ICall");
    const auto& cfi = bench::MustMetrics(result, spec.name, "CFI");
    const double t_ic = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(icall.cycles));
    const double t_cfi = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(cfi.cycles));
    std::printf("%-24s | %12llu | %8.3f %8.3f\n", spec.name.c_str(),
                static_cast<unsigned long long>(base.cycles), t_ic, t_cfi);
    session.Record(spec.name + ".base_cycles", base.cycles);
    session.Record(spec.name + ".icall_time_pct", t_ic);
    session.Record(spec.name + ".cfi_time_pct", t_cfi);
    session.Record(spec.name + ".icall_roload_loads", icall.roload_loads);
    session.Record(spec.name + ".icall_key_checks",
                   icall.Counter("tlb.d.key_check"));
    if (profile) {
      bench::RecordProfileDelta(&session, spec.name + ".icall", base, icall);
      bench::RecordProfileDelta(&session, spec.name + ".cfi", base, cfi);
    }
    time_icall += t_ic;
    time_cfi += t_cfi;
    ++count;
  }
  bench::PrintRule(64);
  std::printf("%-24s | %12s | %8.3f %8.3f\n", "average", "",
              time_icall / count, time_cfi / count);
  std::printf("%-24s | %12s | %8s %8.3f\n", "paper (DAC'21)", "", "~0",
              9.073);
  session.Record("average.icall_time_pct", time_icall / count);
  session.Record("average.cfi_time_pct", time_cfi / count);
  session.Record("paper.cfi_time_pct", 9.073);

  // Under load: ICall vs classic CFI on the RPC dispatch server
  // (src/smp), requests spread across 1/2/4 harts. Every request walks
  // an indirect-call middleware table, so the fnptr-dispatch density is
  // far above the batch SPEC rows — the CFI gap widens while ICall stays
  // near zero.
  campaign::CampaignSpec load;
  load.name = "fig4_icall_underload";
  load.workloads = {workloads::RpcServerWorkload(std::max<std::uint64_t>(
      200, static_cast<std::uint64_t>(1200 * scale)))};
  load.configs = grid.configs;
  load.harts = {1, 2, 4};
  const campaign::CampaignResult under =
      campaign::Run(load, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(under)) return 1;

  std::printf("\nUnder load: RPC dispatch server, requests spread across "
              "harts\n\n");
  std::printf("%-24s | %12s | %8s %8s\n", "rpc_server", "base cycles",
              "ICall%", "CFI%");
  bench::PrintRule(64);
  for (unsigned harts : load.harts) {
    const std::string suffix =
        harts == 1 ? "" : "/h" + std::to_string(harts);
    auto must = [&](const char* cfg) -> const core::RunMetrics& {
      const std::string name =
          std::string("rpc_server/") + cfg + "/full" + suffix;
      const campaign::RunOutcome* outcome = under.Find(name);
      if (outcome == nullptr || !outcome->ok()) {
        std::fprintf(stderr, "bench: no clean run %s\n", name.c_str());
        std::exit(1);
      }
      return outcome->metrics;
    };
    const auto& base = must("none");
    const auto& icall = must("ICall");
    const auto& cfi = must("CFI");
    const double t_ic = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(icall.cycles));
    const double t_cfi = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(cfi.cycles));
    const std::string row = "harts=" + std::to_string(harts);
    std::printf("%-24s | %12llu | %8.3f %8.3f\n", row.c_str(),
                static_cast<unsigned long long>(base.cycles), t_ic, t_cfi);
    session.Record("underload.h" + std::to_string(harts) + ".base_cycles",
                   base.cycles);
    session.Record("underload.h" + std::to_string(harts) +
                       ".icall_time_pct", t_ic);
    session.Record("underload.h" + std::to_string(harts) +
                       ".cfi_time_pct", t_cfi);
  }

  bench::WriteBenchJson(session);
  return 0;
}
