// Ablation 2 (DESIGN.md §5): the cost of dropping the offset immediate.
// ld.ro-family instructions carry the key where a regular load carries its
// address offset, so loads with a folded offset need one extra addi
// (Section III-C). This bench counts the inserted addi instructions and
// also measures the c.ld.ro compressed-encoding code-size optimization.
#include <cstdio>

#include "bench/bench_util.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();
  std::printf("Ablation: ld.ro offset-drop cost and c.ld.ro size win "
              "(scale=%.2f)\n\n", scale);
  std::printf("%-24s | %8s | %10s | %12s | %12s\n", "benchmark", "ld.ro",
              "extra addi", "code bytes", "code w/ c.ld.ro");
  bench::PrintRule(84);

  for (const auto& spec : workloads::SpecCppSubset(scale)) {
    const ir::Module module = workloads::Generate(spec);

    core::BuildOptions vcall;
    vcall.defense = core::Defense::kVCall;
    auto wide = core::Build(module, vcall);
    if (!wide.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   wide.status().ToString().c_str());
      return 1;
    }

    core::BuildOptions compressed = vcall;
    compressed.codegen.use_compressed_roload = true;
    compressed.vcall.key_groups = 16;  // keys must fit 5 bits for c.ld.ro
    auto narrow = core::Build(module, compressed);
    if (!narrow.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   narrow.status().ToString().c_str());
      return 1;
    }

    std::printf("%-24s | %8llu | %10llu | %12llu | %12llu\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(
                    wide->codegen.roload_instructions),
                static_cast<unsigned long long>(
                    wide->codegen.extra_addi_for_roload),
                static_cast<unsigned long long>(wide->code_bytes),
                static_cast<unsigned long long>(narrow->code_bytes));
  }
  std::printf("\n(c.ld.ro halves each eligible ld.ro from 4 to 2 bytes; its "
              "5-bit key field requires <= 32 key groups.)\n");
  return 0;
}
