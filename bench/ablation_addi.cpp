// Ablation 2 (DESIGN.md §5): the cost of dropping the offset immediate.
// ld.ro-family instructions carry the key where a regular load carries its
// address offset, so loads with a folded offset need one extra addi
// (Section III-C). This bench counts the inserted addi instructions and
// also measures the c.ld.ro compressed-encoding code-size optimization.
// Both columns are build-only campaign runs: nothing executes, the grid
// only carries the codegen statistics.
#include <cstdio>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();

  campaign::CampaignSpec grid;
  grid.name = "ablation_addi";
  grid.workloads = workloads::SpecCppSubset(scale);
  campaign::RunConfig wide;
  wide.label = "VCall";
  wide.build.defense = core::Defense::kVCall;
  wide.build_only = true;
  campaign::RunConfig narrow = wide;
  narrow.label = "VCall/cld";
  narrow.build.codegen.use_compressed_roload = true;
  narrow.build.vcall.key_groups = 16;  // keys must fit 5 bits for c.ld.ro
  grid.configs = {wide, narrow};
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Ablation: ld.ro offset-drop cost and c.ld.ro size win "
              "(scale=%.2f)\n\n", scale);
  std::printf("%-24s | %8s | %10s | %12s | %12s\n", "benchmark", "ld.ro",
              "extra addi", "code bytes", "code w/ c.ld.ro");
  bench::PrintRule(84);

  for (const auto& spec : grid.workloads) {
    const campaign::RunOutcome* wide_out =
        result.Find(spec.name, "VCall");
    const campaign::RunOutcome* narrow_out =
        result.Find(spec.name, "VCall/cld");
    if (wide_out == nullptr || narrow_out == nullptr) {
      std::fprintf(stderr, "missing build for %s\n", spec.name.c_str());
      return 1;
    }
    std::printf("%-24s | %8llu | %10llu | %12llu | %12llu\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(
                    wide_out->build.roload_instructions),
                static_cast<unsigned long long>(
                    wide_out->build.extra_addi_for_roload),
                static_cast<unsigned long long>(wide_out->build.code_bytes),
                static_cast<unsigned long long>(
                    narrow_out->build.code_bytes));
  }
  std::printf("\n(c.ld.ro halves each eligible ld.ro from 4 to 2 bytes; its "
              "5-bit key field requires <= 32 key groups.)\n");
  return 0;
}
