// Table II + Table III: prototype configuration and hardware resource cost
// of systems without and with ld.ro when synthesized on the FPGA model.
//
// The delta between the variants is produced structurally (gate-level TLB
// check datapaths + decode delta mapped onto 6-input LUTs); the untouched
// remainder of the core/system uses the paper's published baselines as a
// calibrated constant. Expected shape: < 3.32% extra LUTs/FFs everywhere,
// Fmax essentially unchanged.
#include <cstdio>

#include "hw/tlb_datapath.h"

using namespace roload;

int main() {
  std::printf("Table II: prototype configuration\n");
  std::printf("  ISA            RV64IMAC + ROLoad extension (M/S/U modes)\n");
  std::printf("  Caches         32 KiB 8-way L1I$, 32 KiB 8-way L1D$\n");
  std::printf("  TLBs           32-entry I-TLB, 32-entry D-TLB\n");
  std::printf("  PTE key field  bits [63:54] (10 bits, 1024 keys)\n");
  std::printf("  Synthesis      F_target = 125.00 MHz (Kintex-7 model)\n\n");

  const hw::TableIII table = hw::ComputeTableIII();
  std::printf("Table III: hardware resource cost\n\n");
  std::printf("%-14s | %7s %9s | %7s %9s | %7s %9s | %7s %9s | %10s %8s\n",
              "", "coreLUT", "%", "coreFF", "%", "sysLUT", "%", "sysFF", "%",
              "slack(ns)", "Fmax");
  const auto& a = table.without_ldro;
  const auto& b = table.with_ldro;
  std::printf("%-14s | %7u %9s | %7u %9s | %7u %9s | %7u %9s | %10.3f %8.2f\n",
              "without ld.ro", a.core_luts, "-", a.core_ffs, "-",
              a.system_luts, "-", a.system_ffs, "-", a.worst_slack_ns,
              a.fmax_mhz);
  std::printf("%-14s | %7u %+8.4f%% | %7u %+8.4f%% | %7u %+8.4f%% | %7u "
              "%+8.4f%% | %10.3f %8.2f\n",
              "with ld.ro", b.core_luts, table.core_lut_increase_percent,
              b.core_ffs, table.core_ff_increase_percent, b.system_luts,
              table.system_lut_increase_percent, b.system_ffs,
              table.system_ff_increase_percent, b.worst_slack_ns,
              b.fmax_mhz);
  std::printf("%-14s | %7u %+8.4f%% | %7u %+8.4f%% | %7u %+8.4f%% | %7u "
              "%+8.4f%% | %10.3f %8.2f\n",
              "paper", 21021, 1.44291, 12248, 3.31506, 37765, 0.90040,
              30347, 1.45087, 0.099, 126.57);
  std::printf("\nAll increases are below the paper's 3.32%% bound: %s\n",
              (table.core_lut_increase_percent < 3.32 &&
               table.core_ff_increase_percent < 3.32 &&
               table.system_lut_increase_percent < 3.32 &&
               table.system_ff_increase_percent < 3.32)
                  ? "yes"
                  : "NO");
  return 0;
}
