// SMP scaling of the RPC dispatch server (ROADMAP north star: "heavy
// traffic from millions of users"). Two claims, both gated:
//
//  1. Serial-vs-SMP bit-identity: a 1-hart smp::Machine reproduces the
//     legacy single-hart core::System exactly — same cycles, same
//     instructions, same end-of-run counter snapshot, name for name.
//     This is the same differential the tests pin (tests/test_smp.cpp),
//     re-proven here on the very build the scaling rows use, so the
//     multi-hart numbers below are comparable to every pre-SMP figure.
//
//  2. Throughput scales: the strided request loop (hart h serves
//     requests h, h+N, h+2N, ...) finishes in fewer cycles on 2 harts
//     than on 1, with cycles measured as the max over harts — the
//     parallel wall-clock. The bench fails if 2 harts do not beat 1.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/spec.h"
#include "smp/machine.h"
#include "support/strings.h"

using namespace roload;

namespace {

// Full-snapshot comparison; on mismatch, names the first divergent
// metric so the differential failure is actionable.
bool BitIdentical(const core::RunMetrics& legacy,
                  const core::RunMetrics& smp1, std::string* why) {
  if (legacy.cycles != smp1.cycles) {
    *why = StrFormat("cycles %llu vs %llu",
                     static_cast<unsigned long long>(legacy.cycles),
                     static_cast<unsigned long long>(smp1.cycles));
    return false;
  }
  if (legacy.instructions != smp1.instructions) {
    *why = StrFormat("instructions %llu vs %llu",
                     static_cast<unsigned long long>(legacy.instructions),
                     static_cast<unsigned long long>(smp1.instructions));
    return false;
  }
  if (legacy.exit_code != smp1.exit_code) {
    *why = "exit_code";
    return false;
  }
  if (legacy.peak_mem_kib != smp1.peak_mem_kib) {
    *why = "peak_mem_kib";
    return false;
  }
  if (legacy.counters != smp1.counters) {
    const std::size_t n =
        std::min(legacy.counters.size(), smp1.counters.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (legacy.counters[i] != smp1.counters[i]) {
        *why = StrFormat(
            "counter %s: %llu vs %s: %llu",
            legacy.counters[i].first.c_str(),
            static_cast<unsigned long long>(legacy.counters[i].second),
            smp1.counters[i].first.c_str(),
            static_cast<unsigned long long>(smp1.counters[i].second));
        return false;
      }
    }
    *why = "counter snapshot sizes differ";
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  trace::TelemetrySession session("smp_scaling");
  session.Record("scale", scale);

  const std::uint64_t requests = std::max<std::uint64_t>(
      200, static_cast<std::uint64_t>(2000 * scale));
  const workloads::WorkloadSpec rpc = workloads::RpcServerWorkload(requests);
  session.Record("requests", requests);

  std::printf("SMP scaling: RPC dispatch server across harts "
              "(scale=%.2f, %llu requests)\n\n",
              scale, static_cast<unsigned long long>(requests));

  // --- Gate 1: serial vs 1-hart machine, bit for bit. ---
  std::printf("bit-identity gate (legacy System vs --harts 1 machine):\n");
  bool identical = true;
  for (core::Defense defense :
       {core::Defense::kNone, core::Defense::kVCall}) {
    core::BuildOptions options;
    options.defense = defense;
    auto build = core::Build(workloads::Generate(rpc), options);
    if (!build.ok()) {
      std::fprintf(stderr, "bench: build failed: %s\n",
                   build.status().ToString().c_str());
      return 1;
    }
    auto legacy =
        core::RunBuild(*build, core::SystemVariant::kFullRoload);
    auto smp1 = smp::RunBuildSmp(*build, core::SystemVariant::kFullRoload,
                                 /*harts=*/1);
    if (!legacy.ok() || !smp1.ok()) {
      std::fprintf(stderr, "bench: run failed\n");
      return 1;
    }
    std::string why;
    const bool same = BitIdentical(*legacy, *smp1, &why);
    identical = identical && same;
    std::printf("  %-8s %s%s\n", core::DefenseName(defense).data(),
                same ? "identical" : "DIVERGED: ", same ? "" : why.c_str());
    session.Record(std::string("bit_identity.") +
                       std::string(core::DefenseName(defense)),
                   static_cast<std::uint64_t>(same));
  }

  // --- Gate 2: the scaling grid, through the campaign runner with
  // harts as the innermost axis. ---
  campaign::CampaignSpec grid;
  grid.name = "smp_scaling";
  grid.workloads = {rpc};
  grid.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kVCall)};
  grid.harts = {1, 2, 4};
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  auto metrics = [&](core::Defense defense,
                     unsigned harts) -> const core::RunMetrics& {
    std::string name = std::string("rpc_server/") +
                       std::string(core::DefenseName(defense)) + "/full";
    if (harts != 1) name += "/h" + std::to_string(harts);
    const campaign::RunOutcome* outcome = result.Find(name);
    if (outcome == nullptr || !outcome->ok()) {
      std::fprintf(stderr, "bench: no clean run %s\n", name.c_str());
      std::exit(1);
    }
    return outcome->metrics;
  };

  std::printf("\n%-6s | %14s %8s | %14s %8s | %8s\n", "harts",
              "none cycles", "speedup", "VCall cycles", "speedup",
              "VCall%");
  bench::PrintRule(72);
  const double base_none = static_cast<double>(
      metrics(core::Defense::kNone, 1).cycles);
  const double base_vcall = static_cast<double>(
      metrics(core::Defense::kVCall, 1).cycles);
  for (unsigned harts : grid.harts) {
    const auto& none = metrics(core::Defense::kNone, harts);
    const auto& vcall = metrics(core::Defense::kVCall, harts);
    const double speed_none =
        base_none / static_cast<double>(none.cycles);
    const double speed_vcall =
        base_vcall / static_cast<double>(vcall.cycles);
    const double overhead = core::OverheadPercent(
        static_cast<double>(none.cycles),
        static_cast<double>(vcall.cycles));
    std::printf("%-6u | %14llu %7.2fx | %14llu %7.2fx | %8.3f\n", harts,
                static_cast<unsigned long long>(none.cycles), speed_none,
                static_cast<unsigned long long>(vcall.cycles), speed_vcall,
                overhead);
    const std::string prefix = "h" + std::to_string(harts);
    session.Record(prefix + ".none.cycles", none.cycles);
    session.Record(prefix + ".VCall.cycles", vcall.cycles);
    session.Record(prefix + ".none.speedup", speed_none);
    session.Record(prefix + ".VCall.speedup", speed_vcall);
    session.Record(prefix + ".vcall_overhead_pct", overhead);
    session.Record(prefix + ".instructions", none.instructions);
    session.Record(prefix + ".roload_loads", vcall.roload_loads);
  }
  bench::PrintRule(72);

  // The scaling gate the acceptance criteria name: >= 2 harts must beat
  // the serial run on the parallel wall-clock (max-over-harts cycles).
  const bool scales =
      metrics(core::Defense::kNone, 2).cycles <
          metrics(core::Defense::kNone, 1).cycles &&
      metrics(core::Defense::kVCall, 2).cycles <
          metrics(core::Defense::kVCall, 1).cycles;
  std::printf("\n  1-hart machine bit-identical to System  %s\n",
              identical ? "yes" : "NO");
  std::printf("  2 harts beat 1 (wall-clock cycles)      %s\n",
              scales ? "yes" : "NO");
  session.Record("bit_identity.ok", static_cast<std::uint64_t>(identical));
  session.Record("scales.ok", static_cast<std::uint64_t>(scales));

  bench::WriteBenchJson(session);
  return (identical && scales) ? 0 : 1;
}
