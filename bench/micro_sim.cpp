// Microbenchmarks (google-benchmark) for the simulator substrates: TLB
// translation (hit and ROLoad-check paths), instruction decode, cache
// access, and netlist technology mapping. These guard the simulator's own
// performance, which bounds how much workload the table/figure benches can
// afford.
#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "hw/tlb_datapath.h"
#include "isa/encoding.h"
#include "kernel/address_space.h"
#include "mem/phys_memory.h"
#include "tlb/tlb.h"

namespace {

using namespace roload;

struct TlbFixture {
  TlbFixture() : memory(16 * 1024 * 1024), frames(16, 4000),
                 space(&memory, &frames), tlb(tlb::TlbConfig{}, &memory) {
    kernel::PageProt ro = kernel::PageProt::Ro(111);
    ROLOAD_CHECK(space.Map(0x10000, 8, ro).ok());
    kernel::PageProt rw = kernel::PageProt::Rw();
    ROLOAD_CHECK(space.Map(0x20000, 8, rw).ok());
  }
  mem::PhysMemory memory;
  kernel::FrameAllocator frames;
  kernel::AddressSpace space;
  tlb::Tlb tlb;
};

void BM_TlbHitLoad(benchmark::State& state) {
  TlbFixture fixture;
  // Warm the entry.
  fixture.tlb.Translate(fixture.space.root_ppn(), 0x20000,
                        tlb::AccessType::kLoad, 0);
  for (auto _ : state) {
    auto result = fixture.tlb.Translate(fixture.space.root_ppn(), 0x20008,
                                        tlb::AccessType::kLoad, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TlbHitLoad);

void BM_TlbHitRoLoad(benchmark::State& state) {
  TlbFixture fixture;
  fixture.tlb.Translate(fixture.space.root_ppn(), 0x10000,
                        tlb::AccessType::kRoLoad, 111);
  for (auto _ : state) {
    auto result = fixture.tlb.Translate(fixture.space.root_ppn(), 0x10008,
                                        tlb::AccessType::kRoLoad, 111);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TlbHitRoLoad);

void BM_TlbMissWalk(benchmark::State& state) {
  TlbFixture fixture;
  std::uint64_t page = 0;
  for (auto _ : state) {
    fixture.tlb.Flush();
    auto result = fixture.tlb.Translate(
        fixture.space.root_ppn(), 0x10000 + (page++ % 8) * 4096,
        tlb::AccessType::kLoad, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TlbMissWalk);

void BM_DecodeAlu(benchmark::State& state) {
  const std::uint32_t word = isa::Encode(
      isa::Instruction{.op = isa::Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3});
  for (auto _ : state) {
    auto inst = isa::Decode(word);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_DecodeAlu);

void BM_DecodeRoLoad(benchmark::State& state) {
  const std::uint32_t word = isa::Encode(isa::Instruction{
      .op = isa::Opcode::kLdRo, .rd = 10, .rs1 = 10, .key = 111});
  for (auto _ : state) {
    auto inst = isa::Decode(word);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_DecodeRoLoad);

void BM_CacheHit(benchmark::State& state) {
  cache::Cache cache(cache::CacheConfig{});
  cache.Access(0x1000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(0x1000, false));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissSweep(benchmark::State& state) {
  cache::Cache cache(cache::CacheConfig{});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr, false));
    addr += 64 * 512;  // new set+tag every time
  }
}
BENCHMARK(BM_CacheMissSweep);

void BM_MapTlbDatapath(benchmark::State& state) {
  hw::TlbDatapathConfig config;
  config.with_roload = true;
  const hw::Netlist netlist = BuildTlbDatapath(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapNetlist(netlist));
  }
}
BENCHMARK(BM_MapTlbDatapath);

}  // namespace

BENCHMARK_MAIN();
