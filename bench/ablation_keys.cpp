// Ablation 1 (DESIGN.md §5): vtable key granularity. The paper notes that
// ICall's *unified* vtable key has better TLB/cache locality than VCall's
// per-class keys. This sweep varies the number of vtable key groups used
// by VCall from 1 (unified) up to per-hierarchy and reports the runtime
// overhead and the extra keyed pages. Expected shape: fewer key groups ->
// lower overhead and fewer pages, at the price of a coarser allowlist
// (cross-hierarchy reuse inside a shared key group is not blocked).
#include <cstdio>

#include "bench/bench_util.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();
  std::printf("Ablation: VCall key groups vs overhead (scale=%.2f)\n\n",
              scale);
  std::printf("%-24s | %10s | %8s | %9s | %10s\n", "benchmark",
              "key groups", "time%", "mem%", "ld.ro runs");
  bench::PrintRule(76);

  for (const auto& spec : workloads::SpecCppSubset(scale)) {
    const ir::Module module = workloads::Generate(spec);
    core::BuildOptions base_options;
    auto base = core::CompileAndRun(module, base_options,
                                    core::SystemVariant::kFullRoload);
    if (!base.ok() || !base->completed) {
      std::fprintf(stderr, "baseline failed\n");
      return 1;
    }
    for (unsigned groups : {1u, 2u, 4u, 16u, 64u}) {
      core::BuildOptions options;
      options.defense = core::Defense::kVCall;
      options.vcall.key_groups = groups;
      auto metrics = core::CompileAndRun(module, options,
                                         core::SystemVariant::kFullRoload);
      if (!metrics.ok() || !metrics->completed ||
          metrics->exit_code != base->exit_code) {
        std::fprintf(stderr, "hardened run failed/diverged\n");
        return 1;
      }
      std::printf("%-24s | %10u | %8.3f | %9.4f | %10llu\n",
                  spec.name.c_str(), groups,
                  core::OverheadPercent(static_cast<double>(base->cycles),
                                        static_cast<double>(metrics->cycles)),
                  core::OverheadPercent(
                      static_cast<double>(base->peak_mem_kib),
                      static_cast<double>(metrics->peak_mem_kib)),
                  static_cast<unsigned long long>(metrics->roload_loads));
    }
    bench::PrintRule(76);
  }
  return 0;
}
