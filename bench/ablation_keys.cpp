// Ablation 1 (DESIGN.md §5): vtable key granularity. The paper notes that
// ICall's *unified* vtable key has better TLB/cache locality than VCall's
// per-class keys. This sweep varies the number of vtable key groups used
// by VCall from 1 (unified) up to per-hierarchy and reports the runtime
// overhead and the extra keyed pages. Expected shape: fewer key groups ->
// lower overhead and fewer pages, at the price of a coarser allowlist
// (cross-hierarchy reuse inside a shared key group is not blocked).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

namespace {

constexpr unsigned kKeyGroups[] = {1u, 2u, 4u, 16u, 64u};

std::string GroupLabel(unsigned groups) {
  return "VCall/g" + std::to_string(groups);
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();

  campaign::CampaignSpec grid;
  grid.name = "ablation_keys";
  grid.workloads = workloads::SpecCppSubset(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone)};
  for (unsigned groups : kKeyGroups) {
    campaign::RunConfig config;
    config.label = GroupLabel(groups);
    config.build.defense = core::Defense::kVCall;
    config.build.vcall.key_groups = groups;
    grid.configs.push_back(config);
  }
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Ablation: VCall key groups vs overhead (scale=%.2f)\n\n",
              scale);
  std::printf("%-24s | %10s | %8s | %9s | %10s\n", "benchmark",
              "key groups", "time%", "mem%", "ld.ro runs");
  bench::PrintRule(76);

  for (const auto& spec : grid.workloads) {
    const auto& base = bench::MustMetrics(result, spec.name, "none");
    for (unsigned groups : kKeyGroups) {
      const auto& metrics =
          bench::MustMetrics(result, spec.name, GroupLabel(groups));
      if (metrics.exit_code != base.exit_code) {
        std::fprintf(stderr, "hardened run failed/diverged\n");
        return 1;
      }
      std::printf("%-24s | %10u | %8.3f | %9.4f | %10llu\n",
                  spec.name.c_str(), groups,
                  core::OverheadPercent(static_cast<double>(base.cycles),
                                        static_cast<double>(metrics.cycles)),
                  core::OverheadPercent(
                      static_cast<double>(base.peak_mem_kib),
                      static_cast<double>(metrics.peak_mem_kib)),
                  static_cast<unsigned long long>(metrics.roload_loads));
    }
    bench::PrintRule(76);
  }
  return 0;
}
