// Table I: lines of code of each ROLoad component.
//
// The paper's counts are *deltas* against existing code bases (Rocket
// Chip, Linux, LLVM): processor 59, kernel 121, compiler 270, total 450.
// We built every substrate from scratch, so we report two columns: the
// total LoC of each of our components, and the ROLoad-specific LoC within
// them (lines in source files that implement or reference the extension,
// counted by marker scan) — the latter is the apples-to-apples analogue of
// the paper's delta.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using std::filesystem::path;

namespace {

struct Component {
  const char* label;
  std::vector<const char*> dirs;
  int paper_total;
};

int CountLines(const path& file, bool roload_only, int* roload_lines) {
  std::ifstream in(file);
  int total = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    if (roload_lines != nullptr) {
      for (const char* marker :
           {"RoLoad", "roload_key", "ld.ro", "kRoLoad", "roload_md",
            "has_roload", "is_roload", ".rodata.key", "roload_aware",
            "roload_enabled", "key_bits", "PteKey", "pte_key", "page_key"}) {
        if (line.find(marker) != std::string::npos) {
          ++*roload_lines;
          break;
        }
      }
    }
  }
  (void)roload_only;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // Source root: first argument, or the compile-time default.
  const path root = argc > 1 ? path(argv[1]) : path(ROLOAD_SOURCE_DIR);

  const std::vector<Component> components = {
      {"RISC-V Processor (isa/tlb/cpu/mem/cache)",
       {"src/isa", "src/tlb", "src/cpu", "src/mem", "src/cache"}, 59},
      {"Kernel (kernel)", {"src/kernel"}, 121},
      {"Compiler back-end (ir/passes/backend/asmtool)",
       {"src/ir", "src/passes", "src/backend", "src/asmtool"}, 270},
  };

  std::printf("Table I: lines of code per ROLoad component\n\n");
  std::printf("%-46s | %9s | %13s | %11s\n", "component", "our total",
              "our ROLoad LoC", "paper delta");
  int grand_total = 0, grand_ro = 0, grand_paper = 0;
  for (const Component& component : components) {
    int total = 0, ro = 0;
    for (const char* dir : component.dirs) {
      const path base = root / dir;
      if (!std::filesystem::exists(base)) continue;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext != ".cpp" && ext != ".h") continue;
        total += CountLines(entry.path(), true, &ro);
      }
    }
    std::printf("%-46s | %9d | %13d | %11d\n", component.label, total, ro,
                component.paper_total);
    grand_total += total;
    grand_ro += ro;
    grand_paper += component.paper_total;
  }
  std::printf("%-46s | %9d | %13d | %11d\n", "total", grand_total, grand_ro,
              grand_paper);
  std::printf("\nThe paper modifies existing code bases (Rocket Chip / "
              "Linux / LLVM), so its numbers count only the ROLoad delta;\n"
              "our middle column is the comparable measure, the left "
              "column is the from-scratch substrate size.\n");
  return 0;
}
