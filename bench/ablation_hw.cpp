// Ablations 3 + 4 (DESIGN.md §5): hardware design choices.
//  * Key width sweep: the PTE reserves 10 bits; narrower keys cost fewer
//    flip-flops/LUTs but distinguish fewer types.
//  * Parallel vs serial check: the paper ANDs the ROLoad check with the
//    conventional permission logic in parallel; evaluating it serially
//    lengthens the local path.
#include <cstdio>

#include "hw/tlb_datapath.h"

using namespace roload;

int main() {
  std::printf("Ablation: TLB key width vs hardware cost\n\n");
  std::printf("%8s | %8s | %8s | %10s | %8s\n", "key bits", "d-LUT",
              "d-FF", "keys", "Fmax");

  hw::TlbDatapathConfig base_config;
  const hw::MapResult base = MapNetlist(BuildTlbDatapath(base_config));
  for (unsigned bits : {4u, 6u, 8u, 10u, 16u}) {
    hw::TlbDatapathConfig config;
    config.with_roload = true;
    config.key_bits = bits;
    const hw::MapResult mapped = MapNetlist(BuildTlbDatapath(config));
    std::printf("%8u | %8d | %8d | %10u | %8.2f\n", bits,
                static_cast<int>(mapped.luts) - static_cast<int>(base.luts),
                static_cast<int>(mapped.flip_flops) -
                    static_cast<int>(base.flip_flops),
                1u << bits, mapped.fmax_mhz);
  }

  std::printf("\nAblation: parallel vs serial ROLoad check (local TLB "
              "datapath, no core floor)\n\n");
  hw::MapperConfig local;
  local.core_floor_levels = 0;  // expose the datapath's own depth
  {
    hw::TlbDatapathConfig config;
    const hw::MapResult mapped = MapNetlist(BuildTlbDatapath(config), local);
    std::printf("  %-16s depth %u levels, local path %.3f ns\n",
                "baseline:", mapped.depth_levels, mapped.critical_path_ns);
  }
  for (bool serial : {false, true}) {
    hw::TlbDatapathConfig config;
    config.with_roload = true;
    config.serial_check = serial;
    const hw::MapResult mapped = MapNetlist(BuildTlbDatapath(config), local);
    std::printf("  %-16s depth %u levels, local path %.3f ns\n",
                serial ? "serial check:" : "parallel check:",
                mapped.depth_levels, mapped.critical_path_ns);
  }
  std::printf("\n(The paper's design runs both checks in parallel and ANDs "
              "the outputs,\nkeeping the permission path length unchanged.)\n");
  return 0;
}
