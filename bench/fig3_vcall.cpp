// Figure 3: relative runtime and memory overheads of VCall (ROLoad-based
// virtual-call protection) and its competitor VTint, on the three
// C++ benchmarks of SPEC CINT2006.
//
// Paper result: VCall averages 0.303% runtime / 0.0347% memory overhead;
// VTint averages 2.750% / 0.0644%. Expected shape: VCall runtime well
// under 1% and several times cheaper than VTint; VTint's instrumentation
// enlarges the code section, giving it the higher memory overhead.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale();
  const bool profile = bench::BenchProfileEnabled();

  campaign::CampaignSpec grid;
  grid.name = "fig3_vcall";
  grid.workloads = workloads::SpecCppSubset(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kVCall),
                  campaign::ForDefense(core::Defense::kVTint)};
  grid.profile = profile;
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Figure 3: VCall vs VTint on the C++ benchmarks "
              "(scale=%.2f%s)\n\n", scale, profile ? ", profiled" : "");
  std::printf("%-24s | %12s | %8s %8s | %9s %9s\n", "benchmark",
              "base cycles", "VCall%", "VTint%", "VCall m%", "VTint m%");
  bench::PrintRule();

  trace::TelemetrySession session("fig3_vcall");
  result.FillSession(&session);
  session.Record("scale", scale);
  double time_vcall = 0, time_vtint = 0, mem_vcall = 0, mem_vtint = 0;
  int count = 0;
  for (const auto& spec : grid.workloads) {
    const auto& base = bench::MustMetrics(result, spec.name, "none");
    const auto& vcall = bench::MustMetrics(result, spec.name, "VCall");
    const auto& vtint = bench::MustMetrics(result, spec.name, "VTint");
    const double t_vc = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(vcall.cycles));
    const double t_vt = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(vtint.cycles));
    const double m_vc =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(vcall.peak_mem_kib));
    const double m_vt =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(vtint.peak_mem_kib));
    std::printf("%-24s | %12llu | %8.3f %8.3f | %9.4f %9.4f\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(base.cycles), t_vc, t_vt,
                m_vc, m_vt);
    session.Record(spec.name + ".base_cycles", base.cycles);
    session.Record(spec.name + ".vcall_time_pct", t_vc);
    session.Record(spec.name + ".vtint_time_pct", t_vt);
    session.Record(spec.name + ".vcall_mem_pct", m_vc);
    session.Record(spec.name + ".vtint_mem_pct", m_vt);
    session.Record(spec.name + ".vcall_roload_loads", vcall.roload_loads);
    session.Record(spec.name + ".vcall_key_checks",
                   vcall.Counter("tlb.d.key_check"));
    if (profile) {
      bench::RecordProfileDelta(&session, spec.name + ".vcall", base, vcall);
      bench::RecordProfileDelta(&session, spec.name + ".vtint", base, vtint);
    }
    time_vcall += t_vc;
    time_vtint += t_vt;
    mem_vcall += m_vc;
    mem_vtint += m_vt;
    ++count;
  }
  bench::PrintRule();
  std::printf("%-24s | %12s | %8.3f %8.3f | %9.4f %9.4f\n", "average", "",
              time_vcall / count, time_vtint / count, mem_vcall / count,
              mem_vtint / count);
  std::printf("%-24s | %12s | %8.3f %8.3f | %9.4f %9.4f\n",
              "paper (DAC'21)", "", 0.303, 2.750, 0.0347, 0.0644);
  session.Record("average.vcall_time_pct", time_vcall / count);
  session.Record("average.vtint_time_pct", time_vtint / count);
  session.Record("average.vcall_mem_pct", mem_vcall / count);
  session.Record("average.vtint_mem_pct", mem_vtint / count);
  session.Record("paper.vcall_time_pct", 0.303);
  session.Record("paper.vtint_time_pct", 2.750);

  // Under load: the same defenses on the RPC dispatch server (src/smp),
  // requests spread across 1/2/4 harts. The paper measures batch SPEC
  // runs only; these rows show the VCall overhead holds under concurrent
  // server-style traffic, where every request takes the vcall-heavy
  // handler path on its own hart behind the shared L2.
  campaign::CampaignSpec load;
  load.name = "fig3_vcall_underload";
  load.workloads = {workloads::RpcServerWorkload(std::max<std::uint64_t>(
      200, static_cast<std::uint64_t>(1200 * scale)))};
  load.configs = grid.configs;
  load.harts = {1, 2, 4};
  const campaign::CampaignResult under =
      campaign::Run(load, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(under)) return 1;

  std::printf("\nUnder load: RPC dispatch server, requests spread across "
              "harts\n\n");
  std::printf("%-24s | %12s | %8s %8s\n", "rpc_server", "base cycles",
              "VCall%", "VTint%");
  bench::PrintRule(64);
  for (unsigned harts : load.harts) {
    const std::string suffix =
        harts == 1 ? "" : "/h" + std::to_string(harts);
    auto must = [&](const char* cfg) -> const core::RunMetrics& {
      const std::string name =
          std::string("rpc_server/") + cfg + "/full" + suffix;
      const campaign::RunOutcome* outcome = under.Find(name);
      if (outcome == nullptr || !outcome->ok()) {
        std::fprintf(stderr, "bench: no clean run %s\n", name.c_str());
        std::exit(1);
      }
      return outcome->metrics;
    };
    const auto& base = must("none");
    const auto& vcall = must("VCall");
    const auto& vtint = must("VTint");
    const double t_vc = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(vcall.cycles));
    const double t_vt = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(vtint.cycles));
    const std::string row = "harts=" + std::to_string(harts);
    std::printf("%-24s | %12llu | %8.3f %8.3f\n", row.c_str(),
                static_cast<unsigned long long>(base.cycles), t_vc, t_vt);
    session.Record("underload.h" + std::to_string(harts) + ".base_cycles",
                   base.cycles);
    session.Record("underload.h" + std::to_string(harts) +
                       ".vcall_time_pct", t_vc);
    session.Record("underload.h" + std::to_string(harts) +
                       ".vtint_time_pct", t_vt);
  }

  bench::WriteBenchJson(session);
  return 0;
}
