// Section V-C2 + V-D: security evaluation. Runs the attack-injection
// campaign (arbitrary-write adversary) against the victim program under
// every defense, and reports the allowlist sizes that bound the residual
// pointee-reuse surface.
//
// Expected matrix (paper claims):
//  * no defense: vtable injection and fnptr corruption hijack control.
//  * VCall blocks vtable injection AND cross-hierarchy vtable reuse
//    (strictly stronger than VTint, which only enforces read-only-ness).
//  * ICall blocks fnptr hijack to arbitrary code; the residual surface is
//    reuse of same-type allowlist entries (Section V-D).
//  * Classic CFI blocks wrong-type targets but also allows same-type reuse.
#include <cstdio>

#include "sec/attack.h"
#include "workloads/spec_like.h"

using namespace roload;

int main() {
  const sec::AttackKind kinds[] = {
      sec::AttackKind::kVtableInjection,
      sec::AttackKind::kVtableReuseCrossHierarchy,
      sec::AttackKind::kFnPtrCorruptToEvil,
      sec::AttackKind::kFnPtrReuseSameType,
  };
  const core::Defense defenses[] = {
      core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
      core::Defense::kICall, core::Defense::kClassicCfi,
  };

  std::printf("Security matrix (attack outcome per defense)\n\n");
  std::printf("%-30s", "attack \\ defense");
  for (core::Defense defense : defenses) {
    std::printf(" %-10s", core::DefenseName(defense).data());
  }
  std::printf("\n");
  bool any_error = false;
  for (sec::AttackKind kind : kinds) {
    std::printf("%-30s", sec::AttackKindName(kind).data());
    for (core::Defense defense : defenses) {
      auto result = sec::RunAttack(kind, defense);
      if (!result.ok()) {
        std::printf(" %-10s", "ERROR");
        any_error = true;
        continue;
      }
      std::printf(" %-10s", sec::AttackOutcomeName(result->outcome).data());
    }
    std::printf("\n");
  }

  // Residual attack surface: average allowlist size per key (Section V-D:
  // "attackers can only feed values in the specific allowlists").
  std::printf("\nResidual pointee-reuse surface (average legal targets per "
              "indirect-call site):\n");
  for (const auto& spec : workloads::SpecCppSubset(1.0)) {
    const ir::Module module = workloads::Generate(spec);
    std::size_t address_taken = 0;
    std::vector<std::size_t> per_type(module.fn_type_names.size(), 0);
    for (const auto& fn : module.functions) {
      if (!fn.address_taken) continue;
      ++address_taken;
      per_type[static_cast<std::size_t>(fn.type_id)]++;
    }
    std::size_t used_types = 0;
    std::size_t sum = 0;
    for (std::size_t n : per_type) {
      if (n > 0) {
        ++used_types;
        sum += n;
      }
    }
    std::printf("  %-24s address-taken fns: %4zu; coarse-CFI allowlist: "
                "%4zu; type-keyed allowlist (avg): %.1f  (%.1fx smaller)\n",
                spec.name.c_str(), address_taken, address_taken,
                static_cast<double>(sum) / static_cast<double>(used_types),
                static_cast<double>(address_taken) * used_types /
                    static_cast<double>(sum));
  }
  return any_error ? 1 : 0;
}
