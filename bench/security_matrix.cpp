// Section V-C2 + V-D: security evaluation. Runs the attack-injection
// campaign (arbitrary-write adversary) against the victim program under
// every defense, and reports the allowlist sizes that bound the residual
// pointee-reuse surface.
//
// Expected matrix (paper claims):
//  * no defense: vtable injection and fnptr corruption hijack control.
//  * VCall blocks vtable injection AND cross-hierarchy vtable reuse
//    (strictly stronger than VTint, which only enforces read-only-ness).
//  * ICall blocks fnptr hijack to arbitrary code; the residual surface is
//    reuse of same-type allowlist entries (Section V-D).
//  * Classic CFI blocks wrong-type targets but also allows same-type reuse.
#include <cstddef>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "campaign/runner.h"
#include "sec/attack.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/exporters.h"
#include "trace/merge.h"
#include "verify/verify.h"
#include "workloads/spec_like.h"

using namespace roload;

namespace {

// One cell of the attack × defense grid (ParallelMap slots must be
// default-constructible, which StatusOr is not).
struct AttackCell {
  Status status = Status::Ok();
  sec::AttackResult result;
};

}  // namespace

int main() {
  trace::TelemetrySession session("security_matrix");
  const sec::AttackKind kinds[] = {
      sec::AttackKind::kVtableInjection,
      sec::AttackKind::kVtableReuseCrossHierarchy,
      sec::AttackKind::kFnPtrCorruptToEvil,
      sec::AttackKind::kFnPtrReuseSameType,
  };
  const core::Defense defenses[] = {
      core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
      core::Defense::kICall, core::Defense::kClassicCfi,
  };
  constexpr std::size_t kDefenseCount = std::size(defenses);

  // The attack-injection campaign is an embarrassingly parallel grid just
  // like the figure sweeps; it goes through the same deterministic
  // parallel map (each cell builds and runs its own victim System).
  const std::vector<AttackCell> cells =
      campaign::ParallelMap<AttackCell>(
          std::size(kinds) * kDefenseCount, bench::BenchJobs(),
          [&](std::size_t i) {
            AttackCell cell;
            auto run = sec::RunAttack(kinds[i / kDefenseCount],
                                      defenses[i % kDefenseCount]);
            if (run.ok()) {
              cell.result = *run;
            } else {
              cell.status = run.status();
            }
            return cell;
          });

  // Forensic aggregation across the grid: every cell ran with the audit
  // layer on, so each result carries a counter snapshot (census totals,
  // per-key TLB checks) and, for ROLoad-blocked cells, the autopsy facts.
  trace::CounterMerger merger;

  std::printf("Security matrix (attack outcome per defense)\n\n");
  std::printf("%-30s", "attack \\ defense");
  for (core::Defense defense : defenses) {
    std::printf(" %-10s", core::DefenseName(defense).data());
  }
  std::printf("\n");
  bool any_error = false;
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::printf("%-30s", sec::AttackKindName(kinds[k]).data());
    for (std::size_t d = 0; d < kDefenseCount; ++d) {
      const AttackCell& cell = cells[k * kDefenseCount + d];
      const std::string key = std::string("attack.") +
                              std::string(sec::AttackKindName(kinds[k])) +
                              "." +
                              std::string(core::DefenseName(defenses[d]));
      if (!cell.status.ok()) {
        std::printf(" %-10s", "ERROR");
        session.Record(key, "ERROR");
        any_error = true;
        continue;
      }
      std::printf(" %-10s",
                  sec::AttackOutcomeName(cell.result.outcome).data());
      session.Record(key, sec::AttackOutcomeName(cell.result.outcome));
      merger.Add(std::string(sec::AttackKindName(kinds[k])) + "/" +
                     std::string(core::DefenseName(defenses[d])),
                 cell.result.counters);
    }
    std::printf("\n");
  }

  // The forensic view of the same grid: not just *whether* each attack was
  // stopped, but the audit layer's explanation of *how* — which check
  // tripped ("caught:key-mismatch@dispatch", "caught:writable-page@..."),
  // or why not ("missed:hijacked", "diverted:in-allowlist").
  std::printf("\nForensic classification (audit layer)\n\n");
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::printf("%-30s\n", sec::AttackKindName(kinds[k]).data());
    for (std::size_t d = 0; d < kDefenseCount; ++d) {
      const AttackCell& cell = cells[k * kDefenseCount + d];
      const std::string key = std::string("forensic.") +
                              std::string(sec::AttackKindName(kinds[k])) +
                              "." +
                              std::string(core::DefenseName(defenses[d]));
      if (!cell.status.ok()) {
        session.Record(key, "ERROR");
        continue;
      }
      std::string detail = cell.result.classification;
      if (cell.result.has_autopsy) {
        detail += StrFormat(" [pc=0x%llx va=0x%llx inst_key=%u pte_key=%u]",
                            static_cast<unsigned long long>(
                                cell.result.fault_pc),
                            static_cast<unsigned long long>(
                                cell.result.fault_va),
                            cell.result.inst_key, cell.result.pte_key);
      }
      std::printf("    %-10s %s\n", core::DefenseName(defenses[d]).data(),
                  detail.c_str());
      session.Record(key, cell.result.classification);
    }
  }

  // Under load: the same attacks launched on hart 0 of a 4-hart machine
  // while harts 1-3 keep serving the victim's dispatch loops (src/smp,
  // sec::RunAttackSmp). The defense verdicts must not change under
  // traffic, and the blocked cells must attribute the kill to the hart
  // the scheduler actually dispatched into the corrupted table first.
  constexpr unsigned kLoadHarts = 4;
  const core::Defense load_defenses[] = {
      core::Defense::kNone, core::Defense::kVCall, core::Defense::kICall};
  constexpr std::size_t kLoadDefenseCount = std::size(load_defenses);
  const std::vector<AttackCell> load_cells =
      campaign::ParallelMap<AttackCell>(
          std::size(kinds) * kLoadDefenseCount, bench::BenchJobs(),
          [&](std::size_t i) {
            AttackCell cell;
            auto run = sec::RunAttackSmp(kinds[i / kLoadDefenseCount],
                                         load_defenses[i % kLoadDefenseCount],
                                         kLoadHarts);
            if (run.ok()) {
              cell.result = *run;
            } else {
              cell.status = run.status();
            }
            return cell;
          });

  std::printf("\nUnder load (attack while %u harts serve RPC-style "
              "dispatch)\n\n", kLoadHarts);
  std::printf("%-30s", "attack \\ defense");
  for (core::Defense defense : load_defenses) {
    std::printf(" %-14s", core::DefenseName(defense).data());
  }
  std::printf("\n");
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::printf("%-30s", sec::AttackKindName(kinds[k]).data());
    for (std::size_t d = 0; d < kLoadDefenseCount; ++d) {
      const AttackCell& cell = load_cells[k * kLoadDefenseCount + d];
      const std::string key =
          std::string("attack_load.") +
          std::string(sec::AttackKindName(kinds[k])) + "." +
          std::string(core::DefenseName(load_defenses[d]));
      if (!cell.status.ok()) {
        std::printf(" %-14s", "ERROR");
        session.Record(key, "ERROR");
        any_error = true;
        continue;
      }
      std::string verdict(sec::AttackOutcomeName(cell.result.outcome));
      if (cell.result.roload_violation) {
        verdict += "@hart" + std::to_string(cell.result.hart);
      }
      std::printf(" %-14s", verdict.c_str());
      session.Record(key, verdict);
      session.Record(key + ".hart",
                     static_cast<std::uint64_t>(cell.result.hart));
      merger.Add(std::string(sec::AttackKindName(kinds[k])) + "/" +
                     std::string(core::DefenseName(load_defenses[d])) +
                     "/h" + std::to_string(kLoadHarts),
                 cell.result.counters);
    }
    std::printf("\n");
  }
  std::printf("\n");

  // The same under-load grid with the corruption injected through the LAST
  // hart's debug port instead of hart 0. The address space is shared, so
  // every verdict (and the catching hart) must match the hart-0 rows —
  // any divergence is an attribution bug and fails the bench.
  constexpr unsigned kInjectHart = kLoadHarts - 1;
  const std::vector<AttackCell> inject_cells =
      campaign::ParallelMap<AttackCell>(
          std::size(kinds) * kLoadDefenseCount, bench::BenchJobs(),
          [&](std::size_t i) {
            AttackCell cell;
            auto run = sec::RunAttackSmp(kinds[i / kLoadDefenseCount],
                                         load_defenses[i % kLoadDefenseCount],
                                         kLoadHarts,
                                         core::SystemVariant::kFullRoload,
                                         kInjectHart);
            if (run.ok()) {
              cell.result = *run;
            } else {
              cell.status = run.status();
            }
            return cell;
          });

  std::printf("Under load, corruption injected from hart %u (parity with "
              "hart-0 injection)\n\n", kInjectHart);
  for (std::size_t k = 0; k < std::size(kinds); ++k) {
    std::printf("%-30s", sec::AttackKindName(kinds[k]).data());
    for (std::size_t d = 0; d < kLoadDefenseCount; ++d) {
      const AttackCell& cell = inject_cells[k * kLoadDefenseCount + d];
      const AttackCell& base = load_cells[k * kLoadDefenseCount + d];
      const std::string key =
          std::string("attack_inject_h") + std::to_string(kInjectHart) +
          "." + std::string(sec::AttackKindName(kinds[k])) + "." +
          std::string(core::DefenseName(load_defenses[d]));
      if (!cell.status.ok()) {
        std::printf(" %-14s", "ERROR");
        session.Record(key, "ERROR");
        any_error = true;
        continue;
      }
      std::string verdict(sec::AttackOutcomeName(cell.result.outcome));
      if (cell.result.roload_violation) {
        verdict += "@hart" + std::to_string(cell.result.hart);
      }
      const bool parity =
          base.status.ok() &&
          cell.result.outcome == base.result.outcome &&
          cell.result.hart == base.result.hart &&
          cell.result.classification == base.result.classification;
      if (!parity) {
        verdict += "!=h0";
        any_error = true;
      }
      std::printf(" %-14s", verdict.c_str());
      session.Record(key, verdict);
      session.Record(key + ".parity", static_cast<std::uint64_t>(parity));
    }
    std::printf("\n");
  }
  std::printf("\n");

  // Static verdicts next to the dynamic ones: the src/verify proof over
  // the very build each attack ran against. "proven" = zero violations
  // and every dispatch shown to consume an ld.ro result; "partial" =
  // zero violations but only some dispatches carry the proof (expected
  // for VCall, which covers virtual calls only, and for defenses that
  // never dispatch through ld.ro); "REJECT" = the verifier found a
  // violation (never expected here).
  std::printf("%-30s", "statically proven");
  const ir::Module victim = sec::MakeVictimModule();
  for (core::Defense defense : defenses) {
    core::BuildOptions options;
    options.defense = defense;
    auto build = core::Build(victim, options);
    const std::string prefix =
        std::string("static.") + std::string(core::DefenseName(defense));
    if (!build.ok()) {
      std::printf(" %-10s", "ERROR");
      session.Record(prefix + ".verdict", "ERROR");
      any_error = true;
      continue;
    }
    const verify::Report report = core::Verify(*build);
    const auto& stats = report.stats();
    std::string verdict;
    if (!report.ok()) {
      verdict = "REJECT";
      any_error = true;
    } else if (stats.dispatches == stats.proven_dispatches &&
               stats.dispatches > 0) {
      verdict = "proven";
    } else {
      verdict = StrFormat(
          "%llu/%llu",
          static_cast<unsigned long long>(stats.proven_dispatches),
          static_cast<unsigned long long>(stats.dispatches));
    }
    std::printf(" %-10s", verdict.c_str());
    session.Record(prefix + ".verdict", verdict);
    session.Record(prefix + ".ok", static_cast<std::uint64_t>(report.ok()));
    session.Record(prefix + ".dispatches", stats.dispatches);
    session.Record(prefix + ".proven_dispatches", stats.proven_dispatches);
    session.Record(prefix + ".roload_instructions",
                   stats.roload_instructions);
  }
  std::printf("\n");

  // Residual attack surface: average allowlist size per key (Section V-D:
  // "attackers can only feed values in the specific allowlists").
  std::printf("\nResidual pointee-reuse surface (average legal targets per "
              "indirect-call site):\n");
  for (const auto& spec : workloads::SpecCppSubset(1.0)) {
    const ir::Module module = workloads::Generate(spec);
    std::size_t address_taken = 0;
    std::vector<std::size_t> per_type(module.fn_type_names.size(), 0);
    for (const auto& fn : module.functions) {
      if (!fn.address_taken) continue;
      ++address_taken;
      per_type[static_cast<std::size_t>(fn.type_id)]++;
    }
    std::size_t used_types = 0;
    std::size_t sum = 0;
    for (std::size_t n : per_type) {
      if (n > 0) {
        ++used_types;
        sum += n;
      }
    }
    std::printf("  %-24s address-taken fns: %4zu; coarse-CFI allowlist: "
                "%4zu; type-keyed allowlist (avg): %.1f  (%.1fx smaller)\n",
                spec.name.c_str(), address_taken, address_taken,
                static_cast<double>(sum) / static_cast<double>(used_types),
                static_cast<double>(address_taken) * used_types /
                    static_cast<double>(sum));
    session.Record("residual." + spec.name + ".address_taken",
                   static_cast<std::uint64_t>(address_taken));
    session.Record("residual." + spec.name + ".typed_allowlist_avg",
                   static_cast<double>(sum) /
                       static_cast<double>(used_types));
  }

  // Machine-readable forensics artifact: one roload.audit.v1 document for
  // the whole grid — per-cell verdict + autopsy facts, plus the merged
  // end-of-run counters (CounterMerger over every cell's snapshot).
  {
    JsonWriter writer;
    writer.BeginObject();
    writer.KV("schema", "roload.audit.v1");
    writer.KV("source", "security_matrix");
    writer.Key("cells").BeginArray();
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      for (std::size_t d = 0; d < kDefenseCount; ++d) {
        const AttackCell& cell = cells[k * kDefenseCount + d];
        writer.BeginObject();
        writer.KV("attack", sec::AttackKindName(kinds[k]));
        writer.KV("defense", core::DefenseName(defenses[d]));
        if (!cell.status.ok()) {
          writer.KV("error", cell.status.ToString());
          writer.EndObject();
          continue;
        }
        writer.KV("outcome", sec::AttackOutcomeName(cell.result.outcome));
        writer.KV("classification", cell.result.classification);
        writer.KV("roload_violation", cell.result.roload_violation);
        writer.KV("has_autopsy", cell.result.has_autopsy);
        if (cell.result.has_autopsy) {
          writer.Key("autopsy").BeginObject();
          writer.KV("fault_pc",
                    StrFormat("0x%llx", static_cast<unsigned long long>(
                                            cell.result.fault_pc)));
          writer.KV("fault_va",
                    StrFormat("0x%llx", static_cast<unsigned long long>(
                                            cell.result.fault_va)));
          writer.KV("inst_key",
                    static_cast<std::uint64_t>(cell.result.inst_key));
          writer.KV("pte_key",
                    static_cast<std::uint64_t>(cell.result.pte_key));
          writer.KV("page_mapped", cell.result.page_mapped);
          writer.KV("page_writable", cell.result.page_writable);
          writer.EndObject();
        }
        writer.EndObject();
      }
    }
    writer.EndArray();
    writer.Key("merged_counters").BeginObject();
    for (const auto& [name, aggregate] : merger.Merged()) {
      writer.Key(name).BeginObject();
      writer.KV("sum", aggregate.sum);
      writer.KV("min", aggregate.min);
      writer.KV("max", aggregate.max);
      writer.KV("runs", aggregate.runs);
      writer.EndObject();
    }
    writer.EndObject();
    writer.EndObject();
    const std::string path = "AUDIT_security_matrix.json";
    if (Status status = trace::WriteFile(path, writer.str()); !status.ok()) {
      std::fprintf(stderr, "bench: %s\n", status.ToString().c_str());
    } else {
      std::printf("wrote %s\n", path.c_str());
    }
  }

  bench::WriteBenchJson(session);
  return any_error ? 1 : 0;
}
