// Section V-B: overall performance / backward compatibility. Unmodified
// (unhardened) SPEC binaries run on the three system variants: the
// baseline system, the processor-modified system, and the
// processor-and-kernel-modified system.
//
// Paper result: all benchmarks finish successfully on all three systems
// and both modifications introduce ~0% runtime and memory overhead — a
// system with ROLoad runs as fast as an unmodified system.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

int main() {
  const double scale = bench::BenchScale(0.3);

  campaign::CampaignSpec grid;
  grid.name = "secVB_compat";
  grid.workloads = workloads::SpecCint2006Suite(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone)};
  grid.variants = {core::SystemVariant::kBaseline,
                   core::SystemVariant::kProcessorModified,
                   core::SystemVariant::kFullRoload};
  const campaign::CampaignResult result =
      campaign::Run(grid, {.jobs = bench::BenchJobs()});
  if (bench::ReportFaults(result)) return 1;

  std::printf("Section V-B: system compatibility and overhead "
              "(scale=%.2f)\n\n", scale);
  std::printf("%-24s | %12s | %10s %10s | %10s %10s\n", "benchmark",
              "base cycles", "proc t%", "proc+k t%", "proc m%",
              "proc+k m%");
  bench::PrintRule(92);

  trace::TelemetrySession session("secVB_compat");
  result.FillSession(&session);
  session.Record("scale", scale);
  double worst_time = 0, worst_mem = 0;
  for (const auto& spec : grid.workloads) {
    const auto& base = bench::MustMetrics(result, spec.name, "none",
                                          core::SystemVariant::kBaseline);
    const auto& proc =
        bench::MustMetrics(result, spec.name, "none",
                           core::SystemVariant::kProcessorModified);
    const auto& full = bench::MustMetrics(result, spec.name, "none",
                                          core::SystemVariant::kFullRoload);
    if (proc.exit_code != base.exit_code ||
        full.exit_code != base.exit_code) {
      std::printf("BACKWARD COMPATIBILITY BROKEN on %s\n",
                  spec.name.c_str());
      return 1;
    }
    const double tp = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(proc.cycles));
    const double tf = core::OverheadPercent(
        static_cast<double>(base.cycles), static_cast<double>(full.cycles));
    const double mp =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(proc.peak_mem_kib));
    const double mf =
        core::OverheadPercent(static_cast<double>(base.peak_mem_kib),
                              static_cast<double>(full.peak_mem_kib));
    std::printf("%-24s | %12llu | %10.4f %10.4f | %10.4f %10.4f\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(base.cycles), tp, tf, mp,
                mf);
    session.Record(spec.name + ".base_cycles", base.cycles);
    session.Record(spec.name + ".proc_time_pct", tp);
    session.Record(spec.name + ".full_time_pct", tf);
    session.Record(spec.name + ".proc_mem_pct", mp);
    session.Record(spec.name + ".full_mem_pct", mf);
    worst_time = std::max({worst_time, tp, tf});
    worst_mem = std::max({worst_mem, mp, mf});
  }
  bench::PrintRule(92);
  std::printf("All benchmarks finished successfully on all three systems "
              "(backward compatible).\n");
  std::printf("Worst runtime overhead: %.4f%%, worst memory overhead: "
              "%.4f%% (paper: ~0%% for both).\n", worst_time, worst_mem);
  session.Record("worst_time_pct", worst_time);
  session.Record("worst_mem_pct", worst_mem);
  session.Record("backward_compatible", std::string_view("yes"));
  bench::WriteBenchJson(session);
  return 0;
}
