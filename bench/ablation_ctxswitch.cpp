// Related-Work claim (Section VI): "Intel CET and ARM BTI require an
// extra architectural state, which needs to be maintained when the OS
// kernel is switching context... ROLoad needs no such state."
//
// This bench runs a multi-process workload with aggressive time slicing
// and accounts for the context-switch state footprint: ROLoad's per-
// process state is exactly the base ISA's (31 GPRs + pc + satp), keys
// living entirely in the page tables. A CET-like design adds a shadow-
// stack pointer + machine state per task; a BTI-like design adds a branch
// state machine. We also show the key checks stay correct across
// thousands of switches with zero TLB shootdowns.
//
// Rebased on the campaign runner like the figure benches: the per-process
// worker builds go through campaign::ParallelMap (deterministic,
// index-ordered at any ROLOAD_BENCH_JOBS), and the measurements land in
// BENCH_ablation_ctxswitch.json. The execution itself stays one preempted
// kernel — context switches only exist inside a single machine, so the
// run is a single cell rather than a workload × defense grid, and the
// printed table is bit-identical to the pre-rebase bench.
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "asmtool/assembler.h"
#include "bench/bench_util.h"
#include "campaign/runner.h"
#include "core/system.h"
#include "support/strings.h"

using namespace roload;

namespace {

std::string Worker(unsigned tag, unsigned key, unsigned iters) {
  return StrFormat(R"(
.section .text
_start:
  li s0, %u
  li s2, 0
loop:
  la t0, tag
  ld.ro t1, (t0), %u
  add s2, s2, t1
  addi s0, s0, -1
  bnez s0, loop
  andi a0, s2, 63
  li a7, 93
  ecall
.section .rodata.key.%u
tag: .quad %u
)",
                   iters, key, key, tag);
}

// One worker's build (ParallelMap slots must be default-constructible,
// which StatusOr is not).
struct ImageCell {
  Status status = Status::Ok();
  asmtool::LinkImage image;
};

}  // namespace

int main() {
  std::printf("Context-switch ablation: per-process state and key "
              "correctness under preemption\n\n");

  constexpr unsigned kProcs = 8;
  constexpr unsigned kIters = 2000;
  trace::TelemetrySession session("ablation_ctxswitch");

  const std::vector<ImageCell> images = campaign::ParallelMap<ImageCell>(
      kProcs, bench::BenchJobs(), [&](std::size_t p) {
        ImageCell cell;
        auto image = asmtool::Assemble(
            Worker(static_cast<unsigned>(p) + 1,
                   100 + static_cast<unsigned>(p), kIters));
        if (image.ok()) {
          cell.image = std::move(*image);
        } else {
          cell.status = image.status();
        }
        return cell;
      });

  core::System system;
  for (unsigned p = 0; p < kProcs; ++p) {
    if (!images[p].status.ok() ||
        !system.kernel().LoadProcess(images[p].image).ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
  }

  const auto results = system.kernel().RunAll(/*slice=*/200,
                                              /*total_limit=*/1ull << 30);
  bool all_ok = true;
  for (unsigned p = 0; p < kProcs; ++p) {
    const bool ok =
        results[p].kind == kernel::ExitKind::kExited &&
        results[p].exit_code ==
            static_cast<std::int64_t>(((p + 1) * kIters) & 63);
    all_ok = all_ok && ok;
  }

  std::printf("  processes                  %u (each with its own keyed "
              "allowlist)\n", kProcs);
  std::printf("  context switches           %llu\n",
              static_cast<unsigned long long>(
                  system.kernel().context_switches()));
  std::printf("  TLB shootdowns on switch   %llu (root-tagged entries)\n",
              static_cast<unsigned long long>(
                  system.cpu().dtlb_stats().flushes));
  std::printf("  all results correct        %s\n", all_ok ? "yes" : "NO");

  std::printf("\n  per-process state saved/restored per switch:\n");
  std::printf("    base RISC-V            31 GPRs + pc + satp = 33 words\n");
  std::printf("    + ROLoad               +0 words (keys live in PTEs)\n");
  std::printf("    + CET-like shadow stk  +2 words (SSP + MSR state)\n");
  std::printf("    + BTI-like             +1 word  (branch-state/PSTATE."
              "BTYPE)\n");

  session.Record("processes", static_cast<std::uint64_t>(kProcs));
  session.Record("context_switches", system.kernel().context_switches());
  session.Record("tlb_shootdowns_on_switch",
                 system.cpu().dtlb_stats().flushes);
  session.Record("all_ok", static_cast<std::uint64_t>(all_ok));
  bench::WriteBenchJson(session);
  return all_ok ? 0 : 1;
}
