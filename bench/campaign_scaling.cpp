// Campaign executor scaling: the same grid at --jobs 1 and --jobs N must
// produce bit-identical simulated results (every run owns its System; the
// simulator has no global mutable state), differing only in host
// wall-clock. This bench measures both and hard-fails on any divergence —
// it is the executable form of the determinism contract in
// src/campaign/runner.h. The recorded speedup depends on the host's core
// count; on a single-core runner it is ~1.0 by construction.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "campaign/spec.h"

using namespace roload;

namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

int main() {
  const double scale = bench::BenchScale(0.2);
  const unsigned hw = std::thread::hardware_concurrency();
  unsigned jobs = bench::BenchJobs();
  if (jobs == 0) jobs = hw == 0 ? 1 : hw;

  campaign::CampaignSpec grid;
  grid.name = "campaign_scaling";
  grid.workloads = workloads::SpecCppSubset(scale);
  grid.configs = {campaign::ForDefense(core::Defense::kNone),
                  campaign::ForDefense(core::Defense::kVCall),
                  campaign::ForDefense(core::Defense::kICall)};

  std::printf("Campaign scaling: %zu runs, serial vs %u jobs "
              "(host threads: %u, scale=%.2f)\n\n",
              grid.workloads.size() * grid.configs.size(), jobs, hw, scale);

  const auto serial_start = std::chrono::steady_clock::now();
  const campaign::CampaignResult serial = campaign::Run(grid, {.jobs = 1});
  const double serial_s =
      Seconds(std::chrono::steady_clock::now() - serial_start);

  const auto parallel_start = std::chrono::steady_clock::now();
  const campaign::CampaignResult parallel =
      campaign::Run(grid, {.jobs = jobs});
  const double parallel_s =
      Seconds(std::chrono::steady_clock::now() - parallel_start);

  if (bench::ReportFaults(serial) || bench::ReportFaults(parallel)) return 1;

  // The determinism gate: cycles, instructions, counters — everything the
  // figures are computed from — must match bit for bit.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const auto& a = serial.outcomes()[i];
    const auto& b = parallel.outcomes()[i];
    const bool same = a.name == b.name && a.metrics.cycles == b.metrics.cycles &&
                      a.metrics.instructions == b.metrics.instructions &&
                      a.metrics.exit_code == b.metrics.exit_code &&
                      a.metrics.peak_mem_kib == b.metrics.peak_mem_kib &&
                      a.metrics.counters == b.metrics.counters;
    if (!same) {
      std::fprintf(stderr, "DIVERGENCE in %s\n", a.name.c_str());
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "%zu runs diverged between --jobs 1 and --jobs %u\n",
                 mismatches, jobs);
    return 1;
  }

  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("  serial   (--jobs 1)  %8.2f s\n", serial_s);
  std::printf("  parallel (--jobs %-2u) %8.2f s\n", jobs, parallel_s);
  std::printf("  speedup              %8.2fx\n", speedup);
  std::printf("  simulated results    bit-identical (%zu runs)\n",
              serial.outcomes().size());

  trace::TelemetrySession session("campaign_scaling");
  parallel.FillSession(&session);
  session.Record("scale", scale);
  session.Record("host_threads", static_cast<std::uint64_t>(hw));
  session.Record("jobs", static_cast<std::uint64_t>(jobs));
  session.Record("serial_seconds", serial_s);
  session.Record("parallel_seconds", parallel_s);
  session.Record("speedup", speedup);
  session.Record("bit_identical", std::string_view("yes"));
  bench::WriteBenchJson(session);
  return 0;
}
