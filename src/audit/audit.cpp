#include "audit/audit.h"

#include <algorithm>
#include <set>

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/opcodes.h"
#include "mem/page_table.h"
#include "mem/phys_memory.h"
#include "support/strings.h"

namespace roload::audit {
namespace {

// How deep the best-effort backtrace goes and how far down the stack it
// scans for return addresses. Both bounded: the autopsy runs once per
// fatal fault, but it must never loop on corrupted state.
constexpr std::size_t kMaxBacktraceFrames = 8;
constexpr std::size_t kMaxStackScanSlots = 64;

}  // namespace

std::string_view CheckOutcomeName(CheckOutcome outcome) {
  switch (outcome) {
    case CheckOutcome::kPass:
      return "pass";
    case CheckOutcome::kKeyMismatch:
      return "key-mismatch";
    case CheckOutcome::kWritablePage:
      return "writable-page";
    case CheckOutcome::kUnmappedPage:
      return "unmapped-page";
  }
  return "?";
}

void DispatchCensus::Record(std::uint64_t pc, std::uint32_t key,
                            CheckOutcome outcome, std::uint64_t virt_addr,
                            unsigned hart) {
  SiteRecord& site = sites_[SiteKey(hart, pc)];
  site.pc = pc;
  site.hart = hart;
  site.key = key;
  site.last_outcome = outcome;
  if (outcome == CheckOutcome::kPass) {
    ++site.passes;
    ++total_passes_;
  } else {
    ++site.fails;
    ++total_fails_;
  }
  const std::uint64_t page = virt_addr >> mem::kPageShift;
  auto it = std::lower_bound(site.pages.begin(), site.pages.end(), page);
  if (it == site.pages.end() || *it != page) {
    if (site.pages.size() < SiteRecord::kMaxPagesPerSite) {
      site.pages.insert(it, page);
    } else {
      site.pages_saturated = true;
    }
  }
}

std::map<std::uint32_t, KeyTotals> DispatchCensus::PerKey() const {
  std::map<std::uint32_t, KeyTotals> per_key;
  std::map<std::uint32_t, std::set<unsigned>> harts_per_key;
  for (const auto& [site_key, site] : sites_) {
    KeyTotals& totals = per_key[site.key];
    ++totals.sites;
    totals.passes += site.passes;
    totals.fails += site.fails;
    harts_per_key[site.key].insert(site.hart);
  }
  for (auto& [key, totals] : per_key) {
    totals.harts = harts_per_key[key].size();
  }
  return per_key;
}

Auditor::Auditor(cpu::Cpu* cpu, mem::PhysMemory* memory)
    : cpu_(cpu), hart_cpus_{cpu}, memory_(memory) {}

void Auditor::RegisterHartCpu(unsigned hart, cpu::Cpu* cpu) {
  if (hart_cpus_.size() <= hart) hart_cpus_.resize(hart + 1, nullptr);
  hart_cpus_[hart] = cpu;
}

void Auditor::SetImage(const asmtool::LinkImage& image) {
  sections_.clear();
  for (const asmtool::Section& section : image.sections) {
    sections_.push_back(SectionSpan{section.name, section.vaddr, section.size,
                                    section.perms.exec, section.key});
  }
  // The image map is name-sorted; symbolization wants address order.
  std::vector<std::pair<std::uint64_t, std::string>> by_addr;
  by_addr.reserve(image.symbols.size());
  for (const auto& [name, addr] : image.symbols) {
    by_addr.emplace_back(addr, name);
  }
  std::sort(by_addr.begin(), by_addr.end());
  symbols_ = std::move(by_addr);
}

void Auditor::OnEvent(const trace::TraceEvent& event) {
  if (event.type != trace::EventType::kRoLoadCheck) return;
  const auto key = static_cast<std::uint32_t>(event.arg & 0xFFFF);
  const auto outcome =
      static_cast<CheckOutcome>((event.arg >> 16) & 0xFF);
  census_.Record(event.pc, key, outcome, event.addr, event.hart);
}

std::string Auditor::NearestSymbol(std::uint64_t addr) const {
  auto it = std::upper_bound(
      symbols_.begin(), symbols_.end(), addr,
      [](std::uint64_t a, const auto& entry) { return a < entry.first; });
  if (it == symbols_.begin()) return "";
  --it;
  const std::uint64_t offset = addr - it->first;
  if (offset == 0) return it->second;
  return StrFormat("%s+0x%llx", it->second.c_str(),
                   static_cast<unsigned long long>(offset));
}

std::string Auditor::SectionContaining(std::uint64_t addr) const {
  for (const SectionSpan& section : sections_) {
    if (addr >= section.vaddr && addr < section.vaddr + section.size) {
      return section.name;
    }
  }
  return "";
}

std::string Auditor::SectionForKey(std::uint32_t key) const {
  if (key == 0) return "";
  for (const SectionSpan& section : sections_) {
    if (section.key == key) return section.name;
  }
  return "";
}

bool Auditor::InExecutableSection(std::uint64_t addr) const {
  for (const SectionSpan& section : sections_) {
    if (section.exec && addr >= section.vaddr &&
        addr < section.vaddr + section.size) {
      return true;
    }
  }
  return false;
}

void Auditor::CaptureBacktrace(cpu::Cpu* cpu, Autopsy* autopsy) const {
  autopsy->backtrace.push_back(autopsy->fault_pc);
  // Frame 1: ra, when it points into code (leaf functions and the common
  // just-called case; our backend has no frame pointers to chain).
  const std::uint64_t ra = cpu->reg(isa::kRa);
  if (InExecutableSection(ra) && ra != autopsy->fault_pc) {
    autopsy->backtrace.push_back(ra);
  }
  // Deeper frames: scan the stack top for saved return addresses. Purely
  // best-effort — a code-looking data word adds a spurious frame, which
  // the report labels as such ("stack-scan").
  const std::uint64_t sp = cpu->reg(isa::kSp);
  for (std::size_t slot = 0; slot < kMaxStackScanSlots &&
                             autopsy->backtrace.size() < kMaxBacktraceFrames;
       ++slot) {
    std::uint64_t value = 0;
    if (!cpu->DebugReadVirt(sp + 8 * slot, 8, &value)) break;
    if (InExecutableSection(value) && value != autopsy->backtrace.back()) {
      autopsy->backtrace.push_back(value);
    }
  }
}

void Auditor::OnFatalFault(const isa::Trap& trap,
                           const kernel::RunResult& result) {
  Autopsy autopsy;
  autopsy.fault_pc = result.fault_pc;
  autopsy.fault_va = trap.tval;
  autopsy.cause = trap.cause;
  autopsy.signal = result.signal;
  autopsy.roload_violation = result.roload_violation;
  autopsy.hart = result.hart;

  // Read the faulting hart's architectural state — on SMP machines the
  // fault may have been taken on any hart (RunResult carries which).
  cpu::Cpu* cpu = cpu_;
  if (result.hart < hart_cpus_.size() &&
      hart_cpus_[result.hart] != nullptr) {
    cpu = hart_cpus_[result.hart];
  }

  // Re-fetch and decode the faulting instruction through the debug port
  // (bypasses the faulted access path) to recover the static key.
  std::uint64_t raw = 0;
  if (cpu->DebugReadVirt(autopsy.fault_pc, 4, &raw) ||
      cpu->DebugReadVirt(autopsy.fault_pc, 2, &raw)) {
    if (auto inst = isa::Decode(static_cast<std::uint32_t>(raw))) {
      autopsy.inst_decoded = true;
      autopsy.inst_is_roload = isa::IsRoLoad(inst->op);
      autopsy.inst_key = inst->key;
      autopsy.inst_text = isa::Disassemble(*inst);
    }
  }

  // Leaf-PTE state of the target page: the other half of the key check.
  mem::PageWalker walker(memory_);
  if (auto walk = walker.Walk(cpu->root_ppn(), autopsy.fault_va)) {
    autopsy.page_mapped = true;
    autopsy.page_readable = walk->pte.readable();
    autopsy.page_writable = walk->pte.writable();
    autopsy.pte_key = walk->pte.key();
  }

  for (unsigned r = 0; r < isa::kNumRegs; ++r) {
    autopsy.regs[r] = cpu->reg(r);
  }
  CaptureBacktrace(cpu, &autopsy);

  autopsy.fault_symbol = NearestSymbol(autopsy.fault_pc);
  autopsy.va_symbol = NearestSymbol(autopsy.fault_va);
  autopsy.va_section = SectionContaining(autopsy.fault_va);
  autopsy.expected_section = SectionForKey(autopsy.inst_key);

  if (autopsy.cause == isa::TrapCause::kRoLoadPageFault) {
    if (!autopsy.page_mapped) {
      autopsy.classification =
          CheckOutcomeName(CheckOutcome::kUnmappedPage);
    } else if (autopsy.page_writable || !autopsy.page_readable) {
      autopsy.classification =
          CheckOutcomeName(CheckOutcome::kWritablePage);
    } else {
      // Read-only and mapped: the parallel check can only have failed on
      // the key comparison.
      autopsy.classification =
          CheckOutcomeName(CheckOutcome::kKeyMismatch);
    }
  } else {
    autopsy.classification = std::string(isa::TrapCauseName(autopsy.cause));
  }

  autopsies_.push_back(std::move(autopsy));
}

void Auditor::AppendCounters(
    std::vector<std::pair<std::string, std::uint64_t>>* out) const {
  out->emplace_back("audit.census.sites",
                    static_cast<std::uint64_t>(census_.sites().size()));
  out->emplace_back("audit.census.pass", census_.total_passes());
  out->emplace_back("audit.census.fail", census_.total_fails());
  out->emplace_back("audit.autopsies",
                    static_cast<std::uint64_t>(autopsies_.size()));
}

}  // namespace roload::audit
