// Security forensics for the ROLoad mechanism (the observability half of
// the paper's security argument). Two instruments, both riding on the
// telemetry hub and both strictly observation-only:
//
//  * Dispatch census — a per-run map of every *executed* ld.ro / lw.ro /
//    c.ld.ro site: pc, static key, pass/fail counts, distinct pages
//    touched and last check outcome, aggregated into per-key totals. Fed
//    by the kRoLoadCheck event stream the CPU emits on every keyed-load
//    translation, so key coverage and key reuse are visible at a glance.
//
//  * Fault autopsy — when the kernel delivers a fatal signal (the ROLoad
//    page fault's SIGSEGV above all), a structured forensic record taken
//    while the process state is still intact: faulting pc/VA, the
//    instruction key vs. the PTE key, the mapped/read-only/writable state
//    of the target page, a register-file snapshot, a best-effort ra/stack
//    backtrace, nearest symbols, and which .rodata.key.<K> section the
//    access *should* have resolved into.
//
// One Auditor per System; enable with SystemConfig::trace.audit (or
// `rrun --audit FILE`). Exports live in audit/report.h.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asmtool/image.h"
#include "cpu/cpu.h"
#include "isa/registers.h"
#include "isa/traps.h"
#include "kernel/kernel.h"
#include "trace/events.h"

namespace roload::audit {

// Outcome of one ld.ro key check. Numeric values match
// tlb::RoLoadFailKind (with 0 = the check passed); the CPU packs them
// into kRoLoadCheck events as arg bits [31:16].
enum class CheckOutcome : std::uint8_t {
  kPass = 0,
  kKeyMismatch = 1,
  kWritablePage = 2,
  kUnmappedPage = 3,
};

std::string_view CheckOutcomeName(CheckOutcome outcome);

// One executed keyed-load site. On SMP machines a site is a (hart, pc)
// pair — the same static instruction executed from two harts is two
// census rows, so cross-hart key usage is visible per hart.
struct SiteRecord {
  std::uint64_t pc = 0;
  unsigned hart = 0;            // hart that executed this site
  std::uint32_t key = 0;        // static key of the instruction
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;
  CheckOutcome last_outcome = CheckOutcome::kPass;
  // Distinct virtual pages this site loaded from, sorted. Bounded by
  // kMaxPagesPerSite; `pages_saturated` reports when the bound was hit
  // (the count is then a lower bound, never silently wrong).
  std::vector<std::uint64_t> pages;
  bool pages_saturated = false;

  static constexpr std::size_t kMaxPagesPerSite = 256;
};

// Per-key rollup of the census, including the cross-hart spread: how many
// distinct harts dispatched through the key.
struct KeyTotals {
  std::uint64_t sites = 0;
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;
  std::uint64_t harts = 0;  // distinct harts that executed sites of this key
};

class DispatchCensus {
 public:
  void Record(std::uint64_t pc, std::uint32_t key, CheckOutcome outcome,
              std::uint64_t virt_addr, unsigned hart = 0);

  // Sites keyed by (hart, pc) packed as hart<<56 | pc — for hart 0 (and
  // thus every single-hart run) the map key is exactly the pc, and the
  // iteration order stays deterministic for the exporters.
  static std::uint64_t SiteKey(unsigned hart, std::uint64_t pc) {
    return (static_cast<std::uint64_t>(hart) << 56) | pc;
  }
  const std::map<std::uint64_t, SiteRecord>& sites() const { return sites_; }
  std::map<std::uint32_t, KeyTotals> PerKey() const;

  std::uint64_t total_passes() const { return total_passes_; }
  std::uint64_t total_fails() const { return total_fails_; }

 private:
  std::map<std::uint64_t, SiteRecord> sites_;
  std::uint64_t total_passes_ = 0;
  std::uint64_t total_fails_ = 0;
};

// The forensic record of one fatal fault.
struct Autopsy {
  std::uint64_t fault_pc = 0;
  std::uint64_t fault_va = 0;
  isa::TrapCause cause = isa::TrapCause::kLoadPageFault;
  int signal = 0;
  bool roload_violation = false;
  unsigned hart = 0;  // hart that took the fault (0 on single-hart runs)

  // The faulting instruction, re-fetched and decoded at autopsy time.
  bool inst_decoded = false;
  bool inst_is_roload = false;
  std::uint32_t inst_key = 0;
  std::string inst_text;  // disassembly ("" when undecodable)

  // Leaf-PTE state of the target page at fault time.
  bool page_mapped = false;
  bool page_readable = false;
  bool page_writable = false;
  std::uint32_t pte_key = 0;

  // Execution context.
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  std::vector<std::uint64_t> backtrace;  // [0] = fault pc, then ra/stack

  // Image-derived attribution (empty strings when unresolvable).
  std::string fault_symbol;      // nearest symbol at/below fault_pc
  std::string va_symbol;         // nearest symbol at/below fault_va
  std::string va_section;        // image section containing fault_va
  std::string expected_section;  // the .rodata.key.<inst_key> section

  // "key-mismatch" / "writable-page" / "unmapped-page" for ROLoad faults,
  // else the trap-cause name.
  std::string classification;
};

// The per-System forensics collector: an event sink (census feed) plus a
// fatal-fault observer (autopsy capture). Attach via System (which wires
// both hooks) — see SystemConfig::trace.audit.
class Auditor : public trace::EventSink, public kernel::FatalFaultObserver {
 public:
  Auditor(cpu::Cpu* cpu, mem::PhysMemory* memory);

  // SMP: registers hart `hart`'s CPU so autopsies read the *faulting*
  // hart's architectural state (registers, satp, stack) rather than hart
  // 0's. Hart 0 is the constructor's cpu; unregistered hart ids fall back
  // to it.
  void RegisterHartCpu(unsigned hart, cpu::Cpu* cpu);

  // Copies the image's symbol table and section spans for symbolization.
  // Call at load time; without it autopsies still capture the hardware
  // state, just with empty symbol/section attribution.
  void SetImage(const asmtool::LinkImage& image);

  // trace::EventSink — consumes kRoLoadCheck events into the census.
  void OnEvent(const trace::TraceEvent& event) override;

  // kernel::FatalFaultObserver — captures an autopsy.
  void OnFatalFault(const isa::Trap& trap,
                    const kernel::RunResult& result) override;

  const DispatchCensus& census() const { return census_; }
  const std::vector<Autopsy>& autopsies() const { return autopsies_; }

  // "name" or "name+0xOFF" for the nearest symbol at/below `addr`; ""
  // when no symbol precedes it.
  std::string NearestSymbol(std::uint64_t addr) const;
  // Name of the image section containing `addr` ("" when none).
  std::string SectionContaining(std::uint64_t addr) const;
  // Name of the first image section carrying page key `key` ("" when the
  // image defines none — itself a forensic signal: the instruction names
  // a key no allowlist section has).
  std::string SectionForKey(std::uint32_t key) const;

  // Dynamic counter source ("audit.census.sites", "audit.census.pass",
  // "audit.census.fail", "audit.autopsies") for the registry.
  void AppendCounters(
      std::vector<std::pair<std::string, std::uint64_t>>* out) const;

 private:
  struct SectionSpan {
    std::string name;
    std::uint64_t vaddr = 0;
    std::uint64_t size = 0;
    bool exec = false;
    std::uint32_t key = 0;
  };

  bool InExecutableSection(std::uint64_t addr) const;
  void CaptureBacktrace(cpu::Cpu* cpu, Autopsy* autopsy) const;

  cpu::Cpu* cpu_;
  std::vector<cpu::Cpu*> hart_cpus_;  // [0] == cpu_; grown by RegisterHartCpu
  mem::PhysMemory* memory_;
  std::vector<SectionSpan> sections_;
  std::vector<std::pair<std::uint64_t, std::string>> symbols_;  // addr-sorted
  DispatchCensus census_;
  std::vector<Autopsy> autopsies_;
};

}  // namespace roload::audit
