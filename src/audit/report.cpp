#include "audit/report.h"

#include <string_view>

#include "isa/registers.h"
#include "isa/traps.h"
#include "support/strings.h"

namespace roload::audit {
namespace {

std::string Hex(std::uint64_t value) {
  return StrFormat("0x%llx", static_cast<unsigned long long>(value));
}

}  // namespace

void WriteAutopsyJson(JsonWriter* writer, const Autopsy& autopsy) {
  writer->BeginObject();
  writer->KV("classification", autopsy.classification);
  writer->KV("cause", isa::TrapCauseName(autopsy.cause));
  writer->KV("signal", autopsy.signal);
  writer->KV("roload_violation", autopsy.roload_violation);
  writer->KV("hart", static_cast<std::uint64_t>(autopsy.hart));
  writer->KV("fault_pc", Hex(autopsy.fault_pc));
  writer->KV("fault_va", Hex(autopsy.fault_va));
  writer->KV("fault_symbol", autopsy.fault_symbol);

  writer->Key("instruction").BeginObject();
  writer->KV("decoded", autopsy.inst_decoded);
  writer->KV("is_roload", autopsy.inst_is_roload);
  writer->KV("key", static_cast<std::uint64_t>(autopsy.inst_key));
  writer->KV("text", autopsy.inst_text);
  writer->EndObject();

  writer->Key("page").BeginObject();
  writer->KV("mapped", autopsy.page_mapped);
  writer->KV("readable", autopsy.page_readable);
  writer->KV("writable", autopsy.page_writable);
  writer->KV("key", static_cast<std::uint64_t>(autopsy.pte_key));
  writer->KV("section", autopsy.va_section);
  writer->KV("symbol", autopsy.va_symbol);
  writer->EndObject();

  writer->KV("expected_section", autopsy.expected_section);

  writer->Key("backtrace").BeginArray();
  for (std::uint64_t frame : autopsy.backtrace) writer->Value(Hex(frame));
  writer->EndArray();

  writer->Key("regs").BeginObject();
  for (unsigned r = 1; r < isa::kNumRegs; ++r) {
    writer->KV(isa::RegName(r), Hex(autopsy.regs[r]));
  }
  writer->EndObject();

  writer->EndObject();
}

std::string ExportAuditJson(const Auditor& auditor) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", "roload.audit.v1");

  const DispatchCensus& census = auditor.census();
  writer.Key("census").BeginObject();
  writer.KV("total_pass", census.total_passes());
  writer.KV("total_fail", census.total_fails());

  writer.Key("sites").BeginArray();
  for (const auto& [pc, site] : census.sites()) {
    writer.BeginObject();
    writer.KV("pc", Hex(site.pc));
    writer.KV("hart", static_cast<std::uint64_t>(site.hart));
    writer.KV("symbol", auditor.NearestSymbol(site.pc));
    writer.KV("key", static_cast<std::uint64_t>(site.key));
    writer.KV("passes", site.passes);
    writer.KV("fails", site.fails);
    writer.KV("last_outcome", CheckOutcomeName(site.last_outcome));
    writer.KV("pages", static_cast<std::uint64_t>(site.pages.size()));
    writer.KV("pages_saturated", site.pages_saturated);
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("per_key").BeginArray();
  for (const auto& [key, totals] : census.PerKey()) {
    writer.BeginObject();
    writer.KV("key", static_cast<std::uint64_t>(key));
    writer.KV("section", auditor.SectionForKey(key));
    writer.KV("sites", totals.sites);
    writer.KV("passes", totals.passes);
    writer.KV("fails", totals.fails);
    writer.KV("harts", totals.harts);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();  // census

  writer.Key("autopsies").BeginArray();
  for (const Autopsy& autopsy : auditor.autopsies()) {
    WriteAutopsyJson(&writer, autopsy);
  }
  writer.EndArray();

  writer.EndObject();
  return writer.str();
}

std::string ExportAuditText(const Auditor& auditor) {
  std::string out;

  int index = 0;
  for (const Autopsy& autopsy : auditor.autopsies()) {
    out += StrFormat("=== ROLoad fault autopsy #%d ===\n", index++);
    out += StrFormat("classification : %s\n", autopsy.classification.c_str());
    out += StrFormat("hart           : %u\n", autopsy.hart);
    out += StrFormat("cause          : %s (signal %d%s)\n",
                     std::string(isa::TrapCauseName(autopsy.cause)).c_str(),
                     autopsy.signal,
                     autopsy.roload_violation ? ", roload violation" : "");
    out += StrFormat("fault pc       : %s  %s\n", Hex(autopsy.fault_pc).c_str(),
                     autopsy.fault_symbol.c_str());
    out += StrFormat("fault va       : %s  %s\n", Hex(autopsy.fault_va).c_str(),
                     autopsy.va_symbol.c_str());
    if (autopsy.inst_decoded) {
      out += StrFormat("instruction    : %s  (key %u)\n",
                       autopsy.inst_text.c_str(), autopsy.inst_key);
    } else {
      out += "instruction    : <undecodable>\n";
    }
    if (autopsy.page_mapped) {
      out += StrFormat("target page    : %s%s%s key %u  section %s\n",
                       autopsy.page_readable ? "r" : "-",
                       autopsy.page_writable ? "w" : "-", "-", autopsy.pte_key,
                       autopsy.va_section.empty() ? "<none>"
                                                  : autopsy.va_section.c_str());
    } else {
      out += "target page    : <unmapped>\n";
    }
    if (!autopsy.expected_section.empty()) {
      out += StrFormat("expected in    : %s\n",
                       autopsy.expected_section.c_str());
    }
    out += "backtrace      :";
    for (std::uint64_t frame : autopsy.backtrace) {
      const std::string symbol = auditor.NearestSymbol(frame);
      out += StrFormat(" %s%s%s%s", Hex(frame).c_str(),
                       symbol.empty() ? "" : " (",
                       symbol.c_str(), symbol.empty() ? "" : ")");
    }
    out += "\n";
    // Registers most relevant to a hijack investigation first.
    out += StrFormat("ra/sp          : %s / %s\n",
                     Hex(autopsy.regs[isa::kRa]).c_str(),
                     Hex(autopsy.regs[isa::kSp]).c_str());
    out += "\n";
  }

  const DispatchCensus& census = auditor.census();
  out += "=== ld.ro dispatch census ===\n";
  out += StrFormat("sites: %zu  pass: %llu  fail: %llu\n",
                   census.sites().size(),
                   static_cast<unsigned long long>(census.total_passes()),
                   static_cast<unsigned long long>(census.total_fails()));
  for (const auto& [key, totals] : census.PerKey()) {
    const std::string section = auditor.SectionForKey(key);
    out += StrFormat(
        "  key %-4u sites %-4llu pass %-8llu fail %-4llu harts %-2llu %s\n",
        key, static_cast<unsigned long long>(totals.sites),
        static_cast<unsigned long long>(totals.passes),
        static_cast<unsigned long long>(totals.fails),
        static_cast<unsigned long long>(totals.harts),
        section.empty() ? "<no section>" : section.c_str());
  }
  for (const auto& [site_key, site] : census.sites()) {
    const std::string symbol = auditor.NearestSymbol(site.pc);
    out += StrFormat(
        "  site %s hart %-2u key %-4u pass %-8llu fail %-4llu pages %zu%s  "
        "%s\n",
        Hex(site.pc).c_str(), site.hart, site.key,
        static_cast<unsigned long long>(site.passes),
        static_cast<unsigned long long>(site.fails), site.pages.size(),
        site.pages_saturated ? "+" : "", symbol.c_str());
  }
  return out;
}

}  // namespace roload::audit
