// Exporters for the audit layer: the machine-readable `roload.audit.v1`
// JSON document and a human-readable forensic text report. Like the
// trace exporters, both are deterministic for a deterministic run.
#pragma once

#include <string>

#include "audit/audit.h"
#include "support/json.h"

namespace roload::audit {

// {"schema":"roload.audit.v1",
//  "census":{"total_pass":N,"total_fail":N,
//            "sites":[{pc,key,passes,fails,last_outcome,pages,
//                      pages_saturated,symbol},...],
//            "per_key":[{key,sites,passes,fails,section},...]},
//  "autopsies":[{...}]}
// Sites are pc-sorted, per_key entries key-sorted; `symbol`/`section`
// attribution is "" when the image has none.
std::string ExportAuditJson(const Auditor& auditor);

// Multi-line human report: one autopsy block per fatal fault (the worked
// example in docs/OBSERVABILITY.md shows the layout), then a census
// summary table.
std::string ExportAuditText(const Auditor& auditor);

// Writes one autopsy as a JSON object into `writer` (the caller opens the
// surrounding array/keys). Shared between ExportAuditJson and the bench
// harness, which embeds autopsies in its own result documents.
void WriteAutopsyJson(JsonWriter* writer, const Autopsy& autopsy);

}  // namespace roload::audit
