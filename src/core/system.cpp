#include "core/system.h"

#include "support/strings.h"

namespace roload::core {

void RegisterCpuCounters(trace::CounterRegistry* counters,
                         const cpu::Cpu& cpu, const std::string& prefix) {
  const cpu::CpuStats& c = cpu.stats();
  counters->Register(prefix + "cpu.cycles", &c.cycles);
  counters->Register(prefix + "cpu.instret", &c.instructions);
  counters->Register(prefix + "cpu.loads", &c.loads);
  counters->Register(prefix + "cpu.stores", &c.stores);
  counters->Register(prefix + "cpu.roload_loads", &c.roload_loads);
  counters->Register(prefix + "cpu.branches", &c.branches);
  counters->Register(prefix + "cpu.taken_branches", &c.taken_branches);
  counters->Register(prefix + "cpu.indirect_jumps", &c.indirect_jumps);

  const tlb::TlbStats& it = cpu.itlb_stats();
  counters->Register(prefix + "tlb.i.hit", &it.hits);
  counters->Register(prefix + "tlb.i.miss", &it.misses);
  counters->Register(prefix + "tlb.i.flush", &it.flushes);
  counters->Register(prefix + "tlb.i.permission_fault", &it.permission_faults);

  const tlb::TlbStats& dt = cpu.dtlb_stats();
  counters->Register(prefix + "tlb.d.hit", &dt.hits);
  counters->Register(prefix + "tlb.d.miss", &dt.misses);
  counters->Register(prefix + "tlb.d.flush", &dt.flushes);
  counters->Register(prefix + "tlb.d.permission_fault", &dt.permission_faults);
  counters->Register(prefix + "tlb.d.key_check", &dt.key_checks);
  counters->Register(prefix + "tlb.d.key_check_hit", &dt.key_check_hits);
  counters->Register(prefix + "tlb.d.key_fault", &dt.roload_key_faults);
  counters->Register(prefix + "tlb.d.writable_fault",
                     &dt.roload_writable_faults);

  const cache::CacheStats& ic = cpu.icache_stats();
  counters->Register(prefix + "cache.i.hit", &ic.hits);
  counters->Register(prefix + "cache.i.miss", &ic.misses);
  counters->Register(prefix + "cache.i.writeback", &ic.writebacks);

  const cache::CacheStats& dc = cpu.dcache_stats();
  counters->Register(prefix + "cache.d.hit", &dc.hits);
  counters->Register(prefix + "cache.d.miss", &dc.misses);
  counters->Register(prefix + "cache.d.writeback", &dc.writebacks);

  // Per-key key-check breakdown. The keys a run exercises are not known
  // up front, so this is a dynamic source over the dTLB's per-key table
  // rather than fixed cells; the sums match tlb.d.key_check_hit and
  // tlb.d.key_check exactly (the differential test in tests/test_tlb.cpp
  // pins the invariant).
  const tlb::TlbStats* dtlb = &cpu.dtlb_stats();
  counters->RegisterSource(
      [dtlb, prefix](std::vector<std::pair<std::string, std::uint64_t>>* out) {
        for (const tlb::TlbKeyCheckCount& entry : dtlb->key_check_by_key) {
          out->emplace_back(
              prefix + StrFormat("tlb.keycheck.pass.%u", entry.key),
              entry.passes);
          out->emplace_back(
              prefix + StrFormat("tlb.keycheck.fail.%u", entry.key),
              entry.fails);
        }
      });
}

void RegisterKernelCounters(trace::CounterRegistry* counters,
                            const kernel::Kernel& kernel) {
  const kernel::KernelStats& k = kernel.stats();
  counters->Register("kernel.syscalls", &k.syscalls);
  counters->Register("kernel.traps", &k.traps);
  counters->Register("kernel.fault.roload", &k.roload_faults);
  counters->Register("kernel.signals", &k.signals);
  counters->Register("kernel.context_switches", &k.context_switches);
  counters->Register("kernel.tlb_shootdowns", &k.tlb_shootdowns);
}

System::System(const SystemConfig& config) : config_(config) {
  memory_ = std::make_unique<mem::PhysMemory>(config.memory_bytes);

  // The audit layer's census is fed by kRoLoad events, so enabling audit
  // implies that category. Pure observation either way: the category mask
  // never influences architectural state or cycle accounting.
  trace::TraceConfig trace_config = config.trace;
  if (trace_config.audit) {
    trace_config.categories |=
        trace::CategoryBit(trace::EventCategory::kRoLoad);
  }
  trace_ = std::make_unique<trace::Hub>(trace_config);

  cpu::CpuConfig cpu_config = config.cpu;
  cpu_config.roload_enabled =
      config.variant != SystemVariant::kBaseline;
  cpu_ = std::make_unique<cpu::Cpu>(cpu_config, memory_.get());

  kernel::KernelConfig kernel_config;
  kernel_config.roload_aware = config.variant == SystemVariant::kFullRoload;
  kernel_ = std::make_unique<kernel::Kernel>(kernel_config, memory_.get(),
                                             cpu_.get());

  trace_->set_clock(&cpu_->stats().cycles);
  cpu_->set_trace(trace_.get());
  kernel_->set_trace(trace_.get());
  RegisterCpuCounters(&trace_->counters(), *cpu_);
  RegisterKernelCounters(&trace_->counters(), *kernel_);

  if (config_.trace.audit) {
    auditor_ = std::make_unique<audit::Auditor>(cpu_.get(), memory_.get());
    trace_->AddSink(auditor_.get());
    kernel_->set_fault_observer(auditor_.get());
    const audit::Auditor* auditor = auditor_.get();
    trace_->counters().RegisterSource(
        [auditor](std::vector<std::pair<std::string, std::uint64_t>>* out) {
          auditor->AppendCounters(out);
        });
  }
}

Status System::Load(const asmtool::LinkImage& image) {
  if (auditor_ != nullptr) auditor_->SetImage(image);
  return kernel_->Load(image);
}

kernel::RunResult System::Run(std::uint64_t max_instructions) {
  return kernel_->Run(max_instructions);
}

}  // namespace roload::core
