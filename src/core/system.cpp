#include "core/system.h"

namespace roload::core {

System::System(const SystemConfig& config) : config_(config) {
  memory_ = std::make_unique<mem::PhysMemory>(config.memory_bytes);

  cpu::CpuConfig cpu_config = config.cpu;
  cpu_config.roload_enabled =
      config.variant != SystemVariant::kBaseline;
  cpu_ = std::make_unique<cpu::Cpu>(cpu_config, memory_.get());

  kernel::KernelConfig kernel_config;
  kernel_config.roload_aware = config.variant == SystemVariant::kFullRoload;
  kernel_ = std::make_unique<kernel::Kernel>(kernel_config, memory_.get(),
                                             cpu_.get());
}

Status System::Load(const asmtool::LinkImage& image) {
  return kernel_->Load(image);
}

kernel::RunResult System::Run(std::uint64_t max_instructions) {
  return kernel_->Run(max_instructions);
}

}  // namespace roload::core
