#include "core/system.h"

#include "support/strings.h"

namespace roload::core {
namespace {

// Bridges every module's stats struct into the hierarchical counter
// namespace. The registry stores pointers into the live structs, so the
// hot paths keep their plain-increment cost and a snapshot always shows
// the current values.
void RegisterCounters(trace::CounterRegistry* counters, const cpu::Cpu& cpu,
                      const kernel::Kernel& kernel) {
  const cpu::CpuStats& c = cpu.stats();
  counters->Register("cpu.cycles", &c.cycles);
  counters->Register("cpu.instret", &c.instructions);
  counters->Register("cpu.loads", &c.loads);
  counters->Register("cpu.stores", &c.stores);
  counters->Register("cpu.roload_loads", &c.roload_loads);
  counters->Register("cpu.branches", &c.branches);
  counters->Register("cpu.taken_branches", &c.taken_branches);
  counters->Register("cpu.indirect_jumps", &c.indirect_jumps);

  const tlb::TlbStats& it = cpu.itlb_stats();
  counters->Register("tlb.i.hit", &it.hits);
  counters->Register("tlb.i.miss", &it.misses);
  counters->Register("tlb.i.flush", &it.flushes);
  counters->Register("tlb.i.permission_fault", &it.permission_faults);

  const tlb::TlbStats& dt = cpu.dtlb_stats();
  counters->Register("tlb.d.hit", &dt.hits);
  counters->Register("tlb.d.miss", &dt.misses);
  counters->Register("tlb.d.flush", &dt.flushes);
  counters->Register("tlb.d.permission_fault", &dt.permission_faults);
  counters->Register("tlb.d.key_check", &dt.key_checks);
  counters->Register("tlb.d.key_check_hit", &dt.key_check_hits);
  counters->Register("tlb.d.key_fault", &dt.roload_key_faults);
  counters->Register("tlb.d.writable_fault", &dt.roload_writable_faults);

  const cache::CacheStats& ic = cpu.icache_stats();
  counters->Register("cache.i.hit", &ic.hits);
  counters->Register("cache.i.miss", &ic.misses);
  counters->Register("cache.i.writeback", &ic.writebacks);

  const cache::CacheStats& dc = cpu.dcache_stats();
  counters->Register("cache.d.hit", &dc.hits);
  counters->Register("cache.d.miss", &dc.misses);
  counters->Register("cache.d.writeback", &dc.writebacks);

  const kernel::KernelStats& k = kernel.stats();
  counters->Register("kernel.syscalls", &k.syscalls);
  counters->Register("kernel.traps", &k.traps);
  counters->Register("kernel.fault.roload", &k.roload_faults);
  counters->Register("kernel.signals", &k.signals);
  counters->Register("kernel.context_switches", &k.context_switches);

  // Per-key key-check breakdown. The keys a run exercises are not known
  // up front, so this is a dynamic source over the dTLB's per-key table
  // rather than fixed cells; the sums match tlb.d.key_check_hit and
  // tlb.d.key_check exactly (the differential test in tests/test_tlb.cpp
  // pins the invariant).
  const tlb::TlbStats* dtlb = &cpu.dtlb_stats();
  counters->RegisterSource(
      [dtlb](std::vector<std::pair<std::string, std::uint64_t>>* out) {
        for (const tlb::TlbKeyCheckCount& entry : dtlb->key_check_by_key) {
          out->emplace_back(StrFormat("tlb.keycheck.pass.%u", entry.key),
                            entry.passes);
          out->emplace_back(StrFormat("tlb.keycheck.fail.%u", entry.key),
                            entry.fails);
        }
      });
}

}  // namespace

System::System(const SystemConfig& config) : config_(config) {
  memory_ = std::make_unique<mem::PhysMemory>(config.memory_bytes);

  // The audit layer's census is fed by kRoLoad events, so enabling audit
  // implies that category. Pure observation either way: the category mask
  // never influences architectural state or cycle accounting.
  trace::TraceConfig trace_config = config.trace;
  if (trace_config.audit) {
    trace_config.categories |=
        trace::CategoryBit(trace::EventCategory::kRoLoad);
  }
  trace_ = std::make_unique<trace::Hub>(trace_config);

  cpu::CpuConfig cpu_config = config.cpu;
  cpu_config.roload_enabled =
      config.variant != SystemVariant::kBaseline;
  cpu_ = std::make_unique<cpu::Cpu>(cpu_config, memory_.get());

  kernel::KernelConfig kernel_config;
  kernel_config.roload_aware = config.variant == SystemVariant::kFullRoload;
  kernel_ = std::make_unique<kernel::Kernel>(kernel_config, memory_.get(),
                                             cpu_.get());

  trace_->set_clock(&cpu_->stats().cycles);
  cpu_->set_trace(trace_.get());
  kernel_->set_trace(trace_.get());
  RegisterCounters(&trace_->counters(), *cpu_, *kernel_);

  if (config_.trace.audit) {
    auditor_ = std::make_unique<audit::Auditor>(cpu_.get(), memory_.get());
    trace_->AddSink(auditor_.get());
    kernel_->set_fault_observer(auditor_.get());
    const audit::Auditor* auditor = auditor_.get();
    trace_->counters().RegisterSource(
        [auditor](std::vector<std::pair<std::string, std::uint64_t>>* out) {
          auditor->AppendCounters(out);
        });
  }
}

Status System::Load(const asmtool::LinkImage& image) {
  if (auditor_ != nullptr) auditor_->SetImage(image);
  return kernel_->Load(image);
}

kernel::RunResult System::Run(std::uint64_t max_instructions) {
  return kernel_->Run(max_instructions);
}

}  // namespace roload::core
