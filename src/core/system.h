// The top-level ROLoad system API: a whole simulated machine (CPU + MMU +
// caches + kernel) in one object, configurable as any of the three system
// variants the paper evaluates (Section V-B):
//   * kBaseline           — unmodified processor, unmodified kernel
//   * kProcessorModified  — ld.ro-capable processor, unmodified kernel
//   * kFullRoload         — ld.ro-capable processor + roload-aware kernel
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "asmtool/image.h"
#include "audit/audit.h"
#include "cpu/cpu.h"
#include "kernel/kernel.h"
#include "mem/phys_memory.h"
#include "trace/hub.h"

namespace roload::core {

enum class SystemVariant : std::uint8_t {
  kBaseline,
  kProcessorModified,
  kFullRoload,
};

struct SystemConfig {
  SystemVariant variant = SystemVariant::kFullRoload;
  std::uint64_t memory_bytes = 64ull * 1024 * 1024;
  cpu::CpuConfig cpu;  // cache/TLB geometry defaults match Table II
  // Telemetry: event-category mask / profiler switch. The defaults record
  // nothing; counters are always registered and queryable.
  trace::TraceConfig trace;
};

// Bridges one CPU's stats structs (core, both TLBs, both L1s, plus the
// dynamic per-key key-check source) into the hierarchical counter
// namespace under `prefix`. The single-hart System uses the empty prefix,
// producing the historical names ("cpu.cycles", "tlb.d.key_check", ...);
// the SMP machine registers each hart under "hart<N>." and sums the fleet
// into the unprefixed aggregates itself. The registry stores pointers into
// the live structs, so the hot paths keep their plain-increment cost.
void RegisterCpuCounters(trace::CounterRegistry* counters,
                         const cpu::Cpu& cpu, const std::string& prefix = "");

// Kernel-side counters ("kernel.syscalls", "kernel.fault.roload", ...).
// Never prefixed: the kernel is one object no matter how many harts.
void RegisterKernelCounters(trace::CounterRegistry* counters,
                            const kernel::Kernel& kernel);

class System {
 public:
  explicit System(const SystemConfig& config = {});

  // Loads a program image into a fresh process and prepares the CPU.
  Status Load(const asmtool::LinkImage& image);

  // Runs the loaded process to completion (or the instruction limit).
  kernel::RunResult Run(std::uint64_t max_instructions = 1ull << 34);

  cpu::Cpu& cpu() { return *cpu_; }
  kernel::Kernel& kernel() { return *kernel_; }
  mem::PhysMemory& memory() { return *memory_; }
  SystemVariant variant() const { return config_.variant; }

  // The machine's telemetry hub: every module's counters live in
  // trace().counters() ("cpu.instret", "tlb.d.key_check", ...); events
  // and the cycle profiler obey SystemConfig::trace.
  trace::Hub& trace() { return *trace_; }
  const trace::Hub& trace() const { return *trace_; }

  // The security-forensics collector (dispatch census + fault autopsies).
  // Null unless SystemConfig::trace.audit was set.
  audit::Auditor* audit() { return auditor_.get(); }
  const audit::Auditor* audit() const { return auditor_.get(); }

 private:
  SystemConfig config_;
  std::unique_ptr<mem::PhysMemory> memory_;
  std::unique_ptr<trace::Hub> trace_;
  std::unique_ptr<cpu::Cpu> cpu_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<audit::Auditor> auditor_;
};

}  // namespace roload::core
