// Toolchain: compile an IR module under a chosen defense, assemble, and
// optionally run it on a chosen system variant. This is the one-call API
// the benches, examples and tests use.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asmtool/image.h"
#include "backend/codegen.h"
#include "core/system.h"
#include "ir/ir.h"
#include "passes/passes.h"
#include "verify/verify.h"

namespace roload::core {

// Which hardening (if any) to apply before lowering.
enum class Defense : std::uint8_t {
  kNone,
  kVCall,       // Section IV-A, ROLoad-based vtable protection
  kVTint,       // software baseline for kVCall
  kICall,       // Section IV-B, ROLoad type-based forward-edge CFI
  kClassicCfi,  // software label-based baseline for kICall
};

std::string_view DefenseName(Defense defense);

struct BuildOptions {
  Defense defense = Defense::kNone;
  backend::CodegenOptions codegen;
  passes::VCallProtectOptions vcall;
  passes::ICallCfiOptions icall;
  passes::ClassicCfiOptions cfi;
  // Run the static pointee-integrity verifier (src/verify) on the build
  // products; Build fails with FailedPrecondition on any violation.
  bool verify = false;
  // Worker threads for the verifier's per-function checking phase
  // (0 = one per hardware thread). Any count yields bit-identical
  // reports; raise it for whole-image verification of large builds.
  unsigned verify_jobs = 1;
};

struct BuildResult {
  asmtool::LinkImage image;
  backend::CodegenResult codegen;
  // Static memory image (all sections, page-rounded), the figure-3/5
  // memory-overhead numerator.
  std::uint64_t image_bytes = 0;
  std::uint64_t code_bytes = 0;
  // The post-pass module and the options that produced this build, kept
  // so Verify() can lint the hardened IR and derive its expectations.
  ir::Module hardened;
  BuildOptions options;
};

// Applies the defense passes to a copy of `module`, lowers, assembles.
StatusOr<BuildResult> Build(ir::Module module, const BuildOptions& options);

// Static verification of a finished build: IR lint over the hardened
// module plus the binary abstract-interpretation proof over the linked
// image, under the policy implied by the build's defense (the full
// every-dispatch-is-ld.ro proof applies to ICall with hardened vtables;
// other defenses get the universal consistency rules). The returned
// report carries structured violations and stats; report.ok() is the
// machine-checkable gate CI and the benches use.
verify::Report Verify(const BuildResult& build);

// Per-run metrics for the evaluation harness.
struct RunMetrics {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t roload_loads = 0;
  std::uint64_t peak_mem_kib = 0;
  std::uint64_t image_bytes = 0;
  std::int64_t exit_code = 0;
  bool completed = false;          // exited normally
  bool roload_violation = false;   // killed by the ROLoad fault path
  std::string stdout_text;
  double dtlb_miss_rate = 0.0;
  double dcache_miss_rate = 0.0;
  double icache_miss_rate = 0.0;
  // Full end-of-run counter snapshot (sorted by name) from the system's
  // telemetry registry — what the bench JSON exporters embed.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  // Cycle-attribution profile (bucket name -> cycles, every bucket, in
  // declaration order; the sum equals `cycles`). Filled only when the run
  // was profiled via CompileAndRun's `trace` argument, else empty.
  std::vector<std::pair<std::string, std::uint64_t>> profile;

  std::uint64_t Counter(std::string_view name) const {
    for (const auto& [key, value] : counters) {
      if (key == name) return value;
    }
    return 0;
  }
};

// Runs an already-built image on a fresh system of `variant` and collects
// RunMetrics. The execution half of CompileAndRun, split out so callers
// holding a BuildResult (the campaign executor, build-only sweeps that
// later decide to run) do not pay a second build. `exec` picks the host
// execute tier (reference interpreter / fast paths / translation) — all
// three are bit-identical in cycles and counters, only host speed differs.
StatusOr<RunMetrics> RunBuild(const BuildResult& build, SystemVariant variant,
                              std::uint64_t max_instructions = 1ull << 34,
                              const trace::TraceConfig& trace = {},
                              cpu::ExecTier exec = cpu::ExecTier::kFast);

// Builds `module` under `defense` and runs it on a fresh system of
// `variant`. The workhorse of every table/figure bench. `trace` configures
// the run's telemetry (pass `.profile = true` to fill RunMetrics::profile
// with the cycle-attribution buckets); tracing is observational only and
// never changes the measured cycles.
StatusOr<RunMetrics> CompileAndRun(const ir::Module& module,
                                   const BuildOptions& options,
                                   SystemVariant variant,
                                   std::uint64_t max_instructions = 1ull
                                                                    << 34,
                                   const trace::TraceConfig& trace = {});

// Loader cross-check (rule 29, `rrun --verify`): proves that the page
// tables the kernel built while loading `image` actually map every keyed
// read-only section (.rodata.key.<K>) read-only with exactly key K. The
// static rules 20-28 verify the image; this verifies what the loader made
// of it — a kernel that is not roload-aware maps allowlists with key 0,
// which this check reports instead of letting the guest fault at its
// first ld.ro. Call after System::Load.
verify::Report VerifyLoadedImage(System& system,
                                 const asmtool::LinkImage& image);
// The same check against any loaded kernel — what rrun uses so the
// cross-check also covers SMP machines (the harts share one address
// space, so one proof covers them all).
verify::Report VerifyLoadedImage(kernel::Kernel& kernel,
                                 const asmtool::LinkImage& image);

// Relative overhead helper: (value - base) / base * 100, in percent.
double OverheadPercent(double base, double value);

}  // namespace roload::core
