#include "core/toolchain.h"

#include "asmtool/assembler.h"
#include "support/strings.h"
#include "verify/binary.h"
#include "verify/ir_lint.h"

namespace roload::core {

std::string_view DefenseName(Defense defense) {
  switch (defense) {
    case Defense::kNone:
      return "none";
    case Defense::kVCall:
      return "VCall";
    case Defense::kVTint:
      return "VTint";
    case Defense::kICall:
      return "ICall";
    case Defense::kClassicCfi:
      return "CFI";
  }
  return "?";
}

StatusOr<BuildResult> Build(ir::Module module, const BuildOptions& options) {
  switch (options.defense) {
    case Defense::kNone:
      break;
    case Defense::kVCall:
      ROLOAD_RETURN_IF_ERROR(
          passes::VCallProtectPass(&module, options.vcall));
      break;
    case Defense::kVTint:
      ROLOAD_RETURN_IF_ERROR(passes::VTintPass(&module));
      break;
    case Defense::kICall:
      ROLOAD_RETURN_IF_ERROR(passes::ICallCfiPass(&module, options.icall));
      break;
    case Defense::kClassicCfi:
      ROLOAD_RETURN_IF_ERROR(passes::ClassicCfiPass(&module, options.cfi));
      break;
  }

  auto codegen = backend::Generate(module, options.codegen);
  if (!codegen.ok()) return codegen.status();

  auto image = asmtool::Assemble(codegen->assembly);
  if (!image.ok()) return image.status();

  BuildResult result;
  result.codegen = *codegen;
  result.image_bytes = image->MappedBytes();
  result.code_bytes = image->CodeBytes();
  result.image = *std::move(image);
  result.hardened = std::move(module);
  result.options = options;

  if (options.verify) {
    const verify::Report report = Verify(result);
    if (!report.ok()) {
      return Status::FailedPrecondition("static verification failed:\n" +
                                        report.ToText());
    }
  }
  return result;
}

verify::Report Verify(const BuildResult& build) {
  verify::Report report;
  verify::LintModule(build.hardened, &report);
  const verify::Expectations expectations =
      verify::ComputeExpectations(build.hardened);
  verify::BinaryPolicy policy;
  policy.name = std::string(DefenseName(build.options.defense));
  // Only ICall with hardened vtables claims *every* indirect call is
  // dispatched through ld.ro; VCall protects virtual calls only, and the
  // software baselines never use ld.ro for dispatch.
  policy.require_protected_dispatch =
      build.options.defense == Defense::kICall &&
      build.options.icall.harden_vtables;
  verify::VerifyImageOptions options;
  options.jobs = build.options.verify_jobs;
  verify::VerifyImage(build.image, policy, &expectations, &report, options);
  return report;
}

StatusOr<RunMetrics> RunBuild(const BuildResult& build, SystemVariant variant,
                              std::uint64_t max_instructions,
                              const trace::TraceConfig& trace,
                              cpu::ExecTier exec) {
  SystemConfig config;
  config.variant = variant;
  config.trace = trace;
  cpu::SetExecTier(&config.cpu, exec);
  System system(config);
  ROLOAD_RETURN_IF_ERROR(system.Load(build.image));
  const kernel::RunResult run = system.Run(max_instructions);

  RunMetrics metrics;
  metrics.cycles = run.cycles;
  metrics.instructions = run.instructions;
  metrics.roload_loads = system.cpu().stats().roload_loads;
  metrics.peak_mem_kib = run.peak_mem_kib;
  metrics.image_bytes = build.image_bytes;
  metrics.exit_code = run.exit_code;
  metrics.completed = run.kind == kernel::ExitKind::kExited;
  metrics.roload_violation = run.roload_violation;
  metrics.stdout_text = run.stdout_text;
  metrics.dtlb_miss_rate =
      static_cast<double>(system.cpu().dtlb_stats().misses) /
      static_cast<double>(system.cpu().dtlb_stats().hits +
                          system.cpu().dtlb_stats().misses + 1);
  metrics.dcache_miss_rate = system.cpu().dcache_stats().MissRate();
  metrics.icache_miss_rate = system.cpu().icache_stats().MissRate();
  metrics.counters = system.trace().counters().Snapshot();
  if (trace.profile) {
    const trace::CycleProfiler& profiler = system.trace().profiler();
    for (std::size_t b = 0;
         b < static_cast<std::size_t>(trace::CycleBucket::kNumBuckets); ++b) {
      const auto bucket = static_cast<trace::CycleBucket>(b);
      metrics.profile.emplace_back(std::string(trace::CycleBucketName(bucket)),
                                   profiler.bucket(bucket));
    }
  }
  return metrics;
}

StatusOr<RunMetrics> CompileAndRun(const ir::Module& module,
                                   const BuildOptions& options,
                                   SystemVariant variant,
                                   std::uint64_t max_instructions,
                                   const trace::TraceConfig& trace) {
  auto build = Build(module, options);
  if (!build.ok()) return build.status();
  return RunBuild(*build, variant, max_instructions, trace);
}

verify::Report VerifyLoadedImage(System& system,
                                 const asmtool::LinkImage& image) {
  return VerifyLoadedImage(system.kernel(), image);
}

verify::Report VerifyLoadedImage(kernel::Kernel& kernel,
                                 const asmtool::LinkImage& image) {
  verify::Report report;
  kernel::AddressSpace* space = kernel.address_space();
  if (space == nullptr) {
    report.Add(verify::Rule::kLoaderKeyMismatch, "",
               "no active process (call System::Load first)");
    return report;
  }
  for (const asmtool::Section& section : image.sections) {
    if (section.size == 0) continue;
    ++report.stats().sections;
    if (section.key == 0) continue;  // only keyed pages carry the proof
    ++report.stats().keyed_sections;
    const std::uint64_t pages =
        (section.size + mem::kPageSize - 1) / mem::kPageSize;
    for (std::uint64_t page = 0; page < pages; ++page) {
      const std::uint64_t vaddr = section.vaddr + page * mem::kPageSize;
      auto pte = space->GetPte(vaddr);
      if (!pte.ok() || !pte->valid() || !pte->readable()) {
        report.Add(verify::Rule::kLoaderKeyMismatch, section.name,
                   StrFormat("page 0x%llx of keyed section not mapped "
                             "readable",
                             static_cast<unsigned long long>(vaddr)));
        continue;
      }
      if (pte->writable()) {
        report.Add(verify::Rule::kLoaderKeyMismatch, section.name,
                   StrFormat("page 0x%llx of keyed section mapped writable",
                             static_cast<unsigned long long>(vaddr)));
      }
      if (pte->key() != section.key) {
        report.Add(
            verify::Rule::kLoaderKeyMismatch, section.name,
            StrFormat("page 0x%llx mapped with key %u, image requires key "
                      "%u (roload-unaware loader?)",
                      static_cast<unsigned long long>(vaddr), pte->key(),
                      section.key));
      }
    }
  }
  return report;
}

double OverheadPercent(double base, double value) {
  if (base == 0.0) return 0.0;
  return (value - base) / base * 100.0;
}

}  // namespace roload::core
