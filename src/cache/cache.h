// Set-associative write-back cache model used for the L1 instruction and
// data caches (32 KiB, 8-way in the prototype configuration, Table II).
// The model tracks hits/misses/writebacks and converts them to cycles; it
// does not store data (the simulator is functionally backed by PhysMemory),
// which keeps it exact for timing yet cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/hub.h"

namespace roload::cache {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  unsigned line_bytes = 64;
  unsigned hit_cycles = 1;
  unsigned miss_cycles = 40;       // fill latency from the level below
  unsigned writeback_cycles = 10;  // dirty eviction cost
  // Host-only fast path: index/tag math via precomputed shifts instead of
  // the divide-based reference expressions (exact, since the geometry is
  // power-of-two checked). Never changes hits, misses, writebacks or
  // cycles — pinned by the differential tests in tests/test_cache.cpp.
  bool host_fast_path = true;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t flushes = 0;

  double MissRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Performs an access to physical address `phys_addr`; returns the cycle
  // cost. `write` marks the line dirty (write-allocate policy).
  //
  // The inline body is the host fast path: a same-line hit (the common
  // case — stack slots, straight-line code) completes without an
  // out-of-line call. It performs exactly the steps AccessSlow performs
  // for the same hit, so stats and cycle costs are bit-identical
  // whichever path serves the access.
  unsigned Access(std::uint64_t phys_addr, bool write) {
    if (config_.host_fast_path && last_line_ != nullptr &&
        (phys_addr >> line_shift_) == last_line_addr_ && last_line_->valid) {
      ++stats_.hits;
      last_line_->lru_tick = ++tick_;
      last_line_->dirty = last_line_->dirty || write;
      return config_.hit_cycles;
    }
    return AccessSlow(phys_addr, write);
  }

  void Flush();

  // Optional next cache level (the shared L2 of the SMP machine). With a
  // next level attached, a miss is filled from it — the miss cost becomes
  // the next level's own Access() cost instead of the flat miss_cycles
  // DRAM latency — and dirty evictions are forwarded down so the lower
  // level sees the writeback traffic. Null (the default) keeps the
  // original flat-latency behaviour bit-identical. Not owned; the next
  // level must outlive this cache. Single-threaded use only: the SMP
  // scheduler interleaves harts deterministically on one host thread.
  void set_next_level(Cache* next) { next_ = next; }

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  // Telemetry attachment (null disables); `unit` distinguishes I$ and D$
  // in the event stream.
  void set_trace(trace::Hub* hub, trace::Unit unit) {
    trace_ = hub;
    unit_ = unit;
  }

 private:
  // The scan/miss half of Access: everything past the inline same-line
  // shortcut (and the whole of the reference path).
  unsigned AccessSlow(std::uint64_t phys_addr, bool write);

  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru_tick = 0;
  };

  CacheConfig config_;
  unsigned num_sets_;
  // Precomputed index math for the host fast path: line_bytes and
  // num_sets_ are powers of two, so shifts are exactly the divisions.
  unsigned line_shift_ = 0;
  unsigned set_shift_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  // Simulation fast path: consecutive accesses usually touch the same
  // line (stack slots, straight-line code); self-validated shortcut.
  Line* last_line_ = nullptr;
  std::uint64_t last_line_addr_ = ~std::uint64_t{0};

  Cache* next_ = nullptr;

  trace::Hub* trace_ = nullptr;
  trace::Unit unit_ = trace::Unit::kDCache;
};

}  // namespace roload::cache
