// Set-associative write-back cache model used for the L1 instruction and
// data caches (32 KiB, 8-way in the prototype configuration, Table II).
// The model tracks hits/misses/writebacks and converts them to cycles; it
// does not store data (the simulator is functionally backed by PhysMemory),
// which keeps it exact for timing yet cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/hub.h"

namespace roload::cache {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  unsigned line_bytes = 64;
  unsigned hit_cycles = 1;
  unsigned miss_cycles = 40;       // fill latency from the level below
  unsigned writeback_cycles = 10;  // dirty eviction cost
  // Host-only fast path: index/tag math via precomputed shifts instead of
  // the divide-based reference expressions (exact, since the geometry is
  // power-of-two checked). Never changes hits, misses, writebacks or
  // cycles — pinned by the differential tests in tests/test_cache.cpp.
  bool host_fast_path = true;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t flushes = 0;

  double MissRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // One cache line, public so the translation tier (src/cpu/translate.h)
  // can pin a line pointer inside a block guard. `lines_` never
  // reallocates, so the pointer stays stable for the Cache's lifetime;
  // Flush() and evictions mutate lines in place. Guard holders must
  // revalidate (valid + tag) before every use.
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru_tick = 0;
  };

  // Performs an access to physical address `phys_addr`; returns the cycle
  // cost. `write` marks the line dirty (write-allocate policy).
  //
  // The inline body is the host fast path: a same-line hit (the common
  // case — stack slots, straight-line code) completes without an
  // out-of-line call. It performs exactly the steps AccessSlow performs
  // for the same hit, so stats and cycle costs are bit-identical
  // whichever path serves the access.
  unsigned Access(std::uint64_t phys_addr, bool write) {
    if (config_.host_fast_path && last_line_ != nullptr &&
        (phys_addr >> line_shift_) == last_line_addr_ && last_line_->valid) {
      ++stats_.hits;
      last_line_->lru_tick = ++tick_;
      last_line_->dirty = last_line_->dirty || write;
      return config_.hit_cycles;
    }
    return AccessSlow(phys_addr, write);
  }

  // Guard-probe for the translation tier: returns the resident line for
  // `phys_addr`, or nullptr. Pure query — no stats, no LRU tick, no hint
  // update — so probing is invisible to the counter contract. Runs once
  // per block build / guard revalidation, never per instruction.
  Line* Probe(std::uint64_t phys_addr) {
    const std::uint64_t line_addr = phys_addr >> line_shift_;
    const std::uint64_t set = line_addr & (num_sets_ - 1);
    const std::uint64_t tag = line_addr >> set_shift_;
    Line* base = &lines_[set * config_.ways];
    for (unsigned way = 0; way < config_.ways; ++way) {
      if (base[way].valid && base[way].tag == tag) return &base[way];
    }
    return nullptr;
  }

  // Tag a physical address maps to — what a guard compares against the
  // pinned line's tag to prove the line still holds this address.
  std::uint64_t TagOf(std::uint64_t phys_addr) const {
    return (phys_addr >> line_shift_) >> set_shift_;
  }

  // Batched fetch-hit replay for the translation tier. A block run of n
  // instructions is n read hits in a known line order, with no other
  // access to this cache interleaved (data accesses go to the D-side
  // cache), so the bookkeeping splits exactly:
  //
  //   base = replay_base();              // tick before the run
  //   per hit i (1-based): line_i->lru_tick = base + i;   // caller
  //   CommitReplayBatch(n);              // n hit counts + n ticks
  //   ReplayHint(last_line, last_phys);  // hint after the final hit
  //
  // which reproduces, state-for-state, what n Access() read hits on those
  // lines would have left behind (a fetch never dirties a line). The
  // guard proved every line is resident; replay_base() lets the caller
  // stamp final LRU ticks while the run executes.
  std::uint64_t replay_base() const { return tick_; }
  void CommitReplayBatch(std::uint64_t hits) {
    stats_.hits += hits;
    tick_ += hits;
  }
  void ReplayHint(Line* line, std::uint64_t phys_addr) {
    last_line_ = line;
    last_line_addr_ = phys_addr >> line_shift_;
  }

  // Per-site inline-cache support for the translated tier's memory
  // micro-ops. Once the caller has re-proven that the memoized line still
  // holds `line_addr` (valid + tag), ReplayDataHit applies exactly what
  // the reference access performs for that hit — hit count, LRU tick,
  // dirty bit, and the same-line hint, which every reference hit path
  // leaves equal to the accessed line. site_hint() re-arms a memo after a
  // generic Access: both hit paths and the miss refill keep last_line_
  // pointing at the line the access touched. The shifts are exact in
  // every config (the geometry is power-of-two checked; the reference
  // path's divides compute the same values).
  std::uint64_t LineAddrOf(std::uint64_t phys_addr) const {
    return phys_addr >> line_shift_;
  }
  unsigned ReplayDataHit(Line* line, std::uint64_t line_addr, bool write) {
    ++stats_.hits;
    line->lru_tick = ++tick_;
    line->dirty = line->dirty || write;
    last_line_ = line;
    last_line_addr_ = line_addr;
    return config_.hit_cycles;
  }
  // Batched form of ReplayDataHit: the caller stamps each proven hit with
  // `tick = replay_base() + k` (k = 1-based hit index since the last
  // commit) and commits the hit count and tick advance in one
  // CommitReplayBatch call. Identical to the per-hit form as long as the
  // pending batch is flushed before any generic Access interleaves.
  unsigned ReplayDataHitAt(Line* line, std::uint64_t line_addr, bool write,
                           std::uint64_t tick) {
    line->lru_tick = tick;
    line->dirty = line->dirty || write;
    last_line_ = line;
    last_line_addr_ = line_addr;
    return config_.hit_cycles;
  }
  Line* site_hint() { return last_line_; }

  void Flush();

  // Optional next cache level (the shared L2 of the SMP machine). With a
  // next level attached, a miss is filled from it — the miss cost becomes
  // the next level's own Access() cost instead of the flat miss_cycles
  // DRAM latency — and dirty evictions are forwarded down so the lower
  // level sees the writeback traffic. Null (the default) keeps the
  // original flat-latency behaviour bit-identical. Not owned; the next
  // level must outlive this cache. Single-threaded use only: the SMP
  // scheduler interleaves harts deterministically on one host thread.
  void set_next_level(Cache* next) { next_ = next; }

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  // Telemetry attachment (null disables); `unit` distinguishes I$ and D$
  // in the event stream.
  void set_trace(trace::Hub* hub, trace::Unit unit) {
    trace_ = hub;
    unit_ = unit;
  }

 private:
  // The scan/miss half of Access: everything past the inline same-line
  // shortcut (and the whole of the reference path).
  unsigned AccessSlow(std::uint64_t phys_addr, bool write);

  CacheConfig config_;
  unsigned num_sets_;
  // Precomputed index math for the host fast path: line_bytes and
  // num_sets_ are powers of two, so shifts are exactly the divisions.
  unsigned line_shift_ = 0;
  unsigned set_shift_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  // Simulation fast path: consecutive accesses usually touch the same
  // line (stack slots, straight-line code); self-validated shortcut.
  Line* last_line_ = nullptr;
  std::uint64_t last_line_addr_ = ~std::uint64_t{0};

  Cache* next_ = nullptr;

  trace::Hub* trace_ = nullptr;
  trace::Unit unit_ = trace::Unit::kDCache;
};

}  // namespace roload::cache
