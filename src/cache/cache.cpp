#include "cache/cache.h"

#include "support/bits.h"
#include "support/status.h"

namespace roload::cache {

Cache::Cache(const CacheConfig& config) : config_(config) {
  ROLOAD_CHECK(IsPowerOfTwo(config.line_bytes));
  ROLOAD_CHECK(config.ways > 0);
  const std::uint64_t lines_total = config.size_bytes / config.line_bytes;
  ROLOAD_CHECK(lines_total % config.ways == 0);
  num_sets_ = static_cast<unsigned>(lines_total / config.ways);
  ROLOAD_CHECK(IsPowerOfTwo(num_sets_));
  line_shift_ = Log2(config.line_bytes);
  set_shift_ = Log2(num_sets_);
  lines_.resize(lines_total);
}

unsigned Cache::AccessSlow(std::uint64_t phys_addr, bool write) {
  const std::uint64_t line_addr = config_.host_fast_path
                                      ? phys_addr >> line_shift_
                                      : phys_addr / config_.line_bytes;
  if (last_line_ != nullptr && line_addr == last_line_addr_ &&
      last_line_->valid) {
    ++stats_.hits;
    last_line_->lru_tick = ++tick_;
    last_line_->dirty = last_line_->dirty || write;
    return config_.hit_cycles;
  }
  const unsigned set = static_cast<unsigned>(line_addr & (num_sets_ - 1));
  const std::uint64_t tag = config_.host_fast_path ? line_addr >> set_shift_
                                                   : line_addr / num_sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  for (unsigned way = 0; way < config_.ways; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru_tick = ++tick_;
      line.dirty = line.dirty || write;
      last_line_ = &line;
      last_line_addr_ = line_addr;
      return config_.hit_cycles;
    }
  }

  ++stats_.misses;
  const bool trace_events =
      trace_ != nullptr && trace_->enabled(trace::EventCategory::kCache);
  if (trace_events) {
    trace_->Emit(unit_, trace::EventCategory::kCache,
                 trace::EventType::kCacheMiss, 0, phys_addr, write ? 1 : 0);
  }
  Line* victim = base;
  for (unsigned way = 0; way < config_.ways; ++way) {
    Line& line = base[way];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru_tick < victim->lru_tick) victim = &line;
  }
  // Fill cost: a flat DRAM latency when this cache is the last level, or
  // the next level's own access cost (its hit/miss discrimination) when a
  // shared L2 sits below.
  unsigned cycles = config_.hit_cycles;
  if (next_ == nullptr) {
    cycles += config_.miss_cycles;
  } else {
    cycles += next_->Access(phys_addr, false);
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    cycles += config_.writeback_cycles;
    const bool need_victim_addr = trace_events || next_ != nullptr;
    std::uint64_t victim_addr = 0;
    if (need_victim_addr) {
      victim_addr = config_.host_fast_path
                        ? ((victim->tag << set_shift_) | set) << line_shift_
                        : (victim->tag * num_sets_ + set) * config_.line_bytes;
    }
    if (trace_events) {
      trace_->Emit(unit_, trace::EventCategory::kCache,
                   trace::EventType::kCacheWriteback, 0, victim_addr, 0);
    }
    // Forward the dirty line down so the next level sees the writeback
    // traffic; the cost stays writeback_cycles (the writeback is buffered
    // off the critical path), so only the lower level's stats change.
    if (next_ != nullptr) next_->Access(victim_addr, true);
  }
  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru_tick = ++tick_;
  // The shortcut may now alias the evicted line; re-point it.
  last_line_ = victim;
  last_line_addr_ = line_addr;
  return cycles;
}

void Cache::Flush() {
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
  last_line_ = nullptr;
  last_line_addr_ = ~std::uint64_t{0};
  ++stats_.flushes;
}

}  // namespace roload::cache
