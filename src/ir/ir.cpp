#include "ir/ir.h"

#include <map>
#include <set>
#include <sstream>

#include "support/strings.h"

namespace roload::ir {

int Module::InternFnType(const std::string& type_name) {
  for (std::size_t i = 0; i < fn_type_names.size(); ++i) {
    if (fn_type_names[i] == type_name) return static_cast<int>(i);
  }
  fn_type_names.push_back(type_name);
  return static_cast<int>(fn_type_names.size() - 1);
}

int Module::InternClass(const std::string& class_name) {
  for (std::size_t i = 0; i < class_names.size(); ++i) {
    if (class_names[i] == class_name) return static_cast<int>(i);
  }
  class_names.push_back(class_name);
  return static_cast<int>(class_names.size() - 1);
}

Function* Module::FindFunction(const std::string& name) {
  for (Function& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

const Function* Module::FindFunction(const std::string& name) const {
  for (const Function& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

Global* Module::FindGlobal(const std::string& name) {
  for (Global& global : globals) {
    if (global.name == name) return &global;
  }
  return nullptr;
}

void Module::RecomputeAddressTaken() {
  std::set<std::string> taken;
  for (const Global& global : globals) {
    for (const GlobalInit& init : global.quads) {
      if (!init.symbol.empty()) taken.insert(init.symbol);
    }
  }
  for (const Function& fn : functions) {
    for (const Block& block : fn.blocks) {
      for (const Instr& instr : block.instrs) {
        if (instr.kind == InstrKind::kAddrOf) taken.insert(instr.symbol);
      }
    }
  }
  for (Function& fn : functions) {
    fn.address_taken = taken.contains(fn.name);
  }
}

namespace {

bool IsTerminator(InstrKind kind) {
  return kind == InstrKind::kBr || kind == InstrKind::kCondBr ||
         kind == InstrKind::kRet;
}

Status VerifyFunction(const Module& module, const Function& fn) {
  auto err = [&](const std::string& message) {
    return Status::InvalidArgument("function '" + fn.name + "': " + message);
  };
  if (fn.blocks.empty()) return err("no blocks");
  if (fn.num_params > 8) return err("more than 8 parameters");
  if (fn.type_id < 0 ||
      fn.type_id >= static_cast<int>(module.fn_type_names.size())) {
    return err("bad type id");
  }

  std::set<std::string> labels;
  for (const Block& block : fn.blocks) {
    if (!labels.insert(block.label).second) {
      return err("duplicate block label " + block.label);
    }
  }

  auto check_vreg = [&](int vreg, bool allow_none) -> bool {
    if (vreg == -1) return allow_none;
    return vreg >= 0 && vreg < fn.num_vregs;
  };

  for (const Block& block : fn.blocks) {
    if (block.instrs.empty()) return err("empty block " + block.label);
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      const bool last = i + 1 == block.instrs.size();
      if (IsTerminator(instr.kind) != last) {
        return err("terminator placement in block " + block.label);
      }
      switch (instr.kind) {
        case InstrKind::kConst:
        case InstrKind::kAddrOf:
          if (!check_vreg(instr.dst, false)) return err("bad dst");
          break;
        case InstrKind::kBin:
          if (!check_vreg(instr.dst, false) ||
              !check_vreg(instr.src1, false) ||
              !check_vreg(instr.src2, false)) {
            return err("bad bin operands");
          }
          break;
        case InstrKind::kBinImm:
          if (!check_vreg(instr.dst, false) ||
              !check_vreg(instr.src1, false)) {
            return err("bad binimm operands");
          }
          break;
        case InstrKind::kLoad:
          if (!check_vreg(instr.dst, false) ||
              !check_vreg(instr.src1, false)) {
            return err("bad load operands");
          }
          if (instr.width != 1 && instr.width != 2 && instr.width != 4 &&
              instr.width != 8) {
            return err("bad load width");
          }
          if (instr.has_roload_md && instr.roload_key == 0) {
            return err("roload-md with key 0");
          }
          break;
        case InstrKind::kStore:
          if (!check_vreg(instr.src1, false) ||
              !check_vreg(instr.src2, false)) {
            return err("bad store operands");
          }
          if (instr.width != 1 && instr.width != 2 && instr.width != 4 &&
              instr.width != 8) {
            return err("bad store width");
          }
          break;
        case InstrKind::kBr:
          if (!labels.contains(instr.label)) {
            return err("br to unknown label " + instr.label);
          }
          break;
        case InstrKind::kCondBr:
          if (!check_vreg(instr.src1, false)) return err("bad condbr cond");
          if (!labels.contains(instr.label) ||
              !labels.contains(instr.false_label)) {
            return err("condbr to unknown label");
          }
          break;
        case InstrKind::kCall: {
          if (instr.args.size() > 8) return err("too many call args");
          if (!check_vreg(instr.dst, true)) return err("bad call dst");
          for (int arg : instr.args) {
            if (!check_vreg(arg, false)) return err("bad call arg");
          }
          // "__rt_*" names are runtime intrinsics provided by the backend.
          if (!StartsWith(instr.symbol, "__rt_") &&
              module.FindFunction(instr.symbol) == nullptr) {
            return err("call to unknown function " + instr.symbol);
          }
          break;
        }
        case InstrKind::kICall:
          if (instr.args.size() > 8) return err("too many icall args");
          if (!check_vreg(instr.dst, true) ||
              !check_vreg(instr.src1, false)) {
            return err("bad icall operands");
          }
          break;
        case InstrKind::kRet:
          if (!check_vreg(instr.src1, true)) return err("bad ret operand");
          break;
        case InstrKind::kCfiLabel:
          if (instr.imm < 0 || instr.imm > 0xFFFFF) {
            return err("cfi label id exceeds 20 bits");
          }
          break;
      }
    }
  }
  return Status::Ok();
}

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "add";
    case BinOp::kSub:
      return "sub";
    case BinOp::kMul:
      return "mul";
    case BinOp::kDiv:
      return "div";
    case BinOp::kRem:
      return "rem";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
    case BinOp::kXor:
      return "xor";
    case BinOp::kShl:
      return "shl";
    case BinOp::kShr:
      return "shr";
    case BinOp::kSar:
      return "sar";
    case BinOp::kSlt:
      return "slt";
    case BinOp::kSltu:
      return "sltu";
    case BinOp::kEq:
      return "eq";
    case BinOp::kNe:
      return "ne";
  }
  return "?";
}

void PrintInstr(std::ostringstream& out, const Instr& instr) {
  out << "    ";
  switch (instr.kind) {
    case InstrKind::kConst:
      out << "v" << instr.dst << " = const " << instr.imm;
      break;
    case InstrKind::kAddrOf:
      out << "v" << instr.dst << " = addrof @" << instr.symbol;
      if (instr.imm != 0) out << " + " << instr.imm;
      break;
    case InstrKind::kBin:
      out << "v" << instr.dst << " = " << BinOpName(instr.bin_op) << " v"
          << instr.src1 << ", v" << instr.src2;
      break;
    case InstrKind::kBinImm:
      out << "v" << instr.dst << " = " << BinOpName(instr.bin_op) << " v"
          << instr.src1 << ", " << instr.imm;
      break;
    case InstrKind::kLoad:
      out << "v" << instr.dst << " = load i" << instr.width * 8 << " [v"
          << instr.src1;
      if (instr.imm != 0) out << " + " << instr.imm;
      out << "]";
      if (instr.has_roload_md) {
        out << " !roload-md key=" << instr.roload_key;
      }
      break;
    case InstrKind::kStore:
      out << "store i" << instr.width * 8 << " [v" << instr.src1;
      if (instr.imm != 0) out << " + " << instr.imm;
      out << "], v" << instr.src2;
      break;
    case InstrKind::kBr:
      out << "br " << instr.label;
      break;
    case InstrKind::kCondBr:
      out << "condbr v" << instr.src1 << ", " << instr.label << ", "
          << instr.false_label;
      break;
    case InstrKind::kCall:
      if (instr.dst >= 0) out << "v" << instr.dst << " = ";
      out << "call @" << instr.symbol << "(";
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        if (i > 0) out << ", ";
        out << "v" << instr.args[i];
      }
      out << ")";
      break;
    case InstrKind::kICall:
      if (instr.dst >= 0) out << "v" << instr.dst << " = ";
      out << "icall v" << instr.src1 << "(";
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        if (i > 0) out << ", ";
        out << "v" << instr.args[i];
      }
      out << ") type=" << instr.trait_id;
      break;
    case InstrKind::kRet:
      out << "ret";
      if (instr.src1 >= 0) out << " v" << instr.src1;
      break;
    case InstrKind::kCfiLabel:
      out << "cfi_label " << instr.imm;
      break;
  }
  out << "\n";
}

}  // namespace

Status Verify(const Module& module) {
  std::set<std::string> names;
  for (const Function& fn : module.functions) {
    if (!names.insert(fn.name).second) {
      return Status::InvalidArgument("duplicate function " + fn.name);
    }
  }
  for (const Global& global : module.globals) {
    if (!names.insert(global.name).second) {
      return Status::InvalidArgument("duplicate global " + global.name);
    }
  }
  for (const Function& fn : module.functions) {
    ROLOAD_RETURN_IF_ERROR(VerifyFunction(module, fn));
  }
  return Status::Ok();
}

std::string Print(const Module& module) {
  std::ostringstream out;
  out << "module " << module.name << "\n";
  for (const Global& global : module.globals) {
    out << "global @" << global.name << (global.read_only ? " ro" : " rw");
    if (global.key != 0) out << " key=" << global.key;
    if (global.trait == GlobalTrait::kVTable) {
      out << " vtable(" << module.class_names[global.trait_id] << ")";
    }
    if (global.trait == GlobalTrait::kGfpt) {
      out << " gfpt(" << module.fn_type_names[global.trait_id] << ")";
    }
    out << " = [";
    for (std::size_t i = 0; i < global.quads.size(); ++i) {
      if (i > 0) out << ", ";
      if (!global.quads[i].symbol.empty()) {
        out << "@" << global.quads[i].symbol;
      } else {
        out << global.quads[i].value;
      }
    }
    out << "]";
    if (global.zero_bytes != 0) out << " zero=" << global.zero_bytes;
    out << "\n";
  }
  for (const Function& fn : module.functions) {
    out << "func @" << fn.name << " type="
        << module.fn_type_names[fn.type_id] << " params=" << fn.num_params
        << " vregs=" << fn.num_vregs
        << (fn.address_taken ? " address_taken" : "") << " {\n";
    for (const Block& block : fn.blocks) {
      out << "  " << block.label << ":\n";
      for (const Instr& instr : block.instrs) PrintInstr(out, instr);
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace roload::ir
