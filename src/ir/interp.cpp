#include "ir/interp.h"

#include <cstring>
#include <map>
#include <vector>

#include "support/bits.h"
#include "support/strings.h"

namespace roload::ir {
namespace {

// Function "addresses" live far above the data arena so a confused icall
// into data (or load from a function address) is detected immediately.
constexpr std::uint64_t kArenaBase = 0x100000;
constexpr std::uint64_t kFnBase = 0x8000000000000000ull;
constexpr std::uint64_t kFnStride = 16;

class Interpreter {
 public:
  Interpreter(const Module& module, const InterpOptions& options)
      : module_(module), options_(options) {}

  StatusOr<InterpResult> Run();

 private:
  Status Layout();
  StatusOr<std::uint64_t> Exec(const Function& fn,
                               const std::vector<std::uint64_t>& args);

  StatusOr<std::uint64_t> LoadMem(std::uint64_t addr, unsigned width,
                                  bool sign_extend);
  Status StoreMem(std::uint64_t addr, unsigned width, std::uint64_t value);

  const Function* FunctionAt(std::uint64_t addr) const {
    if (addr < kFnBase) return nullptr;
    const std::uint64_t index = (addr - kFnBase) / kFnStride;
    if ((addr - kFnBase) % kFnStride != 0 ||
        index >= module_.functions.size()) {
      return nullptr;
    }
    return &module_.functions[static_cast<std::size_t>(index)];
  }

  const Module& module_;
  InterpOptions options_;
  std::vector<std::uint8_t> arena_;
  std::map<std::string, std::uint64_t> symbol_addrs_;
  std::uint64_t steps_ = 0;
  bool aborted_ = false;
  unsigned call_depth_ = 0;
};

Status Interpreter::Layout() {
  // Function addresses first (globals may reference them).
  for (std::size_t i = 0; i < module_.functions.size(); ++i) {
    symbol_addrs_[module_.functions[i].name] = kFnBase + i * kFnStride;
  }
  // Globals packed into the arena, 16-byte aligned.
  std::uint64_t cursor = 0;
  for (const Global& global : module_.globals) {
    cursor = AlignUp(cursor, 16);
    symbol_addrs_[global.name] = kArenaBase + cursor;
    cursor += global.quads.size() * 8 + global.zero_bytes;
  }
  arena_.assign(cursor, 0);
  // Initialize.
  for (const Global& global : module_.globals) {
    std::uint64_t offset = symbol_addrs_[global.name] - kArenaBase;
    for (const GlobalInit& init : global.quads) {
      std::uint64_t value = static_cast<std::uint64_t>(init.value);
      if (!init.symbol.empty()) {
        auto it = symbol_addrs_.find(init.symbol);
        if (it == symbol_addrs_.end()) {
          return Status::NotFound("initializer symbol: " + init.symbol);
        }
        value = it->second;
      }
      std::memcpy(arena_.data() + offset, &value, 8);
      offset += 8;
    }
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> Interpreter::LoadMem(std::uint64_t addr,
                                             unsigned width,
                                             bool sign_extend) {
  if (addr < kArenaBase || addr + width > kArenaBase + arena_.size()) {
    return Status::OutOfRange(
        StrFormat("load out of arena at 0x%llx",
                  static_cast<unsigned long long>(addr)));
  }
  std::uint64_t value = 0;
  std::memcpy(&value, arena_.data() + (addr - kArenaBase), width);
  if (sign_extend && width < 8) {
    value = static_cast<std::uint64_t>(SignExtend(value, width * 8));
  }
  return value;
}

Status Interpreter::StoreMem(std::uint64_t addr, unsigned width,
                             std::uint64_t value) {
  if (addr < kArenaBase || addr + width > kArenaBase + arena_.size()) {
    return Status::OutOfRange(
        StrFormat("store out of arena at 0x%llx",
                  static_cast<unsigned long long>(addr)));
  }
  std::memcpy(arena_.data() + (addr - kArenaBase), &value, width);
  return Status::Ok();
}

StatusOr<std::uint64_t> Interpreter::Exec(
    const Function& fn, const std::vector<std::uint64_t>& args) {
  if (++call_depth_ > 512) {
    --call_depth_;
    return Status::Internal("interpreter call depth exceeded");
  }
  std::vector<std::uint64_t> regs(
      static_cast<std::size_t>(fn.num_vregs > 0 ? fn.num_vregs : 1), 0);
  for (std::size_t i = 0; i < args.size() && i < regs.size(); ++i) {
    regs[i] = args[i];
  }

  // Label -> block index.
  std::map<std::string, std::size_t> blocks;
  for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
    blocks[fn.blocks[i].label] = i;
  }

  std::size_t block = 0;
  while (true) {
    const Block& current = fn.blocks[block];
    for (const Instr& instr : current.instrs) {
      if (++steps_ > options_.max_steps) {
        --call_depth_;
        return Status::Internal("interpreter step budget exhausted");
      }
      auto reg = [&regs](int index) {
        return index >= 0 ? regs[static_cast<std::size_t>(index)] : 0;
      };
      switch (instr.kind) {
        case InstrKind::kConst:
          regs[static_cast<std::size_t>(instr.dst)] =
              static_cast<std::uint64_t>(instr.imm);
          break;
        case InstrKind::kAddrOf: {
          auto it = symbol_addrs_.find(instr.symbol);
          if (it == symbol_addrs_.end()) {
            --call_depth_;
            return Status::NotFound("addrof symbol: " + instr.symbol);
          }
          regs[static_cast<std::size_t>(instr.dst)] =
              it->second + static_cast<std::uint64_t>(instr.imm);
          break;
        }
        case InstrKind::kBin:
        case InstrKind::kBinImm: {
          const std::uint64_t a = reg(instr.src1);
          const std::uint64_t b = instr.kind == InstrKind::kBin
                                      ? reg(instr.src2)
                                      : static_cast<std::uint64_t>(instr.imm);
          std::uint64_t r = 0;
          switch (instr.bin_op) {
            case BinOp::kAdd:
              r = a + b;
              break;
            case BinOp::kSub:
              r = a - b;
              break;
            case BinOp::kMul:
              r = a * b;
              break;
            case BinOp::kDiv: {
              const auto sa = static_cast<std::int64_t>(a);
              const auto sb = static_cast<std::int64_t>(b);
              if (sb == 0) {
                r = ~std::uint64_t{0};
              } else if (sa == INT64_MIN && sb == -1) {
                r = a;
              } else {
                r = static_cast<std::uint64_t>(sa / sb);
              }
              break;
            }
            case BinOp::kRem: {
              const auto sa = static_cast<std::int64_t>(a);
              const auto sb = static_cast<std::int64_t>(b);
              if (sb == 0) {
                r = a;
              } else if (sa == INT64_MIN && sb == -1) {
                r = 0;
              } else {
                r = static_cast<std::uint64_t>(sa % sb);
              }
              break;
            }
            case BinOp::kAnd:
              r = a & b;
              break;
            case BinOp::kOr:
              r = a | b;
              break;
            case BinOp::kXor:
              r = a ^ b;
              break;
            case BinOp::kShl:
              r = a << (b & 63);
              break;
            case BinOp::kShr:
              r = a >> (b & 63);
              break;
            case BinOp::kSar:
              r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                             (b & 63));
              break;
            case BinOp::kSlt:
              r = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                      ? 1
                      : 0;
              break;
            case BinOp::kSltu:
              r = a < b ? 1 : 0;
              break;
            case BinOp::kEq:
              r = a == b ? 1 : 0;
              break;
            case BinOp::kNe:
              r = a != b ? 1 : 0;
              break;
          }
          regs[static_cast<std::size_t>(instr.dst)] = r;
          break;
        }
        case InstrKind::kLoad: {
          // Loads of the 4-byte CFI ID word from a function address are
          // the one text-reading idiom the passes emit; synthesize it.
          const std::uint64_t addr =
              reg(instr.src1) + static_cast<std::uint64_t>(instr.imm);
          if (const Function* target = FunctionAt(addr)) {
            // Reproduce "lui zero, id" as the compiled binary would read.
            std::int64_t word = 0;
            if (!target->blocks.empty() &&
                !target->blocks[0].instrs.empty() &&
                target->blocks[0].instrs[0].kind == InstrKind::kCfiLabel) {
              const std::uint32_t id = static_cast<std::uint32_t>(
                  target->blocks[0].instrs[0].imm);
              word = static_cast<std::int64_t>(
                  static_cast<std::int32_t>((id << 12) | 0x37));
            }
            regs[static_cast<std::size_t>(instr.dst)] =
                static_cast<std::uint64_t>(word);
            break;
          }
          auto value = LoadMem(addr, instr.width, instr.sign_extend);
          if (!value.ok()) {
            --call_depth_;
            return value.status();
          }
          regs[static_cast<std::size_t>(instr.dst)] = *value;
          break;
        }
        case InstrKind::kStore: {
          const std::uint64_t addr =
              reg(instr.src1) + static_cast<std::uint64_t>(instr.imm);
          Status status = StoreMem(addr, instr.width, reg(instr.src2));
          if (!status.ok()) {
            --call_depth_;
            return status;
          }
          break;
        }
        case InstrKind::kBr:
          block = blocks.at(instr.label);
          goto next_block;
        case InstrKind::kCondBr:
          block = blocks.at(reg(instr.src1) != 0 ? instr.label
                                                 : instr.false_label);
          goto next_block;
        case InstrKind::kCall: {
          if (instr.symbol == "__rt_abort") {
            aborted_ = true;
            --call_depth_;
            return std::uint64_t{0};
          }
          if (StartsWith(instr.symbol, "__rt_")) {
            // Remaining intrinsics are no-ops functionally (write etc.).
            if (instr.dst >= 0) regs[static_cast<std::size_t>(instr.dst)] = 0;
            break;
          }
          const Function* callee = module_.FindFunction(instr.symbol);
          if (callee == nullptr) {
            --call_depth_;
            return Status::NotFound("call target: " + instr.symbol);
          }
          std::vector<std::uint64_t> call_args;
          for (int arg : instr.args) call_args.push_back(reg(arg));
          auto result = Exec(*callee, call_args);
          if (!result.ok()) {
            --call_depth_;
            return result.status();
          }
          if (aborted_) {
            --call_depth_;
            return std::uint64_t{0};
          }
          if (instr.dst >= 0) {
            regs[static_cast<std::size_t>(instr.dst)] = *result;
          }
          break;
        }
        case InstrKind::kICall: {
          const Function* callee = FunctionAt(reg(instr.src1));
          if (callee == nullptr) {
            --call_depth_;
            return Status::OutOfRange("icall to non-function address");
          }
          std::vector<std::uint64_t> call_args;
          for (int arg : instr.args) call_args.push_back(reg(arg));
          auto result = Exec(*callee, call_args);
          if (!result.ok()) {
            --call_depth_;
            return result.status();
          }
          if (aborted_) {
            --call_depth_;
            return std::uint64_t{0};
          }
          if (instr.dst >= 0) {
            regs[static_cast<std::size_t>(instr.dst)] = *result;
          }
          break;
        }
        case InstrKind::kRet:
          --call_depth_;
          return instr.src1 >= 0 ? reg(instr.src1) : std::uint64_t{0};
        case InstrKind::kCfiLabel:
          break;  // architectural no-op
      }
    }
    // Falling off a block without a terminator is rejected by the
    // verifier; loop only continues via the gotos above.
    --call_depth_;
    return Status::Internal("block fell through");
  next_block:;
  }
}

StatusOr<InterpResult> Interpreter::Run() {
  ROLOAD_RETURN_IF_ERROR(Verify(module_));
  ROLOAD_RETURN_IF_ERROR(Layout());
  const Function* main_fn = module_.FindFunction("main");
  if (main_fn == nullptr) return Status::NotFound("no main function");
  auto value = Exec(*main_fn, {});
  if (!value.ok()) return value.status();
  InterpResult result;
  result.return_value = static_cast<std::int64_t>(*value);
  result.aborted = aborted_;
  result.steps = steps_;
  if (aborted_) result.return_value = 134;
  return result;
}

}  // namespace

StatusOr<InterpResult> Interpret(const Module& module,
                                 const InterpOptions& options) {
  Interpreter interpreter(module, options);
  return interpreter.Run();
}

}  // namespace roload::ir
