// Reference IR interpreter: executes a module directly, with the same
// arithmetic semantics as the RV64 target (wrapping 64-bit ops, RISC-V
// division edge cases, sign/zero extension on narrow loads).
//
// Purpose: differential testing. For any module M (hardened or not),
//   Interpret(M)  ==  exit code of CompileAndRun(M)
// must hold — one oracle covering codegen, the assembler, the loader, the
// MMU and the CPU in a single equality. ROLoad metadata is functionally
// transparent here (the interpreter has no attacker), matching the
// hardening passes' semantics-preservation contract.
#pragma once

#include <cstdint>

#include "ir/ir.h"
#include "support/status.h"

namespace roload::ir {

struct InterpOptions {
  // Step budget: aborts runaway programs (verifier can't prove halting).
  std::uint64_t max_steps = 200'000'000;
};

struct InterpResult {
  std::int64_t return_value = 0;  // main's return value (the exit code)
  bool aborted = false;           // __rt_abort was called
  std::uint64_t steps = 0;        // IR instructions executed
};

// Interprets `module` starting at main(). Errors on malformed modules,
// out-of-bounds memory traffic, icalls to non-function addresses, or step
// exhaustion.
StatusOr<InterpResult> Interpret(const Module& module,
                                 const InterpOptions& options = {});

}  // namespace roload::ir
