// Mini compiler IR, the analogue of the LLVM IR layer in the paper's
// toolchain. Programs (our SPEC-like workloads) are built in this IR, the
// hardening passes in src/passes rewrite it, and src/backend lowers it to
// assembly for the simulated RV64 core.
//
// Two paper-specific features:
//  * Load instructions can carry "ROLoad-md" metadata (`has_roload_md` +
//    `roload_key`), the exact interface the paper adds to LLVM: a load so
//    annotated is emitted as an ld.ro-family instruction by the backend.
//  * Sensitive operations are discoverable: loads and indirect calls carry
//    a `trait` recording what the frontend knew (vptr load, vtable-entry
//    load with class id, function-pointer load/call with type id), which is
//    what the LLVM passes recover by pattern matching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace roload::ir {

// Binary ALU operations (all 64-bit; comparisons produce 0/1).
enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,   // logical
  kSar,   // arithmetic
  kSlt,   // signed <
  kSltu,  // unsigned <
  kEq,
  kNe,
};

// What the frontend knows about a load / indirect call site.
enum class Trait : std::uint8_t {
  kNone,
  kVPtrLoad,        // loads an object's vtable pointer (trait_id = class)
  kVTableEntryLoad, // loads a function pointer out of a vtable
  kFnPtrLoad,       // loads a plain function pointer (trait_id = fn type)
  kICall,           // indirect call through a function pointer
  kAllowlistLoad,   // loads from a user-designated allowlist (trait_id =
                    // application-defined allowlist id; Section IV-C)
};

enum class InstrKind : std::uint8_t {
  kConst,    // dst = imm
  kAddrOf,   // dst = &symbol + imm
  kBin,      // dst = src1 <op> src2
  kBinImm,   // dst = src1 <op> imm
  kLoad,     // dst = *(src1 + imm)            [width, sign_extend, md]
  kStore,    // *(src1 + imm) = src2           [width]
  kBr,       // goto label
  kCondBr,   // if (src1 != 0) goto label else goto false_label
  kCall,     // dst = symbol(args...)
  kICall,    // dst = (*src1)(args...)         [trait_id = fn type]
  kRet,      // return src1 (or void when src1 < 0)
  kCfiLabel, // CFI ID marker at function entry (imm = 20-bit ID)
};

struct Instr {
  InstrKind kind = InstrKind::kConst;
  BinOp bin_op = BinOp::kAdd;
  int dst = -1;   // virtual register, -1 = none
  int src1 = -1;
  int src2 = -1;
  std::int64_t imm = 0;
  unsigned width = 8;        // loads/stores: access bytes (1/2/4/8)
  bool sign_extend = true;   // loads narrower than 8 bytes
  std::string symbol;        // kAddrOf / kCall
  std::vector<int> args;     // kCall / kICall, at most 8
  std::string label;         // kBr / kCondBr true target
  std::string false_label;   // kCondBr false target

  // Sensitive-operation bookkeeping.
  Trait trait = Trait::kNone;
  int trait_id = 0;  // class id or function-type id, per trait
  // kICall only: true when this call is a C++ virtual dispatch whose target
  // was produced by a kVTableEntryLoad (such calls are protected through
  // the vtable load, not through GFPT indirection).
  bool is_vcall = false;

  // ROLoad-md metadata (set by hardening passes on kLoad).
  bool has_roload_md = false;
  std::uint32_t roload_key = 0;
};

struct Block {
  std::string label;
  std::vector<Instr> instrs;
};

// One element of a global's initialized image: either a literal or the
// address of a symbol (function or global).
struct GlobalInit {
  std::int64_t value = 0;
  std::string symbol;  // non-empty -> address of symbol
};

enum class GlobalTrait : std::uint8_t {
  kNone,
  kVTable,  // trait_id = class id
  kGfpt,    // trait_id = fn type id (created by the ICall pass)
};

struct Global {
  std::string name;
  bool read_only = false;
  std::vector<GlobalInit> quads;  // 8-byte little-endian units
  std::uint64_t zero_bytes = 0;   // zero-filled tail after quads
  std::uint32_t key = 0;          // rodata page key (0 = plain .rodata)
  GlobalTrait trait = GlobalTrait::kNone;
  int trait_id = 0;
};

struct Function {
  std::string name;
  int type_id = 0;  // index into Module::fn_type_names
  unsigned num_params = 0;  // passed in a0..a7; vregs 0..n-1 on entry
  int num_vregs = 0;
  bool address_taken = false;
  std::vector<Block> blocks;  // blocks[0] is the entry
};

struct Module {
  std::string name;
  std::vector<std::string> fn_type_names;  // e.g. "i64(i64,i64)"
  std::vector<std::string> class_names;    // C++ classes with vtables
  std::vector<Global> globals;
  std::vector<Function> functions;

  // Interning helpers (return stable indices).
  int InternFnType(const std::string& type_name);
  int InternClass(const std::string& class_name);

  Function* FindFunction(const std::string& name);
  const Function* FindFunction(const std::string& name) const;
  Global* FindGlobal(const std::string& name);

  // Marks functions referenced by kAddrOf or global initializers as
  // address-taken. Hardening passes rely on this.
  void RecomputeAddressTaken();
};

// Structural validity: operands in range, labels resolve, widths legal,
// args <= 8, entry block exists, terminators only at block ends.
Status Verify(const Module& module);

// Human-readable dump (stable, used in tests).
std::string Print(const Module& module);

}  // namespace roload::ir
