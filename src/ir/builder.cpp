#include "ir/builder.h"

#include "support/status.h"

namespace roload::ir {

FunctionBuilder::FunctionBuilder(Module* module, std::string name,
                                 const std::string& type_name,
                                 unsigned num_params)
    : module_(module) {
  Function fn;
  fn.name = std::move(name);
  fn.type_id = module->InternFnType(type_name);
  fn.num_params = num_params;
  fn.num_vregs = static_cast<int>(num_params);
  module->functions.push_back(std::move(fn));
  fn_ = &module->functions.back();
  SetBlock("entry");
}

void FunctionBuilder::SetBlock(const std::string& label) {
  for (Block& block : fn_->blocks) {
    if (block.label == label) {
      current_ = label;
      return;
    }
  }
  fn_->blocks.push_back(Block{label, {}});
  current_ = label;
}

Instr& FunctionBuilder::Append(Instr instr) {
  for (Block& block : fn_->blocks) {
    if (block.label == current_) {
      block.instrs.push_back(std::move(instr));
      return block.instrs.back();
    }
  }
  FatalError("FunctionBuilder: no current block");
}

int FunctionBuilder::Const(std::int64_t value) {
  Instr instr;
  instr.kind = InstrKind::kConst;
  instr.dst = NewReg();
  instr.imm = value;
  return Append(instr).dst;
}

int FunctionBuilder::AddrOf(const std::string& symbol, std::int64_t offset) {
  Instr instr;
  instr.kind = InstrKind::kAddrOf;
  instr.dst = NewReg();
  instr.symbol = symbol;
  instr.imm = offset;
  return Append(instr).dst;
}

int FunctionBuilder::Bin(BinOp op, int lhs, int rhs) {
  Instr instr;
  instr.kind = InstrKind::kBin;
  instr.bin_op = op;
  instr.dst = NewReg();
  instr.src1 = lhs;
  instr.src2 = rhs;
  return Append(instr).dst;
}

int FunctionBuilder::BinImm(BinOp op, int lhs, std::int64_t rhs) {
  Instr instr;
  instr.kind = InstrKind::kBinImm;
  instr.bin_op = op;
  instr.dst = NewReg();
  instr.src1 = lhs;
  instr.imm = rhs;
  return Append(instr).dst;
}

int FunctionBuilder::Load(int addr, std::int64_t offset, unsigned width,
                          Trait trait, int trait_id) {
  Instr instr;
  instr.kind = InstrKind::kLoad;
  instr.dst = NewReg();
  instr.src1 = addr;
  instr.imm = offset;
  instr.width = width;
  instr.trait = trait;
  instr.trait_id = trait_id;
  return Append(instr).dst;
}

void FunctionBuilder::Store(int addr, int value, std::int64_t offset,
                            unsigned width) {
  Instr instr;
  instr.kind = InstrKind::kStore;
  instr.src1 = addr;
  instr.src2 = value;
  instr.imm = offset;
  instr.width = width;
  Append(instr);
}

void FunctionBuilder::Br(const std::string& label) {
  Instr instr;
  instr.kind = InstrKind::kBr;
  instr.label = label;
  Append(instr);
}

void FunctionBuilder::CondBr(int cond, const std::string& true_label,
                             const std::string& false_label) {
  Instr instr;
  instr.kind = InstrKind::kCondBr;
  instr.src1 = cond;
  instr.label = true_label;
  instr.false_label = false_label;
  Append(instr);
}

int FunctionBuilder::Call(const std::string& callee, std::vector<int> args,
                          bool has_result) {
  Instr instr;
  instr.kind = InstrKind::kCall;
  instr.symbol = callee;
  instr.args = std::move(args);
  instr.dst = has_result ? NewReg() : -1;
  return Append(instr).dst;
}

int FunctionBuilder::ICall(int target, std::vector<int> args, int type_id,
                           bool has_result, bool is_vcall) {
  Instr instr;
  instr.kind = InstrKind::kICall;
  instr.src1 = target;
  instr.args = std::move(args);
  instr.trait = Trait::kICall;
  instr.trait_id = type_id;
  instr.is_vcall = is_vcall;
  instr.dst = has_result ? NewReg() : -1;
  return Append(instr).dst;
}

void FunctionBuilder::Ret(int value) {
  Instr instr;
  instr.kind = InstrKind::kRet;
  instr.src1 = value;
  Append(instr);
}

}  // namespace roload::ir
