// Convenience builder for constructing IR functions; used by the workload
// generators and by tests.
#pragma once

#include <string>

#include "ir/ir.h"

namespace roload::ir {

class FunctionBuilder {
 public:
  FunctionBuilder(Module* module, std::string name,
                  const std::string& type_name, unsigned num_params);

  Function* function() { return fn_; }
  Module* module() { return module_; }

  // Creates a new virtual register.
  int NewReg() { return fn_->num_vregs++; }
  // Parameter i is virtual register i.
  int Param(unsigned index) const { return static_cast<int>(index); }

  // Starts (or switches to) the block with `label`, creating it on demand.
  void SetBlock(const std::string& label);
  std::string current_block() const { return current_; }

  int Const(std::int64_t value);
  int AddrOf(const std::string& symbol, std::int64_t offset = 0);
  int Bin(BinOp op, int lhs, int rhs);
  int BinImm(BinOp op, int lhs, std::int64_t rhs);
  int Load(int addr, std::int64_t offset = 0, unsigned width = 8,
           Trait trait = Trait::kNone, int trait_id = 0);
  void Store(int addr, int value, std::int64_t offset = 0,
             unsigned width = 8);
  void Br(const std::string& label);
  void CondBr(int cond, const std::string& true_label,
              const std::string& false_label);
  int Call(const std::string& callee, std::vector<int> args,
           bool has_result = true);
  int ICall(int target, std::vector<int> args, int type_id,
            bool has_result = true, bool is_vcall = false);
  void Ret(int value = -1);

 private:
  Instr& Append(Instr instr);

  Module* module_;
  Function* fn_;
  std::string current_;
};

}  // namespace roload::ir
