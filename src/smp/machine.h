// Multi-hart ROLoad machine (src/smp): N CPU cores — each with its own
// L1 caches and I/D TLBs — behind a shared L2 and one physical memory,
// scheduled by a deterministic timing-interleaved round-robin (a fixed
// instruction quantum per hart, on a single host thread, so a run's
// interleaving is a pure function of the program and the config, never of
// host parallelism). The kernel is hart-aware: syscalls execute on the
// calling hart, traps latch that hart's supervisor CSRs, and PTE edits
// trigger the TLB-shootdown protocol (kernel::Kernel::ShootdownTlbs) so a
// key change made on one hart can never leave a stale keyed translation
// live in another hart's TLB.
//
// A Machine with harts == 1 is exactly the single-hart System: it takes
// the legacy Load()/Run() kernel path, attaches no L2, and registers the
// historical counter names — cycles and every counter are bit-identical
// (pinned by the differential test in tests/test_smp.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/audit.h"
#include "cache/cache.h"
#include "core/system.h"
#include "core/toolchain.h"
#include "cpu/cpu.h"
#include "kernel/kernel.h"
#include "mem/phys_memory.h"
#include "trace/hub.h"

namespace roload::smp {

struct SmpConfig {
  core::SystemVariant variant = core::SystemVariant::kFullRoload;
  unsigned harts = 1;
  std::uint64_t memory_bytes = 64ull * 1024 * 1024;
  cpu::CpuConfig cpu;  // per-hart geometry; defaults match Table II
  // Shared L2 behind every hart's L1s, present only with >= 2 harts (a
  // single hart keeps the System's flat L1-miss latency, for
  // bit-identity). 256 KiB, 8-way by default; its miss_cycles is the DRAM
  // latency.
  cache::CacheConfig l2{256 * 1024, 8, 64, 12, 40, 10, true};
  // Scheduler quantum: instructions each hart runs per turn. Smaller
  // values interleave tighter (the shootdown race tests use ~100);
  // the default keeps scheduling overhead negligible.
  std::uint64_t quantum = 10000;
  // The shootdown protocol switch (kernel::KernelConfig::tlb_shootdown).
  // Off models the unsound local-only sfence.vma kernel.
  bool tlb_shootdown = true;
  trace::TraceConfig trace;
};

class Machine {
 public:
  explicit Machine(const SmpConfig& config = {});

  // Loads `image` and prepares every hart (shared address space, per-hart
  // stack, a0 = hartid, a1 = harts). With one hart this is exactly
  // System::Load.
  Status Load(const asmtool::LinkImage& image);

  // Runs to completion (all harts exited), a fatal signal on any hart
  // (which halts the whole machine), or `max_instructions` retired across
  // all harts. The returned result merges the per-hart results: a kill
  // wins (carrying the faulting hart id), then an instruction-limit, then
  // normal exit (first nonzero exit code across harts, else 0);
  // instructions sum across harts while cycles are the maximum over harts
  // — the parallel wall-clock. With one hart this is exactly System::Run.
  kernel::RunResult Run(std::uint64_t max_instructions = 1ull << 34);

  // Per-hart results of the last Run (size harts; size 1 single-hart).
  const std::vector<kernel::RunResult>& hart_results() const {
    return hart_results_;
  }

  unsigned harts() const { return config_.harts; }
  cpu::Cpu& cpu(unsigned hart = 0) { return *cpus_[hart]; }
  kernel::Kernel& kernel() { return *kernel_; }
  mem::PhysMemory& memory() { return *memory_; }
  cache::Cache* l2() { return l2_.get(); }
  trace::Hub& trace() { return *trace_; }
  const trace::Hub& trace() const { return *trace_; }
  audit::Auditor* audit() { return auditor_.get(); }

 private:
  SmpConfig config_;
  std::unique_ptr<mem::PhysMemory> memory_;
  std::unique_ptr<trace::Hub> trace_;
  std::unique_ptr<cache::Cache> l2_;
  std::vector<std::unique_ptr<cpu::Cpu>> cpus_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<audit::Auditor> auditor_;
  std::vector<kernel::RunResult> hart_results_;
};

// The SMP analogue of core::RunBuild: runs an already-built image on a
// fresh `harts`-hart machine and collects the usual RunMetrics (counters
// carry the per-hart "hart<N>.*" namespaces plus the merged aggregates
// when harts > 1). With harts == 1 every metric is bit-identical to
// core::RunBuild — the differential test in tests/test_smp.cpp pins it.
StatusOr<core::RunMetrics> RunBuildSmp(
    const core::BuildResult& build, core::SystemVariant variant,
    unsigned harts, std::uint64_t max_instructions = 1ull << 34,
    const trace::TraceConfig& trace = {},
    cpu::ExecTier exec = cpu::ExecTier::kFast);

}  // namespace roload::smp
