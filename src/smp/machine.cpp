#include "smp/machine.h"

#include <map>

#include "support/strings.h"

namespace roload::smp {
namespace {

// Merged fleet-wide aggregates under the historical single-hart counter
// names, so every grid/bench that reads "cpu.cycles" or "tlb.d.key_check"
// keeps working against an SMP snapshot. Sums are totals of work done;
// "smp.cycles_max" is the parallel wall-clock (what Run() reports).
void RegisterAggregateCounters(trace::CounterRegistry* counters,
                               std::vector<const cpu::Cpu*> cpus) {
  counters->RegisterSource([cpus](std::vector<std::pair<std::string,
                                                        std::uint64_t>>* out) {
    std::uint64_t cycles = 0, cycles_max = 0, instret = 0, loads = 0;
    std::uint64_t stores = 0, roload_loads = 0, branches = 0;
    std::uint64_t taken_branches = 0, indirect_jumps = 0;
    std::uint64_t it_hit = 0, it_miss = 0, it_flush = 0, it_perm = 0;
    std::uint64_t dt_hit = 0, dt_miss = 0, dt_flush = 0, dt_perm = 0;
    std::uint64_t dt_kc = 0, dt_kch = 0, dt_kf = 0, dt_wf = 0;
    std::uint64_t ic_hit = 0, ic_miss = 0, ic_wb = 0;
    std::uint64_t dc_hit = 0, dc_miss = 0, dc_wb = 0;
    std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> by_key;
    for (const cpu::Cpu* cpu : cpus) {
      const cpu::CpuStats& c = cpu->stats();
      cycles += c.cycles;
      if (c.cycles > cycles_max) cycles_max = c.cycles;
      instret += c.instructions;
      loads += c.loads;
      stores += c.stores;
      roload_loads += c.roload_loads;
      branches += c.branches;
      taken_branches += c.taken_branches;
      indirect_jumps += c.indirect_jumps;
      const tlb::TlbStats& it = cpu->itlb_stats();
      it_hit += it.hits;
      it_miss += it.misses;
      it_flush += it.flushes;
      it_perm += it.permission_faults;
      const tlb::TlbStats& dt = cpu->dtlb_stats();
      dt_hit += dt.hits;
      dt_miss += dt.misses;
      dt_flush += dt.flushes;
      dt_perm += dt.permission_faults;
      dt_kc += dt.key_checks;
      dt_kch += dt.key_check_hits;
      dt_kf += dt.roload_key_faults;
      dt_wf += dt.roload_writable_faults;
      for (const tlb::TlbKeyCheckCount& entry : dt.key_check_by_key) {
        by_key[entry.key].first += entry.passes;
        by_key[entry.key].second += entry.fails;
      }
      const cache::CacheStats& ic = cpu->icache_stats();
      ic_hit += ic.hits;
      ic_miss += ic.misses;
      ic_wb += ic.writebacks;
      const cache::CacheStats& dc = cpu->dcache_stats();
      dc_hit += dc.hits;
      dc_miss += dc.misses;
      dc_wb += dc.writebacks;
    }
    out->emplace_back("cpu.cycles", cycles);
    out->emplace_back("cpu.instret", instret);
    out->emplace_back("cpu.loads", loads);
    out->emplace_back("cpu.stores", stores);
    out->emplace_back("cpu.roload_loads", roload_loads);
    out->emplace_back("cpu.branches", branches);
    out->emplace_back("cpu.taken_branches", taken_branches);
    out->emplace_back("cpu.indirect_jumps", indirect_jumps);
    out->emplace_back("tlb.i.hit", it_hit);
    out->emplace_back("tlb.i.miss", it_miss);
    out->emplace_back("tlb.i.flush", it_flush);
    out->emplace_back("tlb.i.permission_fault", it_perm);
    out->emplace_back("tlb.d.hit", dt_hit);
    out->emplace_back("tlb.d.miss", dt_miss);
    out->emplace_back("tlb.d.flush", dt_flush);
    out->emplace_back("tlb.d.permission_fault", dt_perm);
    out->emplace_back("tlb.d.key_check", dt_kc);
    out->emplace_back("tlb.d.key_check_hit", dt_kch);
    out->emplace_back("tlb.d.key_fault", dt_kf);
    out->emplace_back("tlb.d.writable_fault", dt_wf);
    out->emplace_back("cache.i.hit", ic_hit);
    out->emplace_back("cache.i.miss", ic_miss);
    out->emplace_back("cache.i.writeback", ic_wb);
    out->emplace_back("cache.d.hit", dc_hit);
    out->emplace_back("cache.d.miss", dc_miss);
    out->emplace_back("cache.d.writeback", dc_wb);
    for (const auto& [key, counts] : by_key) {
      out->emplace_back(StrFormat("tlb.keycheck.pass.%u", key), counts.first);
      out->emplace_back(StrFormat("tlb.keycheck.fail.%u", key), counts.second);
    }
    out->emplace_back("smp.harts",
                      static_cast<std::uint64_t>(cpus.size()));
    out->emplace_back("smp.cycles_max", cycles_max);
  });
}

}  // namespace

Machine::Machine(const SmpConfig& config) : config_(config) {
  ROLOAD_CHECK(config.harts >= 1);
  memory_ = std::make_unique<mem::PhysMemory>(config.memory_bytes);

  trace::TraceConfig trace_config = config.trace;
  if (trace_config.audit) {
    trace_config.categories |=
        trace::CategoryBit(trace::EventCategory::kRoLoad);
  }
  trace_ = std::make_unique<trace::Hub>(trace_config);

  cpu::CpuConfig cpu_config = config.cpu;
  cpu_config.roload_enabled =
      config.variant != core::SystemVariant::kBaseline;

  // Shared L2 only on true SMP machines: a single hart keeps the
  // single-level hierarchy — and with it the exact seed cycle model.
  if (config.harts >= 2) {
    l2_ = std::make_unique<cache::Cache>(config.l2);
    l2_->set_trace(trace_.get(), trace::Unit::kL2Cache);
  }

  for (unsigned h = 0; h < config.harts; ++h) {
    auto cpu = std::make_unique<cpu::Cpu>(cpu_config, memory_.get());
    if (l2_ != nullptr) cpu->set_next_level_cache(l2_.get());
    cpu->set_trace(trace_.get());
    // One code-version table for the whole machine (block caches stay
    // per-hart): a store on any hart must fail the self-modifying-code
    // guard of blocks every other hart translated from that page.
    if (h > 0) cpu->ShareCodeTable(cpus_[0]->code_table());
    cpus_.push_back(std::move(cpu));
  }

  kernel::KernelConfig kernel_config;
  kernel_config.roload_aware =
      config.variant == core::SystemVariant::kFullRoload;
  kernel_config.tlb_shootdown = config.tlb_shootdown;
  kernel_ = std::make_unique<kernel::Kernel>(kernel_config, memory_.get(),
                                             cpus_[0].get());
  for (unsigned h = 1; h < config.harts; ++h) {
    kernel_->AttachHart(cpus_[h].get());
  }
  kernel_->set_trace(trace_.get());
  trace_->set_clock(&cpus_[0]->stats().cycles);

  if (config.harts == 1) {
    // Historical names, exactly as the single-hart System registers them.
    core::RegisterCpuCounters(&trace_->counters(), *cpus_[0]);
  } else {
    std::vector<const cpu::Cpu*> raw;
    for (unsigned h = 0; h < config.harts; ++h) {
      core::RegisterCpuCounters(&trace_->counters(), *cpus_[h],
                                StrFormat("hart%u.", h));
      raw.push_back(cpus_[h].get());
    }
    RegisterAggregateCounters(&trace_->counters(), std::move(raw));
    const cache::CacheStats& l2s = l2_->stats();
    trace_->counters().Register("cache.l2.hit", &l2s.hits);
    trace_->counters().Register("cache.l2.miss", &l2s.misses);
    trace_->counters().Register("cache.l2.writeback", &l2s.writebacks);
  }
  core::RegisterKernelCounters(&trace_->counters(), *kernel_);

  if (config_.trace.audit) {
    auditor_ = std::make_unique<audit::Auditor>(cpus_[0].get(),
                                                memory_.get());
    for (unsigned h = 1; h < config.harts; ++h) {
      auditor_->RegisterHartCpu(h, cpus_[h].get());
    }
    trace_->AddSink(auditor_.get());
    kernel_->set_fault_observer(auditor_.get());
    const audit::Auditor* auditor = auditor_.get();
    trace_->counters().RegisterSource(
        [auditor](std::vector<std::pair<std::string, std::uint64_t>>* out) {
          auditor->AppendCounters(out);
        });
  }
}

Status Machine::Load(const asmtool::LinkImage& image) {
  if (auditor_ != nullptr) auditor_->SetImage(image);
  if (config_.harts == 1) return kernel_->Load(image);
  return kernel_->LoadSmp(image);
}

kernel::RunResult Machine::Run(std::uint64_t max_instructions) {
  if (config_.harts == 1) {
    // The seed path, untouched: bit-identical cycles and counters.
    kernel::RunResult result = kernel_->Run(max_instructions);
    hart_results_ = {result};
    return result;
  }

  hart_results_ = kernel_->RunSmp(config_.quantum, max_instructions);

  // Merge to one machine-level result: a kill wins (it halted the whole
  // machine and carries the faulting hart), then an instruction-limit,
  // then a clean exit with the first nonzero exit code.
  kernel::RunResult merged;
  bool have_kill = false;
  bool have_limit = false;
  for (const kernel::RunResult& r : hart_results_) {
    if (r.kind == kernel::ExitKind::kKilled && !have_kill) {
      merged = r;
      have_kill = true;
    }
  }
  if (!have_kill) {
    for (const kernel::RunResult& r : hart_results_) {
      if (r.kind == kernel::ExitKind::kInstructionLimit && !have_limit) {
        merged = r;
        have_limit = true;
      }
    }
  }
  if (!have_kill && !have_limit) {
    merged = hart_results_[0];
    for (const kernel::RunResult& r : hart_results_) {
      if (r.exit_code != 0) {
        merged.exit_code = r.exit_code;
        merged.hart = r.hart;
        break;
      }
    }
  }
  std::uint64_t instructions = 0;
  std::uint64_t cycles_max = 0;
  for (const kernel::RunResult& r : hart_results_) {
    instructions += r.instructions;
    if (r.cycles > cycles_max) cycles_max = r.cycles;
  }
  merged.instructions = instructions;
  merged.cycles = cycles_max;  // parallel wall-clock
  merged.stdout_text = hart_results_[0].stdout_text;
  merged.peak_mem_kib = hart_results_[0].peak_mem_kib;
  return merged;
}

StatusOr<core::RunMetrics> RunBuildSmp(const core::BuildResult& build,
                                       core::SystemVariant variant,
                                       unsigned harts,
                                       std::uint64_t max_instructions,
                                       const trace::TraceConfig& trace,
                                       cpu::ExecTier exec) {
  SmpConfig config;
  config.variant = variant;
  config.harts = harts;
  config.trace = trace;
  cpu::SetExecTier(&config.cpu, exec);
  Machine machine(config);
  ROLOAD_RETURN_IF_ERROR(machine.Load(build.image));
  const kernel::RunResult run = machine.Run(max_instructions);

  core::RunMetrics metrics;
  metrics.cycles = run.cycles;
  metrics.instructions = run.instructions;
  metrics.peak_mem_kib = run.peak_mem_kib;
  metrics.image_bytes = build.image_bytes;
  metrics.exit_code = run.exit_code;
  metrics.completed = run.kind == kernel::ExitKind::kExited;
  metrics.roload_violation = run.roload_violation;
  metrics.stdout_text = run.stdout_text;

  std::uint64_t roload_loads = 0;
  std::uint64_t dt_hit = 0, dt_miss = 0;
  std::uint64_t dc_hit = 0, dc_miss = 0, ic_hit = 0, ic_miss = 0;
  for (unsigned h = 0; h < harts; ++h) {
    const cpu::Cpu& cpu = machine.cpu(h);
    roload_loads += cpu.stats().roload_loads;
    dt_hit += cpu.dtlb_stats().hits;
    dt_miss += cpu.dtlb_stats().misses;
    dc_hit += cpu.dcache_stats().hits;
    dc_miss += cpu.dcache_stats().misses;
    ic_hit += cpu.icache_stats().hits;
    ic_miss += cpu.icache_stats().misses;
  }
  metrics.roload_loads = roload_loads;
  metrics.dtlb_miss_rate =
      static_cast<double>(dt_miss) / static_cast<double>(dt_hit + dt_miss + 1);
  metrics.dcache_miss_rate =
      dc_hit + dc_miss == 0
          ? 0.0
          : static_cast<double>(dc_miss) / static_cast<double>(dc_hit + dc_miss);
  metrics.icache_miss_rate =
      ic_hit + ic_miss == 0
          ? 0.0
          : static_cast<double>(ic_miss) / static_cast<double>(ic_hit + ic_miss);
  metrics.counters = machine.trace().counters().Snapshot();
  if (trace.profile) {
    const trace::CycleProfiler& profiler = machine.trace().profiler();
    for (std::size_t b = 0;
         b < static_cast<std::size_t>(trace::CycleBucket::kNumBuckets); ++b) {
      const auto bucket = static_cast<trace::CycleBucket>(b);
      metrics.profile.emplace_back(std::string(trace::CycleBucketName(bucket)),
                                   profiler.bucket(bucket));
    }
  }
  return metrics;
}

}  // namespace roload::smp
