#include "tlb/tlb.h"

#include "support/status.h"

namespace roload::tlb {

bool RoLoadCheck(bool readable, bool writable, std::uint32_t page_key,
                 std::uint32_t inst_key) {
  return readable && !writable && page_key == inst_key;
}

Tlb::Tlb(const TlbConfig& config, mem::PhysMemory* memory)
    : config_(config), memory_(memory), walker_(memory) {
  ROLOAD_CHECK(config.entries > 0);
  entries_.resize(config.entries);
}

std::optional<isa::TrapCause> Tlb::CheckPermissions(const mem::Pte& pte,
                                                    AccessType access,
                                                    std::uint32_t key,
                                                    TlbStats* stats) {
  // Conventional permission-control logic.
  switch (access) {
    case AccessType::kFetch:
      if (!pte.executable() || !pte.user()) {
        ++stats->permission_faults;
        return isa::TrapCause::kInstructionPageFault;
      }
      return std::nullopt;
    case AccessType::kStore:
      if (!pte.writable() || !pte.user()) {
        ++stats->permission_faults;
        return isa::TrapCause::kStorePageFault;
      }
      return std::nullopt;
    case AccessType::kLoad:
      if (!pte.readable() || !pte.user()) {
        ++stats->permission_faults;
        return isa::TrapCause::kLoadPageFault;
      }
      return std::nullopt;
    case AccessType::kRoLoad: {
      // The ROLoad check runs in parallel with the conventional read check
      // and the two outputs are ANDed; a failure of either raises the
      // ROLoad page fault that the kernel distinguishes from benign loads.
      ++stats->key_checks;
      const bool base_ok = pte.readable() && pte.user();
      const bool ro_ok =
          RoLoadCheck(pte.readable(), pte.writable(), pte.key(), key);
      if (base_ok && ro_ok) {
        ++stats->key_check_hits;
        return std::nullopt;
      }
      if (!base_ok || pte.writable()) {
        ++stats->roload_writable_faults;
      } else {
        ++stats->roload_key_faults;
      }
      return isa::TrapCause::kRoLoadPageFault;
    }
  }
  return isa::TrapCause::kLoadPageFault;
}

void Tlb::EmitRoLoadFault(isa::TrapCause cause, std::uint64_t virt_addr,
                          std::uint32_t key) {
  if (cause != isa::TrapCause::kRoLoadPageFault || trace_ == nullptr ||
      !trace_->enabled(trace::EventCategory::kRoLoad)) {
    return;
  }
  trace_->Emit(unit_, trace::EventCategory::kRoLoad,
               trace::EventType::kRoLoadFault, 0, virt_addr, key);
}

Tlb::Entry* Tlb::LookupEntry(std::uint64_t vpn, std::uint64_t root_ppn) {
  if (last_entry_ != nullptr && last_entry_->valid &&
      last_entry_->vpn == vpn && last_entry_->asid_root == root_ppn) {
    return last_entry_;
  }
  for (Entry& entry : entries_) {
    if (entry.valid && entry.vpn == vpn && entry.asid_root == root_ppn) {
      last_entry_ = &entry;
      return &entry;
    }
  }
  return nullptr;
}

void Tlb::InsertEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                      const mem::Pte& pte, std::uint64_t phys_page) {
  Entry* victim = nullptr;
  for (Entry& entry : entries_) {
    if (!entry.valid) {
      victim = &entry;
      break;
    }
    if (victim == nullptr || entry.lru_tick < victim->lru_tick) {
      victim = &entry;
    }
  }
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kTlb)) {
    if (victim->valid) {
      trace_->Emit(unit_, trace::EventCategory::kTlb,
                   trace::EventType::kTlbEvict, 0,
                   victim->vpn << mem::kPageShift, victim->pte.key());
    }
    trace_->Emit(unit_, trace::EventCategory::kTlb,
                 trace::EventType::kTlbFill, 0, vpn << mem::kPageShift,
                 pte.key());
  }
  victim->valid = true;
  victim->vpn = vpn;
  victim->asid_root = root_ppn;
  victim->pte = pte;
  victim->phys_page = phys_page;
  victim->lru_tick = ++tick_;
}

TlbResult Tlb::Translate(std::uint64_t root_ppn, std::uint64_t virt_addr,
                         AccessType access, std::uint32_t key) {
  TlbResult result;
  const std::uint64_t vpn = virt_addr >> mem::kPageShift;
  const std::uint64_t offset = virt_addr & (mem::kPageSize - 1);

  Entry* entry = LookupEntry(vpn, root_ppn);
  if (entry != nullptr) {
    ++stats_.hits;
    entry->lru_tick = ++tick_;
    if (auto cause = CheckPermissions(entry->pte, access, key, &stats_)) {
      result.ok = false;
      result.cause = *cause;
      EmitRoLoadFault(result.cause, virt_addr, key);
      return result;
    }
    result.ok = true;
    result.phys_addr = (entry->phys_page << mem::kPageShift) + offset;
    result.cycles = 0;
    return result;
  }

  ++stats_.misses;
  auto walk = walker_.Walk(root_ppn, virt_addr);
  const unsigned walk_cycles =
      config_.walk_cycles_per_level *
      (walk ? walker_.last_walk_accesses() : mem::kSv39Levels);
  if (!walk) {
    result.ok = false;
    result.cycles = walk_cycles;
    switch (access) {
      case AccessType::kFetch:
        result.cause = isa::TrapCause::kInstructionPageFault;
        break;
      case AccessType::kStore:
        result.cause = isa::TrapCause::kStorePageFault;
        break;
      case AccessType::kLoad:
        result.cause = isa::TrapCause::kLoadPageFault;
        break;
      case AccessType::kRoLoad:
        // An unmapped page can never satisfy the read-only+key requirement.
        result.cause = isa::TrapCause::kRoLoadPageFault;
        ++stats_.roload_writable_faults;
        break;
    }
    EmitRoLoadFault(result.cause, virt_addr, key);
    return result;
  }

  // Refill at 4 KiB granularity (superpages are fragmented on refill, like
  // simple L1 TLBs do).
  const std::uint64_t phys_page = walk->phys_addr >> mem::kPageShift;
  InsertEntry(vpn, root_ppn, walk->pte, phys_page);

  if (auto cause = CheckPermissions(walk->pte, access, key, &stats_)) {
    result.ok = false;
    result.cycles = walk_cycles;
    result.cause = *cause;
    EmitRoLoadFault(result.cause, virt_addr, key);
    return result;
  }
  result.ok = true;
  result.phys_addr = walk->phys_addr;
  result.cycles = walk_cycles;
  return result;
}

void Tlb::Flush() {
  for (Entry& entry : entries_) entry.valid = false;
  last_entry_ = nullptr;
  ++stats_.flushes;
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kTlb)) {
    trace_->Emit(unit_, trace::EventCategory::kTlb,
                 trace::EventType::kTlbFlush, 0, 0, 0);
  }
}

}  // namespace roload::tlb
