#include "tlb/tlb.h"

#include <algorithm>

#include "support/status.h"

namespace roload::tlb {

bool RoLoadCheck(bool readable, bool writable, std::uint32_t page_key,
                 std::uint32_t inst_key) {
  return readable && !writable && page_key == inst_key;
}

Tlb::Tlb(const TlbConfig& config, mem::PhysMemory* memory)
    : config_(config), memory_(memory), walker_(memory) {
  ROLOAD_CHECK(config.entries > 0);
  entries_.resize(config.entries);
  // ~2 buckets per entry keeps the chains at one element in the common
  // case while the bucket array stays cache-resident.
  std::uint64_t buckets = 1;
  while (buckets < 2 * config.entries) buckets <<= 1;
  bucket_mask_ = buckets - 1;
  bucket_head_.assign(buckets, -1);
  chain_next_.assign(config.entries, -1);
}

void Tlb::EmitRoLoadFault(isa::TrapCause cause, std::uint64_t virt_addr,
                          std::uint32_t key) {
  if (cause != isa::TrapCause::kRoLoadPageFault || trace_ == nullptr ||
      !trace_->enabled(trace::EventCategory::kRoLoad)) {
    return;
  }
  trace_->Emit(unit_, trace::EventCategory::kRoLoad,
               trace::EventType::kRoLoadFault, 0, virt_addr, key);
}

Tlb::Entry* Tlb::LookupEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                             AccessType access) {
  if (!config_.host_indexed_lookup) {
    // Reference path: one shared hint, then the fully-associative scan.
    if (last_entry_ != nullptr && last_entry_->valid &&
        last_entry_->vpn == vpn && last_entry_->asid_root == root_ppn) {
      return last_entry_;
    }
    for (Entry& entry : entries_) {
      if (entry.valid && entry.vpn == vpn && entry.asid_root == root_ppn) {
        last_entry_ = &entry;
        return &entry;
      }
    }
    return nullptr;
  }
  Entry*& last = last_translation_[static_cast<std::size_t>(access)];
  if (last != nullptr && last->valid && last->vpn == vpn &&
      last->asid_root == root_ppn) {
    return last;
  }
  for (std::int32_t i = bucket_head_[BucketOf(vpn, root_ppn)]; i >= 0;
       i = chain_next_[i]) {
    Entry& entry = entries_[static_cast<std::size_t>(i)];
    if (entry.valid && entry.vpn == vpn && entry.asid_root == root_ppn) {
      last = &entry;
      return &entry;
    }
  }
  return nullptr;
}

void Tlb::UnlinkEntry(std::int32_t index) {
  const Entry& entry = entries_[static_cast<std::size_t>(index)];
  std::int32_t* link = &bucket_head_[BucketOf(entry.vpn, entry.asid_root)];
  while (*link >= 0) {
    if (*link == index) {
      *link = chain_next_[index];
      return;
    }
    link = &chain_next_[*link];
  }
}

void Tlb::InsertEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                      const mem::Pte& pte, std::uint64_t phys_page) {
  Entry* victim = nullptr;
  for (Entry& entry : entries_) {
    if (!entry.valid) {
      victim = &entry;
      break;
    }
    if (victim == nullptr || entry.lru_tick < victim->lru_tick) {
      victim = &entry;
    }
  }
  if (config_.host_indexed_lookup) {
    const auto index = static_cast<std::int32_t>(victim - entries_.data());
    if (victim->valid) UnlinkEntry(index);
    chain_next_[index] = bucket_head_[BucketOf(vpn, root_ppn)];
    bucket_head_[BucketOf(vpn, root_ppn)] = index;
  }
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kTlb)) {
    if (victim->valid) {
      trace_->Emit(unit_, trace::EventCategory::kTlb,
                   trace::EventType::kTlbEvict, 0,
                   victim->vpn << mem::kPageShift, victim->pte.key());
    }
    trace_->Emit(unit_, trace::EventCategory::kTlb,
                 trace::EventType::kTlbFill, 0, vpn << mem::kPageShift,
                 pte.key());
  }
  victim->valid = true;
  victim->vpn = vpn;
  victim->asid_root = root_ppn;
  victim->pte = pte;
  victim->phys_page = phys_page;
  victim->lru_tick = ++tick_;
}

TlbResult Tlb::TranslateSlow(std::uint64_t root_ppn, std::uint64_t virt_addr,
                             AccessType access, std::uint32_t key) {
  TlbResult result;
  const std::uint64_t vpn = virt_addr >> mem::kPageShift;
  const std::uint64_t offset = virt_addr & (mem::kPageSize - 1);

  Entry* entry = LookupEntry(vpn, root_ppn, access);
  if (entry != nullptr) {
    ++stats_.hits;
    entry->lru_tick = ++tick_;
    if (auto cause = CheckPermissions(entry->pte, access, key, &stats_,
                                      &result.roload_fail_kind)) {
      result.ok = false;
      result.cause = *cause;
      EmitRoLoadFault(result.cause, virt_addr, key);
      return result;
    }
    result.ok = true;
    result.phys_addr = (entry->phys_page << mem::kPageShift) + offset;
    result.cycles = 0;
    return result;
  }

  ++stats_.misses;
  auto walk = walker_.Walk(root_ppn, virt_addr);
  const unsigned walk_cycles =
      config_.walk_cycles_per_level *
      (walk ? walker_.last_walk_accesses() : mem::kSv39Levels);
  if (!walk) {
    result.ok = false;
    result.cycles = walk_cycles;
    switch (access) {
      case AccessType::kFetch:
        result.cause = isa::TrapCause::kInstructionPageFault;
        break;
      case AccessType::kStore:
        result.cause = isa::TrapCause::kStorePageFault;
        break;
      case AccessType::kLoad:
        result.cause = isa::TrapCause::kLoadPageFault;
        break;
      case AccessType::kRoLoad:
        // An unmapped page can never satisfy the read-only+key requirement.
        result.cause = isa::TrapCause::kRoLoadPageFault;
        result.roload_fail_kind = RoLoadFailKind::kUnmapped;
        ++stats_.roload_writable_faults;
        break;
    }
    EmitRoLoadFault(result.cause, virt_addr, key);
    return result;
  }

  // Refill at 4 KiB granularity (superpages are fragmented on refill, like
  // simple L1 TLBs do).
  const std::uint64_t phys_page = walk->phys_addr >> mem::kPageShift;
  InsertEntry(vpn, root_ppn, walk->pte, phys_page);

  if (auto cause = CheckPermissions(walk->pte, access, key, &stats_,
                                    &result.roload_fail_kind)) {
    result.ok = false;
    result.cycles = walk_cycles;
    result.cause = *cause;
    EmitRoLoadFault(result.cause, virt_addr, key);
    return result;
  }
  result.ok = true;
  result.phys_addr = walk->phys_addr;
  result.cycles = walk_cycles;
  return result;
}

void Tlb::Flush() {
  for (Entry& entry : entries_) entry.valid = false;
  // Drop every lookup shortcut with the entries: the last-translation
  // registers and bucket chains must never outlive a PTE edit, or a key
  // change made before the flush could be served stale.
  last_entry_ = nullptr;
  for (Entry*& last : last_translation_) last = nullptr;
  std::fill(bucket_head_.begin(), bucket_head_.end(), -1);
  std::fill(chain_next_.begin(), chain_next_.end(), -1);
  ++stats_.flushes;
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kTlb)) {
    trace_->Emit(unit_, trace::EventCategory::kTlb,
                 trace::EventType::kTlbFlush, 0, 0, 0);
  }
}

}  // namespace roload::tlb
