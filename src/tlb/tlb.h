// TLB model with the ROLoad extension: every entry carries the page key in
// addition to the permission bits, and the lookup performs the conventional
// permission check and the ROLoad read-only+key check in parallel (their
// outputs are ANDed), mirroring the "light extra logic" added to the Rocket
// Chip TLB class.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/traps.h"
#include "mem/page_table.h"
#include "trace/hub.h"

namespace roload::tlb {

// The kind of memory operation requesting translation. kRoLoad is the new
// memory-operation type the ROLoad decoder issues (the analogue of the new
// entry in Rocket's MemoryOpConstants).
enum class AccessType : std::uint8_t {
  kFetch,
  kLoad,
  kStore,
  kRoLoad,
};

struct TlbConfig {
  unsigned entries = 32;       // 32-entry I-TLB / D-TLB (Table II)
  unsigned ways = 32;          // fully associative by default
  // Cycles charged per page-table level on a miss (memory access latency
  // is charged separately by the cache model in the CPU; this is the
  // walker's own latency).
  unsigned walk_cycles_per_level = 20;
};

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t flushes = 0;
  std::uint64_t permission_faults = 0;
  std::uint64_t roload_key_faults = 0;
  std::uint64_t roload_writable_faults = 0;
  // ROLoad check invocations (one per kRoLoad translation) and how many
  // passed — the "tlb.d.key_check" telemetry counters.
  std::uint64_t key_checks = 0;
  std::uint64_t key_check_hits = 0;
};

// Translation outcome: either a physical address (plus cycle cost) or a trap.
struct TlbResult {
  bool ok = false;
  std::uint64_t phys_addr = 0;
  unsigned cycles = 0;  // extra cycles spent (0 on a hit)
  isa::TrapCause cause = isa::TrapCause::kLoadPageFault;
};

// One TLB: tag + leaf PTE copy (permissions and key). Used for both the
// I-side and D-side TLBs.
class Tlb {
 public:
  Tlb(const TlbConfig& config, mem::PhysMemory* memory);

  // Translates `virt_addr` for `access` under root page table `root_ppn`.
  // `key` is only consulted for AccessType::kRoLoad.
  TlbResult Translate(std::uint64_t root_ppn, std::uint64_t virt_addr,
                      AccessType access, std::uint32_t key);

  // Invalidates all entries (sfence.vma analogue). Must be called by the
  // kernel model after any PTE change.
  void Flush();

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  // Telemetry attachment (null disables). `unit` tells the event stream
  // whether this is the I-side or D-side TLB.
  void set_trace(trace::Hub* hub, trace::Unit unit) {
    trace_ = hub;
    unit_ = unit;
  }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t vpn = 0;       // virtual page number (4 KiB granularity)
    std::uint64_t asid_root = 0; // root ppn acts as the ASID in this model
    mem::Pte pte;
    std::uint64_t phys_page = 0;
    std::uint64_t lru_tick = 0;
  };

  // The permission-check datapath (conventional + ROLoad in parallel).
  // Returns nullopt when access is allowed, else the trap cause.
  static std::optional<isa::TrapCause> CheckPermissions(
      const mem::Pte& pte, AccessType access, std::uint32_t key,
      TlbStats* stats);

  Entry* LookupEntry(std::uint64_t vpn, std::uint64_t root_ppn);
  void InsertEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                   const mem::Pte& pte, std::uint64_t phys_page);
  // Records a key-check failure in the event stream (no-op for other
  // causes or when the kRoLoad category is masked off).
  void EmitRoLoadFault(isa::TrapCause cause, std::uint64_t virt_addr,
                       std::uint32_t key);

  // Simulation fast path (no architectural effect): most lookups hit the
  // same page as the previous one, so cache the last matched entry and
  // self-validate it before the associative scan.
  Entry* last_entry_ = nullptr;

  trace::Hub* trace_ = nullptr;
  trace::Unit unit_ = trace::Unit::kDTlb;

  TlbConfig config_;
  mem::PhysMemory* memory_;
  mem::PageWalker walker_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  TlbStats stats_;
};

// Pure function exposing the ROLoad check logic in isolation; also used by
// the hardware cost model's functional-equivalence tests (the netlist in
// src/hw implements exactly this boolean function).
//
// allowed = readable && !writable && (page_key == inst_key)
bool RoLoadCheck(bool readable, bool writable, std::uint32_t page_key,
                 std::uint32_t inst_key);

}  // namespace roload::tlb
