// TLB model with the ROLoad extension: every entry carries the page key in
// addition to the permission bits, and the lookup performs the conventional
// permission check and the ROLoad read-only+key check in parallel (their
// outputs are ANDed), mirroring the "light extra logic" added to the Rocket
// Chip TLB class.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/traps.h"
#include "mem/page_table.h"
#include "trace/hub.h"

namespace roload::tlb {

// The kind of memory operation requesting translation. kRoLoad is the new
// memory-operation type the ROLoad decoder issues (the analogue of the new
// entry in Rocket's MemoryOpConstants).
enum class AccessType : std::uint8_t {
  kFetch,
  kLoad,
  kStore,
  kRoLoad,
};

struct TlbConfig {
  unsigned entries = 32;       // 32-entry I-TLB / D-TLB (Table II)
  unsigned ways = 32;          // fully associative by default
  // Cycles charged per page-table level on a miss (memory access latency
  // is charged separately by the cache model in the CPU; this is the
  // walker's own latency).
  unsigned walk_cycles_per_level = 20;
  // Host-only lookup acceleration: VPN-indexed bucket chains plus one
  // last-translation register per access type, replacing the reference
  // fully-associative linear scan. Replacement still picks the global LRU
  // victim, so hits, misses, evictions, fault causes and every TlbStats
  // field are bit-identical to the reference path (pinned by the
  // differential tests in tests/test_tlb.cpp).
  bool host_indexed_lookup = true;
};

// Per-instruction-key key-check tally, kept inside TlbStats. The set of
// keys a run uses is only known at run time, so these live in a small
// append-only table (linear scan: real programs use a handful of keys)
// instead of 1024 fixed cells; the counter registry exposes them as
// "tlb.keycheck.pass.<K>" / "tlb.keycheck.fail.<K>" via a dynamic source.
struct TlbKeyCheckCount {
  std::uint32_t key = 0;
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;
};

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t flushes = 0;
  std::uint64_t permission_faults = 0;
  std::uint64_t roload_key_faults = 0;
  std::uint64_t roload_writable_faults = 0;
  // ROLoad check invocations (one per kRoLoad translation) and how many
  // passed — the "tlb.d.key_check" telemetry counters.
  std::uint64_t key_checks = 0;
  std::uint64_t key_check_hits = 0;
  // Per-instruction-key breakdown of the two aggregates above: summed over
  // keys, passes == key_check_hits and passes+fails == key_checks (pinned
  // by the differential test in tests/test_tlb.cpp).
  std::vector<TlbKeyCheckCount> key_check_by_key;

  TlbKeyCheckCount& ForKey(std::uint32_t key) {
    for (TlbKeyCheckCount& entry : key_check_by_key) {
      if (entry.key == key) return entry;
    }
    key_check_by_key.push_back(TlbKeyCheckCount{key, 0, 0});
    return key_check_by_key.back();
  }
};

// Why a kRoLoad translation failed (TlbResult::roload_fail_kind); kNone for
// successful checks and for non-ROLoad accesses. Feeds the kRoLoadCheck
// event stream and the audit layer's outcome classification.
enum class RoLoadFailKind : std::uint8_t {
  kNone = 0,
  kKeyMismatch = 1,   // read-only page, wrong key
  kWritablePage = 2,  // writable (or unreadable) target page
  kUnmapped = 3,      // no mapping at all
};

// Translation outcome: either a physical address (plus cycle cost) or a trap.
struct TlbResult {
  bool ok = false;
  std::uint64_t phys_addr = 0;
  unsigned cycles = 0;  // extra cycles spent (0 on a hit)
  isa::TrapCause cause = isa::TrapCause::kLoadPageFault;
  RoLoadFailKind roload_fail_kind = RoLoadFailKind::kNone;
};

// Pure function exposing the ROLoad check logic in isolation; also used by
// the hardware cost model's functional-equivalence tests (the netlist in
// src/hw implements exactly this boolean function).
//
// allowed = readable && !writable && (page_key == inst_key)
bool RoLoadCheck(bool readable, bool writable, std::uint32_t page_key,
                 std::uint32_t inst_key);

// One TLB: tag + leaf PTE copy (permissions and key). Used for both the
// I-side and D-side TLBs.
class Tlb {
 public:
  Tlb(const TlbConfig& config, mem::PhysMemory* memory);

  // One TLB entry, public so the translation tier (src/cpu/translate.h)
  // can pin an entry pointer inside a block guard. `entries_` never
  // reallocates, so the pointer stays stable for the Tlb's lifetime;
  // Flush() only clears `valid` in place. Guard holders must revalidate
  // (valid + vpn + asid_root + pte bits) before every use.
  struct Entry {
    bool valid = false;
    std::uint64_t vpn = 0;       // virtual page number (4 KiB granularity)
    std::uint64_t asid_root = 0; // root ppn acts as the ASID in this model
    mem::Pte pte;
    std::uint64_t phys_page = 0;
    std::uint64_t lru_tick = 0;
  };

  // Translates `virt_addr` for `access` under root page table `root_ppn`.
  // `key` is only consulted for AccessType::kRoLoad.
  //
  // The inline body is the host fast path: when the per-access-type
  // last-translation register covers the page, the hit (including the
  // stats/LRU updates and the full permission datapath) completes without
  // an out-of-line call. It performs exactly the steps TranslateSlow
  // performs for the same hit, so results and TlbStats are bit-identical
  // whichever path serves the access.
  TlbResult Translate(std::uint64_t root_ppn, std::uint64_t virt_addr,
                      AccessType access, std::uint32_t key) {
    if (config_.host_indexed_lookup) {
      Entry* entry = last_translation_[static_cast<std::size_t>(access)];
      if (entry != nullptr && entry->valid &&
          entry->vpn == (virt_addr >> mem::kPageShift) &&
          entry->asid_root == root_ppn) {
        ++stats_.hits;
        entry->lru_tick = ++tick_;
        TlbResult result;
        if (auto cause = CheckPermissions(entry->pte, access, key, &stats_,
                                          &result.roload_fail_kind)) {
          result.ok = false;
          result.cause = *cause;
          EmitRoLoadFault(result.cause, virt_addr, key);
          return result;
        }
        result.ok = true;
        result.phys_addr = (entry->phys_page << mem::kPageShift) +
                           (virt_addr & (mem::kPageSize - 1));
        result.cycles = 0;
        return result;
      }
    }
    return TranslateSlow(root_ppn, virt_addr, access, key);
  }

  // Compile-time-specialized Translate for the translated tier's inline
  // data micro-ops (loads, stores, and the ld.ro family). It performs
  // exactly the steps Translate performs — same hint register, same
  // hit/LRU/permission/fault mutations in the same order — with the
  // permission switch folded at compile time (CheckPermissions dispatches
  // on the constant A, so kLoad/kStore reduce to two bit tests and
  // kRoLoad keeps the full key-check datapath and its counters).
  // EmitRoLoadFault only ever emits for kRoLoadPageFault, so the
  // conditional call is exact for every A. Hint misses and the reference
  // lookup delegate to TranslateSlow unchanged.
  template <AccessType A>
  TlbResult TranslateFor(std::uint64_t root_ppn, std::uint64_t virt_addr,
                         std::uint32_t key) {
    static_assert(A == AccessType::kLoad || A == AccessType::kStore ||
                      A == AccessType::kRoLoad,
                  "fetch accesses use Translate()");
    if (config_.host_indexed_lookup) {
      Entry* entry = last_translation_[static_cast<std::size_t>(A)];
      if (entry != nullptr && entry->valid &&
          entry->vpn == (virt_addr >> mem::kPageShift) &&
          entry->asid_root == root_ppn) {
        ++stats_.hits;
        entry->lru_tick = ++tick_;
        TlbResult result;
        if (auto cause = CheckPermissions(entry->pte, A, key, &stats_,
                                          &result.roload_fail_kind)) {
          result.ok = false;
          result.cause = *cause;
          if (A == AccessType::kRoLoad) {
            EmitRoLoadFault(result.cause, virt_addr, key);
          }
          return result;
        }
        result.ok = true;
        result.phys_addr = (entry->phys_page << mem::kPageShift) +
                           (virt_addr & (mem::kPageSize - 1));
        result.cycles = 0;
        return result;
      }
    }
    return TranslateSlow(root_ppn, virt_addr, A, key);
  }

  // Guard-probe for the translation tier: returns the entry covering
  // `virt_addr` under `root_ppn`, or nullptr. Pure query — no stats, no
  // LRU tick, no hint update — so probing is invisible to the counter
  // contract. A linear scan is fine here: it runs once per block build /
  // guard revalidation, never per instruction.
  Entry* Probe(std::uint64_t root_ppn, std::uint64_t virt_addr) {
    const std::uint64_t vpn = virt_addr >> mem::kPageShift;
    for (Entry& entry : entries_) {
      if (entry.valid && entry.vpn == vpn && entry.asid_root == root_ppn) {
        return &entry;
      }
    }
    return nullptr;
  }

  // Replays the bookkeeping of `n` consecutive successful kFetch hits on
  // `entry` without re-running the lookups: exactly the mutations n
  // Translate fetch hits would perform (n hit counts, n LRU ticks — all
  // landing on the same entry, so only the final tick is observable — and
  // the lookup hint; CheckPermissions has no stat effect on a passing
  // fetch). The translation tier calls this once per replayed block run,
  // after its guard proved the entry covers the page and because nothing
  // inside the run touches this TLB (data accesses go to the D-side).
  void ReplayFetchHits(Entry* entry, std::uint64_t n) {
    if (n == 0) return;
    stats_.hits += n;
    tick_ += n;
    entry->lru_tick = tick_;
    if (config_.host_indexed_lookup) {
      last_translation_[static_cast<std::size_t>(AccessType::kFetch)] = entry;
    } else {
      last_entry_ = entry;
    }
  }

  // Per-site inline-cache support for the translated tier's memory
  // micro-ops. A block op that repeatedly touches the same page memoizes
  // the entry it hit; once the caller has re-proven the entry (valid, vpn,
  // asid_root) and its permission bits for access A, ReplaySiteHit applies
  // exactly the mutations the reference lookup performs for that hit — one
  // hit count, the LRU tick, and the lookup hint, which every reference
  // hit path leaves pointing at the matched entry. site_hint() is what a
  // memo re-arms from after a generic Translate: it holds the matched
  // entry after any hit (after a refill it may lag one access, which only
  // costs one more generic lookup).
  template <AccessType A>
  void ReplaySiteHit(Entry* entry) {
    ++stats_.hits;
    entry->lru_tick = ++tick_;
    if (config_.host_indexed_lookup) {
      last_translation_[static_cast<std::size_t>(A)] = entry;
    } else {
      last_entry_ = entry;
    }
  }
  Entry* site_hint(AccessType access) {
    return config_.host_indexed_lookup
               ? last_translation_[static_cast<std::size_t>(access)]
               : last_entry_;
  }

  // Batched form of ReplaySiteHit for a block run: the caller stamps each
  // proven hit with `tick = replay_base() + k` (k = 1-based hit index
  // since the last commit) and commits the hit count and tick advance in
  // one CommitReplayBatch call, exactly as the fetch replay does. The
  // split is observationally identical to per-hit ++tick_/++stats_.hits
  // because nothing reads this TLB between the stamps and the commit —
  // the executor flushes the pending batch before any generic lookup.
  std::uint64_t replay_base() const { return tick_; }
  void CommitReplayBatch(std::uint64_t hits) {
    stats_.hits += hits;
    tick_ += hits;
  }
  template <AccessType A>
  void ReplaySiteHitAt(Entry* entry, std::uint64_t tick) {
    entry->lru_tick = tick;
    if (config_.host_indexed_lookup) {
      last_translation_[static_cast<std::size_t>(A)] = entry;
    } else {
      last_entry_ = entry;
    }
  }

  // Public permission datapath for the translated tier's per-site ld.ro
  // micro-ops: exactly the CheckPermissions(kRoLoad) half of a Translate
  // hit (key-check counters, per-key pass/fail census, fault kind), run
  // after the caller proved the memoized entry covers the page. Nullopt
  // when the checked load is allowed.
  std::optional<isa::TrapCause> RoSitePermissions(const mem::Pte& pte,
                                                 std::uint32_t key,
                                                 RoLoadFailKind* fail_kind) {
    return CheckPermissions(pte, AccessType::kRoLoad, key, &stats_, fail_kind);
  }

  // Invalidates all entries (sfence.vma analogue). Must be called by the
  // kernel model after any PTE change.
  void Flush();

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }

  // Telemetry attachment (null disables). `unit` tells the event stream
  // whether this is the I-side or D-side TLB.
  void set_trace(trace::Hub* hub, trace::Unit unit) {
    trace_ = hub;
    unit_ = unit;
  }

 private:
  // The permission-check datapath (conventional + ROLoad in parallel).
  // Returns nullopt when access is allowed, else the trap cause; for
  // kRoLoad, *fail_kind reports why the check failed. Defined inline (it
  // sits on the per-access hot path of both lookup paths).
  static std::optional<isa::TrapCause> CheckPermissions(
      const mem::Pte& pte, AccessType access, std::uint32_t key,
      TlbStats* stats, RoLoadFailKind* fail_kind) {
    switch (access) {
      case AccessType::kFetch:
        if (!pte.executable() || !pte.user()) {
          ++stats->permission_faults;
          return isa::TrapCause::kInstructionPageFault;
        }
        return std::nullopt;
      case AccessType::kStore:
        if (!pte.writable() || !pte.user()) {
          ++stats->permission_faults;
          return isa::TrapCause::kStorePageFault;
        }
        return std::nullopt;
      case AccessType::kLoad:
        if (!pte.readable() || !pte.user()) {
          ++stats->permission_faults;
          return isa::TrapCause::kLoadPageFault;
        }
        return std::nullopt;
      case AccessType::kRoLoad: {
        // The ROLoad check runs in parallel with the conventional read
        // check and the two outputs are ANDed; a failure of either raises
        // the ROLoad page fault that the kernel distinguishes from benign
        // loads.
        ++stats->key_checks;
        TlbKeyCheckCount& by_key = stats->ForKey(key);
        const bool base_ok = pte.readable() && pte.user();
        const bool ro_ok =
            RoLoadCheck(pte.readable(), pte.writable(), pte.key(), key);
        if (base_ok && ro_ok) {
          ++stats->key_check_hits;
          ++by_key.passes;
          return std::nullopt;
        }
        ++by_key.fails;
        if (!base_ok || pte.writable()) {
          ++stats->roload_writable_faults;
          *fail_kind = RoLoadFailKind::kWritablePage;
        } else {
          ++stats->roload_key_faults;
          *fail_kind = RoLoadFailKind::kKeyMismatch;
        }
        return isa::TrapCause::kRoLoadPageFault;
      }
    }
    return isa::TrapCause::kLoadPageFault;
  }

  // The miss/scan half of Translate: everything past the inline
  // last-translation shortcut (and the whole of the reference path).
  TlbResult TranslateSlow(std::uint64_t root_ppn, std::uint64_t virt_addr,
                          AccessType access, std::uint32_t key);

  Entry* LookupEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                     AccessType access);
  void InsertEntry(std::uint64_t vpn, std::uint64_t root_ppn,
                   const mem::Pte& pte, std::uint64_t phys_page);
  // Records a key-check failure in the event stream (no-op for other
  // causes or when the kRoLoad category is masked off).
  void EmitRoLoadFault(isa::TrapCause cause, std::uint64_t virt_addr,
                       std::uint32_t key);

  // Indexed-lookup bookkeeping (host_indexed_lookup only).
  std::size_t BucketOf(std::uint64_t vpn, std::uint64_t root_ppn) const {
    return (vpn ^ root_ppn) & bucket_mask_;
  }
  void UnlinkEntry(std::int32_t index);

  // Simulation fast path (no architectural effect): most lookups hit the
  // same page as the previous one, so cache the last matched entry and
  // self-validate it before the associative scan. Used by the reference
  // (non-indexed) lookup path.
  Entry* last_entry_ = nullptr;

  // Host-only indexed lookup state: valid entries are threaded into
  // singly-linked chains headed by bucket_head_[BucketOf(...)], and each
  // access type keeps its own last-translation register so alternating
  // load/store/ld.ro pages do not thrash a single hint. Flush() clears
  // all of it; entries_ never reallocates, so the pointers stay stable.
  std::vector<std::int32_t> bucket_head_;  // bucket -> entry index or -1
  std::vector<std::int32_t> chain_next_;   // entry index -> next or -1
  std::uint64_t bucket_mask_ = 0;
  Entry* last_translation_[4] = {nullptr, nullptr, nullptr, nullptr};

  trace::Hub* trace_ = nullptr;
  trace::Unit unit_ = trace::Unit::kDTlb;

  TlbConfig config_;
  mem::PhysMemory* memory_;
  mem::PageWalker walker_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  TlbStats stats_;
};

}  // namespace roload::tlb
