#include "workloads/spec_like.h"

#include "ir/builder.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"

namespace roload::workloads {
namespace {

// Objects per class hierarchy in the generated object pools.
constexpr unsigned kObjectsPerHierarchy = 64;
// Entries per function-pointer callback table.
constexpr unsigned kCallbackSlots = 32;
// Fraction (percent) of memory ops that stay inside the hot window.
constexpr unsigned kHotAccessPercent = 85;
constexpr std::uint64_t kHotWindowBytes = 64 * 1024;
// Ops per generated phase function (bounds frame size).
constexpr unsigned kOpsPerPhase = 16;

// RPC server family: handler-table geometry and per-hart state layout.
constexpr unsigned kRpcHandlers = 8;       // distinct handler functions
constexpr unsigned kRpcHandlerSlots = 16;  // handler-table entries
constexpr unsigned kRpcOpsPerHandler = 10;
constexpr unsigned kRpcMaxHarts = 8;       // rpc_state rows
constexpr unsigned kRpcStateStride = 64;   // bytes per hart row

// The op menu for the hot loop.
enum class OpKind : unsigned {
  kArith = 0,
  kMem,
  kBranch,
  kCall,
  kICall,
  kVCall,
};

std::string VcallTypeName() { return "i64(ptr,i64)"; }
std::string CbTypeName(unsigned type) {
  return StrFormat("i64(i64)#cb%u", type);
}
std::string RpcHandlerTypeName() { return "i64(i64)#rpc"; }

class Generator {
 public:
  explicit Generator(const WorkloadSpec& spec)
      : spec_(spec), rng_(spec.seed * 0x9E3779B1u + 0x1234567) {}

  ir::Module Run();

 private:
  void EmitGlobals();
  void EmitMethods();
  void EmitCallbacks();
  void EmitHelpers();
  // Returns the names of the emitted phase functions.
  std::vector<std::string> EmitPhases();
  // Cold startup functions; returns their names.
  std::vector<std::string> EmitColdFns();
  void EmitStep(const std::vector<std::string>& phases);
  void EmitMain(const std::vector<std::string>& cold_fns);

  // RPC server family (WorkloadKind::kRpcServer).
  void EmitRpcGlobals();
  void EmitRpcHandlers();
  void EmitRpcMain();

  // Op emitters; take and return the running value vreg.
  int EmitArith(ir::FunctionBuilder& b, int v);
  int EmitMem(ir::FunctionBuilder& b, int v);
  int EmitBranch(ir::FunctionBuilder& b, int v);
  int EmitCall(ir::FunctionBuilder& b, int v);
  int EmitICall(ir::FunctionBuilder& b, int v);
  int EmitVCall(ir::FunctionBuilder& b, int v);

  std::uint64_t DataMask() const {
    // data size is a power of two >= 4 KiB.
    return spec_.data_kib * 1024 - 1;
  }

  WorkloadSpec spec_;
  Rng rng_;
  ir::Module module_;
  unsigned label_counter_ = 0;
};

void Generator::EmitGlobals() {
  // Main working set.
  ir::Global data;
  data.name = "data";
  data.read_only = false;
  data.zero_bytes = spec_.data_kib * 1024;
  module_.globals.push_back(std::move(data));

  // Scratch slots for loop variables and branch joins.
  ir::Global scratch;
  scratch.name = "scratch";
  scratch.read_only = false;
  scratch.zero_bytes = 256;
  module_.globals.push_back(std::move(scratch));

  // C++ object pools and vtables (trait_id = hierarchy id: every class in
  // one hierarchy shares the same "static type" for grouping purposes).
  for (unsigned h = 0; h < spec_.hierarchies; ++h) {
    const int hier_id = module_.InternClass(StrFormat("Hier%u", h));
    for (unsigned c = 0; c < spec_.classes_per_hierarchy; ++c) {
      ir::Global vtable;
      vtable.name = StrFormat("vt_%u_%u", h, c);
      vtable.read_only = true;
      vtable.trait = ir::GlobalTrait::kVTable;
      vtable.trait_id = hier_id;
      for (unsigned s = 0; s < spec_.vtable_slots; ++s) {
        vtable.quads.push_back(
            ir::GlobalInit{0, StrFormat("m_%u_%u_%u", h, s, c)});
      }
      module_.globals.push_back(std::move(vtable));
    }

    ir::Global pool;
    pool.name = StrFormat("pool_%u", h);
    pool.read_only = false;
    for (unsigned o = 0; o < kObjectsPerHierarchy; ++o) {
      const unsigned c = o % spec_.classes_per_hierarchy;
      pool.quads.push_back(ir::GlobalInit{0, StrFormat("vt_%u_%u", h, c)});
      pool.quads.push_back(
          ir::GlobalInit{static_cast<std::int64_t>(o * 3 + 1), ""});
    }
    module_.globals.push_back(std::move(pool));
  }

  // Callback tables: writable arrays of function pointers (one per type).
  for (unsigned t = 0; t < spec_.fn_types; ++t) {
    ir::Global table;
    table.name = StrFormat("cb_%u", t);
    table.read_only = false;
    for (unsigned k = 0; k < kCallbackSlots; ++k) {
      table.quads.push_back(ir::GlobalInit{
          0, StrFormat("cbfn_%u_%u", t, k % spec_.fns_per_type)});
    }
    module_.globals.push_back(std::move(table));
  }
}

void Generator::EmitMethods() {
  for (unsigned h = 0; h < spec_.hierarchies; ++h) {
    for (unsigned s = 0; s < spec_.vtable_slots; ++s) {
      for (unsigned c = 0; c < spec_.classes_per_hierarchy; ++c) {
        ir::FunctionBuilder b(&module_, StrFormat("m_%u_%u_%u", h, s, c),
                              VcallTypeName(), 2);
        // field = obj->field; return x*K + field + distinct constant
        const int field = b.Load(b.Param(0), 8);
        const int scaled =
            b.BinImm(ir::BinOp::kMul, b.Param(1),
                     static_cast<std::int64_t>(2 * s + 3));
        const int sum = b.Bin(ir::BinOp::kAdd, scaled, field);
        b.Ret(b.BinImm(ir::BinOp::kXor, sum,
                       static_cast<std::int64_t>(h * 131 + s * 17 + c * 7)));
      }
    }
  }
}

void Generator::EmitCallbacks() {
  for (unsigned t = 0; t < spec_.fn_types; ++t) {
    for (unsigned k = 0; k < spec_.fns_per_type; ++k) {
      ir::FunctionBuilder b(&module_, StrFormat("cbfn_%u_%u", t, k),
                            CbTypeName(t), 1);
      const int mixed = b.BinImm(ir::BinOp::kMul, b.Param(0),
                                 static_cast<std::int64_t>(2 * k + 5));
      b.Ret(b.BinImm(ir::BinOp::kAdd, mixed,
                     static_cast<std::int64_t>(t * 101 + k * 13)));
    }
  }
}

void Generator::EmitHelpers() {
  for (unsigned j = 0; j < spec_.helper_fns; ++j) {
    ir::FunctionBuilder b(&module_, StrFormat("helper_%u", j), "i64(i64)",
                          1);
    const int a = b.BinImm(ir::BinOp::kXor, b.Param(0),
                           static_cast<std::int64_t>(j * 73 + 11));
    const int c = b.BinImm(ir::BinOp::kShl, a, static_cast<std::int64_t>(
                                                   (j % 3) + 1));
    b.Ret(b.Bin(ir::BinOp::kAdd, a, c));
  }
}

int Generator::EmitArith(ir::FunctionBuilder& b, int v) {
  static constexpr ir::BinOp kOps[] = {ir::BinOp::kAdd, ir::BinOp::kXor,
                                       ir::BinOp::kMul, ir::BinOp::kSub,
                                       ir::BinOp::kOr};
  for (int n = 0; n < 3; ++n) {
    const ir::BinOp op = kOps[rng_.NextBelow(5)];
    const std::int64_t imm = rng_.NextInRange(3, 1000) | 1;
    v = b.BinImm(op, v, imm);
  }
  return v;
}

int Generator::EmitMem(ir::FunctionBuilder& b, int v) {
  // addr = &data[hash(v) & mask & ~7]. Most accesses stay inside a hot
  // window (real integer codes have strong locality); a minority roam the
  // whole working set.
  const std::uint64_t window =
      rng_.NextPercent(kHotAccessPercent)
          ? (kHotWindowBytes - 1) & DataMask()
          : DataMask();
  const int hashed = b.BinImm(ir::BinOp::kMul, v, 0x5E3779B1);
  const int masked = b.BinImm(
      ir::BinOp::kAnd, hashed,
      static_cast<std::int64_t>(window & ~std::uint64_t{7}));
  const int base = b.AddrOf("data");
  const int addr = b.Bin(ir::BinOp::kAdd, base, masked);
  const int value = b.Load(addr);
  v = b.Bin(ir::BinOp::kAdd, v, value);
  if (rng_.NextPercent(50)) {
    b.Store(addr, v);
  }
  return v;
}

int Generator::EmitBranch(ir::FunctionBuilder& b, int v) {
  const std::string arm_t = StrFormat("bt%u", label_counter_);
  const std::string arm_f = StrFormat("bf%u", label_counter_);
  const std::string join = StrFormat("bj%u", label_counter_);
  ++label_counter_;

  const int scratch = b.AddrOf("scratch");
  b.Store(scratch, v, 16);
  const int cond = b.BinImm(ir::BinOp::kAnd, v, 1);
  b.CondBr(cond, arm_t, arm_f);

  b.SetBlock(arm_t);
  {
    const int s = b.AddrOf("scratch");
    const int x = b.Load(s, 16);
    const int y = b.BinImm(ir::BinOp::kAdd, x,
                           rng_.NextInRange(1, 127));
    b.Store(s, y, 16);
    b.Br(join);
  }
  b.SetBlock(arm_f);
  {
    const int s = b.AddrOf("scratch");
    const int x = b.Load(s, 16);
    const int y = b.BinImm(ir::BinOp::kXor, x,
                           rng_.NextInRange(1, 127));
    b.Store(s, y, 16);
    b.Br(join);
  }
  b.SetBlock(join);
  const int s = b.AddrOf("scratch");
  return b.Load(s, 16);
}

int Generator::EmitCall(ir::FunctionBuilder& b, int v) {
  const unsigned j = static_cast<unsigned>(rng_.NextBelow(spec_.helper_fns));
  const int r = b.Call(StrFormat("helper_%u", j), {v});
  return b.Bin(ir::BinOp::kXor, v, r);
}

int Generator::EmitICall(ir::FunctionBuilder& b, int v) {
  const unsigned t = static_cast<unsigned>(rng_.NextBelow(spec_.fn_types));
  const int type_id = module_.InternFnType(CbTypeName(t));
  // idx = (v >> 3) & (slots-1); slot = &cb_t[idx]
  const int shifted = b.BinImm(ir::BinOp::kShr, v, 3);
  const int idx = b.BinImm(ir::BinOp::kAnd, shifted, kCallbackSlots - 1);
  const int byte_off = b.BinImm(ir::BinOp::kShl, idx, 3);
  const int base = b.AddrOf(StrFormat("cb_%u", t));
  const int slot = b.Bin(ir::BinOp::kAdd, base, byte_off);
  const int fn = b.Load(slot, 0, 8, ir::Trait::kFnPtrLoad, type_id);
  const int r = b.ICall(fn, {v}, type_id);
  return b.Bin(ir::BinOp::kAdd, v, r);
}

int Generator::EmitVCall(ir::FunctionBuilder& b, int v) {
  const unsigned h = static_cast<unsigned>(rng_.NextBelow(spec_.hierarchies));
  const int hier_id = module_.InternClass(StrFormat("Hier%u", h));
  const unsigned slot =
      static_cast<unsigned>(rng_.NextBelow(spec_.vtable_slots));
  const int vcall_type = module_.InternFnType(VcallTypeName());

  // obj = &pool_h[(v >> 4) & (N-1)]  (objects are 16 bytes)
  const int shifted = b.BinImm(ir::BinOp::kShr, v, 4);
  const int idx =
      b.BinImm(ir::BinOp::kAnd, shifted, kObjectsPerHierarchy - 1);
  const int byte_off = b.BinImm(ir::BinOp::kShl, idx, 4);
  const int base = b.AddrOf(StrFormat("pool_%u", h));
  const int obj = b.Bin(ir::BinOp::kAdd, base, byte_off);

  // The C++ dispatch sequence: vptr load, vtable-entry load, indirect call.
  const int vptr = b.Load(obj, 0, 8, ir::Trait::kVPtrLoad, hier_id);
  const int fn = b.Load(vptr, static_cast<std::int64_t>(8 * slot), 8,
                        ir::Trait::kVTableEntryLoad, hier_id);
  const int r = b.ICall(fn, {obj, v}, vcall_type, /*has_result=*/true,
                        /*is_vcall=*/true);
  return b.Bin(ir::BinOp::kXor, v, r);
}

std::vector<std::string> Generator::EmitPhases() {
  std::vector<unsigned> weights = {spec_.arith_weight, spec_.mem_weight,
                                   spec_.branch_weight, spec_.call_weight,
                                   spec_.icall_weight, spec_.vcall_weight};
  const unsigned phases =
      (spec_.ops_per_step + kOpsPerPhase - 1) / kOpsPerPhase;
  std::vector<std::string> names;
  unsigned ops_left = spec_.ops_per_step;
  for (unsigned p = 0; p < phases; ++p) {
    const std::string name = StrFormat("phase_%u", p);
    names.push_back(name);
    ir::FunctionBuilder b(&module_, name, "i64(i64)", 1);
    int v = b.Param(0);
    const unsigned ops = ops_left < kOpsPerPhase ? ops_left : kOpsPerPhase;
    ops_left -= ops;
    for (unsigned i = 0; i < ops; ++i) {
      switch (static_cast<OpKind>(rng_.NextWeighted(weights))) {
        case OpKind::kArith:
          v = EmitArith(b, v);
          break;
        case OpKind::kMem:
          v = EmitMem(b, v);
          break;
        case OpKind::kBranch:
          v = EmitBranch(b, v);
          break;
        case OpKind::kCall:
          v = EmitCall(b, v);
          break;
        case OpKind::kICall:
          v = spec_.icall_weight > 0 ? EmitICall(b, v) : EmitArith(b, v);
          break;
        case OpKind::kVCall:
          v = spec_.vcall_weight > 0 ? EmitVCall(b, v) : EmitArith(b, v);
          break;
      }
    }
    b.Ret(v);
  }
  return names;
}

std::vector<std::string> Generator::EmitColdFns() {
  // Cold bodies bias toward the dispatch ops so they carry most of the
  // program's *static* vcall/icall sites, as in real C++ code bases.
  std::vector<unsigned> weights = {2, 2, 2, 2,
                                   spec_.icall_weight > 0 ? 5u : 0u,
                                   spec_.vcall_weight > 0 ? 5u : 0u};
  std::vector<std::string> names;
  for (unsigned f = 0; f < spec_.cold_fns; ++f) {
    const std::string name = StrFormat("cold_%u", f);
    names.push_back(name);
    ir::FunctionBuilder b(&module_, name, "i64(i64)", 1);
    int v = b.Param(0);
    for (unsigned i = 0; i < spec_.cold_ops_per_fn; ++i) {
      switch (static_cast<OpKind>(rng_.NextWeighted(weights))) {
        case OpKind::kArith:
          v = EmitArith(b, v);
          break;
        case OpKind::kMem:
          v = EmitMem(b, v);
          break;
        case OpKind::kBranch:
          v = EmitBranch(b, v);
          break;
        case OpKind::kCall:
          v = EmitCall(b, v);
          break;
        case OpKind::kICall:
          v = spec_.icall_weight > 0 ? EmitICall(b, v) : EmitArith(b, v);
          break;
        case OpKind::kVCall:
          v = spec_.vcall_weight > 0 ? EmitVCall(b, v) : EmitArith(b, v);
          break;
      }
    }
    b.Ret(v);
  }
  return names;
}

void Generator::EmitStep(const std::vector<std::string>& phases) {
  ir::FunctionBuilder b(&module_, "kernel_step", "i64(i64,i64)", 2);
  int v = b.Bin(ir::BinOp::kAdd, b.Param(0), b.Param(1));
  for (const std::string& phase : phases) {
    v = b.Call(phase, {v});
  }
  b.Ret(v);
}

void Generator::EmitMain(const std::vector<std::string>& cold_fns) {
  ir::FunctionBuilder b(&module_, "main", "i64()", 0);
  // Startup: run each cold function once.
  {
    const int s = b.AddrOf("scratch");
    int warm = b.Const(static_cast<std::int64_t>(spec_.seed * 7 + 5));
    for (const std::string& cold : cold_fns) {
      warm = b.Call(cold, {warm});
    }
    b.Store(s, warm, 24);
  }
  // scratch[0] = i = 0 ; scratch[8] = acc = seed
  {
    const int s = b.AddrOf("scratch");
    b.Store(s, b.Const(0), 0);
    b.Store(s, b.Const(static_cast<std::int64_t>(spec_.seed | 1)), 8);
    b.Br("loop_head");
  }
  b.SetBlock("loop_head");
  {
    const int s = b.AddrOf("scratch");
    const int i = b.Load(s, 0);
    const int cond = b.BinImm(ir::BinOp::kSltu, i,
                              static_cast<std::int64_t>(spec_.iterations));
    b.CondBr(cond, "loop_body", "done");
  }
  b.SetBlock("loop_body");
  {
    const int s = b.AddrOf("scratch");
    const int i = b.Load(s, 0);
    const int acc = b.Load(s, 8);
    const int next = b.Call("kernel_step", {i, acc});
    b.Store(s, next, 8);
    b.Store(s, b.BinImm(ir::BinOp::kAdd, i, 1), 0);
    b.Br("loop_head");
  }
  b.SetBlock("done");
  {
    const int s = b.AddrOf("scratch");
    const int acc = b.Load(s, 8);
    const int warm = b.Load(s, 24);
    const int mix = b.Bin(ir::BinOp::kXor, acc, warm);
    b.Ret(b.BinImm(ir::BinOp::kAnd, mix, 63));
  }
}

void Generator::EmitRpcGlobals() {
  // Per-hart server state rows: hart h owns bytes [h*64, (h+1)*64) — the
  // request cursor and response accumulator never share a row across
  // harts, so the shared address space stays free of cross-hart races.
  ir::Global state;
  state.name = "rpc_state";
  state.read_only = false;
  state.zero_bytes = kRpcMaxHarts * kRpcStateStride;
  module_.globals.push_back(std::move(state));

  // The handler table: the function-pointer middleware every request is
  // routed through. Writable like the callback tables — this is exactly
  // the attack surface the ICall defense keys with ld.ro.
  ir::Global table;
  table.name = "rpc_table";
  table.read_only = false;
  for (unsigned s = 0; s < kRpcHandlerSlots; ++s) {
    table.quads.push_back(
        ir::GlobalInit{0, StrFormat("rpc_handler_%u", s % kRpcHandlers)});
  }
  module_.globals.push_back(std::move(table));
}

void Generator::EmitRpcHandlers() {
  // Handler bodies are vcall-heavy walks across the class hierarchies
  // (mixed keys once the VCall defense assigns per-hierarchy keys), with
  // icall callbacks and memory traffic mixed in. No branch ops: those
  // spill through the shared `scratch` global, which multiple harts must
  // not race on.
  std::vector<unsigned> weights = {spec_.arith_weight, spec_.mem_weight,
                                   0,                  spec_.call_weight,
                                   spec_.icall_weight, spec_.vcall_weight};
  for (unsigned handler = 0; handler < kRpcHandlers; ++handler) {
    ir::FunctionBuilder b(&module_, StrFormat("rpc_handler_%u", handler),
                          RpcHandlerTypeName(), 1);
    int v = b.BinImm(ir::BinOp::kXor, b.Param(0),
                     static_cast<std::int64_t>(handler * 29 + 3));
    for (unsigned i = 0; i < kRpcOpsPerHandler; ++i) {
      switch (static_cast<OpKind>(rng_.NextWeighted(weights))) {
        case OpKind::kArith:
          v = EmitArith(b, v);
          break;
        case OpKind::kMem:
          v = EmitMem(b, v);
          break;
        case OpKind::kBranch:  // weight 0; unreachable
          v = EmitArith(b, v);
          break;
        case OpKind::kCall:
          v = EmitCall(b, v);
          break;
        case OpKind::kICall:
          v = spec_.icall_weight > 0 ? EmitICall(b, v) : EmitArith(b, v);
          break;
        case OpKind::kVCall:
          v = spec_.vcall_weight > 0 ? EmitVCall(b, v) : EmitArith(b, v);
          break;
      }
    }
    b.Ret(v);
  }
}

void Generator::EmitRpcMain() {
  // main(hartid, nharts): serve requests hartid, hartid+nharts, ... until
  // spec_.iterations requests have been issued machine-wide. Virtual
  // registers live in stack slots, and every hart runs on its own stack,
  // so the cross-block values below are naturally per-hart.
  ir::FunctionBuilder b(&module_, "main", "i64(i64,i64)", 2);
  const int rpc_type = module_.InternFnType(RpcHandlerTypeName());
  // A single-hart loader passes a1 = 0: nharts = a1 + (a1 <u 1).
  const int one_if_zero = b.BinImm(ir::BinOp::kSltu, b.Param(1), 1);
  const int nharts = b.Bin(ir::BinOp::kAdd, b.Param(1), one_if_zero);
  // This hart's rpc_state row.
  const int row_off = b.BinImm(ir::BinOp::kShl, b.Param(0), 6);
  const int base = b.AddrOf("rpc_state");
  const int slot = b.Bin(ir::BinOp::kAdd, base, row_off);
  b.Store(slot, b.Param(0), 0);  // next request to serve
  b.Store(slot, b.Const(static_cast<std::int64_t>(spec_.seed | 1)), 8);
  b.Br("serve_head");

  b.SetBlock("serve_head");
  {
    const int r = b.Load(slot, 0);
    const int cond = b.BinImm(ir::BinOp::kSltu, r,
                              static_cast<std::int64_t>(spec_.iterations));
    b.CondBr(cond, "serve_body", "drain");
  }
  b.SetBlock("serve_body");
  {
    const int r = b.Load(slot, 0);
    const int acc = b.Load(slot, 8);
    // Route the request through the handler table (icall middleware).
    const int mixed = b.Bin(ir::BinOp::kAdd, r, acc);
    const int hashed = b.BinImm(ir::BinOp::kMul, mixed, 0x5E3779B1);
    const int shifted = b.BinImm(ir::BinOp::kShr, hashed, 5);
    const int idx =
        b.BinImm(ir::BinOp::kAnd, shifted, kRpcHandlerSlots - 1);
    const int byte_off = b.BinImm(ir::BinOp::kShl, idx, 3);
    const int tbase = b.AddrOf("rpc_table");
    const int entry = b.Bin(ir::BinOp::kAdd, tbase, byte_off);
    const int fn = b.Load(entry, 0, 8, ir::Trait::kFnPtrLoad, rpc_type);
    const int req = b.Bin(ir::BinOp::kAdd, acc, r);
    const int resp = b.ICall(fn, {req}, rpc_type);
    b.Store(slot, b.Bin(ir::BinOp::kXor, acc, resp), 8);
    b.Store(slot, b.Bin(ir::BinOp::kAdd, r, nharts), 0);
    b.Br("serve_head");
  }
  b.SetBlock("drain");
  {
    const int acc = b.Load(slot, 8);
    b.Ret(b.BinImm(ir::BinOp::kAnd, acc, 63));
  }
}

ir::Module Generator::Run() {
  module_.name = spec_.name;
  // Intern the shared types first so ids are stable across workloads.
  module_.InternFnType(VcallTypeName());
  EmitGlobals();
  EmitMethods();
  EmitCallbacks();
  EmitHelpers();
  if (spec_.kind == WorkloadKind::kRpcServer) {
    EmitRpcGlobals();
    EmitRpcHandlers();
    EmitRpcMain();
  } else {
    EmitStep(EmitPhases());
    EmitMain(EmitColdFns());
  }
  module_.RecomputeAddressTaken();
  ROLOAD_CHECK(ir::Verify(module_).ok());
  return std::move(module_);
}

WorkloadSpec CStyle(const std::string& name, unsigned icall_weight,
                    unsigned mem_weight, std::uint64_t data_kib,
                    std::uint64_t iterations, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = name;
  spec.is_cpp = false;
  spec.icall_weight = icall_weight;
  spec.mem_weight = mem_weight;
  spec.data_kib = data_kib;
  spec.iterations = iterations;
  spec.seed = seed;
  spec.fn_types = 6;
  spec.fns_per_type = 16;
  return spec;
}

WorkloadSpec CppStyle(const std::string& name, unsigned vcall_weight,
                      unsigned icall_weight, unsigned hierarchies,
                      unsigned classes, std::uint64_t data_kib,
                      std::uint64_t iterations, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = name;
  spec.is_cpp = true;
  spec.hierarchies = hierarchies;
  spec.classes_per_hierarchy = classes;
  spec.vcall_weight = vcall_weight;
  spec.icall_weight = icall_weight;
  spec.data_kib = data_kib;
  spec.iterations = iterations;
  spec.seed = seed;
  spec.fn_types = 6;
  spec.fns_per_type = 16;
  // C++ code bases carry many static dispatch sites relative to their hot
  // set (xalancbmk has thousands); the cold region models that.
  spec.cold_fns = 48;
  spec.cold_ops_per_fn = 14;
  return spec;
}

}  // namespace

ir::Module Generate(const WorkloadSpec& spec) {
  Generator generator(spec);
  return generator.Run();
}

std::vector<WorkloadSpec> SpecCint2006Suite(double scale) {
  // Densities chosen to mirror the published per-benchmark profile:
  // icall-heavy C programs (gcc/sjeng/hmmer analogues) show the largest
  // classic-CFI overheads; pointer-chasing memory-bound programs (mcf,
  // libquantum) are dominated by cache misses; the three C++ programs
  // carry the virtual-call load for Figure 3.
  auto it = [scale](std::uint64_t n) {
    const double scaled = static_cast<double>(n) * scale;
    return scaled < 64 ? std::uint64_t{64} : static_cast<std::uint64_t>(scaled);
  };
  std::vector<WorkloadSpec> suite;
  suite.push_back(CStyle("401.bzip2_like", 2, 10, 16384, it(2400), 401));
  suite.push_back(CStyle("403.gcc_like", 9, 6, 12288, it(2200), 403));
  suite.push_back(CStyle("429.mcf_like", 0, 14, 32768, it(2000), 429));
  suite.push_back(CStyle("445.gobmk_like", 4, 6, 8192, it(2400), 445));
  suite.push_back(CStyle("456.hmmer_like", 7, 8, 12288, it(2400), 456));
  suite.push_back(CStyle("458.sjeng_like", 9, 5, 8192, it(2600), 458));
  suite.push_back(CStyle("462.libquantum_like", 0, 12, 16384, it(2400), 462));
  suite.push_back(CStyle("464.h264ref_like", 4, 9, 12288, it(2400), 464));
  suite.push_back(
      CppStyle("471.omnetpp_like", 1, 3, 4, 5, 12288, it(2200), 471));
  suite.push_back(
      CppStyle("473.astar_like", 1, 1, 3, 4, 16384, it(2400), 473));
  suite.push_back(
      CppStyle("483.xalancbmk_like", 2, 3, 6, 6, 12288, it(2000), 483));
  return suite;
}

WorkloadSpec RpcServerWorkload(std::uint64_t requests, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "rpc_server";
  spec.kind = WorkloadKind::kRpcServer;
  spec.is_cpp = true;
  spec.hierarchies = 4;
  spec.classes_per_hierarchy = 4;
  spec.vtable_slots = 4;
  spec.fn_types = 4;
  spec.fns_per_type = 8;
  // Handler bodies are dispatch-heavy: mostly virtual calls across the
  // hierarchies with icall callbacks mixed in. Branches are excluded (the
  // branch emitter spills through a shared global).
  spec.arith_weight = 4;
  spec.mem_weight = 4;
  spec.branch_weight = 0;
  spec.call_weight = 2;
  spec.icall_weight = 3;
  spec.vcall_weight = 8;
  spec.iterations = requests;  // total requests, spread across harts
  spec.data_kib = 2048;
  spec.seed = seed;
  return spec;
}

std::vector<WorkloadSpec> SpecCppSubset(double scale) {
  std::vector<WorkloadSpec> cpp;
  for (WorkloadSpec& spec : SpecCint2006Suite(scale)) {
    if (spec.is_cpp) cpp.push_back(std::move(spec));
  }
  return cpp;
}

}  // namespace roload::workloads
