// SPEC CINT2006-like workload generators.
//
// The paper evaluates on SPEC CINT2006 (reference inputs, ~6 days per
// experiment on a 125 MHz FPGA). We cannot ship SPEC, so we generate
// synthetic benchmarks with the same *character*: the same count (11, with
// 400.perlbench excluded as in the paper), the same language split (3
// C++-style programs with class hierarchies and virtual calls; the rest
// C-style with varying indirect-call usage), and per-benchmark densities of
// virtual calls, indirect calls, memory traffic and arithmetic tuned to the
// published overhead profile. Runs are scaled to tens of millions of
// simulated instructions; all evaluation numbers are relative overheads,
// as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace roload::workloads {

// Which program family the generator emits.
enum class WorkloadKind : std::uint8_t {
  kSpecLike,    // SPEC CINT2006-like batch benchmark (the original family)
  // RPC dispatch server: a strided request loop where every request is
  // routed through a function-pointer handler table (icall middleware)
  // into vcall-heavy handlers that dispatch across several class
  // hierarchies — a mixed-key handler walk once the defenses assign
  // per-hierarchy/per-type keys. main has type i64(i64, i64) and receives
  // (hartid, nharts), so on an SMP machine hart h serves requests
  // h, h+nharts, h+2*nharts, ... with all per-hart mutable state indexed
  // by hartid (the single shared address space stays race-free). Loaded
  // on a single-hart machine both arguments are zero and the loop
  // degrades to serving every request on hart 0.
  kRpcServer,
};

struct WorkloadSpec {
  std::string name;
  WorkloadKind kind = WorkloadKind::kSpecLike;
  bool is_cpp = false;

  // Static structure.
  unsigned hierarchies = 0;           // C++ class hierarchies
  unsigned classes_per_hierarchy = 0; // concrete classes per hierarchy
  unsigned vtable_slots = 4;          // virtual methods per class
  unsigned fn_types = 4;              // distinct function-pointer types
  unsigned fns_per_type = 6;          // address-taken functions per type
  unsigned helper_fns = 8;            // direct-call helpers

  // Dynamic mix: relative weights of the op kinds inside the hot loop.
  unsigned arith_weight = 10;
  unsigned mem_weight = 6;
  unsigned branch_weight = 4;
  unsigned call_weight = 3;
  unsigned icall_weight = 0;
  unsigned vcall_weight = 0;

  unsigned ops_per_step = 32;   // ops in the hot-loop body
  std::uint64_t iterations = 20000;  // hot-loop trip count
  std::uint64_t data_kib = 4096;     // working-set size
  std::uint64_t seed = 1;

  // Cold code: functions executed once during startup. Real programs have
  // far more *static* call/dispatch sites than hot ones; these carry the
  // static code-size effects of instrumentation (VTint/CFI checks, CFI ID
  // words, GFPT entries) without changing the dynamic op mix.
  unsigned cold_fns = 12;
  unsigned cold_ops_per_fn = 12;
};

// Generates the IR module for one workload. Deterministic in spec.seed.
ir::Module Generate(const WorkloadSpec& spec);

// The 11-benchmark suite (SPEC CINT2006 minus 400.perlbench), with
// per-benchmark parameters. `scale` multiplies iteration counts (1.0 ~
// tens of millions of instructions per benchmark; benches use smaller
// scales for quick runs).
std::vector<WorkloadSpec> SpecCint2006Suite(double scale = 1.0);

// The three C++ benchmarks of the suite (omnetpp/astar/xalancbmk
// analogues) used by the Figure-3 experiment.
std::vector<WorkloadSpec> SpecCppSubset(double scale = 1.0);

// The RPC dispatch-server workload (kind == kRpcServer): `requests` total
// requests spread across however many harts the machine runs.
WorkloadSpec RpcServerWorkload(std::uint64_t requests = 600,
                               std::uint64_t seed = 777);

}  // namespace roload::workloads
