// Link image: the executable format shared by the assembler (producer) and
// the kernel loader (consumer). A deliberately small stand-in for ELF: a
// list of page-aligned sections with permissions, page keys, contents and a
// symbol table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace roload::asmtool {

struct SectionPerms {
  bool read = true;
  bool write = false;
  bool exec = false;

  bool operator==(const SectionPerms&) const = default;
};

struct Section {
  std::string name;
  std::uint64_t vaddr = 0;
  std::uint64_t size = 0;            // total size incl. zero-filled tail
  std::vector<std::uint8_t> bytes;   // initialized prefix (<= size)
  SectionPerms perms;
  std::uint32_t key = 0;             // ROLoad page key (0 = untagged)
};

// A linked, loadable program image.
struct LinkImage {
  std::vector<Section> sections;
  std::map<std::string, std::uint64_t> symbols;
  std::uint64_t entry = 0;

  const Section* FindSection(const std::string& name) const;
  // Sum of section sizes rounded up to whole pages (static memory image).
  std::uint64_t MappedBytes() const;
  // Total size of sections whose name marks them executable (.text*).
  std::uint64_t CodeBytes() const;
};

// Section name → attributes policy used by the assembler and by tests:
//   .text*          R-X
//   .rodata         R--  key 0
//   .rodata.key.<K> R--  key K   (the ROLoad allowlist sections)
//   .data* / .bss*  RW-  key 0
struct SectionAttrs {
  SectionPerms perms;
  std::uint32_t key = 0;
};
SectionAttrs AttrsForSectionName(const std::string& name);

}  // namespace roload::asmtool
