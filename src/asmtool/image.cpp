#include "asmtool/image.h"

#include "mem/phys_memory.h"
#include "support/bits.h"
#include "support/strings.h"

namespace roload::asmtool {

const Section* LinkImage::FindSection(const std::string& name) const {
  for (const Section& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

std::uint64_t LinkImage::MappedBytes() const {
  std::uint64_t total = 0;
  for (const Section& section : sections) {
    total += AlignUp(section.size, mem::kPageSize);
  }
  return total;
}

std::uint64_t LinkImage::CodeBytes() const {
  std::uint64_t total = 0;
  for (const Section& section : sections) {
    if (section.perms.exec) total += section.size;
  }
  return total;
}

SectionAttrs AttrsForSectionName(const std::string& name) {
  SectionAttrs attrs;
  if (StartsWith(name, ".text")) {
    attrs.perms = SectionPerms{.read = true, .write = false, .exec = true};
    return attrs;
  }
  if (StartsWith(name, ".rodata.key.")) {
    attrs.perms = SectionPerms{.read = true, .write = false, .exec = false};
    auto key = ParseInt(std::string_view(name).substr(12));
    attrs.key = key && *key >= 0 ? static_cast<std::uint32_t>(*key) : 0;
    return attrs;
  }
  if (StartsWith(name, ".rodata")) {
    attrs.perms = SectionPerms{.read = true, .write = false, .exec = false};
    return attrs;
  }
  // .data, .bss and anything unknown default to read-write data.
  attrs.perms = SectionPerms{.read = true, .write = true, .exec = false};
  return attrs;
}

}  // namespace roload::asmtool
