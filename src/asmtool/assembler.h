// Two-pass assembler for the RV64 subset, including the ROLoad-family
// mnemonics and the `.rodata.key.<K>` keyed allowlist sections. It plays
// the role of the assembler + static linker of the paper's toolchain: the
// output is a directly loadable LinkImage.
//
// Supported syntax (one statement per line, '#' comments):
//   label:
//   .section .text|.rodata|.rodata.key.<K>|.data|.bss
//   .align <n>            (power-of-two byte alignment)
//   .globl <sym>          (accepted, no-op: all symbols are global)
//   .quad/.word/.half/.byte <expr>[, ...]   expr = int literal or symbol
//   .zero <n>
//   .asciz "text"
//   addi a0, a1, -4    /  ld a0, 8(sp)  /  sd a0, 8(sp)
//   ld.ro a0, (a1), 111   /  c.ld.ro a0, (a1), 7
//   beq a0, a1, label  /  jal ra, label
//   pseudo: li, la, mv, not, neg, j, jr, call, ret, tail, nop,
//           beqz, bnez, blez, bgez, bltz, bgtz, seqz, snez
//
// Layout: sections are placed in source order starting at kDefaultBase,
// each page-aligned (the -z separate-code behaviour the paper requires is
// implicit: code and read-only data never share a page).
#pragma once

#include <string_view>

#include "asmtool/image.h"
#include "support/status.h"

namespace roload::asmtool {

inline constexpr std::uint64_t kDefaultBase = 0x10000;

struct AssemblerOptions {
  std::uint64_t base_vaddr = kDefaultBase;
  // Entry symbol; falls back to image start when absent.
  std::string entry_symbol = "_start";
};

// Assembles `source` into a loadable image. Errors carry line numbers.
StatusOr<LinkImage> Assemble(std::string_view source,
                             const AssemblerOptions& options = {});

}  // namespace roload::asmtool
