#include "asmtool/image_io.h"

#include <cstring>
#include <fstream>

namespace roload::asmtool {
namespace {

constexpr char kMagic[4] = {'R', 'I', 'M', 'G'};

void PutU32(std::string* out, std::uint32_t value) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>(value >> (8 * b)));
  }
}

void PutU64(std::string* out, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>(value >> (8 * b)));
  }
}

void PutString(std::string* out, const std::string& text) {
  PutU32(out, static_cast<std::uint32_t>(text.size()));
  out->append(text);
}

// Cursor-based reader with bounds checking.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool TakeU32(std::uint32_t* value) {
    if (cursor_ + 4 > bytes_.size()) return false;
    *value = 0;
    for (int b = 0; b < 4; ++b) {
      *value |= static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(bytes_[cursor_ + b]))
                << (8 * b);
    }
    cursor_ += 4;
    return true;
  }

  bool TakeU64(std::uint64_t* value) {
    if (cursor_ + 8 > bytes_.size()) return false;
    *value = 0;
    for (int b = 0; b < 8; ++b) {
      *value |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(bytes_[cursor_ + b]))
                << (8 * b);
    }
    cursor_ += 8;
    return true;
  }

  bool TakeBytes(std::size_t count, std::string* out) {
    if (cursor_ + count > bytes_.size()) return false;
    out->assign(bytes_.substr(cursor_, count));
    cursor_ += count;
    return true;
  }

  bool TakeString(std::string* out) {
    std::uint32_t length = 0;
    if (!TakeU32(&length)) return false;
    // Sanity bound: no field in a sane image exceeds 16 MiB.
    if (length > (16u << 20)) return false;
    return TakeBytes(length, out);
  }

 private:
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::string SerializeImage(const LinkImage& image) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kImageFormatVersion);
  PutU64(&out, image.entry);
  PutU32(&out, static_cast<std::uint32_t>(image.sections.size()));
  for (const Section& section : image.sections) {
    PutString(&out, section.name);
    PutU64(&out, section.vaddr);
    PutU64(&out, section.size);
    const std::uint8_t perms =
        static_cast<std::uint8_t>((section.perms.read ? 1 : 0) |
                                  (section.perms.write ? 2 : 0) |
                                  (section.perms.exec ? 4 : 0));
    out.push_back(static_cast<char>(perms));
    PutU32(&out, section.key);
    PutU64(&out, section.bytes.size());
    out.append(reinterpret_cast<const char*>(section.bytes.data()),
               section.bytes.size());
  }
  PutU32(&out, static_cast<std::uint32_t>(image.symbols.size()));
  for (const auto& [name, value] : image.symbols) {
    PutString(&out, name);
    PutU64(&out, value);
  }
  return out;
}

StatusOr<LinkImage> DeserializeImage(std::string_view bytes) {
  auto malformed = [](const char* what) {
    return Status::InvalidArgument(std::string("malformed image: ") + what);
  };
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return malformed("bad magic");
  }
  Reader reader(bytes.substr(4));
  std::uint32_t version = 0;
  if (!reader.TakeU32(&version) || version != kImageFormatVersion) {
    return malformed("unsupported version");
  }
  LinkImage image;
  if (!reader.TakeU64(&image.entry)) return malformed("entry");
  std::uint32_t section_count = 0;
  if (!reader.TakeU32(&section_count) || section_count > 4096) {
    return malformed("section count");
  }
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section section;
    if (!reader.TakeString(&section.name)) return malformed("section name");
    if (!reader.TakeU64(&section.vaddr)) return malformed("vaddr");
    if (!reader.TakeU64(&section.size)) return malformed("size");
    std::string perms_byte;
    if (!reader.TakeBytes(1, &perms_byte)) return malformed("perms");
    const auto perms = static_cast<std::uint8_t>(perms_byte[0]);
    section.perms.read = perms & 1;
    section.perms.write = perms & 2;
    section.perms.exec = perms & 4;
    if (!reader.TakeU32(&section.key)) return malformed("key");
    std::uint64_t init_len = 0;
    if (!reader.TakeU64(&init_len) || init_len > section.size) {
      return malformed("init length");
    }
    std::string init;
    if (!reader.TakeBytes(init_len, &init)) return malformed("init bytes");
    section.bytes.assign(init.begin(), init.end());
    image.sections.push_back(std::move(section));
  }
  std::uint32_t symbol_count = 0;
  if (!reader.TakeU32(&symbol_count) || symbol_count > (1u << 20)) {
    return malformed("symbol count");
  }
  for (std::uint32_t i = 0; i < symbol_count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!reader.TakeString(&name) || !reader.TakeU64(&value)) {
      return malformed("symbol");
    }
    image.symbols[name] = value;
  }
  return image;
}

Status SaveImage(const LinkImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  const std::string bytes = SerializeImage(image);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<LinkImage> LoadImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DeserializeImage(bytes);
}

}  // namespace roload::asmtool
