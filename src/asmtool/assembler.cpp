#include "asmtool/assembler.h"

#include <map>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/registers.h"
#include "mem/phys_memory.h"
#include "support/bits.h"
#include "support/strings.h"

namespace roload::asmtool {
namespace {

using isa::Instruction;
using isa::Opcode;

// Relocation attached to one machine instruction.
enum class RelocKind : std::uint8_t {
  kNone,
  kBranch,  // B-format pc-relative to symbol
  kJal,     // J-format pc-relative to symbol
  kAbsHi,   // %hi(symbol): bits [31:12] of absolute address (w/ rounding)
  kAbsLo,   // %lo(symbol): signed low 12 bits
};

struct MachineInst {
  Instruction inst;
  RelocKind reloc = RelocKind::kNone;
  std::string symbol;
  int line = 0;
};

struct DataChunk {
  unsigned width = 8;          // bytes per element
  std::vector<std::int64_t> literals;  // used when symbols[i] empty
  std::vector<std::string> symbols;    // per-element symbol or ""
};

struct Item {
  enum class Kind { kInst, kData, kZero, kAlign, kAsciz } kind;
  MachineInst mi;       // kInst
  DataChunk data;       // kData
  std::uint64_t count = 0;  // kZero: bytes; kAlign: alignment
  std::string text;     // kAsciz payload (NUL appended on emit)
  std::uint64_t offset = 0;  // assigned in pass 1
  int line = 0;
};

struct PendingSection {
  std::string name;
  SectionAttrs attrs;
  std::vector<Item> items;
  std::uint64_t size = 0;
  std::uint64_t vaddr = 0;
};

class Assembler {
 public:
  explicit Assembler(const AssemblerOptions& options) : options_(options) {}

  Status Run(std::string_view source, LinkImage* image);

 private:
  Status Error(int line, const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("line %d: %s", line, message.c_str()));
  }

  PendingSection& CurrentSection() {
    if (sections_.empty()) {
      sections_.push_back(
          {".text", AttrsForSectionName(".text"), {}, 0, 0});
      section_index_[".text"] = 0;
    }
    return sections_[current_section_];
  }

  Status SwitchSection(const std::string& name);
  Status ParseLine(std::string_view line, int line_no);
  Status ParseDirective(std::string_view head, std::string_view rest,
                        int line_no);
  Status ParseInstruction(std::string_view head, std::string_view rest,
                          int line_no);
  Status EmitInst(const MachineInst& mi) {
    Item item;
    item.kind = Item::Kind::kInst;
    item.mi = mi;
    item.line = mi.line;
    CurrentSection().items.push_back(std::move(item));
    return Status::Ok();
  }

  // Operand helpers -------------------------------------------------------
  StatusOr<unsigned> ParseReg(std::string_view text, int line_no) const;
  StatusOr<std::int64_t> ParseImm(std::string_view text, int line_no) const;

  Status Layout();
  Status Resolve(LinkImage* image);

  AssemblerOptions options_;
  std::vector<PendingSection> sections_;
  std::map<std::string, std::size_t> section_index_;
  std::size_t current_section_ = 0;
  // symbol -> (section index, item index at definition point, offset known
  // after layout). We record (section, size-at-definition) during parsing.
  struct SymbolDef {
    std::size_t section;
    std::size_t item_index;  // index of next item at definition time
  };
  std::map<std::string, SymbolDef> symbol_defs_;
  std::map<std::string, std::uint64_t> symbol_addrs_;
};

Status Assembler::SwitchSection(const std::string& name) {
  auto it = section_index_.find(name);
  if (it == section_index_.end()) {
    section_index_[name] = sections_.size();
    sections_.push_back({name, AttrsForSectionName(name), {}, 0, 0});
    current_section_ = sections_.size() - 1;
  } else {
    current_section_ = it->second;
  }
  return Status::Ok();
}

StatusOr<unsigned> Assembler::ParseReg(std::string_view text,
                                       int line_no) const {
  auto reg = isa::ParseRegName(StripWhitespace(text));
  if (!reg) {
    return Error(line_no,
                 StrFormat("bad register '%.*s'",
                           static_cast<int>(text.size()), text.data()));
  }
  return *reg;
}

StatusOr<std::int64_t> Assembler::ParseImm(std::string_view text,
                                           int line_no) const {
  auto value = ParseInt(StripWhitespace(text));
  if (!value) {
    return Error(line_no,
                 StrFormat("bad immediate '%.*s'",
                           static_cast<int>(text.size()), text.data()));
  }
  return *value;
}

Status Assembler::ParseDirective(std::string_view head,
                                 std::string_view rest, int line_no) {
  if (head == ".section") {
    return SwitchSection(std::string(StripWhitespace(rest)));
  }
  if (head == ".text" || head == ".data" || head == ".bss" ||
      head == ".rodata") {
    return SwitchSection(std::string(head));
  }
  if (head == ".globl" || head == ".global" || head == ".type" ||
      head == ".size" || head == ".option" || head == ".attribute") {
    return Status::Ok();  // accepted for compatibility; all symbols global
  }
  if (head == ".align" || head == ".balign" || head == ".p2align") {
    auto value = ParseImm(rest, line_no);
    if (!value.ok()) return value.status();
    std::uint64_t align = static_cast<std::uint64_t>(*value);
    if (head != ".balign") align = std::uint64_t{1} << align;
    if (!IsPowerOfTwo(align) || align > mem::kPageSize) {
      return Error(line_no, "bad alignment");
    }
    Item item;
    item.kind = Item::Kind::kAlign;
    item.count = align;
    item.line = line_no;
    CurrentSection().items.push_back(std::move(item));
    return Status::Ok();
  }
  if (head == ".zero" || head == ".skip" || head == ".space") {
    auto value = ParseImm(rest, line_no);
    if (!value.ok()) return value.status();
    if (*value < 0) return Error(line_no, "negative .zero size");
    Item item;
    item.kind = Item::Kind::kZero;
    item.count = static_cast<std::uint64_t>(*value);
    item.line = line_no;
    CurrentSection().items.push_back(std::move(item));
    return Status::Ok();
  }
  if (head == ".asciz" || head == ".string") {
    std::string_view text = StripWhitespace(rest);
    if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
      return Error(line_no, ".asciz expects a quoted string");
    }
    text = text.substr(1, text.size() - 2);
    // Process the common escape sequences.
    std::string unescaped;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '\\' || i + 1 == text.size()) {
        unescaped.push_back(text[i]);
        continue;
      }
      ++i;
      switch (text[i]) {
        case 'n':
          unescaped.push_back('\n');
          break;
        case 't':
          unescaped.push_back('\t');
          break;
        case 'r':
          unescaped.push_back('\r');
          break;
        case '0':
          unescaped.push_back('\0');
          break;
        case '\\':
          unescaped.push_back('\\');
          break;
        case '"':
          unescaped.push_back('"');
          break;
        default:
          return Error(line_no, "unsupported escape in string literal");
      }
    }
    Item item;
    item.kind = Item::Kind::kAsciz;
    item.text = std::move(unescaped);
    item.line = line_no;
    CurrentSection().items.push_back(std::move(item));
    return Status::Ok();
  }
  unsigned width = 0;
  if (head == ".quad" || head == ".dword") width = 8;
  if (head == ".word") width = 4;
  if (head == ".half") width = 2;
  if (head == ".byte") width = 1;
  if (width != 0) {
    Item item;
    item.kind = Item::Kind::kData;
    item.data.width = width;
    item.line = line_no;
    for (std::string_view field : SplitString(rest, ',')) {
      field = StripWhitespace(field);
      if (auto value = ParseInt(field)) {
        item.data.literals.push_back(*value);
        item.data.symbols.emplace_back();
      } else {
        if (width != 8) {
          return Error(line_no, "symbol data requires .quad");
        }
        item.data.literals.push_back(0);
        item.data.symbols.emplace_back(field);
      }
    }
    if (item.data.literals.empty()) {
      return Error(line_no, "empty data directive");
    }
    CurrentSection().items.push_back(std::move(item));
    return Status::Ok();
  }
  return Error(line_no, StrFormat("unknown directive '%.*s'",
                                  static_cast<int>(head.size()),
                                  head.data()));
}

Status Assembler::ParseInstruction(std::string_view head,
                                   std::string_view rest, int line_no) {
  const std::string mnemonic(head);
  std::vector<std::string_view> ops;
  for (std::string_view field : SplitString(rest, ',')) {
    ops.push_back(StripWhitespace(field));
  }

  MachineInst mi;
  mi.line = line_no;

  auto reg = [&](std::size_t index) { return ParseReg(ops[index], line_no); };
  auto imm = [&](std::size_t index) { return ParseImm(ops[index], line_no); };
  auto need = [&](std::size_t n) -> Status {
    if (ops.size() != n) {
      return Error(line_no, StrFormat("'%s' expects %zu operands",
                                      mnemonic.c_str(), n));
    }
    return Status::Ok();
  };
  // Parses "off(reg)" or "(reg)" or "symbol-less off" memory operands.
  auto parse_mem = [&](std::string_view text, std::int64_t* offset,
                       unsigned* base) -> Status {
    const std::size_t lparen = text.find('(');
    if (lparen == std::string_view::npos || text.back() != ')') {
      return Error(line_no, "expected mem operand 'off(reg)'");
    }
    std::string_view off_text = StripWhitespace(text.substr(0, lparen));
    std::string_view reg_text =
        text.substr(lparen + 1, text.size() - lparen - 2);
    *offset = 0;
    if (!off_text.empty()) {
      auto value = ParseInt(off_text);
      if (!value) return Error(line_no, "bad mem offset");
      *offset = *value;
    }
    auto base_reg = ParseReg(reg_text, line_no);
    if (!base_reg.ok()) return base_reg.status();
    *base = *base_reg;
    return Status::Ok();
  };

  // ---- ROLoad family: "ld.ro rd, (rs1), key" ---------------------------
  if (mnemonic == "lb.ro" || mnemonic == "lh.ro" || mnemonic == "lw.ro" ||
      mnemonic == "ld.ro" || mnemonic == "c.ld.ro") {
    ROLOAD_RETURN_IF_ERROR(need(3));
    auto rd = reg(0);
    if (!rd.ok()) return rd.status();
    std::int64_t offset = 0;
    unsigned base = 0;
    ROLOAD_RETURN_IF_ERROR(parse_mem(ops[1], &offset, &base));
    if (offset != 0) {
      return Error(line_no, "ROLoad instructions carry no address offset");
    }
    auto key = imm(2);
    if (!key.ok()) return key.status();
    const std::uint32_t max_key = mnemonic == "c.ld.ro"
                                      ? isa::kNumCompressedKeys
                                      : isa::kNumPageKeys;
    if (*key < 0 || static_cast<std::uint64_t>(*key) >= max_key) {
      return Error(line_no, "ROLoad key out of range");
    }
    mi.inst.op = *isa::ParseOpcodeName(mnemonic);
    mi.inst.rd = static_cast<std::uint8_t>(*rd);
    mi.inst.rs1 = static_cast<std::uint8_t>(base);
    mi.inst.key = static_cast<std::uint32_t>(*key);
    mi.inst.length = mnemonic == "c.ld.ro" ? 2 : 4;
    if (mnemonic == "c.ld.ro" &&
        (mi.inst.rd < 8 || mi.inst.rd >= 16 || mi.inst.rs1 < 8 ||
         mi.inst.rs1 >= 16)) {
      return Error(line_no, "c.ld.ro requires registers s0-s1/a0-a5");
    }
    return EmitInst(mi);
  }

  // ---- Pseudo-instructions ----------------------------------------------
  if (mnemonic == "nop") {
    ROLOAD_RETURN_IF_ERROR(need(0));
    mi.inst = Instruction{.op = Opcode::kAddi};
    return EmitInst(mi);
  }
  if (mnemonic == "li") {
    ROLOAD_RETURN_IF_ERROR(need(2));
    auto rd = reg(0);
    if (!rd.ok()) return rd.status();
    auto value = imm(1);
    if (!value.ok()) return value.status();
    const std::int64_t v = *value;
    if (FitsSigned(v, 12)) {
      mi.inst = Instruction{.op = Opcode::kAddi,
                            .rd = static_cast<std::uint8_t>(*rd),
                            .imm = v};
      return EmitInst(mi);
    }
    if (!FitsSigned(v, 32)) {
      return Error(line_no, "li immediate exceeds 32 bits");
    }
    // lui loads bits [31:12]; addi adds the signed low 12, so round up the
    // high part when the low part is negative.
    std::int64_t hi = (v + 0x800) >> 12;
    std::int64_t lo = v - (hi << 12);
    mi.inst = Instruction{.op = Opcode::kLui,
                          .rd = static_cast<std::uint8_t>(*rd),
                          .imm = hi & 0xFFFFF};
    ROLOAD_RETURN_IF_ERROR(EmitInst(mi));
    MachineInst add;
    add.line = line_no;
    add.inst = Instruction{.op = Opcode::kAddiw,
                           .rd = static_cast<std::uint8_t>(*rd),
                           .rs1 = static_cast<std::uint8_t>(*rd),
                           .imm = lo};
    return EmitInst(add);
  }
  if (mnemonic == "la") {
    ROLOAD_RETURN_IF_ERROR(need(2));
    auto rd = reg(0);
    if (!rd.ok()) return rd.status();
    const std::string symbol(ops[1]);
    mi.inst = Instruction{.op = Opcode::kLui,
                          .rd = static_cast<std::uint8_t>(*rd)};
    mi.reloc = RelocKind::kAbsHi;
    mi.symbol = symbol;
    ROLOAD_RETURN_IF_ERROR(EmitInst(mi));
    MachineInst add;
    add.line = line_no;
    add.inst = Instruction{.op = Opcode::kAddi,
                           .rd = static_cast<std::uint8_t>(*rd),
                           .rs1 = static_cast<std::uint8_t>(*rd)};
    add.reloc = RelocKind::kAbsLo;
    add.symbol = symbol;
    return EmitInst(add);
  }
  if (mnemonic == "mv" || mnemonic == "not" || mnemonic == "neg" ||
      mnemonic == "seqz" || mnemonic == "snez" || mnemonic == "sext.w") {
    ROLOAD_RETURN_IF_ERROR(need(2));
    auto rd = reg(0);
    if (!rd.ok()) return rd.status();
    auto rs = reg(1);
    if (!rs.ok()) return rs.status();
    const auto rd8 = static_cast<std::uint8_t>(*rd);
    const auto rs8 = static_cast<std::uint8_t>(*rs);
    if (mnemonic == "mv") {
      mi.inst = Instruction{.op = Opcode::kAddi, .rd = rd8, .rs1 = rs8};
    } else if (mnemonic == "not") {
      mi.inst =
          Instruction{.op = Opcode::kXori, .rd = rd8, .rs1 = rs8, .imm = -1};
    } else if (mnemonic == "neg") {
      mi.inst = Instruction{.op = Opcode::kSub, .rd = rd8, .rs2 = rs8};
    } else if (mnemonic == "seqz") {
      mi.inst =
          Instruction{.op = Opcode::kSltiu, .rd = rd8, .rs1 = rs8, .imm = 1};
    } else if (mnemonic == "snez") {
      mi.inst = Instruction{.op = Opcode::kSltu, .rd = rd8, .rs2 = rs8};
    } else {  // sext.w
      mi.inst = Instruction{.op = Opcode::kAddiw, .rd = rd8, .rs1 = rs8};
    }
    return EmitInst(mi);
  }
  if (mnemonic == "j" || mnemonic == "call" || mnemonic == "tail") {
    ROLOAD_RETURN_IF_ERROR(need(1));
    mi.inst = Instruction{.op = Opcode::kJal};
    mi.inst.rd = mnemonic == "call" ? isa::kRa : isa::kZero;
    mi.reloc = RelocKind::kJal;
    mi.symbol = std::string(ops[0]);
    return EmitInst(mi);
  }
  if (mnemonic == "jr") {
    ROLOAD_RETURN_IF_ERROR(need(1));
    auto rs = reg(0);
    if (!rs.ok()) return rs.status();
    mi.inst = Instruction{.op = Opcode::kJalr,
                          .rs1 = static_cast<std::uint8_t>(*rs)};
    return EmitInst(mi);
  }
  if (mnemonic == "ret") {
    ROLOAD_RETURN_IF_ERROR(need(0));
    mi.inst = Instruction{.op = Opcode::kJalr, .rs1 = isa::kRa};
    return EmitInst(mi);
  }
  if (mnemonic == "beqz" || mnemonic == "bnez" || mnemonic == "bltz" ||
      mnemonic == "bgez" || mnemonic == "bgtz" || mnemonic == "blez") {
    ROLOAD_RETURN_IF_ERROR(need(2));
    auto rs = reg(0);
    if (!rs.ok()) return rs.status();
    const auto rs8 = static_cast<std::uint8_t>(*rs);
    mi.reloc = RelocKind::kBranch;
    mi.symbol = std::string(ops[1]);
    if (mnemonic == "beqz") {
      mi.inst = Instruction{.op = Opcode::kBeq, .rs1 = rs8};
    } else if (mnemonic == "bnez") {
      mi.inst = Instruction{.op = Opcode::kBne, .rs1 = rs8};
    } else if (mnemonic == "bltz") {
      mi.inst = Instruction{.op = Opcode::kBlt, .rs1 = rs8};
    } else if (mnemonic == "bgez") {
      mi.inst = Instruction{.op = Opcode::kBge, .rs1 = rs8};
    } else if (mnemonic == "bgtz") {
      mi.inst = Instruction{.op = Opcode::kBlt, .rs2 = rs8};
    } else {  // blez
      mi.inst = Instruction{.op = Opcode::kBge, .rs2 = rs8};
    }
    return EmitInst(mi);
  }

  // ---- Real mnemonics ----------------------------------------------------
  auto opcode = isa::ParseOpcodeName(mnemonic);
  if (!opcode) {
    return Error(line_no,
                 StrFormat("unknown mnemonic '%s'", mnemonic.c_str()));
  }
  mi.inst.op = *opcode;
  switch (isa::OpcodeFormat(*opcode)) {
    case isa::Format::kR: {
      ROLOAD_RETURN_IF_ERROR(need(3));
      auto rd = reg(0);
      auto rs1 = reg(1);
      auto rs2 = reg(2);
      if (!rd.ok()) return rd.status();
      if (!rs1.ok()) return rs1.status();
      if (!rs2.ok()) return rs2.status();
      mi.inst.rd = static_cast<std::uint8_t>(*rd);
      mi.inst.rs1 = static_cast<std::uint8_t>(*rs1);
      mi.inst.rs2 = static_cast<std::uint8_t>(*rs2);
      return EmitInst(mi);
    }
    case isa::Format::kI:
    case isa::Format::kIShift: {
      if (*opcode == Opcode::kJalr) {
        // Forms: "jalr rs" / "jalr rd, off(rs1)".
        if (ops.size() == 1) {
          auto rs = reg(0);
          if (!rs.ok()) return rs.status();
          mi.inst.rd = isa::kRa;
          mi.inst.rs1 = static_cast<std::uint8_t>(*rs);
          return EmitInst(mi);
        }
        ROLOAD_RETURN_IF_ERROR(need(2));
        auto rd = reg(0);
        if (!rd.ok()) return rd.status();
        std::int64_t offset = 0;
        unsigned base = 0;
        ROLOAD_RETURN_IF_ERROR(parse_mem(ops[1], &offset, &base));
        mi.inst.rd = static_cast<std::uint8_t>(*rd);
        mi.inst.rs1 = static_cast<std::uint8_t>(base);
        mi.inst.imm = offset;
        return EmitInst(mi);
      }
      ROLOAD_RETURN_IF_ERROR(need(3));
      auto rd = reg(0);
      auto rs1 = reg(1);
      if (!rd.ok()) return rd.status();
      if (!rs1.ok()) return rs1.status();
      mi.inst.rd = static_cast<std::uint8_t>(*rd);
      mi.inst.rs1 = static_cast<std::uint8_t>(*rs1);
      // %lo(sym) is allowed as an addi immediate (used by la-style code).
      std::string_view imm_text = ops[2];
      if (StartsWith(imm_text, "%lo(") && imm_text.back() == ')') {
        mi.reloc = RelocKind::kAbsLo;
        mi.symbol = std::string(imm_text.substr(4, imm_text.size() - 5));
        return EmitInst(mi);
      }
      auto value = imm(2);
      if (!value.ok()) return value.status();
      mi.inst.imm = *value;
      return EmitInst(mi);
    }
    case isa::Format::kILoad: {
      ROLOAD_RETURN_IF_ERROR(need(2));
      auto rd = reg(0);
      if (!rd.ok()) return rd.status();
      std::int64_t offset = 0;
      unsigned base = 0;
      ROLOAD_RETURN_IF_ERROR(parse_mem(ops[1], &offset, &base));
      mi.inst.rd = static_cast<std::uint8_t>(*rd);
      mi.inst.rs1 = static_cast<std::uint8_t>(base);
      mi.inst.imm = offset;
      return EmitInst(mi);
    }
    case isa::Format::kS: {
      ROLOAD_RETURN_IF_ERROR(need(2));
      auto rs2 = reg(0);
      if (!rs2.ok()) return rs2.status();
      std::int64_t offset = 0;
      unsigned base = 0;
      ROLOAD_RETURN_IF_ERROR(parse_mem(ops[1], &offset, &base));
      mi.inst.rs2 = static_cast<std::uint8_t>(*rs2);
      mi.inst.rs1 = static_cast<std::uint8_t>(base);
      mi.inst.imm = offset;
      return EmitInst(mi);
    }
    case isa::Format::kB: {
      ROLOAD_RETURN_IF_ERROR(need(3));
      auto rs1 = reg(0);
      auto rs2 = reg(1);
      if (!rs1.ok()) return rs1.status();
      if (!rs2.ok()) return rs2.status();
      mi.inst.rs1 = static_cast<std::uint8_t>(*rs1);
      mi.inst.rs2 = static_cast<std::uint8_t>(*rs2);
      mi.reloc = RelocKind::kBranch;
      mi.symbol = std::string(ops[2]);
      return EmitInst(mi);
    }
    case isa::Format::kU: {
      ROLOAD_RETURN_IF_ERROR(need(2));
      auto rd = reg(0);
      if (!rd.ok()) return rd.status();
      mi.inst.rd = static_cast<std::uint8_t>(*rd);
      std::string_view imm_text = ops[1];
      if (StartsWith(imm_text, "%hi(") && imm_text.back() == ')') {
        mi.reloc = RelocKind::kAbsHi;
        mi.symbol = std::string(imm_text.substr(4, imm_text.size() - 5));
        return EmitInst(mi);
      }
      auto value = imm(1);
      if (!value.ok()) return value.status();
      mi.inst.imm = *value;
      return EmitInst(mi);
    }
    case isa::Format::kJ: {
      ROLOAD_RETURN_IF_ERROR(need(2));
      auto rd = reg(0);
      if (!rd.ok()) return rd.status();
      mi.inst.rd = static_cast<std::uint8_t>(*rd);
      mi.reloc = RelocKind::kJal;
      mi.symbol = std::string(ops[1]);
      return EmitInst(mi);
    }
    case isa::Format::kSystem:
      ROLOAD_RETURN_IF_ERROR(need(0));
      return EmitInst(mi);
    case isa::Format::kRoLoad:
    case isa::Format::kCRoLoad:
      break;  // handled above
  }
  return Error(line_no, "unsupported instruction form");
}

Status Assembler::ParseLine(std::string_view line, int line_no) {
  // Strip comments.
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  line = StripWhitespace(line);
  if (line.empty()) return Status::Ok();

  // Labels (possibly several) prefixing a statement. Don't confuse a ':'
  // inside a quoted string with a label separator.
  while (true) {
    const std::size_t colon = line.find(':');
    const std::size_t quote = line.find('"');
    if (colon == std::string_view::npos ||
        (quote != std::string_view::npos && quote < colon)) {
      break;
    }
    std::string label(StripWhitespace(line.substr(0, colon)));
    if (label.empty()) return Error(line_no, "empty label");
    if (symbol_defs_.contains(label)) {
      return Error(line_no, StrFormat("duplicate label '%s'", label.c_str()));
    }
    CurrentSection();  // ensure a section exists
    symbol_defs_[label] =
        SymbolDef{current_section_, sections_[current_section_].items.size()};
    line = StripWhitespace(line.substr(colon + 1));
    if (line.empty()) return Status::Ok();
  }

  // Split the head token from the operands.
  std::size_t space = line.find_first_of(" \t");
  std::string_view head = space == std::string_view::npos
                              ? line
                              : line.substr(0, space);
  std::string_view rest =
      space == std::string_view::npos ? "" : line.substr(space + 1);

  if (head.front() == '.' && !isa::ParseOpcodeName(head)) {
    // ".section" etc.; note "ld.ro"-style mnemonics never start with '.'.
    return ParseDirective(head, rest, line_no);
  }
  return ParseInstruction(head, rest, line_no);
}

Status Assembler::Layout() {
  std::uint64_t cursor = options_.base_vaddr;
  for (PendingSection& section : sections_) {
    cursor = AlignUp(cursor, mem::kPageSize);
    section.vaddr = cursor;
    std::uint64_t offset = 0;
    for (Item& item : section.items) {
      switch (item.kind) {
        case Item::Kind::kAlign:
          offset = AlignUp(offset, item.count);
          break;
        case Item::Kind::kInst:
          offset = AlignUp(offset, 2);
          item.offset = offset;
          offset += item.mi.inst.length;
          break;
        case Item::Kind::kData:
          offset = AlignUp(offset, item.data.width);
          item.offset = offset;
          offset += static_cast<std::uint64_t>(item.data.width) *
                    item.data.literals.size();
          break;
        case Item::Kind::kZero:
          item.offset = offset;
          offset += item.count;
          break;
        case Item::Kind::kAsciz:
          item.offset = offset;
          offset += item.text.size() + 1;
          break;
      }
      if (item.kind == Item::Kind::kAlign) item.offset = offset;
    }
    section.size = offset;
    cursor += AlignUp(offset, mem::kPageSize);
  }

  // Resolve symbol addresses: a label points at the offset of the item it
  // precedes (or the section end when trailing).
  for (const auto& [name, def] : symbol_defs_) {
    const PendingSection& section = sections_[def.section];
    std::uint64_t offset = section.size;
    if (def.item_index < section.items.size()) {
      offset = section.items[def.item_index].offset;
    }
    symbol_addrs_[name] = section.vaddr + offset;
  }

  // Linker-style bounds over all read-only data sections (used by the
  // VTint defense's range checks), unless the program defined its own.
  std::uint64_t ro_start = ~std::uint64_t{0};
  std::uint64_t ro_end = 0;
  for (const PendingSection& section : sections_) {
    if (!StartsWith(section.name, ".rodata")) continue;
    ro_start = ro_start < section.vaddr ? ro_start : section.vaddr;
    const std::uint64_t end =
        section.vaddr + AlignUp(section.size, mem::kPageSize);
    ro_end = ro_end > end ? ro_end : end;
  }
  if (ro_start > ro_end) ro_start = ro_end = options_.base_vaddr;
  symbol_addrs_.try_emplace("__rodata_start", ro_start);
  symbol_addrs_.try_emplace("__rodata_end", ro_end);
  return Status::Ok();
}

Status Assembler::Resolve(LinkImage* image) {
  for (PendingSection& pending : sections_) {
    Section section;
    section.name = pending.name;
    section.vaddr = pending.vaddr;
    section.size = pending.size;
    section.perms = pending.attrs.perms;
    section.key = pending.attrs.key;
    section.bytes.assign(pending.size, 0);

    for (const Item& item : pending.items) {
      switch (item.kind) {
        case Item::Kind::kAlign:
          break;
        case Item::Kind::kZero:
          break;
        case Item::Kind::kAsciz: {
          for (std::size_t i = 0; i < item.text.size(); ++i) {
            section.bytes[item.offset + i] =
                static_cast<std::uint8_t>(item.text[i]);
          }
          break;
        }
        case Item::Kind::kData: {
          std::uint64_t offset = item.offset;
          for (std::size_t i = 0; i < item.data.literals.size(); ++i) {
            std::uint64_t value =
                static_cast<std::uint64_t>(item.data.literals[i]);
            if (!item.data.symbols[i].empty()) {
              auto it = symbol_addrs_.find(item.data.symbols[i]);
              if (it == symbol_addrs_.end()) {
                return Error(item.line,
                             StrFormat("undefined symbol '%s'",
                                       item.data.symbols[i].c_str()));
              }
              value = it->second;
            }
            for (unsigned b = 0; b < item.data.width; ++b) {
              section.bytes[offset + b] =
                  static_cast<std::uint8_t>(value >> (8 * b));
            }
            offset += item.data.width;
          }
          break;
        }
        case Item::Kind::kInst: {
          Instruction inst = item.mi.inst;
          const std::uint64_t inst_addr = pending.vaddr + item.offset;
          if (item.mi.reloc != RelocKind::kNone) {
            auto it = symbol_addrs_.find(item.mi.symbol);
            if (it == symbol_addrs_.end()) {
              return Error(item.line, StrFormat("undefined symbol '%s'",
                                                item.mi.symbol.c_str()));
            }
            const std::uint64_t target = it->second;
            switch (item.mi.reloc) {
              case RelocKind::kBranch: {
                const std::int64_t delta =
                    static_cast<std::int64_t>(target - inst_addr);
                if (!FitsSigned(delta, 13)) {
                  return Error(item.mi.line, "branch target out of range");
                }
                inst.imm = delta;
                break;
              }
              case RelocKind::kJal: {
                const std::int64_t delta =
                    static_cast<std::int64_t>(target - inst_addr);
                if (!FitsSigned(delta, 21)) {
                  return Error(item.mi.line, "jal target out of range");
                }
                inst.imm = delta;
                break;
              }
              case RelocKind::kAbsHi: {
                const std::int64_t value = static_cast<std::int64_t>(target);
                if (!FitsSigned(value, 32)) {
                  return Error(item.mi.line, "address exceeds 32 bits");
                }
                inst.imm = ((value + 0x800) >> 12) & 0xFFFFF;
                break;
              }
              case RelocKind::kAbsLo: {
                const std::int64_t value = static_cast<std::int64_t>(target);
                inst.imm = SignExtend(static_cast<std::uint64_t>(value), 12);
                break;
              }
              case RelocKind::kNone:
                break;
            }
          }
          // Validate immediates before encoding so malformed input yields
          // a diagnostic instead of tripping the encoder's invariants.
          switch (isa::OpcodeFormat(inst.op)) {
            case isa::Format::kI:
            case isa::Format::kILoad:
            case isa::Format::kS:
              if (!FitsSigned(inst.imm, 12)) {
                return Error(item.mi.line, "immediate out of 12-bit range");
              }
              break;
            case isa::Format::kIShift:
              if (inst.imm < 0 || inst.imm > 63) {
                return Error(item.mi.line, "shift amount out of range");
              }
              break;
            case isa::Format::kU:
              if (!FitsSigned(inst.imm, 20) &&
                  !FitsUnsigned(static_cast<std::uint64_t>(inst.imm), 20)) {
                return Error(item.mi.line, "upper immediate out of range");
              }
              break;
            default:
              break;
          }
          const std::uint32_t word = isa::Encode(inst);
          for (unsigned b = 0; b < inst.length; ++b) {
            section.bytes[item.offset + b] =
                static_cast<std::uint8_t>(word >> (8 * b));
          }
          break;
        }
      }
    }
    image->sections.push_back(std::move(section));
  }

  image->symbols = symbol_addrs_;
  auto entry = symbol_addrs_.find(options_.entry_symbol);
  image->entry = entry != symbol_addrs_.end()
                     ? entry->second
                     : (image->sections.empty() ? options_.base_vaddr
                                                : image->sections[0].vaddr);
  return Status::Ok();
}

Status Assembler::Run(std::string_view source, LinkImage* image) {
  int line_no = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      ++line_no;
      ROLOAD_RETURN_IF_ERROR(
          ParseLine(source.substr(start, i - start), line_no));
      start = i + 1;
    }
  }
  ROLOAD_RETURN_IF_ERROR(Layout());
  return Resolve(image);
}

}  // namespace

StatusOr<LinkImage> Assemble(std::string_view source,
                             const AssemblerOptions& options) {
  Assembler assembler(options);
  LinkImage image;
  Status status = assembler.Run(source, &image);
  if (!status.ok()) return status;
  return image;
}

}  // namespace roload::asmtool
