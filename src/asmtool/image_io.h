// Binary serialization of LinkImage: the ".rimg" executable container the
// CLI tools (rasm/rrun/rdis) exchange — a minimal ELF stand-in.
//
// Format (little-endian):
//   magic "RIMG" | u32 version | u64 entry
//   u32 #sections, then per section:
//     u32 name_len | name | u64 vaddr | u64 size | u8 perms(R|W<<1|X<<2)
//     u32 key | u64 init_len | init bytes
//   u32 #symbols, then per symbol: u32 name_len | name | u64 value
#pragma once

#include <string>

#include "asmtool/image.h"
#include "support/status.h"

namespace roload::asmtool {

inline constexpr std::uint32_t kImageFormatVersion = 1;

// In-memory encode/decode (used by the file functions and by tests).
std::string SerializeImage(const LinkImage& image);
StatusOr<LinkImage> DeserializeImage(std::string_view bytes);

// File I/O.
Status SaveImage(const LinkImage& image, const std::string& path);
StatusOr<LinkImage> LoadImage(const std::string& path);

}  // namespace roload::asmtool
