#include "isa/traps.h"

namespace roload::isa {

std::string_view TrapCauseName(TrapCause cause) {
  switch (cause) {
    case TrapCause::kInstructionAddressMisaligned:
      return "instruction address misaligned";
    case TrapCause::kInstructionAccessFault:
      return "instruction access fault";
    case TrapCause::kIllegalInstruction:
      return "illegal instruction";
    case TrapCause::kBreakpoint:
      return "breakpoint";
    case TrapCause::kLoadAddressMisaligned:
      return "load address misaligned";
    case TrapCause::kLoadAccessFault:
      return "load access fault";
    case TrapCause::kStoreAddressMisaligned:
      return "store address misaligned";
    case TrapCause::kStoreAccessFault:
      return "store access fault";
    case TrapCause::kEcallFromUser:
      return "environment call from U-mode";
    case TrapCause::kInstructionPageFault:
      return "instruction page fault";
    case TrapCause::kLoadPageFault:
      return "load page fault";
    case TrapCause::kStorePageFault:
      return "store page fault";
    case TrapCause::kRoLoadPageFault:
      return "ROLoad page fault";
  }
  return "unknown trap";
}

}  // namespace roload::isa
