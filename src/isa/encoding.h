// Binary instruction encoding and decoding for the RV64 subset plus the
// ROLoad extension.
//
// Encoding choices for the extension (the paper picks "optimal encodings"
// without publishing them; ours are documented here):
//  * ld.ro-family uses the custom-0 major opcode (0b0001011). funct3 selects
//    the access width (0=b, 1=h, 2=w, 3=d). The I-type immediate field
//    carries the 10-bit page key; there is no address offset, matching the
//    paper ("ld.ro-family instructions no longer have any address offset
//    encoded in their immediates").
//  * c.ld.ro occupies the reserved funct3=0b100 slot of compressed quadrant
//    0. It addresses the 8 popular registers (x8-x15) and carries a 5-bit
//    key split across bits [12:10] and [6:5], mirroring c.ld's layout.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/instruction.h"

namespace roload::isa {

// Major opcode assigned to the ROLoad family (RISC-V custom-0 space).
inline constexpr std::uint32_t kRoLoadMajorOpcode = 0b0001011;

// Encodes a (32-bit-format) instruction. c.ld.ro returns a 16-bit value in
// the low half. Invariants (register indices < 32, key ranges) are checked.
std::uint32_t Encode(const Instruction& inst);

// Decodes the instruction starting with `raw` (32 bits fetched; only the
// low 16 are inspected when the parcel is compressed). Returns nullopt on
// an illegal or unsupported encoding.
std::optional<Instruction> Decode(std::uint32_t raw);

// Length in bytes of the instruction parcel beginning with `low16`
// (2 for compressed, 4 otherwise), per the standard RISC-V length rule.
unsigned ParcelLength(std::uint16_t low16);

}  // namespace roload::isa
