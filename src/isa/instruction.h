// Decoded instruction representation shared by the decoder, the assembler
// and the CPU execution engine.
#pragma once

#include <cstdint>

#include "isa/opcodes.h"

namespace roload::isa {

// A fully decoded instruction. Fields that a given format does not use are
// left at zero. `key` is only meaningful for ROLoad-family instructions.
struct Instruction {
  Opcode op = Opcode::kAddi;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;      // sign-extended immediate (offset/shamt/target)
  std::uint32_t key = 0;     // ROLoad page key (10 bits; 5 for c.ld.ro)
  std::uint8_t length = 4;   // encoded length in bytes (4, or 2 for RVC)

  bool operator==(const Instruction&) const = default;
};

}  // namespace roload::isa
