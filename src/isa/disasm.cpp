#include "isa/disasm.h"

#include "isa/registers.h"
#include "support/strings.h"

namespace roload::isa {

std::string Disassemble(const Instruction& inst) {
  const std::string name(OpcodeName(inst.op));
  switch (OpcodeFormat(inst.op)) {
    case Format::kR:
      return StrFormat("%s %s, %s, %s", name.c_str(),
                       RegName(inst.rd).data(), RegName(inst.rs1).data(),
                       RegName(inst.rs2).data());
    case Format::kI:
      if (inst.op == Opcode::kJalr) {
        return StrFormat("jalr %s, %lld(%s)", RegName(inst.rd).data(),
                         static_cast<long long>(inst.imm),
                         RegName(inst.rs1).data());
      }
      [[fallthrough]];
    case Format::kIShift:
      return StrFormat("%s %s, %s, %lld", name.c_str(),
                       RegName(inst.rd).data(), RegName(inst.rs1).data(),
                       static_cast<long long>(inst.imm));
    case Format::kILoad:
      return StrFormat("%s %s, %lld(%s)", name.c_str(),
                       RegName(inst.rd).data(),
                       static_cast<long long>(inst.imm),
                       RegName(inst.rs1).data());
    case Format::kS:
      return StrFormat("%s %s, %lld(%s)", name.c_str(),
                       RegName(inst.rs2).data(),
                       static_cast<long long>(inst.imm),
                       RegName(inst.rs1).data());
    case Format::kB:
      return StrFormat("%s %s, %s, %lld", name.c_str(),
                       RegName(inst.rs1).data(), RegName(inst.rs2).data(),
                       static_cast<long long>(inst.imm));
    case Format::kU:
      return StrFormat("%s %s, 0x%llx", name.c_str(),
                       RegName(inst.rd).data(),
                       static_cast<unsigned long long>(inst.imm) & 0xFFFFF);
    case Format::kJ:
      return StrFormat("%s %s, %lld", name.c_str(), RegName(inst.rd).data(),
                       static_cast<long long>(inst.imm));
    case Format::kSystem:
      return name;
    case Format::kRoLoad:
    case Format::kCRoLoad:
      return StrFormat("%s %s, (%s), %u", name.c_str(),
                       RegName(inst.rd).data(), RegName(inst.rs1).data(),
                       inst.key);
  }
  return name;
}

}  // namespace roload::isa
