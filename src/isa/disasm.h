// Disassembler: renders decoded instructions back to assembler syntax.
#pragma once

#include <string>

#include "isa/instruction.h"

namespace roload::isa {

// Renders `inst` in the syntax accepted by the roload assembler, e.g.
// "addi a0, a1, -4", "ld a0, 8(sp)", "ld.ro a0, (a0), 111".
std::string Disassemble(const Instruction& inst);

}  // namespace roload::isa
