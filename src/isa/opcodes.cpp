#include "isa/opcodes.h"

#include <array>
#include <utility>

#include "support/status.h"

namespace roload::isa {
namespace {

struct OpcodeInfo {
  Opcode op;
  std::string_view name;
  Format format;
};

constexpr std::array kOpcodeTable = {
    OpcodeInfo{Opcode::kAddi, "addi", Format::kI},
    OpcodeInfo{Opcode::kSlti, "slti", Format::kI},
    OpcodeInfo{Opcode::kSltiu, "sltiu", Format::kI},
    OpcodeInfo{Opcode::kXori, "xori", Format::kI},
    OpcodeInfo{Opcode::kOri, "ori", Format::kI},
    OpcodeInfo{Opcode::kAndi, "andi", Format::kI},
    OpcodeInfo{Opcode::kSlli, "slli", Format::kIShift},
    OpcodeInfo{Opcode::kSrli, "srli", Format::kIShift},
    OpcodeInfo{Opcode::kSrai, "srai", Format::kIShift},
    OpcodeInfo{Opcode::kAddiw, "addiw", Format::kI},
    OpcodeInfo{Opcode::kSlliw, "slliw", Format::kIShift},
    OpcodeInfo{Opcode::kSrliw, "srliw", Format::kIShift},
    OpcodeInfo{Opcode::kSraiw, "sraiw", Format::kIShift},
    OpcodeInfo{Opcode::kAdd, "add", Format::kR},
    OpcodeInfo{Opcode::kSub, "sub", Format::kR},
    OpcodeInfo{Opcode::kSll, "sll", Format::kR},
    OpcodeInfo{Opcode::kSlt, "slt", Format::kR},
    OpcodeInfo{Opcode::kSltu, "sltu", Format::kR},
    OpcodeInfo{Opcode::kXor, "xor", Format::kR},
    OpcodeInfo{Opcode::kSrl, "srl", Format::kR},
    OpcodeInfo{Opcode::kSra, "sra", Format::kR},
    OpcodeInfo{Opcode::kOr, "or", Format::kR},
    OpcodeInfo{Opcode::kAnd, "and", Format::kR},
    OpcodeInfo{Opcode::kAddw, "addw", Format::kR},
    OpcodeInfo{Opcode::kSubw, "subw", Format::kR},
    OpcodeInfo{Opcode::kSllw, "sllw", Format::kR},
    OpcodeInfo{Opcode::kSrlw, "srlw", Format::kR},
    OpcodeInfo{Opcode::kSraw, "sraw", Format::kR},
    OpcodeInfo{Opcode::kMul, "mul", Format::kR},
    OpcodeInfo{Opcode::kMulw, "mulw", Format::kR},
    OpcodeInfo{Opcode::kDiv, "div", Format::kR},
    OpcodeInfo{Opcode::kDivu, "divu", Format::kR},
    OpcodeInfo{Opcode::kRem, "rem", Format::kR},
    OpcodeInfo{Opcode::kRemu, "remu", Format::kR},
    OpcodeInfo{Opcode::kDivw, "divw", Format::kR},
    OpcodeInfo{Opcode::kRemw, "remw", Format::kR},
    OpcodeInfo{Opcode::kLui, "lui", Format::kU},
    OpcodeInfo{Opcode::kAuipc, "auipc", Format::kU},
    OpcodeInfo{Opcode::kLb, "lb", Format::kILoad},
    OpcodeInfo{Opcode::kLh, "lh", Format::kILoad},
    OpcodeInfo{Opcode::kLw, "lw", Format::kILoad},
    OpcodeInfo{Opcode::kLd, "ld", Format::kILoad},
    OpcodeInfo{Opcode::kLbu, "lbu", Format::kILoad},
    OpcodeInfo{Opcode::kLhu, "lhu", Format::kILoad},
    OpcodeInfo{Opcode::kLwu, "lwu", Format::kILoad},
    OpcodeInfo{Opcode::kSb, "sb", Format::kS},
    OpcodeInfo{Opcode::kSh, "sh", Format::kS},
    OpcodeInfo{Opcode::kSw, "sw", Format::kS},
    OpcodeInfo{Opcode::kSd, "sd", Format::kS},
    OpcodeInfo{Opcode::kBeq, "beq", Format::kB},
    OpcodeInfo{Opcode::kBne, "bne", Format::kB},
    OpcodeInfo{Opcode::kBlt, "blt", Format::kB},
    OpcodeInfo{Opcode::kBge, "bge", Format::kB},
    OpcodeInfo{Opcode::kBltu, "bltu", Format::kB},
    OpcodeInfo{Opcode::kBgeu, "bgeu", Format::kB},
    OpcodeInfo{Opcode::kJal, "jal", Format::kJ},
    OpcodeInfo{Opcode::kJalr, "jalr", Format::kI},
    OpcodeInfo{Opcode::kEcall, "ecall", Format::kSystem},
    OpcodeInfo{Opcode::kEbreak, "ebreak", Format::kSystem},
    OpcodeInfo{Opcode::kFence, "fence", Format::kSystem},
    OpcodeInfo{Opcode::kLbRo, "lb.ro", Format::kRoLoad},
    OpcodeInfo{Opcode::kLhRo, "lh.ro", Format::kRoLoad},
    OpcodeInfo{Opcode::kLwRo, "lw.ro", Format::kRoLoad},
    OpcodeInfo{Opcode::kLdRo, "ld.ro", Format::kRoLoad},
    OpcodeInfo{Opcode::kCLdRo, "c.ld.ro", Format::kCRoLoad},
};

const OpcodeInfo& Lookup(Opcode op) {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (info.op == op) return info;
  }
  FatalError("unknown opcode");
}

}  // namespace

std::string_view OpcodeName(Opcode op) { return Lookup(op).name; }

std::optional<Opcode> ParseOpcodeName(std::string_view name) {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (info.name == name) return info.op;
  }
  return std::nullopt;
}

Format OpcodeFormat(Opcode op) { return Lookup(op).format; }

bool IsLoad(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLh:
    case Opcode::kLw:
    case Opcode::kLd:
    case Opcode::kLbu:
    case Opcode::kLhu:
    case Opcode::kLwu:
    case Opcode::kLbRo:
    case Opcode::kLhRo:
    case Opcode::kLwRo:
    case Opcode::kLdRo:
    case Opcode::kCLdRo:
      return true;
    default:
      return false;
  }
}

bool IsRoLoad(Opcode op) {
  switch (op) {
    case Opcode::kLbRo:
    case Opcode::kLhRo:
    case Opcode::kLwRo:
    case Opcode::kLdRo:
    case Opcode::kCLdRo:
      return true;
    default:
      return false;
  }
}

bool IsStore(Opcode op) {
  switch (op) {
    case Opcode::kSb:
    case Opcode::kSh:
    case Opcode::kSw:
    case Opcode::kSd:
      return true;
    default:
      return false;
  }
}

bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

unsigned MemAccessBytes(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSb:
    case Opcode::kLbRo:
      return 1;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kSh:
    case Opcode::kLhRo:
      return 2;
    case Opcode::kLw:
    case Opcode::kLwu:
    case Opcode::kSw:
    case Opcode::kLwRo:
      return 4;
    case Opcode::kLd:
    case Opcode::kSd:
    case Opcode::kLdRo:
    case Opcode::kCLdRo:
      return 8;
    default:
      FatalError("MemAccessBytes on non-memory opcode");
  }
}

bool LoadIsUnsigned(Opcode op) {
  switch (op) {
    case Opcode::kLbu:
    case Opcode::kLhu:
    case Opcode::kLwu:
      return true;
    default:
      return false;
  }
}

}  // namespace roload::isa
