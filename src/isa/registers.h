// RV64 integer register file names (architectural and ABI).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace roload::isa {

inline constexpr unsigned kNumRegs = 32;

// ABI register indices used by the backend's calling convention.
enum Reg : std::uint8_t {
  kZero = 0,
  kRa = 1,
  kSp = 2,
  kGp = 3,
  kTp = 4,
  kT0 = 5,
  kT1 = 6,
  kT2 = 7,
  kS0 = 8,
  kS1 = 9,
  kA0 = 10,
  kA1 = 11,
  kA2 = 12,
  kA3 = 13,
  kA4 = 14,
  kA5 = 15,
  kA6 = 16,
  kA7 = 17,
  kS2 = 18,
  kS3 = 19,
  kS4 = 20,
  kS5 = 21,
  kS6 = 22,
  kS7 = 23,
  kS8 = 24,
  kS9 = 25,
  kS10 = 26,
  kS11 = 27,
  kT3 = 28,
  kT4 = 29,
  kT5 = 30,
  kT6 = 31,
};

// ABI name ("a0", "sp", ...) for register index `reg` (< 32).
std::string_view RegName(unsigned reg);

// Parses either an ABI name ("a0") or an architectural name ("x10").
std::optional<unsigned> ParseRegName(std::string_view name);

}  // namespace roload::isa
