// Trap cause values. Standard causes follow the RISC-V privileged spec;
// the ROLoad key-check failure uses a cause in the custom range (>= 24),
// mirroring the paper's "new type of page fault" that the kernel can
// distinguish from benign load page faults.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace roload::isa {

enum class TrapCause : std::uint32_t {
  kInstructionAddressMisaligned = 0,
  kInstructionAccessFault = 1,
  kIllegalInstruction = 2,
  kBreakpoint = 3,
  kLoadAddressMisaligned = 4,
  kLoadAccessFault = 5,
  kStoreAddressMisaligned = 6,
  kStoreAccessFault = 7,
  kEcallFromUser = 8,
  kInstructionPageFault = 12,
  kLoadPageFault = 13,
  kStorePageFault = 15,
  // Custom cause: a ROLoad-family instruction targeted a page that is
  // writable, unmapped, or whose key does not match the instruction key.
  kRoLoadPageFault = 24,
};

std::string_view TrapCauseName(TrapCause cause);

// A pending trap: cause plus the faulting address (tval).
struct Trap {
  TrapCause cause;
  std::uint64_t tval = 0;
};

}  // namespace roload::isa
