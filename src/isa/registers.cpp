#include "isa/registers.h"

#include <array>

#include "support/status.h"
#include "support/strings.h"

namespace roload::isa {
namespace {
constexpr std::array<std::string_view, kNumRegs> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}  // namespace

std::string_view RegName(unsigned reg) {
  ROLOAD_CHECK(reg < kNumRegs);
  return kAbiNames[reg];
}

std::optional<unsigned> ParseRegName(std::string_view name) {
  for (unsigned i = 0; i < kNumRegs; ++i) {
    if (kAbiNames[i] == name) return i;
  }
  // Architectural form: x0..x31. "fp" aliases s0.
  if (name == "fp") return kS0;
  if (name.size() >= 2 && name[0] == 'x') {
    auto index = ParseInt(name.substr(1));
    if (index && *index >= 0 && *index < kNumRegs) {
      return static_cast<unsigned>(*index);
    }
  }
  return std::nullopt;
}

}  // namespace roload::isa
