// Mnemonic-level opcode enumeration for the RV64 subset implemented by the
// simulator, including the ROLoad-family extension instructions.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace roload::isa {

// One enumerator per assembler mnemonic. The set covers RV64I integer
// computation, loads/stores, control flow, a slice of M, the system
// instructions the mini-kernel needs, and the ROLoad family.
enum class Opcode : std::uint8_t {
  // RV64I register-immediate.
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAddiw,
  kSlliw,
  kSrliw,
  kSraiw,
  // RV64I register-register.
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kAddw,
  kSubw,
  kSllw,
  kSrlw,
  kSraw,
  // RV64M subset.
  kMul,
  kMulw,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kDivw,
  kRemw,
  // Upper immediates.
  kLui,
  kAuipc,
  // Loads.
  kLb,
  kLh,
  kLw,
  kLd,
  kLbu,
  kLhu,
  kLwu,
  // Stores.
  kSb,
  kSh,
  kSw,
  kSd,
  // Branches.
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  // Jumps.
  kJal,
  kJalr,
  // System.
  kEcall,
  kEbreak,
  kFence,
  // ROLoad family: loads that require a read-only destination page whose
  // page key matches the instruction's key immediate.
  kLbRo,
  kLhRo,
  kLwRo,
  kLdRo,
  // Compressed ROLoad double-word load (16-bit encoding, 5-bit key).
  kCLdRo,
};

// Instruction encoding format classes (RISC-V R/I/S/B/U/J plus the ROLoad
// key format and the compressed ROLoad format).
enum class Format : std::uint8_t {
  kR,
  kI,
  kILoad,
  kIShift,
  kS,
  kB,
  kU,
  kJ,
  kSystem,
  kRoLoad,   // rd, (rs1), key — 12-bit key immediate field, 10 bits used.
  kCRoLoad,  // compressed: rd', (rs1'), key — 5-bit key.
};

std::string_view OpcodeName(Opcode op);
std::optional<Opcode> ParseOpcodeName(std::string_view name);
Format OpcodeFormat(Opcode op);

// True for every instruction that reads memory (regular and ROLoad loads).
bool IsLoad(Opcode op);
// True for the ROLoad family only.
bool IsRoLoad(Opcode op);
bool IsStore(Opcode op);
bool IsBranch(Opcode op);
// Access width in bytes for loads/stores.
unsigned MemAccessBytes(Opcode op);
// True when a load zero-extends instead of sign-extending.
bool LoadIsUnsigned(Opcode op);

// Number of distinct page-key values supported by the 10-bit PTE key field.
inline constexpr std::uint32_t kNumPageKeys = 1024;
// Compressed ROLoad instructions can only encode 5-bit keys.
inline constexpr std::uint32_t kNumCompressedKeys = 32;

}  // namespace roload::isa
