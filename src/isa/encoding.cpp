#include "isa/encoding.h"

#include "isa/registers.h"
#include "support/bits.h"
#include "support/status.h"

namespace roload::isa {
namespace {

// funct3/funct7 selectors for the standard encodings we implement.
struct RSel {
  std::uint32_t funct3;
  std::uint32_t funct7;
};

std::optional<RSel> RSelector(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
      return RSel{0b000, 0b0000000};
    case Opcode::kSub:
      return RSel{0b000, 0b0100000};
    case Opcode::kSll:
      return RSel{0b001, 0b0000000};
    case Opcode::kSlt:
      return RSel{0b010, 0b0000000};
    case Opcode::kSltu:
      return RSel{0b011, 0b0000000};
    case Opcode::kXor:
      return RSel{0b100, 0b0000000};
    case Opcode::kSrl:
      return RSel{0b101, 0b0000000};
    case Opcode::kSra:
      return RSel{0b101, 0b0100000};
    case Opcode::kOr:
      return RSel{0b110, 0b0000000};
    case Opcode::kAnd:
      return RSel{0b111, 0b0000000};
    case Opcode::kMul:
      return RSel{0b000, 0b0000001};
    case Opcode::kDiv:
      return RSel{0b100, 0b0000001};
    case Opcode::kDivu:
      return RSel{0b101, 0b0000001};
    case Opcode::kRem:
      return RSel{0b110, 0b0000001};
    case Opcode::kRemu:
      return RSel{0b111, 0b0000001};
    default:
      return std::nullopt;
  }
}

std::optional<RSel> R32Selector(Opcode op) {
  switch (op) {
    case Opcode::kAddw:
      return RSel{0b000, 0b0000000};
    case Opcode::kSubw:
      return RSel{0b000, 0b0100000};
    case Opcode::kSllw:
      return RSel{0b001, 0b0000000};
    case Opcode::kSrlw:
      return RSel{0b101, 0b0000000};
    case Opcode::kSraw:
      return RSel{0b101, 0b0100000};
    case Opcode::kMulw:
      return RSel{0b000, 0b0000001};
    case Opcode::kDivw:
      return RSel{0b100, 0b0000001};
    case Opcode::kRemw:
      return RSel{0b110, 0b0000001};
    default:
      return std::nullopt;
  }
}

std::uint32_t EncodeR(std::uint32_t major, RSel sel, const Instruction& i) {
  return major | (i.rd << 7) | (sel.funct3 << 12) | (i.rs1 << 15) |
         (i.rs2 << 20) | (sel.funct7 << 25);
}

std::uint32_t EncodeI(std::uint32_t major, std::uint32_t funct3,
                      const Instruction& i) {
  ROLOAD_CHECK(FitsSigned(i.imm, 12));
  return major | (i.rd << 7) | (funct3 << 12) | (i.rs1 << 15) |
         (static_cast<std::uint32_t>(i.imm & 0xFFF) << 20);
}

std::uint32_t EncodeS(std::uint32_t funct3, const Instruction& i) {
  ROLOAD_CHECK(FitsSigned(i.imm, 12));
  const std::uint32_t imm = static_cast<std::uint32_t>(i.imm & 0xFFF);
  return 0b0100011 | ((imm & 0x1F) << 7) | (funct3 << 12) | (i.rs1 << 15) |
         (i.rs2 << 20) | ((imm >> 5) << 25);
}

std::uint32_t EncodeB(std::uint32_t funct3, const Instruction& i) {
  ROLOAD_CHECK(FitsSigned(i.imm, 13) && (i.imm & 1) == 0);
  const std::uint32_t imm = static_cast<std::uint32_t>(i.imm & 0x1FFE);
  std::uint32_t word = 0b1100011 | (funct3 << 12) | (i.rs1 << 15) |
                       (i.rs2 << 20);
  word |= ((imm >> 11) & 1) << 7;
  word |= ((imm >> 1) & 0xF) << 8;
  word |= ((imm >> 5) & 0x3F) << 25;
  word |= ((imm >> 12) & 1) << 31;
  return word;
}

std::uint32_t EncodeU(std::uint32_t major, const Instruction& i) {
  // imm holds the value placed in bits [31:12].
  ROLOAD_CHECK(FitsSigned(i.imm, 20) || FitsUnsigned(i.imm, 20));
  return major | (i.rd << 7) |
         (static_cast<std::uint32_t>(i.imm & 0xFFFFF) << 12);
}

std::uint32_t EncodeJ(const Instruction& i) {
  ROLOAD_CHECK(FitsSigned(i.imm, 21) && (i.imm & 1) == 0);
  const std::uint32_t imm = static_cast<std::uint32_t>(i.imm & 0x1FFFFE);
  std::uint32_t word = 0b1101111 | (i.rd << 7);
  word |= ((imm >> 12) & 0xFF) << 12;
  word |= ((imm >> 11) & 1) << 20;
  word |= ((imm >> 1) & 0x3FF) << 21;
  word |= ((imm >> 20) & 1) << 31;
  return word;
}

std::uint32_t LoadFunct3(Opcode op) {
  switch (op) {
    case Opcode::kLb:
      return 0b000;
    case Opcode::kLh:
      return 0b001;
    case Opcode::kLw:
      return 0b010;
    case Opcode::kLd:
      return 0b011;
    case Opcode::kLbu:
      return 0b100;
    case Opcode::kLhu:
      return 0b101;
    case Opcode::kLwu:
      return 0b110;
    default:
      FatalError("not a regular load");
  }
}

std::uint32_t StoreFunct3(Opcode op) {
  switch (op) {
    case Opcode::kSb:
      return 0b000;
    case Opcode::kSh:
      return 0b001;
    case Opcode::kSw:
      return 0b010;
    case Opcode::kSd:
      return 0b011;
    default:
      FatalError("not a store");
  }
}

std::uint32_t BranchFunct3(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
      return 0b000;
    case Opcode::kBne:
      return 0b001;
    case Opcode::kBlt:
      return 0b100;
    case Opcode::kBge:
      return 0b101;
    case Opcode::kBltu:
      return 0b110;
    case Opcode::kBgeu:
      return 0b111;
    default:
      FatalError("not a branch");
  }
}

// ROLoad funct3: access width selector, matching the regular load widths.
std::uint32_t RoLoadFunct3(Opcode op) {
  switch (op) {
    case Opcode::kLbRo:
      return 0b000;
    case Opcode::kLhRo:
      return 0b001;
    case Opcode::kLwRo:
      return 0b010;
    case Opcode::kLdRo:
      return 0b011;
    default:
      FatalError("not a ROLoad");
  }
}

}  // namespace

std::uint32_t Encode(const Instruction& i) {
  ROLOAD_CHECK(i.rd < kNumRegs && i.rs1 < kNumRegs && i.rs2 < kNumRegs);
  switch (i.op) {
    case Opcode::kAddi:
      return EncodeI(0b0010011, 0b000, i);
    case Opcode::kSlti:
      return EncodeI(0b0010011, 0b010, i);
    case Opcode::kSltiu:
      return EncodeI(0b0010011, 0b011, i);
    case Opcode::kXori:
      return EncodeI(0b0010011, 0b100, i);
    case Opcode::kOri:
      return EncodeI(0b0010011, 0b110, i);
    case Opcode::kAndi:
      return EncodeI(0b0010011, 0b111, i);
    case Opcode::kSlli: {
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 64);
      Instruction t = i;
      return EncodeI(0b0010011, 0b001, t);
    }
    case Opcode::kSrli: {
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 64);
      return EncodeI(0b0010011, 0b101, i);
    }
    case Opcode::kSrai: {
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 64);
      Instruction t = i;
      t.imm |= 0x400;  // funct6=010000 marker in imm[11:6]
      return EncodeI(0b0010011, 0b101, t);
    }
    case Opcode::kAddiw:
      return EncodeI(0b0011011, 0b000, i);
    case Opcode::kSlliw:
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 32);
      return EncodeI(0b0011011, 0b001, i);
    case Opcode::kSrliw:
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 32);
      return EncodeI(0b0011011, 0b101, i);
    case Opcode::kSraiw: {
      ROLOAD_CHECK(i.imm >= 0 && i.imm < 32);
      Instruction t = i;
      t.imm |= 0x400;
      return EncodeI(0b0011011, 0b101, t);
    }
    case Opcode::kLui:
      return EncodeU(0b0110111, i);
    case Opcode::kAuipc:
      return EncodeU(0b0010111, i);
    case Opcode::kJal:
      return EncodeJ(i);
    case Opcode::kJalr:
      return EncodeI(0b1100111, 0b000, i);
    case Opcode::kEcall:
      return 0b1110011;
    case Opcode::kEbreak:
      return 0b1110011 | (1u << 20);
    case Opcode::kFence:
      return 0b0001111;
    default:
      break;
  }
  if (auto sel = RSelector(i.op)) return EncodeR(0b0110011, *sel, i);
  if (auto sel = R32Selector(i.op)) return EncodeR(0b0111011, *sel, i);
  if (IsRoLoad(i.op) && i.op != Opcode::kCLdRo) {
    ROLOAD_CHECK(i.key < kNumPageKeys);
    Instruction t = i;
    t.imm = static_cast<std::int64_t>(i.key);
    return EncodeI(kRoLoadMajorOpcode, RoLoadFunct3(i.op), t);
  }
  if (i.op == Opcode::kCLdRo) {
    ROLOAD_CHECK(i.key < kNumCompressedKeys);
    ROLOAD_CHECK(i.rd >= 8 && i.rd < 16 && i.rs1 >= 8 && i.rs1 < 16);
    std::uint32_t word = 0b00;                      // quadrant 0
    word |= 0b100u << 13;                           // reserved funct3 slot
    word |= (static_cast<std::uint32_t>(i.rd) - 8) << 2;
    word |= (static_cast<std::uint32_t>(i.rs1) - 8) << 7;
    word |= ((i.key >> 2) & 0x7) << 10;             // key[4:2]
    word |= (i.key & 0x3) << 5;                     // key[1:0]
    return word;
  }
  if (IsLoad(i.op)) return EncodeI(0b0000011, LoadFunct3(i.op), i);
  if (IsStore(i.op)) return EncodeS(StoreFunct3(i.op), i);
  if (IsBranch(i.op)) return EncodeB(BranchFunct3(i.op), i);
  FatalError("Encode: unhandled opcode");
}

unsigned ParcelLength(std::uint16_t low16) {
  return (low16 & 0b11) == 0b11 ? 4 : 2;
}

namespace {

std::optional<Instruction> DecodeCompressed(std::uint16_t raw) {
  // Only c.ld.ro is implemented from the compressed space; everything else
  // in quadrants 0-2 is treated as unsupported (illegal) by this core.
  const std::uint32_t quadrant = raw & 0b11;
  const std::uint32_t funct3 = (raw >> 13) & 0b111;
  if (quadrant != 0b00 || funct3 != 0b100) return std::nullopt;
  Instruction inst;
  inst.op = Opcode::kCLdRo;
  inst.length = 2;
  inst.rd = static_cast<std::uint8_t>(((raw >> 2) & 0x7) + 8);
  inst.rs1 = static_cast<std::uint8_t>(((raw >> 7) & 0x7) + 8);
  inst.key = (((raw >> 10) & 0x7) << 2) | ((raw >> 5) & 0x3);
  return inst;
}

std::optional<Opcode> RFromSelector(std::uint32_t funct3,
                                    std::uint32_t funct7, bool is32) {
  const Opcode candidates[] = {
      Opcode::kAdd,  Opcode::kSub,  Opcode::kSll,  Opcode::kSlt,
      Opcode::kSltu, Opcode::kXor,  Opcode::kSrl,  Opcode::kSra,
      Opcode::kOr,   Opcode::kAnd,  Opcode::kMul,  Opcode::kDiv,
      Opcode::kDivu, Opcode::kRem,  Opcode::kRemu, Opcode::kAddw,
      Opcode::kSubw, Opcode::kSllw, Opcode::kSrlw, Opcode::kSraw,
      Opcode::kMulw, Opcode::kDivw, Opcode::kRemw};
  for (Opcode op : candidates) {
    auto sel = is32 ? R32Selector(op) : RSelector(op);
    if (sel && sel->funct3 == funct3 && sel->funct7 == funct7) return op;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Instruction> Decode(std::uint32_t raw) {
  if (ParcelLength(static_cast<std::uint16_t>(raw)) == 2) {
    return DecodeCompressed(static_cast<std::uint16_t>(raw));
  }

  Instruction inst;
  inst.length = 4;
  const std::uint32_t major = raw & 0x7F;
  inst.rd = static_cast<std::uint8_t>((raw >> 7) & 0x1F);
  const std::uint32_t funct3 = (raw >> 12) & 0x7;
  inst.rs1 = static_cast<std::uint8_t>((raw >> 15) & 0x1F);
  inst.rs2 = static_cast<std::uint8_t>((raw >> 20) & 0x1F);
  const std::uint32_t funct7 = (raw >> 25) & 0x7F;
  const std::int64_t imm_i = SignExtend(raw >> 20, 12);

  switch (major) {
    case 0b0010011:  // OP-IMM
      inst.imm = imm_i;
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kAddi;
          return inst;
        case 0b010:
          inst.op = Opcode::kSlti;
          return inst;
        case 0b011:
          inst.op = Opcode::kSltiu;
          return inst;
        case 0b100:
          inst.op = Opcode::kXori;
          return inst;
        case 0b110:
          inst.op = Opcode::kOri;
          return inst;
        case 0b111:
          inst.op = Opcode::kAndi;
          return inst;
        case 0b001:
          inst.op = Opcode::kSlli;
          inst.imm = imm_i & 0x3F;
          return inst;
        case 0b101:
          inst.op = (imm_i & 0x400) != 0 ? Opcode::kSrai : Opcode::kSrli;
          inst.imm = imm_i & 0x3F;
          return inst;
      }
      return std::nullopt;
    case 0b0011011:  // OP-IMM-32
      inst.imm = imm_i;
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kAddiw;
          return inst;
        case 0b001:
          inst.op = Opcode::kSlliw;
          inst.imm = imm_i & 0x1F;
          return inst;
        case 0b101:
          inst.op = (imm_i & 0x400) != 0 ? Opcode::kSraiw : Opcode::kSrliw;
          inst.imm = imm_i & 0x1F;
          return inst;
      }
      return std::nullopt;
    case 0b0110011:  // OP
      if (auto op = RFromSelector(funct3, funct7, /*is32=*/false)) {
        inst.op = *op;
        return inst;
      }
      return std::nullopt;
    case 0b0111011:  // OP-32
      if (auto op = RFromSelector(funct3, funct7, /*is32=*/true)) {
        inst.op = *op;
        return inst;
      }
      return std::nullopt;
    case 0b0110111:
      inst.op = Opcode::kLui;
      inst.imm = static_cast<std::int64_t>(SignExtend(raw >> 12, 20));
      return inst;
    case 0b0010111:
      inst.op = Opcode::kAuipc;
      inst.imm = static_cast<std::int64_t>(SignExtend(raw >> 12, 20));
      return inst;
    case 0b0000011:  // LOAD
      inst.imm = imm_i;
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kLb;
          return inst;
        case 0b001:
          inst.op = Opcode::kLh;
          return inst;
        case 0b010:
          inst.op = Opcode::kLw;
          return inst;
        case 0b011:
          inst.op = Opcode::kLd;
          return inst;
        case 0b100:
          inst.op = Opcode::kLbu;
          return inst;
        case 0b101:
          inst.op = Opcode::kLhu;
          return inst;
        case 0b110:
          inst.op = Opcode::kLwu;
          return inst;
      }
      return std::nullopt;
    case kRoLoadMajorOpcode: {  // ROLoad family (custom-0)
      inst.key = static_cast<std::uint32_t>(raw >> 20) & (kNumPageKeys - 1);
      inst.imm = 0;  // no address offset by design
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kLbRo;
          return inst;
        case 0b001:
          inst.op = Opcode::kLhRo;
          return inst;
        case 0b010:
          inst.op = Opcode::kLwRo;
          return inst;
        case 0b011:
          inst.op = Opcode::kLdRo;
          return inst;
      }
      return std::nullopt;
    }
    case 0b0100011: {  // STORE
      const std::uint64_t imm_raw =
          ((raw >> 7) & 0x1F) | (((raw >> 25) & 0x7F) << 5);
      inst.imm = SignExtend(imm_raw, 12);
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kSb;
          return inst;
        case 0b001:
          inst.op = Opcode::kSh;
          return inst;
        case 0b010:
          inst.op = Opcode::kSw;
          return inst;
        case 0b011:
          inst.op = Opcode::kSd;
          return inst;
      }
      return std::nullopt;
    }
    case 0b1100011: {  // BRANCH
      std::uint64_t imm = 0;
      imm |= ((raw >> 8) & 0xF) << 1;
      imm |= ((raw >> 25) & 0x3F) << 5;
      imm |= ((raw >> 7) & 0x1) << 11;
      imm |= ((raw >> 31) & 0x1) << 12;
      inst.imm = SignExtend(imm, 13);
      switch (funct3) {
        case 0b000:
          inst.op = Opcode::kBeq;
          return inst;
        case 0b001:
          inst.op = Opcode::kBne;
          return inst;
        case 0b100:
          inst.op = Opcode::kBlt;
          return inst;
        case 0b101:
          inst.op = Opcode::kBge;
          return inst;
        case 0b110:
          inst.op = Opcode::kBltu;
          return inst;
        case 0b111:
          inst.op = Opcode::kBgeu;
          return inst;
      }
      return std::nullopt;
    }
    case 0b1101111: {  // JAL
      std::uint64_t imm = 0;
      imm |= ((raw >> 21) & 0x3FF) << 1;
      imm |= ((raw >> 20) & 0x1) << 11;
      imm |= ((raw >> 12) & 0xFF) << 12;
      imm |= ((raw >> 31) & 0x1) << 20;
      inst.op = Opcode::kJal;
      inst.imm = SignExtend(imm, 21);
      return inst;
    }
    case 0b1100111:
      if (funct3 != 0b000) return std::nullopt;
      inst.op = Opcode::kJalr;
      inst.imm = imm_i;
      return inst;
    case 0b1110011:
      if (raw == 0b1110011) {
        inst.op = Opcode::kEcall;
        return inst;
      }
      if (raw == (0b1110011 | (1u << 20))) {
        inst.op = Opcode::kEbreak;
        return inst;
      }
      return std::nullopt;
    case 0b0001111:
      inst.op = Opcode::kFence;
      return inst;
    default:
      return std::nullopt;
  }
}

}  // namespace roload::isa
