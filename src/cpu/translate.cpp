#include "cpu/translate.h"

namespace roload::cpu {

TranslatedBlock* Translator::Lookup(std::uint64_t root_ppn, std::uint64_t pc) {
  auto it = map_.find(KeyOf(root_ppn, pc));
  if (it == map_.end()) return nullptr;
  TranslatedBlock* block = it->second;
  // The key is a hash of (root, pc); verify the block really is the one
  // asked for and still alive.
  if (block->dead || block->head_pc != pc || block->root_ppn != root_ppn) {
    return nullptr;
  }
  return block;
}

bool Translator::NoteVisit(std::uint64_t root_ppn, std::uint64_t pc) {
  VisitSlot& slot = visits_[(pc >> 1) & (kVisitSlots - 1)];
  const std::uint64_t key = KeyOf(root_ppn, pc);
  if (slot.key != key) {
    slot.key = key;
    slot.count = 1;
  } else if (slot.count < threshold_) {
    // Saturate at the threshold: the run loop calls this on every
    // non-chained entry (hot or cold), so the count would otherwise grow
    // without bound and eventually wrap.
    ++slot.count;
  }
  return slot.count >= threshold_;
}

TranslatedBlock* Translator::Insert(std::unique_ptr<TranslatedBlock> block) {
  TranslatedBlock* raw = block.get();
  blocks_.push_back(std::move(block));
  TranslatedBlock*& mapped = map_[KeyOf(raw->root_ppn, raw->head_pc)];
  if (mapped != nullptr && mapped != raw) Retire(mapped);
  mapped = raw;
  ++stats_.blocks_built;
  return raw;
}

void Translator::Retire(TranslatedBlock* block) {
  if (block == nullptr || block->dead) return;
  block->dead = true;
  block->valid_epoch = 0;  // never epoch-fast-path a dead block
  ++stats_.blocks_retired;
}

void Translator::InvalidateAll() {
  blocks_.clear();
  map_.clear();
  for (VisitSlot& slot : visits_) slot = VisitSlot{};
  ++stats_.invalidations;
}

}  // namespace roload::cpu
