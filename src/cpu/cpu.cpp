#include "cpu/cpu.h"

#include "support/bits.h"
#include "support/status.h"

namespace roload::cpu {
namespace {

// Superblock terminators: unconditional transfers and environment ops end
// a block (conditional branches continue fall-through; execution exits on
// divergence).
bool EndsBlock(isa::Opcode op) {
  return op == isa::Opcode::kJal || op == isa::Opcode::kJalr ||
         op == isa::Opcode::kEcall || op == isa::Opcode::kEbreak;
}

bool IsStoreOp(isa::Opcode op) {
  return op == isa::Opcode::kSb || op == isa::Opcode::kSh ||
         op == isa::Opcode::kSw || op == isa::Opcode::kSd;
}

}  // namespace

void SetHostFastPaths(CpuConfig* config, bool enabled) {
  config->host_decode_cache = enabled;
  config->icache.host_fast_path = enabled;
  config->dcache.host_fast_path = enabled;
  config->itlb.host_indexed_lookup = enabled;
  config->dtlb.host_indexed_lookup = enabled;
  config->host_unchecked_mem = enabled;
}

void SetExecTier(CpuConfig* config, ExecTier tier) {
  SetHostFastPaths(config, tier != ExecTier::kInterp);
  config->host_translate = tier == ExecTier::kTranslated;
}

std::string_view ExecTierName(ExecTier tier) {
  switch (tier) {
    case ExecTier::kInterp:
      return "interp";
    case ExecTier::kFast:
      return "fast";
    case ExecTier::kTranslated:
      return "translated";
  }
  return "?";
}

std::optional<ExecTier> ParseExecTier(std::string_view name) {
  if (name == "interp") return ExecTier::kInterp;
  if (name == "fast") return ExecTier::kFast;
  if (name == "translated") return ExecTier::kTranslated;
  return std::nullopt;
}

Cpu::Cpu(const CpuConfig& config, mem::PhysMemory* memory)
    : config_(config),
      memory_(memory),
      icache_(config.icache),
      dcache_(config.dcache),
      itlb_(config.itlb, memory),
      dtlb_(config.dtlb, memory) {
  if (config.host_decode_cache) decode_cache_.resize(kDecodeCacheSlots);
  if (config.host_translate) {
    translator_ = std::make_unique<Translator>(config.translate_threshold,
                                               config.translate_max_blocks);
    code_table_ = std::make_shared<CodeVersionTable>(memory->size());
    code_table_ptr_ = code_table_.get();
  }
}

void Cpu::set_reg(unsigned index, std::uint64_t value) {
  ROLOAD_CHECK(index < isa::kNumRegs);
  if (index != 0) regs_[index] = value;
}

void Cpu::FlushTlbs() {
  itlb_.Flush();
  dtlb_.Flush();
  if (code_table_ptr_ != nullptr) code_table_ptr_->Advance();
  // The sfence.vma analogue also drops host-cached decodes: a remap can
  // change the bytes behind an unchanged pc, and a same-bytes remap must
  // not resurrect a decode taken under dropped translations.
  InvalidateDecodeCache();
  // Same reasoning for translated blocks: a flush signals PTE edits
  // (remap, mprotect re-key, shootdown), so drop them all. Flushes only
  // happen between blocks (kernel code runs between Run calls), so no
  // block is mid-replay and no chain source is live.
  if (translator_ != nullptr) translator_->InvalidateAll();
}

void Cpu::InvalidateDecodeCache() {
  if (++decode_generation_ == 0) {
    // Generation wrapped: scrub the slots so pre-wrap entries can never
    // alias the restarted counter.
    for (DecodeSlot& slot : decode_cache_) slot = DecodeSlot{};
    decode_generation_ = 1;
  }
}

void Cpu::set_trace(trace::Hub* hub) {
  trace_ = hub;
  itlb_.set_trace(hub, trace::Unit::kITlb);
  dtlb_.set_trace(hub, trace::Unit::kDTlb);
  icache_.set_trace(hub, trace::Unit::kICache);
  dcache_.set_trace(hub, trace::Unit::kDCache);
}

void Cpu::ResetStats() {
  stats_ = CpuStats{};
  itlb_.ResetStats();
  dtlb_.ResetStats();
  icache_.ResetStats();
  dcache_.ResetStats();
}

void Cpu::RaiseTrap(isa::TrapCause cause, std::uint64_t tval) {
  pending_trap_ = isa::Trap{cause, tval};
}

bool Cpu::FetchDecode(isa::Instruction* inst, unsigned* cycles) {
  if ((pc_ & 1) != 0) {
    RaiseTrap(isa::TrapCause::kInstructionAddressMisaligned, pc_);
    return false;
  }
  const bool profiling = trace_ != nullptr && trace_->profiling();
  auto low = itlb_.Translate(root_ppn_, pc_, tlb::AccessType::kFetch, 0);
  *cycles += low.cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kITlbWalk, low.cycles);
  }
  if (!low.ok) {
    RaiseTrap(low.cause, pc_);
    return false;
  }
  if (!memory_->Contains(low.phys_addr, 2)) {
    RaiseTrap(isa::TrapCause::kInstructionAccessFault, pc_);
    return false;
  }
  const unsigned ifetch_cycles = icache_.Access(low.phys_addr, /*write=*/false);
  *cycles += ifetch_cycles;
  if (profiling) {
    // The hit latency is part of ordinary execution; only the fill beyond
    // it is a miss stall.
    trace_->profiler().Charge(trace::CycleBucket::kICacheMiss,
                              ifetch_cycles - config_.icache.hit_cycles);
  }

  std::uint32_t raw = static_cast<std::uint32_t>(
      config_.host_unchecked_mem ? memory_->ReadUnchecked(low.phys_addr, 2)
                                 : memory_->Read(low.phys_addr, 2));
  const unsigned length = isa::ParcelLength(static_cast<std::uint16_t>(raw));
  if (length == 4) {
    // The upper half may live on the next page.
    std::uint64_t upper_phys = low.phys_addr + 2;
    if (((pc_ + 2) & (mem::kPageSize - 1)) == 0) {
      auto high =
          itlb_.Translate(root_ppn_, pc_ + 2, tlb::AccessType::kFetch, 0);
      *cycles += high.cycles;
      if (profiling) {
        trace_->profiler().Charge(trace::CycleBucket::kITlbWalk,
                                  high.cycles);
      }
      if (!high.ok) {
        RaiseTrap(high.cause, pc_ + 2);
        return false;
      }
      upper_phys = high.phys_addr;
      const unsigned upper_cycles =
          icache_.Access(upper_phys, /*write=*/false);
      *cycles += upper_cycles;
      if (profiling) {
        trace_->profiler().Charge(trace::CycleBucket::kICacheMiss,
                                  upper_cycles - config_.icache.hit_cycles);
      }
    }
    if (!memory_->Contains(upper_phys, 2)) {
      RaiseTrap(isa::TrapCause::kInstructionAccessFault, pc_);
      return false;
    }
    raw |= static_cast<std::uint32_t>(
               config_.host_unchecked_mem
                   ? memory_->ReadUnchecked(upper_phys, 2)
                   : memory_->Read(upper_phys, 2))
           << 16;
  }

  DecodeSlot* slot = nullptr;
  if (config_.host_decode_cache) {
    slot = &decode_cache_[(pc_ >> 1) & (kDecodeCacheSlots - 1)];
    if (slot->generation == decode_generation_ && slot->pc == pc_ &&
        slot->raw == raw) {
      *inst = slot->inst;
      return true;
    }
  }

  auto decoded = isa::Decode(raw);
  if (!decoded) {
    RaiseTrap(isa::TrapCause::kIllegalInstruction, raw);
    return false;
  }
  // The unmodified baseline core has no ROLoad decoder: the custom-0 and
  // reserved-RVC encodings are illegal instructions there.
  if (!config_.roload_enabled && isa::IsRoLoad(decoded->op)) {
    RaiseTrap(isa::TrapCause::kIllegalInstruction, raw);
    return false;
  }
  // Only successful decodes are cached, so the roload_enabled rejection
  // (fixed per Cpu) can never be skipped by a hit.
  if (slot != nullptr) {
    slot->pc = pc_;
    slot->raw = raw;
    slot->generation = decode_generation_;
    slot->inst = *decoded;
  }
  *inst = *decoded;
  return true;
}

bool Cpu::MemAccess(const isa::Instruction& inst, std::uint64_t virt_addr,
                    bool write, std::uint64_t* value, unsigned* cycles) {
  const unsigned bytes = isa::MemAccessBytes(inst.op);
  if ((virt_addr & (bytes - 1)) != 0) {
    RaiseTrap(write ? isa::TrapCause::kStoreAddressMisaligned
                    : isa::TrapCause::kLoadAddressMisaligned,
              virt_addr);
    return false;
  }
  const tlb::AccessType access =
      write ? tlb::AccessType::kStore
            : (isa::IsRoLoad(inst.op) ? tlb::AccessType::kRoLoad
                                      : tlb::AccessType::kLoad);
  const bool profiling = trace_ != nullptr && trace_->profiling();
  auto xlat = dtlb_.Translate(root_ppn_, virt_addr, access, inst.key);
  *cycles += xlat.cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kDTlbWalk, xlat.cycles);
  }
  if (access == tlb::AccessType::kRoLoad && trace_ != nullptr &&
      trace_->enabled(trace::EventCategory::kRoLoad)) {
    // Dispatch-census feed: one record per executed ld.ro site, pass or
    // fail, with the outcome packed over the static key (see
    // EventType::kRoLoadCheck). The CPU emits it (not the TLB) because
    // only the CPU knows the site pc.
    const std::uint64_t outcome =
        xlat.ok ? 0 : static_cast<std::uint64_t>(xlat.roload_fail_kind);
    trace_->Emit(trace::Unit::kCpu, trace::EventCategory::kRoLoad,
                 trace::EventType::kRoLoadCheck, pc_, virt_addr,
                 (outcome << 16) | inst.key);
  }
  if (!xlat.ok) {
    RaiseTrap(xlat.cause, virt_addr);
    return false;
  }
  if (!memory_->Contains(xlat.phys_addr, bytes)) {
    RaiseTrap(write ? isa::TrapCause::kStoreAccessFault
                    : isa::TrapCause::kLoadAccessFault,
              virt_addr);
    return false;
  }
  const unsigned dcache_cycles = dcache_.Access(xlat.phys_addr, write);
  *cycles += dcache_cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kDCacheMiss,
                              dcache_cycles - config_.dcache.hit_cycles);
  }
  if (write) {
    if (config_.host_unchecked_mem) {
      memory_->WriteUnchecked(xlat.phys_addr, bytes, *value);
    } else {
      memory_->Write(xlat.phys_addr, bytes, *value);
    }
    // Self-modifying-code barrier for the translation tier (no-op unless
    // the page holds translated code; stores are size-aligned, so one
    // page covers the whole access).
    if (code_table_ptr_ != nullptr) code_table_ptr_->OnWrite(xlat.phys_addr);
  } else {
    std::uint64_t raw = config_.host_unchecked_mem
                            ? memory_->ReadUnchecked(xlat.phys_addr, bytes)
                            : memory_->Read(xlat.phys_addr, bytes);
    if (!isa::LoadIsUnsigned(inst.op) && bytes < 8) {
      raw = static_cast<std::uint64_t>(
          SignExtend(raw, bytes * 8));
    }
    *value = raw;
  }
  return true;
}

StepEvent Cpu::Step() {
  isa::Instruction inst;
  unsigned cycles = 0;
  // An interpreted step can evict I-TLB entries and I-cache lines (its
  // fetch runs the real lookup paths), so every proven block guard may be
  // stale afterwards — advance the epoch so re-entries re-prove.
  if (code_table_ptr_ != nullptr) code_table_ptr_->Advance();
  const bool profiling = trace_ != nullptr && trace_->profiling();
  const std::uint64_t step_pc = pc_;
  if (profiling) trace_->profiler().BeginStep();
  if (!FetchDecode(&inst, &cycles)) {
    stats_.cycles += cycles + 1;
    if (profiling) {
      trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                 cycles + 1);
    }
    return StepEvent::kTrap;
  }
  if (trace_hook_) trace_hook_(pc_, inst);
  return ExecuteDecoded(inst, cycles);
}

StepEvent Cpu::ExecuteDecoded(const isa::Instruction& inst, unsigned cycles) {
  return ExecuteDecodedImpl<false>(inst, cycles);
}

template <bool kLean>
StepEvent Cpu::ExecuteDecodedImpl(const isa::Instruction& inst,
                                  unsigned cycles) {
  // kLean runs strictly under TranslationTransparent(), where profiling is
  // guaranteed off — fold the checks away at compile time.
  const bool profiling =
      !kLean && trace_ != nullptr && trace_->profiling();
  const std::uint64_t step_pc = pc_;
  const std::uint64_t next_pc = pc_ + inst.length;
  std::uint64_t new_pc = next_pc;
  const std::uint64_t rs1 = regs_[inst.rs1];
  const std::uint64_t rs2 = regs_[inst.rs2];
  std::uint64_t rd_value = 0;
  bool writes_rd = true;

  using isa::Opcode;
  switch (inst.op) {
    case Opcode::kAddi:
      rd_value = rs1 + static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kSlti:
      rd_value = static_cast<std::int64_t>(rs1) < inst.imm ? 1 : 0;
      break;
    case Opcode::kSltiu:
      rd_value = rs1 < static_cast<std::uint64_t>(inst.imm) ? 1 : 0;
      break;
    case Opcode::kXori:
      rd_value = rs1 ^ static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kOri:
      rd_value = rs1 | static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kAndi:
      rd_value = rs1 & static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kSlli:
      rd_value = rs1 << (inst.imm & 63);
      break;
    case Opcode::kSrli:
      rd_value = rs1 >> (inst.imm & 63);
      break;
    case Opcode::kSrai:
      rd_value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(rs1) >> (inst.imm & 63));
      break;
    case Opcode::kAddiw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 + static_cast<std::uint64_t>(inst.imm))));
      break;
    case Opcode::kSlliw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 << (inst.imm & 31))));
      break;
    case Opcode::kSrliw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                    (inst.imm & 31))));
      break;
    case Opcode::kSraiw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1) >> (inst.imm & 31)));
      break;
    case Opcode::kAdd:
      rd_value = rs1 + rs2;
      break;
    case Opcode::kSub:
      rd_value = rs1 - rs2;
      break;
    case Opcode::kSll:
      rd_value = rs1 << (rs2 & 63);
      break;
    case Opcode::kSlt:
      rd_value = static_cast<std::int64_t>(rs1) < static_cast<std::int64_t>(rs2)
                     ? 1
                     : 0;
      break;
    case Opcode::kSltu:
      rd_value = rs1 < rs2 ? 1 : 0;
      break;
    case Opcode::kXor:
      rd_value = rs1 ^ rs2;
      break;
    case Opcode::kSrl:
      rd_value = rs1 >> (rs2 & 63);
      break;
    case Opcode::kSra:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1) >>
                                            (rs2 & 63));
      break;
    case Opcode::kOr:
      rd_value = rs1 | rs2;
      break;
    case Opcode::kAnd:
      rd_value = rs1 & rs2;
      break;
    case Opcode::kAddw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 + rs2)));
      break;
    case Opcode::kSubw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 - rs2)));
      break;
    case Opcode::kSllw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 << (rs2 & 31))));
      break;
    case Opcode::kSrlw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                    (rs2 & 31))));
      break;
    case Opcode::kSraw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1) >> (rs2 & 31)));
      break;
    case Opcode::kMul:
      cycles += config_.mul_cycles;
      rd_value = rs1 * rs2;
      break;
    case Opcode::kMulw:
      cycles += config_.mul_cycles;
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 * rs2)));
      break;
    case Opcode::kDiv: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int64_t>(rs1);
      const auto b = static_cast<std::int64_t>(rs2);
      if (b == 0) {
        rd_value = ~std::uint64_t{0};
      } else if (a == INT64_MIN && b == -1) {
        rd_value = rs1;
      } else {
        rd_value = static_cast<std::uint64_t>(a / b);
      }
      break;
    }
    case Opcode::kDivu:
      cycles += config_.div_cycles;
      rd_value = rs2 == 0 ? ~std::uint64_t{0} : rs1 / rs2;
      break;
    case Opcode::kRem: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int64_t>(rs1);
      const auto b = static_cast<std::int64_t>(rs2);
      if (b == 0) {
        rd_value = rs1;
      } else if (a == INT64_MIN && b == -1) {
        rd_value = 0;
      } else {
        rd_value = static_cast<std::uint64_t>(a % b);
      }
      break;
    }
    case Opcode::kRemu:
      cycles += config_.div_cycles;
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      break;
    case Opcode::kDivw: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t q;
      if (b == 0) {
        q = -1;
      } else if (a == INT32_MIN && b == -1) {
        q = a;
      } else {
        q = a / b;
      }
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
      break;
    }
    case Opcode::kRemw: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t r;
      if (b == 0) {
        r = a;
      } else if (a == INT32_MIN && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
      break;
    }
    case Opcode::kLui:
      rd_value = static_cast<std::uint64_t>(inst.imm << 12);
      break;
    case Opcode::kAuipc:
      rd_value = pc_ + static_cast<std::uint64_t>(inst.imm << 12);
      break;
    case Opcode::kJal:
      rd_value = next_pc;
      new_pc = pc_ + static_cast<std::uint64_t>(inst.imm);
      cycles += config_.taken_branch_cycles;
      break;
    case Opcode::kJalr:
      rd_value = next_pc;
      new_pc = (rs1 + static_cast<std::uint64_t>(inst.imm)) & ~std::uint64_t{1};
      cycles += config_.taken_branch_cycles;
      ++stats_.indirect_jumps;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      writes_rd = false;
      ++stats_.branches;
      bool taken = false;
      switch (inst.op) {
        case Opcode::kBeq:
          taken = rs1 == rs2;
          break;
        case Opcode::kBne:
          taken = rs1 != rs2;
          break;
        case Opcode::kBlt:
          taken = static_cast<std::int64_t>(rs1) <
                  static_cast<std::int64_t>(rs2);
          break;
        case Opcode::kBge:
          taken = static_cast<std::int64_t>(rs1) >=
                  static_cast<std::int64_t>(rs2);
          break;
        case Opcode::kBltu:
          taken = rs1 < rs2;
          break;
        case Opcode::kBgeu:
          taken = rs1 >= rs2;
          break;
        default:
          break;
      }
      if (taken) {
        ++stats_.taken_branches;
        new_pc = pc_ + static_cast<std::uint64_t>(inst.imm);
        cycles += config_.taken_branch_cycles;
      }
      break;
    }
    case Opcode::kLb:
    case Opcode::kLh:
    case Opcode::kLw:
    case Opcode::kLd:
    case Opcode::kLbu:
    case Opcode::kLhu:
    case Opcode::kLwu:
    case Opcode::kLbRo:
    case Opcode::kLhRo:
    case Opcode::kLwRo:
    case Opcode::kLdRo:
    case Opcode::kCLdRo: {
      // ROLoad-family addresses are (rs1) with no offset; inst.imm is 0 for
      // them by decode construction, so the same expression serves both.
      const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
      ++stats_.loads;
      if (isa::IsRoLoad(inst.op)) ++stats_.roload_loads;
      if (!MemAccess(inst, addr, /*write=*/false, &rd_value, &cycles)) {
        stats_.cycles += cycles + 1;
        if (profiling) {
          trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                     cycles + 1);
        }
        return StepEvent::kTrap;
      }
      break;
    }
    case Opcode::kSb:
    case Opcode::kSh:
    case Opcode::kSw:
    case Opcode::kSd: {
      writes_rd = false;
      ++stats_.stores;
      const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
      std::uint64_t value = rs2;
      if (!MemAccess(inst, addr, /*write=*/true, &value, &cycles)) {
        stats_.cycles += cycles + 1;
        if (profiling) {
          trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                     cycles + 1);
        }
        return StepEvent::kTrap;
      }
      break;
    }
    case Opcode::kEcall:
      stats_.cycles += cycles + 1;
      ++stats_.instructions;
      pc_ = next_pc;
      if (profiling) {
        trace_->profiler().EndStep(trace::CycleBucket::kSyscall, step_pc,
                                   cycles + 1);
      }
      return StepEvent::kEcall;
    case Opcode::kEbreak:
      RaiseTrap(isa::TrapCause::kBreakpoint, pc_);
      stats_.cycles += cycles + 1;
      if (profiling) {
        trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                   cycles + 1);
      }
      return StepEvent::kTrap;
    case Opcode::kFence:
      writes_rd = false;
      break;
  }

  if (writes_rd && inst.rd != 0) regs_[inst.rd] = rd_value;
  pc_ = new_pc;
  stats_.cycles += cycles + 1;
  ++stats_.instructions;
  // Lean mode is only entered with kInstruction events masked and the
  // profiler off, so this whole tail is statically dead there.
  if (!kLean && trace_ != nullptr) {
    if (profiling) {
      // A ld.ro's own execution cycles form the "roload_load" bucket —
      // the direct cost of the checked-load path (Fig 3/4 decomposition).
      trace_->profiler().EndStep(isa::IsRoLoad(inst.op)
                                     ? trace::CycleBucket::kRoLoadLoad
                                     : trace::CycleBucket::kCompute,
                                 step_pc, cycles + 1);
    }
    if (trace_->enabled(trace::EventCategory::kInstruction)) {
      trace_->Emit(trace::Unit::kCpu, trace::EventCategory::kInstruction,
                   trace::EventType::kRetire, step_pc, 0,
                   static_cast<std::uint64_t>(inst.op));
    }
  }
  return StepEvent::kRetired;
}

bool Cpu::TranslationTransparent() const {
  if (translator_ == nullptr) return false;
  // A per-retire hook, the cycle profiler, or per-instruction retire
  // events all observe individual fetch/decode steps — interpret so they
  // see exactly the reference stream. TLB/cache/roload event categories
  // stay exact under translation (hits emit no events; misses and the
  // whole data side run the real paths), so they do not deopt.
  if (trace_hook_) return false;
  if (trace_ != nullptr &&
      (trace_->profiling() ||
       trace_->enabled(trace::EventCategory::kInstruction))) {
    return false;
  }
  return true;
}

StepEvent Cpu::Run(std::uint64_t budget) {
  if (budget == 0) budget = 1;
  const std::uint64_t target = stats_.instructions + budget;
  if (!TranslationTransparent()) {
    while (true) {
      const StepEvent event = Step();
      if (event != StepEvent::kRetired || stats_.instructions >= target) {
        return event;
      }
    }
  }
  // Translated hot loop: chained block -> block, falling back to the map,
  // the builder, and finally single-step interpretation (which performs
  // any real TLB/cache miss the guards refused to replay).
  TranslatedBlock* prev = nullptr;
  while (true) {
    TranslatedBlock* block =
        prev != nullptr ? prev->ChainLookup(pc_, root_ppn_) : nullptr;
    if (block != nullptr) {
      ++translator_->stats().chained_entries;
    } else {
      // Visit-count gate before the map: the direct-mapped counter is a
      // fraction of the hash lookup's cost, and a block can only exist
      // for a pc that crossed the threshold. Aliasing in the counter
      // table can evict a hot pc's count; that merely re-warms the pc
      // through the interpreter for a few steps — the map is consulted
      // again as soon as the count returns, never a correctness issue.
      if (translator_->NoteVisit(root_ppn_, pc_)) {
        block = translator_->Lookup(root_ppn_, pc_);
        if (block == nullptr) {
          if (translator_->AtCapacity()) {
            // Frees every block; drop the chain source before it dangles.
            translator_->InvalidateAll();
            prev = nullptr;
          }
          block = BuildBlock();
        }
        if (block != nullptr && prev != nullptr) {
          prev->ChainInstall(pc_, block);
        }
      }
    }
    StepEvent event;
    if (block != nullptr && BlockGuardsPass(block)) {
      ++translator_->stats().block_entries;
      event = ExecuteBlock(block, target);
      prev = block->dead ? nullptr : block;
    } else {
      event = Step();
      prev = nullptr;
    }
    if (event != StepEvent::kRetired || stats_.instructions >= target) {
      return event;
    }
  }
}

TranslatedBlock* Cpu::BuildBlock() {
  if ((pc_ & 1) != 0) return nullptr;
  tlb::Tlb::Entry* entry = itlb_.Probe(root_ppn_, pc_);
  if (entry == nullptr) return nullptr;
  if (!entry->pte.executable() || !entry->pte.user()) return nullptr;
  auto block = std::make_unique<TranslatedBlock>();
  block->head_pc = pc_;
  block->root_ppn = root_ppn_;
  block->vpn = pc_ >> mem::kPageShift;
  block->pte_raw = entry->pte.raw();
  block->phys_page = entry->phys_page;
  block->itlb_entry = entry;
  std::uint64_t vpc = pc_;
  while (block->ops.size() < config_.translate_max_ops) {
    if ((vpc >> mem::kPageShift) != block->vpn) break;  // page end
    const std::uint64_t phys =
        (block->phys_page << mem::kPageShift) | (vpc & (mem::kPageSize - 1));
    if (!memory_->Contains(phys, 2)) break;
    std::uint32_t raw =
        static_cast<std::uint32_t>(memory_->ReadUnchecked(phys, 2));
    const unsigned length = isa::ParcelLength(static_cast<std::uint16_t>(raw));
    if (length == 4) {
      // A page-straddling fetch takes the interpreter's two-translation
      // path; blocks simply stop before it.
      if (((vpc + 2) & (mem::kPageSize - 1)) == 0) break;
      if (!memory_->Contains(phys + 2, 2)) break;
      raw |= static_cast<std::uint32_t>(memory_->ReadUnchecked(phys + 2, 2))
             << 16;
    }
    auto decoded = isa::Decode(raw);
    if (!decoded) break;
    if (!config_.roload_enabled && isa::IsRoLoad(decoded->op)) break;
    cache::Cache::Line* line = icache_.Probe(phys);
    if (line == nullptr) break;  // not resident yet; interpreting warms it
    // Dedup line guards by identity: Probe returning the same way for two
    // addresses proves they share one cache line.
    std::uint32_t line_index = 0;
    for (; line_index < block->lines.size(); ++line_index) {
      if (block->lines[line_index].line == line) break;
    }
    if (line_index == block->lines.size()) {
      block->lines.push_back(LineGuard{line, phys, icache_.TagOf(phys)});
    }
    TranslatedOp op;
    op.inst = *decoded;
    op.pc = vpc;
    op.fetch_phys = phys;
    op.line_index = line_index;
    op.is_store = IsStoreOp(decoded->op);
    if (op.is_store) {
      op.mem_bytes = static_cast<std::uint8_t>(isa::MemAccessBytes(decoded->op));
    } else {
      switch (decoded->op) {
        case isa::Opcode::kLb:
        case isa::Opcode::kLh:
        case isa::Opcode::kLw:
        case isa::Opcode::kLd:
        case isa::Opcode::kLbu:
        case isa::Opcode::kLhu:
        case isa::Opcode::kLwu:
          op.mem_bytes =
              static_cast<std::uint8_t>(isa::MemAccessBytes(decoded->op));
          op.load_unsigned = isa::LoadIsUnsigned(decoded->op);
          break;
        case isa::Opcode::kLbRo:
        case isa::Opcode::kLhRo:
        case isa::Opcode::kLwRo:
        case isa::Opcode::kLdRo:
        case isa::Opcode::kCLdRo:
          op.mem_bytes =
              static_cast<std::uint8_t>(isa::MemAccessBytes(decoded->op));
          op.load_unsigned = isa::LoadIsUnsigned(decoded->op);
          op.is_roload = true;
          break;
        default:
          break;
      }
    }
    block->ops.push_back(op);
    vpc += decoded->length;
    if (EndsBlock(decoded->op)) break;
  }
  if (block->ops.empty()) return nullptr;
  code_table_ptr_->MarkCode(block->phys_page);
  block->code_version = code_table_ptr_->Version(block->phys_page);
  return translator_->Insert(std::move(block));
}

bool Cpu::BlockGuardsPass(TranslatedBlock* block) {
  // Epoch fast path: the full guard set below was proven at valid_epoch,
  // and the epoch advances on every event that could invalidate any guard
  // (interpreted step, TLB flush/shootdown, code-page write, root switch;
  // Retire resets valid_epoch to 0). Same epoch ⟹ same proof holds.
  if (block->valid_epoch == code_table_ptr_->guard_epoch()) return true;
  if (block->dead || block->root_ppn != root_ppn_) {
    ++translator_->stats().guard_fails;
    return false;
  }
  tlb::Tlb::Entry* entry = block->itlb_entry;
  if (!(entry->valid && entry->vpn == block->vpn &&
        entry->asid_root == block->root_ppn &&
        entry->pte.raw() == block->pte_raw &&
        entry->phys_page == block->phys_page)) {
    // The pinned entry no longer covers the page. It may simply have been
    // refilled into another slot after a flush — re-pin it.
    entry = itlb_.Probe(block->root_ppn, block->head_pc);
    if (entry == nullptr) {
      // Genuine TLB miss: deopt so the interpreter takes the real miss.
      ++translator_->stats().guard_fails;
      return false;
    }
    if (entry->pte.raw() != block->pte_raw ||
        entry->phys_page != block->phys_page) {
      // Remapped or re-keyed: the decoded bytes/permissions are stale.
      translator_->Retire(block);
      ++translator_->stats().guard_fails;
      return false;
    }
    block->itlb_entry = entry;
  }
  if (code_table_ptr_->Version(block->phys_page) != block->code_version) {
    translator_->Retire(block);  // self- or cross-hart-modified code
    ++translator_->stats().guard_fails;
    return false;
  }
  for (LineGuard& guard : block->lines) {
    if (guard.line->valid && guard.line->tag == guard.tag) continue;
    cache::Cache::Line* line = icache_.Probe(guard.phys);
    if (line == nullptr) {
      // Evicted: deopt so the interpreter performs the real refill.
      ++translator_->stats().guard_fails;
      return false;
    }
    guard.line = line;
  }
  block->valid_epoch = code_table_ptr_->guard_epoch();
  return true;
}

// The threaded micro-op executor. Pre-decoded ops dispatch through one
// compact switch whose hot cases (ALU, branches, plain loads/stores)
// inline the exact computation ExecuteDecodedImpl performs for the same
// opcode, with the per-op bookkeeping batched:
//
//   * fetch side — every replayed op is one I-TLB hit plus one I-cache
//     hit, and nothing inside the run touches either structure (data
//     accesses go to the D-side, traps/ecalls end the run): stamp each
//     line's final LRU tick in the loop, commit counts/hints once at the
//     end;
//   * retire side — each fast op costs (fetch_cycles + 1) cycles plus
//     per-op extras (mul/div latency, taken branches, D-TLB walk and
//     D-cache miss cycles) and retires one instruction; the sums land in
//     stats_ at exit. Counter updates are pure +=, so batching commutes
//     and the committed totals are bit-identical to per-op updates.
//
// pc_ is materialized lazily (fast ops never read it; kAuipc and branch
// targets use the pre-decoded op.pc) and synced before anything that
// observes it: the generic-op fallback, trap delivery, and block exit.
// Ops outside the fast set — ld.ro (key-check counters + roload_check
// event stream), ecall/ebreak, and any future opcode — run through the
// unmodified ExecuteDecodedImpl<true>, which does its own accounting.
// Plain loads and stores use per-site inline caches (TranslatedOp memos)
// validated against the live D-TLB entry / D-cache line before replaying
// the exact reference hit mutations.
StepEvent Cpu::ExecuteBlock(TranslatedBlock* block, std::uint64_t target) {
  TranslatedOp* ops = block->ops.data();  // non-const: per-site memo re-arming
  const LineGuard* lines = block->lines.data();
  const std::size_t count = block->ops.size();
  const std::uint64_t icache_base = icache_.replay_base();
  const unsigned fetch_cycles = config_.icache.hit_cycles;
  // Run() only enters with instructions < target, so remaining >= 1.
  const std::uint64_t remaining = target - stats_.instructions;
  const std::size_t limit =
      remaining < count ? static_cast<std::size_t>(remaining) : count;

  std::uint64_t fast_ops = 0;      // ops retired by the fast cases below
  std::uint64_t extra_cycles = 0;  // their cycles beyond (fetch_cycles + 1)
  std::size_t done = 0;            // ops whose fetch replayed (incl. traps)
  std::uint64_t next_pc = pc_;     // architectural pc after the last op
  StepEvent result = StepEvent::kRetired;
  // Hoisted hot members: the inline memory ops below store through
  // byte/line/entry pointers the compiler must assume alias `this`, so
  // reading these once keeps every later use a register instead of a
  // reload. All are loop-invariant (no op mutates them; a store that
  // remaps pages can only do so via a trap, which exits the run).
  const std::uint64_t root = root_ppn_;
  const bool unchecked_mem = config_.host_unchecked_mem;
  mem::PhysMemory* const memory = memory_;
  CodeVersionTable* const code_table = code_table_ptr_;
  // ld.ro with the kRoLoad event category live must emit one kRoLoadCheck
  // event per executed site with the site pc — exactly what the reference
  // executor does — so those ops take the generic fallback below.
  const bool ro_generic =
      trace_ != nullptr && trace_->enabled(trace::EventCategory::kRoLoad);

  // Batched D-side hit bookkeeping (see Tlb/Cache ReplaySiteHitAt): site
  // hits stamp LRU ticks from a base read when the batch opens and commit
  // hit counts + tick advances in bulk. Any generic lookup would observe
  // the shared tick, so the batch is flushed first (after which the next
  // site hit re-reads the base).
  // The bases are re-read after every generic lookup/access (which bumps
  // the shared tick behind the batch's back), so a stamp is always
  // base + 1-based index with no per-hit branch.
  std::uint64_t dtlb_pending = 0;
  std::uint64_t dtlb_base = dtlb_.replay_base();
  std::uint64_t dc_pending = 0;
  std::uint64_t dc_base = dcache_.replay_base();
  auto flush_mem = [&] {
    if (dtlb_pending != 0) {
      dtlb_.CommitReplayBatch(dtlb_pending);
      dtlb_pending = 0;
    }
    if (dc_pending != 0) {
      dcache_.CommitReplayBatch(dc_pending);
      dc_pending = 0;
    }
  };
  auto rearm_bases = [&] {
    dtlb_base = dtlb_.replay_base();
    dc_base = dcache_.replay_base();
  };

  // Trap from an inline memory op: the op's fetch replayed and its cycles
  // are charged, but it does not retire and pc stays at the faulting
  // instruction — exactly the reference MemAccess-failure path.
  auto trap_exit = [&](std::size_t idx, isa::TrapCause cause,
                       std::uint64_t tval, unsigned cycles) {
    RaiseTrap(cause, tval);
    stats_.cycles += cycles + 1;
    done = idx + 1;
    next_pc = ops[idx].pc;
    result = StepEvent::kTrap;
  };

  for (std::size_t i = 0; i < limit; ++i) {
    TranslatedOp& op = ops[i];
    lines[op.line_index].line->lru_tick = icache_base + i + 1;
    const isa::Instruction& inst = op.inst;
    const std::uint64_t rs1 = regs_[inst.rs1];
    const std::uint64_t rs2 = regs_[inst.rs2];
    std::uint64_t rd_value = 0;
    using isa::Opcode;
    switch (inst.op) {
      case Opcode::kAddi:
        rd_value = rs1 + static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::kSlti:
        rd_value = static_cast<std::int64_t>(rs1) < inst.imm ? 1 : 0;
        break;
      case Opcode::kSltiu:
        rd_value = rs1 < static_cast<std::uint64_t>(inst.imm) ? 1 : 0;
        break;
      case Opcode::kXori:
        rd_value = rs1 ^ static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::kOri:
        rd_value = rs1 | static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::kAndi:
        rd_value = rs1 & static_cast<std::uint64_t>(inst.imm);
        break;
      case Opcode::kSlli:
        rd_value = rs1 << (inst.imm & 63);
        break;
      case Opcode::kSrli:
        rd_value = rs1 >> (inst.imm & 63);
        break;
      case Opcode::kSrai:
        rd_value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rs1) >> (inst.imm & 63));
        break;
      case Opcode::kAddiw:
        rd_value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(
                rs1 + static_cast<std::uint64_t>(inst.imm))));
        break;
      case Opcode::kSlliw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1 << (inst.imm & 31))));
        break;
      case Opcode::kSrliw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                      (inst.imm & 31))));
        break;
      case Opcode::kSraiw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1) >> (inst.imm & 31)));
        break;
      case Opcode::kAdd:
        rd_value = rs1 + rs2;
        break;
      case Opcode::kSub:
        rd_value = rs1 - rs2;
        break;
      case Opcode::kSll:
        rd_value = rs1 << (rs2 & 63);
        break;
      case Opcode::kSlt:
        rd_value =
            static_cast<std::int64_t>(rs1) < static_cast<std::int64_t>(rs2)
                ? 1
                : 0;
        break;
      case Opcode::kSltu:
        rd_value = rs1 < rs2 ? 1 : 0;
        break;
      case Opcode::kXor:
        rd_value = rs1 ^ rs2;
        break;
      case Opcode::kSrl:
        rd_value = rs1 >> (rs2 & 63);
        break;
      case Opcode::kSra:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1) >>
                                              (rs2 & 63));
        break;
      case Opcode::kOr:
        rd_value = rs1 | rs2;
        break;
      case Opcode::kAnd:
        rd_value = rs1 & rs2;
        break;
      case Opcode::kAddw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1 + rs2)));
        break;
      case Opcode::kSubw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1 - rs2)));
        break;
      case Opcode::kSllw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1 << (rs2 & 31))));
        break;
      case Opcode::kSrlw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                      (rs2 & 31))));
        break;
      case Opcode::kSraw:
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1) >> (rs2 & 31)));
        break;
      case Opcode::kMul:
        extra_cycles += config_.mul_cycles;
        rd_value = rs1 * rs2;
        break;
      case Opcode::kMulw:
        extra_cycles += config_.mul_cycles;
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1 * rs2)));
        break;
      case Opcode::kDiv: {
        extra_cycles += config_.div_cycles;
        const auto a = static_cast<std::int64_t>(rs1);
        const auto b = static_cast<std::int64_t>(rs2);
        if (b == 0) {
          rd_value = ~std::uint64_t{0};
        } else if (a == INT64_MIN && b == -1) {
          rd_value = rs1;
        } else {
          rd_value = static_cast<std::uint64_t>(a / b);
        }
        break;
      }
      case Opcode::kDivu:
        extra_cycles += config_.div_cycles;
        rd_value = rs2 == 0 ? ~std::uint64_t{0} : rs1 / rs2;
        break;
      case Opcode::kRem: {
        extra_cycles += config_.div_cycles;
        const auto a = static_cast<std::int64_t>(rs1);
        const auto b = static_cast<std::int64_t>(rs2);
        if (b == 0) {
          rd_value = rs1;
        } else if (a == INT64_MIN && b == -1) {
          rd_value = 0;
        } else {
          rd_value = static_cast<std::uint64_t>(a % b);
        }
        break;
      }
      case Opcode::kRemu:
        extra_cycles += config_.div_cycles;
        rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
        break;
      case Opcode::kDivw: {
        extra_cycles += config_.div_cycles;
        const auto a = static_cast<std::int32_t>(rs1);
        const auto b = static_cast<std::int32_t>(rs2);
        std::int32_t q;
        if (b == 0) {
          q = -1;
        } else if (a == INT32_MIN && b == -1) {
          q = a;
        } else {
          q = a / b;
        }
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
        break;
      }
      case Opcode::kRemw: {
        extra_cycles += config_.div_cycles;
        const auto a = static_cast<std::int32_t>(rs1);
        const auto b = static_cast<std::int32_t>(rs2);
        std::int32_t r;
        if (b == 0) {
          r = a;
        } else if (a == INT32_MIN && b == -1) {
          r = 0;
        } else {
          r = a % b;
        }
        rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
        break;
      }
      case Opcode::kLui:
        rd_value = static_cast<std::uint64_t>(inst.imm << 12);
        break;
      case Opcode::kAuipc:
        rd_value = op.pc + static_cast<std::uint64_t>(inst.imm << 12);
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        ++stats_.branches;
        bool taken = false;
        switch (inst.op) {
          case Opcode::kBeq:
            taken = rs1 == rs2;
            break;
          case Opcode::kBne:
            taken = rs1 != rs2;
            break;
          case Opcode::kBlt:
            taken = static_cast<std::int64_t>(rs1) <
                    static_cast<std::int64_t>(rs2);
            break;
          case Opcode::kBge:
            taken = static_cast<std::int64_t>(rs1) >=
                    static_cast<std::int64_t>(rs2);
            break;
          case Opcode::kBltu:
            taken = rs1 < rs2;
            break;
          case Opcode::kBgeu:
            taken = rs1 >= rs2;
            break;
          default:
            break;
        }
        std::uint64_t branch_pc = op.pc + inst.length;
        if (taken) {
          ++stats_.taken_branches;
          extra_cycles += config_.taken_branch_cycles;
          branch_pc = op.pc + static_cast<std::uint64_t>(inst.imm);
        }
        ++fast_ops;
        if (i + 1 < count && branch_pc == ops[i + 1].pc) continue;
        done = i + 1;
        next_pc = branch_pc;
        goto exit;  // diverged from the superblock (or block end)
      }
      case Opcode::kJal:
        // Unconditional transfers end the superblock; retire inline and
        // exit. The link register is written after the target is formed
        // so jalr with rd == rs1 reads the pre-link value, exactly as the
        // reference executor does.
        if (inst.rd != 0) regs_[inst.rd] = op.pc + inst.length;
        extra_cycles += config_.taken_branch_cycles;
        ++fast_ops;
        done = i + 1;
        next_pc = op.pc + static_cast<std::uint64_t>(inst.imm);
        goto exit;
      case Opcode::kJalr: {
        const std::uint64_t jalr_target =
            (rs1 + static_cast<std::uint64_t>(inst.imm)) & ~std::uint64_t{1};
        if (inst.rd != 0) regs_[inst.rd] = op.pc + inst.length;
        extra_cycles += config_.taken_branch_cycles;
        ++stats_.indirect_jumps;
        ++fast_ops;
        done = i + 1;
        next_pc = jalr_target;
        goto exit;
      }
      case Opcode::kLb:
      case Opcode::kLh:
      case Opcode::kLw:
      case Opcode::kLd:
      case Opcode::kLbu:
      case Opcode::kLhu:
      case Opcode::kLwu: {
        const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
        ++stats_.loads;
        unsigned mem_cycles = 0;  // D-TLB walk + D-cache cycles beyond fetch
        const unsigned bytes = op.mem_bytes;
        if ((addr & (bytes - 1)) != 0) {
          trap_exit(i, isa::TrapCause::kLoadAddressMisaligned, addr,
                    fetch_cycles);
          goto exit;
        }
        // Site-cached translation: re-prove the memoized entry (tag and
        // permission bits — side-effect-free reads, so checking them up
        // front commutes with the reference order) and replay the hit;
        // otherwise run the generic lookup and re-arm the memo.
        std::uint64_t phys;
        tlb::Tlb::Entry* te = op.dtlb_memo;
        if (te != nullptr && te->valid &&
            te->vpn == (addr >> mem::kPageShift) && te->asid_root == root &&
            te->pte.readable() && te->pte.user()) {
          dtlb_.ReplaySiteHitAt<tlb::AccessType::kLoad>(
              te, dtlb_base + ++dtlb_pending);
          phys = (te->phys_page << mem::kPageShift) +
                 (addr & (mem::kPageSize - 1));
        } else {
          flush_mem();
          const auto xlat = dtlb_.TranslateFor<tlb::AccessType::kLoad>(
              root, addr, inst.key);
          op.dtlb_memo = dtlb_.site_hint(tlb::AccessType::kLoad);
          dtlb_base = dtlb_.replay_base();
          mem_cycles += xlat.cycles;
          if (!xlat.ok) {
            trap_exit(i, xlat.cause, addr, fetch_cycles + mem_cycles);
            goto exit;
          }
          phys = xlat.phys_addr;
        }
        if (!memory->Contains(phys, bytes)) {
          trap_exit(i, isa::TrapCause::kLoadAccessFault, addr,
                    fetch_cycles + mem_cycles);
          goto exit;
        }
        const std::uint64_t line_addr = dcache_.LineAddrOf(phys);
        cache::Cache::Line* dl = op.dline_memo;
        if (dl != nullptr && line_addr == op.dline_addr && dl->valid &&
            dl->tag == op.dline_tag) {
          mem_cycles += dcache_.ReplayDataHitAt(dl, line_addr,
                                                /*write=*/false,
                                                dc_base + ++dc_pending);
        } else {
          flush_mem();
          mem_cycles += dcache_.Access(phys, /*write=*/false);
          op.dline_memo = dcache_.site_hint();
          op.dline_addr = line_addr;
          op.dline_tag = dcache_.TagOf(phys);
          dc_base = dcache_.replay_base();
        }
        std::uint64_t raw = unchecked_mem
                                ? memory->ReadUncheckedWidth(phys, bytes)
                                : memory->Read(phys, bytes);
        if (!op.load_unsigned && bytes < 8) {
          raw = static_cast<std::uint64_t>(SignExtend(raw, bytes * 8));
        }
        if (inst.rd != 0) regs_[inst.rd] = raw;
        ++fast_ops;
        extra_cycles += mem_cycles;
        continue;
      }
      case Opcode::kLbRo:
      case Opcode::kLhRo:
      case Opcode::kLwRo:
      case Opcode::kLdRo:
      case Opcode::kCLdRo: {
        if (ro_generic) {
          goto generic_op;  // event stream live: reference path emits it
        }
        // ROLoad-family addresses are (rs1) with no offset; inst.imm is 0
        // by decode construction. The key-checked permission datapath
        // runs *after* the hit stamp (reference order) and exactly once
        // per executed site — it mutates the key-check census.
        const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
        ++stats_.loads;
        ++stats_.roload_loads;
        unsigned mem_cycles = 0;
        const unsigned bytes = op.mem_bytes;
        if ((addr & (bytes - 1)) != 0) {
          trap_exit(i, isa::TrapCause::kLoadAddressMisaligned, addr,
                    fetch_cycles);
          goto exit;
        }
        std::uint64_t phys;
        tlb::Tlb::Entry* te = op.dtlb_memo;
        if (te != nullptr && te->valid &&
            te->vpn == (addr >> mem::kPageShift) && te->asid_root == root) {
          dtlb_.ReplaySiteHitAt<tlb::AccessType::kRoLoad>(
              te, dtlb_base + ++dtlb_pending);
          tlb::RoLoadFailKind fail_kind = tlb::RoLoadFailKind::kNone;
          if (auto cause =
                  dtlb_.RoSitePermissions(te->pte, inst.key, &fail_kind)) {
            // EmitRoLoadFault is structurally disabled here (ro_generic
            // tested the same predicate above), so skipping it is exact;
            // the trap itself is the reference failure path.
            trap_exit(i, *cause, addr, fetch_cycles);
            goto exit;
          }
          phys = (te->phys_page << mem::kPageShift) +
                 (addr & (mem::kPageSize - 1));
        } else {
          flush_mem();
          const auto xlat = dtlb_.TranslateFor<tlb::AccessType::kRoLoad>(
              root, addr, inst.key);
          op.dtlb_memo = dtlb_.site_hint(tlb::AccessType::kRoLoad);
          dtlb_base = dtlb_.replay_base();
          mem_cycles += xlat.cycles;
          if (!xlat.ok) {
            trap_exit(i, xlat.cause, addr, fetch_cycles + mem_cycles);
            goto exit;
          }
          phys = xlat.phys_addr;
        }
        if (!memory->Contains(phys, bytes)) {
          trap_exit(i, isa::TrapCause::kLoadAccessFault, addr,
                    fetch_cycles + mem_cycles);
          goto exit;
        }
        const std::uint64_t line_addr = dcache_.LineAddrOf(phys);
        cache::Cache::Line* dl = op.dline_memo;
        if (dl != nullptr && line_addr == op.dline_addr && dl->valid &&
            dl->tag == op.dline_tag) {
          mem_cycles += dcache_.ReplayDataHitAt(dl, line_addr,
                                                /*write=*/false,
                                                dc_base + ++dc_pending);
        } else {
          flush_mem();
          mem_cycles += dcache_.Access(phys, /*write=*/false);
          op.dline_memo = dcache_.site_hint();
          op.dline_addr = line_addr;
          op.dline_tag = dcache_.TagOf(phys);
          dc_base = dcache_.replay_base();
        }
        std::uint64_t raw = unchecked_mem
                                ? memory->ReadUncheckedWidth(phys, bytes)
                                : memory->Read(phys, bytes);
        if (!op.load_unsigned && bytes < 8) {
          raw = static_cast<std::uint64_t>(SignExtend(raw, bytes * 8));
        }
        if (inst.rd != 0) regs_[inst.rd] = raw;
        ++fast_ops;
        extra_cycles += mem_cycles;
        continue;
      }
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw:
      case Opcode::kSd: {
        const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
        ++stats_.stores;
        unsigned mem_cycles = 0;  // D-TLB walk + D-cache cycles beyond fetch
        const unsigned bytes = op.mem_bytes;
        if ((addr & (bytes - 1)) != 0) {
          trap_exit(i, isa::TrapCause::kStoreAddressMisaligned, addr,
                    fetch_cycles);
          goto exit;
        }
        std::uint64_t phys;
        tlb::Tlb::Entry* te = op.dtlb_memo;
        if (te != nullptr && te->valid &&
            te->vpn == (addr >> mem::kPageShift) && te->asid_root == root &&
            te->pte.writable() && te->pte.user()) {
          dtlb_.ReplaySiteHitAt<tlb::AccessType::kStore>(
              te, dtlb_base + ++dtlb_pending);
          phys = (te->phys_page << mem::kPageShift) +
                 (addr & (mem::kPageSize - 1));
        } else {
          flush_mem();
          const auto xlat = dtlb_.TranslateFor<tlb::AccessType::kStore>(
              root, addr, inst.key);
          op.dtlb_memo = dtlb_.site_hint(tlb::AccessType::kStore);
          dtlb_base = dtlb_.replay_base();
          mem_cycles += xlat.cycles;
          if (!xlat.ok) {
            trap_exit(i, xlat.cause, addr, fetch_cycles + mem_cycles);
            goto exit;
          }
          phys = xlat.phys_addr;
        }
        if (!memory->Contains(phys, bytes)) {
          trap_exit(i, isa::TrapCause::kStoreAccessFault, addr,
                    fetch_cycles + mem_cycles);
          goto exit;
        }
        const std::uint64_t line_addr = dcache_.LineAddrOf(phys);
        cache::Cache::Line* dl = op.dline_memo;
        if (dl != nullptr && line_addr == op.dline_addr && dl->valid &&
            dl->tag == op.dline_tag) {
          mem_cycles += dcache_.ReplayDataHitAt(dl, line_addr,
                                                /*write=*/true,
                                                dc_base + ++dc_pending);
        } else {
          flush_mem();
          mem_cycles += dcache_.Access(phys, /*write=*/true);
          op.dline_memo = dcache_.site_hint();
          op.dline_addr = line_addr;
          op.dline_tag = dcache_.TagOf(phys);
          dc_base = dcache_.replay_base();
        }
        if (unchecked_mem) {
          memory->WriteUncheckedWidth(phys, bytes, rs2);
        } else {
          memory->Write(phys, bytes, rs2);
        }
        code_table->OnWrite(phys);
        ++fast_ops;
        extra_cycles += mem_cycles;
        if (code_table->Version(block->phys_page) != block->code_version) {
          // The block stored into its own code page: everything executed
          // so far is exact, but the remaining decodes are stale. Stop at
          // this boundary; the next entry attempt rebuilds fresh.
          translator_->Retire(block);
          done = i + 1;
          next_pc = op.pc + inst.length;
          goto exit;
        }
        continue;
      }
      case Opcode::kFence:
        ++fast_ops;
        continue;
      default:
      generic_op: {
        // Generic micro-op (ecall/ebreak, ld.ro with the event stream
        // live): run the reference executor, which needs pc_ live, the
        // pending D-side batches flushed, and accounts for itself.
        flush_mem();
        pc_ = op.pc;
        const StepEvent event = ExecuteDecodedImpl<true>(inst, fetch_cycles);
        rearm_bases();  // its data access moved the shared ticks
        if (event != StepEvent::kRetired) {
          result = event;  // trap or ecall: the op (and its fetch) happened
          done = i + 1;
          next_pc = pc_;
          goto exit;
        }
        if (i + 1 < count && pc_ != ops[i + 1].pc) {
          done = i + 1;
          next_pc = pc_;
          goto exit;
        }
        continue;
      }
    }
    // Shared ALU retire tail (cases that `break` out of the switch).
    if (inst.rd != 0) regs_[inst.rd] = rd_value;
    ++fast_ops;
  }
  // Loop exhausted (block end or budget): every `continue` path above left
  // the architectural pc at the straight-line successor of the op it
  // executed — a branch or generic op only continues when its target
  // equals the next op's pc, which for consecutive decodes is pc + length.
  done = limit;
  {
    const TranslatedOp& last_op = ops[limit - 1];
    next_pc = last_op.pc + last_op.inst.length;
  }
exit:
  if (fast_ops != 0) {
    stats_.instructions += fast_ops;
    stats_.cycles += fast_ops * (fetch_cycles + 1) + extra_cycles;
  }
  flush_mem();
  pc_ = next_pc;
  if (done != 0) {
    itlb_.ReplayFetchHits(block->itlb_entry, done);
    icache_.CommitReplayBatch(done);
    const TranslatedOp& last = ops[done - 1];
    icache_.ReplayHint(lines[last.line_index].line, last.fetch_phys);
    translator_->stats().ops_replayed += done;
  }
  return result;
}

bool Cpu::DebugReadVirt(std::uint64_t virt_addr, unsigned bytes,
                        std::uint64_t* value) {
  mem::PageWalker walker(memory_);
  auto walk = walker.Walk(root_ppn_, virt_addr);
  if (!walk || !memory_->Contains(walk->phys_addr, bytes)) return false;
  *value = memory_->Read(walk->phys_addr, bytes);
  return true;
}

bool Cpu::DebugWriteVirt(std::uint64_t virt_addr, unsigned bytes,
                         std::uint64_t value) {
  mem::PageWalker walker(memory_);
  auto walk = walker.Walk(root_ppn_, virt_addr);
  if (!walk || !memory_->Contains(walk->phys_addr, bytes)) return false;
  memory_->Write(walk->phys_addr, bytes, value);
  if (code_table_ptr_ != nullptr) {
    // Debug/attack writes need not be size-aligned; cover both end pages.
    code_table_ptr_->OnWrite(walk->phys_addr);
    code_table_ptr_->OnWrite(walk->phys_addr + bytes - 1);
  }
  return true;
}

}  // namespace roload::cpu
