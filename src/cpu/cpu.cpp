#include "cpu/cpu.h"

#include "support/bits.h"
#include "support/status.h"

namespace roload::cpu {
namespace {

std::uint64_t MulHigh(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

}  // namespace

void SetHostFastPaths(CpuConfig* config, bool enabled) {
  config->host_decode_cache = enabled;
  config->icache.host_fast_path = enabled;
  config->dcache.host_fast_path = enabled;
  config->itlb.host_indexed_lookup = enabled;
  config->dtlb.host_indexed_lookup = enabled;
  config->host_unchecked_mem = enabled;
}

Cpu::Cpu(const CpuConfig& config, mem::PhysMemory* memory)
    : config_(config),
      memory_(memory),
      icache_(config.icache),
      dcache_(config.dcache),
      itlb_(config.itlb, memory),
      dtlb_(config.dtlb, memory) {
  if (config.host_decode_cache) decode_cache_.resize(kDecodeCacheSlots);
}

void Cpu::set_reg(unsigned index, std::uint64_t value) {
  ROLOAD_CHECK(index < isa::kNumRegs);
  if (index != 0) regs_[index] = value;
}

void Cpu::FlushTlbs() {
  itlb_.Flush();
  dtlb_.Flush();
  // The sfence.vma analogue also drops host-cached decodes: a remap can
  // change the bytes behind an unchanged pc, and a same-bytes remap must
  // not resurrect a decode taken under dropped translations.
  InvalidateDecodeCache();
}

void Cpu::InvalidateDecodeCache() {
  if (++decode_generation_ == 0) {
    // Generation wrapped: scrub the slots so pre-wrap entries can never
    // alias the restarted counter.
    for (DecodeSlot& slot : decode_cache_) slot = DecodeSlot{};
    decode_generation_ = 1;
  }
}

void Cpu::set_trace(trace::Hub* hub) {
  trace_ = hub;
  itlb_.set_trace(hub, trace::Unit::kITlb);
  dtlb_.set_trace(hub, trace::Unit::kDTlb);
  icache_.set_trace(hub, trace::Unit::kICache);
  dcache_.set_trace(hub, trace::Unit::kDCache);
}

void Cpu::ResetStats() {
  stats_ = CpuStats{};
  itlb_.ResetStats();
  dtlb_.ResetStats();
  icache_.ResetStats();
  dcache_.ResetStats();
}

void Cpu::RaiseTrap(isa::TrapCause cause, std::uint64_t tval) {
  pending_trap_ = isa::Trap{cause, tval};
}

bool Cpu::FetchDecode(isa::Instruction* inst, unsigned* cycles) {
  if ((pc_ & 1) != 0) {
    RaiseTrap(isa::TrapCause::kInstructionAddressMisaligned, pc_);
    return false;
  }
  const bool profiling = trace_ != nullptr && trace_->profiling();
  auto low = itlb_.Translate(root_ppn_, pc_, tlb::AccessType::kFetch, 0);
  *cycles += low.cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kITlbWalk, low.cycles);
  }
  if (!low.ok) {
    RaiseTrap(low.cause, pc_);
    return false;
  }
  if (!memory_->Contains(low.phys_addr, 2)) {
    RaiseTrap(isa::TrapCause::kInstructionAccessFault, pc_);
    return false;
  }
  const unsigned ifetch_cycles = icache_.Access(low.phys_addr, /*write=*/false);
  *cycles += ifetch_cycles;
  if (profiling) {
    // The hit latency is part of ordinary execution; only the fill beyond
    // it is a miss stall.
    trace_->profiler().Charge(trace::CycleBucket::kICacheMiss,
                              ifetch_cycles - config_.icache.hit_cycles);
  }

  std::uint32_t raw = static_cast<std::uint32_t>(
      config_.host_unchecked_mem ? memory_->ReadUnchecked(low.phys_addr, 2)
                                 : memory_->Read(low.phys_addr, 2));
  const unsigned length = isa::ParcelLength(static_cast<std::uint16_t>(raw));
  if (length == 4) {
    // The upper half may live on the next page.
    std::uint64_t upper_phys = low.phys_addr + 2;
    if (((pc_ + 2) & (mem::kPageSize - 1)) == 0) {
      auto high =
          itlb_.Translate(root_ppn_, pc_ + 2, tlb::AccessType::kFetch, 0);
      *cycles += high.cycles;
      if (profiling) {
        trace_->profiler().Charge(trace::CycleBucket::kITlbWalk,
                                  high.cycles);
      }
      if (!high.ok) {
        RaiseTrap(high.cause, pc_ + 2);
        return false;
      }
      upper_phys = high.phys_addr;
      const unsigned upper_cycles =
          icache_.Access(upper_phys, /*write=*/false);
      *cycles += upper_cycles;
      if (profiling) {
        trace_->profiler().Charge(trace::CycleBucket::kICacheMiss,
                                  upper_cycles - config_.icache.hit_cycles);
      }
    }
    if (!memory_->Contains(upper_phys, 2)) {
      RaiseTrap(isa::TrapCause::kInstructionAccessFault, pc_);
      return false;
    }
    raw |= static_cast<std::uint32_t>(
               config_.host_unchecked_mem
                   ? memory_->ReadUnchecked(upper_phys, 2)
                   : memory_->Read(upper_phys, 2))
           << 16;
  }

  DecodeSlot* slot = nullptr;
  if (config_.host_decode_cache) {
    slot = &decode_cache_[(pc_ >> 1) & (kDecodeCacheSlots - 1)];
    if (slot->generation == decode_generation_ && slot->pc == pc_ &&
        slot->raw == raw) {
      *inst = slot->inst;
      return true;
    }
  }

  auto decoded = isa::Decode(raw);
  if (!decoded) {
    RaiseTrap(isa::TrapCause::kIllegalInstruction, raw);
    return false;
  }
  // The unmodified baseline core has no ROLoad decoder: the custom-0 and
  // reserved-RVC encodings are illegal instructions there.
  if (!config_.roload_enabled && isa::IsRoLoad(decoded->op)) {
    RaiseTrap(isa::TrapCause::kIllegalInstruction, raw);
    return false;
  }
  // Only successful decodes are cached, so the roload_enabled rejection
  // (fixed per Cpu) can never be skipped by a hit.
  if (slot != nullptr) {
    slot->pc = pc_;
    slot->raw = raw;
    slot->generation = decode_generation_;
    slot->inst = *decoded;
  }
  *inst = *decoded;
  return true;
}

bool Cpu::MemAccess(const isa::Instruction& inst, std::uint64_t virt_addr,
                    bool write, std::uint64_t* value, unsigned* cycles) {
  const unsigned bytes = isa::MemAccessBytes(inst.op);
  if ((virt_addr & (bytes - 1)) != 0) {
    RaiseTrap(write ? isa::TrapCause::kStoreAddressMisaligned
                    : isa::TrapCause::kLoadAddressMisaligned,
              virt_addr);
    return false;
  }
  const tlb::AccessType access =
      write ? tlb::AccessType::kStore
            : (isa::IsRoLoad(inst.op) ? tlb::AccessType::kRoLoad
                                      : tlb::AccessType::kLoad);
  const bool profiling = trace_ != nullptr && trace_->profiling();
  auto xlat = dtlb_.Translate(root_ppn_, virt_addr, access, inst.key);
  *cycles += xlat.cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kDTlbWalk, xlat.cycles);
  }
  if (access == tlb::AccessType::kRoLoad && trace_ != nullptr &&
      trace_->enabled(trace::EventCategory::kRoLoad)) {
    // Dispatch-census feed: one record per executed ld.ro site, pass or
    // fail, with the outcome packed over the static key (see
    // EventType::kRoLoadCheck). The CPU emits it (not the TLB) because
    // only the CPU knows the site pc.
    const std::uint64_t outcome =
        xlat.ok ? 0 : static_cast<std::uint64_t>(xlat.roload_fail_kind);
    trace_->Emit(trace::Unit::kCpu, trace::EventCategory::kRoLoad,
                 trace::EventType::kRoLoadCheck, pc_, virt_addr,
                 (outcome << 16) | inst.key);
  }
  if (!xlat.ok) {
    RaiseTrap(xlat.cause, virt_addr);
    return false;
  }
  if (!memory_->Contains(xlat.phys_addr, bytes)) {
    RaiseTrap(write ? isa::TrapCause::kStoreAccessFault
                    : isa::TrapCause::kLoadAccessFault,
              virt_addr);
    return false;
  }
  const unsigned dcache_cycles = dcache_.Access(xlat.phys_addr, write);
  *cycles += dcache_cycles;
  if (profiling) {
    trace_->profiler().Charge(trace::CycleBucket::kDCacheMiss,
                              dcache_cycles - config_.dcache.hit_cycles);
  }
  if (write) {
    if (config_.host_unchecked_mem) {
      memory_->WriteUnchecked(xlat.phys_addr, bytes, *value);
    } else {
      memory_->Write(xlat.phys_addr, bytes, *value);
    }
  } else {
    std::uint64_t raw = config_.host_unchecked_mem
                            ? memory_->ReadUnchecked(xlat.phys_addr, bytes)
                            : memory_->Read(xlat.phys_addr, bytes);
    if (!isa::LoadIsUnsigned(inst.op) && bytes < 8) {
      raw = static_cast<std::uint64_t>(
          SignExtend(raw, bytes * 8));
    }
    *value = raw;
  }
  return true;
}

StepEvent Cpu::Step() {
  isa::Instruction inst;
  unsigned cycles = 0;
  const bool profiling = trace_ != nullptr && trace_->profiling();
  const std::uint64_t step_pc = pc_;
  if (profiling) trace_->profiler().BeginStep();
  if (!FetchDecode(&inst, &cycles)) {
    stats_.cycles += cycles + 1;
    if (profiling) {
      trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                 cycles + 1);
    }
    return StepEvent::kTrap;
  }
  if (trace_hook_) trace_hook_(pc_, inst);

  const std::uint64_t next_pc = pc_ + inst.length;
  std::uint64_t new_pc = next_pc;
  const std::uint64_t rs1 = regs_[inst.rs1];
  const std::uint64_t rs2 = regs_[inst.rs2];
  std::uint64_t rd_value = 0;
  bool writes_rd = true;

  using isa::Opcode;
  switch (inst.op) {
    case Opcode::kAddi:
      rd_value = rs1 + static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kSlti:
      rd_value = static_cast<std::int64_t>(rs1) < inst.imm ? 1 : 0;
      break;
    case Opcode::kSltiu:
      rd_value = rs1 < static_cast<std::uint64_t>(inst.imm) ? 1 : 0;
      break;
    case Opcode::kXori:
      rd_value = rs1 ^ static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kOri:
      rd_value = rs1 | static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kAndi:
      rd_value = rs1 & static_cast<std::uint64_t>(inst.imm);
      break;
    case Opcode::kSlli:
      rd_value = rs1 << (inst.imm & 63);
      break;
    case Opcode::kSrli:
      rd_value = rs1 >> (inst.imm & 63);
      break;
    case Opcode::kSrai:
      rd_value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(rs1) >> (inst.imm & 63));
      break;
    case Opcode::kAddiw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 + static_cast<std::uint64_t>(inst.imm))));
      break;
    case Opcode::kSlliw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 << (inst.imm & 31))));
      break;
    case Opcode::kSrliw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                    (inst.imm & 31))));
      break;
    case Opcode::kSraiw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1) >> (inst.imm & 31)));
      break;
    case Opcode::kAdd:
      rd_value = rs1 + rs2;
      break;
    case Opcode::kSub:
      rd_value = rs1 - rs2;
      break;
    case Opcode::kSll:
      rd_value = rs1 << (rs2 & 63);
      break;
    case Opcode::kSlt:
      rd_value = static_cast<std::int64_t>(rs1) < static_cast<std::int64_t>(rs2)
                     ? 1
                     : 0;
      break;
    case Opcode::kSltu:
      rd_value = rs1 < rs2 ? 1 : 0;
      break;
    case Opcode::kXor:
      rd_value = rs1 ^ rs2;
      break;
    case Opcode::kSrl:
      rd_value = rs1 >> (rs2 & 63);
      break;
    case Opcode::kSra:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1) >>
                                            (rs2 & 63));
      break;
    case Opcode::kOr:
      rd_value = rs1 | rs2;
      break;
    case Opcode::kAnd:
      rd_value = rs1 & rs2;
      break;
    case Opcode::kAddw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 + rs2)));
      break;
    case Opcode::kSubw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 - rs2)));
      break;
    case Opcode::kSllw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 << (rs2 & 31))));
      break;
    case Opcode::kSrlw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1) >>
                                    (rs2 & 31))));
      break;
    case Opcode::kSraw:
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1) >> (rs2 & 31)));
      break;
    case Opcode::kMul:
      cycles += config_.mul_cycles;
      rd_value = rs1 * rs2;
      break;
    case Opcode::kMulw:
      cycles += config_.mul_cycles;
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(rs1 * rs2)));
      break;
    case Opcode::kDiv: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int64_t>(rs1);
      const auto b = static_cast<std::int64_t>(rs2);
      if (b == 0) {
        rd_value = ~std::uint64_t{0};
      } else if (a == INT64_MIN && b == -1) {
        rd_value = rs1;
      } else {
        rd_value = static_cast<std::uint64_t>(a / b);
      }
      break;
    }
    case Opcode::kDivu:
      cycles += config_.div_cycles;
      rd_value = rs2 == 0 ? ~std::uint64_t{0} : rs1 / rs2;
      break;
    case Opcode::kRem: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int64_t>(rs1);
      const auto b = static_cast<std::int64_t>(rs2);
      if (b == 0) {
        rd_value = rs1;
      } else if (a == INT64_MIN && b == -1) {
        rd_value = 0;
      } else {
        rd_value = static_cast<std::uint64_t>(a % b);
      }
      break;
    }
    case Opcode::kRemu:
      cycles += config_.div_cycles;
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      break;
    case Opcode::kDivw: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t q;
      if (b == 0) {
        q = -1;
      } else if (a == INT32_MIN && b == -1) {
        q = a;
      } else {
        q = a / b;
      }
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
      break;
    }
    case Opcode::kRemw: {
      cycles += config_.div_cycles;
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      std::int32_t r;
      if (b == 0) {
        r = a;
      } else if (a == INT32_MIN && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
      break;
    }
    case Opcode::kLui:
      rd_value = static_cast<std::uint64_t>(inst.imm << 12);
      break;
    case Opcode::kAuipc:
      rd_value = pc_ + static_cast<std::uint64_t>(inst.imm << 12);
      break;
    case Opcode::kJal:
      rd_value = next_pc;
      new_pc = pc_ + static_cast<std::uint64_t>(inst.imm);
      cycles += config_.taken_branch_cycles;
      break;
    case Opcode::kJalr:
      rd_value = next_pc;
      new_pc = (rs1 + static_cast<std::uint64_t>(inst.imm)) & ~std::uint64_t{1};
      cycles += config_.taken_branch_cycles;
      ++stats_.indirect_jumps;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      writes_rd = false;
      ++stats_.branches;
      bool taken = false;
      switch (inst.op) {
        case Opcode::kBeq:
          taken = rs1 == rs2;
          break;
        case Opcode::kBne:
          taken = rs1 != rs2;
          break;
        case Opcode::kBlt:
          taken = static_cast<std::int64_t>(rs1) <
                  static_cast<std::int64_t>(rs2);
          break;
        case Opcode::kBge:
          taken = static_cast<std::int64_t>(rs1) >=
                  static_cast<std::int64_t>(rs2);
          break;
        case Opcode::kBltu:
          taken = rs1 < rs2;
          break;
        case Opcode::kBgeu:
          taken = rs1 >= rs2;
          break;
        default:
          break;
      }
      if (taken) {
        ++stats_.taken_branches;
        new_pc = pc_ + static_cast<std::uint64_t>(inst.imm);
        cycles += config_.taken_branch_cycles;
      }
      break;
    }
    case Opcode::kLb:
    case Opcode::kLh:
    case Opcode::kLw:
    case Opcode::kLd:
    case Opcode::kLbu:
    case Opcode::kLhu:
    case Opcode::kLwu:
    case Opcode::kLbRo:
    case Opcode::kLhRo:
    case Opcode::kLwRo:
    case Opcode::kLdRo:
    case Opcode::kCLdRo: {
      // ROLoad-family addresses are (rs1) with no offset; inst.imm is 0 for
      // them by decode construction, so the same expression serves both.
      const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
      ++stats_.loads;
      if (isa::IsRoLoad(inst.op)) ++stats_.roload_loads;
      if (!MemAccess(inst, addr, /*write=*/false, &rd_value, &cycles)) {
        stats_.cycles += cycles + 1;
        if (profiling) {
          trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                     cycles + 1);
        }
        return StepEvent::kTrap;
      }
      break;
    }
    case Opcode::kSb:
    case Opcode::kSh:
    case Opcode::kSw:
    case Opcode::kSd: {
      writes_rd = false;
      ++stats_.stores;
      const std::uint64_t addr = rs1 + static_cast<std::uint64_t>(inst.imm);
      std::uint64_t value = rs2;
      if (!MemAccess(inst, addr, /*write=*/true, &value, &cycles)) {
        stats_.cycles += cycles + 1;
        if (profiling) {
          trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                     cycles + 1);
        }
        return StepEvent::kTrap;
      }
      break;
    }
    case Opcode::kEcall:
      stats_.cycles += cycles + 1;
      ++stats_.instructions;
      pc_ = next_pc;
      if (profiling) {
        trace_->profiler().EndStep(trace::CycleBucket::kSyscall, step_pc,
                                   cycles + 1);
      }
      return StepEvent::kEcall;
    case Opcode::kEbreak:
      RaiseTrap(isa::TrapCause::kBreakpoint, pc_);
      stats_.cycles += cycles + 1;
      if (profiling) {
        trace_->profiler().EndStep(trace::CycleBucket::kTrap, step_pc,
                                   cycles + 1);
      }
      return StepEvent::kTrap;
    case Opcode::kFence:
      writes_rd = false;
      break;
  }

  if (writes_rd && inst.rd != 0) regs_[inst.rd] = rd_value;
  pc_ = new_pc;
  stats_.cycles += cycles + 1;
  ++stats_.instructions;
  if (trace_ != nullptr) {
    if (profiling) {
      // A ld.ro's own execution cycles form the "roload_load" bucket —
      // the direct cost of the checked-load path (Fig 3/4 decomposition).
      trace_->profiler().EndStep(isa::IsRoLoad(inst.op)
                                     ? trace::CycleBucket::kRoLoadLoad
                                     : trace::CycleBucket::kCompute,
                                 step_pc, cycles + 1);
    }
    if (trace_->enabled(trace::EventCategory::kInstruction)) {
      trace_->Emit(trace::Unit::kCpu, trace::EventCategory::kInstruction,
                   trace::EventType::kRetire, step_pc, 0,
                   static_cast<std::uint64_t>(inst.op));
    }
  }
  return StepEvent::kRetired;
}

bool Cpu::DebugReadVirt(std::uint64_t virt_addr, unsigned bytes,
                        std::uint64_t* value) {
  mem::PageWalker walker(memory_);
  auto walk = walker.Walk(root_ppn_, virt_addr);
  if (!walk || !memory_->Contains(walk->phys_addr, bytes)) return false;
  *value = memory_->Read(walk->phys_addr, bytes);
  return true;
}

bool Cpu::DebugWriteVirt(std::uint64_t virt_addr, unsigned bytes,
                         std::uint64_t value) {
  mem::PageWalker walker(memory_);
  auto walk = walker.Walk(root_ppn_, virt_addr);
  if (!walk || !memory_->Contains(walk->phys_addr, bytes)) return false;
  memory_->Write(walk->phys_addr, bytes, value);
  return true;
}

}  // namespace roload::cpu
