// RV64 processor core model: in-order fetch/decode/execute with L1
// caches, I/D TLBs and the ROLoad extension. The core is the analogue of
// the modified Rocket Core: when `roload_enabled` is false the decoder
// rejects ROLoad-family encodings (illegal instruction), exactly like the
// unmodified baseline processor.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "cache/cache.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/registers.h"
#include "isa/traps.h"
#include "mem/phys_memory.h"
#include "tlb/tlb.h"
#include "trace/hub.h"

namespace roload::cpu {

struct CpuConfig {
  bool roload_enabled = true;
  cache::CacheConfig icache;
  cache::CacheConfig dcache;
  tlb::TlbConfig itlb;
  tlb::TlbConfig dtlb;
  unsigned mul_cycles = 3;
  unsigned div_cycles = 20;
  unsigned taken_branch_cycles = 1;  // redirect penalty
};

// What happened during one Step().
enum class StepEvent : std::uint8_t {
  kRetired,  // one instruction retired normally
  kTrap,     // a trap is pending (see pending_trap())
  kEcall,    // environment call; kernel services it then calls AckEcall()
};

struct CpuStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t roload_loads = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t indirect_jumps = 0;
};

class Cpu {
 public:
  Cpu(const CpuConfig& config, mem::PhysMemory* memory);

  // Architectural state.
  std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }
  std::uint64_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, std::uint64_t value);

  // Address translation root (satp.PPN analogue). The kernel sets this on
  // process switch and must FlushTlbs() after page-table edits.
  void set_root_ppn(std::uint64_t root_ppn) { root_ppn_ = root_ppn; }
  std::uint64_t root_ppn() const { return root_ppn_; }
  void FlushTlbs();

  // Executes one instruction. On kTrap the faulting pc stays in pc() and
  // the trap is in pending_trap(); the kernel decides what to do. On
  // kEcall pc() has already advanced past the ecall.
  StepEvent Step();

  const isa::Trap& pending_trap() const { return pending_trap_; }

  const CpuStats& stats() const { return stats_; }
  void ResetStats();
  const tlb::TlbStats& itlb_stats() const { return itlb_.stats(); }
  const tlb::TlbStats& dtlb_stats() const { return dtlb_.stats(); }
  const cache::CacheStats& icache_stats() const { return icache_.stats(); }
  const cache::CacheStats& dcache_stats() const { return dcache_.stats(); }

  const CpuConfig& config() const { return config_; }

  // Per-retired-instruction trace hook (pc, decoded instruction). Used by
  // the rrun --trace tool and the debugger-style tests; null disables.
  using TraceHook = std::function<void(std::uint64_t pc,
                                       const isa::Instruction& inst)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  // Telemetry attachment: retire events, cycle attribution, and the
  // TLB/cache event streams all flow into `hub` (null detaches). The hub
  // observes only — attaching one never changes architectural state or
  // cycle counts.
  void set_trace(trace::Hub* hub);

  // Direct (debug/kernel) access to guest memory through the page tables,
  // bypassing caches and permission checks. Used by the loader, the syscall
  // layer, and the attack-injection harness (which models an arbitrary
  // read/write primitive). Returns false when unmapped.
  bool DebugReadVirt(std::uint64_t virt_addr, unsigned bytes,
                     std::uint64_t* value);
  bool DebugWriteVirt(std::uint64_t virt_addr, unsigned bytes,
                      std::uint64_t value);

 private:
  // Fetches and decodes the parcel at pc_. Returns false with a pending
  // trap recorded on failure.
  bool FetchDecode(isa::Instruction* inst, unsigned* cycles);
  // Executes a memory access; returns false with pending trap on fault.
  bool MemAccess(const isa::Instruction& inst, std::uint64_t virt_addr,
                 bool write, std::uint64_t* value, unsigned* cycles);

  void RaiseTrap(isa::TrapCause cause, std::uint64_t tval);

  CpuConfig config_;
  mem::PhysMemory* memory_;
  cache::Cache icache_;
  cache::Cache dcache_;
  tlb::Tlb itlb_;
  tlb::Tlb dtlb_;

  std::array<std::uint64_t, isa::kNumRegs> regs_{};
  std::uint64_t pc_ = 0;
  std::uint64_t root_ppn_ = 0;
  isa::Trap pending_trap_{isa::TrapCause::kIllegalInstruction, 0};
  CpuStats stats_;
  TraceHook trace_hook_;
  trace::Hub* trace_ = nullptr;
};

}  // namespace roload::cpu
