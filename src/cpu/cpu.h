// RV64 processor core model: in-order fetch/decode/execute with L1
// caches, I/D TLBs and the ROLoad extension. The core is the analogue of
// the modified Rocket Core: when `roload_enabled` is false the decoder
// rejects ROLoad-family encodings (illegal instruction), exactly like the
// unmodified baseline processor.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cache/cache.h"
#include "cpu/translate.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/registers.h"
#include "isa/traps.h"
#include "mem/phys_memory.h"
#include "tlb/tlb.h"
#include "trace/hub.h"

namespace roload::cpu {

struct CpuConfig {
  bool roload_enabled = true;
  cache::CacheConfig icache;
  cache::CacheConfig dcache;
  tlb::TlbConfig itlb;
  tlb::TlbConfig dtlb;
  unsigned mul_cycles = 3;
  unsigned div_cycles = 20;
  unsigned taken_branch_cycles = 1;  // redirect penalty
  // Host-only decode cache: direct-mapped, keyed by pc and validated
  // against the raw bits fetched this step, so isa::Decode is skipped for
  // loop bodies. Never changes simulated cycles, faults or stats (the
  // fetch-side TLB/cache traffic still happens; only the pure decode
  // computation is reused). FlushTlbs() invalidates it alongside the TLBs;
  // self-modified code is additionally caught by the raw-bit check.
  bool host_decode_cache = true;
  // Host-only: fetch/load/store guest bytes through PhysMemory's inline
  // unchecked accessors instead of the checked out-of-line ones. Every such
  // access sits behind the Contains() test that the checked accessor would
  // merely repeat, so the values (and everything downstream) are identical.
  bool host_unchecked_mem = true;
  // Host-only translation tier (src/cpu/translate.h): pre-decode hot
  // superblocks into replayable micro-op form and execute them under
  // TLB/I-cache/code-version guards, deopting to the interpreter on any
  // guard miss. Only Run() uses blocks; Step() always interprets. Off by
  // default — off reproduces the seed simulator bit-identically, on is
  // pinned bit-identical by the differential suite in
  // tests/test_translate.cpp.
  bool host_translate = false;
  // Visits of one pc before a block is built there (1 = translate eagerly;
  // tests use 1 to force building on short fixtures). 2 is the sweet spot:
  // building a block costs about as much as interpreting its ops once, so
  // translating on the second visit never loses (one-shot code is skipped,
  // anything re-entered amortizes immediately), while higher thresholds
  // leave warm code (executed a handful of times) interpreting forever.
  unsigned translate_threshold = 2;
  // Superblock op cap and total live-block cap (reaching the block cap
  // frees every block and starts over — a simple, safe flush policy).
  unsigned translate_max_ops = 64;
  unsigned translate_max_blocks = 4096;
};

// The three execute tiers, in increasing host speed: the reference
// interpreter (every host fast path off), the PR 2 fast paths (decode
// cache, indexed TLB, inline memory — the default), and the translation
// tier on top of the fast paths. All three are bit-identical in cycles
// and every architectural counter; only host speed differs.
enum class ExecTier : std::uint8_t {
  kInterp,
  kFast,
  kTranslated,
};

// Applies a tier to a config: kInterp disables every host fast path,
// kFast enables them (the default config), kTranslated additionally turns
// on the block translator.
void SetExecTier(CpuConfig* config, ExecTier tier);
std::string_view ExecTierName(ExecTier tier);
// Parses "interp"/"fast"/"translated"; nullopt on anything else.
std::optional<ExecTier> ParseExecTier(std::string_view name);

// Toggles every host-only fast path in one call: the decode cache, the
// indexed TLB lookup (both TLBs) and the cache index math (both caches).
// Disabled reproduces the reference implementations that the differential
// tests and bench/host_throughput compare against.
void SetHostFastPaths(CpuConfig* config, bool enabled);

// What happened during one Step().
enum class StepEvent : std::uint8_t {
  kRetired,  // one instruction retired normally
  kTrap,     // a trap is pending (see pending_trap())
  kEcall,    // environment call; kernel services it then calls AckEcall()
};

struct CpuStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t roload_loads = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t indirect_jumps = 0;
};

class Cpu {
 public:
  Cpu(const CpuConfig& config, mem::PhysMemory* memory);

  // Architectural state.
  std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }
  std::uint64_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, std::uint64_t value);

  // Address translation root (satp.PPN analogue). The kernel sets this on
  // process switch and must FlushTlbs() after page-table edits.
  void set_root_ppn(std::uint64_t root_ppn) {
    root_ppn_ = root_ppn;
    // A root switch invalidates every proven block guard (blocks are
    // keyed and proven per root); stale the epoch fast path.
    if (code_table_ptr_ != nullptr) code_table_ptr_->Advance();
  }
  std::uint64_t root_ppn() const { return root_ppn_; }
  void FlushTlbs();

  // Executes one instruction. On kTrap the faulting pc stays in pc() and
  // the trap is in pending_trap(); the kernel decides what to do. On
  // kEcall pc() has already advanced past the ecall.
  StepEvent Step();

  // Executes up to `budget` instructions (at least one attempt), stopping
  // early on the first trap or ecall. Semantically identical to calling
  // Step() in a loop and stopping once `budget` instructions retired —
  // kRetired means exactly that the budget boundary was reached without a
  // trap/ecall. This is the entry point that uses the translation tier
  // when `host_translate` is on and the run is translation-transparent
  // (no per-instruction trace hook, profiler or instruction events);
  // otherwise it interprets. The kernel's scheduler calls this with the
  // remaining quantum/limit so blocks can run without per-instruction
  // scheduler checks.
  StepEvent Run(std::uint64_t budget);

  const isa::Trap& pending_trap() const { return pending_trap_; }

  const CpuStats& stats() const { return stats_; }
  void ResetStats();
  const tlb::TlbStats& itlb_stats() const { return itlb_.stats(); }
  const tlb::TlbStats& dtlb_stats() const { return dtlb_.stats(); }
  const cache::CacheStats& icache_stats() const { return icache_.stats(); }
  const cache::CacheStats& dcache_stats() const { return dcache_.stats(); }

  const CpuConfig& config() const { return config_; }

  // Per-retired-instruction trace hook (pc, decoded instruction). Used by
  // the rrun --trace tool and the debugger-style tests; null disables.
  using TraceHook = std::function<void(std::uint64_t pc,
                                       const isa::Instruction& inst)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  // Telemetry attachment: retire events, cycle attribution, and the
  // TLB/cache event streams all flow into `hub` (null detaches). The hub
  // observes only — attaching one never changes architectural state or
  // cycle counts.
  void set_trace(trace::Hub* hub);

  // Attaches a shared next-level cache (the SMP machine's L2) below both
  // L1s: L1 misses are then filled from it instead of at the flat DRAM
  // latency, and dirty evictions flow into it. Null (the default) keeps
  // the single-level behaviour bit-identical. Not owned.
  void set_next_level_cache(cache::Cache* next) {
    icache_.set_next_level(next);
    dcache_.set_next_level(next);
  }

  // Adds stall cycles that did not come from executing an instruction —
  // the TLB-shootdown IPI cost the kernel charges to the initiating hart.
  void ChargeStallCycles(unsigned cycles) { stats_.cycles += cycles; }

  // Translation-tier introspection (empty stats when the tier is off).
  const TranslatorStats& translator_stats() const {
    static const TranslatorStats kEmpty{};
    return translator_ != nullptr ? translator_->stats() : kEmpty;
  }
  bool translation_enabled() const { return translator_ != nullptr; }

  // The per-physical-page code version table backing the self-modifying
  // code guard; null when the tier is off. An SMP machine shares hart 0's
  // table across all harts (ShareCodeTable) so cross-hart code writes
  // retire the writing *and* the executing hart's blocks.
  const std::shared_ptr<CodeVersionTable>& code_table() const {
    return code_table_;
  }
  void ShareCodeTable(const std::shared_ptr<CodeVersionTable>& table) {
    if (table == nullptr) return;
    code_table_ = table;
    code_table_ptr_ = code_table_.get();
  }

  // Direct (debug/kernel) access to guest memory through the page tables,
  // bypassing caches and permission checks. Used by the loader, the syscall
  // layer, and the attack-injection harness (which models an arbitrary
  // read/write primitive). Returns false when unmapped.
  bool DebugReadVirt(std::uint64_t virt_addr, unsigned bytes,
                     std::uint64_t* value);
  bool DebugWriteVirt(std::uint64_t virt_addr, unsigned bytes,
                      std::uint64_t value);

 private:
  // One decode-cache slot: the decoded form of the parcel whose raw bits
  // were `raw` at address `pc`. A slot is live only while its generation
  // matches decode_generation_ (bumping the generation is the O(1)
  // whole-cache invalidation used by FlushTlbs).
  struct DecodeSlot {
    std::uint64_t pc = ~std::uint64_t{0};
    std::uint32_t raw = 0;
    std::uint32_t generation = 0;
    isa::Instruction inst;
  };
  static constexpr std::size_t kDecodeCacheSlots = 4096;  // direct-mapped

  // Fetches and decodes the parcel at pc_. Returns false with a pending
  // trap recorded on failure.
  bool FetchDecode(isa::Instruction* inst, unsigned* cycles);
  // Executes a memory access; returns false with pending trap on fault.
  bool MemAccess(const isa::Instruction& inst, std::uint64_t virt_addr,
                 bool write, std::uint64_t* value, unsigned* cycles);
  // The execute half of Step(): everything after fetch+decode, starting
  // from `cycles` already charged by the fetch. Shared verbatim between
  // Step() and the block executor, which is what makes the translated
  // tier's semantics the interpreter's semantics by construction.
  //
  // kLean compiles out the profiler charges and the per-retire event
  // emission. It is only ever instantiated by the block executor, which
  // runs strictly under TranslationTransparent() — i.e. when profiling is
  // off and kInstruction events are masked — so the stripped code is code
  // that could not have executed anyway; simulated state is untouched.
  template <bool kLean>
  StepEvent ExecuteDecodedImpl(const isa::Instruction& inst, unsigned cycles);
  StepEvent ExecuteDecoded(const isa::Instruction& inst, unsigned cycles);

  // Translation tier (all no-ops unless config_.host_translate).
  // True when a translated run is observationally equivalent to an
  // interpreted one: no per-retire trace hook, no cycle profiler, no
  // per-instruction event stream. TLB/cache/roload events stay exact
  // under translation (hits emit no events; misses and the whole data
  // side run the real paths), so those categories do not deopt.
  bool TranslationTransparent() const;
  // Builds a superblock at pc_ from the current I-TLB/I-cache contents;
  // nullptr when the head is not fetchable from resident state.
  TranslatedBlock* BuildBlock();
  // Proves (or revalidates) a block's guards; false demands interpretation.
  bool BlockGuardsPass(TranslatedBlock* block);
  // Replays a guard-proven block until block end, divergence, trap,
  // ecall, self-modifying store, or `target` total retired instructions.
  StepEvent ExecuteBlock(TranslatedBlock* block, std::uint64_t target);

  void RaiseTrap(isa::TrapCause cause, std::uint64_t tval);

  CpuConfig config_;
  mem::PhysMemory* memory_;
  cache::Cache icache_;
  cache::Cache dcache_;
  tlb::Tlb itlb_;
  tlb::Tlb dtlb_;

  std::array<std::uint64_t, isa::kNumRegs> regs_{};
  std::uint64_t pc_ = 0;
  std::uint64_t root_ppn_ = 0;
  isa::Trap pending_trap_{isa::TrapCause::kIllegalInstruction, 0};
  CpuStats stats_;
  TraceHook trace_hook_;
  trace::Hub* trace_ = nullptr;

  std::vector<DecodeSlot> decode_cache_;
  std::uint32_t decode_generation_ = 1;  // never matches the 0 in fresh slots
  void InvalidateDecodeCache();

  // Translation tier state (null when host_translate is off). The raw
  // code-table pointer keeps the store write barrier a single test on the
  // hot path.
  std::unique_ptr<Translator> translator_;
  std::shared_ptr<CodeVersionTable> code_table_;
  CodeVersionTable* code_table_ptr_ = nullptr;
};

}  // namespace roload::cpu
