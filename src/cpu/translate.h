// Translation tier: superblock dynamic binary translation with guard-based
// deopt (the third execute tier, above the reference interpreter and the
// PR 2 host fast paths).
//
// A TranslatedBlock pre-decodes a run of instructions from one guest code
// page into replayable micro-op form. Entering a block first proves a set
// of guards:
//
//   * the pinned I-TLB entry still maps the block's page with the same
//     PTE bits and physical page (covers TLB flush/shootdown, mprotect
//     re-key, process switch),
//   * the block's code page version is unchanged (covers self-modifying
//     and cross-hart code writes via the shared CodeVersionTable),
//   * every pinned I-cache line is still resident with the same tag
//     (covers evictions; fetch timing stays exact).
//
// With the guards proven, each op replays exactly the bookkeeping the
// interpreter's all-hit fetch path performs (one I-TLB hit + one I-cache
// hit per instruction, batched per block run — see Tlb::ReplayFetchHits
// and the Cache replay-batch API) and then executes the pre-decoded
// instruction through the same ExecuteDecoded body Step() uses. Data-side accesses, traps, the ld.ro
// key check and the roload_check event stream all go through the
// unmodified MemAccess path, so cycles and every counter are bit-identical
// to the reference interpreter by construction. Any guard miss deopts to
// Step() for at least one instruction (performing the *real* miss with its
// real cost) and retries, so misses are never approximated.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "isa/instruction.h"
#include "mem/phys_memory.h"
#include "tlb/tlb.h"

namespace roload::cpu {

// Per-physical-page code version table: the write barrier that catches
// self-modifying (and, in SMP, cross-hart) code writes. Pages are marked
// when the first block is built from them; every store through MemAccess
// (and every DebugWriteVirt) bumps the version of a marked page, which
// fails the version guard of any block translated from it. One table is
// shared by all harts of an SMP machine so hart A patching hart B's code
// retires B's blocks at B's next block entry.
class CodeVersionTable {
 public:
  explicit CodeVersionTable(std::uint64_t memory_bytes)
      : is_code_((memory_bytes + mem::kPageSize - 1) >> mem::kPageShift, 0),
        versions_(is_code_.size(), 0) {}

  // Store barrier (hot path): bump the page version iff the page holds
  // translated code. Stores are size-aligned, so one page covers the
  // whole access. A bump also advances the guard epoch, staling every
  // block's one-compare entry fast path (see guard_epoch()).
  void OnWrite(std::uint64_t phys_addr) {
    const std::uint64_t page = phys_addr >> mem::kPageShift;
    if (page < is_code_.size() && is_code_[page] != 0) {
      ++versions_[page];
      ++epoch_;
    }
  }

  void MarkCode(std::uint64_t phys_page) {
    if (phys_page < is_code_.size()) is_code_[phys_page] = 1;
  }

  std::uint64_t Version(std::uint64_t phys_page) const {
    return phys_page < versions_.size() ? versions_[phys_page] : 0;
  }

  // Guard epoch: a counter that advances whenever machine state that any
  // block guard could depend on may have changed — a code-page write
  // (above), any interpreted Step (which can evict I-TLB entries and
  // I-cache lines), a TLB flush/shootdown, or a root-page-table switch
  // (callers bump via Advance()). A block whose guards were fully proven
  // at epoch E needs only `valid_epoch == E` to re-enter while the epoch
  // stands, turning steady-state block entry into one compare. The table
  // (and thus the epoch) is shared across SMP harts, so a cross-hart code
  // write stales every hart's fast path, not just the writer's. Starts at
  // 1 so 0 can mean "never proven / retired".
  std::uint64_t guard_epoch() const { return epoch_; }
  void Advance() { ++epoch_; }

 private:
  std::vector<std::uint8_t> is_code_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t epoch_ = 1;
};

// One pre-decoded instruction of a block.
struct TranslatedOp {
  isa::Instruction inst;
  std::uint64_t pc = 0;          // virtual pc of this op
  std::uint64_t fetch_phys = 0;  // physical address of the first parcel
  std::uint32_t line_index = 0;  // index into TranslatedBlock::lines
  bool is_store = false;         // run the mid-block SMC version check after
  // Pre-resolved micro-op facts for the block executor's inline memory
  // path (isa::MemAccessBytes / isa::LoadIsUnsigned / isa::IsRoLoad
  // evaluated once at build time instead of per execution). Zero for
  // non-memory ops.
  std::uint8_t mem_bytes = 0;
  bool load_unsigned = false;
  bool is_roload = false;  // ld.ro family: key-checked load datapath
  // Per-site inline caches: the D-TLB entry and D-cache line this op hit
  // last time. Self-validating — the executor re-proves them against the
  // current access before replaying the hit and falls back to the generic
  // lookup (re-arming the memo) otherwise. The pointers target pool
  // storage that never reallocates, so a stale memo is merely cold, never
  // dangling.
  tlb::Tlb::Entry* dtlb_memo = nullptr;
  cache::Cache::Line* dline_memo = nullptr;
  std::uint64_t dline_addr = 0;
  std::uint64_t dline_tag = 0;
};

// One pinned I-cache line a block's fetches replay hits on. `line` may be
// re-pointed during guard revalidation when the same tag moved to another
// way; `phys`/`tag` identify what the line must hold.
struct LineGuard {
  cache::Cache::Line* line = nullptr;
  std::uint64_t phys = 0;  // representative fetch address within the line
  std::uint64_t tag = 0;
};

// A superblock: straight-line decode from head_pc within one page,
// continuing through untaken conditional branches, ending at an
// unconditional control transfer (jal/jalr/ecall/ebreak), a decode
// failure, the page boundary, or the op cap. Execution exits early on
// branch divergence, trap, ecall, quantum/limit expiry or a self-modifying
// store — always at an instruction boundary.
struct TranslatedBlock {
  std::uint64_t head_pc = 0;
  std::uint64_t root_ppn = 0;
  std::uint64_t vpn = 0;
  std::uint64_t pte_raw = 0;
  std::uint64_t phys_page = 0;
  std::uint64_t code_version = 0;
  // Guard epoch at which the full guard set was last proven; re-entry
  // under the same epoch needs no re-proof (see
  // CodeVersionTable::guard_epoch). 0 = never proven; Retire resets to 0
  // so a dead block can never take the fast path.
  std::uint64_t valid_epoch = 0;
  tlb::Tlb::Entry* itlb_entry = nullptr;
  bool dead = false;  // retired: unreachable, freed at the next InvalidateAll
  std::vector<LineGuard> lines;
  std::vector<TranslatedOp> ops;

  // Direct block chaining: the hot loop goes block -> successor without
  // touching the translator's hash map. Two slots per block (fall-through
  // and taken successor of the usual loop shapes), round-robin replaced.
  struct ChainSlot {
    std::uint64_t pc = ~std::uint64_t{0};
    TranslatedBlock* block = nullptr;
  };
  ChainSlot chain[2];
  std::uint8_t chain_rr = 0;

  TranslatedBlock* ChainLookup(std::uint64_t pc, std::uint64_t root) {
    for (const ChainSlot& slot : chain) {
      if (slot.block != nullptr && slot.pc == pc && !slot.block->dead &&
          slot.block->root_ppn == root) {
        return slot.block;
      }
    }
    return nullptr;
  }

  void ChainInstall(std::uint64_t pc, TranslatedBlock* block) {
    chain[chain_rr] = ChainSlot{pc, block};
    chain_rr ^= 1;
  }
};

// Host-only translator telemetry. Deliberately NOT registered in the
// trace counter registry: the registry snapshot is part of the
// bit-identity contract between tiers, and these counters exist only in
// the translated tier.
struct TranslatorStats {
  std::uint64_t blocks_built = 0;
  std::uint64_t blocks_retired = 0;
  std::uint64_t block_entries = 0;    // guard-proven block executions
  std::uint64_t chained_entries = 0;  // of which via direct chaining
  std::uint64_t guard_fails = 0;      // deopts to the interpreter
  std::uint64_t ops_replayed = 0;
  std::uint64_t invalidations = 0;    // InvalidateAll calls
};

// Owns the translated blocks of one hart: the (root, pc) -> block map, the
// hot-pc visit counters that trigger building, and the block lifecycle
// (retire marks a block dead in place; InvalidateAll frees everything and
// is only called between blocks — TLB flush, capacity).
class Translator {
 public:
  Translator(unsigned threshold, unsigned max_blocks)
      : threshold_(threshold == 0 ? 1 : threshold),
        max_blocks_(max_blocks == 0 ? 1 : max_blocks),
        visits_(kVisitSlots) {}

  // Block lookup; nullptr on miss (including dead or mismatching blocks).
  TranslatedBlock* Lookup(std::uint64_t root_ppn, std::uint64_t pc);

  // Bumps the visit counter for (root, pc); true once the pc is hot
  // enough to build a block.
  bool NoteVisit(std::uint64_t root_ppn, std::uint64_t pc);

  // Takes ownership and makes the block reachable; retires any block the
  // map already held for the same (root, pc). Returns the raw pointer
  // (stable until InvalidateAll).
  TranslatedBlock* Insert(std::unique_ptr<TranslatedBlock> block);

  // Marks a block permanently dead (stale PTE, remap, self-modified
  // code). Its memory stays valid until InvalidateAll so chain slots and
  // the executor's current-block pointer never dangle.
  void Retire(TranslatedBlock* block);

  // Frees every block and resets the map and visit counters. Safe only
  // between blocks (no block mid-execution, no live chain source).
  void InvalidateAll();

  bool AtCapacity() const { return blocks_.size() >= max_blocks_; }

  TranslatorStats& stats() { return stats_; }
  const TranslatorStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kVisitSlots = 4096;  // direct-mapped

  static std::uint64_t KeyOf(std::uint64_t root_ppn, std::uint64_t pc) {
    return pc ^ (root_ppn << 17);
  }

  struct VisitSlot {
    std::uint64_t key = ~std::uint64_t{0};
    std::uint32_t count = 0;
  };

  unsigned threshold_;
  std::size_t max_blocks_;
  std::deque<std::unique_ptr<TranslatedBlock>> blocks_;
  std::unordered_map<std::uint64_t, TranslatedBlock*> map_;
  std::vector<VisitSlot> visits_;
  TranslatorStats stats_;
};

}  // namespace roload::cpu
