// Hardening passes: the defense applications of Section IV and their
// software baselines.
//
//  * VCallProtectPass  — Section IV-A. Moves vtables into read-only pages
//    keyed per class group and tags vtable-entry loads with roload-md, so
//    the backend emits ld.ro for virtual dispatch.
//  * ICallCfiPass      — Section IV-B. Type-based forward-edge CFI: every
//    address-taken function gets a GFPT entry in a read-only page keyed by
//    its function type; function-pointer values become pointers to GFPT
//    entries; indirect calls load the real target with ld.ro. VTables get
//    one unified key (the locality optimization the paper describes).
//  * VTintPass         — the software baseline for VCall: range checks
//    that vtable pointers fall inside the read-only image before use.
//  * ClassicCfiPass    — the software baseline for ICall: an ID word (an
//    architectural no-op) at each function entry, checked before each
//    indirect call.
//
// All passes are deterministic module transforms; they verify their output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/status.h"

namespace roload::passes {

// Page-key allocation plan shared by the passes (keys are 10-bit; key 0 is
// reserved for untagged pages).
inline constexpr std::uint32_t kUnifiedVtableKey = 1;
inline constexpr std::uint32_t kVcallClassKeyBase = 100;
inline constexpr std::uint32_t kIcallTypeKeyBase = 300;

struct VCallProtectOptions {
  // Number of distinct vtable key groups; classes are assigned round-robin.
  // The paper's VCall uses per-class keys (groups >= #classes); the
  // key-locality ablation sweeps this down to 1.
  unsigned key_groups = 512;
};

struct ICallCfiOptions {
  bool harden_vtables = true;  // unified key for vtable loads
};

struct ClassicCfiOptions {
  // Per-function-type IDs (the ported fine-grained configuration).
  std::uint32_t id_base = 0x100;
};

// Section IV-C: "all allowlist-based defenses can be enhanced by ROLoad".
// The generic allowlist pass takes an explicit plan: which globals are
// allowlists (moved into read-only pages with the given keys) and which
// loads consume them (tagged with roload-md for the matching key). This is
// the programmable surface behind VCall/ICall, usable for format-string
// tables, jump tables, configuration blocks, kernel operation structures —
// any immutable legitimate-value set.
struct AllowlistRule {
  std::string global_name;  // the allowlist global to protect
  std::uint32_t key = 0;    // page key (must be nonzero)
  // Loads tagged: every kLoad whose trait matches `trait` and whose
  // trait_id matches `trait_id` (or any id when trait_id < 0).
  ir::Trait trait = ir::Trait::kNone;
  int trait_id = -1;
};

struct AllowlistOptions {
  std::vector<AllowlistRule> rules;
};

// Each pass mutates `module` in place.
Status AllowlistProtectPass(ir::Module* module,
                            const AllowlistOptions& options);
Status VCallProtectPass(ir::Module* module,
                        const VCallProtectOptions& options = {});
Status ICallCfiPass(ir::Module* module, const ICallCfiOptions& options = {});
Status VTintPass(ir::Module* module);
Status ClassicCfiPass(ir::Module* module,
                      const ClassicCfiOptions& options = {});

// The encoded "lui zero, id" word the classic-CFI check compares against
// (sign-extended to 64 bits, as an lw of the ID word produces).
std::int64_t CfiIdWord(std::uint32_t id);

}  // namespace roload::passes
