#include "passes/optimize.h"

#include <map>
#include <vector>

namespace roload::passes {
namespace {

using ir::BinOp;
using ir::Block;
using ir::Function;
using ir::Instr;
using ir::InstrKind;

// The target's exact 64-bit semantics (matches cpu.cpp and interp.cpp).
std::uint64_t EvalBin(BinOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case BinOp::kAdd:
      return a + b;
    case BinOp::kSub:
      return a - b;
    case BinOp::kMul:
      return a * b;
    case BinOp::kDiv: {
      const auto sa = static_cast<std::int64_t>(a);
      const auto sb = static_cast<std::int64_t>(b);
      if (sb == 0) return ~std::uint64_t{0};
      if (sa == INT64_MIN && sb == -1) return a;
      return static_cast<std::uint64_t>(sa / sb);
    }
    case BinOp::kRem: {
      const auto sa = static_cast<std::int64_t>(a);
      const auto sb = static_cast<std::int64_t>(b);
      if (sb == 0) return a;
      if (sa == INT64_MIN && sb == -1) return 0;
      return static_cast<std::uint64_t>(sa % sb);
    }
    case BinOp::kAnd:
      return a & b;
    case BinOp::kOr:
      return a | b;
    case BinOp::kXor:
      return a ^ b;
    case BinOp::kShl:
      return a << (b & 63);
    case BinOp::kShr:
      return a >> (b & 63);
    case BinOp::kSar:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                        (b & 63));
    case BinOp::kSlt:
      return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b) ? 1
                                                                         : 0;
    case BinOp::kSltu:
      return a < b ? 1 : 0;
    case BinOp::kEq:
      return a == b ? 1 : 0;
    case BinOp::kNe:
      return a != b ? 1 : 0;
  }
  return 0;
}

bool HasSideEffects(const Instr& instr) {
  switch (instr.kind) {
    case InstrKind::kConst:
    case InstrKind::kAddrOf:
    case InstrKind::kBin:
    case InstrKind::kBinImm:
      return false;
    default:
      // Loads kept: they can fault (and a ROLoad fault is a feature).
      return true;
  }
}

void CountReads(const Function& fn, std::vector<unsigned>* reads) {
  reads->assign(static_cast<std::size_t>(fn.num_vregs > 0 ? fn.num_vregs : 1),
                0);
  auto bump = [reads](int vreg) {
    if (vreg >= 0 && static_cast<std::size_t>(vreg) < reads->size()) {
      ++(*reads)[static_cast<std::size_t>(vreg)];
    }
  };
  for (const Block& block : fn.blocks) {
    for (const Instr& instr : block.instrs) {
      bump(instr.src1);
      bump(instr.src2);
      for (int arg : instr.args) bump(arg);
    }
  }
}

}  // namespace

Status ConstantFoldPass(ir::Module* module, OptimizeStats* stats) {
  for (Function& fn : module->functions) {
    for (Block& block : fn.blocks) {
      // Per-block known-constant values (vregs are single-assignment, but
      // cross-block dominance is not tracked, so stay within the block).
      std::map<int, std::uint64_t> known;
      for (Instr& instr : block.instrs) {
        switch (instr.kind) {
          case InstrKind::kConst:
            known[instr.dst] = static_cast<std::uint64_t>(instr.imm);
            break;
          case InstrKind::kBinImm: {
            auto it = known.find(instr.src1);
            if (it == known.end()) break;
            const std::uint64_t value =
                EvalBin(instr.bin_op, it->second,
                        static_cast<std::uint64_t>(instr.imm));
            instr.kind = InstrKind::kConst;
            instr.imm = static_cast<std::int64_t>(value);
            instr.src1 = -1;
            known[instr.dst] = value;
            if (stats != nullptr) ++stats->folded;
            break;
          }
          case InstrKind::kBin: {
            auto lhs = known.find(instr.src1);
            auto rhs = known.find(instr.src2);
            if (lhs == known.end() || rhs == known.end()) break;
            const std::uint64_t value =
                EvalBin(instr.bin_op, lhs->second, rhs->second);
            instr.kind = InstrKind::kConst;
            instr.imm = static_cast<std::int64_t>(value);
            instr.src1 = instr.src2 = -1;
            known[instr.dst] = value;
            if (stats != nullptr) ++stats->folded;
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return ir::Verify(*module);
}

Status DeadCodeEliminationPass(ir::Module* module, OptimizeStats* stats) {
  for (Function& fn : module->functions) {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<unsigned> reads;
      CountReads(fn, &reads);
      for (Block& block : fn.blocks) {
        auto& instrs = block.instrs;
        for (std::size_t i = 0; i < instrs.size();) {
          const Instr& instr = instrs[i];
          const bool dead =
              !HasSideEffects(instr) && instr.dst >= 0 &&
              reads[static_cast<std::size_t>(instr.dst)] == 0;
          if (dead) {
            instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(i));
            if (stats != nullptr) ++stats->removed;
            changed = true;
          } else {
            ++i;
          }
        }
      }
    }
  }
  return ir::Verify(*module);
}

Status OptimizePipeline(ir::Module* module, OptimizeStats* stats) {
  // Folding exposes dead producers; two rounds reach fixpoint for the
  // chain shapes our generators emit (bounded for safety regardless).
  for (int round = 0; round < 4; ++round) {
    OptimizeStats local;
    ROLOAD_RETURN_IF_ERROR(ConstantFoldPass(module, &local));
    ROLOAD_RETURN_IF_ERROR(DeadCodeEliminationPass(module, &local));
    if (stats != nullptr) {
      stats->folded += local.folded;
      stats->removed += local.removed;
    }
    if (local.folded == 0 && local.removed == 0) break;
  }
  return Status::Ok();
}

}  // namespace roload::passes
