// Optimization passes for the mini compiler. Virtual registers are
// single-assignment by construction (the builder and every hardening pass
// allocate fresh vregs), which keeps these passes simple and safe.
//
//  * ConstantFoldPass — folds kBin/kBinImm whose operands are known
//    constants (per-block value tracking) into kConst, with the target's
//    exact arithmetic (wrapping, RISC-V division rules).
//  * DeadCodeEliminationPass — removes side-effect-free instructions
//    (kConst, kAddrOf, kBin, kBinImm) whose results are never read.
//    Loads are conservatively kept (they can fault, and under ROLoad a
//    faulting load is a *security signal*, not dead code).
//
// Both passes are semantics-preserving; tests/test_optimize.cpp proves it
// with the interpreter-vs-hardware differential oracle.
#pragma once

#include "ir/ir.h"
#include "support/status.h"

namespace roload::passes {

struct OptimizeStats {
  unsigned folded = 0;
  unsigned removed = 0;
};

Status ConstantFoldPass(ir::Module* module, OptimizeStats* stats = nullptr);
Status DeadCodeEliminationPass(ir::Module* module,
                               OptimizeStats* stats = nullptr);

// Fold + DCE to fixpoint (bounded).
Status OptimizePipeline(ir::Module* module, OptimizeStats* stats = nullptr);

}  // namespace roload::passes
