#include "passes/passes.h"

#include <map>
#include <string>
#include <vector>

#include "support/strings.h"

namespace roload::passes {
namespace {

using ir::Block;
using ir::Function;
using ir::Instr;
using ir::InstrKind;
using ir::Module;
using ir::Trait;

// Ensures `fn` has a shared "<name>" abort block (call __rt_abort; ret) and
// returns its label.
std::string EnsureAbortBlock(Function* fn, const std::string& name) {
  for (const Block& block : fn->blocks) {
    if (block.label == name) return name;
  }
  Block block;
  block.label = name;
  Instr abort_call;
  abort_call.kind = InstrKind::kCall;
  abort_call.symbol = "__rt_abort";
  block.instrs.push_back(abort_call);
  Instr ret;
  ret.kind = InstrKind::kRet;
  block.instrs.push_back(ret);
  fn->blocks.push_back(std::move(block));
  return name;
}

// Splits `fn->blocks[block_index]` so that instructions [instr_index, end)
// move into a fresh block, and returns the new block's label. The caller
// appends check instructions + a terminator to the (now truncated) first
// half. Iterators/pointers into fn->blocks are invalidated.
std::string SplitBlock(Function* fn, std::size_t block_index,
                       std::size_t instr_index, unsigned* counter) {
  const std::string label =
      StrFormat("split%u_%s", (*counter)++,
                fn->blocks[block_index].label.c_str());
  Block tail;
  tail.label = label;
  auto& instrs = fn->blocks[block_index].instrs;
  tail.instrs.assign(instrs.begin() + static_cast<std::ptrdiff_t>(instr_index),
                     instrs.end());
  instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(instr_index),
               instrs.end());
  fn->blocks.insert(fn->blocks.begin() +
                        static_cast<std::ptrdiff_t>(block_index) + 1,
                    std::move(tail));
  return label;
}

}  // namespace

std::int64_t CfiIdWord(std::uint32_t id) {
  // Encoding of "lui zero, id": imm[31:12] | rd=0 | opcode LUI (0x37),
  // sign-extended as a 32-bit load would produce.
  const std::uint32_t word = (id << 12) | 0x37;
  return static_cast<std::int64_t>(static_cast<std::int32_t>(word));
}

Status AllowlistProtectPass(ir::Module* module,
                            const AllowlistOptions& options) {
  for (const AllowlistRule& rule : options.rules) {
    if (rule.key == 0) {
      return Status::InvalidArgument("allowlist key must be nonzero");
    }
    ir::Global* global = module->FindGlobal(rule.global_name);
    if (global == nullptr) {
      return Status::NotFound("allowlist global not found: " +
                              rule.global_name);
    }
    // Move the allowlist into a keyed read-only page.
    global->read_only = true;
    global->key = rule.key;

    // Tag the consuming loads.
    bool tagged_any = false;
    for (Function& fn : module->functions) {
      for (Block& block : fn.blocks) {
        for (Instr& instr : block.instrs) {
          if (instr.kind != InstrKind::kLoad) continue;
          if (instr.trait != rule.trait) continue;
          if (rule.trait_id >= 0 && instr.trait_id != rule.trait_id) {
            continue;
          }
          instr.has_roload_md = true;
          instr.roload_key = rule.key;
          tagged_any = true;
        }
      }
    }
    if (!tagged_any) {
      return Status::FailedPrecondition(
          "no load consumes allowlist " + rule.global_name +
          " (wrong trait filter?)");
    }
  }
  return ir::Verify(*module);
}

Status VCallProtectPass(ir::Module* module,
                        const VCallProtectOptions& options) {
  if (options.key_groups == 0) {
    return Status::InvalidArgument("key_groups must be >= 1");
  }
  auto class_key = [&options](int class_id) {
    return kVcallClassKeyBase +
           static_cast<std::uint32_t>(class_id) % options.key_groups;
  };

  // 1. Move vtables into keyed read-only sections ("classify VTables based
  //    on class types and move them into read-only pages with keys").
  for (ir::Global& global : module->globals) {
    if (global.trait == ir::GlobalTrait::kVTable) {
      global.read_only = true;
      global.key = class_key(global.trait_id);
    }
  }

  // 2. Tag vtable-entry loads with roload-md carrying the class key, so
  //    the backend's machine pass swaps ld -> ld.ro.
  for (Function& fn : module->functions) {
    for (Block& block : fn.blocks) {
      for (Instr& instr : block.instrs) {
        if (instr.kind == InstrKind::kLoad &&
            instr.trait == Trait::kVTableEntryLoad) {
          instr.has_roload_md = true;
          instr.roload_key = class_key(instr.trait_id);
        }
      }
    }
  }
  return ir::Verify(*module);
}

Status ICallCfiPass(ir::Module* module, const ICallCfiOptions& options) {
  module->RecomputeAddressTaken();
  // One key per function type, bounded by the 10-bit key space.
  auto type_key = [](int type_id) {
    return kIcallTypeKeyBase + static_cast<std::uint32_t>(type_id) % 512u;
  };

  // 1. Create one GFPT entry (its own labelled read-only quad, as in
  //    Listing 3) per address-taken function, in the key section of the
  //    function's type.
  std::map<std::string, std::string> gfpt_of_fn;
  std::vector<ir::Global> new_globals;
  for (const Function& fn : module->functions) {
    if (!fn.address_taken) continue;
    ir::Global entry;
    entry.name = "gfpt_" + fn.name;
    entry.read_only = true;
    entry.key = type_key(fn.type_id);
    entry.trait = ir::GlobalTrait::kGfpt;
    entry.trait_id = fn.type_id;
    entry.quads.push_back(ir::GlobalInit{0, fn.name});
    gfpt_of_fn[fn.name] = entry.name;
    new_globals.push_back(std::move(entry));
  }

  // 2. Redirect function-address creation through the GFPT: kAddrOf(foo)
  //    becomes kAddrOf(gfpt_foo) (Listing 2), and non-vtable global
  //    initializers holding function addresses likewise.
  for (Function& fn : module->functions) {
    for (Block& block : fn.blocks) {
      for (Instr& instr : block.instrs) {
        if (instr.kind == InstrKind::kAddrOf) {
          auto it = gfpt_of_fn.find(instr.symbol);
          if (it != gfpt_of_fn.end()) instr.symbol = it->second;
        }
      }
    }
  }
  for (ir::Global& global : module->globals) {
    if (global.trait == ir::GlobalTrait::kVTable) continue;
    for (ir::GlobalInit& init : global.quads) {
      auto it = gfpt_of_fn.find(init.symbol);
      if (it != gfpt_of_fn.end()) init.symbol = it->second;
    }
  }
  for (ir::Global& global : new_globals) {
    module->globals.push_back(std::move(global));
  }

  // 3. At each indirect call, the pointer now designates a GFPT entry:
  //    load the true target with ld.ro keyed by the call's function type
  //    (lines 2 and 5 of Listing 3).
  for (Function& fn : module->functions) {
    for (Block& block : fn.blocks) {
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        Instr& call = block.instrs[i];
        // Virtual dispatch is protected through the keyed vtable load; only
        // plain function-pointer calls get the GFPT indirection.
        if (call.kind != InstrKind::kICall || call.is_vcall) continue;
        Instr load;
        load.kind = InstrKind::kLoad;
        load.dst = fn.num_vregs++;
        load.src1 = call.src1;
        load.width = 8;
        load.has_roload_md = true;
        load.roload_key = type_key(call.trait_id);
        load.trait = Trait::kFnPtrLoad;
        load.trait_id = call.trait_id;
        call.src1 = load.dst;
        block.instrs.insert(block.instrs.begin() +
                                static_cast<std::ptrdiff_t>(i),
                            std::move(load));
        ++i;  // skip over the call we just displaced
      }
    }
  }

  // 4. VTables: unified key for all vtable pages and vtable-entry loads
  //    (better TLB/cache locality than VCall's per-class keys).
  if (options.harden_vtables) {
    for (ir::Global& global : module->globals) {
      if (global.trait == ir::GlobalTrait::kVTable) {
        global.read_only = true;
        global.key = kUnifiedVtableKey;
      }
    }
    for (Function& fn : module->functions) {
      for (Block& block : fn.blocks) {
        for (Instr& instr : block.instrs) {
          if (instr.kind == InstrKind::kLoad &&
              instr.trait == Trait::kVTableEntryLoad) {
            instr.has_roload_md = true;
            instr.roload_key = kUnifiedVtableKey;
          }
        }
      }
    }
  }
  return ir::Verify(*module);
}

Status VTintPass(ir::Module* module) {
  // VTint: vtables live in read-only memory (they already do) and every
  // vtable-entry load is preceded by a software range check that the
  // vtable pointer falls inside the read-only image.
  for (ir::Global& global : module->globals) {
    if (global.trait == ir::GlobalTrait::kVTable) global.read_only = true;
  }

  for (Function& fn : module->functions) {
    unsigned counter = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < fn.blocks.size() && !changed; ++b) {
        auto& instrs = fn.blocks[b].instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
          Instr& load = instrs[i];
          if (load.kind != InstrKind::kLoad ||
              load.trait != Trait::kVTableEntryLoad || load.has_roload_md) {
            continue;
          }
          // Mark handled (reuse the md flag is wrong — use trait swap).
          load.trait = Trait::kNone;
          const int vptr = load.src1;
          const std::string abort_label =
              EnsureAbortBlock(&fn, "vtint_fail");
          const std::string body = SplitBlock(&fn, b, i, &counter);
          const std::string mid =
              StrFormat("vtint%u_hi", counter++);

          // First half: vptr >= __rodata_start ?
          Block& head = fn.blocks[b];
          Instr lo;
          lo.kind = InstrKind::kAddrOf;
          lo.dst = fn.num_vregs++;
          lo.symbol = "__rodata_start";
          head.instrs.push_back(lo);
          Instr cmp_lo;
          cmp_lo.kind = InstrKind::kBin;
          cmp_lo.bin_op = ir::BinOp::kSltu;
          cmp_lo.dst = fn.num_vregs++;
          cmp_lo.src1 = vptr;
          cmp_lo.src2 = lo.dst;
          head.instrs.push_back(cmp_lo);
          Instr br_lo;
          br_lo.kind = InstrKind::kCondBr;
          br_lo.src1 = cmp_lo.dst;
          br_lo.label = abort_label;  // vptr below the read-only image
          br_lo.false_label = mid;
          head.instrs.push_back(br_lo);

          // Middle block: vptr < __rodata_end ?
          Block mid_block;
          mid_block.label = mid;
          Instr hi;
          hi.kind = InstrKind::kAddrOf;
          hi.dst = fn.num_vregs++;
          hi.symbol = "__rodata_end";
          mid_block.instrs.push_back(hi);
          Instr cmp_hi;
          cmp_hi.kind = InstrKind::kBin;
          cmp_hi.bin_op = ir::BinOp::kSltu;
          cmp_hi.dst = fn.num_vregs++;
          cmp_hi.src1 = vptr;
          cmp_hi.src2 = hi.dst;
          mid_block.instrs.push_back(cmp_hi);
          Instr br_hi;
          br_hi.kind = InstrKind::kCondBr;
          br_hi.src1 = cmp_hi.dst;
          br_hi.label = body;
          br_hi.false_label = abort_label;
          mid_block.instrs.push_back(br_hi);
          fn.blocks.insert(fn.blocks.begin() +
                               static_cast<std::ptrdiff_t>(b) + 1,
                           std::move(mid_block));
          changed = true;
          break;
        }
      }
    }
  }
  return ir::Verify(*module);
}

Status ClassicCfiPass(ir::Module* module, const ClassicCfiOptions& options) {
  module->RecomputeAddressTaken();
  auto type_id_word = [&options](int type_id) {
    return CfiIdWord(options.id_base + static_cast<std::uint32_t>(type_id));
  };

  // 1. ID word (architectural no-op) at the beginning of each function.
  for (Function& fn : module->functions) {
    Instr label;
    label.kind = InstrKind::kCfiLabel;
    label.imm = static_cast<std::int64_t>(options.id_base +
                                          static_cast<std::uint32_t>(fn.type_id));
    auto& entry = fn.blocks.front().instrs;
    entry.insert(entry.begin(), label);
  }

  // 2. Check before each indirect call that the target begins with the ID
  //    of the expected function type.
  for (Function& fn : module->functions) {
    unsigned counter = 1000;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < fn.blocks.size() && !changed; ++b) {
        auto& instrs = fn.blocks[b].instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
          Instr& call = instrs[i];
          if (call.kind != InstrKind::kICall || call.trait != Trait::kICall) {
            continue;
          }
          call.trait = Trait::kNone;  // mark handled
          const int target = call.src1;
          const int type_id = call.trait_id;
          const std::string abort_label = EnsureAbortBlock(&fn, "cfi_fail");
          const std::string body = SplitBlock(&fn, b, i, &counter);

          Block& head = fn.blocks[b];
          Instr idw;
          idw.kind = InstrKind::kLoad;
          idw.dst = fn.num_vregs++;
          idw.src1 = target;
          idw.width = 4;
          idw.sign_extend = true;
          head.instrs.push_back(idw);
          Instr expect;
          expect.kind = InstrKind::kConst;
          expect.dst = fn.num_vregs++;
          expect.imm = type_id_word(type_id);
          head.instrs.push_back(expect);
          Instr cmp;
          cmp.kind = InstrKind::kBin;
          cmp.bin_op = ir::BinOp::kEq;
          cmp.dst = fn.num_vregs++;
          cmp.src1 = idw.dst;
          cmp.src2 = expect.dst;
          head.instrs.push_back(cmp);
          Instr br;
          br.kind = InstrKind::kCondBr;
          br.src1 = cmp.dst;
          br.label = body;
          br.false_label = abort_label;
          head.instrs.push_back(br);
          changed = true;
          break;
        }
      }
    }
  }
  return ir::Verify(*module);
}

}  // namespace roload::passes
