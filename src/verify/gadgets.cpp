#include "verify/gadgets.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>

#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/registers.h"
#include "support/json.h"
#include "support/strings.h"
#include "verify/callgraph.h"

namespace roload::verify {
namespace {

using asmtool::LinkImage;
using asmtool::Section;
using isa::Instruction;
using isa::Opcode;

constexpr std::uint8_t kRa = static_cast<std::uint8_t>(isa::Reg::kRa);

bool IsRet(const Instruction& inst) {
  return inst.op == Opcode::kJalr && inst.rd == 0 && inst.rs1 == kRa &&
         inst.imm == 0;
}

// Control flow other than the terminating jalr breaks the straight-line
// property a gadget needs (direct jumps and branches go where the static
// target says, not where the attacker's chain points).
bool BreaksChain(const Instruction& inst) {
  return inst.op == Opcode::kJal || inst.op == Opcode::kEbreak ||
         isa::IsBranch(inst.op);
}

}  // namespace

GadgetCensus ScanGadgets(const LinkImage& image, unsigned max_insts) {
  GadgetCensus census;
  census.max_insts = max_insts;

  const CallGraph cg = BuildCallGraph(image);

  for (const Section& sec : image.sections) {
    if (!sec.perms.exec) continue;
    census.stats.exec_bytes += sec.bytes.size();

    // The compiler's intended instruction starts in this section.
    std::set<std::uint64_t> intended;
    for (const DecodedFunc& fn : cg.funcs) {
      if (fn.span.start < sec.vaddr ||
          fn.span.start >= sec.vaddr + sec.size) {
        continue;
      }
      intended.insert(fn.pcs.begin(), fn.pcs.end());
    }

    for (std::uint64_t start = sec.vaddr;
         start + 2 <= sec.vaddr + sec.bytes.size(); start += 2) {
      Gadget g;
      g.start = start;
      std::uint64_t pc = start;
      bool terminated = false;
      for (unsigned n = 0; n < max_insts; ++n) {
        const std::uint64_t off = pc - sec.vaddr;
        if (off + 2 > sec.bytes.size()) break;
        std::uint32_t raw = 0;
        const std::uint64_t avail =
            std::min<std::uint64_t>(4, sec.bytes.size() - off);
        std::memcpy(&raw, sec.bytes.data() + off, avail);
        const unsigned len =
            isa::ParcelLength(static_cast<std::uint16_t>(raw));
        if (off + len > sec.bytes.size()) break;
        const std::optional<Instruction> inst = isa::Decode(raw);
        if (!inst.has_value()) break;
        if (BreaksChain(*inst)) break;
        if (intended.count(pc) == 0) g.misaligned = true;
        if (inst->length == 2) g.compressed = true;
        ++g.length;
        pc += inst->length;
        if (inst->op == Opcode::kJalr) {
          g.kind = IsRet(*inst) ? Gadget::Kind::kRet : Gadget::Kind::kJalr;
          g.end = pc;
          terminated = true;
          break;
        }
      }
      if (!terminated) continue;

      g.section = sec.name;
      g.in_keyed_ro = sec.key != 0;
      for (std::size_t f = 0; f < cg.funcs.size(); ++f) {
        const FuncSpan& span = cg.funcs[f].span;
        if (g.start >= span.start && g.start < span.end) {
          g.function = span.name;
          g.in_keyed_target = cg.keyed_target[f];
          break;
        }
      }

      ++census.stats.gadgets;
      if (g.kind == Gadget::Kind::kRet) {
        ++census.stats.ret_terminated;
      } else {
        ++census.stats.jalr_terminated;
      }
      if (g.misaligned) ++census.stats.misaligned;
      if (g.compressed) ++census.stats.compressed;
      if (g.in_keyed_ro) ++census.stats.in_keyed_ro;
      if (g.in_keyed_target) ++census.stats.in_keyed_target;
      census.gadgets.push_back(std::move(g));
    }
  }
  return census;
}

std::string GadgetCensus::ToJson(std::string_view image_name) const {
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "roload.gadgets.v1");
  json.KV("image", image_name);
  json.KV("max_insts", static_cast<std::uint64_t>(max_insts));
  json.Key("stats");
  json.BeginObject();
  json.KV("gadgets", stats.gadgets);
  json.KV("ret_terminated", stats.ret_terminated);
  json.KV("jalr_terminated", stats.jalr_terminated);
  json.KV("misaligned", stats.misaligned);
  json.KV("compressed", stats.compressed);
  json.KV("in_keyed_ro", stats.in_keyed_ro);
  json.KV("in_keyed_target", stats.in_keyed_target);
  json.KV("exec_bytes", stats.exec_bytes);
  json.EndObject();
  json.Key("gadgets");
  json.BeginArray();
  for (const Gadget& g : gadgets) {
    json.BeginObject();
    json.KV("start",
            StrFormat("0x%llx", static_cast<unsigned long long>(g.start)));
    json.KV("kind", g.kind == Gadget::Kind::kRet ? "ret" : "jalr");
    json.KV("len", static_cast<std::uint64_t>(g.length));
    json.KV("misaligned", g.misaligned);
    json.KV("compressed", g.compressed);
    json.KV("in_keyed_ro", g.in_keyed_ro);
    json.KV("in_keyed_target", g.in_keyed_target);
    json.KV("section", g.section);
    json.KV("function", g.function);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace roload::verify
