#include "verify/verify.h"

#include <algorithm>

#include "support/json.h"
#include "support/strings.h"

namespace roload::verify {

int RuleId(Rule rule) { return static_cast<int>(rule); }

std::string_view RuleName(Rule rule) {
  switch (rule) {
    case Rule::kIrKeyInvalid:
      return "ir-key-invalid";
    case Rule::kIrKeyedGlobalWritable:
      return "ir-keyed-global-writable";
    case Rule::kIrLoadKeyMismatch:
      return "ir-load-key-mismatch";
    case Rule::kIrSensitiveGlobalUnkeyed:
      return "ir-sensitive-global-unkeyed";
    case Rule::kIrTypeKeyCollision:
      return "ir-type-key-collision";
    case Rule::kIrStructural:
      return "ir-structural";
    case Rule::kBinSectionAttrs:
      return "bin-section-attrs";
    case Rule::kBinWritableKeyAlias:
      return "bin-writable-key-alias";
    case Rule::kBinKeyUnmapped:
      return "bin-key-unmapped";
    case Rule::kBinStaticTargetMismatch:
      return "bin-static-target-mismatch";
    case Rule::kBinUnprovenDispatch:
      return "bin-unproven-dispatch";
    case Rule::kBinRoloadCountMismatch:
      return "bin-roload-count-mismatch";
    case Rule::kBinMissingFixup:
      return "bin-missing-fixup";
    case Rule::kBinSymbolMisplaced:
      return "bin-symbol-misplaced";
    case Rule::kBinMissingCfiId:
      return "bin-missing-cfi-id";
    case Rule::kLoaderKeyMismatch:
      return "loader-key-mismatch";
    case Rule::kBinCalleeSavedClobbered:
      return "bin-callee-saved-clobbered";
    case Rule::kBinRoloadEscape:
      return "bin-roload-escape";
    case Rule::kBinUnprovenCalleeArg:
      return "bin-unproven-callee-arg";
    case Rule::kBinObligationUndischargeable:
      return "bin-obligation-undischargeable";
    case Rule::kBinRetAddrUnproven:
      return "bin-ret-addr-unproven";
    case Rule::kBinSpImbalance:
      return "bin-sp-imbalance";
  }
  return "unknown-rule";
}

void Report::Add(Rule rule, std::string where, std::string message) {
  violations_.push_back(
      Violation{rule, std::move(where), 0, false, std::move(message)});
}

void Report::AddAt(Rule rule, std::string where, std::uint64_t pc,
                   std::string message) {
  violations_.push_back(
      Violation{rule, std::move(where), pc, true, std::move(message)});
}

int Report::ExitCode() const {
  int code = 0;
  for (const Violation& v : violations_) {
    if (code == 0 || RuleId(v.rule) < code) code = RuleId(v.rule);
  }
  return code;
}

std::string Report::ToText() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += StrFormat("RV%03d %s", RuleId(v.rule),
                     std::string(RuleName(v.rule)).c_str());
    if (!v.where.empty()) out += " " + v.where;
    if (v.has_pc) {
      out += StrFormat(" (pc 0x%llx)", static_cast<unsigned long long>(v.pc));
    }
    out += ": " + v.message + "\n";
  }
  out += StrFormat(
      "%zu violation%s; %llu function%s, %llu instructions, %llu ld.ro, "
      "%llu/%llu dispatches proven\n",
      violations_.size(), violations_.size() == 1 ? "" : "s",
      static_cast<unsigned long long>(stats_.functions),
      stats_.functions == 1 ? "" : "s",
      static_cast<unsigned long long>(stats_.instructions),
      static_cast<unsigned long long>(stats_.roload_instructions),
      static_cast<unsigned long long>(stats_.proven_dispatches),
      static_cast<unsigned long long>(stats_.dispatches));
  return out;
}

std::string Report::ToJson(std::string_view tool, std::string_view image,
                           std::string_view policy) const {
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "roload.verify.v1");
  json.KV("tool", tool);
  json.KV("image", image);
  json.KV("policy", policy);
  json.KV("ok", ok());
  json.KV("exit_code", ExitCode());
  json.Key("stats");
  json.BeginObject();
  json.KV("lint_globals", stats_.lint_globals);
  json.KV("lint_md_loads", stats_.lint_md_loads);
  json.KV("sections", stats_.sections);
  json.KV("keyed_sections", stats_.keyed_sections);
  json.KV("functions", stats_.functions);
  json.KV("instructions", stats_.instructions);
  json.KV("roload_instructions", stats_.roload_instructions);
  json.KV("dispatches", stats_.dispatches);
  json.KV("proven_dispatches", stats_.proven_dispatches);
  json.EndObject();
  json.Key("violations");
  json.BeginArray();
  for (const Violation& v : violations_) {
    json.BeginObject();
    json.KV("rule_id", RuleId(v.rule));
    json.KV("rule", RuleName(v.rule));
    json.KV("where", v.where);
    if (v.has_pc) {
      json.KV("pc", StrFormat("0x%llx",
                              static_cast<unsigned long long>(v.pc)));
    }
    json.KV("message", v.message);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Expectations ComputeExpectations(const ir::Module& hardened) {
  Expectations exp;
  for (const ir::Global& global : hardened.globals) {
    if (global.key != 0) exp.keyed_symbols[global.name] = global.key;
  }
  for (const ir::Function& fn : hardened.functions) {
    if (!fn.blocks.empty() && !fn.blocks.front().instrs.empty()) {
      const ir::Instr& first = fn.blocks.front().instrs.front();
      if (first.kind == ir::InstrKind::kCfiLabel) {
        exp.cfi_ids[fn.name] =
            static_cast<std::uint32_t>(first.imm) & 0xFFFFF;
      }
    }
    for (const ir::Block& block : fn.blocks) {
      for (const ir::Instr& instr : block.instrs) {
        if (instr.kind != ir::InstrKind::kLoad || !instr.has_roload_md) {
          continue;
        }
        ++exp.roload_loads;
        if (instr.imm != 0) ++exp.addi_fixups;
      }
    }
  }
  return exp;
}

}  // namespace roload::verify
