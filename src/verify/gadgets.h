// ROP/JOP gadget census over a linked image — the attack-surface
// baseline for the backward-edge (shadow-stack) work.
//
// A gadget is a straight-line instruction sequence, decodable from any
// 2-byte-aligned offset of an executable section, that ends in an
// indirect transfer: a `ret` (ROP) or any other `jalr` (JOP). Scanning
// every 2-byte offset — not just the compiler's intended instruction
// starts — surfaces the *misaligned* gadgets the RISC-V ROP literature
// highlights: with the compressed `c.ld.ro` encoding in the ISA, the
// second half of a 32-bit word can decode as a valid 16-bit parcel and
// open an instruction stream the forward-edge verifier never modeled.
//
// Each gadget is classified by terminator, alignment (does every parcel
// start on an intended instruction boundary?), compression (does it
// contain a 16-bit parcel?), and whether it sits inside a keyed
// read-only section or inside a function reachable from keyed dispatch
// tables. `ToJson` emits the `roload.gadgets.v1` census.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asmtool/image.h"

namespace roload::verify {

struct Gadget {
  enum class Kind : std::uint8_t { kRet, kJalr };
  Kind kind = Kind::kRet;
  std::uint64_t start = 0;
  std::uint64_t end = 0;    // one past the terminator
  unsigned length = 0;      // instruction count, terminator included
  bool misaligned = false;  // some parcel off the intended starts
  bool compressed = false;  // contains a 16-bit parcel
  bool in_keyed_ro = false;        // inside a keyed R-- section (red flag)
  bool in_keyed_target = false;    // inside a keyed-dispatch-table target
  std::string section;
  std::string function;  // carved function containing `start` ("" if none)
};

struct GadgetStats {
  std::uint64_t gadgets = 0;
  std::uint64_t ret_terminated = 0;
  std::uint64_t jalr_terminated = 0;
  std::uint64_t misaligned = 0;
  std::uint64_t compressed = 0;
  std::uint64_t in_keyed_ro = 0;
  std::uint64_t in_keyed_target = 0;
  std::uint64_t exec_bytes = 0;
};

struct GadgetCensus {
  std::vector<Gadget> gadgets;
  GadgetStats stats;
  unsigned max_insts = 0;

  // {"schema":"roload.gadgets.v1","image":...,"stats":{...},
  //  "gadgets":[{...}]}
  std::string ToJson(std::string_view image_name) const;
};

// Scans every executable section of `image`. `max_insts` bounds the
// gadget length (instructions including the terminator); longer
// sequences are not useful gadgets and inflate the census. The default
// covers the backend's spill/reload dispatch idiom, which puts up to
// seven instructions between a compressed keyed load and its jalr.
GadgetCensus ScanGadgets(const asmtool::LinkImage& image,
                         unsigned max_insts = 8);

}  // namespace roload::verify
