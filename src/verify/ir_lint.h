// Layer 1 of the verifier: lint a *hardened* ir::Module (rules 10-15).
// Checks that roload-md keys are structurally valid and consistent with
// the keyed globals each sensitive load can reach, that vtables/GFPTs
// live in keyed read-only storage once the module relies on ld.ro, and
// that incompatible function types never share a page key.
#pragma once

#include "ir/ir.h"
#include "verify/verify.h"

namespace roload::verify {

// Appends any rule 10-15 violations to `report` and updates its lint
// stats. Safe to call on unhardened modules (no md loads -> vacuous).
void LintModule(const ir::Module& module, Report* report);

}  // namespace roload::verify
