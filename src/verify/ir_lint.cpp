#include "verify/ir_lint.h"

#include <map>
#include <set>
#include <string>

#include "isa/opcodes.h"
#include "support/strings.h"

namespace roload::verify {
namespace {

struct KeyedWorld {
  // key -> read-only globals carrying it.
  std::map<std::uint32_t, std::set<std::string>> ro_globals_by_key;
  // Sensitive globals indexed by trait, for load/global agreement.
  std::map<int, std::map<std::string, std::uint32_t>> vtables_by_class;
  std::map<int, std::map<std::string, std::uint32_t>> gfpts_by_type;
  bool any_vtable = false;
  bool any_gfpt = false;
};

KeyedWorld IndexGlobals(const ir::Module& module, Report* report) {
  KeyedWorld world;
  for (const ir::Global& global : module.globals) {
    ++report->stats().lint_globals;
    if (global.key != 0) {
      if (global.key >= isa::kNumPageKeys) {
        report->Add(Rule::kIrKeyInvalid, global.name,
                    StrFormat("global key %u out of range (max %u)",
                              global.key, isa::kNumPageKeys - 1));
      }
      if (!global.read_only) {
        report->Add(Rule::kIrKeyedGlobalWritable, global.name,
                    StrFormat("key %u assigned but global is writable; a "
                              "keyed page the program can store to defeats "
                              "pointee integrity",
                              global.key));
      } else {
        world.ro_globals_by_key[global.key].insert(global.name);
      }
    }
    if (global.trait == ir::GlobalTrait::kVTable) {
      world.any_vtable = true;
      world.vtables_by_class[global.trait_id][global.name] = global.key;
    } else if (global.trait == ir::GlobalTrait::kGfpt) {
      world.any_gfpt = true;
      world.gfpts_by_type[global.trait_id][global.name] = global.key;
    }
  }
  return world;
}

// Rule 12: the md key on a load must match the key of every sensitive
// global the load can reach through its trait, and must be carried by at
// least one read-only global at all.
void CheckLoad(const ir::Instr& instr, const std::string& fn_name,
               const KeyedWorld& world, Report* report) {
  const std::uint32_t key = instr.roload_key;
  if (key == 0 || key >= isa::kNumPageKeys) {
    report->Add(Rule::kIrKeyInvalid, fn_name,
                StrFormat("roload-md key %u invalid (must be 1..%u)", key,
                          isa::kNumPageKeys - 1));
    return;
  }
  if (world.ro_globals_by_key.find(key) == world.ro_globals_by_key.end()) {
    report->Add(Rule::kIrLoadKeyMismatch, fn_name,
                StrFormat("roload-md key %u matches no keyed read-only "
                          "global; the load can never succeed",
                          key));
    return;
  }
  const std::map<int, std::map<std::string, std::uint32_t>>* by_trait =
      nullptr;
  const char* what = nullptr;
  if (instr.trait == ir::Trait::kVTableEntryLoad) {
    by_trait = &world.vtables_by_class;
    what = "vtable";
  } else if (instr.trait == ir::Trait::kFnPtrLoad) {
    by_trait = &world.gfpts_by_type;
    what = "GFPT";
  } else {
    return;  // allowlist/plain loads: the existence check above is all.
  }
  auto it = by_trait->find(instr.trait_id);
  if (it == by_trait->end()) return;  // no matching global to disagree with
  for (const auto& [name, global_key] : it->second) {
    if (global_key != key) {
      report->Add(
          Rule::kIrLoadKeyMismatch, fn_name,
          StrFormat("load keyed %u but %s %s (trait id %d) is keyed %u",
                    key, what, name.c_str(), instr.trait_id, global_key));
    }
  }
}

}  // namespace

void LintModule(const ir::Module& module, Report* report) {
  if (Status status = ir::Verify(module); !status.ok()) {
    report->Add(Rule::kIrStructural, module.name,
                std::string(status.message()));
    // A structurally-broken module may have dangling operands; the
    // remaining rules still only walk well-formed fields, so continue.
  }

  const KeyedWorld world = IndexGlobals(module, report);

  bool any_vtable_md_load = false;
  for (const ir::Function& fn : module.functions) {
    for (const ir::Block& block : fn.blocks) {
      for (const ir::Instr& instr : block.instrs) {
        if (instr.kind != ir::InstrKind::kLoad || !instr.has_roload_md) {
          continue;
        }
        ++report->stats().lint_md_loads;
        if (instr.trait == ir::Trait::kVTableEntryLoad) {
          any_vtable_md_load = true;
        }
        CheckLoad(instr, fn.name, world, report);
      }
    }
  }

  // Rule 13: once the module relies on ld.ro for a class of sensitive
  // globals, every member of that class must be in keyed RO storage --
  // an unkeyed straggler is a bypass (forge a pointer to it).
  for (const auto& [type_id, gfpts] : world.gfpts_by_type) {
    for (const auto& [name, key] : gfpts) {
      if (key == 0) {
        report->Add(Rule::kIrSensitiveGlobalUnkeyed, name,
                    StrFormat("GFPT for function type %d has no page key",
                              type_id));
      }
    }
  }
  if (any_vtable_md_load) {
    for (const auto& [class_id, vtables] : world.vtables_by_class) {
      for (const auto& [name, key] : vtables) {
        if (key == 0) {
          report->Add(
              Rule::kIrSensitiveGlobalUnkeyed, name,
              StrFormat("vtable of class %d unkeyed while vtable-entry "
                        "loads use ld.ro",
                        class_id));
        }
      }
    }
  }

  // Rule 14: a page key names one legitimate-value set. GFPTs of two
  // function types sharing a key (or a GFPT sharing with a vtable) lets
  // an attacker retarget a call to a different-typed function while
  // every ld.ro still succeeds.
  std::map<std::uint32_t, std::set<int>> gfpt_types_by_key;
  std::set<std::uint32_t> vtable_keys;
  for (const auto& [type_id, gfpts] : world.gfpts_by_type) {
    for (const auto& [name, key] : gfpts) {
      if (key != 0) gfpt_types_by_key[key].insert(type_id);
    }
  }
  for (const auto& [class_id, vtables] : world.vtables_by_class) {
    for (const auto& [name, key] : vtables) {
      if (key != 0) vtable_keys.insert(key);
    }
  }
  for (const auto& [key, types] : gfpt_types_by_key) {
    if (types.size() > 1) {
      report->Add(Rule::kIrTypeKeyCollision, "",
                  StrFormat("key %u shared by GFPTs of %zu distinct "
                            "function types",
                            key, types.size()));
    }
    if (vtable_keys.count(key) != 0) {
      report->Add(Rule::kIrTypeKeyCollision, "",
                  StrFormat("key %u shared by a GFPT and a vtable", key));
    }
  }
}

}  // namespace roload::verify
