#include "verify/callgraph.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "isa/encoding.h"
#include "isa/opcodes.h"

namespace roload::verify {

using asmtool::LinkImage;
using asmtool::Section;
using isa::Instruction;
using isa::Opcode;

std::vector<FuncSpan> CarveFunctions(const LinkImage& image) {
  std::vector<FuncSpan> funcs;
  for (const Section& sec : image.sections) {
    if (!sec.perms.exec) continue;
    // Function symbols: inside this section, not block-local (.L_*).
    std::vector<std::pair<std::uint64_t, std::string>> syms;
    for (const auto& [name, addr] : image.symbols) {
      if (addr < sec.vaddr || addr >= sec.vaddr + sec.size) continue;
      if (name.rfind(".L", 0) == 0) continue;
      syms.emplace_back(addr, name);
    }
    std::sort(syms.begin(), syms.end());
    const std::uint64_t code_end = sec.vaddr + sec.bytes.size();
    for (std::size_t i = 0; i < syms.size(); ++i) {
      std::uint64_t end =
          i + 1 < syms.size() ? syms[i + 1].first : code_end;
      if (syms[i].first >= end) continue;  // aliased symbol, zero-size
      funcs.push_back(FuncSpan{syms[i].second, syms[i].first, end});
    }
  }
  return funcs;
}

DecodedFunc DecodeFunc(const Section& sec, const FuncSpan& span) {
  DecodedFunc fn;
  fn.span = span;
  std::uint64_t pc = span.start;
  while (pc + 2 <= span.end) {
    const std::uint64_t off = pc - sec.vaddr;
    std::uint32_t raw = 0;
    const std::uint64_t avail =
        std::min<std::uint64_t>(4, sec.bytes.size() - off);
    std::memcpy(&raw, sec.bytes.data() + off, avail);
    std::uint16_t low16 = static_cast<std::uint16_t>(raw);
    const unsigned len = isa::ParcelLength(low16);
    if (pc + len > span.end) break;
    std::optional<Instruction> inst = isa::Decode(raw);
    if (!inst.has_value()) break;  // alignment padding / data tail
    fn.index_of[pc] = fn.insts.size();
    fn.pcs.push_back(pc);
    fn.insts.push_back(*inst);
    pc += inst->length;
  }
  return fn;
}

const Section* ExecSectionFor(const LinkImage& image, const FuncSpan& span) {
  for (const Section& sec : image.sections) {
    if (sec.perms.exec && span.start >= sec.vaddr &&
        span.start < sec.vaddr + sec.size) {
      return &sec;
    }
  }
  return nullptr;
}

bool IsKeyedRoSection(const Section& sec) {
  return sec.key != 0 && sec.perms.read && !sec.perms.write &&
         !sec.perms.exec;
}

namespace {

// Iterative Tarjan over the direct-call edges. SCCs complete callees
// first, so assigning ids in completion order gives every cross-SCC edge
// a strictly smaller callee id — the bottom-up summary order.
void ComputeSccs(CallGraph* cg) {
  const std::size_t n = cg->funcs.size();
  cg->scc_id.assign(n, kNoFunc);
  std::vector<std::size_t> index(n, kNoFunc), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0, next_scc = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge = 0;  // next callee position to visit
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNoFunc) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.node;
      if (f.edge < cg->callees[v].size()) {
        const std::size_t w = cg->callees[v][f.edge++];
        if (index[w] == kNoFunc) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          cg->scc_id[w] = next_scc;
          if (w == v) break;
        }
        ++next_scc;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }

  cg->bottom_up.resize(n);
  for (std::size_t i = 0; i < n; ++i) cg->bottom_up[i] = i;
  std::stable_sort(cg->bottom_up.begin(), cg->bottom_up.end(),
                   [cg](std::size_t a, std::size_t b) {
                     return cg->scc_id[a] < cg->scc_id[b];
                   });
}

}  // namespace

CallGraph BuildCallGraph(const LinkImage& image) {
  CallGraph cg;
  for (const FuncSpan& span : CarveFunctions(image)) {
    const Section* sec = ExecSectionFor(image, span);
    if (sec == nullptr) continue;
    cg.funcs.push_back(DecodeFunc(*sec, span));
  }
  const std::size_t n = cg.funcs.size();
  for (std::size_t i = 0; i < n; ++i) {
    cg.func_by_entry[cg.funcs[i].span.start] = i;
  }

  cg.callees.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    const DecodedFunc& fn = cg.funcs[i];
    for (std::size_t j = 0; j < fn.insts.size(); ++j) {
      const Instruction& inst = fn.insts[j];
      if (inst.op != Opcode::kJal) continue;
      const std::uint64_t target = fn.pcs[j] + inst.imm;
      if (inst.rd == 0 && fn.index_of.count(target) != 0) continue;  // jump
      const std::size_t callee = cg.FuncAt(target);
      if (callee == kNoFunc) continue;
      cg.callees[i].push_back(callee);
    }
    std::sort(cg.callees[i].begin(), cg.callees[i].end());
    cg.callees[i].erase(
        std::unique(cg.callees[i].begin(), cg.callees[i].end()),
        cg.callees[i].end());
  }

  // Address-taken sweep: any 8-byte little-endian window in a
  // non-executable section that spells a function entry address.
  cg.address_taken.assign(n, false);
  cg.keyed_target.assign(n, false);
  for (const Section& sec : image.sections) {
    if (sec.perms.exec || sec.bytes.size() < 8) continue;
    const bool keyed = IsKeyedRoSection(sec);
    for (std::size_t off = 0; off + 8 <= sec.bytes.size(); ++off) {
      std::uint64_t word = 0;
      std::memcpy(&word, sec.bytes.data() + off, 8);
      const std::size_t f = cg.FuncAt(word);
      if (f == kNoFunc) continue;
      cg.address_taken[f] = true;
      if (keyed) cg.keyed_target[f] = true;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (image.entry >= cg.funcs[i].span.start &&
        image.entry < cg.funcs[i].span.end) {
      cg.entry_func = i;
      break;
    }
  }

  ComputeSccs(&cg);
  return cg;
}

}  // namespace roload::verify
