// Interprocedural layer of the binary verifier: the abstract domain the
// per-function fixpoint runs over, and per-function call summaries folded
// bottom-up over the CallGraph's SCC condensation.
//
// The value lattice is
//     Bottom | Const(u64) | RoLoaded(key) | Entry(reg) | Unknown
// where Entry(r) means "still exactly the value register r held at
// function entry". Entry provenance is what makes summaries compositional:
// a callee that returns Entry(a0) is an identity wrapper (the caller
// substitutes its own pre-call a0), callee-saved registers that reach an
// exit as Entry(s) are proven preserved, and a `ret` whose ra is Entry(ra)
// provably returns to its caller.
//
// A FuncSummary records only what was *proven* about a function; every
// "couldn't prove" answer degrades to the same ABI assumptions the old
// intraprocedural verifier hard-coded (caller-saved clobbered,
// callee-saved preserved, frame unknown -> spill slots dropped), so
// summaries only ever add precision, never new assumptions.
//
// Summaries are computed in two deterministic passes: pass 1 runs with no
// model for indirect calls, then the summaries of every *keyed-target*
// function (entry address present in keyed read-only bytes — the only
// values an ld.ro-proven dispatch can produce) are joined into one
// `keyed_join` summary, and pass 2 re-folds every function using that
// join at proven-RoLoaded `jalr` sites. The rule-checking phase re-runs
// the same context, so checking and summaries cannot disagree.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "verify/callgraph.h"

namespace roload::verify {

struct AbsVal {
  enum class Kind : std::uint8_t {
    kBottom,
    kConst,
    kRoLoaded,
    kEntry,
    kUnknown,
  };
  Kind kind = Kind::kBottom;
  std::uint64_t bits = 0;  // kConst: value; kRoLoaded: key; kEntry: reg id

  static AbsVal Bottom() { return {}; }
  static AbsVal Const(std::uint64_t v) { return {Kind::kConst, v}; }
  static AbsVal RoLoaded(std::uint32_t key) { return {Kind::kRoLoaded, key}; }
  static AbsVal Entry(std::uint8_t reg) { return {Kind::kEntry, reg}; }
  static AbsVal Unknown() { return {Kind::kUnknown, 0}; }

  bool IsEntryOf(std::uint8_t reg) const {
    return kind == Kind::kEntry && bits == reg;
  }

  bool operator==(const AbsVal&) const = default;
};

AbsVal Join(const AbsVal& a, const AbsVal& b);

// Machine state at one program point: the 32 integer registers, the
// stack-pointer displacement from function entry, and the abstract
// contents of sp-relative 8-byte slots (keyed by entry-relative offset).
struct State {
  AbsVal regs[32];
  bool reached = false;
  bool sp_valid = true;
  std::int64_t sp_off = 0;  // sp == entry_sp + sp_off
  std::map<std::int64_t, AbsVal> slots;
};

void DropSlots(State* s);
void InvalidateSp(State* s);
// Joins `from` into `into`; returns true when `into` changed.
bool Merge(State* into, const State& from);

// What one bottom-up fold proved about a function. Default-constructed
// (analyzed == false) means "no summary": callers fall back to the plain
// ABI clobber model.
struct FuncSummary {
  bool analyzed = false;
  // Some exit returns to the caller (ret, or a tail call that returns).
  bool returns = false;
  // Join of a0/a1 over all returning exits. Entry(r) values are relative
  // to *this* function's entry, i.e. the caller's pre-call registers.
  AbsVal ret_a0 = AbsVal::Bottom();
  AbsVal ret_a1 = AbsVal::Bottom();
  // Callee-saved registers (s0-s11) *provably* not preserved on some exit
  // (bit index == register number). Unset bits keep the ABI assumption.
  std::uint32_t clobbered_mask = 0;
  // Proven: no reachable store (transitively through calls) writes
  // outside this function's own frame, so the caller's spill slots — and
  // the dispatch proofs living in them — survive the call.
  bool frame_safe = false;
  // Provably returns with sp != entry sp (summary side of rule 35).
  bool sp_broken = false;
  // Bit k set: some reachable dispatch consumes Entry(a_k) — the proof
  // obligation is delegated to every caller (rules 32/33).
  std::uint8_t dispatch_args = 0;
};

// Everything a per-function fixpoint needs to model calls. `summaries`
// null = clobber every call (the old intraprocedural behavior);
// `keyed_join` null = clobber every indirect call.
struct AnalysisContext {
  const CallGraph* cg = nullptr;
  const std::vector<FuncSummary>* summaries = nullptr;
  const FuncSummary* keyed_join = nullptr;
  std::size_t func = kNoFunc;  // index of the function being analyzed
};

// How one call/tail site resolves under a context. kConservative: known
// or unknown callee but no usable summary (in-SCC edge, unanalyzed, or
// unproven indirect target) — apply the ABI clobber model.
struct CalleeRef {
  enum class Kind : std::uint8_t { kNone, kSummary, kConservative };
  Kind kind = Kind::kNone;
  const FuncSummary* summary = nullptr;
  std::size_t callee = kNoFunc;  // resolved direct callee, if any
};

CalleeRef ResolveCallee(const AnalysisContext& ctx, const DecodedFunc& fn,
                        std::uint64_t pc, const isa::Instruction& inst,
                        const State& s);

struct Successors {
  std::uint64_t pcs[2];
  int count = 0;
  void Add(std::uint64_t pc) { pcs[count++] = pc; }
};

// Applies `inst` at `pc` to `s`; returns the intra-function successors.
Successors Step(const AnalysisContext& ctx, const DecodedFunc& fn,
                std::uint64_t pc, const isa::Instruction& inst, State* s);

struct FuncAnalysis {
  std::vector<State> in;  // converged state *before* each instruction
};

FuncAnalysis Analyze(const AnalysisContext& ctx, const DecodedFunc& fn);

// One walk over the converged states, classifying every reachable exit
// point and escaping store. Both the summary fold and the rule checks
// consume this same walk, so they cannot disagree.
struct ExitPoint {
  enum class Kind : std::uint8_t { kRet, kTailDirect, kTailIndirect };
  Kind kind = Kind::kRet;
  std::size_t inst = 0;  // index into fn.insts
  CalleeRef tail;        // resolved target for tail exits
  State state;           // converged in-state at the exit instruction
};

struct EscapeStore {
  std::size_t inst = 0;
  bool roload_value = false;  // the stored value carries ld.ro provenance
};

struct FuncEffects {
  std::vector<ExitPoint> exits;
  // Stores not provably contained in the function's own frame.
  std::vector<EscapeStore> escapes;
  // Some call or tail target may write beyond its own frame.
  bool calls_unsafe = false;
  // Bit k set: a reachable dispatch consumes Entry(a_k).
  std::uint8_t dispatch_entry_args = 0;
};

FuncEffects ScanEffects(const AnalysisContext& ctx, const DecodedFunc& fn,
                        const FuncAnalysis& analysis);

// Callee-saved register provably not holding its entry value.
bool ProvablyClobbered(const AbsVal& v, std::uint8_t reg);
// s0-s11 (x8, x9, x18-x27).
bool IsCalleeSaved(int r);

struct SummarySet {
  std::vector<FuncSummary> summaries;  // final (pass 2) summaries
  // The pass-2 indirect-call model: join over keyed-target functions.
  // analyzed == false when the image has no keyed targets.
  FuncSummary keyed_join;
};

SummarySet ComputeSummaries(const CallGraph& cg);

}  // namespace roload::verify
