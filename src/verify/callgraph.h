// Whole-image function carving, linear decode, and the call graph the
// interprocedural verifier and the gadget scanner share.
//
// Functions are carved from the symbol table of every executable section
// (non-.L symbols, spans running to the next symbol or the section's code
// end) and decoded linearly. On top of the decoded bodies, BuildCallGraph
// resolves every `jal` call/tail edge whose target is a carved function
// entry, records indirect (`jalr`) sites, scans data sections for
// address-taken function entries (8-byte little-endian windows at every
// byte offset, so handler tables and vtables are found without
// relocations), marks the functions reachable from *keyed* read-only
// sections (the only entries an ld.ro-proven dispatch can reach), and
// computes a Tarjan SCC condensation with a bottom-up order so call
// summaries can be folded callees-first.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmtool/image.h"
#include "isa/instruction.h"

namespace roload::verify {

inline constexpr std::size_t kNoFunc = static_cast<std::size_t>(-1);

// A function carved out of an executable section's symbol table.
struct FuncSpan {
  std::string name;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

// Linearly decoded function body.
struct DecodedFunc {
  FuncSpan span;
  std::vector<std::uint64_t> pcs;
  std::vector<isa::Instruction> insts;
  std::map<std::uint64_t, std::size_t> index_of;  // pc -> insts index
};

std::vector<FuncSpan> CarveFunctions(const asmtool::LinkImage& image);
// Nonzero key, mapped R-- (the only shape rule 21 admits for keyed data).
bool IsKeyedRoSection(const asmtool::Section& sec);
DecodedFunc DecodeFunc(const asmtool::Section& sec, const FuncSpan& span);
const asmtool::Section* ExecSectionFor(const asmtool::LinkImage& image,
                                       const FuncSpan& span);

struct CallGraph {
  std::vector<DecodedFunc> funcs;
  std::map<std::uint64_t, std::size_t> func_by_entry;  // entry pc -> index
  // Deduped direct callees (call or tail) per function, by index.
  std::vector<std::vector<std::size_t>> callees;
  // Entry address found in non-executable section bytes (handler tables,
  // vtables, spilled literals) — the function's address escaped into data.
  std::vector<bool> address_taken;
  // Entry address found specifically in keyed read-only section bytes:
  // the targets an ld.ro-proven dispatch can actually reach.
  std::vector<bool> keyed_target;
  std::size_t entry_func = kNoFunc;  // function containing image.entry
  std::vector<std::size_t> scc_id;   // per function; callee SCCs number lower
  std::vector<std::size_t> bottom_up;  // function indices, callees first

  // Index of the carved function whose entry is exactly `pc`, or kNoFunc.
  std::size_t FuncAt(std::uint64_t pc) const {
    auto it = func_by_entry.find(pc);
    return it == func_by_entry.end() ? kNoFunc : it->second;
  }
};

CallGraph BuildCallGraph(const asmtool::LinkImage& image);

}  // namespace roload::verify
