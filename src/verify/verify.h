// Static pointee-integrity verifier: re-derives the paper's guarantee
// ("the value fed to a sensitive operation was loaded from a read-only
// page with the right key") from the build *artifacts*, so the compiler
// pipeline (src/passes, src/backend, src/asmtool) drops out of the TCB.
//
// Two layers share one diagnostic vocabulary:
//  * IR lint (ir_lint.h)  — checks a hardened ir::Module: roload-md keys
//    are valid and consistent with the keyed globals they can reach,
//    vtables/GFPTs live in keyed read-only storage, and incompatible
//    function types never share a key.
//  * Binary verifier (binary.h) — decodes a linked LinkImage and runs an
//    intraprocedural abstract interpretation (register + stack-slot
//    lattice: Unknown | Const | RoLoaded(key)) proving that dispatch
//    targets are ld.ro-loaded on all paths, that statically-resolvable
//    ld.ro targets lie in matching keyed read-only sections, and that no
//    writable mapping aliases a keyed frame.
//
// Every violation carries a stable numeric rule id (RV0NN); the CLI exit
// code of `rverify` is the smallest violated rule id, which is what the
// negative-path tests assert on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.h"

namespace roload::verify {

// Stable rule identifiers. 10-15 are IR-lint rules, 20-28 binary rules,
// 29 the loader page-table cross-check, 30-35 the interprocedural
// (call-summary) rules.
// The numeric values are part of the tool contract (exit codes, JSON);
// never renumber, only append.
enum class Rule : int {
  // IR lint.
  kIrKeyInvalid = 10,           // roload-md key 0 or >= kNumPageKeys
  kIrKeyedGlobalWritable = 11,  // global with nonzero key not read-only
  kIrLoadKeyMismatch = 12,      // md load key inconsistent with the keyed
                                // globals reachable through its trait
  kIrSensitiveGlobalUnkeyed = 13,  // vtable/GFPT not in keyed RO storage
                                   // while the module relies on ld.ro
  kIrTypeKeyCollision = 14,     // incompatible function types share a key
  kIrStructural = 15,           // module fails ir::Verify

  // Binary verifier.
  kBinSectionAttrs = 20,        // .rodata.key.<K> name/key inconsistent
  kBinWritableKeyAlias = 21,    // keyed section writable/executable, or a
                                // writable mapping aliases keyed pages
  kBinKeyUnmapped = 22,         // ld.ro key has no keyed RO section
  kBinStaticTargetMismatch = 23,  // resolved ld.ro target outside the
                                  // matching keyed RO section
  kBinUnprovenDispatch = 24,    // dispatch target not proven RoLoaded on
                                // all paths (policy-gated)
  kBinRoloadCountMismatch = 25,  // #ld.ro in image != hardened-IR count
  kBinMissingFixup = 26,        // addi offset-fixup count != IR count
  kBinSymbolMisplaced = 27,     // keyed global's symbol in wrong section
  kBinMissingCfiId = 28,        // function entry lacks the CFI ID word

  // Loader cross-check (core::VerifyLoadedImage, rrun --verify): the
  // rules above prove the *image*; rule 29 proves the page tables the
  // kernel actually built from it.
  kLoaderKeyMismatch = 29,      // a .rodata.key.<K> page is not mapped
                                // read-only with key K (e.g. loaded by a
                                // kernel that is not roload-aware)

  // Interprocedural rules over call summaries. 30/31/34/35 report only
  // *provable* violations (an unprovable fact keeps the ABI assumption,
  // exactly like the intraprocedural verifier), so they are universal;
  // 32/33 extend the dispatch proof across call boundaries and are gated
  // by BinaryPolicy::require_protected_dispatch.
  kBinCalleeSavedClobbered = 30,  // callee-saved register provably not
                                  // preserved at a function exit
  kBinRoloadEscape = 31,        // ld.ro result provably stored outside
                                // the function's own stack frame: the
                                // keyed pointer escapes to memory an
                                // attacker may control
  kBinUnprovenCalleeArg = 32,   // direct call passes an unproven value in
                                // an argument register the callee
                                // dispatches on (policy-gated)
  kBinObligationUndischargeable = 33,  // a function dispatching on an
                                       // argument is address-taken or the
                                       // entry point, so no caller-side
                                       // proof can cover every call
                                       // (policy-gated)
  kBinRetAddrUnproven = 34,     // ra at an exit provably does not hold
                                // the caller's return address
  kBinSpImbalance = 35,         // exit reached with sp provably displaced
                                // from its entry value
};

int RuleId(Rule rule);
// Short kebab-case name, e.g. "bin-unproven-dispatch".
std::string_view RuleName(Rule rule);

struct Violation {
  Rule rule = Rule::kIrStructural;
  std::string where;       // function, section or global name ("" if n/a)
  std::uint64_t pc = 0;    // meaningful only when has_pc
  bool has_pc = false;
  std::string message;
};

// Aggregate statistics, filled by whichever layers ran.
struct ReportStats {
  std::uint64_t lint_globals = 0;
  std::uint64_t lint_md_loads = 0;
  std::uint64_t sections = 0;
  std::uint64_t keyed_sections = 0;
  std::uint64_t functions = 0;
  std::uint64_t instructions = 0;
  std::uint64_t roload_instructions = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t proven_dispatches = 0;
};

class Report {
 public:
  void Add(Rule rule, std::string where, std::string message);
  void AddAt(Rule rule, std::string where, std::uint64_t pc,
             std::string message);

  bool ok() const { return violations_.empty(); }
  // 0 when clean, else the smallest violated rule id (deterministic, and
  // what the rverify CLI exits with).
  int ExitCode() const;

  const std::vector<Violation>& violations() const { return violations_; }
  ReportStats& stats() { return stats_; }
  const ReportStats& stats() const { return stats_; }

  // One "RV0NN rule-name where (pc 0x..): message" line per violation,
  // plus a summary line.
  std::string ToText() const;
  // {"schema":"roload.verify.v1","tool":...,"ok":...,"stats":{...},
  //  "violations":[{"rule_id":...,"rule":...,"where":...,"pc":...,
  //                 "message":...}]}
  std::string ToJson(std::string_view tool, std::string_view image,
                     std::string_view policy) const;

 private:
  std::vector<Violation> violations_;
  ReportStats stats_;
};

// What the binary verifier is entitled to assume. `require_protected_
// dispatch` is the full ICall guarantee: every indirect call/jump target
// must be proven RoLoaded(some key) on all paths. Defenses that protect
// only a subset of dispatches (VCall) or none via ld.ro (VTint, classic
// CFI, none) get the universal consistency rules only.
struct BinaryPolicy {
  std::string name = "none";
  bool require_protected_dispatch = false;
};

// Build-manifest expectations derived from the *hardened* IR module.
// With these the binary verifier can prove artifact/IR agreement (counts,
// symbol placement, CFI ID words) on top of the artifact-only rules.
struct Expectations {
  // Global name -> page key, for every keyed global (vtables, GFPTs,
  // allowlists). Symbols must land in a read-only section with that key.
  std::map<std::string, std::uint32_t> keyed_symbols;
  // Function name -> expected 20-bit CFI ID-word immediate (classic CFI).
  std::map<std::string, std::uint32_t> cfi_ids;
  std::uint64_t roload_loads = 0;  // md loads the backend must emit
  std::uint64_t addi_fixups = 0;   // md loads with a folded offset
};

Expectations ComputeExpectations(const ir::Module& hardened);

}  // namespace roload::verify
