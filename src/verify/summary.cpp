#include "verify/summary.h"

#include <algorithm>
#include <deque>

#include "isa/opcodes.h"
#include "isa/registers.h"

namespace roload::verify {
namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::uint8_t kSp = static_cast<std::uint8_t>(isa::Reg::kSp);
constexpr std::uint8_t kRa = static_cast<std::uint8_t>(isa::Reg::kRa);
constexpr std::uint8_t kA0 = static_cast<std::uint8_t>(isa::Reg::kA0);

bool IsCallerSaved(int r) {
  return r == 1 || (r >= 5 && r <= 7) || (r >= 10 && r <= 17) ||
         (r >= 28 && r <= 31);
}

// The no-summary call model: caller-saved registers die, callee-saved
// survive (ABI assumption), spill slots die (the callee may store
// anywhere).
void ClobberCall(State* s) {
  for (int r = 0; r < 32; ++r) {
    if (IsCallerSaved(r)) s->regs[r] = AbsVal::Unknown();
  }
  DropSlots(s);
}

void SetReg(State* s, std::uint8_t rd, AbsVal v) {
  if (rd != 0) s->regs[rd] = v;
}

// Is `jalr` a plain return? (The assembler's `ret` pseudo.)
bool IsRet(const Instruction& inst) {
  return inst.op == Opcode::kJalr && inst.rd == 0 && inst.rs1 == kRa &&
         inst.imm == 0;
}

// Maps a callee-relative value (a summary's ret_a0/ret_a1) into the
// caller's frame: Entry(j) is the caller's pre-call register j.
AbsVal ResolveThroughCaller(const AbsVal& v, const State& pre_call) {
  switch (v.kind) {
    case AbsVal::Kind::kConst:
    case AbsVal::Kind::kRoLoaded:
      return v;
    case AbsVal::Kind::kEntry:
      return pre_call.regs[v.bits];
    default:
      return AbsVal::Unknown();
  }
}

// The summary call model: everything the summary proved survives, every
// unproven fact degrades to exactly what ClobberCall assumes.
void ApplyCallSummary(const FuncSummary& sum, State* s) {
  const State pre = *s;
  for (int r = 0; r < 32; ++r) {
    if (IsCallerSaved(r)) s->regs[r] = AbsVal::Unknown();
  }
  if (sum.returns) {
    s->regs[kA0] = ResolveThroughCaller(sum.ret_a0, pre);
    s->regs[kA0 + 1] = ResolveThroughCaller(sum.ret_a1, pre);
  }
  for (int r = 0; r < 32; ++r) {
    if (IsCalleeSaved(r) && ((sum.clobbered_mask >> r) & 1)) {
      s->regs[r] = AbsVal::Unknown();
    }
  }
  if (sum.sp_broken) InvalidateSp(s);
  if (!sum.frame_safe) DropSlots(s);
}

void ApplyCall(const CalleeRef& ref, State* s) {
  if (ref.kind == CalleeRef::Kind::kSummary) {
    ApplyCallSummary(*ref.summary, s);
  } else {
    ClobberCall(s);
  }
}

// Entry-relative offset of a store, when it provably stays inside the
// function's own frame [current sp_off, entry sp).
bool StoreInOwnFrame(const State& s, const Instruction& inst) {
  if (inst.rs1 != kSp || !s.sp_valid) return false;
  const std::int64_t off = s.sp_off + inst.imm;
  return off >= s.sp_off && off < 0;
}

}  // namespace

AbsVal Join(const AbsVal& a, const AbsVal& b) {
  if (a == b) return a;
  if (a.kind == AbsVal::Kind::kBottom) return b;
  if (b.kind == AbsVal::Kind::kBottom) return a;
  return AbsVal::Unknown();
}

void DropSlots(State* s) { s->slots.clear(); }

void InvalidateSp(State* s) {
  s->sp_valid = false;
  s->slots.clear();
}

bool Merge(State* into, const State& from) {
  if (!into->reached) {
    *into = from;
    into->reached = true;
    return true;
  }
  bool changed = false;
  for (int r = 0; r < 32; ++r) {
    AbsVal j = Join(into->regs[r], from.regs[r]);
    if (!(j == into->regs[r])) {
      into->regs[r] = j;
      changed = true;
    }
  }
  if (into->sp_valid &&
      (!from.sp_valid || from.sp_off != into->sp_off)) {
    InvalidateSp(into);
    changed = true;
  }
  if (into->sp_valid) {
    for (auto it = into->slots.begin(); it != into->slots.end();) {
      auto other = from.slots.find(it->first);
      AbsVal j = other == from.slots.end()
                     ? AbsVal::Unknown()
                     : Join(it->second, other->second);
      if (j.kind == AbsVal::Kind::kUnknown) {
        it = into->slots.erase(it);
        changed = true;
      } else {
        if (!(j == it->second)) {
          it->second = j;
          changed = true;
        }
        ++it;
      }
    }
  }
  return changed;
}

bool IsCalleeSaved(int r) {
  return r == 8 || r == 9 || (r >= 18 && r <= 27);
}

bool ProvablyClobbered(const AbsVal& v, std::uint8_t reg) {
  switch (v.kind) {
    case AbsVal::Kind::kConst:
    case AbsVal::Kind::kRoLoaded:
      return true;
    case AbsVal::Kind::kEntry:
      return v.bits != reg;
    default:
      return false;  // Unknown/Bottom: not provable either way
  }
}

CalleeRef ResolveCallee(const AnalysisContext& ctx, const DecodedFunc& fn,
                        std::uint64_t pc, const Instruction& inst,
                        const State& s) {
  (void)fn;
  CalleeRef ref;
  if (inst.op == Opcode::kJal) {
    ref.kind = CalleeRef::Kind::kConservative;
    if (ctx.cg == nullptr) return ref;
    ref.callee = ctx.cg->FuncAt(pc + inst.imm);
    if (ref.callee == kNoFunc || ctx.summaries == nullptr) return ref;
    // In-SCC edges (including self-recursion) have no finished summary;
    // they keep the conservative model — the documented precision limit.
    if (ctx.func != kNoFunc &&
        ctx.cg->scc_id[ref.callee] == ctx.cg->scc_id[ctx.func]) {
      return ref;
    }
    const FuncSummary& sum = (*ctx.summaries)[ref.callee];
    if (!sum.analyzed) return ref;
    ref.kind = CalleeRef::Kind::kSummary;
    ref.summary = &sum;
    return ref;
  }
  // jalr: the only provable indirect targets are ld.ro results, which can
  // only reach keyed-table entries — modeled by the keyed join.
  ref.kind = CalleeRef::Kind::kConservative;
  const AbsVal target = s.regs[inst.rs1];
  if (target.kind == AbsVal::Kind::kRoLoaded && inst.imm == 0 &&
      ctx.keyed_join != nullptr && ctx.keyed_join->analyzed) {
    ref.kind = CalleeRef::Kind::kSummary;
    ref.summary = ctx.keyed_join;
  }
  return ref;
}

Successors Step(const AnalysisContext& ctx, const DecodedFunc& fn,
                std::uint64_t pc, const Instruction& inst, State* s) {
  Successors succ;
  const std::uint64_t next = pc + inst.length;
  auto in_func = [&fn](std::uint64_t target) {
    return fn.index_of.count(target) != 0;
  };

  switch (inst.op) {
    case Opcode::kLui:
      SetReg(s, inst.rd,
             AbsVal::Const(static_cast<std::uint64_t>(inst.imm) << 12));
      succ.Add(next);
      return succ;
    case Opcode::kAuipc:
      SetReg(s, inst.rd,
             AbsVal::Const(pc + (static_cast<std::uint64_t>(inst.imm) << 12)));
      succ.Add(next);
      return succ;
    case Opcode::kAddi: {
      if (inst.rd == kSp) {
        if (inst.rs1 == kSp && s->sp_valid) {
          s->sp_off += inst.imm;
        } else {
          InvalidateSp(s);
        }
        succ.Add(next);
        return succ;
      }
      const AbsVal src = s->regs[inst.rs1];
      if (src.kind == AbsVal::Kind::kConst) {
        SetReg(s, inst.rd, AbsVal::Const(src.bits + inst.imm));
      } else if (inst.imm == 0) {
        SetReg(s, inst.rd, src);  // mv preserves provenance
      } else {
        SetReg(s, inst.rd, AbsVal::Unknown());
      }
      succ.Add(next);
      return succ;
    }
    case Opcode::kAddiw: {
      const AbsVal src = s->regs[inst.rs1];
      if (inst.rd == kSp) {
        InvalidateSp(s);
      } else if (src.kind == AbsVal::Kind::kConst) {
        SetReg(s, inst.rd,
               AbsVal::Const(static_cast<std::uint64_t>(
                   static_cast<std::int32_t>(src.bits + inst.imm))));
      } else {
        SetReg(s, inst.rd, AbsVal::Unknown());
      }
      succ.Add(next);
      return succ;
    }
    case Opcode::kJal:
      if (inst.rd == 0) {
        const std::uint64_t target = pc + inst.imm;
        if (in_func(target)) succ.Add(target);
        return succ;  // tail call out of the function otherwise
      }
      ApplyCall(ResolveCallee(ctx, fn, pc, inst, *s), s);
      SetReg(s, inst.rd, AbsVal::Unknown());
      succ.Add(next);
      return succ;
    case Opcode::kJalr:
      if (IsRet(inst)) return succ;
      if (inst.rd != 0) {
        ApplyCall(ResolveCallee(ctx, fn, pc, inst, *s), s);
        SetReg(s, inst.rd, AbsVal::Unknown());
        succ.Add(next);
      }
      return succ;  // rd == x0: tail dispatch, no fallthrough
    case Opcode::kEcall:
      SetReg(s, kA0, AbsVal::Unknown());
      succ.Add(next);
      return succ;
    case Opcode::kEbreak:
    case Opcode::kFence:
      succ.Add(next);
      return succ;
    default:
      break;
  }

  if (isa::IsBranch(inst.op)) {
    const std::uint64_t target = pc + inst.imm;
    if (in_func(target)) succ.Add(target);
    succ.Add(next);
    return succ;
  }
  if (isa::IsRoLoad(inst.op)) {
    if (inst.rd == kSp) InvalidateSp(s);
    SetReg(s, inst.rd, AbsVal::RoLoaded(inst.key));
    succ.Add(next);
    return succ;
  }
  if (isa::IsLoad(inst.op)) {
    AbsVal v = AbsVal::Unknown();
    if (inst.op == Opcode::kLd && inst.rs1 == kSp && s->sp_valid) {
      auto it = s->slots.find(s->sp_off + inst.imm);
      if (it != s->slots.end()) v = it->second;
    }
    if (inst.rd == kSp) {
      InvalidateSp(s);
    } else {
      SetReg(s, inst.rd, v);
    }
    succ.Add(next);
    return succ;
  }
  if (isa::IsStore(inst.op)) {
    if (inst.rs1 == kSp && s->sp_valid) {
      const std::int64_t lo = s->sp_off + inst.imm;
      if (inst.op == Opcode::kSd && lo % 8 == 0) {
        s->slots[lo] = s->regs[inst.rs2];
      } else {
        // Partial overwrite: forget any slot the store touches.
        const std::int64_t hi = lo + isa::MemAccessBytes(inst.op);
        for (std::int64_t slot = (lo / 8) * 8 - 8; slot < hi; slot += 8) {
          s->slots.erase(slot);
        }
      }
    } else {
      DropSlots(s);  // unknown base may alias the stack frame
    }
    succ.Add(next);
    return succ;
  }

  // Remaining ALU ops: result unknown (no proof flows through them).
  if (inst.rd == kSp) {
    InvalidateSp(s);
  } else {
    SetReg(s, inst.rd, AbsVal::Unknown());
  }
  succ.Add(next);
  return succ;
}

FuncAnalysis Analyze(const AnalysisContext& ctx, const DecodedFunc& fn) {
  FuncAnalysis a;
  a.in.resize(fn.insts.size());
  if (fn.insts.empty()) return a;

  State entry;
  for (int r = 1; r < 32; ++r) entry.regs[r] = AbsVal::Entry(r);
  entry.regs[0] = AbsVal::Const(0);
  entry.reached = true;
  a.in[0] = entry;

  std::deque<std::size_t> worklist{0};
  std::vector<bool> queued(fn.insts.size(), false);
  queued[0] = true;
  while (!worklist.empty()) {
    const std::size_t idx = worklist.front();
    worklist.pop_front();
    queued[idx] = false;
    State out = a.in[idx];
    const Successors succ = Step(ctx, fn, fn.pcs[idx], fn.insts[idx], &out);
    out.regs[0] = AbsVal::Const(0);  // x0 is hardwired
    for (int i = 0; i < succ.count; ++i) {
      auto it = fn.index_of.find(succ.pcs[i]);
      if (it == fn.index_of.end()) continue;
      if (Merge(&a.in[it->second], out) && !queued[it->second]) {
        worklist.push_back(it->second);
        queued[it->second] = true;
      }
    }
  }
  return a;
}

FuncEffects ScanEffects(const AnalysisContext& ctx, const DecodedFunc& fn,
                        const FuncAnalysis& analysis) {
  FuncEffects fx;
  for (std::size_t i = 0; i < fn.insts.size(); ++i) {
    const State& in = analysis.in[i];
    if (!in.reached) continue;
    const Instruction& inst = fn.insts[i];
    const std::uint64_t pc = fn.pcs[i];

    if (inst.op == Opcode::kJal) {
      const std::uint64_t target = pc + inst.imm;
      if (inst.rd == 0 && fn.index_of.count(target) != 0) continue;  // jump
      const CalleeRef ref = ResolveCallee(ctx, fn, pc, inst, in);
      if (ref.kind != CalleeRef::Kind::kSummary ||
          !ref.summary->frame_safe) {
        fx.calls_unsafe = true;
      }
      if (inst.rd == 0) {
        fx.exits.push_back(
            ExitPoint{ExitPoint::Kind::kTailDirect, i, ref, in});
      }
      continue;
    }
    if (inst.op == Opcode::kJalr) {
      if (IsRet(inst)) {
        fx.exits.push_back(ExitPoint{ExitPoint::Kind::kRet, i, {}, in});
        continue;
      }
      const AbsVal target = in.regs[inst.rs1];
      if (target.kind == AbsVal::Kind::kEntry && inst.imm == 0 &&
          target.bits >= kA0 && target.bits < kA0 + 8) {
        fx.dispatch_entry_args |=
            static_cast<std::uint8_t>(1u << (target.bits - kA0));
      }
      const CalleeRef ref = ResolveCallee(ctx, fn, pc, inst, in);
      if (ref.kind != CalleeRef::Kind::kSummary ||
          !ref.summary->frame_safe) {
        fx.calls_unsafe = true;
      }
      if (inst.rd == 0) {
        fx.exits.push_back(
            ExitPoint{ExitPoint::Kind::kTailIndirect, i, ref, in});
      }
      continue;
    }
    if (isa::IsStore(inst.op) && !StoreInOwnFrame(in, inst)) {
      fx.escapes.push_back(EscapeStore{
          i, in.regs[inst.rs2].kind == AbsVal::Kind::kRoLoaded});
    }
  }
  return fx;
}

namespace {

FuncSummary FoldSummary(const FuncEffects& fx) {
  FuncSummary sum;
  sum.analyzed = true;
  sum.frame_safe = fx.escapes.empty() && !fx.calls_unsafe;
  sum.dispatch_args = fx.dispatch_entry_args;
  for (const ExitPoint& exit : fx.exits) {
    const State& st = exit.state;
    // Preservation and sp discipline are local facts at every exit kind:
    // a tail callee starts from whatever this function left behind.
    for (int r = 0; r < 32; ++r) {
      if (IsCalleeSaved(r) &&
          ProvablyClobbered(st.regs[r], static_cast<std::uint8_t>(r))) {
        sum.clobbered_mask |= 1u << r;
      }
    }
    if (st.sp_valid && st.sp_off != 0) sum.sp_broken = true;

    if (exit.kind == ExitPoint::Kind::kRet) {
      sum.returns = true;
      sum.ret_a0 = Join(sum.ret_a0, st.regs[kA0]);
      sum.ret_a1 = Join(sum.ret_a1, st.regs[kA0 + 1]);
      continue;
    }
    // Tail exit: forward the target's summary through this frame.
    if (exit.tail.kind == CalleeRef::Kind::kSummary) {
      const FuncSummary& t = *exit.tail.summary;
      sum.clobbered_mask |= t.clobbered_mask;
      sum.sp_broken = sum.sp_broken || t.sp_broken;
      if (t.returns) {
        sum.returns = true;
        sum.ret_a0 = Join(sum.ret_a0, ResolveThroughCaller(t.ret_a0, st));
        sum.ret_a1 = Join(sum.ret_a1, ResolveThroughCaller(t.ret_a1, st));
      }
    } else {
      // Unknown tail target: may return anything (ABI assumptions apply).
      sum.returns = true;
      sum.ret_a0 = Join(sum.ret_a0, AbsVal::Unknown());
      sum.ret_a1 = Join(sum.ret_a1, AbsVal::Unknown());
    }
  }
  return sum;
}

FuncSummary JoinKeyedTargets(const CallGraph& cg,
                             const std::vector<FuncSummary>& summaries) {
  FuncSummary join;
  join.frame_safe = true;
  for (std::size_t i = 0; i < cg.funcs.size(); ++i) {
    if (!cg.keyed_target[i]) continue;
    const FuncSummary& sum = summaries[i];
    join.analyzed = true;
    join.clobbered_mask |= sum.clobbered_mask;
    join.frame_safe = join.frame_safe && sum.frame_safe;
    join.sp_broken = join.sp_broken || sum.sp_broken;
    join.dispatch_args |= sum.dispatch_args;
    if (sum.returns) {
      join.returns = true;
      join.ret_a0 = Join(join.ret_a0, sum.ret_a0);
      join.ret_a1 = Join(join.ret_a1, sum.ret_a1);
    }
  }
  if (!join.analyzed) join.frame_safe = false;
  return join;
}

}  // namespace

SummarySet ComputeSummaries(const CallGraph& cg) {
  SummarySet set;
  set.summaries.assign(cg.funcs.size(), FuncSummary{});
  auto run_pass = [&](const FuncSummary* keyed_join) {
    for (const std::size_t idx : cg.bottom_up) {
      AnalysisContext ctx{&cg, &set.summaries, keyed_join, idx};
      const FuncAnalysis analysis = Analyze(ctx, cg.funcs[idx]);
      set.summaries[idx] = FoldSummary(ScanEffects(ctx, cg.funcs[idx],
                                                   analysis));
    }
  };
  // Pass 1: no model for indirect calls. The join over the keyed-target
  // summaries is then a sound model for every proven-RoLoaded dispatch,
  // and pass 2 re-folds everything with it. The checking phase reuses
  // exactly this (summaries, keyed_join) pair.
  run_pass(nullptr);
  set.keyed_join = JoinKeyedTargets(cg, set.summaries);
  run_pass(&set.keyed_join);
  return set;
}

}  // namespace roload::verify
