// Layer 2 of the verifier: prove a linked LinkImage (rules 20-28).
//
// Decodes every function in the executable sections and runs an
// intraprocedural abstract interpretation over a small lattice
//   Bottom | Const(u64) | RoLoaded(key) | Unknown
// tracking the 32 integer registers plus sp-relative stack slots (the
// backend spills every virtual register, so proofs must flow through
// memory). The fixpoint proves, per dispatch site, that the register
// feeding `jalr` was defined by an ld.ro-family load on *all* paths,
// and resolves ld.ro base addresses that are statically constant so
// their targets can be checked against the keyed section layout.
//
// Optional `Expectations` (from the hardened IR) add the build-manifest
// rules: ld.ro/addi-fixup counts, keyed-symbol placement, CFI ID words.
#pragma once

#include "asmtool/image.h"
#include "verify/verify.h"

namespace roload::verify {

// Appends any rule 20-28 violations to `report` and fills its binary
// stats (sections, functions, instructions, dispatch counts).
// `expectations` may be null (artifact-only mode: the rverify CLI on a
// bare .rimg); the manifest rules 25-28 then do not run.
void VerifyImage(const asmtool::LinkImage& image, const BinaryPolicy& policy,
                 const Expectations* expectations, Report* report);

}  // namespace roload::verify
