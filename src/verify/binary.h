// Layer 2 of the verifier: prove a linked LinkImage (rules 20-28 and the
// interprocedural rules 30-35).
//
// Decodes every function in the executable sections (verify/callgraph.h)
// and runs a whole-image abstract interpretation over a small lattice
//   Bottom | Const(u64) | RoLoaded(key) | Entry(reg) | Unknown
// tracking the 32 integer registers plus sp-relative stack slots (the
// backend spills every virtual register, so proofs must flow through
// memory). Bottom-up call summaries (verify/summary.h) model `jal`/`jalr`
// sites, so dispatch proofs survive helper calls: the fixpoint proves,
// per dispatch site, that the register feeding `jalr` was defined by an
// ld.ro-family load — possibly in a callee — on *all* paths, resolves
// statically-constant ld.ro bases against the keyed section layout, and
// checks the summary rules (callee-saved preservation, keyed-pointer
// escapes, caller-side dispatch obligations, return-address and sp
// discipline).
//
// Optional `Expectations` (from the hardened IR) add the build-manifest
// rules: ld.ro/addi-fixup counts, keyed-symbol placement, CFI ID words.
#pragma once

#include "asmtool/image.h"
#include "verify/verify.h"

namespace roload::verify {

struct VerifyImageOptions {
  // Fan-out for the per-function checking phase (campaign::ParallelMap;
  // 0 = one worker per hardware thread). Diagnostics are merged in
  // function index order, so any job count yields bit-identical output.
  unsigned jobs = 1;
};

// Appends any rule 20-28 / 30-35 violations to `report` and fills its
// binary stats (sections, functions, instructions, dispatch counts).
// `expectations` may be null (artifact-only mode: the rverify CLI on a
// bare .rimg); the manifest rules 25-28 then do not run.
void VerifyImage(const asmtool::LinkImage& image, const BinaryPolicy& policy,
                 const Expectations* expectations, Report* report,
                 const VerifyImageOptions& options = {});

}  // namespace roload::verify
