#include "verify/binary.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "campaign/parallel.h"
#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/registers.h"
#include "support/strings.h"
#include "verify/callgraph.h"
#include "verify/summary.h"

namespace roload::verify {
namespace {

using asmtool::LinkImage;
using asmtool::Section;
using isa::Instruction;
using isa::Opcode;

constexpr std::uint64_t kPageSize = 4096;
constexpr std::uint8_t kRa = static_cast<std::uint8_t>(isa::Reg::kRa);
constexpr std::uint8_t kA0 = static_cast<std::uint8_t>(isa::Reg::kA0);

const Section* SectionContaining(const LinkImage& image, std::uint64_t addr,
                                 std::uint64_t size) {
  for (const Section& sec : image.sections) {
    if (addr >= sec.vaddr && addr + size <= sec.vaddr + sec.size) return &sec;
  }
  return nullptr;
}

// Is `jalr` a plain return? (The assembler's `ret` pseudo.)
bool IsRet(const Instruction& inst) {
  return inst.op == Opcode::kJalr && inst.rd == 0 && inst.rs1 == kRa &&
         inst.imm == 0;
}

// ---------------------------------------------------------------------------
// Rule checks.

// Rules 20 + 21 on the section table, and 21's alias sweep.
void CheckSections(const LinkImage& image, Report* report) {
  for (const Section& sec : image.sections) {
    ++report->stats().sections;
    if (sec.key != 0) ++report->stats().keyed_sections;
    const bool keyed_name = sec.name.rfind(".rodata.key.", 0) == 0;
    if (keyed_name) {
      const std::uint32_t named_key = static_cast<std::uint32_t>(
          std::strtoul(sec.name.c_str() + 12, nullptr, 10));
      if (named_key != sec.key) {
        report->Add(Rule::kBinSectionAttrs, sec.name,
                    StrFormat("section named for key %u but mapped with "
                              "key %u",
                              named_key, sec.key));
      }
    } else if (sec.key != 0) {
      report->Add(Rule::kBinSectionAttrs, sec.name,
                  StrFormat("key %u on a section outside the "
                            ".rodata.key.<K> namespace",
                            sec.key));
    }
    if (sec.key != 0 && (sec.perms.write || sec.perms.exec || !sec.perms.read)) {
      report->Add(Rule::kBinWritableKeyAlias, sec.name,
                  StrFormat("keyed section must be R-- but is %c%c%c",
                            sec.perms.read ? 'r' : '-',
                            sec.perms.write ? 'w' : '-',
                            sec.perms.exec ? 'x' : '-'));
    }
  }
  // No writable mapping may share a page with a keyed frame: the PTE key
  // is per page, so such overlap would make the "read-only" pages
  // attacker-writable.
  for (const Section& keyed : image.sections) {
    if (keyed.key == 0 || keyed.size == 0) continue;
    const std::uint64_t klo = keyed.vaddr / kPageSize;
    const std::uint64_t khi = (keyed.vaddr + keyed.size - 1) / kPageSize;
    for (const Section& w : image.sections) {
      if (&w == &keyed || !w.perms.write || w.size == 0) continue;
      const std::uint64_t wlo = w.vaddr / kPageSize;
      const std::uint64_t whi = (w.vaddr + w.size - 1) / kPageSize;
      if (wlo <= khi && klo <= whi) {
        report->Add(Rule::kBinWritableKeyAlias, keyed.name,
                    StrFormat("writable section %s shares pages "
                              "0x%llx..0x%llx with this keyed frame",
                              w.name.c_str(),
                              static_cast<unsigned long long>(
                                  std::max(klo, wlo) * kPageSize),
                              static_cast<unsigned long long>(
                                  (std::min(khi, whi) + 1) * kPageSize - 1)));
      }
    }
  }
}

// Rule 27: every keyed IR global must have landed in an R-- section
// carrying exactly its key.
void CheckKeyedSymbols(const LinkImage& image, const Expectations& exp,
                       Report* report) {
  for (const auto& [name, key] : exp.keyed_symbols) {
    auto it = image.symbols.find(name);
    if (it == image.symbols.end()) {
      report->Add(Rule::kBinSymbolMisplaced, name,
                  StrFormat("keyed global (key %u) missing from the "
                            "image symbol table",
                            key));
      continue;
    }
    const Section* sec = SectionContaining(image, it->second, 1);
    if (sec == nullptr || !IsKeyedRoSection(*sec) || sec->key != key) {
      report->Add(
          Rule::kBinSymbolMisplaced, name,
          StrFormat("expected key-%u read-only placement but symbol is "
                    "in %s (key %u)",
                    key, sec == nullptr ? "no section" : sec->name.c_str(),
                    sec == nullptr ? 0 : sec->key));
    }
  }
}

// Rule 28: classic-CFI functions must begin with the exact ID word.
void CheckCfiIds(const std::vector<DecodedFunc>& funcs,
                 const Expectations& exp, Report* report) {
  std::map<std::string, const DecodedFunc*> by_name;
  for (const DecodedFunc& fn : funcs) by_name[fn.span.name] = &fn;
  for (const auto& [name, id] : exp.cfi_ids) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      report->Add(Rule::kBinMissingCfiId, name,
                  "CFI-checked function not found among decoded functions");
      continue;
    }
    const DecodedFunc& fn = *it->second;
    const Instruction* first =
        fn.insts.empty() ? nullptr : &fn.insts.front();
    if (first == nullptr || first->op != Opcode::kLui || first->rd != 0 ||
        (static_cast<std::uint32_t>(first->imm) & 0xFFFFF) != id) {
      report->AddAt(Rule::kBinMissingCfiId, name, fn.span.start,
                    StrFormat("entry must carry ID word `lui zero, 0x%x`",
                              id));
    }
  }
}

// Rule 26 helper: does the ld.ro at `idx` sit behind an addi offset
// fixup? Walks the mv (addi rd,rs,0) copy chain the compressed-roload
// staging introduces, then recognizes `addi b, b, imm` immediately
// feeding the base.
bool HasAddiFixup(const DecodedFunc& fn, std::size_t idx) {
  std::uint8_t base = fn.insts[idx].rs1;
  for (std::size_t j = idx; j-- > 0;) {
    const Instruction& inst = fn.insts[j];
    if (inst.op != Opcode::kAddi || inst.rd != base || inst.rd == 0) {
      return false;  // base defined by something else (e.g. ld from slot)
    }
    if (inst.imm == 0) {
      base = inst.rs1;  // mv: follow the copy
      continue;
    }
    return inst.rs1 == inst.rd;  // addi b, b, off — the folded offset
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-function checking (phase C — the parallel phase).

std::string DescribeVal(const AbsVal& v) {
  switch (v.kind) {
    case AbsVal::Kind::kConst:
      return StrFormat("a constant (0x%llx)",
                       static_cast<unsigned long long>(v.bits));
    case AbsVal::Kind::kRoLoaded:
      return StrFormat("an ld.ro result (key %llu)",
                       static_cast<unsigned long long>(v.bits));
    case AbsVal::Kind::kEntry:
      return StrFormat("the caller-provided value of %s",
                       std::string(isa::RegName(static_cast<std::uint8_t>(
                                       v.bits)))
                           .c_str());
    default:
      return "an unknown value";
  }
}

// A direct call (or direct tail call) with the caller's abstract argument
// registers at the site — the raw material of the rule 32/33 obligation
// discharge pass.
struct DirectCallSite {
  std::size_t callee = kNoFunc;
  std::uint64_t pc = 0;
  AbsVal args[8];
};

// A dispatch consuming an entry argument: provable only through callers.
struct ObligationSite {
  std::uint64_t pc = 0;
  int bit = 0;  // a0 + bit
};

struct FuncCheck {
  std::vector<Violation> violations;
  std::uint64_t instructions = 0;
  std::uint64_t roloads = 0;
  std::uint64_t fixups = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t proven = 0;
  std::vector<DirectCallSite> calls;
  std::vector<ObligationSite> obligations;
};

FuncCheck CheckFunction(const LinkImage& image, const CallGraph& cg,
                        const SummarySet& sums, const BinaryPolicy& policy,
                        const std::set<std::uint32_t>& mapped_keys,
                        std::size_t idx) {
  const DecodedFunc& fn = cg.funcs[idx];
  FuncCheck out;
  out.instructions = fn.insts.size();
  auto add = [&out](Rule rule, const std::string& where, std::uint64_t pc,
                    std::string message) {
    out.violations.push_back(
        Violation{rule, where, pc, true, std::move(message)});
  };

  // Syntactic sweep: every decoded ld.ro, reachable or not, must name a
  // mapped key; count ld.ro and fixups for the manifest rules.
  for (std::size_t i = 0; i < fn.insts.size(); ++i) {
    const Instruction& inst = fn.insts[i];
    if (!isa::IsRoLoad(inst.op)) continue;
    ++out.roloads;
    if (HasAddiFixup(fn, i)) ++out.fixups;
    if (mapped_keys.count(inst.key) == 0) {
      add(Rule::kBinKeyUnmapped, fn.span.name, fn.pcs[i],
          StrFormat("%s key %u names no keyed read-only section; every "
                    "execution would fault",
                    std::string(isa::OpcodeName(inst.op)).c_str(),
                    inst.key));
    }
  }

  const AnalysisContext ctx{&cg, &sums.summaries, &sums.keyed_join, idx};
  const FuncAnalysis analysis = Analyze(ctx, fn);

  // Semantic pass over the converged abstract states.
  for (std::size_t i = 0; i < fn.insts.size(); ++i) {
    const State& in = analysis.in[i];
    if (!in.reached) continue;
    const Instruction& inst = fn.insts[i];
    const std::uint64_t pc = fn.pcs[i];

    if (isa::IsRoLoad(inst.op)) {
      // Rule 23: statically-resolvable target must land inside the
      // matching keyed frame.
      const AbsVal base = in.regs[inst.rs1];
      if (base.kind == AbsVal::Kind::kConst) {
        const Section* target = SectionContaining(
            image, base.bits, isa::MemAccessBytes(inst.op));
        if (target == nullptr || !IsKeyedRoSection(*target) ||
            target->key != inst.key) {
          add(Rule::kBinStaticTargetMismatch, fn.span.name, pc,
              StrFormat("ld.ro key %u reads 0x%llx which is %s",
                        inst.key,
                        static_cast<unsigned long long>(base.bits),
                        target == nullptr
                            ? "unmapped"
                            : StrFormat("in %s (key %u, %s)",
                                        target->name.c_str(), target->key,
                                        target->perms.write ? "writable"
                                                            : "read-only")
                                  .c_str()));
        }
      }
      continue;
    }

    if (inst.op == Opcode::kJal) {
      // Record direct call/tail-call argument snapshots for the
      // obligation pass (rules 32/33).
      const std::uint64_t target = pc + inst.imm;
      if (inst.rd == 0 && fn.index_of.count(target) != 0) continue;
      const std::size_t callee = cg.FuncAt(target);
      if (callee != kNoFunc) {
        DirectCallSite site;
        site.callee = callee;
        site.pc = pc;
        for (int k = 0; k < 8; ++k) site.args[k] = in.regs[kA0 + k];
        out.calls.push_back(site);
      }
      continue;
    }

    if (inst.op == Opcode::kJalr && !IsRet(inst)) {
      ++out.dispatches;
      const AbsVal target = in.regs[inst.rs1];
      const bool proven =
          target.kind == AbsVal::Kind::kRoLoaded && inst.imm == 0;
      if (proven) {
        ++out.proven;
      } else if (policy.require_protected_dispatch) {
        if (target.kind == AbsVal::Kind::kEntry && inst.imm == 0 &&
            target.bits >= kA0 && target.bits < kA0 + 8) {
          // Dispatch on an argument register: the proof obligation moves
          // to every caller — resolved by the serial obligation pass.
          out.obligations.push_back(
              ObligationSite{pc, static_cast<int>(target.bits - kA0)});
        } else {
          add(Rule::kBinUnprovenDispatch, fn.span.name, pc,
              StrFormat("dispatch target in %s is not an ld.ro result on "
                        "all paths (%s)",
                        std::string(isa::RegName(inst.rs1)).c_str(),
                        target.kind == AbsVal::Kind::kConst
                            ? "constant"
                            : inst.imm != 0
                                  ? "nonzero jalr offset"
                                  : target.kind == AbsVal::Kind::kEntry
                                        ? "caller-provided value"
                                        : "unknown provenance"));
        }
      }
    }
  }

  // Interprocedural effect rules over the same converged states.
  const FuncEffects fx = ScanEffects(ctx, fn, analysis);

  // Rule 31: an ld.ro result written outside the function's own frame
  // escapes to memory whose integrity the scheme cannot vouch for.
  for (const EscapeStore& esc : fx.escapes) {
    if (!esc.roload_value) continue;
    const Instruction& inst = fn.insts[esc.inst];
    add(Rule::kBinRoloadEscape, fn.span.name, fn.pcs[esc.inst],
        StrFormat("ld.ro result in %s stored through %s outside the "
                  "function's own frame: keyed pointer escapes to memory",
                  std::string(isa::RegName(inst.rs2)).c_str(),
                  std::string(isa::RegName(inst.rs1)).c_str()));
  }

  // Rules 30/34/35 at every reachable exit. Only *provable* violations
  // are reported; an unprovable fact keeps the ABI assumption.
  for (const ExitPoint& exit : fx.exits) {
    const State& st = exit.state;
    const std::uint64_t pc = fn.pcs[exit.inst];
    for (int r = 0; r < 32; ++r) {
      if (IsCalleeSaved(r) &&
          ProvablyClobbered(st.regs[r], static_cast<std::uint8_t>(r))) {
        add(Rule::kBinCalleeSavedClobbered, fn.span.name, pc,
            StrFormat("callee-saved %s reaches this exit holding %s "
                      "instead of its entry value",
                      std::string(isa::RegName(static_cast<std::uint8_t>(r)))
                          .c_str(),
                      DescribeVal(st.regs[r]).c_str()));
      }
    }
    if (ProvablyClobbered(st.regs[kRa], kRa)) {
      add(Rule::kBinRetAddrUnproven, fn.span.name, pc,
          StrFormat("ra at this exit holds %s, provably not the caller's "
                    "return address",
                    DescribeVal(st.regs[kRa]).c_str()));
    }
    if (st.sp_valid && st.sp_off != 0) {
      add(Rule::kBinSpImbalance, fn.span.name, pc,
          StrFormat("exit reached with sp displaced %lld bytes from its "
                    "entry value",
                    static_cast<long long>(st.sp_off)));
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// Rule 32/33 obligation discharge (serial; needs every call site).
//
// ob[f] is the set of argument registers function f dispatches on,
// closed transitively: if f dispatches on a_k and caller g forwards its
// own a_j into that slot, then g's callers owe a proof for a_j too.
// A bit is *tainted* when some path can feed it an unproven value:
// address-taken/entry roots (no caller-side proof can cover indirect or
// boot callers) and call sites passing a value that is neither an ld.ro
// result nor a forwarded argument.
void DischargeObligations(const CallGraph& cg, const SummarySet& sums,
                          std::vector<FuncCheck>* checks, Report* report) {
  const std::size_t n = cg.funcs.size();
  std::vector<std::uint8_t> ob(n, 0);
  for (std::size_t f = 0; f < n; ++f) ob[f] = sums.summaries[f].dispatch_args;

  // Close the obligation sets over argument forwarding.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t g = 0; g < n; ++g) {
      for (const DirectCallSite& site : (*checks)[g].calls) {
        for (int k = 0; k < 8; ++k) {
          if (((ob[site.callee] >> k) & 1) == 0) continue;
          const AbsVal& v = site.args[k];
          if (v.kind != AbsVal::Kind::kEntry) continue;
          if (v.bits < kA0 || v.bits >= kA0 + 8) continue;
          const std::uint8_t bit =
              static_cast<std::uint8_t>(1u << (v.bits - kA0));
          if ((ob[g] & bit) == 0) {
            ob[g] |= bit;
            changed = true;
          }
        }
      }
    }
  }

  // Classify every call site against the closed obligation sets; collect
  // forwarding edges for the taint fixpoint.
  std::vector<std::uint8_t> taint(n, 0);
  struct Edge {
    std::size_t from;  // caller
    int from_bit;
    std::size_t to;  // callee
    int to_bit;
  };
  std::vector<Edge> edges;
  for (std::size_t g = 0; g < n; ++g) {
    for (const DirectCallSite& site : (*checks)[g].calls) {
      for (int k = 0; k < 8; ++k) {
        if (((ob[site.callee] >> k) & 1) == 0) continue;
        const AbsVal& v = site.args[k];
        if (v.kind == AbsVal::Kind::kRoLoaded) continue;  // discharged
        if (v.kind == AbsVal::Kind::kEntry && v.bits >= kA0 &&
            v.bits < kA0 + 8) {
          edges.push_back(Edge{g, static_cast<int>(v.bits - kA0),
                               site.callee, k});
          continue;
        }
        taint[site.callee] |= static_cast<std::uint8_t>(1u << k);
        report->AddAt(
            Rule::kBinUnprovenCalleeArg, cg.funcs[g].span.name, site.pc,
            StrFormat("call to %s passes %s in %s, which %s dispatches "
                      "on; the proof obligation is not discharged",
                      cg.funcs[site.callee].span.name.c_str(),
                      DescribeVal(v).c_str(),
                      std::string(isa::RegName(
                                      static_cast<std::uint8_t>(kA0 + k)))
                          .c_str(),
                      cg.funcs[site.callee].span.name.c_str()));
      }
    }
  }

  // Roots: a dispatching argument of an address-taken or entry function
  // can be fed by callers no summary sees.
  for (std::size_t f = 0; f < n; ++f) {
    if (ob[f] == 0) continue;
    if (!cg.address_taken[f] && f != cg.entry_func) continue;
    for (int k = 0; k < 8; ++k) {
      if (((ob[f] >> k) & 1) == 0) continue;
      taint[f] |= static_cast<std::uint8_t>(1u << k);
      report->AddAt(
          Rule::kBinObligationUndischargeable, cg.funcs[f].span.name,
          cg.funcs[f].span.start,
          StrFormat("dispatch on %s cannot be proven by callers: the "
                    "function is %s",
                    std::string(isa::RegName(
                                    static_cast<std::uint8_t>(kA0 + k)))
                        .c_str(),
                    cg.address_taken[f] ? "address-taken"
                                        : "the image entry point"));
    }
  }

  // Taint flows along forwarding edges (caller's bit feeds callee's).
  changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : edges) {
      const std::uint8_t from_bit =
          static_cast<std::uint8_t>(1u << e.from_bit);
      const std::uint8_t to_bit = static_cast<std::uint8_t>(1u << e.to_bit);
      if ((taint[e.from] & from_bit) != 0 && (taint[e.to] & to_bit) == 0) {
        taint[e.to] |= to_bit;
        changed = true;
      }
    }
  }

  // Every untainted obligation dispatch is proven; tainted ones already
  // carry a rule 32/33 violation naming the offending path.
  for (std::size_t f = 0; f < n; ++f) {
    for (const ObligationSite& site : (*checks)[f].obligations) {
      if ((taint[f] & (1u << site.bit)) == 0) ++(*checks)[f].proven;
    }
  }
}

}  // namespace

void VerifyImage(const LinkImage& image, const BinaryPolicy& policy,
                 const Expectations* expectations, Report* report,
                 const VerifyImageOptions& options) {
  CheckSections(image, report);

  // Keys that actually map to a keyed read-only frame (for rule 22).
  std::set<std::uint32_t> mapped_keys;
  for (const Section& sec : image.sections) {
    if (IsKeyedRoSection(sec)) mapped_keys.insert(sec.key);
  }

  // Phase A (serial): carve, decode, build the call graph.
  const CallGraph cg = BuildCallGraph(image);
  // Phase B (serial): bottom-up call summaries over the SCC condensation.
  const SummarySet sums = ComputeSummaries(cg);

  // Phase C (parallel): per-function rule checks. Each function's check
  // is pure — shared inputs are const — and results are merged in
  // function index order, so diagnostics are bit-identical at any job
  // count.
  std::vector<FuncCheck> checks = campaign::ParallelMap<FuncCheck>(
      cg.funcs.size(), options.jobs, [&](std::size_t i) {
        return CheckFunction(image, cg, sums, policy, mapped_keys, i);
      });

  std::uint64_t roload_count = 0;
  std::uint64_t fixup_count = 0;
  for (const FuncCheck& check : checks) {
    ++report->stats().functions;
    report->stats().instructions += check.instructions;
    report->stats().roload_instructions += check.roloads;
    roload_count += check.roloads;
    fixup_count += check.fixups;
    report->stats().dispatches += check.dispatches;
    for (const Violation& v : check.violations) {
      report->AddAt(v.rule, v.where, v.pc, v.message);
    }
  }

  // Serial post-pass: discharge cross-function dispatch obligations
  // (rules 32/33) and settle the proven count.
  if (policy.require_protected_dispatch) {
    DischargeObligations(cg, sums, &checks, report);
  }
  for (const FuncCheck& check : checks) {
    report->stats().proven_dispatches += check.proven;
  }

  if (expectations != nullptr) {
    if (roload_count != expectations->roload_loads) {
      report->Add(Rule::kBinRoloadCountMismatch, "",
                  StrFormat("image has %llu ld.ro-family instructions but "
                            "the hardened IR carries %llu roload-md loads",
                            static_cast<unsigned long long>(roload_count),
                            static_cast<unsigned long long>(
                                expectations->roload_loads)));
    }
    if (fixup_count != expectations->addi_fixups) {
      report->Add(Rule::kBinMissingFixup, "",
                  StrFormat("found %llu addi offset fixups feeding ld.ro "
                            "but the hardened IR folds %llu offsets",
                            static_cast<unsigned long long>(fixup_count),
                            static_cast<unsigned long long>(
                                expectations->addi_fixups)));
    }
    CheckKeyedSymbols(image, *expectations, report);
    CheckCfiIds(cg.funcs, *expectations, report);
  }
}

}  // namespace roload::verify
